(* The experiment harness: regenerates every table and figure of the
   paper's evaluation, plus the DESIGN.md ablations and a Bechamel
   micro-benchmark of the framework itself.

     dune exec bench/main.exe             -- everything
     dune exec bench/main.exe -- fig1     -- one experiment
     dune exec bench/main.exe -- table1 fig5 fig6 ...
     dune exec bench/main.exe -- perf     -- Bechamel framework benchmarks

   Experiment ids: table1 fig1 fig5a fig5b (fig5 = both) fig6 fig7 fig8
   fig9 fig10 table2 xapp scaling simtcpu ablations perf. *)

module E = Threadfuser_experiments
module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Analyzer = Threadfuser.Analyzer

let all_ids =
  [
    "table1"; "fig1"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10";
    "table2"; "xapp"; "scaling"; "simtcpu"; "ablations"; "perf"; "suite";
    "analyzer_par"; "sim_par";
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the framework's own pipeline stages.    *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let bfs = Registry.find "bfs" in
  let traced = W.trace_cpu bfs in
  let tracer_test =
    Test.make ~name:"tracer: bfs machine run"
      (Staged.stage (fun () -> ignore (W.trace_cpu bfs)))
  in
  let dcfg_test =
    Test.make ~name:"dcfg+ipdom: bfs traces"
      (Staged.stage (fun () ->
           let dcfgs =
             Threadfuser_cfg.Dcfg.of_traces traced.W.prog traced.W.traces
           in
           ignore (Threadfuser_cfg.Ipdom.of_dcfgs dcfgs)))
  in
  let analyze_test =
    Test.make ~name:"analyzer: bfs warp replay"
      (Staged.stage (fun () ->
           ignore (Analyzer.analyze traced.W.prog traced.W.traces)))
  in
  let vec = Registry.find "vectoradd" in
  let vec_traced = W.trace_cpu vec in
  let warp_trace_test =
    Test.make ~name:"warp-trace gen + gpusim: vectoradd"
      (Staged.stage (fun () ->
           let r =
             Analyzer.analyze
               ~options:{ Analyzer.default_options with gen_warp_trace = true }
               vec_traced.W.prog vec_traced.W.traces
           in
           ignore
             (Threadfuser_gpusim.Gpusim.run
                ~config:Threadfuser_gpusim.Config.tiny
                (Option.get r.Analyzer.warp_trace))))
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let serial_test =
    Test.make ~name:"trace serialization: bfs roundtrip"
      (Staged.stage (fun () ->
           ignore
             (Threadfuser_trace.Serial.of_string
                (Threadfuser_trace.Serial.to_string traced.W.traces))))
  in
  let pigz = Registry.find "pigz" in
  let pigz_traced = W.trace_cpu ~threads:16 pigz in
  let heavy_test =
    Test.make ~name:"analyzer: pigz (16 threads) warp replay"
      (Staged.stage (fun () ->
           ignore (Analyzer.analyze pigz_traced.W.prog pigz_traced.W.traces)))
  in
  (* same replay with the observability collector recording: the delta over
     the plain analyzer run bounds the instrumentation cost (the disabled
     collector is the default everywhere else in this suite) *)
  let obs_analyze_test =
    let module Obs = Threadfuser_obs.Obs in
    Test.make ~name:"analyzer: bfs warp replay (obs on)"
      (Staged.stage (fun () ->
           (* reset BEFORE each iteration: event/counter/sample state left
              by the previous iteration (or any earlier test) must not
              bloat this one's measured allocations *)
           Obs.reset ();
           Obs.set_enabled true;
           Fun.protect
             ~finally:(fun () ->
               Obs.set_enabled false;
               (* and drop this iteration's accumulation on the way out so
                  the global collector is clean for whatever runs next *)
               Obs.reset ())
             (fun () -> ignore (Analyzer.analyze traced.W.prog traced.W.traces))))
  in
  (* the paper's tracing-overhead claim (2-6x native execution): compare
     the machine with tracing on vs off *)
  let overhead name =
    let w = Registry.find name in
    let prog =
      W.link ~alloc:w.W.alloc w.W.cpu Threadfuser_compiler.Compiler.O1
    in
    let time config =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to 5 do
        let m = Threadfuser_machine.Machine.create ~config prog in
        Threadfuser_workloads.Rtlib.init (Threadfuser_machine.Machine.memory m);
        w.W.cpu.W.setup (Threadfuser_machine.Machine.memory m) ~scale:1;
        ignore
          (Threadfuser_machine.Machine.run_workers m ~worker:w.W.cpu.W.worker
             ~args:(Array.init w.W.default_threads (fun tid ->
                        w.W.cpu.W.args ~tid ~n:w.W.default_threads ~scale:1)))
      done;
      (Unix.gettimeofday () -. t0) /. 5.0
    in
    let traced = time W.machine_config in
    let native = time { W.machine_config with Threadfuser_machine.Machine.trace = false } in
    (name, traced /. native)
  in
  Fmt.pr "@.== Tracing overhead vs native execution (paper: 2-6x) ==@.";
  let overheads =
    List.map
      (fun name ->
        let n, ratio = overhead name in
        Fmt.pr "  %-16s %.2fx@." n ratio;
        (n, ratio))
      [ "pigz"; "x264"; "swaptions"; "bfs" ]
  in
  Fmt.pr "@.== Framework micro-benchmarks (Bechamel, monotonic clock) ==@.";
  (* each Test.make holds one sub-test, so each result table has one OLS *)
  let estimate test =
    let est = ref None in
    Hashtbl.iter
      (fun name ols ->
        match Bechamel.Analyze.OLS.estimates ols with
        | Some [ e ] ->
            Fmt.pr "  %-45s %12.0f ns/run@." name e;
            est := Some e
        | Some _ | None -> Fmt.pr "  %-45s (no estimate)@." name)
      (analyze (benchmark test));
    !est
  in
  let stages =
    List.map
      (fun (key, test) -> (key, estimate test))
      [
        ("tracer_bfs", tracer_test);
        ("dcfg_ipdom_bfs", dcfg_test);
        ("analyzer_bfs", analyze_test);
        ("analyzer_bfs_obs_on", obs_analyze_test);
        ("warp_trace_gpusim_vectoradd", warp_trace_test);
        ("serial_roundtrip_bfs", serial_test);
        ("analyzer_pigz16", heavy_test);
      ]
  in
  Fmt.pr "@.";
  (* The obs tax is a *paired* measurement: the two bechamel estimates
     above are taken minutes apart, so machine drift (frequency, page
     cache, GC heap shape) can exceed the difference being measured.
     Interleaving off/on batches and taking each side's minimum pins the
     ratio down on noisy single-core hosts. *)
  let obs_ratio_paired, obs_flight_ratio_paired =
    let module Obs = Threadfuser_obs.Obs in
    let analyze () = ignore (Analyzer.analyze traced.W.prog traced.W.traces) in
    let run_on () =
      Obs.reset ();
      Obs.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Obs.set_enabled false;
          Obs.reset ())
        analyze
    in
    (* third leg: collector on AND a flight recorder tapping this domain,
       the configuration a served session runs under when --flight-dir is
       set — its extra cost over plain obs-on is the ring append *)
    let run_flight () =
      Obs.reset ();
      Obs.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Obs.set_enabled false;
          Obs.reset ())
        (fun () ->
          let fl = Obs.Flight.create ~capacity:2048 "bench" in
          Obs.Flight.with_attached fl analyze)
    in
    let best_off = ref infinity
    and best_on = ref infinity
    and best_flight = ref infinity in
    analyze ();
    run_on ();
    run_flight ();
    for _ = 1 to 12 do
      let batch best f =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to 30 do
          f ()
        done;
        let d = (Unix.gettimeofday () -. t0) /. 30.0 in
        if d < !best then best := d
      in
      batch best_off analyze;
      batch best_on run_on;
      batch best_flight run_flight
    done;
    (!best_on /. !best_off, !best_flight /. !best_off)
  in
  Fmt.pr "  obs on/off analyzer ratio (paired, interleaved): %.3f@."
    obs_ratio_paired;
  Fmt.pr "  obs+flight/off analyzer ratio (paired, interleaved): %.3f@.@."
    obs_flight_ratio_paired;
  (* machine-readable summary for CI trend tracking *)
  let module J = Threadfuser_report.Json in
  let num = function Some ns -> J.Float ns | None -> J.Null in
  let obs_ratio = J.Float obs_ratio_paired in
  let doc =
    J.Obj
      [
        ("schema", J.String "threadfuser-bench-pipeline/1");
        ( "stages_ns_per_run",
          J.Obj (List.map (fun (k, v) -> (k, num v)) stages) );
        ( "tracing_overhead_vs_native",
          J.Obj (List.map (fun (n, r) -> (n, J.Float r)) overheads) );
        ("obs_on_vs_off_analyzer_ratio", obs_ratio);
        ("obs_flight_vs_off_analyzer_ratio", J.Float obs_flight_ratio_paired);
      ]
  in
  let path = "BENCH_pipeline.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Fmt.pr "wrote %s@.@." path

(* ------------------------------------------------------------------ *)
(* Domain-parallel warp replay: the same analysis at -j 1/2/4 (warps
   sharded across an OCaml 5 domain pool, deterministic reduction).
   Measures in-process replay scaling, unlike the suite bench below
   which forks whole workloads.  pigz's 16 worker threads form a
   single 32-lane warp, so that case replays at warp 4 (-> 4 warps);
   bfs is traced wide enough for 16 warps at warp 32. *)

let analyzer_par_bench () =
  let module J = Threadfuser_report.Json in
  let module RJ = Threadfuser_report.Report_json in
  let smoke = Sys.getenv_opt "TF_BENCH_SMOKE" <> None in
  let reps = if smoke then 2 else 7 in
  let time_ns f =
    (* one warm-up run, then min of [reps] wall-clock runs: the replay
       dominates and min filters scheduler noise *)
    ignore (f ());
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best *. 1e9
  in
  let cases =
    [
      ("pigz16_w4", W.trace_cpu ~threads:16 (Registry.find "pigz"), 4);
      ("bfs512", W.trace_cpu ~threads:512 (Registry.find "bfs"), 32);
    ]
  in
  let levels = [ 1; 2; 4 ] in
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "== analyzer replay scaling across domains (-j) ==@.";
  Fmt.pr "  host offers %d core%s to this process@." cores
    (if cores = 1 then "" else "s");
  if cores = 1 then
    Fmt.pr
      "  NOTE: single-core host; -j > 1 time-slices one CPU, so expect@.\
      \  overhead rather than speedup (determinism still checked below)@.";
  let case_docs =
    List.map
      (fun (name, traced, warp_size) ->
        let opts d =
          { Analyzer.default_options with Analyzer.warp_size; domains = d }
        in
        let analyze d () =
          Analyzer.analyze ~options:(opts d) traced.W.prog traced.W.traces
        in
        let r1 = analyze 1 () in
        let warps = r1.Analyzer.report.Threadfuser.Metrics.n_warps in
        (* what the auto -j heuristic actually grants per level, so a
           flat bfs512 curve reads as "collapsed to serial by design"
           rather than "failed to scale" *)
        let work =
          Array.fold_left
            (fun acc (t : Threadfuser_trace.Thread_trace.t) ->
              acc + Array.length t.Threadfuser_trace.Thread_trace.events)
            0 traced.W.traces
        in
        let effective d =
          Threadfuser.Par_replay.auto_domains ~requested:d ~items:warps ~work
        in
        let timings = List.map (fun d -> (d, time_ns (analyze d))) levels in
        let t1 = List.assoc 1 timings in
        (* a leg asking for more domains than the host has cores measures
           time-slicing, not scaling: mark it advisory so bench-regress
           skips it instead of baselining a sub-1x "speedup" *)
        let advisory d = d > cores in
        Fmt.pr "  %-12s (%d warps, %d events)@." name warps work;
        List.iter
          (fun (d, ns) ->
            Fmt.pr "    -j %d   %12.0f ns/run   %.2fx%s%s@." d ns (t1 /. ns)
              (if effective d < d then
                 Printf.sprintf "   (auto -j ran %d)" (effective d)
               else "")
              (if advisory d then "   (advisory: only " ^ string_of_int cores
                                  ^ " cores)"
               else ""))
          timings;
        (* the determinism contract, enforced on the bench path too: the
           -j 4 report must serialize byte-for-byte like the -j 1 one *)
        let identical =
          RJ.to_string r1.Analyzer.report
          = RJ.to_string (analyze 4 ()).Analyzer.report
        in
        Fmt.pr "    report byte-identical -j1 vs -j4: %b@." identical;
        if not identical then
          failwith ("analyzer_par: " ^ name ^ " diverged at -j 4");
        ( name,
          J.Obj
            [
              ("warps", J.Int warps);
              ( "domains_ns_per_run",
                J.Obj
                  (List.map
                     (fun (d, ns) -> (string_of_int d, J.Float ns))
                     timings) );
              ( "effective_domains",
                J.Obj
                  (List.map
                     (fun d -> (string_of_int d, J.Int (effective d)))
                     levels) );
              ( "speedup_vs_j1",
                J.Obj
                  (List.map
                     (fun (d, ns) ->
                       ( string_of_int d,
                         J.Obj
                           [
                             ("x", J.Float (t1 /. ns));
                             ("advisory", J.Bool (advisory d));
                           ] ))
                     timings) );
              ("byte_identical_j1_j4", J.Bool identical);
            ] ))
      cases
  in
  (* instrumentation tax with parallel replay: obs-on vs obs-off at -j 4
     (each domain records into the shared collector) *)
  let _, bfs_traced, _ = List.nth cases 1 in
  let module Obs = Threadfuser_obs.Obs in
  let analyze_j4 () =
    ignore
      (Analyzer.analyze
         ~options:{ Analyzer.default_options with Analyzer.domains = 4 }
         bfs_traced.W.prog bfs_traced.W.traces)
  in
  let off = time_ns analyze_j4 in
  let on =
    time_ns (fun () ->
        Obs.reset ();
        Obs.set_enabled true;
        Fun.protect
          ~finally:(fun () ->
            Obs.set_enabled false;
            Obs.reset ())
          analyze_j4)
  in
  let obs_ratio = on /. off in
  Fmt.pr "  obs on/off ratio at -j 4 (bfs512): %.3f@." obs_ratio;
  (* gate_mode tells bench-regress whether speedups were measurable at
     all: a host with fewer cores than the widest level can only report
     advisory numbers, and the gate downgrades itself to warnings *)
  let gate_mode =
    if cores >= List.fold_left max 1 levels then "enforced" else "advisory"
  in
  let doc =
    J.Obj
      [
        ("schema", J.String "threadfuser-bench-analyzer-par/1");
        ("available_cores", J.Int cores);
        ("gate_mode", J.String gate_mode);
        ("domain_levels", J.List (List.map (fun d -> J.Int d) levels));
        ("workloads", J.Obj case_docs);
        ("obs_on_vs_off_ratio_j4", J.Float obs_ratio);
      ]
  in
  let path = "BENCH_analyzer_par.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Fmt.pr "wrote %s@.@." path

(* ------------------------------------------------------------------ *)
(* Cycle-level simulator scaling across domains: gpusim's SM partition
   and cpusim's core partition at -j 1/2/4, with the byte-identity and
   epoch-invariance contracts enforced on the bench path. *)

let sim_par_bench () =
  let module J = Threadfuser_report.Json in
  let module Gpusim = Threadfuser_gpusim.Gpusim in
  let module Cpusim = Threadfuser_cpusim.Cpusim in
  let smoke = Sys.getenv_opt "TF_BENCH_SMOKE" <> None in
  let reps = if smoke then 2 else 7 in
  let time_ns f =
    ignore (f ());
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best *. 1e9
  in
  let levels = [ 1; 2; 4 ] in
  let cores = Domain.recommended_domain_count () in
  let advisory d = d > cores in
  let gate_mode =
    if cores >= List.fold_left max 1 levels then "enforced" else "advisory"
  in
  Fmt.pr "== cycle-level simulator scaling across domains (-j) ==@.";
  Fmt.pr "  host offers %d core%s to this process@." cores
    (if cores = 1 then "" else "s");
  let warp_trace ~threads ~warp_size name =
    let traced = W.trace_cpu ~threads (Registry.find name) in
    let r =
      Analyzer.analyze
        ~options:
          { Analyzer.default_options with warp_size; gen_warp_trace = true }
        traced.W.prog traced.W.traces
    in
    (traced, Option.get r.Analyzer.warp_trace)
  in
  let pigz_traced, pigz_wt = warp_trace ~threads:16 ~warp_size:4 "pigz" in
  let _, bfs_wt = warp_trace ~threads:512 ~warp_size:32 "bfs" in
  let gpu_config = Threadfuser_gpusim.Config.rtx3070 in
  (* one case = (name, run-at-j, extra determinism probes at j4) *)
  let gpu_case name wt =
    let run d () = Gpusim.run ~config:gpu_config ~domains:d wt in
    let base = run 1 () in
    let identical = base = run 4 () in
    (* epoch invariance on the bench path: extreme barrier lengths must
       not move a single counter *)
    let epoch_ok =
      base = Gpusim.run ~config:gpu_config ~domains:4 ~epoch:1 wt
      && base = Gpusim.run ~config:gpu_config ~domains:4 ~epoch:100_000 wt
    in
    (name, (fun d -> time_ns (run d)), identical, Some epoch_ok)
  in
  let cpu_case name traces =
    let run d () = Cpusim.run ~domains:d traces in
    let base = run 1 () in
    let identical = base = run 4 () in
    (name, (fun d -> time_ns (run d)), identical, None)
  in
  let cases =
    [
      gpu_case "gpusim_pigz16_w4" pigz_wt;
      gpu_case "gpusim_bfs512" bfs_wt;
      cpu_case "cpusim_pigz16" pigz_traced.W.traces;
    ]
  in
  let case_docs =
    List.map
      (fun (name, time_at, identical, epoch_ok) ->
        let timings = List.map (fun d -> (d, time_at d)) levels in
        let t1 = List.assoc 1 timings in
        Fmt.pr "  %-18s@." name;
        List.iter
          (fun (d, ns) ->
            Fmt.pr "    -j %d   %12.0f ns/run   %.2fx%s@." d ns (t1 /. ns)
              (if advisory d then "   (advisory: only " ^ string_of_int cores
                                  ^ " cores)"
               else ""))
          timings;
        Fmt.pr "    stats byte-identical -j1 vs -j4: %b@." identical;
        if not identical then
          failwith ("sim_par: " ^ name ^ " diverged at -j 4");
        (match epoch_ok with
        | Some ok ->
            Fmt.pr "    stats epoch-invariant (1 and 100000): %b@." ok;
            if not ok then
              failwith ("sim_par: " ^ name ^ " diverged across epochs")
        | None -> ());
        ( name,
          J.Obj
            ([
               ( "domains_ns_per_run",
                 J.Obj
                   (List.map
                      (fun (d, ns) -> (string_of_int d, J.Float ns))
                      timings) );
               ( "speedup_vs_j1",
                 J.Obj
                   (List.map
                      (fun (d, ns) ->
                        ( string_of_int d,
                          J.Obj
                            [
                              ("x", J.Float (t1 /. ns));
                              ("advisory", J.Bool (advisory d));
                            ] ))
                      timings) );
               ("byte_identical_j1_j4", J.Bool identical);
             ]
            @
            match epoch_ok with
            | Some ok -> [ ("epoch_invariant", J.Bool ok) ]
            | None -> []) ))
      cases
  in
  let doc =
    J.Obj
      [
        ("schema", J.String "threadfuser-bench-sim-par/1");
        ("available_cores", J.Int cores);
        ("gate_mode", J.String gate_mode);
        ("domain_levels", J.List (List.map (fun d -> J.Int d) levels));
        ("workloads", J.Obj case_docs);
      ]
  in
  let path = "BENCH_sim_par.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Fmt.pr "wrote %s@.@." path

(* ------------------------------------------------------------------ *)
(* Suite-runner throughput: the same batch at --jobs 1/2/4, fork
   isolation, plus a determinism check (per-workload reports must be
   byte-identical however the supervisor schedules them). *)

let suite_bench () =
  let module Runner = Threadfuser_runner.Runner in
  let module J = Threadfuser_report.Json in
  let read_file p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let jobs =
    List.map Runner.job
      [ "vectoradd"; "bfs"; "uncoalesced"; "rotate"; "user"; "md5" ]
  in
  let n = List.length jobs in
  Fmt.pr "suite-runner throughput (%d jobs, fork isolation):@." n;
  let run_at parallelism =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tfsuite-bench-%d-j%d" (Unix.getpid ()) parallelism)
    in
    let m =
      Runner.run
        ~config:{ Runner.default_config with parallelism; dir }
        jobs
    in
    if not (Runner.all_ok m) then
      failwith "suite bench: batch did not complete clean";
    let jps = float_of_int n /. m.Runner.wall_s in
    Fmt.pr "  --jobs %d   %6.2f s wall   %6.1f jobs/s@." parallelism
      m.Runner.wall_s jps;
    (parallelism, dir, m)
  in
  let runs = List.map run_at [ 1; 2; 4 ] in
  let _, dir1, m1 = List.nth runs 0 in
  let _, dir4, _ = List.nth runs 2 in
  let deterministic =
    List.for_all
      (fun (e : Runner.entry) ->
        match e.Runner.report_file with
        | None -> false
        | Some rel ->
            read_file (Filename.concat dir1 rel)
            = read_file (Filename.concat dir4 rel))
      m1.Runner.entries
  in
  Fmt.pr "  reports byte-identical across -j1/-j4: %b@." deterministic;
  (* artifact-cache leg: a cold populate then a warm rerun over the same
     cache — the warm rollup carries the hit ratio, and the wall-clock
     pair is the headline number for [suite --cache] *)
  let module Cache = Threadfuser_cache.Cache in
  let cache_root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tfsuite-bench-%d-cache" (Unix.getpid ()))
  in
  let cache = Cache.open_ cache_root in
  let run_cached tag =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tfsuite-bench-%d-%s" (Unix.getpid ()) tag)
    in
    let m =
      Runner.run
        ~config:
          { Runner.default_config with parallelism = 2; dir; cache = Some cache }
        jobs
    in
    if not (Runner.all_ok m) then
      failwith "suite bench: cached batch did not complete clean";
    m
  in
  let m_cold = run_cached "cachecold" in
  let m_warm = run_cached "cachewarm" in
  Cache.close cache;
  Fmt.pr "  warm cache: %d/%d job(s) served as hits   %6.2f s wall (cold %6.2f s)@."
    m_warm.Runner.cache_hits n m_warm.Runner.wall_s m_cold.Runner.wall_s;
  let doc =
    J.Obj
      [
        ("schema", J.String "threadfuser-bench-suite/1");
        ("jobs", J.Int n);
        ("isolation", J.String "fork");
        ( "levels",
          J.List
            (List.map
               (fun (p, _, (m : Runner.manifest)) ->
                 J.Obj
                   [
                     ("parallelism", J.Int p);
                     ("wall_s", J.Float m.Runner.wall_s);
                     ( "jobs_per_s",
                       J.Float (float_of_int n /. m.Runner.wall_s) );
                     ( "speedup_vs_j1",
                       J.Float (m1.Runner.wall_s /. m.Runner.wall_s) );
                     ("rollup", Runner.rollup_json m);
                   ])
               runs) );
        ("deterministic_across_parallelism", J.Bool deterministic);
        ( "cache",
          J.Obj
            [
              ("cold_wall_s", J.Float m_cold.Runner.wall_s);
              ("warm_wall_s", J.Float m_warm.Runner.wall_s);
              ( "warm_speedup",
                J.Float (m_cold.Runner.wall_s /. m_warm.Runner.wall_s) );
              ("warm_rollup", Runner.rollup_json m_warm);
            ] );
      ]
  in
  let path = "BENCH_suite.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Fmt.pr "wrote %s@.@." path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --csv DIR writes each table as <DIR>/<name>.csv alongside the text *)
  let rec extract_csv acc = function
    | [ "--csv" ] ->
        (* a trailing --csv used to fall through and be treated as an
           experiment id; it is a usage error *)
        Fmt.epr "bench: --csv requires a directory argument (--csv DIR)@.";
        exit 1
    | "--csv" :: dir :: rest ->
        Threadfuser_report.Table.set_csv_dir (Some dir);
        extract_csv acc rest
    | x :: rest -> extract_csv (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract_csv [] args in
  let ids =
    match args with
    | [] -> all_ids
    | l -> List.map (function "fig5a" | "fig5b" -> "fig5" | id -> id) l
  in
  let ctx = E.Ctx.create () in
  (* results threaded into Table II *)
  let fig5_stats = ref None and fig6_out = ref None and xapp_out = ref None in
  let need id = List.mem id ids in
  if need "table1" then E.Table1.run ctx;
  if need "fig1" then E.Fig1.run ctx;
  if need "fig5" then fig5_stats := Some (E.Fig5.run ctx);
  if need "fig6" then fig6_out := Some (E.Fig6.run ctx);
  if need "fig7" then ignore (E.Fig7.run ctx);
  if need "fig8" then ignore (E.Fig8.run ctx);
  if need "fig9" then ignore (E.Fig9.run ctx);
  if need "fig10" then ignore (E.Fig10.run ctx);
  if need "xapp" then xapp_out := Some (E.Xapp_exp.run ctx);
  if need "table2" then begin
    let fig5 =
      match !fig5_stats with
      | Some s -> s
      | None -> E.Fig5.per_level (E.Fig5.samples ctx)
    in
    let rows, corr =
      match !fig6_out with Some r -> r | None -> E.Fig6.run ctx
    in
    E.Table2.run ?xapp:!xapp_out ~fig5 ~speedup_corr:corr
      ~time_error:(E.Fig6.time_error rows) ()
  end;
  if need "scaling" then ignore (E.Scaling.run ctx);
  if need "simtcpu" then ignore (E.Simt_cpu.run ctx);
  if need "ablations" then E.Ablations.run ctx;
  if need "perf" then bechamel_suite ();
  if need "suite" then suite_bench ();
  if need "analyzer_par" then analyzer_par_bench ();
  if need "sim_par" then sim_par_bench ();
  List.iter
    (fun id ->
      if not (List.mem id all_ids) then
        Fmt.epr "unknown experiment id %s (known: %s)@." id
          (String.concat " " all_ids))
    ids
