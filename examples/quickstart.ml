(* Quickstart: write a tiny multithreaded "CPU program" in the mini-ISA,
   run it on the MIMD machine to collect per-thread traces, and ask the
   ThreadFuser analyzer how it would behave on SIMT hardware.

     dune exec examples/quickstart.exe

   The kernel is the classic porting question: each thread walks its slice
   of a histogram and conditionally rescales — would this loop survive a
   GPU port as-is? *)

open Threadfuser_prog
open Threadfuser_isa
module Machine = Threadfuser_machine.Machine
module Memory = Threadfuser_machine.Memory
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics

let histogram = 0x20000

let out = 0x60000

(* worker(tid): for the 16 bins of this thread's slice, rescale the large
   ones (a data-dependent branch) and accumulate a checksum. *)
let program =
  Program.assemble
    [
      Build.(
        func "worker"
          [
            mov (reg 6) (reg 0);
            shl (reg 6) (imm 4);
            (* first bin = tid * 16 *)
            mov (reg 9) (imm 0);
            for_up ~i:7 ~from_:(imm 0) ~below:(imm 16)
              [
                mov (reg 8) (reg 6);
                add (reg 8) (reg 7);
                mov (reg 10) (mem ~scale:8 ~index:8 ~disp:histogram ());
                (* the porting hazard: a data-dependent diamond *)
                if_ Cond.Gt (reg 10) (imm 700)
                  ~then_:[ shr (reg 10) (imm 1); add (reg 9) (imm 3) ]
                  ~else_:[ add (reg 9) (imm 1) ]
                  ();
                mov (mem ~scale:8 ~index:8 ~disp:out ()) (reg 10);
              ];
            mov (mem ~scale:8 ~index:0 ~disp:(out + 0x8000) ()) (reg 9);
            ret;
          ]);
    ]

let () =
  (* 1. run 64 CPU threads under the deterministic machine, tracing each *)
  let machine = Machine.create program in
  let mem = Machine.memory machine in
  let rng = Threadfuser_util.Lcg.create 2024 in
  for i = 0 to 1023 do
    Memory.store_i64 mem (histogram + (8 * i)) (Threadfuser_util.Lcg.int rng 1000)
  done;
  let run =
    Machine.run_workers machine ~worker:"worker"
      ~args:(Array.init 64 (fun tid -> [ tid ]))
  in
  Fmt.pr "traced %d threads, %d instructions executed@."
    (Array.length run.Machine.traces)
    run.Machine.instrs_executed;

  (* 2. fuse the threads into warps and replay them on the SIMT stack *)
  let result = Analyzer.analyze program run.Machine.traces in
  let rep = result.Analyzer.report in
  Fmt.pr "@.%a@." Metrics.pp_summary rep;

  (* 3. read the verdict *)
  Fmt.pr "@.verdict: " ;
  if rep.Metrics.simt_efficiency > 0.9 then
    Fmt.pr "SIMT-friendly — port as-is and expect good lane utilization.@."
  else if rep.Metrics.simt_efficiency > 0.5 then
    Fmt.pr
      "moderately divergent (%.0f%%) — profitable, but the branch deserves \
       a predication/SoA pass first.@."
      (100. *. rep.Metrics.simt_efficiency)
  else
    Fmt.pr "SIMT-hostile (%.0f%%) — restructure before porting.@."
      (100. *. rep.Metrics.simt_efficiency);

  (* 4. warp-width what-if, one line per width *)
  Fmt.pr "@.warp-width sensitivity:@.";
  List.iter
    (fun warp_size ->
      let r =
        Analyzer.analyze
          ~options:{ Analyzer.default_options with warp_size }
          program run.Machine.traces
      in
      Fmt.pr "  warp %2d -> %.1f%%@." warp_size
        (100. *. r.Analyzer.report.Metrics.simt_efficiency))
    [ 4; 8; 16; 32 ]
