(* The paper's Fig. 7 case study as a runnable walkthrough: use
   ThreadFuser's per-function reports to find the code that destroys
   HDSearch-Midtier's SIMT efficiency, then verify the SIMT-aware fix.

     dune exec examples/microservice_analysis.exe *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics

let pp_stage title (r : Analyzer.result) =
  let rep = r.Analyzer.report in
  Fmt.pr "@.%s@." title;
  Fmt.pr "  overall SIMT efficiency: %.1f%%@."
    (100. *. rep.Metrics.simt_efficiency);
  Fmt.pr "  %-12s %8s %8s@." "function" "share" "eff";
  List.iter
    (fun (f : Metrics.func_stat) ->
      Fmt.pr "  %-12s %7.1f%% %7.1f%%@." f.Metrics.func_name
        (100. *. f.Metrics.instr_share)
        (100. *. f.Metrics.efficiency))
    rep.Metrics.per_function;
  rep

let () =
  Fmt.pr "=== HDSearch-Midtier: why does this microservice hate warps? ===@.";
  let broken = W.analyze (Registry.find "hdsearch-mid") in
  let rep = pp_stage "-- step 1: as-written service --" broken in

  (* step 2: let the report point at the culprit, like the paper does *)
  let worst =
    List.filter
      (fun (f : Metrics.func_stat) -> f.Metrics.instr_share > 0.10)
      rep.Metrics.per_function
    |> List.sort (fun (a : Metrics.func_stat) b ->
           compare a.Metrics.efficiency b.Metrics.efficiency)
    |> List.hd
  in
  Fmt.pr
    "@.-- step 2: diagnosis --@.  hottest inefficient function: %s (%.1f%% \
     of instructions at %.1f%% efficiency)@."
    worst.Metrics.func_name
    (100. *. worst.Metrics.instr_share)
    (100. *. worst.Metrics.efficiency);
  Fmt.pr
    "  the FLANN-style `getpoint' loop pushes a data-dependent number of \
     candidates per request,@.  and every push_back funnels through the \
     glibc allocator's one mutex (%d intra-warp conflicts).@."
    rep.Metrics.serializations;

  (* step 3: the paper's fix — uniform top-10 + concurrent allocator *)
  let fixed = W.analyze Registry.hdsearch_mid_fixed in
  let frep =
    pp_stage "-- step 3: SIMT-aware fix (uniform top-10, concurrent allocator) --"
      fixed
  in
  Fmt.pr "@.result: %.0f%% -> %.0f%% SIMT efficiency (paper: 6%% -> 90%%)@."
    (100. *. rep.Metrics.simt_efficiency)
    (100. *. frep.Metrics.simt_efficiency)
