(* The paper's closing pitch (§V-B, §VII): use ThreadFuser to explore SIMT
   accelerator designs *between* a multicore CPU and a GPU, driven by
   general-purpose MIMD software rather than graphics/ML kernels.

   This example sweeps the cycle-level simulator across SM counts, warp
   widths and DRAM bandwidths for three very different workloads — a
   coalesced kernel, a divergent tree search, and a lock-heavy
   microservice — and prints where each stops scaling.  It also shows the
   barrier primitive in a phased OpenMP-style kernel.

     dune exec examples/accelerator_design.exe *)

open Threadfuser
module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Gpusim = Threadfuser_gpusim.Gpusim
module Config = Threadfuser_gpusim.Config
module Table = Threadfuser_report.Table
module Machine = Threadfuser_machine.Machine
module Program = Threadfuser_prog.Program

let picks = [ "vectoradd"; "b+tree"; "mcrouter-memcached" ]

let warp_trace ~warp_size name =
  let w = Registry.find name in
  let r =
    W.analyze
      ~options:{ Analyzer.default_options with warp_size; gen_warp_trace = true }
      ~threads:128 w
  in
  Option.get r.Analyzer.warp_trace

let cycles config wt = (Gpusim.run ~config wt).Gpusim.cycles

let () =
  (* 1. SM scaling at fixed width *)
  Fmt.pr "=== SM-count scaling (warp 32, cycles; lower is better) ===@.@.";
  let sm_counts = [ 1; 2; 4; 8; 16 ] in
  let t =
    Table.create
      ([ ("workload", Table.L) ]
      @ List.map (fun n -> (Printf.sprintf "%d SMs" n, Table.R)) sm_counts)
  in
  List.iter
    (fun name ->
      let wt = warp_trace ~warp_size:32 name in
      Table.add_row t
        (name
        :: List.map
             (fun n_sms ->
               Table.cell_int (cycles { Config.rtx3070 with Config.n_sms } wt))
             sm_counts))
    picks;
  Table.print t;
  Fmt.pr
    "@.reading: at this occupancy (4 warps) none of these workloads buys \
     anything past 1-2 SMs — the coalesced kernel is bandwidth-bound, the \
     divergent and lock-bound ones are serialization-bound; more SMs even \
     hurt the locked service by spreading its warps away from a shared \
     L1.@.";

  (* 2. warp width: narrow SIMD units trade front-end cost for divergence *)
  Fmt.pr "@.=== Warp width (4 SMs, cycles) ===@.@.";
  let widths = [ 4; 8; 16; 32 ] in
  let t2 =
    Table.create
      ([ ("workload", Table.L) ]
      @ List.map (fun w -> (Printf.sprintf "w=%d" w, Table.R)) widths)
  in
  let config = { Config.rtx3070 with Config.n_sms = 4 } in
  List.iter
    (fun name ->
      Table.add_row t2
        (name
        :: List.map
             (fun w -> Table.cell_int (cycles config (warp_trace ~warp_size:w name)))
             widths))
    picks;
  Table.print t2;

  (* 3. memory bandwidth sensitivity *)
  Fmt.pr "@.=== DRAM bandwidth (8 SMs, warp 32, cycles) ===@.@.";
  let bands = [ 1.0; 2.0; 4.0; 8.0 ] in
  let t3 =
    Table.create
      ([ ("workload", Table.L) ]
      @ List.map (fun b -> (Printf.sprintf "%.0f txn/cy" b, Table.R)) bands)
  in
  List.iter
    (fun name ->
      let wt = warp_trace ~warp_size:32 name in
      Table.add_row t3
        (name
        :: List.map
             (fun dram_txns_per_cycle ->
               Table.cell_int
                 (cycles
                    { Config.rtx3070 with Config.n_sms = 8; dram_txns_per_cycle }
                    wt))
             bands))
    picks;
  Table.print t3;

  (* 4. a phased OpenMP-style kernel with a team barrier, end to end *)
  Fmt.pr "@.=== Barrier-phased kernel (OpenMP-style) ===@.@.";
  let phased =
    Program.assemble
      [
        Threadfuser_prog.Build.(
          func "worker"
            [
              (* phase 1: publish a partial sum *)
              mov (reg 6) (reg 0);
              mul (reg 6) (imm 17);
              mov (mem ~scale:8 ~index:0 ~disp:0x20000 ()) (reg 6);
              barrier (imm 0x50000);
              (* phase 2: reduce the two neighbors *)
              mov (reg 7) (reg 0);
              add (reg 7) (imm 1);
              and_ (reg 7) (imm 63);
              mov (reg 8) (mem ~scale:8 ~index:7 ~disp:0x20000 ());
              add (reg 8) (reg 6);
              mov (mem ~scale:8 ~index:0 ~disp:0x60000 ()) (reg 8);
              ret;
            ]);
      ]
  in
  let machine = Machine.create phased in
  let run =
    Machine.run_workers machine ~worker:"worker"
      ~args:(Array.init 64 (fun i -> [ i ]))
  in
  let res = Analyzer.analyze phased run.Machine.traces in
  Fmt.pr
    "phased kernel: %.1f%% SIMT efficiency, %d warp-level barrier crossings \
     — team barriers are free inside a warp (all lanes arrive together), \
     unlike locks.@."
    (100. *. res.Analyzer.report.Metrics.simt_efficiency)
    res.Analyzer.report.Metrics.barrier_syncs
