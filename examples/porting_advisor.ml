(* The developer's use case (paper §V-A): zero-effort porting triage for a
   whole fleet of CPU binaries.  Ranks all 36 workloads by projected SIMT
   friendliness and prints actionable advice per tier, including the
   speedup projection from the cycle-level simulator for the top picks.

     dune exec examples/porting_advisor.exe *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics
module E = Threadfuser_experiments
module Table = Threadfuser_report.Table

type verdict = Port_now | Port_with_fixes | Restructure_first

let verdict_of rep =
  let eff = rep.Metrics.simt_efficiency in
  let mem = Metrics.txns_per_mem_instr rep in
  if eff >= 0.9 && mem <= 20.0 then Port_now
  else if eff >= 0.5 then Port_with_fixes
  else Restructure_first

let verdict_string = function
  | Port_now -> "port as-is"
  | Port_with_fixes -> "port + tune memory/branches"
  | Restructure_first -> "restructure first"

let () =
  Fmt.pr "=== Porting advisor: all 36 workloads, warp 32 ===@.@.";
  let ctx = E.Ctx.create () in
  let rows =
    List.map
      (fun (w : W.t) ->
        let rep = (E.Ctx.analysis ctx w).Analyzer.report in
        (w, rep, verdict_of rep))
      Registry.all
    |> List.sort
         (fun (_, (a : Metrics.report), _) (_, (b : Metrics.report), _) ->
           compare b.Metrics.simt_efficiency a.Metrics.simt_efficiency)
  in
  let t =
    Table.create
      [
        ("workload", Table.L);
        ("SIMT eff", Table.R);
        ("txn/ld-st", Table.R);
        ("traced", Table.R);
        ("lock conflicts", Table.R);
        ("advice", Table.L);
      ]
  in
  List.iter
    (fun ((w : W.t), rep, verdict) ->
      Table.add_row t
        [
          w.W.name;
          Table.cell_pct rep.Metrics.simt_efficiency;
          Table.cell_float (Metrics.txns_per_mem_instr rep);
          Table.cell_pct (Metrics.traced_fraction rep);
          Table.cell_int rep.Metrics.serializations;
          verdict_string verdict;
        ])
    rows;
  Table.print t;

  (* deep-dive the top tier with the cycle-level simulator, as the paper
     recommends once the quick estimate looks promising *)
  let top =
    List.filter (fun (_, _, v) -> v = Port_now) rows |> List.filteri (fun i _ -> i < 5)
  in
  Fmt.pr "@.=== Simulator deep-dive for the top picks ===@.@.";
  List.iter
    (fun ((w : W.t), _, _) ->
      let tr = E.Ctx.traced ctx w in
      let cpu_t = E.Fig6.cpu_seconds tr in
      let gpu_t, _ = E.Fig6.gpu_seconds tr in
      Fmt.pr "  %-16s projected speedup %.2fx over the multicore CPU@."
        w.W.name (cpu_t /. gpu_t))
    top;
  Fmt.pr
    "@.note: high SIMT efficiency is necessary but not sufficient (paper \
     §I); the deep-dive catches memory-bound cases the control-flow \
     estimate cannot.@."
