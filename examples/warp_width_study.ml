(* The architect's use case (paper §V-B): how does SIMT width interact with
   workload divergence, and which batching policy recovers efficiency?

     dune exec examples/warp_width_study.exe *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics
module Batching = Threadfuser.Batching
module Table = Threadfuser_report.Table

let picks = [ "nbody"; "md5"; "textsearch-leaf"; "b+tree"; "bfs"; "pigz" ]

let widths = [ 4; 8; 16; 32 ]

let () =
  Fmt.pr "=== Warp-width study: efficiency vs SIMD width ===@.@.";
  let t =
    Table.create
      ([ ("workload", Table.L) ]
      @ List.map (fun w -> (Printf.sprintf "w=%d" w, Table.R)) widths
      @ [ ("sensitivity", Table.R) ])
  in
  List.iter
    (fun name ->
      let w = Registry.find name in
      let effs =
        List.map
          (fun warp_size ->
            (W.analyze ~options:{ Analyzer.default_options with warp_size } w)
              .Analyzer.report
              .Metrics.simt_efficiency)
          widths
      in
      let sensitivity = List.nth effs 0 -. List.nth effs 3 in
      Table.add_row t
        (name
        :: List.map Table.cell_pct effs
        @ [ Table.cell_pct sensitivity ]))
    picks;
  Table.print t;
  Fmt.pr
    "@.reading: high-efficiency kernels are width-insensitive; divergent \
     ones gain a lot from narrower SIMD units@.";

  (* second question: can smarter warp formation recover what width costs? *)
  Fmt.pr "@.=== Batching policy at warp 32 (dynamic-warp-formation flavour) ===@.@.";
  let t2 =
    Table.create
      ([ ("workload", Table.L) ]
      @ List.map (fun p -> (Batching.to_string p, Table.R)) Batching.all)
  in
  List.iter
    (fun name ->
      let w = Registry.find name in
      let effs =
        List.map
          (fun batching ->
            (W.analyze ~options:{ Analyzer.default_options with batching } w)
              .Analyzer.report
              .Metrics.simt_efficiency)
          Batching.all
      in
      Table.add_row t2 (name :: List.map Table.cell_pct effs))
    [ "bfs"; "freqmine"; "pigz" ];
  Table.print t2;
  Fmt.pr
    "@.signature-greedy batching groups threads with similar control-flow \
     prefixes into the same warp,@.the software analogue of dynamic warp \
     formation [Fung et al., MICRO 2007].@."
