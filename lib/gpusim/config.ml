(** GPU simulator configuration.  The default preset is loosely modelled on
    the RTX-3070-class part the paper configures Accel-Sim with (Fig. 6):
    46 SMs, 32-wide warps, a small L1 per SM, a shared L2, and a
    bandwidth-limited GDDR channel. *)

open Threadfuser_isa

type scheduler = Gto | Lrr

type t = {
  n_sms : int;
  max_warps_per_sm : int; (* resident warps per SM *)
  issue_width : int; (* instructions issued per SM per cycle *)
  mshr_per_warp : int; (* outstanding loads a warp may have *)
  scheduler : scheduler;
  l1 : Cache.config;
  l1_latency : int;
  l2 : Cache.config;
  l2_latency : int;
  dram_latency : int;
  dram_txns_per_cycle : float;
  clock_ghz : float;
}

let rtx3070 =
  {
    n_sms = 46;
    max_warps_per_sm = 32;
    issue_width = 2;
    mshr_per_warp = 8;
    scheduler = Gto;
    l1 = { Cache.size_bytes = 128 * 1024; assoc = 8; line_bytes = 32 };
    l1_latency = 30;
    l2 = { Cache.size_bytes = 4 * 1024 * 1024; assoc = 16; line_bytes = 32 };
    l2_latency = 90;
    dram_latency = 250;
    dram_txns_per_cycle = 8.0;
    clock_ghz = 1.5;
  }

(* An H100-class part (the paper's correlation hardware): many more SMs,
   a much larger L2 and HBM-class bandwidth. *)
let h100 =
  {
    rtx3070 with
    n_sms = 132;
    max_warps_per_sm = 64;
    issue_width = 4;
    l2 = { Cache.size_bytes = 50 * 1024 * 1024; assoc = 16; line_bytes = 32 };
    dram_latency = 350;
    dram_txns_per_cycle = 48.0;
    clock_ghz = 1.8;
  }

(* A smaller part for unit tests: exposes contention with few warps. *)
let tiny =
  {
    rtx3070 with
    n_sms = 2;
    max_warps_per_sm = 4;
    l1 = { Cache.size_bytes = 4 * 1024; assoc = 4; line_bytes = 32 };
    l2 = { Cache.size_bytes = 32 * 1024; assoc = 8; line_bytes = 32 };
    dram_txns_per_cycle = 1.0;
  }

(** Execution latency per micro-op class (cycles). *)
let latency_of (c : Opclass.t) =
  match c with
  | Opclass.Ialu -> 4
  | Opclass.Imul -> 6
  | Opclass.Idiv -> 24
  | Opclass.Falu -> 4
  | Opclass.Fmul -> 5
  | Opclass.Fdiv -> 20
  | Opclass.Branch -> 4
  | Opclass.Callret -> 5
  | Opclass.Sync -> 12
  | Opclass.Load | Opclass.Store -> 0 (* determined by the memory system *)
