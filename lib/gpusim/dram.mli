(** DRAM timing: fixed access latency plus a global bandwidth limit — each
    32 B transaction occupies the channel for [1/bandwidth] cycles, so
    bursts queue behind each other. *)

type t = {
  latency : int;
  interval : float;
  mutable next_free : float;
  mutable transactions : int;
}

val create : latency:int -> transactions_per_cycle:float -> t

(** [access t ~now] — completion cycle of one transaction issued at [now]. *)
val access : t -> now:int -> int

val busy_until : t -> int
