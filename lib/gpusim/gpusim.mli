(** Trace-driven cycle-level SIMT simulator — the stand-in for Accel-Sim
    (paper §III, §V-A).

    Consumes the analyzer's warp-level RISC traces and models multiple SMs
    with bounded warp residency, GTO/LRR scheduling, in-order per-warp
    issue gated by a register scoreboard and an MSHR limit, per-SM L1s, a
    shared L2 and a bandwidth-limited DRAM channel. *)

type stats = {
  cycles : int;
  instructions : int;  (** warp-level micro-ops issued *)
  thread_instructions : int;  (** summed over active lanes *)
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  dram_transactions : int;
  idle_cycles : int;  (** cycles where no SM issued *)
  stall_dependency : int;  (** SM-cycles blocked on ALU-produced registers *)
  stall_memory : int;  (** SM-cycles blocked on outstanding loads / MSHRs *)
  stall_empty : int;  (** SM-cycles with no resident warps *)
}

val ipc : stats -> float

(** Run one kernel (a whole warp trace) to completion. *)
val run : ?config:Config.t -> Threadfuser.Warp_trace.t -> stats

(** Wall-clock seconds at the configured core clock. *)
val seconds : config:Config.t -> stats -> float

val pp_stats : Format.formatter -> stats -> unit

(** Dominant bottleneck classification for advisor-style summaries. *)
val bottleneck : stats -> [ `Memory | `Dependencies | `Throughput ]
