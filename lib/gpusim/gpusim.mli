(** Trace-driven cycle-level SIMT simulator — the stand-in for Accel-Sim
    (paper §III, §V-A).

    Consumes the analyzer's warp-level RISC traces and models multiple SMs
    with bounded warp residency, GTO/LRR scheduling, in-order per-warp
    issue gated by a register scoreboard and an MSHR limit, per-SM L1s, a
    shared L2 and a bandwidth-limited DRAM channel.

    Execution is decoupled into SM-local legs plus a deterministic
    cycle-epoch barrier merge of the shared L2/DRAM, so the SM partition
    can run across OCaml 5 domains ([-j]) with byte-identical statistics
    at any domain count and any epoch length (docs/performance.md). *)

type stats = {
  cycles : int;
  instructions : int;  (** warp-level micro-ops issued *)
  thread_instructions : int;  (** summed over active lanes *)
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  dram_transactions : int;
  idle_cycles : int;  (** SM-cycles a working SM spent not issuing *)
  stall_dependency : int;
      (** stall episodes blocked on ALU-produced registers *)
  stall_memory : int;
      (** stall episodes blocked on outstanding loads / MSHRs *)
  stall_empty : int;
      (** SM-cycles spent drained while the kernel ran on other SMs *)
}

val ipc : stats -> float

val default_epoch : int

(** Run one kernel (a whole warp trace) to completion.  [domains]
    partitions the SMs over the persistent domain pool
    ({!Threadfuser.Par_replay}); [epoch] sets the cycle-epoch barrier
    length.  Statistics are byte-identical at any [domains >= 1] and any
    [epoch >= 1]; only the wall-clock changes. *)
val run :
  ?config:Config.t ->
  ?domains:int ->
  ?epoch:int ->
  Threadfuser.Warp_trace.t ->
  stats

(** Wall-clock seconds at the configured core clock. *)
val seconds : config:Config.t -> stats -> float

val pp_stats : Format.formatter -> stats -> unit

(** Dominant bottleneck classification for advisor-style summaries. *)
val bottleneck : stats -> [ `Memory | `Dependencies | `Throughput ]
