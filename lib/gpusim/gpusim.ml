(** Trace-driven cycle-level SIMT simulator — the repository's stand-in for
    Accel-Sim (paper §III, §V-A).

    Consumes the warp-level RISC traces the analyzer generates
    ({!Threadfuser.Warp_trace}) and models:

    - multiple SMs, each holding a bounded set of resident warps, with
      greedy-then-oldest (or loose-round-robin) scheduling and a configurable
      issue width;
    - in-order per-warp issue gated by a register scoreboard and an MSHR
      limit on outstanding loads;
    - a per-SM L1, a shared L2 and a bandwidth-limited DRAM channel, with
      per-access coalescing into 32 B transactions (the lane addresses come
      from the trace);
    - functional-unit latencies per micro-op class.

    The output is total cycles plus pipeline/memory statistics, from which
    the Fig. 6 speedup projections are produced. *)

module Warp_trace = Threadfuser.Warp_trace
module Mask = Threadfuser.Mask
module Obs = Threadfuser_obs.Obs

let c_sim_cycles =
  Obs.Counter.make "tf_gpusim_cycles_total" ~help:"simulated GPU cycles"
let c_sim_instrs =
  Obs.Counter.make "tf_gpusim_instrs_total"
    ~help:"warp-level micro-ops issued by the cycle simulator"

type stats = {
  cycles : int;
  instructions : int; (* warp-level micro-ops issued *)
  thread_instructions : int; (* summed over active lanes *)
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  dram_transactions : int;
  idle_cycles : int; (* cycles where no SM issued *)
  (* per-SM-cycle stall attribution: when a resident SM issues nothing,
     the cycle is charged to the priority warp's blocking reason *)
  stall_dependency : int; (* waiting on a register produced by ALU work *)
  stall_memory : int; (* waiting on an outstanding load / MSHR slot *)
  stall_empty : int; (* SM had no resident warps *)
}

let ipc s =
  if s.cycles = 0 then 0.0
  else float_of_int s.instructions /. float_of_int s.cycles

(* ------------------------------------------------------------------ *)

type warp_rt = {
  wid : int;
  ops : Warp_trace.entry array;
  mutable next : int;
  reg_ready : int array;
  mutable outstanding : int list; (* completion cycles of in-flight loads *)
}

type stall_reason = Dep_alu | Dep_mem

type issue_result = Issued | Not_ready of int * stall_reason | Done

type sm = {
  l1 : Cache.t;
  mutable resident : warp_rt list; (* scheduling priority order *)
  pending : warp_rt Queue.t;
}

type t = {
  config : Config.t;
  l2 : Cache.t;
  dram : Dram.t;
  sms : sm array;
  mutable thread_instructions : int;
}

let lines_of_mem (m : Warp_trace.mem_op) =
  let lines = ref [] in
  Array.iter
    (fun addr ->
      if addr >= 0 then begin
        let first = addr / 32
        and last = (addr + max 1 m.Warp_trace.size - 1) / 32 in
        for l = first to last do
          if not (List.mem l !lines) then lines := l :: !lines
        done
      end)
    m.Warp_trace.addrs;
  !lines

(* Completion cycle of a memory operation issued at [now]: each of its 32 B
   transactions walks the hierarchy; the op completes when the last does. *)
let memory_time t sm ~now (m : Warp_trace.mem_op) =
  let cfg = t.config in
  List.fold_left
    (fun worst line ->
      let addr = line * 32 in
      let time =
        if Cache.access sm.l1 addr then now + cfg.Config.l1_latency
        else if Cache.access t.l2 addr then
          now + cfg.Config.l1_latency + cfg.Config.l2_latency
        else
          Dram.access t.dram ~now + cfg.Config.l1_latency
          + cfg.Config.l2_latency
      in
      max worst time)
    (now + cfg.Config.l1_latency)
    (lines_of_mem m)

let try_issue t sm ~now (w : warp_rt) : issue_result =
  if w.next >= Array.length w.ops then Done
  else begin
    let entry = w.ops.(w.next) in
    let op = entry.Warp_trace.op in
    let dep_ready =
      Array.fold_left
        (fun acc r -> if r >= 0 then max acc w.reg_ready.(r) else acc)
        0 op.Warp_trace.srcs
    in
    if dep_ready > now then begin
      (* attribute the dependency to memory if an outstanding load will
         complete exactly then (the common long-latency case) *)
      let reason =
        if List.exists (fun c -> c >= dep_ready) w.outstanding then Dep_mem
        else Dep_alu
      in
      Not_ready (dep_ready, reason)
    end
    else begin
      w.outstanding <- List.filter (fun c -> c > now) w.outstanding;
      let mshr_full =
        match op.Warp_trace.mem with
        | Some m ->
            (not m.Warp_trace.is_store)
            && List.length w.outstanding >= t.config.Config.mshr_per_warp
        | None -> false
      in
      if mshr_full then
        Not_ready (List.fold_left min max_int w.outstanding, Dep_mem)
      else begin
        (let completion =
           match op.Warp_trace.mem with
           | Some m ->
               let c = memory_time t sm ~now m in
               if not m.Warp_trace.is_store then
                 w.outstanding <- c :: w.outstanding;
               c
           | None -> now + Config.latency_of op.Warp_trace.cls
         in
         if op.Warp_trace.dst >= 0 then
           w.reg_ready.(op.Warp_trace.dst) <- completion);
        w.next <- w.next + 1;
        t.thread_instructions <-
          t.thread_instructions + Mask.count entry.Warp_trace.mask;
        Issued
      end
    end
  end

(** Run a kernel (one warp trace) to completion. *)
let run ?(config = Config.rtx3070) (wt : Warp_trace.t) : stats =
  Obs.span "gpusim"
    ~args:[ ("warps", string_of_int (Array.length wt.Warp_trace.warps)) ]
  @@ fun () ->
  let t =
    {
      config;
      l2 = Cache.create config.Config.l2;
      dram =
        Dram.create ~latency:config.Config.dram_latency
          ~transactions_per_cycle:config.Config.dram_txns_per_cycle;
      sms =
        Array.init config.Config.n_sms (fun _ ->
            {
              l1 = Cache.create config.Config.l1;
              resident = [];
              pending = Queue.create ();
            });
      thread_instructions = 0;
    }
  in
  Array.iteri
    (fun i (w : Warp_trace.warp) ->
      if Array.length w.Warp_trace.ops > 0 then
        Queue.add
          {
            wid = w.Warp_trace.warp_id;
            ops = w.Warp_trace.ops;
            next = 0;
            reg_ready = Array.make Warp_trace.reg_file_size 0;
            outstanding = [];
          }
          t.sms.(i mod config.Config.n_sms).pending)
    wt.Warp_trace.warps;
  let cycle = ref 0 and instructions = ref 0 and idle = ref 0 in
  let stall_dep = ref 0 and stall_mem = ref 0 and stall_empty = ref 0 in
  let work_left () =
    Array.exists
      (fun sm -> sm.resident <> [] || not (Queue.is_empty sm.pending))
      t.sms
  in
  while work_left () do
    let issued_any = ref false and next_event = ref max_int in
    Array.iter
      (fun sm ->
        let sm_issued_before = !instructions in
        let first_reason = ref None in
        while
          List.length sm.resident < config.Config.max_warps_per_sm
          && not (Queue.is_empty sm.pending)
        do
          sm.resident <- sm.resident @ [ Queue.pop sm.pending ]
        done;
        let issued = ref 0 in
        let issued_warps = ref [] and stalled = ref [] in
        List.iter
          (fun w ->
            if !issued >= config.Config.issue_width then stalled := w :: !stalled
            else
              match try_issue t sm ~now:!cycle w with
              | Issued ->
                  incr issued;
                  incr instructions;
                  issued_any := true;
                  issued_warps := w :: !issued_warps
              | Not_ready (e, reason) ->
                  if e < !next_event then next_event := e;
                  if !first_reason = None then first_reason := Some reason;
                  stalled := w :: !stalled
              | Done -> () (* retire from residency *))
          sm.resident;
        (* GTO: warps that issued keep priority; LRR: they rotate to the
           back. *)
        sm.resident <-
          (match config.Config.scheduler with
          | Config.Gto -> List.rev_append !issued_warps (List.rev !stalled)
          | Config.Lrr -> List.rev_append !stalled (List.rev !issued_warps));
        (* stall attribution for this SM-cycle *)
        if !instructions = sm_issued_before then begin
          match (!first_reason, sm.resident) with
          | _, [] -> incr stall_empty
          | Some Dep_mem, _ -> incr stall_mem
          | Some Dep_alu, _ -> incr stall_dep
          | None, _ :: _ -> incr stall_dep
        end)
      t.sms;
    if !issued_any then incr cycle
    else begin
      let target =
        if !next_event = max_int then !cycle + 1
        else max (!cycle + 1) !next_event
      in
      idle := !idle + (target - !cycle);
      cycle := target
    end
  done;
  Obs.Counter.add c_sim_cycles !cycle;
  Obs.Counter.add c_sim_instrs !instructions;
  {
    cycles = !cycle;
    instructions = !instructions;
    thread_instructions = t.thread_instructions;
    l1_hits = Array.fold_left (fun acc sm -> acc + sm.l1.Cache.hits) 0 t.sms;
    l1_misses = Array.fold_left (fun acc sm -> acc + sm.l1.Cache.misses) 0 t.sms;
    l2_hits = t.l2.Cache.hits;
    l2_misses = t.l2.Cache.misses;
    dram_transactions = t.dram.Dram.transactions;
    idle_cycles = !idle;
    stall_dependency = !stall_dep;
    stall_memory = !stall_mem;
    stall_empty = !stall_empty;
  }

(** Wall-clock seconds at the configured core clock. *)
let seconds ~(config : Config.t) (s : stats) =
  float_of_int s.cycles /. (config.Config.clock_ghz *. 1e9)

let pp_stats ppf s =
  Fmt.pf ppf
    "cycles=%d instrs=%d ipc=%.2f l1=%d/%d l2=%d/%d dram=%d idle=%d      stalls[mem=%d dep=%d empty=%d]"
    s.cycles s.instructions (ipc s) s.l1_hits s.l1_misses s.l2_hits
    s.l2_misses s.dram_transactions s.idle_cycles s.stall_memory
    s.stall_dependency s.stall_empty

(* Dominant bottleneck, for advisor-style summaries.  Stall counters count
   stall *episodes* (the cycle loop skips ahead through quiet periods), so
   they are compared against each other and against the issue count rather
   than against raw cycles. *)
let bottleneck s =
  let total = s.stall_memory + s.stall_dependency in
  if total * 4 < s.instructions then `Throughput
  else if s.stall_memory >= s.stall_dependency then `Memory
  else `Dependencies
