(** Trace-driven cycle-level SIMT simulator — the repository's stand-in for
    Accel-Sim (paper §III, §V-A).

    Consumes the warp-level RISC traces the analyzer generates
    ({!Threadfuser.Warp_trace}) and models:

    - multiple SMs, each holding a bounded set of resident warps, with
      greedy-then-oldest (or loose-round-robin) scheduling and a configurable
      issue width;
    - in-order per-warp issue gated by a register scoreboard and an MSHR
      limit on outstanding loads;
    - a per-SM L1, a shared L2 and a bandwidth-limited DRAM channel, with
      per-access coalescing into 32 B transactions (the lane addresses come
      from the trace).

    {b Execution model: SM-local legs + cycle-epoch barrier merge.}  The
    simulation is decoupled so SMs can run on separate domains
    (docs/performance.md):

    - {e local leg}: each SM simulates only private state — its L1, its
      warps' scoreboards and MSHRs — with shared-memory responses taken at
      their contention-free nominal latency (L1 miss = L1 + L2 latency).
      Every L1 miss is appended to a per-SM access log stamped with the
      SM-local issue cycle.
    - {e epoch merge}: at each epoch boundary, a single deterministic
      reduction replays the union of all SMs' logged accesses through the
      shared L2 and the DRAM channel in total order [(cycle, sm, emission
      order)].  DRAM-bound responses complete later than their nominal
      time; the excess is charged back to the owning SM as a memory tail.
      An SM finishes at [max(issue-drain cycle, memory tail)], and the
      kernel when the slowest SM does.

    The local legs never read shared state and the merge folds a totally
    ordered stream, so the result is byte-identical at {e any} domain
    count and {e any} epoch length — epochs only bound the access-log
    memory and set the barrier cadence.  The output is total cycles plus
    pipeline/memory statistics, from which the Fig. 6 speedup projections
    are produced. *)

module Warp_trace = Threadfuser.Warp_trace
module Mask = Threadfuser.Mask
module Par_replay = Threadfuser.Par_replay
module Obs = Threadfuser_obs.Obs

let c_sim_cycles =
  Obs.Counter.make "tf_gpusim_cycles_total" ~help:"simulated GPU cycles"
let c_sim_instrs =
  Obs.Counter.make "tf_gpusim_instrs_total"
    ~help:"warp-level micro-ops issued by the cycle simulator"
let c_sim_epochs =
  Obs.Counter.make "tf_gpusim_epochs_total"
    ~help:"cycle-epoch barrier merges performed by the SM-parallel simulator"

type stats = {
  cycles : int;
  instructions : int; (* warp-level micro-ops issued *)
  thread_instructions : int; (* summed over active lanes *)
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  dram_transactions : int;
  idle_cycles : int; (* SM-cycles a working SM spent not issuing *)
  (* per-SM stall attribution: each time an SM's scheduler finds nothing
     issuable it charges one episode to the priority warp's blocking
     reason, then sleeps to the next wake-up event *)
  stall_dependency : int; (* waiting on a register produced by ALU work *)
  stall_memory : int; (* waiting on an outstanding load / MSHR slot *)
  stall_empty : int; (* SM-cycles spent drained while the kernel ran on *)
}

let ipc s =
  if s.cycles = 0 then 0.0
  else float_of_int s.instructions /. float_of_int s.cycles

(* ------------------------------------------------------------------ *)

type warp_rt = {
  wid : int;
  ops : Warp_trace.entry array;
  mutable next : int;
  reg_ready : int array;
  mutable outstanding : int list; (* completion cycles of in-flight loads *)
}

type stall_reason = Dep_alu | Dep_mem

type issue_result = Issued | Not_ready of int * stall_reason | Done

(* One logged shared-memory access: an L1 miss the epoch merge must
   replay through the shared L2/DRAM.  [a_ts] is the SM-local issue
   cycle; within one SM the log is in emission order (ts nondecreasing),
   so concatenating the logs in SM order and stable-sorting on
   [(a_ts, a_sm)] yields the total merge order. *)
type access = { a_ts : int; a_sm : int; a_line : int }

type sm = {
  sm_id : int;
  l1 : Cache.t;
  mutable resident : warp_rt list; (* scheduling priority order *)
  pending : warp_rt Queue.t;
  mutable now : int; (* SM-local clock *)
  mutable sleeping : bool;
  mutable sleep_until : int;
      (* carried across epoch boundaries so chunking cannot re-charge a
         stall episode or change the wake-up cycle *)
  mutable finished : bool;
  mutable finish : int; (* issue-drain cycle *)
  mutable had_work : bool;
  mutable instrs : int;
  mutable tinstrs : int;
  mutable idle : int;
  mutable s_dep : int;
  mutable s_mem : int;
  (* this epoch's access log (grow-by-doubling; reset at each merge) *)
  mutable log : access array;
  mutable log_n : int;
  (* actual completion cycle of the SM's slowest DRAM-bound response *)
  mutable mem_tail : int;
}

let no_access = { a_ts = 0; a_sm = 0; a_line = 0 }

let log_access sm line =
  if sm.log_n = Array.length sm.log then begin
    let bigger =
      Array.make (max 64 (2 * Array.length sm.log)) no_access
    in
    Array.blit sm.log 0 bigger 0 sm.log_n;
    sm.log <- bigger
  end;
  sm.log.(sm.log_n) <- { a_ts = sm.now; a_sm = sm.sm_id; a_line = line };
  sm.log_n <- sm.log_n + 1

let lines_of_mem (m : Warp_trace.mem_op) =
  let lines = ref [] in
  Array.iter
    (fun addr ->
      if addr >= 0 then begin
        let first = addr / 32
        and last = (addr + max 1 m.Warp_trace.size - 1) / 32 in
        for l = first to last do
          if not (List.mem l !lines) then lines := l :: !lines
        done
      end)
    m.Warp_trace.addrs;
  !lines

(* Nominal completion cycle of a memory operation issued at [sm.now]:
   each 32 B transaction checks the private L1; misses are logged for the
   epoch merge and charged the contention-free L1+L2 latency.  The op
   completes when the last transaction does. *)
let memory_time (cfg : Config.t) sm (m : Warp_trace.mem_op) =
  let now = sm.now in
  List.fold_left
    (fun worst line ->
      let time =
        if Cache.access sm.l1 (line * 32) then now + cfg.Config.l1_latency
        else begin
          log_access sm line;
          now + cfg.Config.l1_latency + cfg.Config.l2_latency
        end
      in
      max worst time)
    (now + cfg.Config.l1_latency)
    (lines_of_mem m)

let try_issue (cfg : Config.t) sm (w : warp_rt) : issue_result =
  if w.next >= Array.length w.ops then Done
  else begin
    let now = sm.now in
    let entry = w.ops.(w.next) in
    let op = entry.Warp_trace.op in
    let dep_ready =
      Array.fold_left
        (fun acc r -> if r >= 0 then max acc w.reg_ready.(r) else acc)
        0 op.Warp_trace.srcs
    in
    if dep_ready > now then begin
      (* attribute the dependency to memory if an outstanding load will
         complete exactly then (the common long-latency case) *)
      let reason =
        if List.exists (fun c -> c >= dep_ready) w.outstanding then Dep_mem
        else Dep_alu
      in
      Not_ready (dep_ready, reason)
    end
    else begin
      w.outstanding <- List.filter (fun c -> c > now) w.outstanding;
      let mshr_full =
        match op.Warp_trace.mem with
        | Some m ->
            (not m.Warp_trace.is_store)
            && List.length w.outstanding >= cfg.Config.mshr_per_warp
        | None -> false
      in
      if mshr_full then
        Not_ready (List.fold_left min max_int w.outstanding, Dep_mem)
      else begin
        (let completion =
           match op.Warp_trace.mem with
           | Some m ->
               let c = memory_time cfg sm m in
               if not m.Warp_trace.is_store then
                 w.outstanding <- c :: w.outstanding;
               c
           | None -> now + Config.latency_of op.Warp_trace.cls
         in
         if op.Warp_trace.dst >= 0 then
           w.reg_ready.(op.Warp_trace.dst) <- completion);
        w.next <- w.next + 1;
        sm.instrs <- sm.instrs + 1;
        sm.tinstrs <- sm.tinstrs + Mask.count entry.Warp_trace.mask;
        Issued
      end
    end
  end

(* Advance one SM's local leg to (at most) cycle [until].  Pure function
   of the SM's own state: no shared reads, no clock coupling — chunking
   the timeline at any epoch boundary resumes bit-exactly.  Stall
   episodes are charged once at sleep entry; the slept cycles accrue as
   idle time however the sleep is chunked. *)
let step_sm (cfg : Config.t) sm ~until =
  while (not sm.finished) && sm.now < until do
    if sm.sleeping then begin
      let target = min sm.sleep_until until in
      sm.idle <- sm.idle + (target - sm.now);
      sm.now <- target;
      if sm.now >= sm.sleep_until then sm.sleeping <- false
    end
    else begin
      while
        List.length sm.resident < cfg.Config.max_warps_per_sm
        && not (Queue.is_empty sm.pending)
      do
        sm.resident <- sm.resident @ [ Queue.pop sm.pending ]
      done;
      if sm.resident = [] then begin
        sm.finished <- true;
        sm.finish <- sm.now
      end
      else begin
        let issued = ref 0 and next_event = ref max_int in
        let first_reason = ref None in
        let issued_warps = ref [] and stalled = ref [] in
        List.iter
          (fun w ->
            if !issued >= cfg.Config.issue_width then stalled := w :: !stalled
            else
              match try_issue cfg sm w with
              | Issued ->
                  incr issued;
                  issued_warps := w :: !issued_warps
              | Not_ready (e, reason) ->
                  if e < !next_event then next_event := e;
                  if !first_reason = None then first_reason := Some reason;
                  stalled := w :: !stalled
              | Done -> () (* retire from residency *))
          sm.resident;
        (* GTO: warps that issued keep priority; LRR: they rotate to the
           back. *)
        sm.resident <-
          (match cfg.Config.scheduler with
          | Config.Gto -> List.rev_append !issued_warps (List.rev !stalled)
          | Config.Lrr -> List.rev_append !stalled (List.rev !issued_warps));
        if !issued > 0 then sm.now <- sm.now + 1
        else if sm.resident = [] && Queue.is_empty sm.pending then begin
          sm.finished <- true;
          sm.finish <- sm.now
        end
        else begin
          let target =
            if !next_event = max_int then sm.now + 1
            else max (sm.now + 1) !next_event
          in
          (match !first_reason with
          | Some Dep_mem -> sm.s_mem <- sm.s_mem + 1
          | Some Dep_alu | None -> sm.s_dep <- sm.s_dep + 1);
          sm.sleeping <- true;
          sm.sleep_until <- target
        end
      end
    end
  done

let default_epoch = 4096

(** Run a kernel (one warp trace) to completion.  [domains] partitions
    the SMs across the persistent domain pool; [epoch] sets the
    cycle-epoch barrier length.  Both only change wall-clock: the stats
    are byte-identical at any [domains] and any [epoch >= 1]. *)
let run ?(config = Config.rtx3070) ?(domains = 1) ?(epoch = default_epoch)
    (wt : Warp_trace.t) : stats =
  let epoch = max 1 epoch in
  Obs.span "gpusim"
    ~args:
      [
        ("warps", string_of_int (Array.length wt.Warp_trace.warps));
        ("domains", string_of_int domains);
        ("epoch", string_of_int epoch);
      ]
  @@ fun () ->
  let l2 = Cache.create config.Config.l2 in
  let dram =
    Dram.create ~latency:config.Config.dram_latency
      ~transactions_per_cycle:config.Config.dram_txns_per_cycle
  in
  let sms =
    Array.init config.Config.n_sms (fun sm_id ->
        {
          sm_id;
          l1 = Cache.create config.Config.l1;
          resident = [];
          pending = Queue.create ();
          now = 0;
          sleeping = false;
          sleep_until = 0;
          finished = false;
          finish = 0;
          had_work = false;
          instrs = 0;
          tinstrs = 0;
          idle = 0;
          s_dep = 0;
          s_mem = 0;
          log = [||];
          log_n = 0;
          mem_tail = 0;
        })
  in
  Array.iteri
    (fun i (w : Warp_trace.warp) ->
      if Array.length w.Warp_trace.ops > 0 then begin
        let sm = sms.(i mod config.Config.n_sms) in
        sm.had_work <- true;
        Queue.add
          {
            wid = w.Warp_trace.warp_id;
            ops = w.Warp_trace.ops;
            next = 0;
            reg_ready = Array.make Warp_trace.reg_file_size 0;
            outstanding = [];
          }
          sm.pending
      end)
    wt.Warp_trace.warps;
  (* work only the SMs that got warps; drained ones are finalized below *)
  let active = Array.of_list (List.filter (fun sm -> sm.had_work) (Array.to_list sms)) in
  Array.iter
    (fun sm -> if not sm.had_work then sm.finished <- true)
    sms;
  let horizon = ref epoch and epochs = ref 0 in
  let merge_buf = ref [||] in
  while Array.exists (fun sm -> not sm.finished) active do
    incr epochs;
    (* local legs: disjoint SM partitions, any domain count *)
    Par_replay.parallel_for ~domains ~n:(Array.length active) (fun i ->
        step_sm config active.(i) ~until:!horizon);
    (* deterministic barrier merge: replay this epoch's L1 misses through
       the shared L2/DRAM in (cycle, sm, emission) total order.  Epochs
       partition the logs by timestamp, so chunking is invisible. *)
    let total = Array.fold_left (fun acc sm -> acc + sm.log_n) 0 active in
    if total > 0 then begin
      if Array.length !merge_buf < total then
        merge_buf := Array.make total no_access;
      let buf = !merge_buf in
      let k = ref 0 in
      Array.iter
        (fun sm ->
          Array.blit sm.log 0 buf !k sm.log_n;
          k := !k + sm.log_n;
          sm.log_n <- 0)
        active;
      let slice = Array.sub buf 0 total in
      Array.stable_sort
        (fun a b -> compare (a.a_ts, a.a_sm) (b.a_ts, b.a_sm))
        slice;
      Array.iter
        (fun a ->
          if not (Cache.access l2 (a.a_line * 32)) then begin
            let c = Dram.access dram ~now:a.a_ts in
            let done_at =
              c + config.Config.l1_latency + config.Config.l2_latency
            in
            let sm = sms.(a.a_sm) in
            if done_at > sm.mem_tail then sm.mem_tail <- done_at
          end)
        slice
    end;
    horizon := !horizon + epoch
  done;
  (* fan-in: every tally is per-SM and additive *)
  let cycles =
    Array.fold_left
      (fun acc sm -> max acc (max sm.finish sm.mem_tail))
      0 active
  in
  let instructions = Array.fold_left (fun a sm -> a + sm.instrs) 0 sms in
  let stall_empty =
    Array.fold_left
      (fun acc sm ->
        acc + max 0 (cycles - max sm.finish sm.mem_tail))
      0 sms
  in
  Obs.Counter.add c_sim_cycles cycles;
  Obs.Counter.add c_sim_instrs instructions;
  Obs.Counter.add c_sim_epochs !epochs;
  {
    cycles;
    instructions;
    thread_instructions = Array.fold_left (fun a sm -> a + sm.tinstrs) 0 sms;
    l1_hits = Array.fold_left (fun acc sm -> acc + sm.l1.Cache.hits) 0 sms;
    l1_misses = Array.fold_left (fun acc sm -> acc + sm.l1.Cache.misses) 0 sms;
    l2_hits = l2.Cache.hits;
    l2_misses = l2.Cache.misses;
    dram_transactions = dram.Dram.transactions;
    idle_cycles = Array.fold_left (fun a sm -> a + sm.idle) 0 sms;
    stall_dependency = Array.fold_left (fun a sm -> a + sm.s_dep) 0 sms;
    stall_memory = Array.fold_left (fun a sm -> a + sm.s_mem) 0 sms;
    stall_empty;
  }

(** Wall-clock seconds at the configured core clock. *)
let seconds ~(config : Config.t) (s : stats) =
  float_of_int s.cycles /. (config.Config.clock_ghz *. 1e9)

let pp_stats ppf s =
  Fmt.pf ppf
    "cycles=%d instrs=%d ipc=%.2f l1=%d/%d l2=%d/%d dram=%d idle=%d      stalls[mem=%d dep=%d empty=%d]"
    s.cycles s.instructions (ipc s) s.l1_hits s.l1_misses s.l2_hits
    s.l2_misses s.dram_transactions s.idle_cycles s.stall_memory
    s.stall_dependency s.stall_empty

(* Dominant bottleneck, for advisor-style summaries.  Stall counters count
   stall *episodes* (each SM charges one per sleep entry, then skips ahead
   through the quiet period), so they are compared against each other and
   against the issue count rather than against raw cycles. *)
let bottleneck s =
  let total = s.stall_memory + s.stall_dependency in
  if total * 4 < s.instructions then `Throughput
  else if s.stall_memory >= s.stall_dependency then `Memory
  else `Dependencies
