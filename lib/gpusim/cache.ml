(** Set-associative LRU cache model shared by the GPU and CPU timing
    simulators.  Tracks tags only (no data); [access] reports hit/miss and
    allocates on miss. *)

type config = { size_bytes : int; assoc : int; line_bytes : int }

type t = {
  config : config;
  n_sets : int;
  tags : int array; (* set * assoc + way; -1 = invalid *)
  stamps : int array; (* LRU timestamps *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create config =
  let lines = config.size_bytes / config.line_bytes in
  if lines <= 0 || lines mod config.assoc <> 0 then
    invalid_arg "Cache.create: size/assoc/line mismatch";
  let n_sets = lines / config.assoc in
  {
    config;
    n_sets;
    tags = Array.make lines (-1);
    stamps = Array.make lines 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

(** [access t addr] — true on hit.  Misses allocate (LRU victim). *)
let access t addr =
  t.clock <- t.clock + 1;
  let line_addr = addr / t.config.line_bytes in
  let set = line_addr mod t.n_sets in
  let tag = line_addr / t.n_sets in
  let base = set * t.config.assoc in
  let hit = ref false in
  (try
     for way = 0 to t.config.assoc - 1 do
       if t.tags.(base + way) = tag then begin
         t.stamps.(base + way) <- t.clock;
         hit := true;
         raise Exit
       end
     done
   with Exit -> ());
  if !hit then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* evict the LRU way *)
    let victim = ref base in
    for way = 1 to t.config.assoc - 1 do
      if t.stamps.(base + way) < t.stamps.(!victim) then victim := base + way
    done;
    t.tags.(!victim) <- tag;
    t.stamps.(!victim) <- t.clock;
    false
  end

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
