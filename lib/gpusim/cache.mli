(** Set-associative LRU cache model (tags only) shared by the GPU and CPU
    timing simulators. *)

type config = { size_bytes : int; assoc : int; line_bytes : int }

type t = {
  config : config;
  n_sets : int;
  tags : int array;
  stamps : int array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

(** Raises if size/assoc/line do not divide evenly. *)
val create : config -> t

(** [access t addr] — true on hit; misses allocate (LRU victim). *)
val access : t -> int -> bool

val hit_rate : t -> float

val reset_stats : t -> unit
