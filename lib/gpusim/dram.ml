(** DRAM timing: fixed access latency plus a global bandwidth limit modelled
    as a token bucket — each 32 B transaction occupies the channel for
    [1/bandwidth] cycles, so bursts queue behind each other. *)

type t = {
  latency : int;
  interval : float; (* cycles per transaction = 1 / bandwidth *)
  mutable next_free : float;
  mutable transactions : int;
}

let create ~latency ~transactions_per_cycle =
  if transactions_per_cycle <= 0.0 then invalid_arg "Dram.create";
  {
    latency;
    interval = 1.0 /. transactions_per_cycle;
    next_free = 0.0;
    transactions = 0;
  }

(** [access t ~now] returns the completion cycle of one transaction issued
    at cycle [now]. *)
let access t ~now =
  let start = Float.max (float_of_int now) t.next_free in
  t.next_free <- start +. t.interval;
  t.transactions <- t.transactions + 1;
  int_of_float start + t.latency

let busy_until t = int_of_float t.next_free
