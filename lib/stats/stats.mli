(** The statistics used in the paper's correlation study (§IV). *)

val mean : float array -> float

(** Population standard deviation. *)
val stddev : float array -> float

(** Mean absolute error of [predicted] against [reference]. *)
val mae : predicted:float array -> reference:float array -> float

(** Mean absolute relative error (entries with zero reference skipped). *)
val mape : predicted:float array -> reference:float array -> float

(** Pearson correlation coefficient; 0 when either series is constant. *)
val pearson : float array -> float array -> float

(** Geometric mean; raises on non-positive entries. *)
val geomean : float array -> float

(** Linear-interpolated [q]-quantile ([0 <= q <= 1]); the input need not be
    sorted.  Raises [Invalid_argument] on an empty array or out-of-range
    [q]. *)
val percentile : q:float -> float array -> float

(** Fraction of samples within [k] standard deviations of the mean.
    Raises [Invalid_argument] on an empty array. *)
val within_stddev : ?k:float -> float array -> float
