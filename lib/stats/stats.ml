(** The statistics used in the paper's correlation study (§IV): mean
    absolute error against a reference, Pearson correlation ("Correl"),
    standard deviation of errors, and geometric means for Fig. 8-style
    summaries. *)

let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.mean";
  Array.fold_left ( +. ) 0.0 a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.stddev";
  let m = mean a in
  let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
  sqrt (ss /. float_of_int n)

(** Mean absolute error of [predicted] against [reference]. *)
let mae ~predicted ~reference =
  if Array.length predicted <> Array.length reference then
    invalid_arg "Stats.mae: length mismatch";
  if Array.length predicted = 0 then invalid_arg "Stats.mae: empty";
  let s = ref 0.0 in
  Array.iteri (fun i p -> s := !s +. abs_float (p -. reference.(i))) predicted;
  !s /. float_of_int (Array.length predicted)

(** Mean absolute *relative* error (|p - r| / r, r <> 0 entries only). *)
let mape ~predicted ~reference =
  if Array.length predicted <> Array.length reference then
    invalid_arg "Stats.mape: length mismatch";
  let s = ref 0.0 and n = ref 0 in
  Array.iteri
    (fun i p ->
      if reference.(i) <> 0.0 then begin
        s := !s +. abs_float ((p -. reference.(i)) /. reference.(i));
        incr n
      end)
    predicted;
  if !n = 0 then 0.0 else !s /. float_of_int !n

(** Pearson correlation coefficient; 0 when either series is constant. *)
let pearson x y =
  if Array.length x <> Array.length y then invalid_arg "Stats.pearson";
  let n = Array.length x in
  if n < 2 then invalid_arg "Stats.pearson: need at least two points";
  let mx = mean x and my = mean y in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = x.(i) -. mx and dy = y.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)

(** Geometric mean; all entries must be positive. *)
let geomean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.geomean";
  let s =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive entry";
        acc +. log x)
      0.0 a
  in
  exp (s /. float_of_int n)

(** Linear-interpolated [q]-quantile ([0 <= q <= 1]) of the samples; the
    input need not be sorted.  Backs the observability histograms'
    p50/p95/p99. *)
let percentile ~q a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q out of [0,1]";
  let s = Array.copy a in
  Array.sort compare s;
  let h = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor h) in
  let hi = int_of_float (ceil h) in
  s.(lo) +. ((h -. float_of_int lo) *. (s.(hi) -. s.(lo)))

(** Fraction of samples within [k] standard deviations of the mean, as the
    paper reports for its error distributions. *)
let within_stddev ?(k = 1.0) a =
  if Array.length a = 0 then invalid_arg "Stats.within_stddev: empty";
  let m = mean a and sd = stddev a in
  let inside = Array.fold_left (fun acc x -> if abs_float (x -. m) <= k *. sd then acc + 1 else acc) 0 a in
  float_of_int inside /. float_of_int (Array.length a)
