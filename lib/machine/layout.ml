(** Address-space layout of the emulated machine.

    {v
      0x0001_0000 .. 0x0fff_ffff   globals (workload input data, locks)
      0x1000_0000 .. 0x5fff_ffff   heap (managed by the IR runtime library)
      0x6000_0000 .. top           per-thread stacks, highest tid lowest
    v}

    Each thread owns a [stack_size] region; its stack pointer starts at the
    region's top and grows down, and the bottom [tls_size] bytes serve as
    thread-local storage (reached through the reserved [tls] register).
    Addresses are classified into the three segments the paper's memory
    divergence study distinguishes (heap vs stack; globals reported with the
    heap as "global memory" when generating SIMT traces). *)

type segment = Global | Heap | Stack

let global_base = 0x0001_0000

let heap_base = 0x1000_0000

let heap_limit = 0x6000_0000

let stack_region_base = 0x6000_0000

let stack_size = 0x10000 (* 64 KiB per thread *)

let tls_size = 0x800

(** Exclusive top of thread [tid]'s stack; the initial stack pointer. *)
let stack_top tid = stack_region_base + ((tid + 1) * stack_size)

let stack_low tid = stack_region_base + (tid * stack_size)

(** Base of thread [tid]'s thread-local storage area. *)
let tls_base tid = stack_low tid

let segment_of addr : segment =
  if addr >= stack_region_base then Stack
  else if addr >= heap_base then Heap
  else Global

let segment_name = function
  | Global -> "global"
  | Heap -> "heap"
  | Stack -> "stack"
