(** Flat byte-addressed memory, lazily paged.

    Pages are 4 KiB [Bytes] buffers allocated on first touch, so the sparse
    multi-gigabyte address space of {!Layout} costs only what workloads
    actually touch.  All multi-byte accesses are little-endian.  Reads of
    untouched memory return zero. *)

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable last_id : int; (* one-entry lookup cache *)
  mutable last_page : Bytes.t;
}

let page_bits = 12

let page_size = 1 lsl page_bits

let create () =
  let zero = Bytes.make page_size '\000' in
  { pages = Hashtbl.create 1024; last_id = -1; last_page = zero }

let page t id =
  if id = t.last_id then t.last_page
  else begin
    let p =
      match Hashtbl.find_opt t.pages id with
      | Some p -> p
      | None ->
          let p = Bytes.make page_size '\000' in
          Hashtbl.add t.pages id p;
          p
    in
    t.last_id <- id;
    t.last_page <- p;
    p
  end

let check_addr addr =
  if addr < 0 then invalid_arg "Memory: negative address"

let load_byte t addr =
  check_addr addr;
  Char.code (Bytes.get (page t (addr lsr page_bits)) (addr land (page_size - 1)))

let store_byte t addr v =
  check_addr addr;
  Bytes.set (page t (addr lsr page_bits)) (addr land (page_size - 1))
    (Char.chr (v land 0xff))

(* Slow cross-page paths assemble values byte by byte. *)
let load_bytes_slow t addr n =
  let v = ref 0 in
  for k = n - 1 downto 0 do
    v := (!v lsl 8) lor load_byte t (addr + k)
  done;
  !v

let store_bytes_slow t addr n v =
  for k = 0 to n - 1 do
    store_byte t (addr + k) ((v lsr (8 * k)) land 0xff)
  done

(** [load t ~width addr]: W1/W2/W4 zero-extend, W8 is the full word. *)
let load t ~width addr =
  check_addr addr;
  let off = addr land (page_size - 1) in
  let n = Threadfuser_isa.Width.bytes width in
  if off + n > page_size then load_bytes_slow t addr n
  else
    let p = page t (addr lsr page_bits) in
    match width with
    | Threadfuser_isa.Width.W1 -> Char.code (Bytes.get p off)
    | Threadfuser_isa.Width.W2 -> Bytes.get_uint16_le p off
    | Threadfuser_isa.Width.W4 ->
        Int32.to_int (Bytes.get_int32_le p off) land 0xffffffff
    | Threadfuser_isa.Width.W8 -> Int64.to_int (Bytes.get_int64_le p off)

let store t ~width addr v =
  check_addr addr;
  let off = addr land (page_size - 1) in
  let n = Threadfuser_isa.Width.bytes width in
  if off + n > page_size then store_bytes_slow t addr n v
  else
    let p = page t (addr lsr page_bits) in
    match width with
    | Threadfuser_isa.Width.W1 -> Bytes.set_uint8 p off (v land 0xff)
    | Threadfuser_isa.Width.W2 -> Bytes.set_uint16_le p off (v land 0xffff)
    | Threadfuser_isa.Width.W4 -> Bytes.set_int32_le p off (Int32.of_int v)
    | Threadfuser_isa.Width.W8 -> Bytes.set_int64_le p off (Int64.of_int v)

(* -- host-side convenience for workload setup --------------------------- *)

let load_i64 t addr = load t ~width:Threadfuser_isa.Width.W8 addr

let store_i64 t addr v = store t ~width:Threadfuser_isa.Width.W8 addr v

let load_i32 t addr = load t ~width:Threadfuser_isa.Width.W4 addr

let store_i32 t addr v = store t ~width:Threadfuser_isa.Width.W4 addr v

(** [store_array64 t addr a] lays out [a] as consecutive 64-bit words. *)
let store_array64 t addr a =
  Array.iteri (fun i v -> store_i64 t (addr + (8 * i)) v) a

let load_array64 t addr n = Array.init n (fun i -> load_i64 t (addr + (8 * i)))

let store_string t addr s =
  String.iteri (fun i c -> store_byte t (addr + i) (Char.code c)) s

let touched_pages t = Hashtbl.length t.pages
