(** Address-space layout of the emulated machine.

    {v
      0x0001_0000 .. 0x0fff_ffff   globals (workload inputs, locks)
      0x1000_0000 .. 0x5fff_ffff   heap (managed by the IR runtime library)
      0x6000_0000 .. top           per-thread stacks
    v}

    Each thread owns a [stack_size] region whose bottom [tls_size] bytes are
    thread-local storage (reached through the reserved [tls] register).
    Addresses classify into the segments the paper's memory-divergence
    study distinguishes (Fig. 10). *)

type segment = Global | Heap | Stack

val global_base : int

val heap_base : int

val heap_limit : int

val stack_region_base : int

val stack_size : int

val tls_size : int

(** Exclusive top of thread [tid]'s stack; its initial stack pointer. *)
val stack_top : int -> int

val stack_low : int -> int

(** Base of thread [tid]'s thread-local storage area. *)
val tls_base : int -> int

val segment_of : int -> segment

val segment_name : segment -> string
