(** Flat byte-addressed memory, lazily paged (4 KiB pages allocated on
    first touch).  All multi-byte accesses are little-endian; reads of
    untouched memory return zero. *)

type t

val create : unit -> t

val load_byte : t -> int -> int

val store_byte : t -> int -> int -> unit

(** [load t ~width addr] — W1/W2/W4 zero-extend; W8 is the full word. *)
val load : t -> width:Threadfuser_isa.Width.t -> int -> int

(** [store t ~width addr v] truncates [v] to the width. *)
val store : t -> width:Threadfuser_isa.Width.t -> int -> int -> unit

(** {2 Host-side helpers for workload setup} *)

val load_i64 : t -> int -> int

val store_i64 : t -> int -> int -> unit

val load_i32 : t -> int -> int

val store_i32 : t -> int -> int -> unit

(** [store_array64 t addr a] lays out [a] as consecutive 64-bit words. *)
val store_array64 : t -> int -> int array -> unit

val load_array64 : t -> int -> int -> int array

val store_string : t -> int -> string -> unit

(** Number of 4 KiB pages touched so far. *)
val touched_pages : t -> int
