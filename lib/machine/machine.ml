(** The MIMD CPU emulator — ThreadFuser's stand-in for "run the unmodified
    binary under Intel PIN".

    It executes an assembled {!Threadfuser_prog.Program} with any number of
    software threads under a deterministic round-robin scheduler and emits,
    per thread, exactly the dynamic trace abstraction the paper's tracer
    produces: executed basic blocks with per-instruction memory accesses,
    call/return markers, lock acquire/release events, and skipped-instruction
    records for I/O work and lock spinning.

    Scheduling is at basic-block granularity ([quantum] blocks per slot), so
    runs are bit-reproducible.  Locks are futex-like: a thread that fails to
    acquire blocks; when the holder releases, ownership transfers FIFO and
    the waiter's wasted spin time is charged as [spin_cost] skipped
    instructions per scheduling slot spent waiting (cf. paper Fig. 8). *)

open Threadfuser_isa
module Program = Threadfuser_prog.Program
module Event = Threadfuser_trace.Event
module Thread_trace = Threadfuser_trace.Thread_trace
module Vec = Threadfuser_util.Vec

exception Machine_error of string

let errf fmt = Fmt.kstr (fun s -> raise (Machine_error s)) fmt

type config = {
  trace : bool; (* record events (disable for timing-only runs) *)
  quantum : int; (* basic blocks per scheduling slot *)
  spin_cost : int; (* skipped instructions per slot spent lock-waiting *)
  max_instrs : int; (* global budget; exceeded = runaway program *)
  max_call_depth : int;
  untraced_functions : string list;
      (* selective tracing (paper §III): calls into these functions (and
         everything beneath them) execute normally but appear in traces as
         one [Skip Excluded] record instead of events *)
}

let default_config =
  {
    trace = true;
    quantum = 8;
    spin_cost = 12;
    max_instrs = 2_000_000_000;
    max_call_depth = 10_000;
    untraced_functions = [];
  }

type thread_state = Ready | Blocked | Finished

(* What a thread was granted while blocked; events are emitted when it is
   next scheduled. *)
type wake = Wake_lock of int | Wake_barrier of int

type thread = {
  tid : int;
  regs : int array;
  mutable fa : int; (* flags: operands of the last Cmp *)
  mutable fb : int;
  mutable fid : int; (* current function *)
  mutable bid : int; (* current block *)
  callstack : (int * int) Vec.t;
  mutable state : thread_state;
  builder : Thread_trace.Builder.t;
  accesses : Event.access Vec.t;
  mutable pending_wake : wake option;
  mutable blocked_since : int; (* scheduler slot when blocking started *)
  mutable suppress_depth : int; (* >0 while inside an excluded function *)
  mutable suppressed_instrs : int; (* instructions hidden so far *)
}

type lock = { mutable owner : int; waiters : int Queue.t }

type barrier = { mutable arrived : int list }

type t = {
  prog : Program.t;
  mem : Memory.t;
  config : config;
  locks : (int, lock) Hashtbl.t;
  barriers : (int, barrier) Hashtbl.t;
  untraced : bool array; (* per function id *)
  mutable instr_count : int;
  mutable slot : int;
}

type result = {
  traces : Thread_trace.t array;
  final_regs : int array array;
  instrs_executed : int;
}

let create ?(config = default_config) prog =
  let untraced = Array.make (Program.func_count prog) false in
  List.iter
    (fun name -> untraced.(Program.find_func prog name) <- true)
    config.untraced_functions;
  {
    prog;
    mem = Memory.create ();
    config;
    locks = Hashtbl.create 64;
    barriers = Hashtbl.create 8;
    untraced;
    instr_count = 0;
    slot = 0;
  }

let memory t = t.mem

let instrs_executed t = t.instr_count

(* ---------------------------------------------------------------- *)
(* Interpreter                                                       *)

let dummy_access = { Event.ioff = 0; addr = 0; size = 0; is_store = false }

let trunc width v =
  match width with
  | Width.W8 -> v
  | Width.W4 -> v land 0xffffffff
  | Width.W2 -> v land 0xffff
  | Width.W1 -> v land 0xff

let mem_addr th (m : Operand.mem) =
  let base = match m.base with Some r -> th.regs.(r) | None -> 0 in
  let index = match m.index with Some (r, s) -> th.regs.(r) * s | None -> 0 in
  base + index + m.disp

let record th ioff addr size is_store =
  Vec.push th.accesses { Event.ioff; addr; size; is_store }

let eval_src m th ioff width (op : Operand.t) =
  match op with
  | Operand.Reg r -> trunc width th.regs.(r)
  | Operand.Imm n -> trunc width n
  | Operand.Mem mm ->
      let addr = mem_addr th mm in
      record th ioff addr (Width.bytes width) false;
      Memory.load m.mem ~width addr

let store_dst m th ioff width (op : Operand.t) v =
  match op with
  | Operand.Reg r -> th.regs.(r) <- trunc width v
  | Operand.Mem mm ->
      let addr = mem_addr th mm in
      record th ioff addr (Width.bytes width) true;
      Memory.store m.mem ~width addr v
  | Operand.Imm _ -> errf "thread %d: store to immediate operand" th.tid

(* The value a lock primitive names: memory operands denote their address
   (like [lea]); registers and immediates denote their value. *)
let lock_target th (op : Operand.t) =
  match op with
  | Operand.Mem mm -> mem_addr th mm
  | Operand.Reg r -> th.regs.(r)
  | Operand.Imm n -> n

type outcome =
  | Next
  | Goto of int
  | Do_call of int
  | Do_ret
  | Do_lock of int
  | Do_unlock of int
  | Do_io of int
  | Do_barrier of int
  | Do_halt

let exec_instr m th ioff (instr : (int, int) Instr.t) : outcome =
  match instr with
  | Instr.Mov (w, dst, src) ->
      let v = eval_src m th ioff w src in
      store_dst m th ioff w dst v;
      Next
  | Instr.Cmov (c, dst, src) ->
      let v = eval_src m th ioff Width.W8 src in
      (match dst with
      | Operand.Reg r -> if Cond.eval c th.fa th.fb then th.regs.(r) <- v
      | Operand.Imm _ | Operand.Mem _ ->
          errf "thread %d: cmov destination must be a register" th.tid);
      Next
  | Instr.Lea (r, mm) ->
      th.regs.(r) <- mem_addr th mm;
      Next
  | Instr.Binop (op, w, dst, src) ->
      let b = eval_src m th ioff w src in
      let a = eval_src m th ioff w dst in
      store_dst m th ioff w dst (trunc w (Op.eval_binop op a b));
      Next
  | Instr.Unop (op, w, dst) ->
      let a = eval_src m th ioff w dst in
      store_dst m th ioff w dst (trunc w (Op.eval_unop op a));
      Next
  | Instr.Cmp (w, x, y) ->
      th.fa <- eval_src m th ioff w x;
      th.fb <- eval_src m th ioff w y;
      Next
  | Instr.Jcc (c, target) -> if Cond.eval c th.fa th.fb then Goto target else Next
  | Instr.Jmp target -> Goto target
  | Instr.Call f -> Do_call f
  | Instr.Ret -> Do_ret
  | Instr.Lock_acquire op -> Do_lock (lock_target th op)
  | Instr.Lock_release op -> Do_unlock (lock_target th op)
  | Instr.Atomic_rmw (op, w, mm, src) ->
      let b = eval_src m th ioff w src in
      let addr = mem_addr th mm in
      record th ioff addr (Width.bytes w) false;
      let a = Memory.load m.mem ~width:w addr in
      record th ioff addr (Width.bytes w) true;
      Memory.store m.mem ~width:w addr (trunc w (Op.eval_binop op a b));
      Next
  | Instr.Io (_, cost) -> Do_io (eval_src m th ioff Width.W8 cost)
  | Instr.Barrier op -> Do_barrier (lock_target th op)
  | Instr.Halt -> Do_halt

let emit m th e =
  if m.config.trace && th.suppress_depth = 0 then
    Thread_trace.Builder.emit th.builder e

let find_barrier m addr =
  match Hashtbl.find_opt m.barriers addr with
  | Some b -> b
  | None ->
      let b = { arrived = [] } in
      Hashtbl.add m.barriers addr b;
      b

let alive_count threads =
  Array.fold_left
    (fun acc th -> if th.state = Finished then acc else acc + 1)
    0 threads

(* Release every barrier whose whole (still-running) team has arrived.
   [except] passes without a wake record (it emits its event inline). *)
let check_barriers ?(except = -1) m threads =
  Hashtbl.iter
    (fun _addr b ->
      if b.arrived <> [] && List.length b.arrived >= alive_count threads then begin
        List.iter
          (fun tid ->
            if tid <> except then begin
              let w = threads.(tid) in
              w.pending_wake <- Some (Wake_barrier _addr);
              w.state <- Ready
            end)
          b.arrived;
        b.arrived <- []
      end)
    m.barriers

let find_lock m addr =
  match Hashtbl.find_opt m.locks addr with
  | Some l -> l
  | None ->
      let l = { owner = -1; waiters = Queue.create () } in
      Hashtbl.add m.locks addr l;
      l

(* Execute the thread's current basic block to completion and apply the
   terminator's control effect.  Returns unit; thread state tells the
   scheduler what happened. *)
let run_block m threads th =
  let f = m.prog.Program.funcs.(th.fid) in
  let blocks = f.Program.blocks in
  if th.bid >= Array.length blocks then
    errf "thread %d: fell off the end of %s" th.tid f.Program.name;
  let b = blocks.(th.bid) in
  let n = Array.length b.Program.instrs in
  m.instr_count <- m.instr_count + n;
  if m.instr_count > m.config.max_instrs then
    errf "instruction budget exceeded (%d): runaway program?"
      m.config.max_instrs;
  if th.suppress_depth > 0 then th.suppressed_instrs <- th.suppressed_instrs + n;
  Vec.clear th.accesses;
  let outcome = ref Next in
  for ioff = 0 to n - 1 do
    outcome := exec_instr m th ioff b.Program.instrs.(ioff)
  done;
  emit m th
    (Event.Block
       {
         func = th.fid;
         block = th.bid;
         n_instr = n;
         accesses =
           (if Vec.is_empty th.accesses then Event.no_accesses
            else Vec.to_array th.accesses);
       });
  match !outcome with
  | Next -> th.bid <- th.bid + 1
  | Goto target -> th.bid <- target
  | Do_call callee ->
      if Vec.length th.callstack >= m.config.max_call_depth then
        errf "thread %d: call depth exceeded" th.tid;
      if th.suppress_depth > 0 then th.suppress_depth <- th.suppress_depth + 1
      else if m.untraced.(callee) then th.suppress_depth <- 1
      else emit m th (Event.Call callee);
      Vec.push th.callstack (th.fid, th.bid + 1);
      th.fid <- callee;
      th.bid <- 0
  | Do_ret ->
      if th.suppress_depth > 0 then begin
        th.suppress_depth <- th.suppress_depth - 1;
        if th.suppress_depth = 0 && th.suppressed_instrs > 0 then begin
          (* back in traced code: one record for the excluded region *)
          emit m th
            (Event.Skip { reason = Event.Excluded; n_instr = th.suppressed_instrs });
          th.suppressed_instrs <- 0
        end
      end
      else emit m th Event.Return;
      if Vec.is_empty th.callstack then th.state <- Finished
      else begin
        let fid, bid = Vec.pop th.callstack in
        th.fid <- fid;
        th.bid <- bid
      end
  | Do_halt -> th.state <- Finished
  | Do_io cost ->
      if cost > 0 then emit m th (Event.Skip { reason = Event.Io; n_instr = cost });
      th.bid <- th.bid + 1
  | Do_barrier addr ->
      let b = find_barrier m addr in
      th.bid <- th.bid + 1;
      b.arrived <- th.tid :: b.arrived;
      if List.length b.arrived >= alive_count threads then begin
        (* last arriver: release the team and pass through *)
        check_barriers ~except:th.tid m threads;
        emit m th (Event.Barrier addr)
      end
      else begin
        th.state <- Blocked;
        th.blocked_since <- m.slot
      end
  | Do_lock addr ->
      let l = find_lock m addr in
      th.bid <- th.bid + 1;
      if l.owner = -1 then begin
        l.owner <- th.tid;
        emit m th (Event.Lock_acq addr)
      end
      else if l.owner = th.tid then
        errf "thread %d: recursive acquisition of lock 0x%x" th.tid addr
      else begin
        Queue.add th.tid l.waiters;
        th.state <- Blocked;
        th.blocked_since <- m.slot
      end
  | Do_unlock addr ->
      let l = find_lock m addr in
      if l.owner <> th.tid then
        errf "thread %d: released lock 0x%x it does not hold" th.tid addr;
      emit m th (Event.Lock_rel addr);
      th.bid <- th.bid + 1;
      if Queue.is_empty l.waiters then l.owner <- -1
      else begin
        (* FIFO ownership transfer; the waiter resumes next time it is
           scheduled and logs its spin cost then. *)
        let next = Queue.pop l.waiters in
        l.owner <- next;
        let w = threads.(next) in
        w.pending_wake <- Some (Wake_lock addr);
        w.state <- Ready
      end

(* ---------------------------------------------------------------- *)
(* Scheduler                                                         *)

let make_thread m ~trace ~tid ~fid ~args =
  ignore trace;
  let regs = Array.make Reg.count 0 in
  List.iteri (fun i v -> regs.(Reg.arg i) <- v) args;
  regs.(Reg.sp) <- Layout.stack_top tid;
  regs.(Reg.tls) <- Layout.tls_base tid;
  ignore m;
  {
    tid;
    regs;
    fa = 0;
    fb = 0;
    fid;
    bid = 0;
    callstack = Vec.create (0, 0);
    state = Ready;
    builder = Thread_trace.Builder.create tid;
    accesses = Vec.create dummy_access;
    pending_wake = None;
    blocked_since = 0;
    suppress_depth = 0;
    suppressed_instrs = 0;
  }

let run_threads m threads =
  let n = Array.length threads in
  let finished = ref 0 in
  Array.iter (fun th -> if th.state = Finished then incr finished) threads;
  let cursor = ref 0 in
  while !finished < n do
    (* Find the next ready thread, round-robin. *)
    let found = ref (-1) in
    let k = ref 0 in
    while !found < 0 && !k < n do
      let i = (!cursor + !k) mod n in
      if threads.(i).state = Ready then found := i;
      incr k
    done;
    if !found < 0 then errf "deadlock: %d threads blocked" (n - !finished);
    let th = threads.(!found) in
    cursor := (!found + 1) mod n;
    m.slot <- m.slot + 1;
    (match th.pending_wake with
    | None -> ()
    | Some wake ->
        let waited = m.slot - th.blocked_since in
        let spin = waited * m.config.spin_cost in
        if spin > 0 then
          emit m th (Event.Skip { reason = Event.Spin; n_instr = spin });
        (match wake with
        | Wake_lock addr -> emit m th (Event.Lock_acq addr)
        | Wake_barrier addr -> emit m th (Event.Barrier addr));
        th.pending_wake <- None);
    let budget = ref m.config.quantum in
    while !budget > 0 && th.state = Ready do
      run_block m threads th;
      decr budget
    done;
    if th.state = Finished then begin
      incr finished;
      (* a thread leaving the team can complete a barrier *)
      check_barriers m threads
    end
  done

(** [run_workers m ~worker ~args] spawns one thread per element of [args]
    (thread [i] starts in function [worker] with [args.(i)] in the argument
    registers) and runs them to completion under the deterministic
    scheduler.  This is the paper's SIMT-thread extraction: one CPU thread
    per OpenMP iteration / pthread worker invocation. *)
let c_machine_instrs =
  Threadfuser_obs.Obs.Counter.make "tf_machine_instrs_total"
    ~help:"instructions executed by the traced MIMD machine"

let run_workers m ~worker ~(args : int list array) : result =
  Threadfuser_obs.Obs.span "machine_run"
    ~args:[ ("threads", string_of_int (Array.length args)); ("worker", worker) ]
    (fun () ->
      let fid = Program.find_func m.prog worker in
      let before = m.instr_count in
      let threads =
        Array.mapi
          (fun tid args -> make_thread m ~trace:m.config.trace ~tid ~fid ~args)
          args
      in
      run_threads m threads;
      Threadfuser_obs.Obs.Counter.add c_machine_instrs (m.instr_count - before);
      {
        traces =
          Array.map (fun th -> Thread_trace.Builder.finish th.builder) threads;
        final_regs = Array.map (fun th -> Array.copy th.regs) threads;
        instrs_executed = m.instr_count;
      })

(** Run a single function to completion on thread 0; returns its r0. *)
let run_func m ~fn ~args =
  let r = run_workers m ~worker:fn ~args:[| args |] in
  r.final_regs.(0).(Reg.ret)
