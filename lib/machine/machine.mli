(** The MIMD CPU emulator — ThreadFuser's stand-in for "run the unmodified
    binary under Intel PIN" (paper Fig. 3a).

    Executes an assembled program with any number of software threads under
    a deterministic round-robin scheduler (quantum in basic blocks) and
    emits per-thread dynamic traces: executed blocks with per-instruction
    memory accesses, call/return markers, lock acquire/release events, and
    skipped-instruction records for I/O and lock spinning.

    Locks are futex-like: a contended acquire blocks the thread; release
    transfers ownership FIFO, and the waiter's wasted time is charged as
    [spin_cost] skipped instructions per scheduling slot spent waiting. *)

exception Machine_error of string
(** Deadlock, runaway execution, recursive locking, call-depth overflow,
    or other dynamic errors. *)

type config = {
  trace : bool;  (** record events (disable for timing-only runs) *)
  quantum : int;  (** basic blocks per scheduling slot *)
  spin_cost : int;  (** skipped instructions per slot spent lock-waiting *)
  max_instrs : int;  (** global execution budget *)
  max_call_depth : int;
  untraced_functions : string list;
      (** selective tracing (paper §III): calls into these functions (and
          everything beneath them) execute normally but appear in traces as
          a single [Skip Excluded] record *)
}

val default_config : config

type t

type result = {
  traces : Threadfuser_trace.Thread_trace.t array;
  final_regs : int array array;  (** per-thread final register file *)
  instrs_executed : int;
}

val create : ?config:config -> Threadfuser_prog.Program.t -> t

(** The machine's memory, for host-side input setup and result checks. *)
val memory : t -> Memory.t

val instrs_executed : t -> int

(** [run_workers m ~worker ~args] spawns one thread per element of [args]
    (thread [i] starts in function [worker] with [args.(i)] in the argument
    registers) and runs all threads to completion — the paper's
    one-CPU-thread-per-SIMT-thread extraction. *)
val run_workers : t -> worker:string -> args:int list array -> result

(** Run a single function on one thread; returns its r0. *)
val run_func : t -> fn:string -> args:int list -> int
