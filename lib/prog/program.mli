(** Assembled programs: functions split into basic blocks with resolved
    jump targets (block indices) and call targets (function indices).

    Blocks end at terminator instructions
    ({!Threadfuser_isa.Instr.is_terminator}) or label boundaries; block 0
    is always the function entry.  [assemble] validates the structural
    invariants the rest of the system relies on: at most one memory operand
    per instruction, all targets defined, no fall-through past the end of a
    function. *)

open Threadfuser_isa

exception Assembly_error of string

type block = {
  instrs : (int, int) Instr.t array;
  src_label : string option;  (** surface label this block started at *)
}

type func = { name : string; fid : int; blocks : block array }

type t = { funcs : func array; index : (string, int) Hashtbl.t }

(** [assemble surface] — raises {!Assembly_error} on invalid programs. *)
val assemble : Surface.t -> t

val func_count : t -> int

val func : t -> int -> func

val func_name : t -> int -> string

(** Function id by name; raises {!Assembly_error} if unknown. *)
val find_func : t -> string -> int

val block_count : func -> int

(** Static successor block ids within the function (calls fall through;
    [Ret]/[Halt] have none). *)
val block_succs : func -> int -> int list

val instr_count : func -> int

val total_instr_count : t -> int

val pp_func : Format.formatter -> func -> unit

val pp : Format.formatter -> t -> unit
