(** Builder DSL for surface programs.

    Every combinator returns a [code] fragment (a list of surface items);
    fragments compose with [seq] / list concatenation, so workloads read as
    structured programs:

    {[
      func "kernel" [
        mov (reg 1) (imm 0);
        for_up ~i:2 ~from_:(imm 0) ~below:(reg 3) [
          add (reg 1) (mem ~base:2 ());
        ];
        ret;
      ]
    ]}

    Structured control-flow combinators ([if_], [while_], [for_up], …)
    generate fresh labels from a global counter; label names never affect
    semantics. *)

open Threadfuser_isa

type code = Surface.item list

let gensym_state = ref 0

let fresh prefix =
  incr gensym_state;
  Printf.sprintf ".%s%d" prefix !gensym_state

(* ------------------------------------------------------------------ *)
(* Operands                                                            *)

let reg i = Operand.Reg (Reg.r i)

let sp = Operand.Reg Reg.sp

let tls = Operand.Reg Reg.tls

let imm n = Operand.Imm n

(** [mem ~base ~index ~scale ~disp ()] builds a memory operand; [base] and
    [index] are register numbers. *)
let mem ?base ?index ?(scale = 1) ?(disp = 0) () =
  let base = Option.map Reg.r base in
  let index = Option.map (fun i -> (Reg.r i, scale)) index in
  Operand.Mem (Operand.mem ?base ?index ~disp ())

let mem_of op =
  match op with
  | Operand.Mem m -> m
  | Operand.Reg _ | Operand.Imm _ -> invalid_arg "Build.mem_of"

(* ------------------------------------------------------------------ *)
(* Single instructions                                                 *)

let ins i : code = [ Surface.Ins i ]

let label l : code = [ Surface.Label l ]

let mov ?(w = Width.W8) dst src = ins (Instr.Mov (w, dst, src))

let cmov cond dst src = ins (Instr.Cmov (cond, dst, src))

let lea dst addr = ins (Instr.Lea (Reg.r dst, mem_of addr))

let binop op ?(w = Width.W8) dst src = ins (Instr.Binop (op, w, dst, src))

let add ?w dst src = binop Op.Add ?w dst src

let sub ?w dst src = binop Op.Sub ?w dst src

let mul ?w dst src = binop Op.Mul ?w dst src

let div ?w dst src = binop Op.Div ?w dst src

let rem ?w dst src = binop Op.Rem ?w dst src

let and_ ?w dst src = binop Op.And ?w dst src

let or_ ?w dst src = binop Op.Or ?w dst src

let xor ?w dst src = binop Op.Xor ?w dst src

let shl ?w dst src = binop Op.Shl ?w dst src

let shr ?w dst src = binop Op.Shr ?w dst src

let sar ?w dst src = binop Op.Sar ?w dst src

let min_ ?w dst src = binop Op.Min ?w dst src

let max_ ?w dst src = binop Op.Max ?w dst src

let fadd ?w dst src = binop Op.Fadd ?w dst src

let fsub ?w dst src = binop Op.Fsub ?w dst src

let fmul ?w dst src = binop Op.Fmul ?w dst src

let fdiv ?w dst src = binop Op.Fdiv ?w dst src

let neg ?(w = Width.W8) dst = ins (Instr.Unop (Op.Neg, w, dst))

let not_ ?(w = Width.W8) dst = ins (Instr.Unop (Op.Not, w, dst))

let fsqrt ?(w = Width.W8) dst = ins (Instr.Unop (Op.Fsqrt, w, dst))

let cmp ?(w = Width.W8) a b = ins (Instr.Cmp (w, a, b))

let jcc c l = ins (Instr.Jcc (c, l))

let jmp l = ins (Instr.Jmp l)

let call f = ins (Instr.Call f)

let ret : code = ins Instr.Ret

let halt : code = ins Instr.Halt

let lock_acquire addr = ins (Instr.Lock_acquire addr)

let lock_release addr = ins (Instr.Lock_release addr)

let atomic_rmw op ?(w = Width.W8) dst src =
  ins (Instr.Atomic_rmw (op, w, mem_of dst, src))

let io_in cost = ins (Instr.Io (Instr.In, cost))

let barrier b = ins (Instr.Barrier b)

let io_out cost = ins (Instr.Io (Instr.Out, cost))

(* ------------------------------------------------------------------ *)
(* Composition and structured control flow                             *)

let seq (fragments : code list) : code = List.concat fragments

(** [if_ c a b ~then_ ?else_ ()] — execute [then_] when [a c b] holds. *)
let if_ ?(w = Width.W8) cond a b ~then_ ?else_ () : code =
  let l_end = fresh "endif" in
  match else_ with
  | None ->
      seq
        [ cmp ~w a b; jcc (Cond.negate cond) l_end; seq then_; label l_end ]
  | Some else_ ->
      let l_else = fresh "else" in
      seq
        [
          cmp ~w a b;
          jcc (Cond.negate cond) l_else;
          seq then_;
          jmp l_end;
          label l_else;
          seq else_;
          label l_end;
        ]

(** [while_ c a b body] — top-tested loop, runs while [a c b] holds. *)
let while_ ?(w = Width.W8) cond a b body : code =
  let l_head = fresh "while" and l_end = fresh "endwhile" in
  seq
    [
      label l_head;
      cmp ~w a b;
      jcc (Cond.negate cond) l_end;
      seq body;
      jmp l_head;
      label l_end;
    ]

(** [do_while c a b body] — bottom-tested loop, runs at least once. *)
let do_while ?(w = Width.W8) cond a b body : code =
  let l_head = fresh "do" in
  seq [ label l_head; seq body; cmp ~w a b; jcc cond l_head ]

(** [for_up ~i ~from_ ~below body] — counted loop over register [i] from
    [from_] (inclusive) to [below] (exclusive), step 1. *)
let for_up ?(w = Width.W8) ~i ~from_ ~below body : code =
  let iv = reg i in
  seq
    [
      mov ~w iv from_;
      while_ ~w Cond.Lt iv below (body @ [ add ~w iv (imm 1) ]);
    ]

(** Infinite loop; exit with an explicit [jmp] out or [ret]. *)
let forever body : code =
  let l_head = fresh "forever" in
  seq [ label l_head; seq body; jmp l_head ]

(* ------------------------------------------------------------------ *)
(* Functions                                                           *)

let func name fragments : Surface.func = { name; body = seq fragments }
