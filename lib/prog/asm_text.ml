(** Textual assembly for mini-ISA programs: an emitter and a parser that
    round-trip exactly, so programs can be shipped, inspected and edited as
    `.tfasm` files — the repository's equivalent of handing ThreadFuser a
    binary without source.

    {v
      func worker {
      b0:
        mov.w8 r1, r0
        and.w8 r1, $1
        cmp.w8 r1, $0
        jne b2
      b1:
        fadd.w8 r2, [r1+r3*8+4096]
        jmp b3
      ...
      }
    v}

    Operands: [rN] / [sp] / [tls] registers, [$n] immediates (decimal, or
    [0x..]), and [[base+index*scale+disp]] memory references.  Labels are
    one identifier followed by [:]; jump targets name labels, call targets
    name functions. *)

open Threadfuser_isa

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* ---------------------------------------------------------------- *)
(* Emission                                                          *)

let string_of_reg (r : Reg.t) =
  if r = Reg.sp then "sp" else if r = Reg.tls then "tls" else Printf.sprintf "r%d" r

let string_of_mem (m : Operand.mem) =
  let buf = Buffer.create 16 in
  Buffer.add_char buf '[';
  let first = ref true in
  let plus () = if !first then first := false else Buffer.add_char buf '+' in
  (match m.Operand.base with
  | Some r ->
      plus ();
      Buffer.add_string buf (string_of_reg r)
  | None -> ());
  (match m.Operand.index with
  | Some (r, s) ->
      plus ();
      Buffer.add_string buf (string_of_reg r);
      Buffer.add_string buf (Printf.sprintf "*%d" s)
  | None -> ());
  if m.Operand.disp <> 0 || !first then begin
    if (not !first) && m.Operand.disp >= 0 then Buffer.add_char buf '+';
    Buffer.add_string buf (string_of_int m.Operand.disp)
  end;
  Buffer.add_char buf ']';
  Buffer.contents buf

let string_of_operand (o : Operand.t) =
  match o with
  | Operand.Reg r -> string_of_reg r
  | Operand.Imm n -> "$" ^ string_of_int n
  | Operand.Mem m -> string_of_mem m

let wsuf w = "." ^ Fmt.str "%a" Width.pp w

let emit_instr buf (i : (string, string) Instr.t) =
  let o = string_of_operand in
  let line =
    match i with
    | Instr.Mov (w, d, s) -> Printf.sprintf "mov%s %s, %s" (wsuf w) (o d) (o s)
    | Instr.Cmov (c, d, s) ->
        Printf.sprintf "cmov.%s %s, %s" (Cond.to_string c) (o d) (o s)
    | Instr.Lea (r, m) -> Printf.sprintf "lea %s, %s" (string_of_reg r) (string_of_mem m)
    | Instr.Binop (op, w, d, s) ->
        Printf.sprintf "%s%s %s, %s" (Op.binop_to_string op) (wsuf w) (o d) (o s)
    | Instr.Unop (op, w, d) ->
        Printf.sprintf "%s%s %s" (Op.unop_to_string op) (wsuf w) (o d)
    | Instr.Cmp (w, a, b) -> Printf.sprintf "cmp%s %s, %s" (wsuf w) (o a) (o b)
    | Instr.Jcc (c, l) -> Printf.sprintf "j%s %s" (Cond.to_string c) l
    | Instr.Jmp l -> Printf.sprintf "jmp %s" l
    | Instr.Call f -> Printf.sprintf "call %s" f
    | Instr.Ret -> "ret"
    | Instr.Lock_acquire a -> Printf.sprintf "lock_acquire %s" (o a)
    | Instr.Lock_release a -> Printf.sprintf "lock_release %s" (o a)
    | Instr.Atomic_rmw (op, w, m, s) ->
        Printf.sprintf "atomic_%s%s %s, %s" (Op.binop_to_string op) (wsuf w)
          (string_of_mem m) (o s)
    | Instr.Io (Instr.In, c) -> Printf.sprintf "io.in %s" (o c)
    | Instr.Io (Instr.Out, c) -> Printf.sprintf "io.out %s" (o c)
    | Instr.Barrier b -> Printf.sprintf "barrier %s" (o b)
    | Instr.Halt -> "halt"
  in
  Buffer.add_string buf "  ";
  Buffer.add_string buf line;
  Buffer.add_char buf '\n'

let emit_func buf (f : Surface.func) =
  Buffer.add_string buf (Printf.sprintf "func %s {\n" f.Surface.name);
  List.iter
    (fun item ->
      match item with
      | Surface.Label l -> Buffer.add_string buf (l ^ ":\n")
      | Surface.Ins i -> emit_instr buf i)
    f.Surface.body;
  Buffer.add_string buf "}\n"

let to_string (p : Surface.t) =
  let buf = Buffer.create 4096 in
  List.iter (emit_func buf) p;
  Buffer.contents buf

(** Disassemble an assembled program back to emittable surface form
    (block ids become labels [bN]). *)
let disassemble (p : Program.t) : Surface.t =
  Array.to_list p.Program.funcs
  |> List.map (fun (f : Program.func) ->
         let body = ref [] in
         Array.iteri
           (fun bid (b : Program.block) ->
             body := Surface.Label (Printf.sprintf "b%d" bid) :: !body;
             Array.iter
               (fun (i : (int, int) Instr.t) ->
                 let surf : (string, string) Instr.t =
                   match i with
                   | Instr.Jcc (c, t) -> Instr.Jcc (c, Printf.sprintf "b%d" t)
                   | Instr.Jmp t -> Instr.Jmp (Printf.sprintf "b%d" t)
                   | Instr.Call callee -> Instr.Call (Program.func_name p callee)
                   | Instr.Mov (w, a, b) -> Instr.Mov (w, a, b)
                   | Instr.Cmov (c, a, b) -> Instr.Cmov (c, a, b)
                   | Instr.Lea (r, m) -> Instr.Lea (r, m)
                   | Instr.Binop (op, w, a, b) -> Instr.Binop (op, w, a, b)
                   | Instr.Unop (op, w, a) -> Instr.Unop (op, w, a)
                   | Instr.Cmp (w, a, b) -> Instr.Cmp (w, a, b)
                   | Instr.Ret -> Instr.Ret
                   | Instr.Lock_acquire a -> Instr.Lock_acquire a
                   | Instr.Lock_release a -> Instr.Lock_release a
                   | Instr.Atomic_rmw (op, w, m, s) -> Instr.Atomic_rmw (op, w, m, s)
                   | Instr.Io (d, c) -> Instr.Io (d, c)
                   | Instr.Barrier b -> Instr.Barrier b
                   | Instr.Halt -> Instr.Halt
                 in
                 body := Surface.Ins surf :: !body)
               b.Program.instrs)
           f.Program.blocks;
         { Surface.name = f.Program.name; body = List.rev !body })

(* ---------------------------------------------------------------- *)
(* Parsing                                                           *)

let parse_reg tok : Reg.t option =
  match tok with
  | "sp" -> Some Reg.sp
  | "tls" -> Some Reg.tls
  | _ ->
      if String.length tok >= 2 && tok.[0] = 'r' then
        match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
        | Some n when n >= 0 && n < Reg.count -> Some (Reg.r n)
        | _ -> None
      else None

let parse_int tok =
  match int_of_string_opt tok with
  | Some n -> n
  | None -> fail "bad integer %s" tok

(* memory operand body, without the brackets: terms joined by '+' (a
   leading '-' on the displacement is folded into the term) *)
let parse_mem body : Operand.mem =
  (* normalize "a+b-c" to terms *)
  let terms = ref [] in
  let cur = Buffer.create 8 in
  String.iter
    (fun ch ->
      if ch = '+' then begin
        if Buffer.length cur > 0 then terms := Buffer.contents cur :: !terms;
        Buffer.clear cur
      end
      else if ch = '-' then begin
        if Buffer.length cur > 0 then terms := Buffer.contents cur :: !terms;
        Buffer.clear cur;
        Buffer.add_char cur '-'
      end
      else if ch <> ' ' then Buffer.add_char cur ch)
    body;
  if Buffer.length cur > 0 then terms := Buffer.contents cur :: !terms;
  let base = ref None and index = ref None and disp = ref 0 in
  List.iter
    (fun term ->
      match String.index_opt term '*' with
      | Some k ->
          let r = String.sub term 0 k in
          let s = String.sub term (k + 1) (String.length term - k - 1) in
          let reg =
            match parse_reg r with Some r -> r | None -> fail "bad index register %s" r
          in
          if !index <> None then fail "two index registers in %s" body;
          index := Some (reg, parse_int s)
      | None -> (
          match parse_reg term with
          | Some r ->
              if !base = None then base := Some r
              else if !index = None then index := Some (r, 1)
              else fail "too many registers in %s" body
          | None -> disp := !disp + parse_int term))
    (List.rev !terms);
  Operand.mem ?base:!base ?index:!index ~disp:!disp ()

let parse_operand tok : Operand.t =
  let tok = String.trim tok in
  if tok = "" then fail "empty operand";
  if tok.[0] = '$' then
    Operand.Imm (parse_int (String.sub tok 1 (String.length tok - 1)))
  else if tok.[0] = '[' then begin
    if tok.[String.length tok - 1] <> ']' then fail "unterminated memory operand %s" tok;
    Operand.Mem (parse_mem (String.sub tok 1 (String.length tok - 2)))
  end
  else
    match parse_reg tok with
    | Some r -> Operand.Reg r
    | None -> fail "bad operand %s" tok

let parse_width s =
  match s with
  | "w1" -> Width.W1
  | "w2" -> Width.W2
  | "w4" -> Width.W4
  | "w8" -> Width.W8
  | _ -> fail "bad width %s" s

let parse_cond s =
  match s with
  | "eq" -> Cond.Eq
  | "ne" -> Cond.Ne
  | "lt" -> Cond.Lt
  | "le" -> Cond.Le
  | "gt" -> Cond.Gt
  | "ge" -> Cond.Ge
  | _ -> fail "bad condition %s" s

let binop_of_string s =
  match s with
  | "add" -> Some Op.Add
  | "sub" -> Some Op.Sub
  | "mul" -> Some Op.Mul
  | "div" -> Some Op.Div
  | "rem" -> Some Op.Rem
  | "and" -> Some Op.And
  | "or" -> Some Op.Or
  | "xor" -> Some Op.Xor
  | "shl" -> Some Op.Shl
  | "shr" -> Some Op.Shr
  | "sar" -> Some Op.Sar
  | "min" -> Some Op.Min
  | "max" -> Some Op.Max
  | "fadd" -> Some Op.Fadd
  | "fsub" -> Some Op.Fsub
  | "fmul" -> Some Op.Fmul
  | "fdiv" -> Some Op.Fdiv
  | _ -> None

let unop_of_string s =
  match s with
  | "neg" -> Some Op.Neg
  | "not" -> Some Op.Not
  | "fsqrt" -> Some Op.Fsqrt
  | _ -> None

(* split "mnemonic operands..." -> (head, [operand strings]) *)
let split_line line =
  match String.index_opt line ' ' with
  | None -> (line, [])
  | Some k ->
      let head = String.sub line 0 k in
      let rest = String.sub line (k + 1) (String.length line - k - 1) in
      (head, List.map String.trim (String.split_on_char ',' rest))

let parse_instr line : (string, string) Instr.t =
  let head, ops = split_line line in
  let mnemonic, suffix =
    match String.index_opt head '.' with
    | Some k ->
        ( String.sub head 0 k,
          Some (String.sub head (k + 1) (String.length head - k - 1)) )
    | None -> (head, None)
  in
  let width () = match suffix with Some s -> parse_width s | None -> Width.W8 in
  let op1 () = match ops with [ a ] -> parse_operand a | _ -> fail "expected 1 operand: %s" line in
  let op2 () =
    match ops with
    | [ a; b ] -> (parse_operand a, parse_operand b)
    | _ -> fail "expected 2 operands: %s" line
  in
  let mem_of o =
    match o with Operand.Mem m -> m | _ -> fail "expected memory operand: %s" line
  in
  match mnemonic with
  | "mov" ->
      let d, s = op2 () in
      Instr.Mov (width (), d, s)
  | "cmov" ->
      let c = match suffix with Some s -> parse_cond s | None -> fail "cmov needs a condition" in
      let d, s = op2 () in
      Instr.Cmov (c, d, s)
  | "lea" -> (
      let d, s = op2 () in
      match d with
      | Operand.Reg r -> Instr.Lea (r, mem_of s)
      | _ -> fail "lea destination must be a register: %s" line)
  | "cmp" ->
      let a, b = op2 () in
      Instr.Cmp (width (), a, b)
  | "jmp" -> (
      match ops with [ l ] -> Instr.Jmp l | _ -> fail "jmp needs a label: %s" line)
  | "call" -> (
      match ops with [ f ] -> Instr.Call f | _ -> fail "call needs a function: %s" line)
  | "ret" -> Instr.Ret
  | "halt" -> Instr.Halt
  | "lock_acquire" -> Instr.Lock_acquire (op1 ())
  | "lock_release" -> Instr.Lock_release (op1 ())
  | "barrier" -> Instr.Barrier (op1 ())
  | "io" -> (
      match suffix with
      | Some "in" -> Instr.Io (Instr.In, op1 ())
      | Some "out" -> Instr.Io (Instr.Out, op1 ())
      | _ -> fail "io needs .in or .out: %s" line)
  | _ -> (
      (* conditional jumps: j<cond> *)
      if String.length mnemonic > 1 && mnemonic.[0] = 'j' && suffix = None then
        let c = parse_cond (String.sub mnemonic 1 (String.length mnemonic - 1)) in
        match ops with [ l ] -> Instr.Jcc (c, l) | _ -> fail "jcc needs a label: %s" line
      else if String.length mnemonic > 7 && String.sub mnemonic 0 7 = "atomic_" then
        let opname = String.sub mnemonic 7 (String.length mnemonic - 7) in
        match binop_of_string opname with
        | Some op ->
            let d, s = op2 () in
            Instr.Atomic_rmw (op, width (), mem_of d, s)
        | None -> fail "bad atomic op: %s" line
      else
        match (binop_of_string mnemonic, unop_of_string mnemonic) with
        | Some op, _ ->
            let d, s = op2 () in
            Instr.Binop (op, width (), d, s)
        | None, Some op -> Instr.Unop (op, width (), op1 ())
        | None, None -> fail "unknown mnemonic: %s" line)

let of_string (s : string) : Surface.t =
  let lines = String.split_on_char '\n' s in
  let funcs = ref [] in
  let current = ref None in
  List.iteri
    (fun lineno raw ->
      let line =
        (* strip comments and whitespace *)
        let raw = match String.index_opt raw '#' with
          | Some k -> String.sub raw 0 k
          | None -> raw
        in
        String.trim raw
      in
      let err fmt = Fmt.kstr (fun m -> fail "line %d: %s" (lineno + 1) m) fmt in
      if line = "" then ()
      else if String.length line > 5 && String.sub line 0 5 = "func " then begin
        if !current <> None then err "nested func";
        let rest = String.trim (String.sub line 5 (String.length line - 5)) in
        let name =
          match String.index_opt rest '{' with
          | Some k -> String.trim (String.sub rest 0 k)
          | None -> err "expected '{' after func name"
        in
        current := Some (name, ref [])
      end
      else if line = "}" then begin
        match !current with
        | Some (name, body) ->
            funcs := { Surface.name; body = List.rev !body } :: !funcs;
            current := None
        | None -> err "unmatched '}'"
      end
      else
        match !current with
        | None -> err "instruction outside func: %s" line
        | Some (_, body) ->
            if line.[String.length line - 1] = ':' then
              body := Surface.Label (String.sub line 0 (String.length line - 1)) :: !body
            else
              body :=
                (try Surface.Ins (parse_instr line)
                 with Parse_error m -> err "%s" m)
                :: !body)
    lines;
  if !current <> None then fail "unterminated func";
  List.rev !funcs

let to_file path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string p))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
