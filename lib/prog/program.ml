(** Assembled programs.

    [assemble] lowers a {!Surface.t} into indexed form:

    - each function's body is split into basic blocks.  A block starts at a
      label (or at function entry) and ends at the first terminator
      instruction ({!Threadfuser_isa.Instr.is_terminator}) or just before
      the next label;
    - jump targets become block indices within the function, call targets
      become function indices within the program;
    - structural properties are validated: at most one memory operand per
      instruction, all targets defined, no fall-through past the end of a
      function, every block reachable only through defined edges.

    Block 0 is always the function's entry block. *)

open Threadfuser_isa

exception Assembly_error of string

let errf fmt = Fmt.kstr (fun s -> raise (Assembly_error s)) fmt

type block = {
  instrs : (int, int) Instr.t array;
  src_label : string option; (* surface label this block started at, if any *)
}

type func = { name : string; fid : int; blocks : block array }

type t = { funcs : func array; index : (string, int) Hashtbl.t }

let func_count t = Array.length t.funcs

let func t fid = t.funcs.(fid)

let func_name t fid = t.funcs.(fid).name

let find_func t name =
  match Hashtbl.find_opt t.index name with
  | Some fid -> fid
  | None -> errf "unknown function %s" name

let block_count f = Array.length f.blocks

(* Split a surface body into proto-blocks of surface instructions.  Each
   proto-block records the labels that point at its start. *)
let split_blocks fname body =
  let blocks = ref [] in
  (* (labels, rev instrs) list, reversed *)
  let cur_labels = ref [] and cur_instrs = ref [] and open_block = ref true in
  let flush () =
    if !open_block then begin
      blocks := (List.rev !cur_labels, List.rev !cur_instrs) :: !blocks;
      cur_labels := [];
      cur_instrs := []
    end;
    open_block := false
  in
  let start_block () =
    if not !open_block then begin
      open_block := true;
      cur_labels := [];
      cur_instrs := []
    end
  in
  List.iter
    (fun item ->
      match item with
      | Surface.Label l ->
          (* A label in the middle of a block ends it (fall-through edge). *)
          if !open_block && !cur_instrs <> [] then flush ();
          start_block ();
          cur_labels := l :: !cur_labels
      | Surface.Ins i ->
          if Instr.mem_operand_count i > 1 then
            errf "%s: instruction has more than one memory operand" fname;
          start_block ();
          cur_instrs := i :: !cur_instrs;
          if Instr.is_terminator i then flush ())
    body;
  if !open_block then flush ();
  List.rev !blocks

let assemble (surface : Surface.t) : t =
  let index = Hashtbl.create 64 in
  List.iteri
    (fun fid (f : Surface.func) ->
      if Hashtbl.mem index f.name then errf "duplicate function %s" f.name;
      Hashtbl.add index f.name fid)
    surface;
  let assemble_func fid (f : Surface.func) =
    if f.body = [] then errf "%s: empty function" f.name;
    let protos = split_blocks f.name f.body in
    (* Drop empty proto-blocks by merging their labels into the next
       non-empty block. *)
    let rec merge = function
      | (labels, []) :: (labels', instrs) :: rest ->
          merge ((labels @ labels', instrs) :: rest)
      | [ (_, []) ] -> errf "%s: function ends with a dangling label" f.name
      | proto :: rest -> proto :: merge rest
      | [] -> []
    in
    let protos = Array.of_list (merge protos) in
    if Array.length protos = 0 then errf "%s: empty function" f.name;
    let label_index = Hashtbl.create 16 in
    Array.iteri
      (fun bid (labels, _) ->
        List.iter
          (fun l ->
            if Hashtbl.mem label_index l then
              errf "%s: duplicate label %s" f.name l;
            Hashtbl.add label_index l bid)
          labels)
      protos;
    let n_blocks = Array.length protos in
    let resolve_label l =
      match Hashtbl.find_opt label_index l with
      | Some bid -> bid
      | None -> errf "%s: undefined label %s" f.name l
    in
    let resolve_call callee =
      match Hashtbl.find_opt index callee with
      | Some target -> target
      | None -> errf "%s: call to undefined function %s" f.name callee
    in
    let resolve_instr (i : (string, string) Instr.t) : (int, int) Instr.t =
      match i with
      | Instr.Jcc (c, l) -> Instr.Jcc (c, resolve_label l)
      | Instr.Jmp l -> Instr.Jmp (resolve_label l)
      | Instr.Call callee -> Instr.Call (resolve_call callee)
      | Instr.Mov (w, a, b) -> Instr.Mov (w, a, b)
      | Instr.Cmov (c, a, b) -> Instr.Cmov (c, a, b)
      | Instr.Lea (r, m) -> Instr.Lea (r, m)
      | Instr.Binop (op, w, a, b) -> Instr.Binop (op, w, a, b)
      | Instr.Unop (op, w, a) -> Instr.Unop (op, w, a)
      | Instr.Cmp (w, a, b) -> Instr.Cmp (w, a, b)
      | Instr.Ret -> Instr.Ret
      | Instr.Lock_acquire a -> Instr.Lock_acquire a
      | Instr.Lock_release a -> Instr.Lock_release a
      | Instr.Atomic_rmw (op, w, m, s) -> Instr.Atomic_rmw (op, w, m, s)
      | Instr.Io (d, c) -> Instr.Io (d, c)
      | Instr.Barrier o -> Instr.Barrier o
      | Instr.Halt -> Instr.Halt
    in
    let blocks =
      Array.mapi
        (fun bid (labels, instrs) ->
          let instrs = Array.of_list (List.map resolve_instr instrs) in
          if Array.length instrs = 0 then
            errf "%s: internal error: empty block %d" f.name bid;
          (* A block that can fall through must have a successor block. *)
          let last = instrs.(Array.length instrs - 1) in
          if Instr.falls_through last && bid = n_blocks - 1 then
            errf "%s: control falls off the end of the function" f.name;
          { instrs; src_label = (match labels with l :: _ -> Some l | [] -> None) })
        protos
    in
    { name = f.name; fid; blocks }
  in
  let funcs = Array.of_list (List.mapi assemble_func surface) in
  { funcs; index }

(* Static successor blocks within the same function (calls fall through;
   Ret/Halt have none). *)
let block_succs (f : func) bid =
  let b = f.blocks.(bid) in
  let last = b.instrs.(Array.length b.instrs - 1) in
  let fall = if Instr.falls_through last then [ bid + 1 ] else [] in
  match last with
  | Instr.Jmp target -> [ target ]
  | Instr.Jcc (_, target) -> if target = bid + 1 then fall else target :: fall
  | Instr.Ret | Instr.Halt -> []
  | Instr.Call _ | Instr.Lock_acquire _ | Instr.Lock_release _ | Instr.Io _
  | Instr.Barrier _ | Instr.Mov _ | Instr.Cmov _ | Instr.Lea _ | Instr.Binop _
  | Instr.Unop _ | Instr.Cmp _ | Instr.Atomic_rmw _ ->
      fall

let instr_count f =
  Array.fold_left (fun acc b -> acc + Array.length b.instrs) 0 f.blocks

let total_instr_count t =
  Array.fold_left (fun acc f -> acc + instr_count f) 0 t.funcs

let pp_func ppf f =
  Fmt.pf ppf "func %s (#%d):@." f.name f.fid;
  Array.iteri
    (fun bid b ->
      let lbl = match b.src_label with Some l -> " (" ^ l ^ ")" | None -> "" in
      Fmt.pf ppf ".b%d%s:@." bid lbl;
      Array.iter (fun i -> Fmt.pf ppf "  %a@." Instr.pp_resolved i) b.instrs)
    f.blocks

let pp ppf t = Array.iter (pp_func ppf) t.funcs
