(** Textual assembly (`.tfasm`) for mini-ISA programs — emitter, parser and
    disassembler.  [of_string (to_string p)] re-assembles to a structurally
    identical program, so programs travel as text without builder source
    (the repository's closed-source-binary workflow). *)

exception Parse_error of string

(** Emit surface form as assembly text. *)
val to_string : Surface.t -> string

(** Parse assembly text back to surface form.  [#] starts a comment. *)
val of_string : string -> Surface.t

(** Assembled program back to emittable surface form (block ids become
    [bN] labels; call targets become function names). *)
val disassemble : Program.t -> Surface.t

val to_file : string -> Surface.t -> unit

val of_file : string -> Surface.t
