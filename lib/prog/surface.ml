(** Surface (pre-assembly) program form: a list of functions, each a flat
    list of labels and instructions with symbolic jump/call targets.  This is
    what the builder DSL ({!Build}) produces and what {!Program.assemble}
    consumes. *)

type item = Label of string | Ins of (string, string) Threadfuser_isa.Instr.t

type func = { name : string; body : item list }

type t = func list

let pp_item ppf = function
  | Label l -> Fmt.pf ppf "%s:" l
  | Ins i -> Fmt.pf ppf "  %a" Threadfuser_isa.Instr.pp_surface i

let pp_func ppf f =
  Fmt.pf ppf "func %s:@." f.name;
  List.iter (fun item -> Fmt.pf ppf "%a@." pp_item item) f.body
