(** Surface (pre-assembly) program form: functions as flat lists of labels
    and instructions with symbolic jump/call targets.  Produced by the
    {!Build} DSL (or by the {!Threadfuser_compiler} passes) and consumed by
    {!Program.assemble}. *)

type item = Label of string | Ins of (string, string) Threadfuser_isa.Instr.t

type func = { name : string; body : item list }

type t = func list

val pp_item : Format.formatter -> item -> unit

val pp_func : Format.formatter -> func -> unit
