(** Builder DSL for surface programs.

    Every combinator returns a [code] fragment (a list of surface items);
    fragments compose by list operations ([seq], [List.concat]), and
    {!func} flattens a fragment list into a function:

    {[
      Build.(
        func "kernel"
          [
            mov (reg 1) (imm 0);
            for_up ~i:2 ~from_:(imm 0) ~below:(reg 3)
              [ add (reg 1) (mem ~base:2 ()) ];
            ret;
          ])
    ]}

    Structured control-flow combinators generate fresh labels from a global
    counter; label names never affect semantics. *)

open Threadfuser_isa

type code = Surface.item list

(** Fresh label with the given prefix (also used by compiler passes). *)
val fresh : string -> string

(** {2 Operands} *)

val reg : int -> Operand.t

(** The stack-pointer register (r15) as an operand. *)
val sp : Operand.t

(** The thread-local-storage base register (r14) as an operand. *)
val tls : Operand.t

val imm : int -> Operand.t

(** [mem ~base ~index ~scale ~disp ()] — [base]/[index] are register
    numbers; address = base + index*scale + disp. *)
val mem : ?base:int -> ?index:int -> ?scale:int -> ?disp:int -> unit -> Operand.t

(** {2 Instructions} — each returns a one-instruction fragment. *)

val ins : (string, string) Instr.t -> code

val label : string -> code

val mov : ?w:Width.t -> Operand.t -> Operand.t -> code

val cmov : Cond.t -> Operand.t -> Operand.t -> code

val lea : int -> Operand.t -> code

val binop : Op.binop -> ?w:Width.t -> Operand.t -> Operand.t -> code

val add : ?w:Width.t -> Operand.t -> Operand.t -> code

val sub : ?w:Width.t -> Operand.t -> Operand.t -> code

val mul : ?w:Width.t -> Operand.t -> Operand.t -> code

val div : ?w:Width.t -> Operand.t -> Operand.t -> code

val rem : ?w:Width.t -> Operand.t -> Operand.t -> code

val and_ : ?w:Width.t -> Operand.t -> Operand.t -> code

val or_ : ?w:Width.t -> Operand.t -> Operand.t -> code

val xor : ?w:Width.t -> Operand.t -> Operand.t -> code

val shl : ?w:Width.t -> Operand.t -> Operand.t -> code

val shr : ?w:Width.t -> Operand.t -> Operand.t -> code

val sar : ?w:Width.t -> Operand.t -> Operand.t -> code

val min_ : ?w:Width.t -> Operand.t -> Operand.t -> code

val max_ : ?w:Width.t -> Operand.t -> Operand.t -> code

val fadd : ?w:Width.t -> Operand.t -> Operand.t -> code

val fsub : ?w:Width.t -> Operand.t -> Operand.t -> code

val fmul : ?w:Width.t -> Operand.t -> Operand.t -> code

val fdiv : ?w:Width.t -> Operand.t -> Operand.t -> code

val neg : ?w:Width.t -> Operand.t -> code

val not_ : ?w:Width.t -> Operand.t -> code

val fsqrt : ?w:Width.t -> Operand.t -> code

val cmp : ?w:Width.t -> Operand.t -> Operand.t -> code

val jcc : Cond.t -> string -> code

val jmp : string -> code

val call : string -> code

val ret : code

val halt : code

(** The operand names the lock: memory operands denote their {e address}
    (like [lea]); registers/immediates denote their value. *)
val lock_acquire : Operand.t -> code

val lock_release : Operand.t -> code

val atomic_rmw : Op.binop -> ?w:Width.t -> Operand.t -> Operand.t -> code

(** Untraced input work costing [operand] instructions (paper Fig. 8). *)
val io_in : Operand.t -> code

(** OpenMP-style team barrier named by the operand (like a lock). *)
val barrier : Operand.t -> code

val io_out : Operand.t -> code

(** {2 Composition and structured control flow} *)

val seq : code list -> code

(** [if_ c a b ~then_ ?else_ ()] — run [then_] when [a c b] holds. *)
val if_ :
  ?w:Width.t ->
  Cond.t ->
  Operand.t ->
  Operand.t ->
  then_:code list ->
  ?else_:code list ->
  unit ->
  code

(** Top-tested loop: runs while [a c b] holds. *)
val while_ : ?w:Width.t -> Cond.t -> Operand.t -> Operand.t -> code list -> code

(** Bottom-tested loop: runs at least once, repeats while [a c b] holds. *)
val do_while : ?w:Width.t -> Cond.t -> Operand.t -> Operand.t -> code list -> code

(** Counted loop over register [i] from [from_] (inclusive) to [below]
    (exclusive), step 1. *)
val for_up :
  ?w:Width.t -> i:int -> from_:Operand.t -> below:Operand.t -> code list -> code

(** Infinite loop; exit with an explicit [jmp] or [ret] inside the body. *)
val forever : code list -> code

(** {2 Functions} *)

val func : string -> code list -> Surface.func
