(** Deterministic 64-bit linear congruential PRNG (Knuth's MMIX constants).

    All synthetic workload inputs are drawn from this generator so that
    every run of the repository is bit-reproducible. *)

type t

val create : int -> t

val next_int64 : t -> int64

(** 46 random bits as a non-negative int. *)
val bits : t -> int

(** [int t bound] draws uniformly from [0, bound); raises on [bound <= 0]. *)
val int : t -> int -> int

(** [int_range t lo hi] draws uniformly from [lo, hi] inclusive. *)
val int_range : t -> int -> int -> int

(** [chance t num den] is true with probability [num/den]. *)
val chance : t -> int -> int -> bool

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** {1 Stream splitting} — one independent stream per task (suite-runner
    backoff jitter, fault injection), non-colliding and non-overlapping. *)

(** [derive ~seed ~index] deterministically maps a parent seed and a task
    index to a child seed through the SplitMix64 finalizer.  Distinct
    indices give distinct child seeds (up to two bits of truncation), and
    the resulting streams do not overlap within any practical draw count.
    Raises on [index < 0]. *)
val derive : seed:int -> index:int -> int

(** [split t] advances [t] one step and returns a fresh generator
    decorrelated from [t]'s continuation. *)
val split : t -> t

(** Stable (FNV-1a) non-negative hash of a string — for deriving streams
    keyed by name; unlike [Hashtbl.hash], guaranteed identical across
    OCaml versions. *)
val hash_string : string -> int
