(** Deterministic 64-bit linear congruential PRNG (Knuth's MMIX constants).

    All synthetic workload inputs are drawn from this generator so that
    every run of the repository is bit-reproducible. *)

type t

val create : int -> t

val next_int64 : t -> int64

(** 46 random bits as a non-negative int. *)
val bits : t -> int

(** [int t bound] draws uniformly from [0, bound); raises on [bound <= 0]. *)
val int : t -> int -> int

(** [int_range t lo hi] draws uniformly from [lo, hi] inclusive. *)
val int_range : t -> int -> int -> int

(** [chance t num den] is true with probability [num/den]. *)
val chance : t -> int -> int -> bool

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit
