(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven, pure
    OCaml.  Used as the integrity trailer of the TFPACK1 compact trace
    format and the cache blob envelope: a 32-bit checksum catches every
    single-bit flip and any burst shorter than the polynomial, which is
    exactly the torn-write / bit-flip damage the artifact store must
    refuse to serve. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(* The running value stays below 2^32 throughout: the table entries are
   32-bit, [lsr 8] only shrinks, and [lxor] cannot set higher bits. *)
let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: bad substring";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xffffffff) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let string s = update 0 s 0 (String.length s)

let add_le buf crc =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((crc lsr (8 * i)) land 0xff))
  done

let read_le s pos =
  if pos < 0 || pos + 4 > String.length s then
    invalid_arg "Crc32.read_le: out of bounds";
  let b i = Char.code s.[pos + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
