(** Deterministic pseudo-random number generator.

    Workload inputs must be reproducible across runs and independent of the
    OCaml standard library's generator, so the whole repository draws its
    synthetic data from this explicit 64-bit linear congruential generator
    (Knuth's MMIX constants). *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int (seed lxor 0x5deece66d) }

let mult = 6364136223846793005L

let incr = 1442695040888963407L

let next_int64 t =
  t.state <- Int64.add (Int64.mul t.state mult) incr;
  t.state

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 17)

(** [int t bound] draws uniformly from [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Lcg.int";
  bits t mod bound

(** [int_range t lo hi] draws uniformly from [lo, hi] inclusive. *)
let int_range t lo hi =
  if hi < lo then invalid_arg "Lcg.int_range";
  lo + int t (hi - lo + 1)

(** [bool t p_num p_den] is true with probability [p_num/p_den]. *)
let chance t p_num p_den = int t p_den < p_num

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* ------------------------------------------------------------------ *)
(* Stream splitting.

   Consumers that run many independent seeded tasks (the suite runner's
   per-job backoff jitter, the execution-fault injector) need one seed per
   task such that the derived streams neither collide nor overlap.  Seeding
   the LCG with [seed + index] would interleave: an LCG's successor
   function is shared, so nearby seeds land on the same orbit a few steps
   apart.  Instead the derived seed passes through the SplitMix64 finalizer
   (a bijection on 64-bit words with full avalanche), placing each child
   far from its siblings on the orbit. *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let golden = 0x9e3779b97f4a7c15L

(** [derive ~seed ~index] is a well-mixed child seed; injective in [index]
    up to the final 64→63-bit truncation ([mix64] is a bijection and
    [golden] is odd, so distinct indices give distinct 64-bit words). *)
let derive ~seed ~index =
  if index < 0 then invalid_arg "Lcg.derive";
  let z =
    mix64
      (Int64.add (Int64.of_int seed)
         (Int64.mul (Int64.of_int (index + 1)) golden))
  in
  (* drop two bits, not one: OCaml's native int keeps 63 of the 64, so a
     62-bit result is the widest that is always non-negative *)
  Int64.to_int (Int64.shift_right_logical z 2)

(** [split t] draws one value from [t] and mixes it into a fresh,
    decorrelated generator; [t] itself advances by exactly one step. *)
let split t = { state = mix64 (next_int64 t) }

(** FNV-1a over a string, folded to a non-negative int: a *stable* hash
    for keying derived streams by name (job ids, workload names).  OCaml's
    [Hashtbl.hash] makes no cross-version promises; seeded campaigns must
    replay across toolchains. *)
let hash_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int (Int64.shift_right_logical !h 2)
