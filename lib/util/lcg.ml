(** Deterministic pseudo-random number generator.

    Workload inputs must be reproducible across runs and independent of the
    OCaml standard library's generator, so the whole repository draws its
    synthetic data from this explicit 64-bit linear congruential generator
    (Knuth's MMIX constants). *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int (seed lxor 0x5deece66d) }

let mult = 6364136223846793005L

let incr = 1442695040888963407L

let next_int64 t =
  t.state <- Int64.add (Int64.mul t.state mult) incr;
  t.state

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 17)

(** [int t bound] draws uniformly from [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Lcg.int";
  bits t mod bound

(** [int_range t lo hi] draws uniformly from [lo, hi] inclusive. *)
let int_range t lo hi =
  if hi < lo then invalid_arg "Lcg.int_range";
  lo + int t (hi - lo + 1)

(** [bool t p_num p_den] is true with probability [p_num/p_den]. *)
let chance t p_num p_den = int t p_den < p_num

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
