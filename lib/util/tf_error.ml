(** The shared diagnostic type of the robustness layer.

    Every ingestion and replay path (trace decoding, validation, SIMT-stack
    replay, the CLI) reports failures as a typed [diagnostic] instead of an
    ad-hoc [failwith], so callers can distinguish corrupt input from
    semantic trace damage from watchdog verdicts, quarantine the offending
    thread, and keep going (see docs/robustness.md). *)

type kind =
  | Corrupt_input (* undecodable bytes: bad magic, truncation, overlong varint *)
  | Unbalanced_call (* a Return with no matching Call, or vice versa *)
  | Unbalanced_lock (* a release of a lock the thread does not hold *)
  | Bad_block_ref (* block / function id outside the program's range *)
  | Bad_access (* access offsets vs [n_instr], unsorted or empty blocks *)
  | Barrier_mismatch (* threads disagree on the team-barrier sequence *)
  | Replay_error (* the SIMT-stack replay desynchronized from the trace *)
  | Timeout (* the replay watchdog ran out of fuel *)
  | Deadlock (* a lock never released or a barrier never satisfied *)

type severity = Warning | Error

(* [Error] the severity is shadowed below by [Error] the exception; bind it
   while it is still in scope. *)
let error_severity : severity = Error

type diagnostic = {
  kind : kind;
  severity : severity;
  thread : int option; (* offending thread id, when attributable *)
  message : string;
}

exception Error of diagnostic

let kind_name = function
  | Corrupt_input -> "corrupt-input"
  | Unbalanced_call -> "unbalanced-call"
  | Unbalanced_lock -> "unbalanced-lock"
  | Bad_block_ref -> "bad-block-ref"
  | Bad_access -> "bad-access"
  | Barrier_mismatch -> "barrier-mismatch"
  | Replay_error -> "replay-error"
  | Timeout -> "timeout"
  | Deadlock -> "deadlock"

let severity_name = function Warning -> "warning" | Error -> "error"

let diag ?thread ?(severity = error_severity) kind fmt =
  Format.kasprintf
    (fun message -> { kind; severity; thread; message })
    fmt

let fail ?thread kind fmt =
  Format.kasprintf
    (fun message ->
      raise (Error { kind; severity = error_severity; thread; message }))
    fmt

let pp ppf d =
  Format.fprintf ppf "%s[%s]%s: %s" (severity_name d.severity)
    (kind_name d.kind)
    (match d.thread with
    | Some tid -> Printf.sprintf " thread %d" tid
    | None -> "")
    d.message

let to_string d = Format.asprintf "%a" pp d

let () =
  Printexc.register_printer (function
    | Error d -> Some ("Tf_error.Error: " ^ to_string d)
    | _ -> None)
