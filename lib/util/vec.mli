(** Growable arrays (OCaml 5.1 has no [Dynarray]).

    A [Vec.t] stores elements densely in an array that doubles on overflow.
    The [dummy] element passed at creation fills unused capacity and is
    never observable through the API. *)

type 'a t

(** [create ?capacity dummy] is an empty vector. *)
val create : ?capacity:int -> 'a -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [get t i] — raises [Invalid_argument] outside [0, length). *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

(** Remove and return the last element; raises [Invalid_argument] if empty. *)
val pop : 'a t -> 'a

(** The last element without removing it. *)
val top : 'a t -> 'a

val clear : 'a t -> unit

val to_array : 'a t -> 'a array

val of_array : 'a -> 'a array -> 'a t

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list
