(** The shared diagnostic type of the robustness layer: trace decoding,
    validation, SIMT-stack replay and the CLI all report failures as a
    typed {!diagnostic} (instead of ad-hoc [failwith]) so callers can tell
    corrupt input from semantic trace damage from watchdog verdicts and
    degrade gracefully.  See docs/robustness.md for the taxonomy. *)

type kind =
  | Corrupt_input  (** undecodable bytes (bad magic, truncation, varints) *)
  | Unbalanced_call  (** a [Return] with no matching [Call], or vice versa *)
  | Unbalanced_lock  (** a release of a lock the thread does not hold *)
  | Bad_block_ref  (** block / function id outside the program's range *)
  | Bad_access  (** access offsets vs [n_instr], unsorted or empty blocks *)
  | Barrier_mismatch  (** threads disagree on the team-barrier sequence *)
  | Replay_error  (** the SIMT-stack replay desynchronized from the trace *)
  | Timeout  (** the replay watchdog ran out of fuel *)
  | Deadlock  (** a lock never released or a barrier never satisfied *)

type severity = Warning | Error

type diagnostic = {
  kind : kind;
  severity : severity;
  thread : int option;  (** offending thread id, when attributable *)
  message : string;
}

exception Error of diagnostic

val kind_name : kind -> string

val severity_name : severity -> string

(** [diag kind fmt ...] builds a diagnostic (default severity [Error]). *)
val diag :
  ?thread:int ->
  ?severity:severity ->
  kind ->
  ('a, Format.formatter, unit, diagnostic) format4 ->
  'a

(** [fail kind fmt ...] raises {!Error} with an [Error]-severity diagnostic. *)
val fail :
  ?thread:int -> kind -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val pp : Format.formatter -> diagnostic -> unit

val to_string : diagnostic -> string
