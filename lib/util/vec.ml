(** Growable arrays.

    OCaml 5.1's standard library has no [Dynarray]; this is the small subset
    the tracer and analyzer need.  Elements are stored densely in an array
    that doubles on overflow. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a; (* filler for unused slots; never observable *)
}

let create ?(capacity = 16) dummy =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length t = t.len

let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- x

let ensure_capacity t n =
  if n > Array.length t.data then begin
    let capacity = ref (Array.length t.data) in
    while !capacity < n do
      capacity := !capacity * 2
    done;
    let data = Array.make !capacity t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop";
  t.len <- t.len - 1;
  let x = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  x

let top t =
  if t.len = 0 then invalid_arg "Vec.top";
  t.data.(t.len - 1)

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let to_array t = Array.sub t.data 0 t.len

let of_array dummy a =
  let t = create ~capacity:(max 1 (Array.length a)) dummy in
  Array.iter (push t) a;
  t

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_list t = List.rev (fold_left (fun acc x -> x :: acc) [] t)
