(** CRC-32 (IEEE 802.3 polynomial, reflected, as in zlib/PNG), pure OCaml.

    Checksums are non-negative ints in [0, 2^32): safe arithmetic on a
    63-bit OCaml int.  The incremental {!update} lets callers checksum a
    stream chunk by chunk; [update (update 0 a) b = string (a ^ b)]. *)

val string : string -> int
(** CRC of a whole string. *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends [crc] with [s.[pos .. pos+len-1]].
    Start from [0].  Raises [Invalid_argument] on a bad substring. *)

val add_le : Buffer.t -> int -> unit
(** Append the checksum as 4 little-endian bytes. *)

val read_le : string -> int -> int
(** Read 4 little-endian bytes at [pos].  Raises [Invalid_argument] when
    fewer than 4 bytes remain. *)
