(** XAPP-style program properties extracted from a single-threaded CPU
    profile: instruction-mix fractions, block shape, control diversity,
    arithmetic intensity, memory irregularity and synchronization rate. *)

val n_features : int

val names : string array

val extract :
  Threadfuser_prog.Program.t -> Threadfuser_trace.Thread_trace.t -> float array
