(** The XAPP baseline (Ardalani et al., MICRO 2015; the paper's Table II
    comparison): predict GPU speedup from profile features of a
    single-threaded run via regression on log-speedup, evaluated with
    XAPP's own leave-one-out protocol. *)

type sample = { name : string; features : float array; speedup : float }

type prediction = {
  p_name : string;
  actual : float;
  predicted : float;
  rel_error : float;
}

val loo_errors : ?lambda:float -> sample list -> prediction list

val mean_rel_error : prediction list -> float
