(** XAPP-style program properties, extracted from a single-threaded CPU
    profile (XAPP's input is an unmodified single-threaded run).

    Eleven dynamic features per program, all cheap to compute from one
    thread's trace plus the static code — the spirit of XAPP's
    "16 profile-based program properties" scaled to this ISA:

    0. ALU fraction            1. mul/div fraction      2. FP fraction
    3. load fraction           4. store fraction        5. branch fraction
    6. mean basic-block length 7. control diversity (distinct edges /
       dynamic branches)       8. arithmetic intensity (instrs per access)
    9. memory irregularity (unique addresses / accesses)
    10. synchronization rate (lock ops per kilo-instruction) *)

open Threadfuser_isa
module Program = Threadfuser_prog.Program
module Event = Threadfuser_trace.Event
module Thread_trace = Threadfuser_trace.Thread_trace

let n_features = 11

let names =
  [|
    "alu_frac"; "muldiv_frac"; "fp_frac"; "load_frac"; "store_frac";
    "branch_frac"; "mean_block_len"; "control_diversity"; "intensity";
    "mem_irregularity"; "sync_rate";
  |]

type mix = {
  mutable alu : int;
  mutable muldiv : int;
  mutable fp : int;
  mutable load : int;
  mutable store : int;
  mutable branch : int;
  mutable other : int;
}

let classify_static mix (i : (int, int) Instr.t) =
  let mem_ops o = if Operand.is_mem o then 1 else 0 in
  match i with
  | Instr.Mov (_, dst, src) ->
      mix.load <- mix.load + mem_ops src;
      mix.store <- mix.store + mem_ops dst;
      if not (Operand.is_mem dst || Operand.is_mem src) then mix.alu <- mix.alu + 1
  | Instr.Cmov (_, _, src) ->
      mix.load <- mix.load + mem_ops src;
      mix.alu <- mix.alu + 1
  | Instr.Lea _ -> mix.alu <- mix.alu + 1
  | Instr.Binop (op, _, dst, src) ->
      mix.load <- mix.load + mem_ops src + mem_ops dst;
      mix.store <- mix.store + mem_ops dst;
      (match op with
      | Op.Mul | Op.Div | Op.Rem -> mix.muldiv <- mix.muldiv + 1
      | Op.Fadd | Op.Fsub | Op.Fmul | Op.Fdiv -> mix.fp <- mix.fp + 1
      | _ -> mix.alu <- mix.alu + 1)
  | Instr.Unop (op, _, dst) ->
      mix.load <- mix.load + mem_ops dst;
      mix.store <- mix.store + mem_ops dst;
      (match op with
      | Op.Fsqrt -> mix.fp <- mix.fp + 1
      | Op.Neg | Op.Not -> mix.alu <- mix.alu + 1)
  | Instr.Cmp (_, a, b) ->
      mix.load <- mix.load + mem_ops a + mem_ops b;
      mix.alu <- mix.alu + 1
  | Instr.Jcc _ | Instr.Jmp _ -> mix.branch <- mix.branch + 1
  | Instr.Atomic_rmw _ ->
      mix.load <- mix.load + 1;
      mix.store <- mix.store + 1
  | Instr.Call _ | Instr.Ret | Instr.Lock_acquire _ | Instr.Lock_release _
  | Instr.Io _ | Instr.Barrier _ | Instr.Halt ->
      mix.other <- mix.other + 1

(** Extract the feature vector from one thread's trace. *)
let extract (prog : Program.t) (trace : Thread_trace.t) : float array =
  let mix = { alu = 0; muldiv = 0; fp = 0; load = 0; store = 0; branch = 0; other = 0 } in
  let total_instrs = ref 0 in
  let total_blocks = ref 0 in
  let accesses = ref 0 in
  let unique_addrs = Hashtbl.create 1024 in
  let edges = Hashtbl.create 256 in
  let lock_ops = ref 0 in
  let last_block = ref (-1) in
  Array.iter
    (fun (e : Event.t) ->
      match e with
      | Event.Block { func; block; n_instr; accesses = accs } ->
          total_instrs := !total_instrs + n_instr;
          incr total_blocks;
          let f = Program.func prog func in
          Array.iter (classify_static mix) f.Program.blocks.(block).Program.instrs;
          Array.iter
            (fun (a : Event.access) ->
              incr accesses;
              Hashtbl.replace unique_addrs a.Event.addr ())
            accs;
          let key = (func * 100_000) + block in
          if !last_block >= 0 then Hashtbl.replace edges ((!last_block * 1_000_000_000) + key) ();
          last_block := key
      | Event.Lock_acq _ | Event.Lock_rel _ | Event.Barrier _ -> incr lock_ops
      | Event.Call _ | Event.Return | Event.Skip _ -> ())
    trace.Thread_trace.events;
  let fi = float_of_int in
  let instrs = max 1 !total_instrs in
  let frac n = fi n /. fi instrs in
  [|
    frac mix.alu;
    frac mix.muldiv;
    frac mix.fp;
    frac mix.load;
    frac mix.store;
    frac mix.branch;
    fi instrs /. fi (max 1 !total_blocks);
    fi (Hashtbl.length edges) /. fi (max 1 mix.branch);
    fi instrs /. fi (max 1 !accesses);
    fi (Hashtbl.length unique_addrs) /. fi (max 1 !accesses);
    1000.0 *. fi !lock_ops /. fi instrs;
  |]
