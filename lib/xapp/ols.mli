(** Ridge-regularized ordinary least squares (normal equations + Gaussian
    elimination with partial pivoting); an intercept column is appended
    automatically. *)

type model = { beta : float array  (** weights; last entry = intercept *) }

exception Singular

(** Raises [Invalid_argument] on empty or ragged inputs, {!Singular} when
    the (regularized) system cannot be solved. *)
val fit : ?lambda:float -> float array list -> float list -> model

val predict : model -> float array -> float
