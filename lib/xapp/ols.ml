(** Ridge-regularized ordinary least squares, the learning machinery behind
    the XAPP baseline (Ardalani et al., MICRO 2015, used ensembles of
    regressions over program properties; a single ridge regression is the
    honest small-data core of that idea).

    Solves [(XtX + lambda I) beta = Xt y] by Gaussian elimination with
    partial pivoting.  An intercept column is appended automatically. *)

type model = { beta : float array (* length n_features + 1; last = intercept *) }

exception Singular

(* Solve the square system [a x = b] in place. *)
let solve (a : float array array) (b : float array) =
  let n = Array.length b in
  for col = 0 to n - 1 do
    (* partial pivot *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if abs_float a.(row).(col) > abs_float a.(!pivot).(col) then pivot := row
    done;
    if abs_float a.(!pivot).(col) < 1e-12 then raise Singular;
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!pivot);
      b.(!pivot) <- tb
    end;
    for row = col + 1 to n - 1 do
      let f = a.(row).(col) /. a.(col).(col) in
      if f <> 0.0 then begin
        for k = col to n - 1 do
          a.(row).(k) <- a.(row).(k) -. (f *. a.(col).(k))
        done;
        b.(row) <- b.(row) -. (f *. b.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let s = ref b.(row) in
    for k = row + 1 to n - 1 do
      s := !s -. (a.(row).(k) *. x.(k))
    done;
    x.(row) <- !s /. a.(row).(row)
  done;
  x

(** [fit ?lambda xs ys] — [xs] are feature rows (all the same length),
    [ys] the targets. *)
let fit ?(lambda = 1e-3) (xs : float array list) (ys : float list) : model =
  (match xs with
  | [] -> invalid_arg "Ols.fit: no samples"
  | x :: rest ->
      let d = Array.length x in
      if List.exists (fun r -> Array.length r <> d) rest then
        invalid_arg "Ols.fit: ragged features");
  if List.length xs <> List.length ys then invalid_arg "Ols.fit: length mismatch";
  let with_intercept = List.map (fun x -> Array.append x [| 1.0 |]) xs in
  let d = Array.length (List.hd with_intercept) in
  let xtx = Array.make_matrix d d 0.0 in
  let xty = Array.make d 0.0 in
  List.iter2
    (fun x y ->
      for i = 0 to d - 1 do
        xty.(i) <- xty.(i) +. (x.(i) *. y);
        for j = 0 to d - 1 do
          xtx.(i).(j) <- xtx.(i).(j) +. (x.(i) *. x.(j))
        done
      done)
    with_intercept ys;
  for i = 0 to d - 1 do
    xtx.(i).(i) <- xtx.(i).(i) +. lambda
  done;
  { beta = solve xtx xty }

let predict (m : model) (x : float array) =
  let d = Array.length m.beta in
  if Array.length x <> d - 1 then invalid_arg "Ols.predict: feature mismatch";
  let s = ref m.beta.(d - 1) in
  for i = 0 to d - 2 do
    s := !s +. (m.beta.(i) *. x.(i))
  done;
  !s
