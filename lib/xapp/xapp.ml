(** A reimplementation of the XAPP baseline (Ardalani et al., MICRO 2015,
    the paper's Table II comparison): predict a CPU program's GPU speedup
    from profile-based program properties of a {e single-threaded} run,
    with no SIMT modelling at all.

    [loo_errors] performs the leave-one-out protocol XAPP itself uses:
    train the regression on all other workloads' (features, log-speedup)
    pairs and predict the held-out one.  The contrast with ThreadFuser is
    the paper's point — an opaque profile-based model vs an explicit
    dynamic-CFG SIMT replay. *)

type sample = { name : string; features : float array; speedup : float }

type prediction = {
  p_name : string;
  actual : float;
  predicted : float;
  rel_error : float; (* |predicted - actual| / actual *)
}

(* Speedups are strictly positive and span decades, so the model learns
   log-speedup and predictions are exponentiated back. *)
let loo_errors ?(lambda = 1e-2) (samples : sample list) : prediction list =
  List.map
    (fun held_out ->
      let train = List.filter (fun s -> s.name <> held_out.name) samples in
      let xs = List.map (fun s -> s.features) train in
      let ys = List.map (fun s -> log s.speedup) train in
      let model = Ols.fit ~lambda xs ys in
      let predicted = exp (Ols.predict model held_out.features) in
      {
        p_name = held_out.name;
        actual = held_out.speedup;
        predicted;
        rel_error = abs_float (predicted -. held_out.speedup) /. held_out.speedup;
      })
    samples

let mean_rel_error preds =
  List.fold_left (fun acc p -> acc +. p.rel_error) 0.0 preds
  /. float_of_int (max 1 (List.length preds))
