(** Dynamic per-thread trace events.

    This is the abstraction the paper's PIN-based tracer produces: a stream
    of executed basic blocks with per-instruction memory accesses,
    call/return markers, synchronization-primitive invocations, and
    "skipped" regions (I/O and lock spinning, cf. paper Fig. 8).

    Event order within a thread:
    - a [Block] event is emitted when the block finishes executing and
      carries all memory accesses its instructions performed;
    - a block ending in a call is followed by [Call], then the callee's
      events, then [Return], then the caller's next block;
    - a block ending in a lock acquire is followed by (optionally a
      [Skip Spin]) then [Lock_acq] once the lock is held. *)

type access = {
  ioff : int; (* instruction offset within the block *)
  addr : int;
  size : int;
  is_store : bool;
}

type skip_reason = Io | Spin | Excluded

type t =
  | Block of { func : int; block : int; n_instr : int; accesses : access array }
  | Call of int (* callee function id *)
  | Return
  | Lock_acq of int (* lock address *)
  | Lock_rel of int
  | Barrier of int (* team barrier passed (address names the barrier) *)
  | Skip of { reason : skip_reason; n_instr : int }

let no_accesses : access array = [||]

let pp_access ppf a =
  Fmt.pf ppf "%s@%d:0x%x/%d" (if a.is_store then "st" else "ld") a.ioff a.addr
    a.size

let pp ppf = function
  | Block b ->
      Fmt.pf ppf "block f%d.b%d n=%d [%a]" b.func b.block b.n_instr
        Fmt.(array ~sep:comma pp_access)
        b.accesses
  | Call f -> Fmt.pf ppf "call f%d" f
  | Return -> Fmt.string ppf "return"
  | Lock_acq a -> Fmt.pf ppf "lock_acq 0x%x" a
  | Lock_rel a -> Fmt.pf ppf "lock_rel 0x%x" a
  | Barrier a -> Fmt.pf ppf "barrier 0x%x" a
  | Skip { reason = Io; n_instr } -> Fmt.pf ppf "skip.io %d" n_instr
  | Skip { reason = Spin; n_instr } -> Fmt.pf ppf "skip.spin %d" n_instr
  | Skip { reason = Excluded; n_instr } -> Fmt.pf ppf "skip.excluded %d" n_instr

let equal_access (a : access) (b : access) = a = b

let equal (a : t) (b : t) =
  match (a, b) with
  | Block x, Block y ->
      x.func = y.func && x.block = y.block && x.n_instr = y.n_instr
      && Array.length x.accesses = Array.length y.accesses
      && Array.for_all2 equal_access x.accesses y.accesses
  | Call x, Call y -> x = y
  | Return, Return -> true
  | Lock_acq x, Lock_acq y | Lock_rel x, Lock_rel y | Barrier x, Barrier y ->
      x = y
  | Skip x, Skip y -> x.reason = y.reason && x.n_instr = y.n_instr
  | ( ( Block _ | Call _ | Return | Lock_acq _ | Lock_rel _ | Barrier _
      | Skip _ ),
      ( Block _ | Call _ | Return | Lock_acq _ | Lock_rel _ | Barrier _
      | Skip _ ) ) ->
      false
