(** Chunked streaming serialization of thread traces.

    Where {!Serial} encodes a complete trace set in one block, this module
    frames one thread per bounded frame so a trace set can be produced,
    shipped and consumed incrementally — the wire format of the
    [threadfuser serve] session protocol and the spool format of
    [Analyzer.Session].

    The decoder is push-based and total: [feed] it arbitrary byte chunks
    (any chunking, byte-at-a-time included) and [next] either yields a
    decoded frame, asks for more input, or reports typed corruption.  A
    truncated or hostile stream can only ever produce [Corrupt] — never an
    exception, an unbounded buffer or a giant allocation: frames larger
    than the decoder's bound are rejected from their length header alone,
    before any payload is buffered. *)

module Tf_error := Threadfuser_util.Tf_error

val magic : string
(** Stream header ("TFSTREAM1"), distinct from {!Serial}'s "TFTRACE1". *)

(** {1 Encoding} *)

val add_magic : Buffer.t -> unit

val add_thread : Buffer.t -> Thread_trace.t -> unit
(** One framed thread: tag, payload length, then tid + events in
    {!Serial}'s event codec. *)

val add_end : Buffer.t -> unit
(** The end-of-stream frame; bytes after it are a protocol error. *)

val encode : Thread_trace.t array -> string
(** [magic] + one thread frame each + end frame. *)

(** {1 Incremental decoding} *)

type t
(** Decoder state: a bounded reassembly buffer plus a parse position. *)

val create : ?max_frame_bytes:int -> ?expect_magic:bool -> unit -> t
(** [max_frame_bytes] (default 16 MiB) bounds a single frame's declared
    payload; [expect_magic:false] decodes a bare frame sequence (the
    session spool format, which carries no header). *)

type step =
  | Need_more  (** the buffered bytes end mid-frame; feed more *)
  | Frame of Thread_trace.t
  | End_of_stream  (** the end frame was consumed *)
  | Corrupt of Tf_error.diagnostic
      (** typed, sticky: every later [next] returns the same diagnostic *)

val feed : t -> ?off:int -> ?len:int -> string -> unit
(** Append a chunk to the reassembly buffer.  Cheap; no parsing happens
    until [next]. *)

val next : t -> step

val buffered : t -> int
(** Bytes fed but not yet consumed by [next] — bounded by the frame bound
    plus one chunk, the backpressure quantity. *)

val bytes_fed : t -> int
(** Total bytes ever fed. *)

val decode : string -> (Thread_trace.t array, Tf_error.diagnostic) result
(** One-shot convenience over a complete in-memory stream. *)
