(** Chunked streaming serialization (see stream.mli).

    Wire format: the magic, then frames.  A frame is a varint tag —

    {v
      0 Thread  payload_len:varint payload(tid:varint n_events:varint events)
      1 End     (no payload)
    v}

    — with the payload encoded by {!Serial}'s event codec.  The explicit
    payload length lets the decoder (a) reject oversized frames from the
    header alone and (b) hand the payload to {!Serial}'s bounded readers,
    whose count checks are all relative to the frame, not the stream. *)

module Tf_error = Threadfuser_util.Tf_error

let magic = "TFSTREAM1"

let tag_thread = 0
let tag_end = 1

(* -- encoding ----------------------------------------------------------- *)

let add_magic buf = Buffer.add_string buf magic

let add_thread buf (t : Thread_trace.t) =
  let payload = Buffer.create 256 in
  Serial.write_uint payload t.Thread_trace.tid;
  Serial.write_uint payload (Array.length t.Thread_trace.events);
  Array.iter (Serial.write_event payload) t.Thread_trace.events;
  Serial.write_uint buf tag_thread;
  Serial.write_uint buf (Buffer.length payload);
  Buffer.add_buffer buf payload

let add_end buf = Serial.write_uint buf tag_end

let encode traces =
  let buf = Buffer.create 4096 in
  add_magic buf;
  Array.iter (add_thread buf) traces;
  add_end buf;
  Buffer.contents buf

(* -- incremental decoding ----------------------------------------------- *)

type status =
  | Expect_magic
  | Frames
  | Done
  | Failed of Tf_error.diagnostic (* sticky *)

type t = {
  mutable buf : Bytes.t; (* reassembly buffer *)
  mutable len : int; (* valid bytes in [buf] *)
  mutable pos : int; (* consumed prefix *)
  mutable state : status;
  max_frame : int;
  mutable fed : int;
}

let create ?(max_frame_bytes = 16 * 1024 * 1024) ?(expect_magic = true) () =
  if max_frame_bytes <= 0 then
    invalid_arg "Stream.create: max_frame_bytes must be positive";
  {
    buf = Bytes.create 4096;
    len = 0;
    pos = 0;
    state = (if expect_magic then Expect_magic else Frames);
    max_frame = max_frame_bytes;
    fed = 0;
  }

let buffered t = t.len - t.pos
let bytes_fed t = t.fed

let feed t ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Stream.feed: bad substring";
  (* compact the consumed prefix before growing: the buffer stays bounded
     by one frame plus one chunk *)
  if t.pos > 0 && (t.pos = t.len || t.pos >= 4096) then begin
    Bytes.blit t.buf t.pos t.buf 0 (t.len - t.pos);
    t.len <- t.len - t.pos;
    t.pos <- 0
  end;
  if t.len + len > Bytes.length t.buf then begin
    let cap = ref (max 4096 (2 * Bytes.length t.buf)) in
    while t.len + len > !cap do
      cap := 2 * !cap
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end;
  Bytes.blit_string s off t.buf t.len len;
  t.len <- t.len + len;
  t.fed <- t.fed + len

type step =
  | Need_more
  | Frame of Thread_trace.t
  | End_of_stream
  | Corrupt of Tf_error.diagnostic

(* Raised internally when the buffered bytes end mid-item. *)
exception Short

exception Bad of string

(* Varint over the reassembly buffer, with [Serial.read_uint]'s overlong
   bound but [Short] instead of "truncated" (more input may still fix it). *)
let read_uint_b t p =
  let rec go shift acc =
    if !p >= t.len then raise Short;
    let b = Char.code (Bytes.get t.buf !p) in
    incr p;
    if shift >= 63 then raise (Bad "overlong varint");
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let fail t fmt =
  Format.kasprintf
    (fun m ->
      let d = Tf_error.diag Tf_error.Corrupt_input "%s" m in
      t.state <- Failed d;
      Corrupt d)
    fmt

(* Decode one thread payload (already fully buffered).  All of [Serial]'s
   reader checks apply relative to the frame, so a lying event count inside
   a frame is caught by [read_count] against the frame length. *)
let decode_thread t ~payload_off ~payload_len =
  let r =
    { Serial.data = Bytes.sub_string t.buf payload_off payload_len; pos = 0 }
  in
  let tid = Serial.read_uint r in
  if tid < 0 then raise (Serial.Corrupt "negative thread id");
  let n_events = Serial.read_count r ~min_bytes:1 "event" in
  let events = Array.init n_events (fun _ -> Serial.read_event r) in
  if r.pos <> payload_len then
    raise
      (Serial.Corrupt
         (Printf.sprintf "thread frame has %d trailing byte(s)"
            (payload_len - r.pos)));
  { Thread_trace.tid; events }

let rec next t =
  match t.state with
  | Failed d -> Corrupt d
  | Done ->
      if t.pos < t.len then
        fail t "%d byte(s) after the end-of-stream frame" (t.len - t.pos)
      else End_of_stream
  | Expect_magic ->
      let n = String.length magic in
      if t.len - t.pos < n then Need_more
      else if Bytes.sub_string t.buf t.pos n <> magic then fail t "bad magic"
      else begin
        t.pos <- t.pos + n;
        t.state <- Frames;
        next t
      end
  | Frames -> (
      let p = ref t.pos in
      match
        let tag = read_uint_b t p in
        if tag = tag_end then `End !p
        else if tag <> tag_thread then raise (Bad (Printf.sprintf "bad frame tag %d" tag))
        else begin
          let payload_len = read_uint_b t p in
          (* bound first: an oversized declaration must fail before the
             decoder waits for (or buffers) the payload *)
          if payload_len < 0 || payload_len > t.max_frame then
            raise
              (Bad
                 (Printf.sprintf "frame of %d bytes exceeds the %d-byte bound"
                    payload_len t.max_frame));
          if t.len - !p < payload_len then raise Short;
          let trace = decode_thread t ~payload_off:!p ~payload_len in
          `Thread (!p + payload_len, trace)
        end
      with
      | `End pos ->
          t.pos <- pos;
          t.state <- Done;
          next t
      | `Thread (pos, trace) ->
          t.pos <- pos;
          Frame trace
      | exception Short -> Need_more
      | exception Bad m -> fail t "%s" m
      | exception Serial.Corrupt m -> fail t "%s" m)

let decode s =
  let t = create () in
  feed t s;
  let acc = ref [] in
  let rec go () =
    match next t with
    | Frame tr ->
        acc := tr :: !acc;
        go ()
    | End_of_stream -> Ok (Array.of_list (List.rev !acc))
    | Need_more ->
        Error (Tf_error.diag Tf_error.Corrupt_input "stream truncated mid-frame")
    | Corrupt d -> Error d
  in
  go ()
