(** TFPACK1: the compact columnar, delta-encoded binary trace container.

    Smaller than TFTRACE1 on real traces (tags, delta-coded block ids and
    access addresses each get their own varint column) and safer at rest:
    every per-thread block carries a CRC-32 trailer, so torn or bit-flipped
    bytes are detected before any event reaches an analyzer.  Encoding is
    deterministic — the same traces always produce the same bytes — which
    is what lets the artifact cache content-address packed traces.

    All decode errors raise {!Serial.Corrupt} (the CLI's typed exit-2
    path); the incremental {!Dec} reports them as sticky
    {!Threadfuser_util.Tf_error} diagnostics instead. *)

val magic : string
(** ["TFPACK1"] — the container's leading bytes, for format sniffing. *)

val encode : Thread_trace.t array -> string

val decode : string -> Thread_trace.t array
(** Raises {!Serial.Corrupt} on bad magic, truncation, CRC mismatch,
    overlong varints, lying counts or trailing bytes. *)

val to_file : string -> Thread_trace.t array -> unit

val of_file : string -> Thread_trace.t array
(** Raises {!Serial.Corrupt} like {!decode}; [Sys_error] on I/O failure. *)

(** Incremental decoder: feed arbitrary chunks, pull whole thread traces.
    Any chunking yields the same thread sequence as {!decode}. *)
module Dec : sig
  type t

  val create : ?max_block_bytes:int -> unit -> t
  (** [max_block_bytes] (default 16 MiB) bounds a single thread block; an
      oversized declared length is rejected from the header alone, before
      any payload is buffered. *)

  val feed : t -> ?off:int -> ?len:int -> string -> unit

  val buffered : t -> int
  (** Bytes fed but not yet consumed. *)

  type step =
    | Need_more  (** the buffered bytes end mid-item; feed more *)
    | Thread of Thread_trace.t
    | End_of_pack  (** all declared thread blocks decoded *)
    | Corrupt of Threadfuser_util.Tf_error.diagnostic  (** sticky *)

  val next : t -> step

  val decode_all : string -> (Thread_trace.t array, Threadfuser_util.Tf_error.diagnostic) result
  (** One-shot convenience over a fully buffered pack. *)
end
