(** TFPACK1: compact columnar, delta-encoded binary trace container (see
    pack.mli).

    Wire format (all integers LEB128 varints via {!Serial}):

    {v
      "TFPACK1" n_threads:varint block*
      block   := tid:varint payload_len:varint payload crc32:4B-LE
      payload := n_events:varint tags[n_events] args-column access-column
    v}

    The tag column is one byte per event ({!Serial}'s tag numbering).  The
    args column stores, per event in order: Block as zigzag deltas of
    (func, block) against the previous Block plus n_instr and the access
    count; Call as a zigzag delta against the previous Call target; lock
    and barrier addresses as zigzag deltas against the previous sync
    address; Skip as reason and n_instr.  The access column stores, for
    each Block's accesses in order, ioff, a zigzag delta of the address
    against the previous access (the stream crosses block boundaries),
    size, and the store flag.  All predictors reset per thread block, so
    each block decodes independently — which is what lets the CRC-32
    trailer sit per block and the streaming decoder emit threads as their
    bytes arrive.

    Hot traces are loops: block ids, lock addresses and access strides
    repeat with small deltas, so the columns varint-pack far better than
    the flat TFTRACE1 encoding. *)

module Tf_error = Threadfuser_util.Tf_error
module Crc32 = Threadfuser_util.Crc32

let magic = "TFPACK1"

(* -- zigzag ------------------------------------------------------------- *)

(* Maps small-magnitude deltas of either sign to small non-negative codes:
   0,-1,1,-2,... -> 0,1,2,3,...  [asr (int_size-1)] smears the sign bit, so
   the pair round-trips every OCaml int including [min_int] (whose shifted
   code wraps consistently on both sides). *)
let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag z = (z lsr 1) lxor (- (z land 1))

(* -- per-thread delta predictors ---------------------------------------- *)

type predictor = {
  mutable p_func : int;  (* previous Block's function id *)
  mutable p_block : int;  (* previous Block's block id *)
  mutable p_call : int;  (* previous Call target *)
  mutable p_sync : int;  (* previous lock/barrier address *)
  mutable p_addr : int;  (* previous memory-access address *)
}

let predictor () = { p_func = 0; p_block = 0; p_call = 0; p_sync = 0; p_addr = 0 }

(* -- encoding ----------------------------------------------------------- *)

let tag_of_event : Event.t -> int = function
  | Event.Block _ -> 0
  | Event.Call _ -> 1
  | Event.Return -> 2
  | Event.Lock_acq _ -> 3
  | Event.Lock_rel _ -> 4
  | Event.Skip _ -> 5
  | Event.Barrier _ -> 6

let encode_payload (t : Thread_trace.t) =
  let buf = Buffer.create 512 in
  let events = t.Thread_trace.events in
  Serial.write_uint buf (Array.length events);
  Array.iter (fun e -> Buffer.add_char buf (Char.chr (tag_of_event e))) events;
  let p = predictor () in
  (* args column *)
  Array.iter
    (fun (e : Event.t) ->
      match e with
      | Event.Block b ->
          Serial.write_uint buf (zigzag (b.func - p.p_func));
          Serial.write_uint buf (zigzag (b.block - p.p_block));
          Serial.write_uint buf b.n_instr;
          Serial.write_uint buf (Array.length b.accesses);
          p.p_func <- b.func;
          p.p_block <- b.block
      | Event.Call f ->
          Serial.write_uint buf (zigzag (f - p.p_call));
          p.p_call <- f
      | Event.Return -> ()
      | Event.Lock_acq a | Event.Lock_rel a | Event.Barrier a ->
          Serial.write_uint buf (zigzag (a - p.p_sync));
          p.p_sync <- a
      | Event.Skip { reason; n_instr } ->
          Serial.write_uint buf
            (match reason with
            | Event.Io -> 0
            | Event.Spin -> 1
            | Event.Excluded -> 2);
          Serial.write_uint buf n_instr)
    events;
  (* access column *)
  Array.iter
    (fun (e : Event.t) ->
      match e with
      | Event.Block b ->
          Array.iter
            (fun (a : Event.access) ->
              Serial.write_uint buf a.ioff;
              Serial.write_uint buf (zigzag (a.addr - p.p_addr));
              Serial.write_uint buf a.size;
              Serial.write_uint buf (if a.is_store then 1 else 0);
              p.p_addr <- a.addr)
            b.accesses
      | _ -> ())
    events;
  Buffer.contents buf

let add_thread buf (t : Thread_trace.t) =
  let payload = encode_payload t in
  Serial.write_uint buf t.Thread_trace.tid;
  Serial.write_uint buf (String.length payload);
  Buffer.add_string buf payload;
  Crc32.add_le buf (Crc32.string payload)

let encode (traces : Thread_trace.t array) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Serial.write_uint buf (Array.length traces);
  Array.iter (add_thread buf) traces;
  Buffer.contents buf

(* -- payload decoding --------------------------------------------------- *)

(* The payload is a fully-buffered substring, so {!Serial}'s bounded
   readers apply with all counts relative to the payload, exactly like a
   TFSTREAM1 frame. *)
let decode_payload ~tid payload : Thread_trace.t =
  let r = { Serial.data = payload; pos = 0 } in
  (* an event costs at least its 1 tag byte *)
  let n_events = Serial.read_count r ~min_bytes:1 "event" in
  let tags =
    Array.init n_events (fun _ ->
        let t = Serial.read_byte r in
        if t > 6 then raise (Serial.Corrupt (Printf.sprintf "bad event tag %d" t));
        t)
  in
  let p = predictor () in
  (* args column: partial events, access counts remembered for the access
     column *)
  let n_acc = Array.make n_events 0 in
  let events =
    Array.mapi
      (fun i tag ->
        match tag with
        | 0 ->
            let func = p.p_func + unzigzag (Serial.read_uint r) in
            let block = p.p_block + unzigzag (Serial.read_uint r) in
            let n_instr = Serial.read_uint r in
            if n_instr < 0 then raise (Serial.Corrupt "negative n_instr");
            (* an access costs at least 4 varint bytes in its column *)
            let n = Serial.read_count r ~min_bytes:4 "access" in
            n_acc.(i) <- n;
            p.p_func <- func;
            p.p_block <- block;
            Event.Block { func; block; n_instr; accesses = Event.no_accesses }
        | 1 ->
            let f = p.p_call + unzigzag (Serial.read_uint r) in
            p.p_call <- f;
            Event.Call f
        | 2 -> Event.Return
        | 3 | 4 | 6 ->
            let a = p.p_sync + unzigzag (Serial.read_uint r) in
            p.p_sync <- a;
            if tag = 3 then Event.Lock_acq a
            else if tag = 4 then Event.Lock_rel a
            else Event.Barrier a
        | 5 ->
            let reason =
              match Serial.read_uint r with
              | 0 -> Event.Io
              | 1 -> Event.Spin
              | 2 -> Event.Excluded
              | n -> raise (Serial.Corrupt (Printf.sprintf "bad skip reason %d" n))
            in
            let n_instr = Serial.read_uint r in
            Event.Skip { reason; n_instr }
        | _ -> assert false)
      tags
  in
  (* access column *)
  let events =
    Array.mapi
      (fun i e ->
        match e with
        | Event.Block b when n_acc.(i) > 0 ->
            let accesses =
              Array.init n_acc.(i) (fun _ ->
                  let ioff = Serial.read_uint r in
                  let addr = p.p_addr + unzigzag (Serial.read_uint r) in
                  let size = Serial.read_uint r in
                  let is_store = Serial.read_uint r = 1 in
                  p.p_addr <- addr;
                  { Event.ioff; addr; size; is_store })
            in
            Event.Block { b with accesses }
        | e -> e)
      events
  in
  if r.Serial.pos <> String.length payload then
    raise
      (Serial.Corrupt
         (Printf.sprintf "pack payload has %d trailing byte(s)"
            (String.length payload - r.Serial.pos)));
  { Thread_trace.tid; events }

let check_crc ~payload ~stored =
  let computed = Crc32.string payload in
  if computed <> stored then
    raise
      (Serial.Corrupt
         (Printf.sprintf "pack block crc mismatch (stored %08x, computed %08x)"
            stored computed))

(* -- whole-buffer decoding ---------------------------------------------- *)

let decode s : Thread_trace.t array =
  let n_magic = String.length magic in
  if String.length s < n_magic || String.sub s 0 n_magic <> magic then
    raise (Serial.Corrupt "bad pack magic");
  let r = { Serial.data = s; pos = n_magic } in
  (* a thread block costs at least tid + len + 1-byte payload + 4-byte crc *)
  let n_threads = Serial.read_count r ~min_bytes:7 "thread" in
  let traces =
    Array.init n_threads (fun _ ->
        let tid = Serial.read_uint r in
        if tid < 0 then raise (Serial.Corrupt "negative thread id");
        let payload_len = Serial.read_uint r in
        if payload_len < 0 || payload_len + 4 > String.length s - r.Serial.pos
        then raise (Serial.Corrupt "pack block length exceeds remaining input");
        let payload = String.sub s r.Serial.pos payload_len in
        r.Serial.pos <- r.Serial.pos + payload_len;
        let stored = Crc32.read_le s r.Serial.pos in
        r.Serial.pos <- r.Serial.pos + 4;
        check_crc ~payload ~stored;
        decode_payload ~tid payload)
  in
  if r.Serial.pos <> String.length s then
    raise
      (Serial.Corrupt
         (Printf.sprintf "%d byte(s) after the last pack block"
            (String.length s - r.Serial.pos)));
  traces

(* -- files -------------------------------------------------------------- *)

let to_file path traces =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode traces))

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode (really_input_string ic (in_channel_length ic)))

(* -- incremental decoding ----------------------------------------------- *)

module Dec = struct
  type status =
    | Expect_magic
    | Expect_count
    | Blocks of int  (* thread blocks still to come *)
    | Done
    | Failed of Tf_error.diagnostic  (* sticky *)

  type t = {
    mutable buf : Bytes.t;
    mutable len : int;
    mutable pos : int;
    mutable state : status;
    max_block : int;
  }

  let create ?(max_block_bytes = 16 * 1024 * 1024) () =
    if max_block_bytes <= 0 then
      invalid_arg "Pack.Dec.create: max_block_bytes must be positive";
    {
      buf = Bytes.create 4096;
      len = 0;
      pos = 0;
      state = Expect_magic;
      max_block = max_block_bytes;
    }

  let buffered t = t.len - t.pos

  let feed t ?(off = 0) ?len s =
    let len = match len with Some l -> l | None -> String.length s - off in
    if off < 0 || len < 0 || off + len > String.length s then
      invalid_arg "Pack.Dec.feed: bad substring";
    if t.pos > 0 && (t.pos = t.len || t.pos >= 4096) then begin
      Bytes.blit t.buf t.pos t.buf 0 (t.len - t.pos);
      t.len <- t.len - t.pos;
      t.pos <- 0
    end;
    if t.len + len > Bytes.length t.buf then begin
      let cap = ref (max 4096 (2 * Bytes.length t.buf)) in
      while t.len + len > !cap do
        cap := 2 * !cap
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    Bytes.blit_string s off t.buf t.len len;
    t.len <- t.len + len

  type step =
    | Need_more
    | Thread of Thread_trace.t
    | End_of_pack
    | Corrupt of Tf_error.diagnostic

  exception Short
  exception Bad of string

  (* Varint over the reassembly buffer: [Serial.read_uint]'s overlong
     bound, but [Short] on exhaustion (more input may still arrive). *)
  let read_uint_b t p =
    let rec go shift acc =
      if !p >= t.len then raise Short;
      let b = Char.code (Bytes.get t.buf !p) in
      incr p;
      if shift >= 63 then raise (Bad "overlong varint");
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    go 0 0

  let fail t fmt =
    Format.kasprintf
      (fun m ->
        let d = Tf_error.diag Tf_error.Corrupt_input "%s" m in
        t.state <- Failed d;
        Corrupt d)
      fmt

  let rec next t =
    match t.state with
    | Failed d -> Corrupt d
    | Done ->
        if t.pos < t.len then
          fail t "%d byte(s) after the last pack block" (t.len - t.pos)
        else End_of_pack
    | Expect_magic ->
        let n = String.length magic in
        if t.len - t.pos < n then Need_more
        else if Bytes.sub_string t.buf t.pos n <> magic then
          fail t "bad pack magic"
        else begin
          t.pos <- t.pos + n;
          t.state <- Expect_count;
          next t
        end
    | Expect_count -> (
        let p = ref t.pos in
        match read_uint_b t p with
        | n ->
            if n < 0 then fail t "negative thread count"
            else begin
              t.pos <- !p;
              t.state <- (if n = 0 then Done else Blocks n);
              next t
            end
        | exception Short -> Need_more
        | exception Bad m -> fail t "%s" m)
    | Blocks remaining -> (
        let p = ref t.pos in
        match
          let tid = read_uint_b t p in
          if tid < 0 then raise (Bad "negative thread id");
          let payload_len = read_uint_b t p in
          (* bound before buffering: an oversized declaration must fail
             from the header alone *)
          if payload_len < 0 || payload_len > t.max_block then
            raise
              (Bad
                 (Printf.sprintf
                    "pack block of %d bytes exceeds the %d-byte bound"
                    payload_len t.max_block));
          if t.len - !p < payload_len + 4 then raise Short;
          let payload = Bytes.sub_string t.buf !p payload_len in
          let stored =
            Crc32.read_le
              (Bytes.sub_string t.buf (!p + payload_len) 4)
              0
          in
          check_crc ~payload ~stored;
          (!p + payload_len + 4, decode_payload ~tid payload)
        with
        | pos, trace ->
            t.pos <- pos;
            t.state <- (if remaining = 1 then Done else Blocks (remaining - 1));
            Thread trace
        | exception Short -> Need_more
        | exception Bad m -> fail t "%s" m
        | exception Serial.Corrupt m -> fail t "%s" m)

  let decode_all s =
    let t = create () in
    feed t s;
    let acc = ref [] in
    let rec go () =
      match next t with
      | Thread tr ->
          acc := tr :: !acc;
          go ()
      | End_of_pack -> Ok (Array.of_list (List.rev !acc))
      | Need_more ->
          Error (Tf_error.diag Tf_error.Corrupt_input "pack truncated mid-block")
      | Corrupt d -> Error d
    in
    go ()
end
