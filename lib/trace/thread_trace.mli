(** The dynamic trace of one CPU thread, plus summary statistics. *)

type t = { tid : int; events : Event.t array }

type stats = {
  traced_instrs : int;  (** instructions inside [Block] events *)
  skipped_io : int;
  skipped_spin : int;
  skipped_excluded : int;
  blocks : int;
  loads : int;
  stores : int;
  lock_ops : int;  (** acquires + releases *)
  barriers : int;
}

val stats : t -> stats

(** Mutable trace under construction; the machine appends as it executes. *)
module Builder : sig
  type trace := t

  type t

  val create : int -> t

  val emit : t -> Event.t -> unit

  val finish : t -> trace
end

val pp : Format.formatter -> t -> unit
