(** Binary serialization of trace sets (LEB128 varints over the
    two's-complement bit pattern), so traces can be captured once and
    re-analyzed under many warp configurations — the paper's trace files. *)

exception Corrupt of string
(** Raised by the readers on malformed or truncated input. *)

val to_buffer : Thread_trace.t array -> Buffer.t

val to_string : Thread_trace.t array -> string

val of_string : string -> Thread_trace.t array

val to_file : string -> Thread_trace.t array -> unit

val of_file : string -> Thread_trace.t array

(** {2 Low-level varint primitives} (exposed for tests) *)

type reader = { data : string; mutable pos : int }

val read_byte : reader -> int
(** One raw byte; raises [Corrupt] at end of input. *)

val write_uint : Buffer.t -> int -> unit

val write_int : Buffer.t -> int -> unit

val read_uint : reader -> int

val read_int : reader -> int

val read_count : reader -> min_bytes:int -> string -> int
(** Bounded length header: reads a varint count and raises [Corrupt]
    unless every counted item can pay for at least [min_bytes] of the
    remaining input — an untrusted count can never drive a giant
    allocation.  [what] names the counted thing in the error. *)

(** {2 Event codec} (shared with {!Stream}'s framed format) *)

val write_event : Buffer.t -> Event.t -> unit

val read_event : reader -> Event.t
(** Raises [Corrupt] on a bad tag, bad skip reason or truncation. *)
