(** Binary serialization of trace sets (LEB128 varints over the
    two's-complement bit pattern), so traces can be captured once and
    re-analyzed under many warp configurations — the paper's trace files. *)

exception Corrupt of string
(** Raised by the readers on malformed or truncated input. *)

val to_buffer : Thread_trace.t array -> Buffer.t

val to_string : Thread_trace.t array -> string

val of_string : string -> Thread_trace.t array

val to_file : string -> Thread_trace.t array -> unit

val of_file : string -> Thread_trace.t array

(** {2 Low-level varint primitives} (exposed for tests) *)

type reader = { data : string; mutable pos : int }

val write_uint : Buffer.t -> int -> unit

val write_int : Buffer.t -> int -> unit

val read_uint : reader -> int

val read_int : reader -> int
