(** Semantic validation of decoded thread traces.

    [Serial] guarantees only that the bytes decoded; this pass checks that
    the events make sense under the trace contract (docs/ARCHITECTURE.md §1)
    before the analyzer replays them:

    - call/return balance: a [Return] must match a [Call], except the
      final return of the worker itself; the trace must not end inside an
      unreturned call;
    - lock pairing: a [Lock_rel] must release a lock the thread holds, and
      every held lock must be released by the end of the trace (a lock
      held at end-of-trace would deadlock the warp serializer);
    - block/function ids must be inside the program's range (when bounds
      are supplied), so replay never indexes out of an array;
    - accesses must fit the block: offsets inside [0, n_instr), sorted by
      offset, positive sizes, and [n_instr] consistent with the program;
    - barrier consistency: all threads must agree on the sequence of
      team-barrier addresses (majority reference); a thread missing an
      arrival would block the team forever.

    Diagnostics are typed ({!Threadfuser_util.Tf_error}); [Error]-severity
    ones mean the thread cannot be replayed and should be quarantined. *)

module Tf_error = Threadfuser_util.Tf_error

(** Program shape used to range-check ids; obtained from [Program.t] by
    the analyzer (this library does not depend on [lib/prog]). *)
type bounds = {
  func_count : int;
  block_count : int -> int;  (* blocks of a function *)
  block_instrs : (int -> int -> int) option;  (* instrs of (func, block) *)
}

let no_bounds =
  { func_count = max_int; block_count = (fun _ -> max_int); block_instrs = None }

let check_block ~bounds ~tid diags ~func ~block ~n_instr
    ~(accesses : Event.access array) =
  let d k fmt = Format.kasprintf (fun m -> diags := Tf_error.diag ~thread:tid k "%s" m :: !diags) fmt in
  if func < 0 || func >= bounds.func_count then
    d Tf_error.Bad_block_ref "function id %d out of range (program has %d)"
      func bounds.func_count
  else if block < 0 || block >= bounds.block_count func then
    d Tf_error.Bad_block_ref "block f%d.b%d out of range (function has %d)"
      func block (bounds.block_count func)
  else begin
    (match bounds.block_instrs with
    | Some instrs when instrs func block <> n_instr ->
        d Tf_error.Bad_access
          "block f%d.b%d claims %d instructions, program has %d" func block
          n_instr (instrs func block)
    | _ -> ());
    if n_instr <= 0 then
      d Tf_error.Bad_access "block f%d.b%d has n_instr %d" func block n_instr
    else begin
      let last_ioff = ref (-1) in
      Array.iter
        (fun (a : Event.access) ->
          if a.ioff < 0 || a.ioff >= n_instr then
            d Tf_error.Bad_access
              "access offset %d outside block f%d.b%d (%d instructions)"
              a.ioff func block n_instr
          else if a.ioff < !last_ioff then
            d Tf_error.Bad_access "accesses of f%d.b%d not sorted by offset"
              func block;
          if a.size <= 0 then
            d Tf_error.Bad_access "access of f%d.b%d has size %d" func block
              a.size;
          last_ioff := a.ioff)
        accesses
    end
  end

(** Validate one thread (everything except cross-thread barrier
    consistency).  Returns diagnostics, newest first. *)
let thread ?(bounds = no_bounds) (t : Thread_trace.t) :
    Tf_error.diagnostic list =
  let tid = t.Thread_trace.tid in
  let diags = ref [] in
  let add k fmt =
    Format.kasprintf
      (fun m -> diags := Tf_error.diag ~thread:tid k "%s" m :: !diags)
      fmt
  in
  let depth = ref 0 in
  let worker_returned = ref false in
  let held = ref [] in
  (* lock addresses, innermost first *)
  Array.iteri
    (fun i (e : Event.t) ->
      if !worker_returned then
        match e with
        | Event.Skip _ -> ()
        | _ -> add Tf_error.Unbalanced_call "event %d after the worker's final return" i
      else
        match e with
        | Event.Block { func; block; n_instr; accesses } ->
            check_block ~bounds ~tid diags ~func ~block ~n_instr ~accesses
        | Event.Call f ->
            if f < 0 || f >= bounds.func_count then
              add Tf_error.Bad_block_ref "call to function id %d out of range" f;
            incr depth
        | Event.Return ->
            if !depth > 0 then decr depth
            else
              (* depth 0: this is the worker's own return, legal only as
                 the last control event of the trace *)
              worker_returned := true
        | Event.Lock_acq a -> held := a :: !held
        | Event.Lock_rel a ->
            if List.mem a !held then begin
              (* remove one occurrence *)
              let rec drop = function
                | [] -> []
                | x :: tl -> if x = a then tl else x :: drop tl
              in
              held := drop !held
            end
            else
              add Tf_error.Unbalanced_lock
                "release of lock 0x%x the thread does not hold (event %d)" a i
        | Event.Barrier _ | Event.Skip _ -> ())
    t.Thread_trace.events;
  if (not !worker_returned) && !depth > 0 then
    add Tf_error.Unbalanced_call "trace ends inside %d unreturned call(s)"
      !depth;
  List.iter
    (fun a ->
      add Tf_error.Deadlock
        "lock 0x%x acquired but never released (would hang the warp \
         serializer)"
        a)
    !held;
  !diags

let barrier_seq (t : Thread_trace.t) =
  Array.to_list t.Thread_trace.events
  |> List.filter_map (function Event.Barrier a -> Some a | _ -> None)

(** Cross-thread barrier consistency over precomputed per-thread barrier
    sequences: threads whose sequence differs from the majority get a
    [Barrier_mismatch] error (a missing arrival would block the team
    forever — the machine's barriers release only when every live thread
    has arrived).  Factored out of {!all} so [Analyzer.Session], which
    retains only the barrier sequences while the traces sit in its spool,
    votes with {e exactly} this code — including the tie-breaking
    [Hashtbl] fold order, which identical insertion sequences make
    deterministic. *)
let barrier_check ~(tids : int array) (seqs : int list array) :
    Tf_error.diagnostic list =
  if Array.length seqs < 2 then []
  else begin
    (* majority vote over the distinct sequences *)
    let counts = Hashtbl.create 8 in
    Array.iter
      (fun s ->
        Hashtbl.replace counts s (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
      seqs;
    let reference, _ =
      Hashtbl.fold
        (fun s n ((_, best) as acc) -> if n > best then (s, n) else acc)
        counts ([], 0)
    in
    let barrier_diags = ref [] in
    Array.iteri
      (fun i s ->
        if s <> reference then
          barrier_diags :=
            Tf_error.diag ~thread:tids.(i) Tf_error.Barrier_mismatch
              "barrier sequence (%d arrivals) disagrees with the team \
               majority (%d): a missing arrival never satisfies the barrier"
              (List.length s) (List.length reference)
            :: !barrier_diags)
      seqs;
    List.rev !barrier_diags
  end

(** Validate a trace set: per-thread checks plus cross-thread barrier
    consistency ({!barrier_check}). *)
let all ?(bounds = no_bounds) (traces : Thread_trace.t array) :
    Tf_error.diagnostic list =
  let diags =
    Array.fold_left (fun acc t -> List.rev_append (thread ~bounds t) acc) []
      traces
  in
  let barrier_diags =
    barrier_check
      ~tids:(Array.map (fun (t : Thread_trace.t) -> t.Thread_trace.tid) traces)
      (Array.map barrier_seq traces)
  in
  List.rev_append diags barrier_diags

(** Threads with at least one [Error]-severity diagnostic, with the first
    such diagnostic (the quarantine set of [Analyzer.analyze_checked]). *)
let quarantine ?(bounds = no_bounds) (traces : Thread_trace.t array) :
    Tf_error.diagnostic list * (int * Tf_error.diagnostic) list =
  let diags = all ~bounds traces in
  let bad =
    Array.to_list traces
    |> List.filter_map (fun (t : Thread_trace.t) ->
           List.find_opt
             (fun (d : Tf_error.diagnostic) ->
               d.Tf_error.severity = Tf_error.Error
               && d.Tf_error.thread = Some t.Thread_trace.tid)
             diags
           |> Option.map (fun d -> (t.Thread_trace.tid, d)))
  in
  (diags, bad)
