(** The dynamic trace of one CPU thread, plus summary statistics. *)

module Vec = Threadfuser_util.Vec

type t = { tid : int; events : Event.t array }

type stats = {
  traced_instrs : int; (* instructions inside Block events *)
  skipped_io : int;
  skipped_spin : int;
  skipped_excluded : int;
  blocks : int;
  loads : int;
  stores : int;
  lock_ops : int;
  barriers : int;
}

let stats t =
  let traced = ref 0
  and io = ref 0
  and spin = ref 0
  and excluded = ref 0
  and blocks = ref 0
  and loads = ref 0
  and stores = ref 0
  and locks = ref 0
  and barriers = ref 0 in
  Array.iter
    (fun (e : Event.t) ->
      match e with
      | Event.Block b ->
          traced := !traced + b.n_instr;
          incr blocks;
          Array.iter
            (fun (a : Event.access) ->
              if a.is_store then incr stores else incr loads)
            b.accesses
      | Event.Skip { reason = Event.Io; n_instr } -> io := !io + n_instr
      | Event.Skip { reason = Event.Spin; n_instr } -> spin := !spin + n_instr
      | Event.Skip { reason = Event.Excluded; n_instr } ->
          excluded := !excluded + n_instr
      | Event.Lock_acq _ | Event.Lock_rel _ -> incr locks
      | Event.Barrier _ -> incr barriers
      | Event.Call _ | Event.Return -> ())
    t.events;
  {
    traced_instrs = !traced;
    skipped_io = !io;
    skipped_spin = !spin;
    skipped_excluded = !excluded;
    blocks = !blocks;
    loads = !loads;
    stores = !stores;
    lock_ops = !locks;
    barriers = !barriers;
  }

(** Mutable trace under construction; the machine appends as it executes. *)
module Builder = struct
  type trace = t

  type t = { tid : int; events : Event.t Vec.t }

  let create tid = { tid; events = Vec.create ~capacity:256 Event.Return }

  let emit t e = Vec.push t.events e

  let finish t : trace = { tid = t.tid; events = Vec.to_array t.events }
end

let pp ppf t =
  Fmt.pf ppf "thread %d (%d events):@." t.tid (Array.length t.events);
  Array.iter (fun e -> Fmt.pf ppf "  %a@." Event.pp e) t.events
