(** Semantic validation of decoded thread traces against the trace
    contract (docs/ARCHITECTURE.md §1): call/return balance, lock
    acquire/release pairing, block/function ids in program range, access
    offsets vs [n_instr], and cross-thread team-barrier consistency.
    Produces typed diagnostics ({!Threadfuser_util.Tf_error}); see
    docs/robustness.md for the taxonomy and quarantine semantics. *)

module Tf_error = Threadfuser_util.Tf_error

(** Program shape used to range-check ids (supplied by the analyzer;
    this library does not depend on [lib/prog]). *)
type bounds = {
  func_count : int;
  block_count : int -> int;  (** blocks of a function *)
  block_instrs : (int -> int -> int) option;
      (** instruction count of (func, block), for [n_instr] cross-checks *)
}

(** Skips all range checks (no program at hand). *)
val no_bounds : bounds

(** Per-thread checks only. *)
val thread :
  ?bounds:bounds -> Thread_trace.t -> Tf_error.diagnostic list

(** The thread's team-barrier address sequence (the vote cast in
    {!barrier_check}). *)
val barrier_seq : Thread_trace.t -> int list

(** Cross-thread barrier majority vote over precomputed sequences;
    [tids.(i)] labels [seqs.(i)].  [Analyzer.Session] uses this directly
    (it retains barrier sequences, not whole traces); {!all} is built on
    it, so both paths vote — and tie-break — identically. *)
val barrier_check :
  tids:int array -> int list array -> Tf_error.diagnostic list

(** Per-thread checks plus cross-thread barrier consistency. *)
val all :
  ?bounds:bounds -> Thread_trace.t array -> Tf_error.diagnostic list

(** [quarantine traces] is [(diagnostics, bad)]: all diagnostics plus, per
    thread with at least one [Error]-severity diagnostic, its tid and the
    first such diagnostic. *)
val quarantine :
  ?bounds:bounds ->
  Thread_trace.t array ->
  Tf_error.diagnostic list * (int * Tf_error.diagnostic) list
