(** Binary serialization of traces.

    Format (all integers LEB128 varints over the two's-complement bit
    pattern): a magic header, a thread count, then per thread the tid, the
    event count and the events.  Event tags:

    {v
      0 Block   func block n_instr n_accesses (ioff addr size is_store)*
      1 Call    func
      2 Return
      3 Lock_acq addr
      4 Lock_rel addr
      5 Skip    reason(0=io,1=spin) n_instr
      6 Barrier addr
    v}

    The format supports both in-memory buffers and files, so traces can be
    captured once and re-analyzed under many warp configurations, like the
    paper's trace files feeding Accel-Sim. *)

let magic = "TFTRACE1"

module Obs = Threadfuser_obs.Obs

let c_decoded_threads =
  Obs.Counter.make "tf_trace_threads_decoded_total"
    ~help:"thread traces decoded from serialized form"
let c_decoded_bytes =
  Obs.Counter.make "tf_trace_bytes_decoded_total"
    ~help:"serialized trace bytes decoded"

(* -- varint primitives -------------------------------------------------- *)

(* Encodes the two's-complement bit pattern with a logical shift, so every
   OCaml int round-trips (negatives cost 9 bytes; they are rare in traces). *)
let write_uint buf n =
  let n = ref n in
  let continue_ = ref true in
  while !continue_ do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue_ := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let write_int = write_uint

type reader = { data : string; mutable pos : int }

exception Corrupt of string

let read_byte r =
  if r.pos >= String.length r.data then raise (Corrupt "truncated");
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

(* The writer emits at most ceil(63/7) = 9 groups, so a continuation bit
   past shift 56 (i.e. a 10th byte) can only come from corrupt input; the
   bound also keeps [lsl] inside the word size (shifting an OCaml int by
   >= Sys.int_size is undefined). *)
let read_uint r =
  let rec go shift acc =
    let b = read_byte r in
    if shift >= 63 then raise (Corrupt "overlong varint");
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let read_int = read_uint

(* Length headers are untrusted: a corrupt count must fail as [Corrupt]
   before it reaches [Array.init] (a 5-byte file must not trigger a
   multi-GB allocation or an [Invalid_argument]).  Every counted item
   costs at least [min_bytes] input bytes, so any honest count is bounded
   by the bytes left. *)
let read_count r ~min_bytes what =
  let n = read_uint r in
  if n < 0 then raise (Corrupt (Printf.sprintf "negative %s count" what));
  if n > (String.length r.data - r.pos) / min_bytes then
    raise
      (Corrupt
         (Printf.sprintf "%s count %d exceeds remaining input (%d bytes)" what
            n
            (String.length r.data - r.pos)));
  n

(* -- events ------------------------------------------------------------- *)

let write_event buf (e : Event.t) =
  match e with
  | Event.Block b ->
      write_uint buf 0;
      write_uint buf b.func;
      write_uint buf b.block;
      write_uint buf b.n_instr;
      write_uint buf (Array.length b.accesses);
      Array.iter
        (fun (a : Event.access) ->
          write_uint buf a.ioff;
          write_int buf a.addr;
          write_uint buf a.size;
          write_uint buf (if a.is_store then 1 else 0))
        b.accesses
  | Event.Call f ->
      write_uint buf 1;
      write_uint buf f
  | Event.Return -> write_uint buf 2
  | Event.Lock_acq a ->
      write_uint buf 3;
      write_int buf a
  | Event.Lock_rel a ->
      write_uint buf 4;
      write_int buf a
  | Event.Skip { reason; n_instr } ->
      write_uint buf 5;
      write_uint buf
        (match reason with Event.Io -> 0 | Event.Spin -> 1 | Event.Excluded -> 2);
      write_uint buf n_instr
  | Event.Barrier a ->
      write_uint buf 6;
      write_int buf a

let read_event r : Event.t =
  match read_uint r with
  | 0 ->
      let func = read_uint r in
      let block = read_uint r in
      let n_instr = read_uint r in
      (* an access is at least 4 varint bytes (ioff addr size is_store) *)
      let n_acc = read_count r ~min_bytes:4 "access" in
      let accesses =
        Array.init n_acc (fun _ ->
            let ioff = read_uint r in
            let addr = read_int r in
            let size = read_uint r in
            let is_store = read_uint r = 1 in
            { Event.ioff; addr; size; is_store })
      in
      Event.Block { func; block; n_instr; accesses }
  | 1 -> Event.Call (read_uint r)
  | 2 -> Event.Return
  | 3 -> Event.Lock_acq (read_int r)
  | 4 -> Event.Lock_rel (read_int r)
  | 5 ->
      let reason =
        match read_uint r with
        | 0 -> Event.Io
        | 1 -> Event.Spin
        | 2 -> Event.Excluded
        | n -> raise (Corrupt (Printf.sprintf "bad skip reason %d" n))
      in
      let n_instr = read_uint r in
      Event.Skip { reason; n_instr }
  | 6 -> Event.Barrier (read_int r)
  | n -> raise (Corrupt (Printf.sprintf "bad event tag %d" n))

(* -- whole traces ------------------------------------------------------- *)

let to_buffer (traces : Thread_trace.t array) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  write_uint buf (Array.length traces);
  Array.iter
    (fun (t : Thread_trace.t) ->
      write_uint buf t.tid;
      write_uint buf (Array.length t.events);
      Array.iter (write_event buf) t.events)
    traces;
  buf

let to_string traces = Buffer.contents (to_buffer traces)

let of_string s : Thread_trace.t array =
  Obs.span "decode"
    ~args:[ ("bytes", string_of_int (String.length s)) ]
    (fun () ->
      let n_magic = String.length magic in
      if String.length s < n_magic || String.sub s 0 n_magic <> magic then
        raise (Corrupt "bad magic");
      let r = { data = s; pos = n_magic } in
      (* a thread costs at least 2 bytes (tid + event count) *)
      let n_threads = read_count r ~min_bytes:2 "thread" in
      let traces =
        Array.init n_threads (fun _ ->
            let tid = read_uint r in
            if tid < 0 then raise (Corrupt "negative thread id");
            (* an event is at least 1 byte (its tag) *)
            let n_events = read_count r ~min_bytes:1 "event" in
            let events = Array.init n_events (fun _ -> read_event r) in
            { Thread_trace.tid; events })
      in
      Obs.Counter.add c_decoded_threads n_threads;
      Obs.Counter.add c_decoded_bytes (String.length s);
      traces)

let to_file path traces =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc (to_buffer traces))

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
