(** Dynamic per-thread trace events — the abstraction the paper's PIN-based
    tracer produces.

    Event order within a thread:
    - a [Block] is emitted when the basic block finishes executing and
      carries all memory accesses its instructions performed;
    - a block ending in a call is followed by [Call], the callee's events,
      [Return], then the caller's continuation block;
    - a block ending in a lock acquire is followed by (optionally a
      [Skip Spin]) then [Lock_acq] once the lock is held. *)

type access = {
  ioff : int;  (** instruction offset within the block *)
  addr : int;
  size : int;
  is_store : bool;
}

type skip_reason =
  | Io
  | Spin
  | Excluded  (** inside a function excluded from tracing (paper §III) *)

type t =
  | Block of {
      func : int;  (** function id in the assembled program *)
      block : int;  (** block id within the function *)
      n_instr : int;
      accesses : access array;  (** sorted by [ioff] *)
    }
  | Call of int  (** callee function id *)
  | Return
  | Lock_acq of int  (** lock address *)
  | Lock_rel of int
  | Barrier of int  (** team barrier passed (the address names the barrier) *)
  | Skip of { reason : skip_reason; n_instr : int }
      (** untraced instructions: I/O work or lock spinning (paper Fig. 8) *)

(** Shared empty array, to avoid allocating for the common no-access case. *)
val no_accesses : access array

val equal_access : access -> access -> bool

val equal : t -> t -> bool

val pp_access : Format.formatter -> access -> unit

val pp : Format.formatter -> t -> unit
