(** Deterministic, LCG-seeded fault injector for thread traces.

    Models the damage a production trace pipeline actually sees at the
    PIN -> analyzer file handoff: truncated writes, bit rot, interleaved /
    duplicated records, and semantically broken streams (unpaired
    call/return and lock pairs, missing barrier arrivals).  Faults come in
    two layers:

    - {e byte-level} ({!corrupt_bytes}): bit flips and truncations of the
      serialized [Serial] form, exercising the decoder;
    - {e event-level} ({!inject}): structured edits of decoded traces,
      exercising validation, quarantine and the replay watchdogs.

    Everything is driven by {!Threadfuser_util.Lcg}, so a seed fully
    determines the corruption — CI-safe and replayable. *)

module Lcg = Threadfuser_util.Lcg
module Event = Threadfuser_trace.Event
module Thread_trace = Threadfuser_trace.Thread_trace

type fault =
  | Drop_event
  | Duplicate_event
  | Swap_adjacent
  | Truncate_trace
  | Bitflip_address (* lock / barrier / access address *)
  | Corrupt_block_id
  | Drop_return (* unbalances call/return *)
  | Extra_return
  | Drop_unlock (* lock never released *)
  | Drop_barrier (* one lane misses an arrival *)

let all_faults =
  [
    Drop_event; Duplicate_event; Swap_adjacent; Truncate_trace;
    Bitflip_address; Corrupt_block_id; Drop_return; Extra_return;
    Drop_unlock; Drop_barrier;
  ]

let fault_name = function
  | Drop_event -> "drop-event"
  | Duplicate_event -> "duplicate-event"
  | Swap_adjacent -> "swap-adjacent"
  | Truncate_trace -> "truncate-trace"
  | Bitflip_address -> "bitflip-address"
  | Corrupt_block_id -> "corrupt-block-id"
  | Drop_return -> "drop-return"
  | Extra_return -> "extra-return"
  | Drop_unlock -> "drop-unlock"
  | Drop_barrier -> "drop-barrier"

type applied = { fault : fault; tid : int; index : int }

let pp_applied ppf a =
  Fmt.pf ppf "%s@tid%d.%d" (fault_name a.fault) a.tid a.index

(* Apply [fault] to [events] at (or near) [index]; [None] if the trace has
   no applicable site.  Pure: always returns a fresh array. *)
let apply_fault rng fault (events : Event.t array) index : Event.t array option
    =
  let n = Array.length events in
  if n = 0 then None
  else
    let index = index mod n in
    let drop i =
      Array.init (n - 1) (fun j -> if j < i then events.(j) else events.(j + 1))
    in
    (* first applicable site at or after [index], wrapping around *)
    let find_from p =
      let rec go i =
        if i >= n then None else if p events.(i) then Some i else go (i + 1)
      in
      match go index with Some i -> Some i | None -> go 0
    in
    match fault with
    | Drop_event -> Some (drop index)
    | Duplicate_event ->
        Some
          (Array.init (n + 1) (fun j ->
               if j <= index then events.(j) else events.(j - 1)))
    | Swap_adjacent ->
        if n < 2 then None
        else begin
          let i = min index (n - 2) in
          let a = Array.copy events in
          let tmp = a.(i) in
          a.(i) <- a.(i + 1);
          a.(i + 1) <- tmp;
          Some a
        end
    | Truncate_trace -> if index = 0 then None else Some (Array.sub events 0 index)
    | Bitflip_address -> (
        let flip a = a lxor (1 lsl Lcg.int rng 40) in
        find_from (function
          | Event.Lock_acq _ | Event.Lock_rel _ | Event.Barrier _ -> true
          | Event.Block { accesses; _ } -> Array.length accesses > 0
          | _ -> false)
        |> Option.map (fun i ->
               let a = Array.copy events in
               (a.(i) <-
                  (match a.(i) with
                  | Event.Lock_acq x -> Event.Lock_acq (flip x)
                  | Event.Lock_rel x -> Event.Lock_rel (flip x)
                  | Event.Barrier x -> Event.Barrier (flip x)
                  | Event.Block { func; block; n_instr; accesses } ->
                      let accesses = Array.copy accesses in
                      let k = Lcg.int rng (Array.length accesses) in
                      accesses.(k) <-
                        { accesses.(k) with Event.addr = flip accesses.(k).Event.addr };
                      Event.Block { func; block; n_instr; accesses }
                  | e -> e));
               a))
    | Corrupt_block_id ->
        find_from (function Event.Block _ -> true | _ -> false)
        |> Option.map (fun i ->
               let a = Array.copy events in
               (a.(i) <-
                  (match a.(i) with
                  | Event.Block { func; block; n_instr; accesses } ->
                      if Lcg.chance rng 1 2 then
                        Event.Block
                          { func; block = block + 1 + Lcg.int rng 1000; n_instr; accesses }
                      else
                        Event.Block
                          { func = func + 1 + Lcg.int rng 1000; block; n_instr; accesses }
                  | e -> e));
               a)
    | Drop_return ->
        find_from (function Event.Return -> true | _ -> false)
        |> Option.map drop
    | Extra_return ->
        Some
          (Array.init (n + 1) (fun j ->
               if j < index then events.(j)
               else if j = index then Event.Return
               else events.(j - 1)))
    | Drop_unlock ->
        find_from (function Event.Lock_rel _ -> true | _ -> false)
        |> Option.map drop
    | Drop_barrier ->
        find_from (function Event.Barrier _ -> true | _ -> false)
        |> Option.map drop

(** [inject ~seed ?faults traces] applies up to [faults] (default 2)
    event-level faults to fresh copies of [traces], deterministically from
    [seed].  Returns the damaged traces and the faults actually applied
    (a fault without an applicable site — e.g. [Drop_unlock] on a lock-free
    trace — is skipped). *)
let inject ~seed ?(faults = 2) (traces : Thread_trace.t array) :
    Thread_trace.t array * applied list =
  let rng = Lcg.create seed in
  let out = Array.copy traces in
  let applied = ref [] in
  let n = Array.length traces in
  if n > 0 then
    for _ = 1 to faults do
      let ti = Lcg.int rng n in
      let t = out.(ti) in
      let fault = List.nth all_faults (Lcg.int rng (List.length all_faults)) in
      let n_ev = Array.length t.Thread_trace.events in
      let index = if n_ev = 0 then 0 else Lcg.int rng n_ev in
      match apply_fault rng fault t.Thread_trace.events index with
      | Some events ->
          out.(ti) <- { t with Thread_trace.events };
          applied := { fault; tid = t.Thread_trace.tid; index } :: !applied
      | None -> ()
    done;
  (out, List.rev !applied)

(* ---- byte-level corruption -------------------------------------------- *)

type byte_fault =
  | Bit_flip of { offset : int; bit : int }
  | Truncate of int (* new length *)

let pp_byte_fault ppf = function
  | Bit_flip { offset; bit } -> Fmt.pf ppf "bitflip@%d.%d" offset bit
  | Truncate n -> Fmt.pf ppf "truncate@%d" n

(** [corrupt_bytes ~seed s] damages one byte (or the length) of the
    serialized trace [s], deterministically from [seed]. *)
let corrupt_bytes ~seed (s : string) : string * byte_fault =
  let rng = Lcg.create (seed lxor 0x7f4a7c15) in
  let n = String.length s in
  if n = 0 then (s, Truncate 0)
  else if Lcg.chance rng 1 4 then begin
    let keep = Lcg.int rng n in
    (String.sub s 0 keep, Truncate keep)
  end
  else begin
    let offset = Lcg.int rng n in
    let bit = Lcg.int rng 8 in
    let b = Bytes.of_string s in
    Bytes.set b offset (Char.chr (Char.code s.[offset] lxor (1 lsl bit)));
    (Bytes.to_string b, Bit_flip { offset; bit })
  end
