(** Storage faults: seeded torn-write / bit-flip / partial-rename
    injection for the artifact cache's commit path.  Decisions are a pure
    function of [(seed, entry id)], so chaos campaigns replay exactly.
    See the "Artifact integrity" section of docs/robustness.md. *)

type action =
  | No_fault
  | Torn_write of float
      (** commit only this fraction (0 < f < 1) of the blob's bytes *)
  | Bit_flip  (** flip one seeded bit of the committed blob *)
  | Partial_rename
      (** lose the index append: the object lands, the journal line
          does not *)

val action_name : action -> string

type plan = {
  seed : int;
  torn_pct : int;
  flip_pct : int;
  partial_pct : int;
}

val plan :
  ?seed:int -> ?torn_pct:int -> ?flip_pct:int -> ?partial_pct:int -> unit -> plan
(** Raises [Invalid_argument] on percentages outside 0..100. *)

val active : plan -> bool

val decide : plan -> id:string -> action
(** The fault for committing entry [id]; pure and replayable. *)

val mangle : action -> id:string -> string -> string
(** The damaged byte image a faulted commit writes (identity for
    [No_fault] and [Partial_rename]). *)
