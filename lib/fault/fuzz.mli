(** Seeded corruption harness: drive a captured (serialized) trace set
    through the fault injector and the checked analysis pipeline,
    classifying every run.  Deterministic per seed, so fuzz runs are
    replayable and CI-safe.  See docs/robustness.md. *)

module Metrics = Threadfuser.Metrics
module Program = Threadfuser_prog.Program

type outcome =
  | Clean  (** decoded, validated and replayed fully *)
  | Rejected of string  (** typed [Corrupt] / [Tf_error] at decode *)
  | Degraded of Metrics.coverage
      (** partial report; coverage accounts for the quarantine *)
  | Uncaught of string  (** BUG: an untyped exception escaped *)

val outcome_name : outcome -> string

type totals = {
  mutable runs : int;
  mutable clean : int;
  mutable rejected : int;
  mutable degraded : int;
  mutable uncaught : (int * string) list;  (** (seed, exn) — BUG if any *)
}

(** One seeded corruption, end to end.  Even seeds corrupt the serialized
    bytes (decoder path); odd seeds decode cleanly and damage the events
    (validation / replay path). *)
val run_one : prog:Program.t -> bytes:string -> seed:int -> outcome

(** Run seeds [seed0 .. seed0+runs-1] (defaults 1, 1000). *)
val run :
  ?seed0:int ->
  ?runs:int ->
  ?on_outcome:(seed:int -> outcome -> unit) ->
  prog:Program.t ->
  bytes:string ->
  unit ->
  totals

val pp_totals : Format.formatter -> totals -> unit
