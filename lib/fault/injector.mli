(** Deterministic, LCG-seeded fault injector for thread traces: byte-level
    damage of the serialized form (bit flips, truncation) and event-level
    damage of decoded traces (drop/duplicate/reorder/truncate, address bit
    flips, unbalanced call/return and lock pairs, missing barrier
    arrivals).  A seed fully determines the corruption, so fuzz runs are
    replayable and CI-safe.  See docs/robustness.md for the fault model. *)

module Thread_trace = Threadfuser_trace.Thread_trace

type fault =
  | Drop_event
  | Duplicate_event
  | Swap_adjacent
  | Truncate_trace
  | Bitflip_address  (** lock / barrier / access address *)
  | Corrupt_block_id
  | Drop_return  (** unbalances call/return *)
  | Extra_return
  | Drop_unlock  (** lock never released *)
  | Drop_barrier  (** one lane misses an arrival *)

val all_faults : fault list

val fault_name : fault -> string

type applied = { fault : fault; tid : int; index : int }

val pp_applied : Format.formatter -> applied -> unit

(** [inject ~seed ?faults traces] applies up to [faults] (default 2)
    event-level faults to fresh copies of [traces]; faults without an
    applicable site are skipped. *)
val inject :
  seed:int ->
  ?faults:int ->
  Thread_trace.t array ->
  Thread_trace.t array * applied list

type byte_fault =
  | Bit_flip of { offset : int; bit : int }
  | Truncate of int  (** new length *)

val pp_byte_fault : Format.formatter -> byte_fault -> unit

(** [corrupt_bytes ~seed s] damages one byte (or truncates) the serialized
    trace [s], deterministically from [seed]. *)
val corrupt_bytes : seed:int -> string -> string * byte_fault
