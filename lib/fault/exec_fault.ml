(** Execution faults: seeded crash and stall injection for the supervised
    suite runner (lib/runner).

    Where {!Injector} damages a job's *input* (trace bytes and events),
    this module damages its *execution*: a job attempt can be made to
    crash before doing any work, or to stall long enough to trip the
    supervisor's wall-clock deadline.  The decision for a given
    [(plan, job id, attempt)] triple is a pure function of the plan's seed
    — via {!Threadfuser_util.Lcg.derive} stream splitting — so chaos runs
    are replayable and CI-safe, exactly like the input-fault campaigns.
    See the "Supervision" section of docs/robustness.md. *)

module Lcg = Threadfuser_util.Lcg

type action =
  | No_fault
  | Crash  (** die before producing a result (exit / raise) *)
  | Stall of float  (** sleep this many seconds before working *)

let action_name = function
  | No_fault -> "none"
  | Crash -> "crash"
  | Stall _ -> "stall"

type plan = {
  seed : int;
  crash_pct : int;  (** chance (percent) an eligible attempt crashes *)
  stall_pct : int;  (** chance (percent) an eligible attempt stalls *)
  stall_s : float;  (** stall duration when one fires *)
  first_attempt_only : bool;
      (** restrict faults to attempt 1, so retries always recover —
          the deterministic shape CI smoke tests want *)
  only_prefix : string option;
      (** when set, only job ids with this prefix are eligible *)
}

let plan ?(seed = 1) ?(crash_pct = 0) ?(stall_pct = 0) ?(stall_s = 30.)
    ?(first_attempt_only = true) ?only_prefix () =
  if crash_pct < 0 || crash_pct > 100 || stall_pct < 0 || stall_pct > 100 then
    invalid_arg "Exec_fault.plan: percentages must be in 0..100";
  { seed; crash_pct; stall_pct; stall_s; first_attempt_only; only_prefix }

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(** [decide plan ~job ~attempt] — [attempt] is 1-based.  Pure: the same
    triple always yields the same action. *)
let decide p ~job ~attempt =
  if attempt < 1 then invalid_arg "Exec_fault.decide: attempt is 1-based";
  let eligible =
    (not (p.first_attempt_only && attempt > 1))
    && (match p.only_prefix with
       | Some pre -> starts_with ~prefix:pre job
       | None -> true)
  in
  if not eligible then No_fault
  else
    (* [Lcg.hash_string] keys the per-job stream: a stable hash, so chaos
       decisions replay across OCaml versions. *)
    let job_stream = Lcg.derive ~seed:p.seed ~index:(Lcg.hash_string job) in
    let g = Lcg.create (Lcg.derive ~seed:job_stream ~index:attempt) in
    if Lcg.chance g p.crash_pct 100 then Crash
    else if Lcg.chance g p.stall_pct 100 then Stall p.stall_s
    else No_fault

(* ------------------------------------------------------------------ *)
(* Session faults: the serve daemon's chaos dimension.                  *)

type session_action =
  | Session_ok
  | Disconnect of int
  | Stall_writer of float
  | Oversize_frame

let session_action_name = function
  | Session_ok -> "none"
  | Disconnect _ -> "disconnect"
  | Stall_writer _ -> "stall-writer"
  | Oversize_frame -> "oversize-frame"

type session_plan = {
  sn_seed : int;
  disconnect_pct : int;
  stall_writer_pct : int;
  oversize_pct : int;
  writer_stall_s : float;
  disconnect_after : int;
}

let session_plan ?(seed = 1) ?(disconnect_pct = 0) ?(stall_writer_pct = 0)
    ?(oversize_pct = 0) ?(writer_stall_s = 30.) ?(disconnect_after = 4096) () =
  let bad p = p < 0 || p > 100 in
  if bad disconnect_pct || bad stall_writer_pct || bad oversize_pct then
    invalid_arg "Exec_fault.session_plan: percentages must be in 0..100";
  if disconnect_after < 0 then
    invalid_arg "Exec_fault.session_plan: disconnect_after must be >= 0";
  {
    sn_seed = seed;
    disconnect_pct;
    stall_writer_pct;
    oversize_pct;
    writer_stall_s;
    disconnect_after;
  }

let session_plan_active p =
  p.disconnect_pct > 0 || p.stall_writer_pct > 0 || p.oversize_pct > 0

(** [decide_session plan ~session] — the fault for the daemon's
    [session]-th accepted connection (0-based ordinal).  Pure, so a chaos
    smoke run replays byte-for-byte: the same seed always damages the
    same sessions the same way. *)
let decide_session p ~session =
  if session < 0 then
    invalid_arg "Exec_fault.decide_session: session ordinal is 0-based";
  let g = Lcg.create (Lcg.derive ~seed:p.sn_seed ~index:session) in
  if Lcg.chance g p.disconnect_pct 100 then
    (* the cut point is derived from the same stream: replayable, but not
       the same byte for every damaged session *)
    Disconnect (Lcg.int_range g 0 p.disconnect_after)
  else if Lcg.chance g p.stall_writer_pct 100 then Stall_writer p.writer_stall_s
  else if Lcg.chance g p.oversize_pct 100 then Oversize_frame
  else Session_ok
