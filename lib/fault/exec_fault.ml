(** Execution faults: seeded crash and stall injection for the supervised
    suite runner (lib/runner).

    Where {!Injector} damages a job's *input* (trace bytes and events),
    this module damages its *execution*: a job attempt can be made to
    crash before doing any work, or to stall long enough to trip the
    supervisor's wall-clock deadline.  The decision for a given
    [(plan, job id, attempt)] triple is a pure function of the plan's seed
    — via {!Threadfuser_util.Lcg.derive} stream splitting — so chaos runs
    are replayable and CI-safe, exactly like the input-fault campaigns.
    See the "Supervision" section of docs/robustness.md. *)

module Lcg = Threadfuser_util.Lcg

type action =
  | No_fault
  | Crash  (** die before producing a result (exit / raise) *)
  | Stall of float  (** sleep this many seconds before working *)

let action_name = function
  | No_fault -> "none"
  | Crash -> "crash"
  | Stall _ -> "stall"

type plan = {
  seed : int;
  crash_pct : int;  (** chance (percent) an eligible attempt crashes *)
  stall_pct : int;  (** chance (percent) an eligible attempt stalls *)
  stall_s : float;  (** stall duration when one fires *)
  first_attempt_only : bool;
      (** restrict faults to attempt 1, so retries always recover —
          the deterministic shape CI smoke tests want *)
  only_prefix : string option;
      (** when set, only job ids with this prefix are eligible *)
}

let plan ?(seed = 1) ?(crash_pct = 0) ?(stall_pct = 0) ?(stall_s = 30.)
    ?(first_attempt_only = true) ?only_prefix () =
  if crash_pct < 0 || crash_pct > 100 || stall_pct < 0 || stall_pct > 100 then
    invalid_arg "Exec_fault.plan: percentages must be in 0..100";
  { seed; crash_pct; stall_pct; stall_s; first_attempt_only; only_prefix }

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(** [decide plan ~job ~attempt] — [attempt] is 1-based.  Pure: the same
    triple always yields the same action. *)
let decide p ~job ~attempt =
  if attempt < 1 then invalid_arg "Exec_fault.decide: attempt is 1-based";
  let eligible =
    (not (p.first_attempt_only && attempt > 1))
    && (match p.only_prefix with
       | Some pre -> starts_with ~prefix:pre job
       | None -> true)
  in
  if not eligible then No_fault
  else
    (* [Lcg.hash_string] keys the per-job stream: a stable hash, so chaos
       decisions replay across OCaml versions. *)
    let job_stream = Lcg.derive ~seed:p.seed ~index:(Lcg.hash_string job) in
    let g = Lcg.create (Lcg.derive ~seed:job_stream ~index:attempt) in
    if Lcg.chance g p.crash_pct 100 then Crash
    else if Lcg.chance g p.stall_pct 100 then Stall p.stall_s
    else No_fault
