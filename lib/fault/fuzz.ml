(** The seeded corruption harness: drive a captured trace through the
    fault injector and the checked analysis pipeline, classifying every
    run.  The contract under test (ISSUE acceptance): every corrupted
    input ends in a clean report, a typed diagnostic, or a partial report
    whose coverage fields account for the quarantined threads — never an
    uncaught exception, never a hang.

    Used by the [threadfuser fuzz] CLI subcommand, the [make fuzz] target
    and the [dune runtest] smoke test, all with fixed seed sets so runs
    are deterministic and CI-safe. *)

module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics
module Serial = Threadfuser_trace.Serial
module Tf_error = Threadfuser_util.Tf_error
module Program = Threadfuser_prog.Program

type outcome =
  | Clean  (** decoded, validated and replayed fully *)
  | Rejected of string  (** typed [Corrupt] / [Tf_error] at decode *)
  | Degraded of Metrics.coverage
      (** partial report; coverage accounts for the quarantine *)
  | Uncaught of string  (** BUG: an untyped exception escaped *)

let outcome_name = function
  | Clean -> "clean"
  | Rejected _ -> "rejected"
  | Degraded _ -> "degraded"
  | Uncaught _ -> "uncaught"

type totals = {
  mutable runs : int;
  mutable clean : int;
  mutable rejected : int;
  mutable degraded : int;
  mutable uncaught : (int * string) list; (* seed, exception — BUG if any *)
}

let totals () =
  { runs = 0; clean = 0; rejected = 0; degraded = 0; uncaught = [] }

(* Cheap sanity check that the partial report is self-consistent: the
   coverage fields must account for every thread that went missing. *)
let coverage_accounts (c : Metrics.coverage) =
  c.Metrics.threads_analyzed + c.Metrics.threads_quarantined
  = c.Metrics.threads_total
  && c.Metrics.threads_analyzed >= 0
  && c.Metrics.threads_quarantined >= 0

(** Run one seeded corruption of [bytes] (a serialized trace set captured
    from a program built against [prog]) end to end.  Even seeds corrupt
    the serialized bytes (decoder path); odd seeds decode cleanly and then
    damage the events (validation / replay path). *)
let run_one ~(prog : Program.t) ~bytes ~seed : outcome =
  try
    let traces =
      if seed land 1 = 0 then begin
        let damaged, _fault = Injector.corrupt_bytes ~seed bytes in
        Serial.of_string damaged
      end
      else begin
        let traces = Serial.of_string bytes in
        let damaged, _applied = Injector.inject ~seed traces in
        damaged
      end
    in
    let checked = Analyzer.analyze_checked prog traces in
    let cov = checked.Analyzer.result.Analyzer.report.Metrics.coverage in
    if not (coverage_accounts cov) then
      Uncaught
        (Printf.sprintf
           "coverage does not add up: %d analyzed + %d quarantined <> %d \
            total"
           cov.Metrics.threads_analyzed cov.Metrics.threads_quarantined
           cov.Metrics.threads_total)
    else if Metrics.degraded checked.Analyzer.result.Analyzer.report then
      Degraded cov
    else Clean
  with
  | Serial.Corrupt m -> Rejected m
  | Tf_error.Error d -> Rejected (Tf_error.to_string d)
  | e -> Uncaught (Printexc.to_string e)

(** Run seeds [seed0 .. seed0 + runs - 1]; [on_outcome] (when given) is
    called after every run, e.g. for progress output. *)
let run ?(seed0 = 1) ?(runs = 1000) ?on_outcome ~(prog : Program.t) ~bytes ()
    : totals =
  let t = totals () in
  for i = 0 to runs - 1 do
    let seed = seed0 + i in
    let o = run_one ~prog ~bytes ~seed in
    t.runs <- t.runs + 1;
    (match o with
    | Clean -> t.clean <- t.clean + 1
    | Rejected _ -> t.rejected <- t.rejected + 1
    | Degraded _ -> t.degraded <- t.degraded + 1
    | Uncaught m -> t.uncaught <- (seed, m) :: t.uncaught);
    match on_outcome with Some f -> f ~seed o | None -> ()
  done;
  t.uncaught <- List.rev t.uncaught;
  t

let pp_totals ppf t =
  Fmt.pf ppf
    "%d runs: %d clean, %d rejected (typed), %d degraded (partial report), \
     %d UNCAUGHT"
    t.runs t.clean t.rejected t.degraded
    (List.length t.uncaught)
