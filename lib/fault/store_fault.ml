(** Storage faults: seeded durability-failure injection for the artifact
    cache (lib/cache).

    Where {!Injector} damages trace bytes and {!Exec_fault} damages job
    execution, this module damages the *commit path* of the
    content-addressed store: a blob can be torn mid-write (only a prefix
    reaches the object file), a committed byte can be flipped at rest, or
    the rename/journal pair can be half-applied (object without index
    line, or index line without object) — the three crash shapes an
    fsync+rename protocol must survive.

    Decisions are a pure function of [(plan seed, entry id)] via
    {!Threadfuser_util.Lcg.derive} stream splitting, so a chaos campaign
    replays byte-for-byte, exactly like the exec-fault campaigns. *)

module Lcg = Threadfuser_util.Lcg

type action =
  | No_fault
  | Torn_write of float
      (** commit only this fraction (0 < f < 1) of the blob's bytes *)
  | Bit_flip  (** flip one bit of the committed blob, position seeded *)
  | Partial_rename
      (** crash between rename and journal append: the object lands, the
          index line does not *)

let action_name = function
  | No_fault -> "none"
  | Torn_write _ -> "torn-write"
  | Bit_flip -> "bit-flip"
  | Partial_rename -> "partial-rename"

type plan = {
  seed : int;
  torn_pct : int;  (** chance (percent) a commit is torn *)
  flip_pct : int;  (** chance (percent) a committed blob gets a bit flip *)
  partial_pct : int;  (** chance (percent) the index append is lost *)
}

let plan ?(seed = 1) ?(torn_pct = 0) ?(flip_pct = 0) ?(partial_pct = 0) () =
  let bad p = p < 0 || p > 100 in
  if bad torn_pct || bad flip_pct || bad partial_pct then
    invalid_arg "Store_fault.plan: percentages must be in 0..100";
  { seed; torn_pct; flip_pct; partial_pct }

let active p = p.torn_pct > 0 || p.flip_pct > 0 || p.partial_pct > 0

(** [decide plan ~id] — the fault for committing entry [id].  Pure: the
    same pair always yields the same action. *)
let decide p ~id =
  let g = Lcg.create (Lcg.derive ~seed:p.seed ~index:(Lcg.hash_string id)) in
  if Lcg.chance g p.torn_pct 100 then
    (* the cut fraction comes from the same stream: replayable, but not
       the same cut for every torn entry *)
    Torn_write (float_of_int (Lcg.int_range g 1 99) /. 100.)
  else if Lcg.chance g p.flip_pct 100 then Bit_flip
  else if Lcg.chance g p.partial_pct 100 then Partial_rename
  else No_fault

(** [mangle action ~id bytes] — the damaged image of [bytes] under
    [action] (identity for [No_fault] and [Partial_rename], whose damage
    is protocol-level, not byte-level).  The flip position is seeded by
    [id], so campaigns replay. *)
let mangle action ~id bytes =
  match action with
  | No_fault | Partial_rename -> bytes
  | Torn_write f ->
      let n = String.length bytes in
      let keep = max 0 (min (n - 1) (int_of_float (float_of_int n *. f))) in
      String.sub bytes 0 keep
  | Bit_flip ->
      if String.length bytes = 0 then bytes
      else begin
        let g =
          Lcg.create (Lcg.derive ~seed:Lcg.(hash_string id) ~index:1)
        in
        let pos = Lcg.int g (String.length bytes) in
        let bit = Lcg.int g 8 in
        let b = Bytes.of_string bytes in
        Bytes.set b pos
          (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
        Bytes.to_string b
      end
