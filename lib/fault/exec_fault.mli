(** Seeded execution-fault injection for the supervised suite runner:
    crash a job attempt before it does any work, or stall it past the
    supervisor's deadline.  Decisions are a pure function of
    [(plan seed, job id, attempt)] via {!Threadfuser_util.Lcg.derive}, so
    chaos runs are replayable.  See docs/robustness.md ("Supervision"). *)

type action =
  | No_fault
  | Crash  (** die before producing a result (exit / raise) *)
  | Stall of float  (** sleep this many seconds before working *)

val action_name : action -> string

type plan = {
  seed : int;
  crash_pct : int;  (** chance (percent) an eligible attempt crashes *)
  stall_pct : int;  (** chance (percent) an eligible attempt stalls *)
  stall_s : float;  (** stall duration when one fires *)
  first_attempt_only : bool;  (** faults hit only attempt 1 (default) *)
  only_prefix : string option;  (** restrict to job ids with this prefix *)
}

(** Build a plan; percentages are validated to 0..100.  Defaults: seed 1,
    no faults, 30 s stalls, first attempt only, all jobs eligible. *)
val plan :
  ?seed:int ->
  ?crash_pct:int ->
  ?stall_pct:int ->
  ?stall_s:float ->
  ?first_attempt_only:bool ->
  ?only_prefix:string ->
  unit ->
  plan

(** [decide plan ~job ~attempt] — the action for this attempt ([attempt]
    is 1-based; raises on 0).  Deterministic per triple. *)
val decide : plan -> job:string -> attempt:int -> action

(** {1 Session faults}

    The serve daemon's chaos dimension ([threadfuser serve --inject-*]):
    deterministic per (seed, session ordinal), so a chaos smoke run
    replays exactly.  See docs/robustness.md §8. *)

type session_action =
  | Session_ok
  | Disconnect of int
      (** simulate the peer vanishing after this many ingested bytes:
          the stream ends mid-frame and the session must degrade to a
          typed truncation reply *)
  | Stall_writer of float
      (** simulate a writer that stops sending for this many seconds:
          trips the per-session deadline *)
  | Oversize_frame
      (** inject a frame header that exceeds the frame bound before any
          client bytes: trips the decoder's allocation defense *)

val session_action_name : session_action -> string

type session_plan = {
  sn_seed : int;
  disconnect_pct : int;
  stall_writer_pct : int;
  oversize_pct : int;
  writer_stall_s : float;  (** stall length when one fires *)
  disconnect_after : int;  (** upper bound on the cut point (bytes) *)
}

(** Build a session-fault plan; percentages validated to 0..100.
    Defaults: seed 1, no faults, 30 s stalls, cut within 4096 bytes. *)
val session_plan :
  ?seed:int ->
  ?disconnect_pct:int ->
  ?stall_writer_pct:int ->
  ?oversize_pct:int ->
  ?writer_stall_s:float ->
  ?disconnect_after:int ->
  unit ->
  session_plan

(** At least one percentage is non-zero. *)
val session_plan_active : session_plan -> bool

(** The fault for the daemon's [session]-th accepted connection (0-based
    ordinal).  Pure. *)
val decide_session : session_plan -> session:int -> session_action
