(** Seeded execution-fault injection for the supervised suite runner:
    crash a job attempt before it does any work, or stall it past the
    supervisor's deadline.  Decisions are a pure function of
    [(plan seed, job id, attempt)] via {!Threadfuser_util.Lcg.derive}, so
    chaos runs are replayable.  See docs/robustness.md ("Supervision"). *)

type action =
  | No_fault
  | Crash  (** die before producing a result (exit / raise) *)
  | Stall of float  (** sleep this many seconds before working *)

val action_name : action -> string

type plan = {
  seed : int;
  crash_pct : int;  (** chance (percent) an eligible attempt crashes *)
  stall_pct : int;  (** chance (percent) an eligible attempt stalls *)
  stall_s : float;  (** stall duration when one fires *)
  first_attempt_only : bool;  (** faults hit only attempt 1 (default) *)
  only_prefix : string option;  (** restrict to job ids with this prefix *)
}

(** Build a plan; percentages are validated to 0..100.  Defaults: seed 1,
    no faults, 30 s stalls, first attempt only, all jobs eligible. *)
val plan :
  ?seed:int ->
  ?crash_pct:int ->
  ?stall_pct:int ->
  ?stall_s:float ->
  ?first_attempt_only:bool ->
  ?only_prefix:string ->
  unit ->
  plan

(** [decide plan ~job ~attempt] — the action for this attempt ([attempt]
    is 1-based; raises on 0).  Deterministic per triple. *)
val decide : plan -> job:string -> attempt:int -> action
