(** The -O0 "deoptimizer": spill every register to memory around every use,
    the way an unoptimizing compiler keeps each variable in its stack slot.

    Each general register r0..r13 gets a home slot in the thread-local
    storage area ([tls + 8*r], inside the thread's stack segment).  Before
    every instruction its source registers are reloaded from their slots;
    after it, written registers are stored back.  The function entry spills
    the argument registers so thread-start register state reaches the slots.

    The transformation preserves the invariant slot(r) = reg(r) at every
    instruction boundary, so semantics are untouched while memory traffic
    balloons — reproducing gcc -O0's effect on the paper's Fig. 5b
    correlation (more transactions, stack-segment divergence). *)

open Threadfuser_isa
open Threadfuser_prog

(* sp and tls must stay in registers; spilling them would tear down
   addressing itself. *)
let spillable r = r >= 0 && r < Reg.tls

let slot r = Operand.Mem (Operand.mem ~base:Reg.tls ~disp:(8 * r) ())

let load_reg r = Surface.Ins (Instr.Mov (Width.W8, Operand.Reg r, slot r))

let store_reg r = Surface.Ins (Instr.Mov (Width.W8, slot r, Operand.Reg r))

let dedup l = List.sort_uniq compare l

let rewrite_instr (i : Pass_util.instr) : Surface.item list =
  let reads = dedup (List.filter spillable (Pass_util.read_regs i)) in
  let writes = dedup (List.filter spillable (Pass_util.written_regs i)) in
  (* The instruction itself may carry a memory operand; reloading its
     addressing registers first keeps the operand's meaning. *)
  List.map load_reg reads @ [ Surface.Ins i ] @ List.map store_reg writes

let arg_spills = List.init 6 (fun r -> store_reg (Reg.arg r))

let apply_func (f : Surface.func) : Surface.func =
  let body =
    List.concat_map
      (fun item ->
        match item with
        | Surface.Label _ -> [ item ]
        | Surface.Ins i -> rewrite_instr i)
      f.Surface.body
  in
  { f with Surface.body = arg_spills @ body }

let apply (p : Surface.t) : Surface.t = List.map apply_func p
