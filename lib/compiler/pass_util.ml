(** Shared helpers for the optimization passes: register read/write sets of
    surface instructions and label reference counting. *)

open Threadfuser_isa

type instr = (string, string) Instr.t

(* Registers an instruction reads (including address computation and the
   read half of read-modify-write destinations). *)
let read_regs (i : instr) : Reg.t list =
  let src = Operand.src_regs in
  let dst_addr o = match o with Operand.Mem m -> Operand.mem_regs m | _ -> [] in
  let dst_rmw o =
    match o with
    | Operand.Reg r -> [ r ]
    | Operand.Mem m -> Operand.mem_regs m
    | Operand.Imm _ -> []
  in
  match i with
  | Instr.Mov (_, dst, s) -> src s @ dst_addr dst
  | Instr.Cmov (_, dst, s) -> src s @ dst_rmw dst
  | Instr.Lea (_, m) -> Operand.mem_regs m
  | Instr.Binop (_, _, dst, s) -> src s @ dst_rmw dst
  | Instr.Unop (_, _, dst) -> dst_rmw dst
  | Instr.Cmp (_, a, b) -> src a @ src b
  | Instr.Lock_acquire o | Instr.Lock_release o | Instr.Io (_, o)
  | Instr.Barrier o ->
      src o
  | Instr.Atomic_rmw (_, _, m, s) -> Operand.mem_regs m @ src s
  | Instr.Jcc _ | Instr.Jmp _ | Instr.Call _ | Instr.Ret | Instr.Halt -> []

(* Registers an instruction writes. *)
let written_regs (i : instr) : Reg.t list =
  match i with
  | Instr.Mov (_, Operand.Reg r, _)
  | Instr.Cmov (_, Operand.Reg r, _)
  | Instr.Binop (_, _, Operand.Reg r, _)
  | Instr.Unop (_, _, Operand.Reg r) ->
      [ r ]
  | Instr.Lea (r, _) -> [ r ]
  | Instr.Mov _ | Instr.Cmov _ | Instr.Binop _ | Instr.Unop _ | Instr.Cmp _
  | Instr.Jcc _ | Instr.Jmp _ | Instr.Call _ | Instr.Ret | Instr.Lock_acquire _
  | Instr.Lock_release _ | Instr.Atomic_rmw _ | Instr.Io _ | Instr.Barrier _
  | Instr.Halt ->
      []

(* Whether the instruction writes memory (used to invalidate caches). *)
let writes_memory (i : instr) =
  match i with
  | Instr.Mov (_, Operand.Mem _, _)
  | Instr.Binop (_, _, Operand.Mem _, _)
  | Instr.Unop (_, _, Operand.Mem _)
  | Instr.Atomic_rmw _ ->
      true
  | Instr.Mov _ | Instr.Binop _ | Instr.Unop _ | Instr.Cmov _ | Instr.Lea _
  | Instr.Cmp _ | Instr.Jcc _ | Instr.Jmp _ | Instr.Call _ | Instr.Ret
  | Instr.Lock_acquire _ | Instr.Lock_release _ | Instr.Io _ | Instr.Barrier _
  | Instr.Halt ->
      false

(* Labels referenced by branches in a function body. *)
let label_refs (body : Threadfuser_prog.Surface.item list) =
  let refs = Hashtbl.create 16 in
  let bump l = Hashtbl.replace refs l (1 + Option.value ~default:0 (Hashtbl.find_opt refs l)) in
  List.iter
    (fun item ->
      match item with
      | Threadfuser_prog.Surface.Ins (Instr.Jcc (_, l)) -> bump l
      | Threadfuser_prog.Surface.Ins (Instr.Jmp l) -> bump l
      | Threadfuser_prog.Surface.Ins _ | Threadfuser_prog.Surface.Label _ -> ())
    body;
  refs
