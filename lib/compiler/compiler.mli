(** Optimization-level pipelines mirroring the gcc -O0..-O3 binaries the
    paper traces (§IV):

    - [O0]: register-spilling deoptimizer — every register use reloads from
      and every definition stores to a TLS home slot, inflating
      stack-segment memory traffic like an unoptimizing compiler;
    - [O1]: the program as written (the paper's best-correlating level);
    - [O2]: local redundant-load elimination;
    - [O3]: O2 + loop unrolling + if-conversion — removes control
      divergence the GPU binary keeps, making SIMT-efficiency predictions
      optimistic, as the paper observes.

    All passes are semantics-preserving (property-tested in
    [test/test_compiler.ml]). *)

type level = O0 | O1 | O2 | O3

val all_levels : level list

val to_string : level -> string

val of_string : string -> level option

(** Apply the level's pass pipeline to a surface program. *)
val apply : level -> Threadfuser_prog.Surface.t -> Threadfuser_prog.Surface.t

(** [apply] then assemble. *)
val compile : level -> Threadfuser_prog.Surface.t -> Threadfuser_prog.Program.t

val pp_level : Format.formatter -> level -> unit
