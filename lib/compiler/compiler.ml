(** Optimization-level pipelines, mirroring the gcc -O0/-O1/-O2/-O3 binaries
    the paper traces (§IV):

    - [O0]: the register-spilling deoptimizer — every variable lives in
      memory, inflating (stack-segment) memory traffic;
    - [O1]: the program as written (the paper found -O1 correlates best
      with GPU hardware);
    - [O2]: local redundant-load elimination — fewer memory instructions;
    - [O3]: O2 plus loop unrolling and if-conversion — also removes control
      divergence, which makes SIMT-efficiency predictions optimistic
      relative to the GPU binary, as the paper observes. *)

open Threadfuser_prog

type level = O0 | O1 | O2 | O3

let all_levels = [ O0; O1; O2; O3 ]

let to_string = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2" | O3 -> "O3"

let of_string = function
  | "O0" | "o0" -> Some O0
  | "O1" | "o1" -> Some O1
  | "O2" | "o2" -> Some O2
  | "O3" | "o3" -> Some O3
  | _ -> None

(** Apply a level's pass pipeline to a surface program. *)
let apply level (p : Surface.t) : Surface.t =
  match level with
  | O0 -> Spill.apply p
  | O1 -> p
  | O2 -> Loadelim.apply p
  | O3 -> Loadelim.apply (Ifconv.apply (Unroll.apply p))

(** Convenience: apply and assemble in one step. *)
let compile level (p : Surface.t) : Program.t = Program.assemble (apply level p)

let pp_level ppf l = Fmt.string ppf (to_string l)
