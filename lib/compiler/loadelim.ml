(** -O2-style local redundancy elimination.

    Within each basic block the pass remembers which register holds the
    value last loaded from (or stored to) a syntactic memory operand, and
    rewrites subsequent loads of the same operand into register moves
    (dropping them entirely when source and destination coincide).  The
    cache is conservatively flushed at every label, terminator, memory
    write, or synchronization point, and entries die when a register they
    mention is overwritten — so the rewrite is sound even across threads as
    long as racing accesses are protected by locks/atomics (which flush).

    This reproduces the gcc -O2/-O3 behaviour the paper observed: fewer
    memory instructions than the -O0/-O1 binaries, pulling the predicted
    transaction counts below the GPU oracle's. *)

open Threadfuser_isa
open Threadfuser_prog

(* Cache key: access width + the syntactic memory operand. *)
module Key = struct
  type t = Width.t * Operand.mem

  let equal (a : t) (b : t) = a = b
end

type state = { mutable entries : (Key.t * Reg.t) list }

let flush st = st.entries <- []

let kill_reg st r =
  st.entries <-
    List.filter
      (fun (((_, m) : Key.t), holder) ->
        holder <> r && not (List.mem r (Operand.mem_regs m)))
      st.entries

let lookup st key =
  List.find_map (fun (k, r) -> if Key.equal k key then Some r else None) st.entries

let remember st key r =
  st.entries <- (key, r) :: List.filter (fun (k, _) -> not (Key.equal k key)) st.entries

let rewrite_instr st (i : Pass_util.instr) : Pass_util.instr option =
  let result =
    match i with
    (* load: forward from a register that already holds the value *)
    | Instr.Mov (w, Operand.Reg r, Operand.Mem m) -> (
        match lookup st (w, m) with
        | Some holder when holder = r -> None (* value already there *)
        | Some holder -> Some (Instr.Mov (w, Operand.Reg r, Operand.Reg holder))
        | None -> Some i)
    | Instr.Binop (op, w, Operand.Reg r, Operand.Mem m) -> (
        match lookup st (w, m) with
        | Some holder -> Some (Instr.Binop (op, w, Operand.Reg r, Operand.Reg holder))
        | None -> Some i)
    | Instr.Cmp (w, a, Operand.Mem m) -> (
        match lookup st (w, m) with
        | Some holder -> Some (Instr.Cmp (w, a, Operand.Reg holder))
        | None -> Some i)
    | Instr.Cmp (w, Operand.Mem m, b) -> (
        match lookup st (w, m) with
        | Some holder -> Some (Instr.Cmp (w, Operand.Reg holder, b))
        | None -> Some i)
    | _ -> Some i
  in
  (* Update the cache according to the *original* instruction's effects. *)
  (if Pass_util.writes_memory i then flush st
   else
     match i with
     | Instr.Call _ | Instr.Lock_acquire _ | Instr.Lock_release _ | Instr.Io _ ->
         flush st
     | _ -> ());
  List.iter (kill_reg st) (Pass_util.written_regs i);
  (* Register new facts (after kills, so a load into an addressing register
     of its own operand does not survive). *)
  (match i with
  | Instr.Mov (w, Operand.Reg r, Operand.Mem m) ->
      if not (List.mem r (Operand.mem_regs m)) then remember st (w, m) r
  | Instr.Mov (w, Operand.Mem m, Operand.Reg r) ->
      (* store-to-load forwarding: memory now holds r (if widths match) *)
      if w = Width.W8 && not (List.mem r (Operand.mem_regs m)) then
        remember st (w, m) r
  | _ -> ());
  result

(* Note: store-to-load forwarding is W8-only because a narrow store
   truncates memory while the register keeps the full word; forwarding
   *loads* of any width is fine since the register holds exactly the
   zero-extended loaded value. *)

let apply_func (f : Surface.func) : Surface.func =
  let st = { entries = [] } in
  let body =
    List.filter_map
      (fun item ->
        match item with
        | Surface.Label _ ->
            flush st;
            Some item
        | Surface.Ins i ->
            let keep =
              if Instr.is_terminator i then begin
                let r = rewrite_instr st i in
                flush st;
                r
              end
              else rewrite_instr st i
            in
            Option.map (fun i -> Surface.Ins i) keep)
      f.Surface.body
  in
  { f with Surface.body = body }

let apply (p : Surface.t) : Surface.t = List.map apply_func p
