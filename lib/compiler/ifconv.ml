(** -O3 if-conversion: turn short, side-effect-free branch diamonds into
    straight-line conditional moves.

    This is the optimization the paper identifies as the main reason gcc -O3
    binaries *overestimate* SIMT efficiency relative to GPU hardware: the
    CPU compiler removes control divergence that the GPU binary still has
    (paper §IV).  Two shapes are recognised:

    {v
      cmp a, b                         cmp a, b
      jCC  Lend          ==>           cmov !CC r, v      (per then-mov)
      mov r, v  (then)
    Lend:

      cmp a, b                         cmp a, b
      jCC  Lelse                       mov r, v'          (else movs)
      mov r, v   (then)      ==>       cmov !CC r, v      (then movs)
      jmp Lend
    Lelse:
      mov r, v'  (else)
    Lend:
    v}

    Safety conditions: every conditional instruction is a register-to-
    register/immediate move (no memory, no flag update); in the
    if/else shape the else-path's writes are a subset of the then-path's
    writes (so they are overwritten when the then-path logically runs) and
    are disjoint from the then-path's reads.  Labels made unreferenced by
    the rewrite are dropped when no other branch targets them. *)

open Threadfuser_isa
open Threadfuser_prog

(* A convertible conditional instruction: plain register move from a
   register or immediate. *)
let simple_mov = function
  | Instr.Mov (Width.W8, Operand.Reg r, (Operand.Reg _ | Operand.Imm _ as src)) ->
      Some (r, src)
  | _ -> None

let src_reg = function Operand.Reg r -> [ r ] | _ -> []

(* Collect a run of simple movs from the item list. *)
let rec take_movs acc items =
  match items with
  | Surface.Ins i :: rest -> (
      match simple_mov i with
      | Some mv -> take_movs (mv :: acc) rest
      | None -> (List.rev acc, items))
  | _ -> (List.rev acc, items)

let cmovs cond movs =
  List.map
    (fun (r, src) -> Surface.Ins (Instr.Cmov (cond, Operand.Reg r, src)))
    movs

let movs_plain movs =
  List.map
    (fun (r, src) -> Surface.Ins (Instr.Mov (Width.W8, Operand.Reg r, src)))
    movs

(* Try to convert a diamond starting at [items]; returns the replacement and
   the remaining items, plus the labels whose branch references were
   removed. *)
let try_convert items =
  match items with
  | Surface.Ins (Instr.Cmp (_, _, _) as cmp) :: Surface.Ins (Instr.Jcc (cc, l1)) :: rest
    -> (
      let then_movs, after_then = take_movs [] rest in
      if then_movs = [] then None
      else
        match after_then with
        (* shape 1: no else branch; l1 is the join label *)
        | Surface.Label l1' :: _ when l1' = l1 ->
            Some
              ( [ Surface.Ins cmp ] @ cmovs (Cond.negate cc) then_movs,
                after_then,
                [ l1 ] )
        (* shape 2: if/else *)
        | Surface.Ins (Instr.Jmp lend) :: Surface.Label l1' :: after_else_label
          when l1' = l1 -> (
            let else_movs, after_else = take_movs [] after_else_label in
            match after_else with
            | Surface.Label lend' :: _ when lend' = lend && else_movs <> [] ->
                let then_writes = List.map fst then_movs in
                let then_reads = List.concat_map (fun (_, s) -> src_reg s) then_movs in
                let else_writes = List.map fst else_movs in
                let else_reads = List.concat_map (fun (_, s) -> src_reg s) else_movs in
                let subset xs ys = List.for_all (fun x -> List.mem x ys) xs in
                let disjoint xs ys = List.for_all (fun x -> not (List.mem x ys)) xs in
                (* The cmp operands must also be insensitive to the else
                   movs: flags are latched at the cmp, so that is automatic;
                   but else movs must not clobber then-mov sources. *)
                if
                  subset else_writes then_writes
                  && disjoint else_writes then_reads
                  && disjoint else_writes else_reads
                then
                  Some
                    ( [ Surface.Ins cmp ]
                      @ movs_plain else_movs
                      @ cmovs (Cond.negate cc) then_movs,
                      after_else,
                      [ l1; lend ] )
                else None
            | _ -> None)
        | _ -> None)
  | _ -> None

let apply_func (f : Surface.func) : Surface.func =
  let removed = Hashtbl.create 8 in
  let rec go items =
    match items with
    | [] -> []
    | item :: rest -> (
        match try_convert items with
        | Some (replacement, remaining, dropped_refs) ->
            List.iter
              (fun l ->
                Hashtbl.replace removed l
                  (1 + Option.value ~default:0 (Hashtbl.find_opt removed l)))
              dropped_refs;
            replacement @ go remaining
        | None -> item :: go rest)
  in
  let body = go f.Surface.body in
  (* Drop labels that no branch references any more. *)
  let refs = Pass_util.label_refs body in
  let body =
    List.filter
      (fun item ->
        match item with
        | Surface.Label l -> Hashtbl.mem refs l || not (Hashtbl.mem removed l)
        | Surface.Ins _ -> true)
      body
  in
  { f with Surface.body = body }

let apply (p : Surface.t) : Surface.t = List.map apply_func p
