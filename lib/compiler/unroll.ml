(** -O3 loop unrolling for simple top-tested loops.

    Recognizes the canonical while-loop shape the builder (and most
    compilers) emit and duplicates test+body [factor] times, keeping every
    exit test so the transformation is trivially semantics-preserving while
    cutting the back-edge jumps and enlarging straight-line blocks:

    {v
    Lhead:                       Lhead:
      cmp a, b                     cmp a, b ; jCC Lend ; body
      jCC Lend          ==>        cmp a, b ; jCC Lend ; body
      body (straight line)         ... (factor copies) ...
      jmp Lhead                    jmp Lhead
    Lend:                        Lend:
    v}

    Only loops whose body is straight-line (no labels, no control flow other
    than the back edge) and that are not jump targets from elsewhere are
    rewritten. *)

open Threadfuser_isa
open Threadfuser_prog

let default_factor = 4

(* Split items into (straight-line body, rest) where body contains no
   labels and no terminators. *)
let rec take_straight acc items =
  match items with
  | (Surface.Ins i as item) :: rest when not (Instr.is_terminator i) ->
      take_straight (item :: acc) rest
  | _ -> (List.rev acc, items)

let try_unroll ~factor refs items =
  match items with
  | Surface.Label lhead
    :: Surface.Ins (Instr.Cmp (_, _, _) as cmp)
    :: Surface.Ins (Instr.Jcc (cc, lend))
    :: rest -> (
      let body, after_body = take_straight [] rest in
      match after_body with
      | Surface.Ins (Instr.Jmp lhead') :: (Surface.Label lend' :: _ as tail)
        when lhead' = lhead && lend' = lend
             (* the head must only be targeted by its own back edge *)
             && Hashtbl.find_opt refs lhead = Some 1 ->
          let copy = (Surface.Ins cmp :: Surface.Ins (Instr.Jcc (cc, lend)) :: body) in
          let copies = List.concat (List.init factor (fun _ -> copy)) in
          Some ((Surface.Label lhead :: copies) @ [ Surface.Ins (Instr.Jmp lhead) ], tail)
      | _ -> None)
  | _ -> None

let apply_func ?(factor = default_factor) (f : Surface.func) : Surface.func =
  let refs = Pass_util.label_refs f.Surface.body in
  let rec go items =
    match items with
    | [] -> []
    | item :: rest -> (
        match try_unroll ~factor refs items with
        | Some (replacement, remaining) -> replacement @ go remaining
        | None -> item :: go rest)
  in
  { f with Surface.body = go f.Surface.body }

let apply ?factor (p : Surface.t) : Surface.t =
  List.map (apply_func ?factor) p
