(** Immediate post-dominator tables, one per function DCFG.

    The immediate post-dominator of a block is the first block guaranteed to
    execute on every path from it to the function's (virtual) exit — the
    reconvergence point the SIMT stack pushes when threads diverge at that
    block (paper §II/§III, the GPGPU-Sim IPDOM algorithm). *)

type t = {
  dcfg : Dcfg.t;
  ipdom : int array; (* node -> immediate post-dominator node *)
  depth : int array; (* length of the node's post-dominator chain to exit *)
}

(** Post-dominators = dominators of the reversed graph rooted at exit. *)
let compute (dcfg : Dcfg.t) : t =
  let n = Dcfg.n_nodes dcfg in
  let doms =
    Dominators.compute ~n ~entry:dcfg.exit_node
      ~succs:(fun v -> dcfg.preds.(v))
      ~preds:(fun v -> dcfg.succs.(v))
  in
  let ipdom =
    Array.init n (fun v ->
        if v = dcfg.exit_node then dcfg.exit_node
        else if doms.Dominators.idom.(v) < 0 then
          (* Block never observed reaching exit (e.g. never traced at all):
             fall back to the conservative reconvergence point. *)
          dcfg.exit_node
        else doms.Dominators.idom.(v))
  in
  (* Chain depth to exit (the post-dominator tree is rooted at exit). *)
  let depth = Array.make n (-1) in
  depth.(dcfg.exit_node) <- 0;
  let rec depth_of v =
    if depth.(v) >= 0 then depth.(v)
    else begin
      let d = 1 + depth_of ipdom.(v) in
      depth.(v) <- d;
      d
    end
  in
  for v = 0 to n - 1 do
    ignore (depth_of v)
  done;
  { dcfg; ipdom; depth }

let reconvergence_point t block = t.ipdom.(block)

(** [post_dominates t a b] — is [a] on every path from [b] to exit? *)
let post_dominates t a b =
  let rec walk b = b = a || (t.ipdom.(b) <> b && walk t.ipdom.(b)) in
  walk b

(** Nearest common post-dominator of two nodes: the first block guaranteed
    to execute on every path to exit from either — the reconvergence point
    for a warp whose lanes stand at [a] and [b].  Computed by lifting the
    deeper node along its post-dominator chain (LCA in the post-dominator
    tree). *)
let nearest_common_post_dominator t a b =
  let a = ref a and b = ref b in
  while !a <> !b do
    if t.depth.(!a) > t.depth.(!b) then a := t.ipdom.(!a)
    else if t.depth.(!b) > t.depth.(!a) then b := t.ipdom.(!b)
    else begin
      a := t.ipdom.(!a);
      b := t.ipdom.(!b)
    end
  done;
  !a

(** Table for a whole program: one entry per function. *)
let c_ipdom_tables =
  Threadfuser_obs.Obs.Counter.make "tf_ipdom_tables_total"
    ~help:"per-function IPDOM tables computed"

let of_dcfgs (dcfgs : Dcfg.t array) : t array =
  Threadfuser_obs.Obs.Counter.add c_ipdom_tables (Array.length dcfgs);
  Array.map compute dcfgs
