(** Graphviz export of dynamic CFGs, annotated with IPDOM reconvergence
    edges — handy when debugging why the analyzer picked a reconvergence
    point (render with [dot -Tsvg]). *)

module Program = Threadfuser_prog.Program

let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

(** [emit ppf prog dcfg ipdom] writes one digraph for the DCFG's function.
    Solid edges are observed control flow; dashed grey edges point from
    each block to its immediate post-dominator. *)
let emit ppf (prog : Program.t) (dcfg : Dcfg.t) (ipdom : Ipdom.t option) =
  let f = Program.func prog dcfg.Dcfg.func in
  Fmt.pf ppf "digraph \"%s\" {@." (escape f.Program.name);
  Fmt.pf ppf "  rankdir=TB; node [shape=box, fontname=\"monospace\"];@.";
  (* nodes: observed blocks plus the virtual exit *)
  for b = 0 to dcfg.Dcfg.n_blocks - 1 do
    if dcfg.Dcfg.observed.(b) then begin
      let block = f.Program.blocks.(b) in
      let label =
        match block.Program.src_label with
        | Some l -> Printf.sprintf "b%d (%s)\\n%d instrs" b l (Array.length block.Program.instrs)
        | None -> Printf.sprintf "b%d\\n%d instrs" b (Array.length block.Program.instrs)
      in
      Fmt.pf ppf "  n%d [label=\"%s\"%s];@." b (escape label)
        (if b = 0 then ", style=bold" else "")
    end
  done;
  Fmt.pf ppf "  n%d [label=\"exit\", shape=doublecircle];@." dcfg.Dcfg.exit_node;
  (* observed edges *)
  Array.iteri
    (fun from_ succs ->
      List.iter (fun to_ -> Fmt.pf ppf "  n%d -> n%d;@." from_ to_) succs)
    dcfg.Dcfg.succs;
  (* reconvergence edges *)
  (match ipdom with
  | None -> ()
  | Some ip ->
      for b = 0 to dcfg.Dcfg.n_blocks - 1 do
        if dcfg.Dcfg.observed.(b) && List.length dcfg.Dcfg.succs.(b) > 1 then
          Fmt.pf ppf
            "  n%d -> n%d [style=dashed, color=grey, label=\"reconv\"];@." b
            (Ipdom.reconvergence_point ip b)
      done);
  Fmt.pf ppf "}@."

let to_string prog dcfg ipdom =
  let buf = Buffer.create 1024 in
  emit (Fmt.with_buffer buf) prog dcfg ipdom;
  Buffer.contents buf
