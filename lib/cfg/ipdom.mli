(** Immediate post-dominator tables (one per function DCFG).

    The immediate post-dominator of a block is the first block guaranteed
    to execute on every path from it to the function's virtual exit — the
    reconvergence point the SIMT stack pushes when threads diverge there
    (paper §II/§III, the GPGPU-Sim IPDOM discipline). *)

type t = {
  dcfg : Dcfg.t;
  ipdom : int array;  (** node -> immediate post-dominator *)
  depth : int array;  (** post-dominator-chain length to exit *)
}

val compute : Dcfg.t -> t

(** The IPDOM of a block (the function's exit node for blocks with no
    tighter reconvergence point). *)
val reconvergence_point : t -> int -> int

(** [post_dominates t a b] — is [a] on every path from [b] to exit? *)
val post_dominates : t -> int -> int -> bool

(** Nearest common post-dominator of two nodes: the first block guaranteed
    to execute on every path to exit from either — where a warp whose lanes
    stand at the two nodes can reconverge (LCA in the post-dominator
    tree).  Used for both branch divergence and post-lock-serialization
    regrouping. *)
val nearest_common_post_dominator : t -> int -> int -> int

val of_dcfgs : Dcfg.t array -> t array
