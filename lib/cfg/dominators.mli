(** Iterative dominator computation (Cooper–Harvey–Kennedy).  Pass the
    reversed graph to obtain post-dominators, as the IPDOM tables do.
    Nodes are integers in [0, n); nodes unreachable from [entry] get
    idom = -1. *)

type t = {
  idom : int array;  (** [idom.(entry) = entry]; -1 for unreachable nodes *)
  rpo_index : int array;  (** reverse-postorder position; -1 unreachable *)
}

val reverse_postorder : n:int -> entry:int -> succs:(int -> int list) -> int array

val compute :
  n:int -> entry:int -> succs:(int -> int list) -> preds:(int -> int list) -> t

(** [dominates t a b] — does [a] dominate [b] (w.r.t. the computed entry)? *)
val dominates : t -> int -> int -> bool
