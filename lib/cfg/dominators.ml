(** Iterative dominator computation (Cooper–Harvey–Kennedy, "A Simple, Fast
    Dominance Algorithm").  Used with the graph reversed to obtain
    post-dominators, which is how GPGPU-Sim-style IPDOM reconvergence tables
    are built (paper §III).

    Nodes are integers in [0, n).  Nodes unreachable from [entry] get
    idom = -1. *)

type t = {
  idom : int array; (* idom.(entry) = entry; -1 for unreachable *)
  rpo_index : int array; (* position in reverse postorder; -1 unreachable *)
}

let reverse_postorder ~n ~entry ~succs =
  let visited = Array.make n false in
  let order = ref [] in
  (* Iterative DFS with an explicit stack of (node, remaining successors). *)
  let stack = ref [ (entry, ref (succs entry)) ] in
  visited.(entry) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (node, rest) :: tail -> (
        match !rest with
        | [] ->
            order := node :: !order;
            stack := tail
        | s :: more ->
            rest := more;
            if not visited.(s) then begin
              visited.(s) <- true;
              stack := (s, ref (succs s)) :: !stack
            end)
  done;
  Array.of_list !order

(** [compute ~n ~entry ~succs ~preds] returns immediate dominators w.r.t.
    [entry].  For post-dominators, pass the reversed graph (swap succs and
    preds, entry = the exit node). *)
let compute ~n ~entry ~succs ~preds : t =
  let rpo = reverse_postorder ~n ~entry ~succs in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i node -> rpo_index.(node) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(entry) <- entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> entry then begin
          let new_idom =
            List.fold_left
              (fun acc p ->
                if rpo_index.(p) < 0 || idom.(p) < 0 then acc
                else match acc with None -> Some p | Some a -> Some (intersect a p))
              None (preds b)
          in
          match new_idom with
          | Some d when idom.(b) <> d ->
              idom.(b) <- d;
              changed := true
          | Some _ | None -> ()
        end)
      rpo
  done;
  { idom; rpo_index }

(** [dominates t a b] — does [a] dominate [b]?  Walks the idom chain. *)
let dominates t a b =
  let rec walk b = b = a || (t.idom.(b) <> b && t.idom.(b) >= 0 && walk t.idom.(b)) in
  t.rpo_index.(b) >= 0 && walk b
