(** Per-function Dynamic Control Flow Graphs, built from observed traces
    rather than static code (paper §III): edges exist only if some thread
    took them.  Each function gets a virtual exit node (id [n_blocks]) that
    every invocation's last block points to, forcing divergent threads to
    reconverge at function end like real SIMT hardware. *)

type t = {
  func : int;
  n_blocks : int;
  exit_node : int;  (** = [n_blocks] *)
  succs : int list array;  (** length [n_blocks + 1] *)
  preds : int list array;
  observed : bool array;  (** blocks that appeared in some trace *)
}

val entry_node : int

val n_nodes : t -> int

(** Incremental builder over any number of thread traces. *)
module Builder : sig
  type dcfg := t

  type t

  val create : Threadfuser_prog.Program.t -> t

  val feed : t -> Threadfuser_trace.Thread_trace.t -> unit

  (** One DCFG per program function (empty graph if never observed). *)
  val finish : t -> dcfg array
end

(** Build the per-function DCFGs of a whole trace set in one pass. *)
val of_traces :
  Threadfuser_prog.Program.t -> Threadfuser_trace.Thread_trace.t array -> t array

val pp : Format.formatter -> t -> unit
