(** Per-function Dynamic Control Flow Graphs.

    The paper builds CFGs from the *observed* basic-block traces rather than
    from static code ("Dynamic CFG"): edges exist only if some thread
    actually took them.  The DCFG is built per function with a virtual exit
    node appended, so divergent threads are forced to reconverge at function
    end, mirroring real SIMT hardware (paper §III, "per-function DCFG").

    Node numbering: blocks keep their static indices [0, n_blocks); the
    virtual exit node is [n_blocks]. *)

module Program = Threadfuser_prog.Program
module Event = Threadfuser_trace.Event
module Thread_trace = Threadfuser_trace.Thread_trace

type t = {
  func : int;
  n_blocks : int;
  exit_node : int; (* = n_blocks *)
  succs : int list array; (* length n_blocks + 1 *)
  preds : int list array;
  observed : bool array; (* blocks that appeared in some trace *)
}

let entry_node = 0

let n_nodes t = t.n_blocks + 1

(** Builder accumulating edges from any number of thread traces. *)
module Builder = struct
  type dcfg = t

  type func_acc = {
    fid : int;
    nb : int;
    edges : (int, unit) Hashtbl.t; (* from * (nb+1) + to *)
    seen : bool array;
  }

  type t = { prog : Program.t; funcs : (int, func_acc) Hashtbl.t }

  let create prog = { prog; funcs = Hashtbl.create 32 }

  let acc t fid =
    match Hashtbl.find_opt t.funcs fid with
    | Some a -> a
    | None ->
        let nb = Program.block_count (Program.func t.prog fid) in
        let a =
          { fid; nb; edges = Hashtbl.create 64; seen = Array.make (nb + 1) false }
        in
        Hashtbl.add t.funcs fid a;
        a

  let add_edge a from_ to_ = Hashtbl.replace a.edges ((from_ * (a.nb + 1)) + to_) ()

  (* Frame: the function being executed and the last block observed in it. *)
  type frame = { facc : func_acc; mutable last : int }

  let feed t (trace : Thread_trace.t) =
    let stack = ref [] in
    let enter fid =
      let a = acc t fid in
      stack := { facc = a; last = -1 } :: !stack
    in
    let leave () =
      match !stack with
      | [] -> ()
      | fr :: rest ->
          if fr.last >= 0 then begin
            add_edge fr.facc fr.last fr.facc.nb;
            fr.facc.seen.(fr.facc.nb) <- true
          end;
          stack := rest
    in
    Array.iter
      (fun (e : Event.t) ->
        match e with
        | Event.Block { func; block; _ } ->
            (match !stack with
            | fr :: _ when fr.facc.fid = func -> ()
            | _ -> enter func);
            let fr = List.hd !stack in
            fr.facc.seen.(block) <- true;
            if fr.last >= 0 then add_edge fr.facc fr.last block;
            fr.last <- block
        | Event.Call callee -> enter callee
        | Event.Return -> leave ()
        | Event.Lock_acq _ | Event.Lock_rel _ | Event.Barrier _
        | Event.Skip _ ->
            ())
      trace.events;
    (* A thread cut short (Halt) still reconverges at the virtual exit. *)
    while !stack <> [] do
      leave ()
    done

  let finish_func (a : func_acc) : dcfg =
    let n = a.nb + 1 in
    let succs = Array.make n [] and preds = Array.make n [] in
    Hashtbl.iter
      (fun key () ->
        let from_ = key / n and to_ = key mod n in
        succs.(from_) <- to_ :: succs.(from_);
        preds.(to_) <- from_ :: preds.(to_))
      a.edges;
    {
      func = a.fid;
      n_blocks = a.nb;
      exit_node = a.nb;
      succs;
      preds;
      observed = a.seen;
    }

  (** Finish into an array indexed by function id; functions never observed
      get an empty graph. *)
  let finish t : dcfg array =
    Array.init (Program.func_count t.prog) (fun fid ->
        match Hashtbl.find_opt t.funcs fid with
        | Some a -> finish_func a
        | None ->
            let nb = Program.block_count (Program.func t.prog fid) in
            {
              func = fid;
              n_blocks = nb;
              exit_node = nb;
              succs = Array.make (nb + 1) [];
              preds = Array.make (nb + 1) [];
              observed = Array.make (nb + 1) false;
            })
end

module Obs = Threadfuser_obs.Obs

let c_dcfg_edges =
  Obs.Counter.make "tf_dcfg_edges_total" ~help:"distinct observed DCFG edges"
let c_dcfg_funcs =
  Obs.Counter.make "tf_dcfg_functions_total" ~help:"per-function DCFGs built"

(** Build the per-function DCFGs of a whole trace set in one pass. *)
let of_traces prog traces =
  let b = Builder.create prog in
  Array.iter (Builder.feed b) traces;
  let dcfgs = Builder.finish b in
  if !Obs.enabled then begin
    Obs.Counter.add c_dcfg_funcs (Array.length dcfgs);
    Obs.Counter.add c_dcfg_edges
      (Array.fold_left
         (fun acc d ->
           Array.fold_left (fun acc succs -> acc + List.length succs) acc d.succs)
         0 dcfgs)
  end;
  dcfgs

let pp ppf t =
  Fmt.pf ppf "dcfg f%d (%d blocks + exit):@." t.func t.n_blocks;
  Array.iteri
    (fun from_ succs ->
      if succs <> [] then
        Fmt.pf ppf "  %d -> %a@." from_ Fmt.(list ~sep:comma int) succs)
    t.succs
