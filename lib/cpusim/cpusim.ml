(** First-order multicore CPU timing model.

    The paper normalizes its Fig. 6 GPU projections against multi-threaded
    execution on a real CPU; this model plays that role.  Each thread's
    dynamic trace is replayed on an in-order core at one instruction per
    cycle plus memory stalls from a private-L1 / shared-L2 / DRAM-latency
    hierarchy (reusing the {!Threadfuser_gpusim.Cache} model).  Threads are
    assigned round-robin to cores; a core runs its threads back to back and
    the program finishes when the slowest core does.  Skipped regions (I/O,
    lock spinning) are charged at one cycle per skipped instruction.

    {b Execution model: core-local legs + deterministic shared-L2 merge.}
    Like {!Threadfuser_gpusim.Gpusim}, the simulation is decoupled so the
    cores can run on separate domains ([-j]): each core replays its
    threads touching only its private L1 and logs every L1 miss with its
    core-local cycle stamp; a single deterministic reduction then replays
    the union of the logs through the shared L2 in total order
    [(cycle, core, emission order)], charging [l2_miss_penalty] back to
    the owning core per L2 miss.  Core-local time never feeds back into
    the shared level, so the merge degenerates to one epoch and the
    statistics are byte-identical at any domain count — and, on one core,
    identical to the historical inline walk (the log order {e is} the
    program order there). *)

module Cache = Threadfuser_gpusim.Cache
module Event = Threadfuser_trace.Event
module Thread_trace = Threadfuser_trace.Thread_trace
module Par_replay = Threadfuser.Par_replay

type config = {
  n_cores : int;
  l1 : Cache.config;
  l1_miss_penalty : int; (* to L2 *)
  l2 : Cache.config;
  l2_miss_penalty : int; (* to DRAM *)
  clock_ghz : float;
}

(* A Xeon-class 20-core part, like the paper's trace machine. *)
let default_config =
  {
    n_cores = 20;
    l1 = { Cache.size_bytes = 32 * 1024; assoc = 8; line_bytes = 64 };
    l1_miss_penalty = 12;
    l2 = { Cache.size_bytes = 8 * 1024 * 1024; assoc = 16; line_bytes = 64 };
    l2_miss_penalty = 180;
    clock_ghz = 3.0;
  }

type stats = {
  cycles : int; (* max over cores *)
  core_cycles : int array;
  instructions : int;
  l1_hit_rate : float;
}

(* One logged L1 miss: [c_ts] is the core-local cycle at which the
   request reaches L2 (nondecreasing within a core's log). *)
type access = { c_ts : int; c_core : int; c_addr : int }

type core = {
  l1 : Cache.t;
  mutable cycles : int; (* local leg: 1 IPC + L1 miss penalties *)
  mutable instrs : int;
  mutable log : access array;
  mutable log_n : int;
}

let no_access = { c_ts = 0; c_core = 0; c_addr = 0 }

let log_access core ~core_id addr =
  if core.log_n = Array.length core.log then begin
    let bigger = Array.make (max 64 (2 * Array.length core.log)) no_access in
    Array.blit core.log 0 bigger 0 core.log_n;
    core.log <- bigger
  end;
  core.log.(core.log_n) <- { c_ts = core.cycles; c_core = core_id; c_addr = addr };
  core.log_n <- core.log_n + 1

(* Local leg of one thread on [core]: private L1 only; L1 misses are
   charged the L1 penalty and logged for the shared-L2 merge. *)
let thread_cycles config core ~core_id (trace : Thread_trace.t) =
  Array.iter
    (fun (e : Event.t) ->
      match e with
      | Event.Block b ->
          core.cycles <- core.cycles + b.n_instr;
          Array.iter
            (fun (a : Event.access) ->
              if not (Cache.access core.l1 a.Event.addr) then begin
                core.cycles <- core.cycles + config.l1_miss_penalty;
                log_access core ~core_id a.Event.addr
              end)
            b.accesses
      | Event.Skip { n_instr; _ } -> core.cycles <- core.cycles + n_instr
      | Event.Lock_acq _ | Event.Lock_rel _ -> core.cycles <- core.cycles + 20
      | Event.Barrier _ -> core.cycles <- core.cycles + 40
      | Event.Call _ | Event.Return -> core.cycles <- core.cycles + 2)
    trace.events

(** [domains] partitions the cores over the persistent domain pool;
    statistics are byte-identical at any value. *)
let run ?(config = default_config) ?(domains = 1)
    (traces : Thread_trace.t array) : stats =
  let cores =
    Array.init config.n_cores (fun _ ->
        { l1 = Cache.create config.l1; cycles = 0; instrs = 0; log = [||]; log_n = 0 })
  in
  (* core-local legs: core c owns threads c, c + n_cores, ... in order *)
  Par_replay.parallel_for ~domains ~n:config.n_cores (fun c ->
      let core = cores.(c) in
      let i = ref c in
      while !i < Array.length traces do
        let trace = traces.(!i) in
        thread_cycles config core ~core_id:c trace;
        core.instrs <-
          core.instrs + (Thread_trace.stats trace).Thread_trace.traced_instrs;
        i := !i + config.n_cores
      done);
  (* deterministic shared-L2 merge in (cycle, core, emission) order *)
  let l2 = Cache.create config.l2 in
  let extra = Array.make config.n_cores 0 in
  let total = Array.fold_left (fun acc c -> acc + c.log_n) 0 cores in
  if total > 0 then begin
    let buf = Array.make total no_access in
    let k = ref 0 in
    Array.iter
      (fun core ->
        Array.blit core.log 0 buf !k core.log_n;
        k := !k + core.log_n;
        core.log <- [||];
        core.log_n <- 0)
      cores;
    Array.stable_sort
      (fun a b -> compare (a.c_ts, a.c_core) (b.c_ts, b.c_core))
      buf;
    Array.iter
      (fun a ->
        if not (Cache.access l2 a.c_addr) then
          extra.(a.c_core) <- extra.(a.c_core) + config.l2_miss_penalty)
      buf
  end;
  let core_cycles =
    Array.init config.n_cores (fun c -> cores.(c).cycles + extra.(c))
  in
  let l1_hits = Array.fold_left (fun a c -> a + c.l1.Cache.hits) 0 cores in
  let l1_total =
    Array.fold_left (fun a c -> a + c.l1.Cache.hits + c.l1.Cache.misses) 0 cores
  in
  {
    cycles = Array.fold_left max 0 core_cycles;
    core_cycles;
    instructions = Array.fold_left (fun a c -> a + c.instrs) 0 cores;
    l1_hit_rate =
      (if l1_total = 0 then 0.0 else float_of_int l1_hits /. float_of_int l1_total);
  }

(** Wall-clock seconds at the configured clock. *)
let seconds ~config (s : stats) =
  float_of_int s.cycles /. (config.clock_ghz *. 1e9)
