(** First-order multicore CPU timing model.

    The paper normalizes its Fig. 6 GPU projections against multi-threaded
    execution on a real CPU; this model plays that role.  Each thread's
    dynamic trace is replayed on an in-order core at one instruction per
    cycle plus memory stalls from a private-L1 / shared-L2 / DRAM-latency
    hierarchy (reusing the {!Threadfuser_gpusim.Cache} model).  Threads are
    assigned round-robin to cores; a core runs its threads back to back and
    the program finishes when the slowest core does.  Skipped regions (I/O,
    lock spinning) are charged at one cycle per skipped instruction. *)

module Cache = Threadfuser_gpusim.Cache
module Event = Threadfuser_trace.Event
module Thread_trace = Threadfuser_trace.Thread_trace

type config = {
  n_cores : int;
  l1 : Cache.config;
  l1_miss_penalty : int; (* to L2 *)
  l2 : Cache.config;
  l2_miss_penalty : int; (* to DRAM *)
  clock_ghz : float;
}

(* A Xeon-class 20-core part, like the paper's trace machine. *)
let default_config =
  {
    n_cores = 20;
    l1 = { Cache.size_bytes = 32 * 1024; assoc = 8; line_bytes = 64 };
    l1_miss_penalty = 12;
    l2 = { Cache.size_bytes = 8 * 1024 * 1024; assoc = 16; line_bytes = 64 };
    l2_miss_penalty = 180;
    clock_ghz = 3.0;
  }

type stats = {
  cycles : int; (* max over cores *)
  core_cycles : int array;
  instructions : int;
  l1_hit_rate : float;
}

(* Cycles to execute one thread's trace on a core with the given caches. *)
let thread_cycles config l1 l2 (trace : Thread_trace.t) =
  let cycles = ref 0 in
  Array.iter
    (fun (e : Event.t) ->
      match e with
      | Event.Block b ->
          cycles := !cycles + b.n_instr;
          Array.iter
            (fun (a : Event.access) ->
              if not (Cache.access l1 a.Event.addr) then begin
                cycles := !cycles + config.l1_miss_penalty;
                if not (Cache.access l2 a.Event.addr) then
                  cycles := !cycles + config.l2_miss_penalty
              end)
            b.accesses
      | Event.Skip { n_instr; _ } -> cycles := !cycles + n_instr
      | Event.Lock_acq _ | Event.Lock_rel _ -> cycles := !cycles + 20
      | Event.Barrier _ -> cycles := !cycles + 40
      | Event.Call _ | Event.Return -> cycles := !cycles + 2)
    trace.events;
  !cycles

let run ?(config = default_config) (traces : Thread_trace.t array) : stats =
  let l2 = Cache.create config.l2 in
  let core_l1 = Array.init config.n_cores (fun _ -> Cache.create config.l1) in
  let core_cycles = Array.make config.n_cores 0 in
  let instructions = ref 0 in
  Array.iteri
    (fun i trace ->
      let core = i mod config.n_cores in
      core_cycles.(core) <-
        core_cycles.(core) + thread_cycles config core_l1.(core) l2 trace;
      instructions :=
        !instructions + (Thread_trace.stats trace).Thread_trace.traced_instrs)
    traces;
  let l1_hits = Array.fold_left (fun a c -> a + c.Cache.hits) 0 core_l1 in
  let l1_total =
    Array.fold_left (fun a c -> a + c.Cache.hits + c.Cache.misses) 0 core_l1
  in
  {
    cycles = Array.fold_left max 0 core_cycles;
    core_cycles;
    instructions = !instructions;
    l1_hit_rate =
      (if l1_total = 0 then 0.0 else float_of_int l1_hits /. float_of_int l1_total);
  }

(** Wall-clock seconds at the configured clock. *)
let seconds ~config (s : stats) =
  float_of_int s.cycles /. (config.clock_ghz *. 1e9)
