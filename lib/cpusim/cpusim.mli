(** First-order multicore CPU timing model — the baseline the paper's
    Fig. 6 speedups normalize against.

    Each thread's trace replays on an in-order core at 1 IPC plus memory
    stalls from a private-L1 / shared-L2 / DRAM hierarchy; threads are
    assigned round-robin to cores and the program finishes when the slowest
    core does.

    Execution is decoupled into core-local legs plus one deterministic
    shared-L2 merge in [(cycle, core)] order, so the core partition can
    run across OCaml 5 domains ([-j]) with byte-identical statistics at
    any domain count (docs/performance.md). *)

module Cache = Threadfuser_gpusim.Cache

type config = {
  n_cores : int;
  l1 : Cache.config;
  l1_miss_penalty : int;
  l2 : Cache.config;
  l2_miss_penalty : int;
  clock_ghz : float;
}

(** A Xeon-class 20-core part, like the paper's trace machine. *)
val default_config : config

type stats = {
  cycles : int;  (** max over cores *)
  core_cycles : int array;
  instructions : int;
  l1_hit_rate : float;
}

(** Simulate the trace set.  [domains] partitions the cores over the
    persistent domain pool ({!Threadfuser.Par_replay}); statistics are
    byte-identical at any [domains >= 1]. *)
val run :
  ?config:config ->
  ?domains:int ->
  Threadfuser_trace.Thread_trace.t array ->
  stats

val seconds : config:config -> stats -> float
