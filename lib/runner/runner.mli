(** Supervised batch execution of analyses over the workload registry.

    [run] takes a list of {!job}s (one analysis configuration each) and
    executes them under a supervisor with crash isolation, per-job
    wall-clock deadlines, seeded retry/backoff, and an append-only
    checkpoint journal ({!Journal}) enabling [--resume].  It {e always}
    terminates with a {!manifest} that accounts for every requested job.
    See docs/robustness.md ("Supervision"). *)

module Compiler = Threadfuser_compiler.Compiler
module Exec_fault = Threadfuser_fault.Exec_fault
module Cache = Threadfuser_cache.Cache

(** {1 Jobs} *)

type job = {
  workload : string;  (** registry name *)
  warp_size : int;
  level : Compiler.level;
  threads : int option;  (** [None] = the workload's default count *)
  scale : int;
}

val job :
  ?warp_size:int ->
  ?level:Compiler.level ->
  ?threads:int ->
  ?scale:int ->
  string ->
  job
(** Defaults: warp 32, O1, default threads, scale 1. *)

val job_id : job -> string
(** Stable, filesystem-safe id, e.g. ["bfs.w32.O1.s1"].  Doubles as the
    journal key and the report filename stem. *)

val matrix :
  workloads:string list ->
  warp_sizes:int list ->
  levels:Compiler.level list ->
  ?threads:int ->
  ?scale:int ->
  unit ->
  job list
(** Cross product in workload-major order. *)

(** {1 Outcomes} *)

module Outcome : sig
  type t =
    | Ok  (** clean report *)
    | Degraded  (** partial report (quarantined threads) *)
    | Crashed of string  (** attempt died: exception, signal, bad artifact *)
    | Timeout  (** wall-clock deadline exceeded *)
    | Gave_up of string  (** retry budget exhausted; payload = last failure *)

  val name : t -> string
  val detail : t -> string

  val success : t -> bool
  (** [Ok] or [Degraded]: skippable on resume. *)
end

type source = Fresh | Resumed | Cached

val source_name : source -> string

val analyzer_version : string
(** Part of every cache key; bumped when replay or report rendering
    changes semantically, so stale-analyzer artifacts can never hit. *)

val cache_key : job -> Cache.key
(** The artifact-cache key of a job: its full input identity
    [(workload id, opt level, warp size, analyzer version)]. *)

type entry = {
  job : job;
  id : string;
  outcome : Outcome.t;
  attempts : int;
  duration_s : float;  (** wall clock of the final attempt *)
  source : source;
  report_file : string option;  (** relative to the suite directory *)
  flight_file : string option;
      (** flight-recorder Chrome-trace dump ([flight/<id>.trace.json],
          with a [.metrics.txt] snapshot beside it) written when the job
          failed terminally; [None] on success or resume *)
}

type manifest = {
  entries : entry list;
      (** one per requested job, in request order; on an interrupted run,
          only the jobs that reached a terminal outcome *)
  quarantined : int;  (** corrupt journal lines set aside during resume *)
  wall_s : float;
  interrupted : bool;  (** stopped by {!request_stop} before finishing *)
  cache_hits : int;  (** jobs served from the artifact cache *)
  cache_misses : int;  (** cache lookups that had to run the job *)
}

val all_ok : manifest -> bool
(** Every entry is [Outcome.Ok] (degraded counts as not-ok here) and the
    run was not interrupted. *)

val failures : manifest -> entry list
(** Entries whose outcome is not a success. *)

val manifest_to_json : manifest -> Threadfuser_report.Json.t

val rollup_json : manifest -> Threadfuser_report.Json.t
(** Fleet rollup of a manifest: job count, total attempts, throughput
    ([jobs_per_s]), artifact-cache effectiveness ([cache_hits],
    [cache_misses], [cache_hit_ratio]) and the per-job duration
    distribution (mean/p50/p95/p99/max seconds).  Embedded in
    [manifest.json] under ["rollup"] and in the suite bench's
    [BENCH_suite.json] per level. *)

val manifest_path : string -> string
(** [manifest_path dir] — where {!run} writes [manifest.json]. *)

val pp_manifest : Format.formatter -> manifest -> unit

(** {1 Configuration} *)

type isolation =
  | Fork
      (** each attempt in a [Unix.fork]ed child; preemptive SIGKILL
          deadlines; crashes cannot touch the supervisor *)
  | Domains
      (** OCaml 5 domain pool, in-process; exception-deep isolation and
          cooperative (post-hoc) deadline classification *)

val isolation_name : isolation -> string

type config = {
  parallelism : int;  (** jobs in flight at once *)
  isolation : isolation;
  deadline_s : float option;  (** per-attempt wall-clock budget *)
  retries : int;  (** extra attempts after the first *)
  backoff_s : float;  (** base backoff before the first retry *)
  seed : int;  (** root of every derived stream (backoff jitter) *)
  dir : string;  (** suite directory: journal, reports, manifest *)
  resume : bool;  (** skip journalled successes *)
  chaos : Exec_fault.plan option;  (** execution-fault injection *)
  cache : Cache.t option;
      (** artifact cache: a verified key hit materializes the cached
          report into the suite directory and journals a terminal [Ok]
          outcome (source [Cached]) without running the job; clean fresh
          runs are written through.  Composes with [resume]: the journal
          check runs first, then the cache. *)
  domains : int;
      (** replay worker domains inside each job's analysis
          ({!Threadfuser.Analyzer.options}); byte-identical reports at
          any value.  Orthogonal to [parallelism], which is job-level. *)
}

val default_config : config
(** parallelism 1, [Fork], no deadline, 1 retry, 0.25 s backoff, seed 1,
    dir [".tfsuite"], no resume, no chaos, no cache, 1 replay domain. *)

(** {1 Running} *)

val request_stop : unit -> unit
(** Ask a running {!run} to shut down gracefully (async-signal-safe: call
    it from a SIGINT/SIGTERM handler).  Fork isolation kills and reaps
    in-flight children; domains isolation lets in-flight jobs finish.
    Either way nothing new starts, every already-journalled outcome is
    fsync'd on disk, and the returned manifest has [interrupted = true] —
    a later [--resume] run re-runs exactly the unfinished jobs. *)

val run : ?config:config -> job list -> manifest
(** Execute the batch.  Creates [config.dir] (with [reports/] and [tmp/]),
    streams each terminal outcome to the journal, writes [manifest.json],
    and returns the manifest — entries in request order, duplicates (by
    {!job_id}) dropped with a warning.  Every job carries a small flight
    recorder of supervisor-side lifecycle events (attempts, retries,
    deadline kills; in domains mode also the job's own spans); a job that
    fails terminally dumps it to [flight/<id>.trace.json] +
    [.metrics.txt], referenced from its entry.  Raises [Invalid_argument]
    only on an empty job list or nonsensical config; job failures are
    data, not exceptions. *)
