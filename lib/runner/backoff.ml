(** Seeded exponential backoff with jitter for job retries.

    The delay before retrying a failed attempt doubles per attempt and is
    jittered to [0.5x, 1.5x) so a batch of jobs that failed together does
    not retry in lock-step (a thundering herd against whatever shared
    resource made them fail).  The jitter draw comes from a generator
    derived with {!Threadfuser_util.Lcg.derive} from the suite seed and
    the attempt index, so a given (seed, job, attempt) always waits the
    same time: suite runs are replayable end to end. *)

module Lcg = Threadfuser_util.Lcg

let max_delay_s = 30.

(** [delay_s ~base ~seed ~attempt] — delay after the failure of (1-based)
    [attempt].  [seed] should already be job-specific (the runner derives
    one stream per job).  Capped at {!max_delay_s}. *)
let delay_s ~base ~seed ~attempt =
  if attempt < 1 then invalid_arg "Backoff.delay_s: attempt is 1-based";
  let g = Lcg.create (Lcg.derive ~seed ~index:attempt) in
  let expo = base *. (2. ** float_of_int (attempt - 1)) in
  let jitter = 0.5 +. (float_of_int (Lcg.int g 1024) /. 1024.) in
  Float.min max_delay_s (expo *. jitter)
