(** Seeded exponential backoff with jitter (deterministic per
    (seed, attempt); see lib/runner/backoff.ml). *)

val max_delay_s : float

(** [delay_s ~base ~seed ~attempt] is the sleep before retrying after the
    failure of 1-based [attempt]: [base * 2^(attempt-1)], jittered to
    [0.5x, 1.5x) from a generator derived from [seed] and [attempt],
    capped at {!max_delay_s}.  Raises on [attempt < 1]. *)
val delay_s : base:float -> seed:int -> attempt:int -> float
