(** The suite runner's append-only checkpoint journal.

    One compact JSON record per terminal job outcome, one per line
    ([.tfsuite/journal.jsonl]), fsync'd after every append so a record
    either fully exists on disk or not at all — a SIGKILL'd suite loses at
    most the in-flight job.  [threadfuser suite --resume] replays the
    journal: successful records (whose report artifact still exists and
    parses as an analyzer report) let the job be skipped; anything
    unreadable — torn line, foreign JSON, missing or corrupt report file —
    is quarantined to [journal.quarantine] and the job simply re-runs.
    Corruption is never fatal.  See docs/robustness.md ("Supervision"). *)

module Json = Threadfuser_report.Json
module Report_json = Threadfuser_report.Report_json

let schema = "tfsuite-job/1"

type record = {
  id : string;  (** stable job id, see {!Runner.job_id} *)
  outcome : string;  (** "ok" | "degraded" | "crashed" | "timeout" | "gave-up" *)
  detail : string;  (** last error message; "" for successes *)
  attempts : int;
  duration_s : float;  (** wall clock of the final attempt *)
  report_file : string option;  (** dir-relative, successes only *)
}

let journal_file = "journal.jsonl"
let quarantine_file = "journal.quarantine"
let path dir = Filename.concat dir journal_file
let quarantine_path dir = Filename.concat dir quarantine_file

let success r = r.outcome = "ok" || r.outcome = "degraded"

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

type writer = { fd : Unix.file_descr }

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(** [open_writer ~fresh dir] — [fresh] truncates any previous journal
    (a non-resume run starts a new epoch); otherwise records append. *)
let open_writer ~fresh dir =
  mkdir_p dir;
  let flags =
    Unix.O_WRONLY :: Unix.O_CREAT
    :: (if fresh then [ Unix.O_TRUNC ] else [ Unix.O_APPEND ])
  in
  { fd = Unix.openfile (path dir) flags 0o644 }

let record_to_json r =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("id", Json.String r.id);
      ("outcome", Json.String r.outcome);
      ("detail", Json.String r.detail);
      ("attempts", Json.Int r.attempts);
      ("duration_s", Json.Float r.duration_s);
      ( "report",
        match r.report_file with Some f -> Json.String f | None -> Json.Null );
    ]

(* One write + fsync per record: the line is either durably whole or (if
   we die mid-write) torn — and a torn line is exactly what the loader
   quarantines. *)
let append w r =
  let line = Json.to_compact_string (record_to_json r) ^ "\n" in
  let n = String.length line in
  let written = Unix.write_substring w.fd line 0 n in
  if written <> n then failwith "Journal.append: short write";
  Unix.fsync w.fd

let close w = try Unix.close w.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Loading / validation                                                *)

let known_outcomes = [ "ok"; "degraded"; "crashed"; "timeout"; "gave-up" ]

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A record is trusted only if it decodes, names a known outcome, and —
   for successes — its report artifact still exists and parses as an
   analyzer report (lib/report's parser + shape validator). *)
let record_of_line ~dir line : (record, string) result =
  match Json.parse line with
  | Error m -> Error (Printf.sprintf "unparseable journal line: %s" m)
  | Ok j -> (
      let str k = Option.bind (Json.member k j) Json.to_string_opt in
      let int_ k = Option.bind (Json.member k j) Json.to_int_opt in
      let num k = Option.bind (Json.member k j) Json.to_float_opt in
      match (str "id", str "outcome", int_ "attempts", num "duration_s") with
      | Some id, Some outcome, Some attempts, Some duration_s ->
          if not (List.mem outcome known_outcomes) then
            Error (Printf.sprintf "unknown outcome %S" outcome)
          else
            let report_file = str "report" in
            let r =
              {
                id;
                outcome;
                detail = Option.value ~default:"" (str "detail");
                attempts;
                duration_s;
                report_file;
              }
            in
            if not (success r) then Ok r
            else (
              match report_file with
              | None -> Error "success record without a report file"
              | Some f -> (
                  let full = Filename.concat dir f in
                  match read_file full with
                  | exception Sys_error m ->
                      Error (Printf.sprintf "report unreadable: %s" m)
                  | contents -> (
                      match Json.parse contents with
                      | Error m ->
                          Error (Printf.sprintf "report corrupt: %s" m)
                      | Ok rj -> (
                          match Report_json.validate rj with
                          | Error m ->
                              Error (Printf.sprintf "report invalid: %s" m)
                          | Ok () -> Ok r))))
      | _ -> Error "journal record missing id/outcome/attempts/duration_s")

type loaded = {
  records : (string, record) Hashtbl.t;  (** last valid record per job id *)
  quarantined : int;  (** corrupt lines set aside, not fatal *)
}

(** Load and validate the journal under [dir].  Later records win (a
    resumed run appends fresh outcomes for re-run jobs).  Corrupt lines
    are appended to [journal.quarantine] with the reason and counted. *)
let load dir : loaded =
  let records = Hashtbl.create 64 in
  let quarantined = ref 0 in
  let p = path dir in
  if Sys.file_exists p then begin
    let ic = open_in_bin p in
    let quarantine_oc = ref None in
    let quarantine line reason =
      incr quarantined;
      let oc =
        match !quarantine_oc with
        | Some oc -> oc
        | None ->
            let oc =
              open_out_gen [ Open_append; Open_creat ] 0o644
                (quarantine_path dir)
            in
            quarantine_oc := Some oc;
            oc
      in
      Printf.fprintf oc "# %s\n%s\n" reason line
    in
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Option.iter close_out !quarantine_oc)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then
              match record_of_line ~dir line with
              | Ok r -> Hashtbl.replace records r.id r
              | Error reason -> quarantine line reason
          done
        with End_of_file -> ())
  end;
  { records; quarantined = !quarantined }
