(** The supervised suite runner: crash-isolated parallel analysis of any
    subset of the workload registry (optionally crossed with a config
    matrix), with per-job wall-clock deadlines, seeded retry/backoff, and
    checkpoint/resume.

    The paper's evaluation is a batch of 36 analyses; this module is the
    execution boundary that lets such a batch survive one bad job.  Two
    isolation modes:

    - {b Fork} (default): the supervisor stays single-threaded and runs
      every job attempt in a [Unix.fork]ed child, up to [parallelism] in
      flight.  A crashing, OOMing or runaway child cannot take the suite
      down; deadlines are enforced for real with SIGKILL.  (Keeping the
      parent single-threaded also sidesteps fork-in-multithreaded-process
      hazards.)
    - {b Domains}: an OCaml 5 domain pool running jobs in-process — no
      fork overhead, but isolation is only exception-deep and deadlines
      are classified post-hoc (a cooperative check when the job returns;
      the fuel watchdogs inside the emulator bound true runaways).

    Every terminal outcome is journalled ({!Journal}) so [--resume] skips
    completed work, and the suite always terminates with a {!manifest}
    accounting for 100% of requested jobs.  Instrumented end to end on the
    [Obs] "suite" track.  See docs/robustness.md ("Supervision"). *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Compiler = Threadfuser_compiler.Compiler
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics
module Json = Threadfuser_report.Json
module Report_json = Threadfuser_report.Report_json
module Exec_fault = Threadfuser_fault.Exec_fault
module Cache = Threadfuser_cache.Cache
module Lcg = Threadfuser_util.Lcg
module Obs = Threadfuser_obs.Obs
module Prom = Threadfuser_obs.Prom
module Trace_export = Threadfuser_obs.Trace_export
module Log = Threadfuser_obs.Log
module Stats = Threadfuser_stats.Stats

(* ------------------------------------------------------------------ *)
(* Jobs                                                                *)

type job = {
  workload : string;  (** registry name *)
  warp_size : int;
  level : Compiler.level;
  threads : int option;  (** [None] = the workload's default count *)
  scale : int;
}

let job ?(warp_size = 32) ?(level = Compiler.O1) ?threads ?(scale = 1) workload
    =
  { workload; warp_size; level; threads; scale }

(* The id doubles as the report filename stem and the journal key, so it
   must be stable and filesystem-safe (registry names already are). *)
let job_id j =
  Printf.sprintf "%s.w%d.%s.s%d%s" j.workload j.warp_size
    (Compiler.to_string j.level) j.scale
    (match j.threads with None -> "" | Some t -> Printf.sprintf ".t%d" t)

(** [matrix ~workloads ~warp_sizes ~levels ()] — the cross product, in
    workload-major order. *)
let matrix ~workloads ~warp_sizes ~levels ?threads ?(scale = 1) () =
  List.concat_map
    (fun workload ->
      List.concat_map
        (fun warp_size ->
          List.map
            (fun level -> { workload; warp_size; level; threads; scale })
            levels)
        warp_sizes)
    workloads

(* ------------------------------------------------------------------ *)
(* Outcomes                                                            *)

module Outcome = struct
  type t =
    | Ok  (** clean report *)
    | Degraded  (** partial report (quarantined threads) *)
    | Crashed of string  (** attempt died: exception, signal, bad artifact *)
    | Timeout  (** wall-clock deadline exceeded *)
    | Gave_up of string  (** retry budget exhausted; payload = last failure *)

  let name = function
    | Ok -> "ok"
    | Degraded -> "degraded"
    | Crashed _ -> "crashed"
    | Timeout -> "timeout"
    | Gave_up _ -> "gave-up"

  let detail = function
    | Ok | Degraded -> ""
    | Crashed m | Gave_up m -> m
    | Timeout -> "deadline exceeded"

  (** Successes are resumable; everything else re-runs under [--resume]. *)
  let success = function Ok | Degraded -> true | _ -> false
end

type source = Fresh | Resumed | Cached

let source_name = function
  | Fresh -> "fresh"
  | Resumed -> "resumed"
  | Cached -> "cached"

(* Bump when replay or report rendering changes semantically: it is part
   of every cache key, so stale-analyzer artifacts can never be served. *)
let analyzer_version = "tf-analyzer/1"

(* The cache key is the full input identity of an analysis.  The registry
   name plus scale/thread overrides pins the workload (registry workloads
   are generated deterministically from the suite seed baked into the
   binary); [analyzer_version] pins the code. *)
let cache_key (j : job) =
  {
    Cache.workload =
      (match j.threads with
      | None -> Printf.sprintf "%s.s%d" j.workload j.scale
      | Some t -> Printf.sprintf "%s.s%d.t%d" j.workload j.scale t);
    opt_level =
      (match j.level with
      | Compiler.O0 -> 0
      | Compiler.O1 -> 1
      | Compiler.O2 -> 2
      | Compiler.O3 -> 3);
    warp_size = j.warp_size;
    analyzer_version;
  }

type entry = {
  job : job;
  id : string;
  outcome : Outcome.t;
  attempts : int;
  duration_s : float;  (** wall clock of the final attempt *)
  source : source;
  report_file : string option;  (** relative to the suite directory *)
  flight_file : string option;
      (** flight-recorder trace for terminally-failed jobs, relative to
          the suite directory *)
}

type manifest = {
  entries : entry list;  (** one per requested job, in request order *)
  quarantined : int;  (** corrupt journal lines set aside during resume *)
  wall_s : float;
  interrupted : bool;  (** stopped by {!request_stop} before finishing *)
  cache_hits : int;  (** jobs served from the artifact cache *)
  cache_misses : int;  (** cache lookups that had to run the job *)
}

let all_ok m =
  (not m.interrupted) && List.for_all (fun e -> e.outcome = Outcome.Ok) m.entries

let failures m =
  List.filter (fun e -> not (Outcome.success e.outcome)) m.entries

(* ------------------------------------------------------------------ *)
(* Graceful shutdown: a signal handler (or any thread) requests a stop;
   the supervisors notice between jobs.  Fork isolation additionally
   kills in-flight children, so an interrupted suite exits promptly.
   Unfinished jobs are simply never journalled — the journal holds only
   fsync'd terminal outcomes, which is exactly what [--resume] replays. *)

let stop_requested = Atomic.make false

let request_stop () = Atomic.set stop_requested true

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type isolation = Fork | Domains

let isolation_name = function Fork -> "fork" | Domains -> "domains"

type config = {
  parallelism : int;  (** jobs in flight at once *)
  isolation : isolation;
  deadline_s : float option;  (** per-attempt wall-clock budget *)
  retries : int;  (** extra attempts after the first *)
  backoff_s : float;  (** base backoff before the first retry *)
  seed : int;  (** root of every derived stream (backoff jitter) *)
  dir : string;  (** suite directory: journal, reports, manifest *)
  resume : bool;  (** skip journalled successes *)
  chaos : Exec_fault.plan option;  (** execution-fault injection *)
  cache : Cache.t option;  (** artifact cache: hit = job skipped *)
  domains : int;  (** replay domains inside each job's analysis *)
}

let default_config =
  {
    parallelism = 1;
    isolation = Fork;
    deadline_s = None;
    retries = 1;
    backoff_s = 0.25;
    seed = 1;
    dir = ".tfsuite";
    resume = false;
    chaos = None;
    cache = None;
    domains = 1;
  }

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)

let suite_track = Obs.track "suite"

let c_spawned = Obs.Counter.make "tf_suite_attempts" ~help:"job attempts started"
let c_ok = Obs.Counter.make "tf_suite_jobs_ok" ~help:"jobs completing clean"

let c_degraded =
  Obs.Counter.make "tf_suite_jobs_degraded" ~help:"jobs with partial reports"

let c_crashed = Obs.Counter.make "tf_suite_jobs_crashed" ~help:"jobs crashed"

let c_timeout =
  Obs.Counter.make "tf_suite_jobs_timeout" ~help:"jobs past their deadline"

let c_gave_up =
  Obs.Counter.make "tf_suite_jobs_gave_up" ~help:"jobs out of retry budget"

let c_retries = Obs.Counter.make "tf_suite_retries" ~help:"retry attempts"

let c_resumed =
  Obs.Counter.make "tf_suite_jobs_resumed" ~help:"jobs skipped via --resume"

let bump_outcome = function
  | Outcome.Ok -> Obs.Counter.incr c_ok
  | Outcome.Degraded -> Obs.Counter.incr c_degraded
  | Outcome.Crashed _ -> Obs.Counter.incr c_crashed
  | Outcome.Timeout -> Obs.Counter.incr c_timeout
  | Outcome.Gave_up _ -> Obs.Counter.incr c_gave_up

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)

let reports_subdir = "reports"
let tmp_subdir = "tmp"
let flight_subdir = "flight"
let reports_dir dir = Filename.concat dir reports_subdir
let tmp_dir dir = Filename.concat dir tmp_subdir
let flight_dir dir = Filename.concat dir flight_subdir
let manifest_path dir = Filename.concat dir "manifest.json"
let report_rel id = Filename.concat reports_subdir (id ^ ".json")
let flight_rel id = Filename.concat flight_subdir (id ^ ".trace.json")

let write_text path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let read_text path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* The job body (shared by both isolation modes)                       *)

exception Injected_crash

(** Run one analysis to a report-JSON string.  Deterministic: replay and
    report rendering depend only on the job, never on scheduling. *)
let exec_job ~domains (j : job) : string * bool =
  let w = Registry.find j.workload in
  let options =
    {
      Analyzer.default_options with
      Analyzer.warp_size = j.warp_size;
      domains = max 1 domains;
    }
  in
  let r =
    W.analyze ~options ~level:j.level ?threads:j.threads ~scale:j.scale w
  in
  let rep = r.Analyzer.report in
  (Report_json.to_string rep, Metrics.degraded rep)

let apply_chaos_inproc chaos ~id ~attempt =
  match chaos with
  | None -> ()
  | Some plan -> (
      match Exec_fault.decide plan ~job:id ~attempt with
      | Exec_fault.No_fault -> ()
      | Exec_fault.Stall s -> Unix.sleepf s
      | Exec_fault.Crash -> raise Injected_crash)

(* Per-job backoff stream: derived from the suite seed and the job id, so
   two jobs never share jitter and a re-run waits identically. *)
let backoff_delay cfg ~id ~attempt =
  Backoff.delay_s ~base:cfg.backoff_s
    ~seed:(Lcg.derive ~seed:cfg.seed ~index:(Lcg.hash_string id))
    ~attempt

let final_outcome ~attempt failure =
  (* A first-attempt failure keeps its own kind; a failure that survived
     retries is a [Gave_up] carrying the last failure's description. *)
  if attempt = 1 then
    match failure with
    | `Timeout -> Outcome.Timeout
    | `Crash m -> Outcome.Crashed m
  else
    let last =
      match failure with `Timeout -> "deadline exceeded" | `Crash m -> m
    in
    Outcome.Gave_up (Printf.sprintf "%d attempts; last: %s" attempt last)

(* ------------------------------------------------------------------ *)
(* Pending-job state                                                   *)

type pending = {
  pjob : job;
  pid_ : string;  (** job id *)
  pidx : int;  (** original request order *)
  mutable attempt : int;  (** next attempt, 1-based *)
  mutable eligible : float;  (** unix time when the next attempt may start *)
  pfl : Obs.Flight.t;  (** per-job flight recorder (supervisor-side ring) *)
}

(* The per-job ring is small: supervisor-side lifecycle notes are a
   handful per attempt, and in domains mode the attached tap only adds
   the job's own spans. *)
let job_flight_capacity = 512

let fl_note (p : pending) ?(args = []) name =
  Obs.Flight.note p.pfl ~track:suite_track ~args name

(* A job out of retry budget dumps its flight recorder next to the
   reports: the ring's Chrome-trace timeline plus a metrics snapshot,
   named by job id so the manifest entry and the dump correlate. *)
let dump_job_flight cfg (p : pending) (outcome : Outcome.t) =
  fl_note p
    ~args:
      [
        ("outcome", Outcome.name outcome); ("detail", Outcome.detail outcome);
      ]
    "job failed terminally";
  let base = Filename.concat (flight_dir cfg.dir) p.pid_ in
  try
    Journal.mkdir_p (flight_dir cfg.dir);
    let snap = Obs.flight_snapshot p.pfl in
    Trace_export.to_file (base ^ ".trace.json") snap;
    Prom.to_file (base ^ ".metrics.txt") snap;
    Log.warn
      ~fields:[ ("job", p.pid_); ("trace", base ^ ".trace.json") ]
      "flight recorder dumped";
    Some (flight_rel p.pid_)
  with Sys_error m ->
    Log.err ~fields:[ ("job", p.pid_); ("error", m) ] "flight dump failed";
    None

(* ------------------------------------------------------------------ *)
(* Fork isolation                                                      *)

(* Child exit codes.  0 and [exit_degraded] both carry a report artifact;
   anything else is a crash. *)
let exit_degraded_child = 10
let exit_crashed_child = 20
let exit_injected = 42

type running = {
  rp : pending;
  pid : int;
  started_wall : float;
  started_obs : float;
  tmp : string;
}

let child_exec cfg (p : pending) tmp : 'never =
  (* No [Stdlib.exit] in the child: at_exit would flush buffers the parent
     also owns.  Everything funnels into [Unix._exit]. *)
  let code =
    try
      (match cfg.chaos with
      | None -> ()
      | Some plan -> (
          match Exec_fault.decide plan ~job:p.pid_ ~attempt:p.attempt with
          | Exec_fault.No_fault -> ()
          | Exec_fault.Stall s -> Unix.sleepf s
          | Exec_fault.Crash ->
              write_text (tmp ^ ".err") "injected crash";
              Unix._exit exit_injected));
      let json, degraded = exec_job ~domains:cfg.domains p.pjob in
      write_text tmp (json ^ "\n");
      if degraded then exit_degraded_child else 0
    with e ->
      (try write_text (tmp ^ ".err") (Printexc.to_string e) with _ -> ());
      exit_crashed_child
  in
  Unix._exit code

let spawn_counter = ref 0

let spawn_child cfg (p : pending) : running =
  incr spawn_counter;
  (* pid + counter in the tmp name: an orphan from a killed previous
     supervisor writing its stale result can never collide with ours *)
  let tmp =
    Filename.concat (tmp_dir cfg.dir)
      (Printf.sprintf "%s.%d.%d.json" p.pid_ (Unix.getpid ()) !spawn_counter)
  in
  flush stdout;
  flush stderr;
  let started_obs = Obs.now_us () in
  match Unix.fork () with
  | 0 -> child_exec cfg p tmp
  | pid ->
      Obs.Counter.incr c_spawned;
      fl_note p
        ~args:[ ("attempt", Obs.itos p.attempt); ("pid", Obs.itos pid) ]
        "attempt spawned";
      Log.debug
        ~fields:
          [
            ("job", p.pid_);
            ("attempt", string_of_int p.attempt);
            ("pid", string_of_int pid);
          ]
        "job attempt spawned";
      { rp = p; pid; started_wall = Unix.gettimeofday (); started_obs; tmp }

(* Read back and validate the child's artifact before trusting it: a
   half-written file from a child that died mid-write must classify as a
   crash, not poison the reports directory. *)
let harvest_artifact cfg (r : running) : (string, string) result =
  match read_text r.tmp with
  | exception Sys_error m -> Error (Printf.sprintf "no result artifact (%s)" m)
  | contents -> (
      match Json.parse contents with
      | Error m -> Error (Printf.sprintf "result artifact unparseable: %s" m)
      | Ok j -> (
          match Report_json.validate j with
          | Error m -> Error (Printf.sprintf "result artifact invalid: %s" m)
          | Ok () ->
              let rel = report_rel r.rp.pid_ in
              Sys.rename r.tmp (Filename.concat cfg.dir rel);
              Ok rel))

let cleanup_attempt_files (r : running) =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ r.tmp; r.tmp ^ ".err" ]

let err_detail (r : running) fallback =
  match read_text (r.tmp ^ ".err") with
  | s when String.trim s <> "" -> Printf.sprintf "%s: %s" fallback (String.trim s)
  | _ -> fallback
  | exception Sys_error _ -> fallback

type attempt_result =
  | A_success of bool * string  (** degraded?, dir-relative report *)
  | A_failed of [ `Crash of string | `Timeout ]

let classify_exit cfg (r : running) status : attempt_result =
  match status with
  | Unix.WEXITED c when c = 0 || c = exit_degraded_child -> (
      match harvest_artifact cfg r with
      | Ok rel -> A_success (c = exit_degraded_child, rel)
      | Error m -> A_failed (`Crash m))
  | Unix.WEXITED c ->
      A_failed (`Crash (err_detail r (Printf.sprintf "exit code %d" c)))
  | Unix.WSIGNALED s -> A_failed (`Crash (Printf.sprintf "killed by signal %d" s))
  | Unix.WSTOPPED s -> A_failed (`Crash (Printf.sprintf "stopped by signal %d" s))

let run_fork cfg (pendings : pending list) ~(finish : entry -> unit) =
  (* fork-in-multithreaded-process is the classic footgun: join any helper
     domains a previous analysis parked in the replay pool so every child
     starts single-threaded.  Children rebuild their own pool lazily if
     their job runs with [domains > 1]. *)
  Threadfuser.Par_replay.quiesce ();
  let waiting = ref pendings in
  let running = ref [] in
  let last_depth = ref (-1) in
  let note_depth () =
    if !Obs.enabled then begin
      let d = List.length !waiting + List.length !running in
      if d <> !last_depth then begin
        last_depth := d;
        Obs.instant ~track:suite_track "queue_depth"
          ~args:
            [
              ("waiting", string_of_int (List.length !waiting));
              ("running", string_of_int (List.length !running));
            ]
      end
    end
  in
  let span (r : running) outcome =
    if !Obs.enabled then
      Obs.complete ~track:suite_track r.rp.pid_
        ~ts:r.started_obs
        ~dur:(Obs.now_us () -. r.started_obs)
        ~args:
          [
            ("attempt", string_of_int r.rp.attempt);
            ("outcome", outcome);
          ]
  in
  let finalize (r : running) dur result =
    match result with
    | A_success (degraded, rel) ->
        span r (if degraded then "degraded" else "ok");
        fl_note r.rp
          ~args:[ ("attempt", Obs.itos r.rp.attempt) ]
          (if degraded then "attempt degraded" else "attempt ok");
        finish
          {
            job = r.rp.pjob;
            id = r.rp.pid_;
            outcome = (if degraded then Outcome.Degraded else Outcome.Ok);
            attempts = r.rp.attempt;
            duration_s = dur;
            source = Fresh;
            report_file = Some rel;
            flight_file = None;
          }
    | A_failed failure ->
        cleanup_attempt_files r;
        let failure_name =
          match failure with `Timeout -> "timeout" | `Crash _ -> "crash"
        in
        span r failure_name;
        fl_note r.rp
          ~args:[ ("attempt", Obs.itos r.rp.attempt); ("kind", failure_name) ]
          "attempt failed";
        if r.rp.attempt <= cfg.retries then begin
          (* budget left: back off and requeue *)
          Obs.Counter.incr c_retries;
          let delay = backoff_delay cfg ~id:r.rp.pid_ ~attempt:r.rp.attempt in
          fl_note r.rp
            ~args:[ ("backoff_s", Printf.sprintf "%.3f" delay) ]
            "retrying after backoff";
          Log.info
            ~fields:
              [
                ("job", r.rp.pid_);
                ("attempt", string_of_int r.rp.attempt);
                ("kind", failure_name);
                ("backoff_s", Printf.sprintf "%.3f" delay);
              ]
            "job attempt failed; retrying";
          r.rp.attempt <- r.rp.attempt + 1;
          r.rp.eligible <- Unix.gettimeofday () +. delay;
          waiting := !waiting @ [ r.rp ]
        end
        else begin
          let outcome = final_outcome ~attempt:r.rp.attempt failure in
          let flight_file = dump_job_flight cfg r.rp outcome in
          finish
            {
              job = r.rp.pjob;
              id = r.rp.pid_;
              outcome;
              attempts = r.rp.attempt;
              duration_s = dur;
              source = Fresh;
              report_file = None;
              flight_file;
            }
        end
  in
  while !waiting <> [] || !running <> [] do
    if Atomic.get stop_requested then begin
      (* interrupted: kill and reap every child, drop every queued job.
         Nothing is journalled for them, so --resume re-runs exactly
         these; the journal already holds an fsync'd line per finished
         job. *)
      List.iter
        (fun (r : running) ->
          (try Unix.kill r.pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] r.pid) with Unix.Unix_error _ -> ());
          cleanup_attempt_files r)
        !running;
      Log.warn
        ~fields:
          [
            ("killed", string_of_int (List.length !running));
            ("dropped", string_of_int (List.length !waiting));
          ]
        "suite interrupted; unfinished jobs left for --resume";
      running := [];
      waiting := []
    end;
    let now = Unix.gettimeofday () in
    (* spawn every eligible job up to the parallelism cap, request order *)
    let rec fill () =
      if List.length !running < cfg.parallelism then begin
        let eligible, not_yet =
          List.partition (fun p -> p.eligible <= now) !waiting
        in
        match List.sort (fun a b -> compare a.pidx b.pidx) eligible with
        | [] -> ()
        | p :: rest ->
            waiting := rest @ not_yet;
            running := !running @ [ spawn_child cfg p ];
            fill ()
      end
    in
    fill ();
    note_depth ();
    (* reap / enforce deadlines *)
    let still = ref [] in
    List.iter
      (fun (r : running) ->
        match Unix.waitpid [ Unix.WNOHANG ] r.pid with
        | 0, _ -> (
            match cfg.deadline_s with
            | Some d when Unix.gettimeofday () -. r.started_wall > d ->
                (try Unix.kill r.pid Sys.sigkill
                 with Unix.Unix_error _ -> ());
                ignore (Unix.waitpid [] r.pid);
                fl_note r.rp
                  ~args:[ ("deadline_s", Printf.sprintf "%.2f" d) ]
                  "attempt killed at deadline";
                Log.warn
                  ~fields:
                    [
                      ("job", r.rp.pid_);
                      ("attempt", string_of_int r.rp.attempt);
                      ("deadline_s", Printf.sprintf "%.2f" d);
                    ]
                  "job killed at deadline";
                finalize r (Unix.gettimeofday () -. r.started_wall)
                  (A_failed `Timeout)
            | _ -> still := r :: !still)
        | _, status ->
            finalize r
              (Unix.gettimeofday () -. r.started_wall)
              (classify_exit cfg r status))
      !running;
    running := List.rev !still;
    note_depth ();
    if !running = [] && !waiting <> [] then begin
      (* everyone is backing off: sleep to the soonest eligibility *)
      let soonest =
        List.fold_left (fun acc p -> Float.min acc p.eligible) infinity !waiting
      in
      let dt = soonest -. Unix.gettimeofday () in
      if dt > 0. then Unix.sleepf (Float.min dt 0.25)
    end
    else if !running <> [] then Unix.sleepf 0.004
  done

(* ------------------------------------------------------------------ *)
(* Domains isolation                                                   *)

let run_one_inproc cfg (p : pending) : entry =
  let rec go attempt =
    let started_wall = Unix.gettimeofday () in
    let started_obs = Obs.now_us () in
    Obs.Counter.incr c_spawned;
    fl_note p ~args:[ ("attempt", Obs.itos attempt) ] "attempt started";
    (* in-process: tap this domain so the attempt's own spans land in the
       job's ring alongside the supervisor's lifecycle notes *)
    let result =
      Obs.Flight.with_attached p.pfl (fun () ->
          try
            apply_chaos_inproc cfg.chaos ~id:p.pid_ ~attempt;
            let json, degraded = exec_job ~domains:cfg.domains p.pjob in
            `Done (json, degraded)
          with
          | Injected_crash -> `Crash "injected crash"
          | e -> `Crash (Printexc.to_string e))
    in
    let dur = Unix.gettimeofday () -. started_wall in
    (* cooperative deadline: the attempt ran to completion (or died), but
       past budget its result is discarded and classified [Timeout] —
       fork isolation is the mode with preemptive kills *)
    let result =
      match (result, cfg.deadline_s) with
      | `Done _, Some d when dur > d -> `Timeout
      | `Crash _, Some d when dur > d -> `Timeout
      | r, _ -> r
    in
    let span outcome =
      if !Obs.enabled then
        Obs.complete ~track:suite_track p.pid_ ~ts:started_obs
          ~dur:(Obs.now_us () -. started_obs)
          ~args:[ ("attempt", string_of_int attempt); ("outcome", outcome) ]
    in
    match result with
    | `Done (json, degraded) ->
        let rel = report_rel p.pid_ in
        write_text (Filename.concat cfg.dir rel) (json ^ "\n");
        span (if degraded then "degraded" else "ok");
        fl_note p
          ~args:[ ("attempt", Obs.itos attempt) ]
          (if degraded then "attempt degraded" else "attempt ok");
        {
          job = p.pjob;
          id = p.pid_;
          outcome = (if degraded then Outcome.Degraded else Outcome.Ok);
          attempts = attempt;
          duration_s = dur;
          source = Fresh;
          report_file = Some rel;
          flight_file = None;
        }
    | (`Timeout | `Crash _) as failure ->
        let failure =
          match failure with
          | `Timeout -> `Timeout
          | `Crash m -> `Crash m
        in
        let failure_name =
          match failure with `Timeout -> "timeout" | `Crash _ -> "crash"
        in
        span failure_name;
        fl_note p
          ~args:[ ("attempt", Obs.itos attempt); ("kind", failure_name) ]
          "attempt failed";
        if attempt <= cfg.retries then begin
          Obs.Counter.incr c_retries;
          Unix.sleepf (backoff_delay cfg ~id:p.pid_ ~attempt);
          go (attempt + 1)
        end
        else begin
          let outcome = final_outcome ~attempt failure in
          let flight_file = dump_job_flight cfg p outcome in
          {
            job = p.pjob;
            id = p.pid_;
            outcome;
            attempts = attempt;
            duration_s = dur;
            source = Fresh;
            report_file = None;
            flight_file;
          }
        end
  in
  go 1

let run_domains cfg (pendings : pending list) ~(finish : entry -> unit) =
  let m = Mutex.create () in
  let q = Queue.create () in
  List.iter (fun p -> Queue.add p q) pendings;
  let take () =
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () ->
        (* interrupted: in-flight jobs run to completion (in-process work
           cannot be safely killed) but nothing new starts *)
        let r =
          if Atomic.get stop_requested then None else Queue.take_opt q
        in
        if !Obs.enabled then
          Obs.instant ~track:suite_track "queue_depth"
            ~args:[ ("waiting", string_of_int (Queue.length q)) ];
        r)
  in
  let rec worker () =
    match take () with
    | None -> ()
    | Some p ->
        let entry = run_one_inproc cfg p in
        (* [finish] journals and aggregates; serialized across workers *)
        Mutex.lock m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock m)
          (fun () -> finish entry);
        worker ()
  in
  let extra = max 0 (min (cfg.parallelism - 1) (List.length pendings - 1)) in
  let domains = List.init extra (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)

let outcome_of_record (r : Journal.record) =
  match r.Journal.outcome with
  | "ok" -> Outcome.Ok
  | "degraded" -> Outcome.Degraded
  | "timeout" -> Outcome.Timeout
  | "gave-up" -> Outcome.Gave_up r.Journal.detail
  | _ -> Outcome.Crashed r.Journal.detail

let entry_to_json (e : entry) =
  Json.Obj
    [
      ("id", Json.String e.id);
      ("workload", Json.String e.job.workload);
      ("warp_size", Json.Int e.job.warp_size);
      ("opt_level", Json.String (Compiler.to_string e.job.level));
      ("scale", Json.Int e.job.scale);
      ( "threads",
        match e.job.threads with Some t -> Json.Int t | None -> Json.Null );
      ("outcome", Json.String (Outcome.name e.outcome));
      ("detail", Json.String (Outcome.detail e.outcome));
      ("attempts", Json.Int e.attempts);
      ("duration_s", Json.Float e.duration_s);
      ("source", Json.String (source_name e.source));
      ( "report",
        match e.report_file with Some f -> Json.String f | None -> Json.Null );
      ( "flight",
        match e.flight_file with Some f -> Json.String f | None -> Json.Null );
    ]

let count pred m = List.length (List.filter pred m.entries)

(* Fleet rollup: the manifest's per-job durations aggregated into the
   latency distribution and throughput a fleet dashboard wants, so suite
   consumers need not recompute them from the entries. *)
let rollup_json m =
  let durs = Array.of_list (List.map (fun e -> e.duration_s) m.entries) in
  let n = Array.length durs in
  let attempts = List.fold_left (fun a e -> a + e.attempts) 0 m.entries in
  let pct q = if n = 0 then 0.0 else Stats.percentile ~q durs in
  let mean =
    if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 durs /. float_of_int n
  in
  let lookups = m.cache_hits + m.cache_misses in
  Json.Obj
    [
      ("jobs", Json.Int n);
      ("attempts_total", Json.Int attempts);
      ( "jobs_per_s",
        Json.Float (if m.wall_s > 0.0 then float_of_int n /. m.wall_s else 0.0)
      );
      ("cache_hits", Json.Int m.cache_hits);
      ("cache_misses", Json.Int m.cache_misses);
      ( "cache_hit_ratio",
        Json.Float
          (if lookups = 0 then 0.0
           else float_of_int m.cache_hits /. float_of_int lookups) );
      ( "duration_s",
        Json.Obj
          [
            ("mean", Json.Float mean);
            ("p50", Json.Float (pct 0.5));
            ("p95", Json.Float (pct 0.95));
            ("p99", Json.Float (pct 0.99));
            ("max", Json.Float (Array.fold_left Float.max 0.0 durs));
          ] );
    ]

let manifest_to_json m =
  let by o = count (fun e -> Outcome.name e.outcome = o) m in
  Json.Obj
    [
      ("schema", Json.String "tfsuite-manifest/1");
      ("jobs", Json.Int (List.length m.entries));
      ( "counts",
        Json.Obj
          [
            ("ok", Json.Int (by "ok"));
            ("degraded", Json.Int (by "degraded"));
            ("crashed", Json.Int (by "crashed"));
            ("timeout", Json.Int (by "timeout"));
            ("gave_up", Json.Int (by "gave-up"));
            ("resumed", Json.Int (count (fun e -> e.source = Resumed) m));
            ("cached", Json.Int (count (fun e -> e.source = Cached) m));
          ] );
      ("quarantined_journal_lines", Json.Int m.quarantined);
      ("wall_s", Json.Float m.wall_s);
      ("interrupted", Json.Bool m.interrupted);
      ("rollup", rollup_json m);
      ("entries", Json.List (List.map entry_to_json m.entries));
    ]

let write_manifest dir m =
  write_text (manifest_path dir) (Json.to_string (manifest_to_json m) ^ "\n")

let pp_entry ppf (e : entry) =
  Fmt.pf ppf "  %-36s %-9s %2d attempt%s  %7.2fs  %s%s" e.id
    (Outcome.name e.outcome) e.attempts
    (if e.attempts = 1 then " " else "s")
    e.duration_s (source_name e.source)
    (match Outcome.detail e.outcome with
    | "" -> ""
    | d -> Printf.sprintf "  (%s)" d)

let pp_manifest ppf m =
  let by o = count (fun e -> Outcome.name e.outcome = o) m in
  Fmt.pf ppf
    "suite: %d job(s) — %d ok, %d degraded, %d crashed, %d timeout, %d \
     gave-up; %d resumed, %d corrupt journal line(s) quarantined — %.2f s@."
    (List.length m.entries) (by "ok") (by "degraded") (by "crashed")
    (by "timeout") (by "gave-up")
    (count (fun e -> e.source = Resumed) m)
    m.quarantined m.wall_s;
  if m.interrupted then
    Fmt.pf ppf
      "suite INTERRUPTED — unfinished jobs are not listed; run with \
       --resume to complete them@.";
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) m.entries

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let run ?(config = default_config) (jobs : job list) : manifest =
  if jobs = [] then invalid_arg "Runner.run: no jobs";
  if config.parallelism < 1 then invalid_arg "Runner.run: parallelism < 1";
  if config.retries < 0 then invalid_arg "Runner.run: negative retries";
  (* a stop request only spans one batch: a resume run in the same
     process starts fresh *)
  Atomic.set stop_requested false;
  let t_start = Unix.gettimeofday () in
  (* dedup while preserving request order: the id is the journal key, so a
     duplicate would race itself *)
  let seen = Hashtbl.create 64 in
  let jobs =
    List.filter
      (fun j ->
        let id = job_id j in
        if Hashtbl.mem seen id then begin
          Log.warn ~fields:[ ("job", id) ] "duplicate suite job dropped";
          false
        end
        else begin
          Hashtbl.add seen id ();
          true
        end)
      jobs
  in
  Journal.mkdir_p (reports_dir config.dir);
  Journal.mkdir_p (tmp_dir config.dir);
  let prior =
    if config.resume then Journal.load config.dir
    else { Journal.records = Hashtbl.create 1; quarantined = 0 }
  in
  let writer = Journal.open_writer ~fresh:(not config.resume) config.dir in
  let results : (string, entry) Hashtbl.t = Hashtbl.create 64 in
  let cache_hits = ref 0 and cache_misses = ref 0 in
  let finish (e : entry) =
    Hashtbl.replace results e.id e;
    bump_outcome e.outcome;
    (* write-through: only clean fresh runs are cached, so a hit always
       certifies a verified, non-degraded report *)
    (match config.cache with
    | Some c when e.source = Fresh && e.outcome = Outcome.Ok -> (
        match e.report_file with
        | Some rel -> (
            try
              Cache.put c ~key:(cache_key e.job) ~kind:Cache.Report
                (read_text (Filename.concat config.dir rel))
            with exn ->
              Log.warn
                ~fields:
                  [ ("job", e.id); ("error", Printexc.to_string exn) ]
                "cache put failed; continuing uncached")
        | None -> ())
    | _ -> ());
    Journal.append writer
      {
        Journal.id = e.id;
        outcome = Outcome.name e.outcome;
        detail = Outcome.detail e.outcome;
        attempts = e.attempts;
        duration_s = e.duration_s;
        report_file = e.report_file;
      };
    Log.info
      ~fields:
        [
          ("job", e.id);
          ("outcome", Outcome.name e.outcome);
          ("attempts", string_of_int e.attempts);
        ]
      "job finished"
  in
  Log.info
    ~fields:
      [
        ("jobs", string_of_int (List.length jobs));
        ("parallelism", string_of_int config.parallelism);
        ("isolation", isolation_name config.isolation);
        ("resume", string_of_bool config.resume);
      ]
    "suite starting";
  (* artifact-cache lookup: a verified hit materializes the report into
     the suite directory and journals a terminal outcome, so [--resume]
     composes with hits exactly as with any other success *)
  let try_cache (j : job) ~id =
    match config.cache with
    | None -> false
    | Some c -> (
        let on_corrupt d =
          Log.warn
            ~fields:
              [
                ("job", id);
                ("error", Threadfuser_util.Tf_error.to_string d);
              ]
            "corrupt cache entry quarantined"
        in
        match
          Cache.find ~on_corrupt c ~key:(cache_key j) ~kind:Cache.Report
        with
        | exception exn ->
            Log.warn
              ~fields:[ ("job", id); ("error", Printexc.to_string exn) ]
              "cache lookup failed; running job";
            incr cache_misses;
            false
        | None ->
            incr cache_misses;
            false
        | Some payload ->
            incr cache_hits;
            let rel = report_rel id in
            write_text (Filename.concat config.dir rel) payload;
            finish
              {
                job = j;
                id;
                outcome = Outcome.Ok;
                attempts = 0;
                duration_s = 0.0;
                source = Cached;
                report_file = Some rel;
                flight_file = None;
              };
            true)
  in
  (* resume: journalled successes (already re-validated by Journal.load)
     become manifest entries without running anything *)
  let pendings =
    List.mapi (fun i j -> (i, j)) jobs
    |> List.filter_map (fun (i, j) ->
           let id = job_id j in
           match Hashtbl.find_opt prior.Journal.records id with
           | Some r when Journal.success r ->
               Obs.Counter.incr c_resumed;
               Hashtbl.replace results id
                 {
                   job = j;
                   id;
                   outcome = outcome_of_record r;
                   attempts = r.Journal.attempts;
                   duration_s = r.Journal.duration_s;
                   source = Resumed;
                   report_file = r.Journal.report_file;
                   flight_file = None;
                 };
               None
           | _ ->
               if try_cache j ~id then None
               else
                 Some
                   {
                     pjob = j;
                     pid_ = id;
                     pidx = i;
                     attempt = 1;
                     eligible = 0.0;
                     pfl = Obs.Flight.create ~capacity:job_flight_capacity id;
                   })
  in
  Fun.protect
    ~finally:(fun () -> Journal.close writer)
    (fun () ->
      if pendings <> [] then
        match config.isolation with
        | Fork -> run_fork config pendings ~finish
        | Domains -> run_domains config pendings ~finish);
  let interrupted = Atomic.get stop_requested in
  (* on an interrupt some jobs never produced an entry; the manifest
     still accounts for every finished one *)
  let entries =
    List.filter_map (fun j -> Hashtbl.find_opt results (job_id j)) jobs
  in
  let m =
    {
      entries;
      quarantined = prior.Journal.quarantined;
      wall_s = Unix.gettimeofday () -. t_start;
      interrupted;
      cache_hits = !cache_hits;
      cache_misses = !cache_misses;
    }
  in
  write_manifest config.dir m;
  m
