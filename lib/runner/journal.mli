(** Append-only, fsync'd checkpoint journal for the suite runner: one
    compact JSON record per terminal job outcome ([journal.jsonl] under
    the suite directory).  On load, records are validated — successes must
    still have a parseable report artifact (checked with lib/report) — and
    corrupt lines are quarantined to [journal.quarantine], never fatal.
    See docs/robustness.md ("Supervision") for the format. *)

val schema : string

type record = {
  id : string;
  outcome : string;  (** "ok" | "degraded" | "crashed" | "timeout" | "gave-up" *)
  detail : string;
  attempts : int;
  duration_s : float;
  report_file : string option;  (** relative to the suite directory *)
}

val path : string -> string
(** [path dir] — the journal file under suite directory [dir]. *)

val mkdir_p : string -> unit
(** Recursive directory creation (shared with the runner's suite dir). *)

val quarantine_path : string -> string

val success : record -> bool
(** "ok" or "degraded": outcomes whose jobs a resumed run may skip. *)

type writer

val open_writer : fresh:bool -> string -> writer
(** Open the journal under a suite directory (created if needed).
    [~fresh:true] truncates (new epoch); [~fresh:false] appends (resume). *)

val append : writer -> record -> unit
(** Write one record as a single line and fsync it. *)

val close : writer -> unit

type loaded = {
  records : (string, record) Hashtbl.t;  (** last valid record per job id *)
  quarantined : int;  (** corrupt lines set aside (see quarantine file) *)
}

val load : string -> loaded
