(** Workload definitions and the trace/analyze runners.

    A workload bundles a CPU (MIMD) implementation — and, for the paper's 11
    correlation workloads, a CUDA-style SPMD variant — with its input setup
    and per-thread argument generator.  Thread counts follow the paper's
    Table I ([table_threads]) but default to a scaled-down count so the full
    36-workload evaluation runs in seconds; the scale is configurable
    everywhere. *)

open Threadfuser_prog
module Compiler = Threadfuser_compiler.Compiler
module Machine = Threadfuser_machine.Machine
module Memory = Threadfuser_machine.Memory
module Thread_trace = Threadfuser_trace.Thread_trace
module Analyzer = Threadfuser.Analyzer

type category =
  | Correlation (* has a CUDA counterpart; used in Fig. 5/6 *)
  | Microservice (* μSuite / DeathStarBench; Figs. 8, 9, 10 *)
  | Parsec
  | Other

type variant = {
  program : Surface.t; (* workload functions; runtime lib appended later *)
  worker : string;
  setup : Memory.t -> scale:int -> unit;
  args : tid:int -> n:int -> scale:int -> int list;
}

type t = {
  name : string;
  suite : string; (* "Rodinia 3.1", "μSuite", ... as in Table I *)
  category : category;
  description : string;
  table_threads : int; (* #SIMT threads from the paper's Table I *)
  default_threads : int; (* scaled-down default used here *)
  alloc : Rtlib.alloc_mode; (* allocator the workload links against *)
  cpu : variant;
  cuda : variant option;
}

let make ?(category = Other) ?(alloc = Rtlib.Concurrent) ?cuda ~name ~suite
    ~description ~table_threads ~default_threads cpu =
  {
    name;
    suite;
    category;
    description;
    table_threads;
    default_threads;
    alloc;
    cpu;
    cuda;
  }

(* ------------------------------------------------------------------ *)
(* Runners                                                             *)

type traced = {
  prog : Threadfuser_prog.Program.t;
  traces : Thread_trace.t array;
  n_threads : int;
}

let link ?(alloc = Rtlib.Concurrent) (v : variant) level =
  let surface = v.program @ Rtlib.funcs alloc in
  Compiler.compile level surface

(* The machine quantum is 1 block so that lock contention interleaves, as
   preemption does on a real, oversubscribed CPU. *)
let machine_config =
  { Machine.default_config with quantum = 8; spin_cost = 2 }

let trace_variant ?(level = Compiler.O1) ~alloc ~threads ~scale (v : variant) :
    traced =
  let prog = link ~alloc v level in
  let m = Machine.create ~config:machine_config prog in
  Rtlib.init (Machine.memory m);
  v.setup (Machine.memory m) ~scale;
  let args = Array.init threads (fun tid -> v.args ~tid ~n:threads ~scale) in
  let r = Machine.run_workers m ~worker:v.worker ~args in
  { prog; traces = r.Machine.traces; n_threads = threads }

(** Trace the CPU (MIMD) implementation.  [exclude] names functions whose
    execution is hidden from the trace (paper §III's selective tracing). *)
let trace_cpu ?level ?threads ?(scale = 1) ?(exclude = []) (w : t) : traced =
  let threads = Option.value ~default:w.default_threads threads in
  let v = w.cpu in
  let prog = link ~alloc:w.alloc v (Option.value ~default:Compiler.O1 level) in
  let config = { machine_config with Machine.untraced_functions = exclude } in
  let m = Machine.create ~config prog in
  Rtlib.init (Machine.memory m);
  v.setup (Machine.memory m) ~scale;
  let args = Array.init threads (fun tid -> v.args ~tid ~n:threads ~scale) in
  let r = Machine.run_workers m ~worker:v.worker ~args in
  { prog; traces = r.Machine.traces; n_threads = threads }

(** Trace the CUDA-style SPMD variant (correlation workloads only).  The
    "nvcc" pipeline is fixed at O2: GPU compilers always optimize, and the
    paper found nvcc less aggressive than gcc -O3 (no if-conversion of
    divergent diamonds). *)
let trace_cuda ?threads ?(scale = 1) (w : t) : traced option =
  Option.map
    (fun v ->
      let threads = Option.value ~default:w.default_threads threads in
      trace_variant ~level:Compiler.O2 ~alloc:w.alloc ~threads ~scale v)
    w.cuda

(** Full pipeline: trace the CPU variant and analyze it. *)
let analyze ?(options = Analyzer.default_options) ?level ?threads ?scale
    ?exclude (w : t) : Analyzer.result =
  let tr = trace_cpu ?level ?threads ?scale ?exclude w in
  Analyzer.analyze ~options tr.prog tr.traces

let category_name = function
  | Correlation -> "correlation"
  | Microservice -> "microservice"
  | Parsec -> "parsec"
  | Other -> "other"
