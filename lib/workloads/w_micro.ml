(** Microbenchmarks (Table I "Micro Benchmark"): VectorAdd and an
    uncoalesced vector multiply-add — the two kernels the paper wrote to
    anchor the memory-divergence correlation.  Both are control-uniform
    (SIMT efficiency 1.0); they differ only in access pattern. *)

open Threadfuser_prog.Build
open Threadfuser_isa
open Wl_common

let elems_per_thread = 4

let a_base = region 0

let b_base = region 1

let c_base = region 2

let setup mem ~scale =
  let n = 4096 * scale in
  fill_random mem ~seed:11 ~addr:a_base ~n ~bound:1_000_000;
  fill_random mem ~seed:12 ~addr:b_base ~n ~bound:1_000_000

let args ~tid ~n ~scale:_ = [ tid; n ]

(* Grid-stride mapping, element index = (tid + k*n) * stride: adjacent
   threads touch adjacent elements, as a GPU kernel would.  [stride] = 1 is
   perfectly coalesced; [stride] = 16 puts lanes 128 bytes apart. *)
let vector_kernel ~name ~stride =
  func name
    [
      (* r0 = tid, r1 = n *)
      mov (reg 6) (reg 0);
      for_up ~i:7 ~from_:(imm 0) ~below:(imm elems_per_thread)
        [
          mov (reg 8) (reg 7);
          mul (reg 8) (reg 1);
          add (reg 8) (reg 6);
          mul (reg 8) (imm (8 * stride));
          mov (reg 9) (mem ~base:8 ~disp:a_base ());
          fadd (reg 9) (mem ~base:8 ~disp:b_base ());
          fmul (reg 9) (imm 3);
          mov (mem ~base:8 ~disp:c_base ()) (reg 9);
        ];
      ret;
    ]

(* CUDA flavour: pointer-walking instead of indexed addressing (what nvcc
   emits for the canonical grid-stride kernel); same elements touched. *)
let vector_kernel_cuda ~name ~stride =
  func name
    [
      mov (reg 6) (reg 0);
      mul (reg 6) (imm (8 * stride));
      mov (reg 10) (reg 1);
      mul (reg 10) (imm (8 * stride));
      (* per-iteration pointer step *)
      mov (reg 7) (imm 0);
      while_ Cond.Lt (reg 7) (imm elems_per_thread)
        [
          mov (reg 9) (mem ~base:6 ~disp:a_base ());
          fadd (reg 9) (mem ~base:6 ~disp:b_base ());
          fmul (reg 9) (imm 3);
          mov (mem ~base:6 ~disp:c_base ()) (reg 9);
          add (reg 6) (reg 10);
          add (reg 7) (imm 1);
        ];
      ret;
    ]

let mk ~name ~description ~stride =
  Workload.make ~category:Workload.Correlation ~name ~suite:"Micro Benchmark"
    ~description ~table_threads:1024 ~default_threads:128
    ~cuda:
      {
        Workload.program = [ vector_kernel_cuda ~name:"worker" ~stride ];
        worker = "worker";
        setup;
        args;
      }
    {
      Workload.program = [ vector_kernel ~name:"worker" ~stride ];
      worker = "worker";
      setup;
      args;
    }

let vectoradd =
  mk ~name:"vectoradd" ~stride:1
    ~description:"unit-stride vector multiply-add; fully coalesced"

let uncoalesced =
  mk ~name:"uncoalesced" ~stride:16
    ~description:"128-byte-strided vector multiply-add; one transaction per lane"

let all = [ vectoradd; uncoalesced ]
