(** The full studied-workload catalog — the paper's Table I: 36 workloads
    across six suites, 11 of them with CUDA-style counterparts. *)

val all : Workload.t list

(** The 11 workloads with CUDA variants (the §IV correlation set). *)
val correlation : Workload.t list

(** The 13 μSuite + DeathStarBench services (Figs. 8, 9, 10). *)
val microservices : Workload.t list

(** The Fig. 7 case-study variant (not part of the 36). *)
val hdsearch_mid_fixed : Workload.t

(** Lookup by name (including [hdsearch-mid-fixed]). *)
val find_opt : string -> Workload.t option

(** Nearest registered name by edit distance, when close enough to be a
    plausible typo ([hdserch-mid] → [hdsearch-mid]). *)
val suggest : string -> string option

(** Lookup by name (including [hdsearch-mid-fixed]); raises
    [Invalid_argument] — with a did-you-mean hint when one is close — on
    unknown names.  CLI code paths should prefer {!find_opt} + {!suggest}
    and map the miss to a usage error. *)
val find : string -> Workload.t

val names : unit -> string list
