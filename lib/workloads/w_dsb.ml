(** DeathStarBench social-network microservices (Table I): Post, Text,
    UrlShort, UniqueID, UserTag and User.  One SIMT thread = one request.
    UniqueID deliberately uses one coarse global lock (its real
    implementation guards a shared sequence counter), making it the Fig. 9
    showcase for intra-warp lock serialization; the others use fine-grained
    sharded locks. *)

open Threadfuser_prog.Build
open Threadfuser_isa
open Wl_common
module Memory = Threadfuser_machine.Memory

let req_base = region 10

let text_bytes = 64

let setup_requests mem ~seed ~threads =
  (* request text: spaces roughly every 2-9 bytes to form tokens *)
  let g = Threadfuser_util.Lcg.create seed in
  for t = 0 to threads - 1 do
    let base = req_base + (text_bytes * t) in
    let i = ref 0 in
    while !i < text_bytes do
      let tok = Threadfuser_util.Lcg.int_range g 2 9 in
      for j = !i to min (text_bytes - 1) (!i + tok - 1) do
        Memory.store_byte mem (base + j) (97 + Threadfuser_util.Lcg.int g 26)
      done;
      i := !i + tok;
      if !i < text_bytes then begin
        Memory.store_byte mem (base + !i) 32;
        incr i
      end
    done
  done

let mk ~name ~description ?(default_threads = 64) ?(alloc = Rtlib.Concurrent)
    program ~setup ~worker =
  Workload.make ~category:Workload.Microservice ~alloc ~name
    ~suite:"DeathStarBench" ~description ~table_threads:2048 ~default_threads
    { Workload.program; worker; setup; args = (fun ~tid ~n:_ ~scale:_ -> [ tid ]) }

(* r6 = this request's text address *)
let load_text_addr =
  seq [ mov (reg 6) (reg 0); mul (reg 6) (imm text_bytes); add (reg 6) (imm req_base) ]

(* Tokenize the 64-byte text: count space-separated tokens into r12.
   Token lengths are data-dependent, so the inner state machine diverges
   mildly across requests. *)
let tokenize_loop =
  seq
    [
      mov (reg 12) (imm 0);
      mov (reg 7) (imm 0);
      while_ Cond.Lt (reg 7) (imm text_bytes)
        [
          mov ~w:Width.W1 (reg 8) (mem ~base:6 ~index:7 ());
          if_ Cond.Eq (reg 8) (imm 32) ~then_:[ add (reg 12) (imm 1) ] ();
          add (reg 7) (imm 1);
        ];
    ]

(* ------------------------------------------------------------------ *)

module Post = struct
  let shard_locks = 64

  let shard_heads = region 0

  let setup mem ~scale =
    ignore scale;
    setup_requests mem ~seed:61 ~threads:512;
    ignore mem

  let worker =
    func "worker"
      [
        io_in (imm 80);
        load_text_addr;
        tokenize_loop;
        (* allocate the post object and copy the text into it *)
        mov (reg 0) (imm (text_bytes + 32));
        call "__malloc";
        mov (reg 9) (reg 0);
        mov (mem ~base:9 ()) (reg 12);
        (* token count header *)
        mov (reg 0) (reg 9);
        add (reg 0) (imm 16);
        mov (reg 1) (reg 6);
        mov (reg 2) (imm text_bytes);
        call "__memcpy";
        (* link into the author's shard under a sharded lock *)
        mov (reg 10) (reg 0);
        rem (reg 10) (imm shard_locks);
        mov (reg 11) (reg 10);
        mul (reg 11) (imm 64);
        add (reg 11) (imm lock_base);
        lock_acquire (reg 11);
        mov (reg 13) (mem ~scale:8 ~index:10 ~disp:shard_heads ());
        mov (mem ~base:9 ~disp:8 ()) (reg 13);
        mov (mem ~scale:8 ~index:10 ~disp:shard_heads ()) (reg 9);
        lock_release (reg 11);
        io_out (imm 60);
        ret;
      ]

  let workload =
    mk ~name:"post" ~description:"compose post: tokenize, allocate, shard insert"
      [ worker ] ~setup ~worker:"worker"
end

module Text = struct
  let url_table = region 0 (* 64 known-url hashes *)

  let setup mem ~scale =
    ignore scale;
    setup_requests mem ~seed:62 ~threads:512;
    fill_random mem ~seed:63 ~addr:url_table ~n:64 ~bound:(1 lsl 30)

  let worker =
    func "worker"
      [
        io_in (imm 35);
        load_text_addr;
        tokenize_loop;
        (* token hashes land in a heap-allocated buffer *)
        mov (reg 0) (imm 64);
        call "__malloc";
        mov (reg 10) (reg 0);
        (* hash each 8-byte chunk and check it against the url table *)
        mov (reg 13) (imm 0);
        for_up ~i:7 ~from_:(imm 0) ~below:(imm (text_bytes / 8))
          [
            mov (reg 0) (reg 6);
            mov (reg 8) (reg 7);
            shl (reg 8) (imm 3);
            add (reg 0) (reg 8);
            mov (reg 1) (imm 8);
            call "__hash";
            mov (mem ~base:10 ~index:7 ~scale:8 ()) (reg 0);
            and_ (reg 0) (imm 63);
            mov (reg 9) (mem ~scale:8 ~index:0 ~disp:url_table ());
            if_ Cond.Ne (reg 9) (imm 0) ~then_:[ add (reg 13) (imm 1) ] ();
          ];
        io_out (imm 35);
        mov (reg 0) (reg 13);
        ret;
      ]

  let workload =
    mk ~name:"text" ~description:"text service: tokenize and url-match"
      [ worker ] ~setup ~worker:"worker"
end

module Urlshort = struct
  let table = region 0

  let n_buckets = 64

  let setup mem ~scale =
    ignore scale;
    setup_requests mem ~seed:64 ~threads:512

  let worker =
    func "worker"
      [
        io_in (imm 40);
        load_text_addr;
        mov (reg 0) (reg 6);
        mov (reg 1) (imm 32);
        call "__hash";
        mov (reg 7) (reg 0);
        (* base62-encode: fixed 7-digit loop *)
        mov (reg 8) (imm 0);
        for_up ~i:9 ~from_:(imm 0) ~below:(imm 7)
          [
            mov (reg 10) (reg 7);
            rem (reg 10) (imm 62);
            shl (reg 8) (imm 6);
            or_ (reg 8) (reg 10);
            div (reg 7) (imm 62);
          ];
        (* insert under a bucket lock *)
        mov (reg 11) (reg 8);
        rem (reg 11) (imm n_buckets);
        mov (reg 12) (reg 11);
        mul (reg 12) (imm 64);
        add (reg 12) (imm lock_base);
        lock_acquire (reg 12);
        mov (mem ~scale:8 ~index:11 ~disp:table ()) (reg 8);
        lock_release (reg 12);
        io_out (imm 40);
        mov (reg 0) (reg 8);
        ret;
      ]

  let workload =
    mk ~name:"urlshort" ~description:"url shortener: hash, base62, bucket insert"
      [ worker ] ~setup ~worker:"worker"
end

module Uniqueid = struct
  let counter = region 0

  let coarse_lock = lock_base + (63 * 64)

  let setup mem ~scale =
    ignore scale;
    setup_requests mem ~seed:65 ~threads:512

  let worker =
    func "worker"
      [
        io_in (imm 20);
        (* timestamp-ish arithmetic from the request id (murmur-style) *)
        mov (reg 6) (reg 0);
        for_up ~i:8 ~from_:(imm 0) ~below:(imm 6)
          [
            mul (reg 6) (imm 1_000_003);
            mov (reg 9) (reg 6);
            shr (reg 9) (imm 23);
            xor (reg 6) (reg 9);
            and_ (reg 6) (imm 0x3fffffffffff);
          ];
        xor (reg 6) (imm 0x5bd1e995);
        (* one coarse lock guards the shared sequence counter *)
        lock_acquire (imm coarse_lock);
        mov (reg 7) (mem ~disp:counter ());
        add (reg 7) (imm 1);
        mov (mem ~disp:counter ()) (reg 7);
        lock_release (imm coarse_lock);
        shl (reg 6) (imm 12);
        or_ (reg 6) (reg 7);
        io_out (imm 20);
        mov (reg 0) (reg 6);
        ret;
      ]

  let workload =
    mk ~name:"uniqueid"
      ~description:"id generator: coarse-locked shared counter (Fig. 9 stressor)"
      [ worker ] ~setup ~worker:"worker"
end

module Usertag = struct
  let tag_offsets = region 0 (* per user: offset and count into the tag pool *)

  let tag_pool = region 1

  let filter = region 2 (* 8 filter tags *)

  let setup mem ~scale =
    ignore scale;
    setup_requests mem ~seed:66 ~threads:512;
    let g = Threadfuser_util.Lcg.create 67 in
    let off = ref 0 in
    for u = 0 to 511 do
      let count = Threadfuser_util.Lcg.int_range g 4 16 in
      Memory.store_i64 mem (tag_offsets + (16 * u)) !off;
      Memory.store_i64 mem (tag_offsets + (16 * u) + 8) count;
      for _ = 1 to count do
        Memory.store_i64 mem (tag_pool + (8 * !off)) (Threadfuser_util.Lcg.int g 128);
        incr off
      done
    done;
    fill_random mem ~seed:68 ~addr:filter ~n:8 ~bound:128

  let worker =
    func "worker"
      [
        io_in (imm 40);
        (* user's tag slice: offset r7, count r8 (data-dependent) *)
        mov (reg 6) (reg 0);
        shl (reg 6) (imm 4);
        mov (reg 7) (mem ~base:6 ~disp:tag_offsets ());
        mov (reg 8) (mem ~base:6 ~disp:(tag_offsets + 8) ());
        mov (reg 13) (imm 0);
        (* the match list is a heap-allocated vector *)
        mov (reg 0) (imm 128);
        call "__malloc";
        mov (reg 5) (reg 0);
        (* intersect with the 8 filter tags *)
        mov (reg 9) (imm 0);
        while_ Cond.Lt (reg 9) (reg 8)
          [
            mov (reg 10) (reg 7);
            add (reg 10) (reg 9);
            mov (reg 10) (mem ~scale:8 ~index:10 ~disp:tag_pool ());
            for_up ~i:11 ~from_:(imm 0) ~below:(imm 8)
              [
                mov (reg 12) (mem ~scale:8 ~index:11 ~disp:filter ());
                if_ Cond.Eq (reg 12) (reg 10)
                  ~then_:
                    [
                      mov (mem ~base:5 ~index:13 ~scale:8 ()) (reg 10);
                      add (reg 13) (imm 1);
                    ]
                  ();
              ];
            add (reg 9) (imm 1);
          ];
        io_out (imm 40);
        mov (reg 0) (reg 13);
        ret;
      ]

  let workload =
    mk ~name:"usertag" ~description:"tag intersection with variable set sizes"
      [ worker ] ~setup ~worker:"worker"
end

module User = struct
  let pw_hashes = region 0

  let setup mem ~scale =
    ignore scale;
    setup_requests mem ~seed:69 ~threads:512;
    (* store the 4-round hash of each request's first 16 bytes so logins
       succeed *)
    for t = 0 to 511 do
      let addr = req_base + (text_bytes * t) in
      let h = ref (W_usuite.host_fnv mem addr 16) in
      for _ = 1 to 12 do
        h := !h * 0x1000193;
        h := !h lxor (!h lsr 15);
        h := !h land 0x3fffffffffff
      done;
      Memory.store_i64 mem (pw_hashes + (8 * t)) !h
    done

  let worker =
    func "worker"
      [
        io_in (imm 25);
        mov (reg 10) (reg 0);
        (* user id *)
        load_text_addr;
        mov (reg 0) (reg 6);
        mov (reg 1) (imm 16);
        call "__hash";
        (* three extra key-stretching rounds; all-uniform *)
        for_up ~i:7 ~from_:(imm 0) ~below:(imm 12)
          [
            mul (reg 0) (imm 0x1000193);
            mov (reg 8) (reg 0);
            shr (reg 8) (imm 15);
            xor (reg 0) (reg 8);
            and_ (reg 0) (imm 0x3fffffffffff);
          ];
        (* compare against the stored credential *)
        mov (reg 9) (mem ~scale:8 ~index:10 ~disp:pw_hashes ());
        mov (reg 11) (reg 0);
        if_ Cond.Eq (reg 9) (reg 11)
          ~then_:[ mov (reg 12) (imm 1) ]
          ~else_:[ mov (reg 12) (imm 0) ]
          ();
        (* session token allocated on the heap *)
        mov (reg 0) (imm 24);
        call "__malloc";
        mov (mem ~base:0 ()) (reg 11);
        mov (mem ~base:0 ~disp:8 ()) (reg 12);
        io_out (imm 25);
        mov (reg 0) (reg 12);
        ret;
      ]

  let workload =
    mk ~name:"user" ~description:"login: key-stretched hash compare"
      [ worker ] ~setup ~worker:"worker"
end

let all =
  [
    Post.workload;
    Text.workload;
    Urlshort.workload;
    Uniqueid.workload;
    Usertag.workload;
    User.workload;
  ]
