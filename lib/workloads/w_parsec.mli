(** ParSec 3.0 workloads (Table I): blackscholes, streamcluster, bodytrack,
    facesim, fluidanimate, freqmine, swaptions, vips, x264. *)

val all : Workload.t list
