(** Paropoly correlation workloads (Table I): BFS, Connected Components,
    PageRank and N-body.  The paper reimplemented these with pthreads, so —
    unlike Rodinia — the CPU and CUDA variants here are structurally
    different programs (e.g. the CPU N-body uses an array-of-structures
    layout where the CUDA version uses structure-of-arrays), which injects
    the realistic correlation error the paper reports. *)

open Threadfuser_prog.Build
open Threadfuser_isa
open Wl_common
module Memory = Threadfuser_machine.Memory
module Lcg = Threadfuser_util.Lcg

let mk ~name ~description ~table_threads ?(default_threads = 128) ~cuda cpu =
  Workload.make ~category:Workload.Correlation ~name ~suite:"Paropoly"
    ~description ~table_threads ~default_threads ~cuda cpu

(* ------------------------------------------------------------------ *)
(* BFS: the pthread version is edge-centric; the CUDA one node-centric. *)

module Bfs = struct
  let src = region 0

  let dst = region 1

  let level = region 2

  let row_off = region 3 (* CSR (kept for graph construction checks) *)

  let cols = region 4

  let edges_aos = region 5 (* (src,dst) 16-byte records for the CUDA port *)

  let n_nodes scale = 256 * scale

  let edges_per_thread = 8

  let setup mem ~scale =
    let n = n_nodes scale in
    let g = Lcg.create 31 in
    (* random edges, grouped by source so both variants see the same graph *)
    let adj = Array.init n (fun _ -> List.init (Lcg.int_range g 1 8) (fun _ -> Lcg.int g n)) in
    let e = ref 0 in
    Array.iteri
      (fun u nbrs ->
        Memory.store_i64 mem (row_off + (8 * u)) !e;
        List.iter
          (fun v ->
            Memory.store_i64 mem (src + (8 * !e)) u;
            Memory.store_i64 mem (dst + (8 * !e)) v;
            Memory.store_i64 mem (cols + (8 * !e)) v;
            Memory.store_i64 mem (edges_aos + (16 * !e)) u;
            Memory.store_i64 mem (edges_aos + (16 * !e) + 8) v;
            incr e)
          nbrs)
      adj;
    Memory.store_i64 mem (row_off + (8 * n)) !e;
    set_param mem 0 !e;
    (* current level = 2 for ~35% of nodes *)
    for i = 0 to n - 1 do
      if Lcg.chance g 35 100 then Memory.store_i64 mem (level + (8 * i)) 2
    done

  (* pthread/CPU: one thread per chunk of edges *)
  let cpu_worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        mul (reg 6) (imm edges_per_thread);
        mov (reg 7) (reg 6);
        add (reg 7) (imm edges_per_thread);
        min_ (reg 7) (p 0);
        while_ Cond.Lt (reg 6) (reg 7)
          [
            mov (reg 8) (mem ~scale:8 ~index:6 ~disp:src ());
            if_ Cond.Eq (mem ~scale:8 ~index:8 ~disp:level ()) (imm 2)
              ~then_:
                [ seq
                   [
                     mov (reg 9) (mem ~scale:8 ~index:6 ~disp:dst ());
                     if_ Cond.Eq (mem ~scale:8 ~index:9 ~disp:level ()) (imm 0)
                       ~then_:
                         [
                           atomic_rmw Op.Max
                             (mem ~scale:8 ~index:9 ~disp:level ())
                             (imm 3);
                         ]
                       ();
                   ] ]
              ();
            add (reg 6) (imm 1);
          ];
        ret;
      ]

  (* CUDA: the same edge-centric algorithm, but reading 16-byte AoS edge
     records (the GPU port packs (src,dst) pairs) instead of two separate
     arrays — same control flow, different memory profile. *)
  let cuda_worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        mul (reg 6) (imm edges_per_thread);
        mov (reg 7) (reg 6);
        add (reg 7) (imm edges_per_thread);
        min_ (reg 7) (p 0);
        while_ Cond.Lt (reg 6) (reg 7)
          [
            mov (reg 10) (reg 6);
            shl (reg 10) (imm 4);
            mov (reg 8) (mem ~base:10 ~disp:edges_aos ());
            if_ Cond.Eq (mem ~scale:8 ~index:8 ~disp:level ()) (imm 2)
              ~then_:
                [ seq
                    [
                      mov (reg 9) (mem ~base:10 ~disp:(edges_aos + 8) ());
                      if_ Cond.Eq (mem ~scale:8 ~index:9 ~disp:level ()) (imm 0)
                        ~then_:
                          [
                            atomic_rmw Op.Max
                              (mem ~scale:8 ~index:9 ~disp:level ())
                              (imm 3);
                          ]
                        ();
                    ] ]
              ();
            add (reg 6) (imm 1);
          ];
        ret;
      ]

  let args = (fun ~tid ~n:_ ~scale:_ -> [ tid ])

  let workload =
    mk ~name:"bfs-par" ~description:"edge-centric BFS level (CPU) vs node-centric (CUDA)"
      ~table_threads:4096
      ~cuda:{ Workload.program = [ cuda_worker ]; worker = "worker"; setup; args }
      { Workload.program = [ cpu_worker ]; worker = "worker"; setup; args }
end

(* ------------------------------------------------------------------ *)
(* Connected Components by label propagation.                          *)

module Cc = struct
  let row_off = region 0

  let cols = region 1

  let labels = region 2

  let changed = region 3

  let setup mem ~scale =
    let n = 256 * scale in
    let g = Lcg.create 32 in
    let e = ref 0 in
    for u = 0 to n - 1 do
      Memory.store_i64 mem (row_off + (8 * u)) !e;
      let deg = Lcg.int_range g 1 6 in
      for _ = 1 to deg do
        Memory.store_i64 mem (cols + (8 * !e)) (Lcg.int g n);
        incr e
      done;
      Memory.store_i64 mem (labels + (8 * u)) u
    done;
    Memory.store_i64 mem (row_off + (8 * n)) !e

  (* CPU: branchy running minimum + conditional store *)
  let cpu_worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        mov (reg 9) (mem ~scale:8 ~index:6 ~disp:labels ());
        mov (reg 10) (reg 9);
        mov (reg 7) (mem ~scale:8 ~index:6 ~disp:row_off ());
        lea 8 (mem ~base:6 ~disp:1 ());
        mov (reg 8) (mem ~scale:8 ~index:8 ~disp:row_off ());
        while_ Cond.Lt (reg 7) (reg 8)
          [
            mov (reg 11) (mem ~scale:8 ~index:7 ~disp:cols ());
            mov (reg 12) (mem ~scale:8 ~index:11 ~disp:labels ());
            if_ Cond.Lt (reg 12) (reg 9) ~then_:[ mov (reg 9) (reg 12) ] ();
            add (reg 7) (imm 1);
          ];
        if_ Cond.Lt (reg 9) (reg 10)
          ~then_:
            [
              mov (mem ~scale:8 ~index:6 ~disp:labels ()) (reg 9);
              atomic_rmw Op.Or (mem ~disp:changed ()) (imm 1);
            ]
          ();
        ret;
      ]

  (* CUDA: min-based, branch-free inner loop *)
  let cuda_worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        mov (reg 9) (mem ~scale:8 ~index:6 ~disp:labels ());
        mov (reg 10) (reg 9);
        mov (reg 7) (mem ~scale:8 ~index:6 ~disp:row_off ());
        lea 8 (mem ~base:6 ~disp:1 ());
        mov (reg 8) (mem ~scale:8 ~index:8 ~disp:row_off ());
        while_ Cond.Lt (reg 7) (reg 8)
          [
            mov (reg 11) (mem ~scale:8 ~index:7 ~disp:cols ());
            min_ (reg 9) (mem ~scale:8 ~index:11 ~disp:labels ());
            add (reg 7) (imm 1);
          ];
        if_ Cond.Lt (reg 9) (reg 10)
          ~then_:
            [
              mov (mem ~scale:8 ~index:6 ~disp:labels ()) (reg 9);
              atomic_rmw Op.Or (mem ~disp:changed ()) (imm 1);
            ]
          ();
        ret;
      ]

  let args = (fun ~tid ~n:_ ~scale:_ -> [ tid ])

  let workload =
    mk ~name:"cc" ~description:"connected components label propagation"
      ~table_threads:4096
      ~cuda:{ Workload.program = [ cuda_worker ]; worker = "worker"; setup; args }
      { Workload.program = [ cpu_worker ]; worker = "worker"; setup; args }
end

(* ------------------------------------------------------------------ *)
(* PageRank over in-edges.                                             *)

module Pagerank = struct
  let row_off = region 0

  let cols = region 1

  let rank = region 2

  let degree = region 3

  let contrib = region 4 (* CUDA precomputes rank/degree *)

  let out = region 5

  let setup mem ~scale =
    let n = 256 * scale in
    let g = Lcg.create 33 in
    let e = ref 0 in
    for u = 0 to n - 1 do
      Memory.store_i64 mem (row_off + (8 * u)) !e;
      let deg = Lcg.int_range g 1 10 in
      for _ = 1 to deg do
        Memory.store_i64 mem (cols + (8 * !e)) (Lcg.int g n);
        incr e
      done;
      let r = Lcg.int_range g 1000 10_000 in
      let d = Lcg.int_range g 1 10 in
      Memory.store_i64 mem (rank + (8 * u)) r;
      Memory.store_i64 mem (degree + (8 * u)) d;
      Memory.store_i64 mem (contrib + (8 * u)) (r / d)
    done;
    Memory.store_i64 mem (row_off + (8 * n)) !e

  (* CPU: divide inside the gather loop *)
  let cpu_worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        mov (reg 9) (imm 0);
        mov (reg 7) (mem ~scale:8 ~index:6 ~disp:row_off ());
        lea 8 (mem ~base:6 ~disp:1 ());
        mov (reg 8) (mem ~scale:8 ~index:8 ~disp:row_off ());
        while_ Cond.Lt (reg 7) (reg 8)
          [
            mov (reg 10) (mem ~scale:8 ~index:7 ~disp:cols ());
            mov (reg 11) (mem ~scale:8 ~index:10 ~disp:rank ());
            fdiv (reg 11) (mem ~scale:8 ~index:10 ~disp:degree ());
            fadd (reg 9) (reg 11);
            add (reg 7) (imm 1);
          ];
        fmul (reg 9) (imm 85);
        fdiv (reg 9) (imm 100);
        fadd (reg 9) (imm 150);
        mov (mem ~scale:8 ~index:6 ~disp:out ()) (reg 9);
        ret;
      ]

  (* CUDA: gathers precomputed contributions (one load per edge) *)
  let cuda_worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        mov (reg 9) (imm 0);
        mov (reg 7) (mem ~scale:8 ~index:6 ~disp:row_off ());
        lea 8 (mem ~base:6 ~disp:1 ());
        mov (reg 8) (mem ~scale:8 ~index:8 ~disp:row_off ());
        while_ Cond.Lt (reg 7) (reg 8)
          [
            mov (reg 10) (mem ~scale:8 ~index:7 ~disp:cols ());
            fadd (reg 9) (mem ~scale:8 ~index:10 ~disp:contrib ());
            add (reg 7) (imm 1);
          ];
        fmul (reg 9) (imm 85);
        fdiv (reg 9) (imm 100);
        fadd (reg 9) (imm 150);
        mov (mem ~scale:8 ~index:6 ~disp:out ()) (reg 9);
        ret;
      ]

  let args = (fun ~tid ~n:_ ~scale:_ -> [ tid ])

  let workload =
    mk ~name:"pagerank" ~description:"PageRank gather over variable in-degree"
      ~table_threads:4096
      ~cuda:{ Workload.program = [ cuda_worker ]; worker = "worker"; setup; args }
      { Workload.program = [ cpu_worker ]; worker = "worker"; setup; args }
end

(* ------------------------------------------------------------------ *)
(* N-body: AoS on the CPU, SoA in the CUDA variant.                    *)

module Nbody = struct
  let bodies_aos = region 0 (* x,y,z,m interleaved, 32 B per body *)

  let xs = region 1

  let ys = region 2

  let zs = region 3

  let ms = region 4

  let acc = region 5

  let n_bodies = 128

  let setup mem ~scale =
    ignore scale;
    let g = Lcg.create 34 in
    for i = 0 to n_bodies - 1 do
      let x = Lcg.int g 10_000
      and y = Lcg.int g 10_000
      and z = Lcg.int g 10_000
      and m = Lcg.int_range g 1 100 in
      Memory.store_i64 mem (bodies_aos + (32 * i)) x;
      Memory.store_i64 mem (bodies_aos + (32 * i) + 8) y;
      Memory.store_i64 mem (bodies_aos + (32 * i) + 16) z;
      Memory.store_i64 mem (bodies_aos + (32 * i) + 24) m;
      Memory.store_i64 mem (xs + (8 * i)) x;
      Memory.store_i64 mem (ys + (8 * i)) y;
      Memory.store_i64 mem (zs + (8 * i)) z;
      Memory.store_i64 mem (ms + (8 * i)) m
    done

  (* shared force kernel body; [load_j] fetches body j's fields *)
  let force_loop ~load_self ~load_j =
    seq
      [
        (* r6 = i; r10,r11,r12 = my x,y,z; r9 = accumulated force *)
        mov (reg 6) (reg 0);
        seq load_self;
        mov (reg 9) (imm 0);
        mov (reg 7) (imm 0);
        while_ Cond.Lt (reg 7) (imm n_bodies)
          (seq
             [
               seq load_j;
               (* r1,r2,r3 = xj,yj,zj; r4 = mj *)
               fsub (reg 1) (reg 10);
               fmul (reg 1) (reg 1);
               fsub (reg 2) (reg 11);
               fmul (reg 2) (reg 2);
               fsub (reg 3) (reg 12);
               fmul (reg 3) (reg 3);
               fadd (reg 1) (reg 2);
               fadd (reg 1) (reg 3);
               fadd (reg 1) (imm 13);
               (* softening *)
               mov (reg 5) (reg 1);
               fsqrt (reg 5);
               fmul (reg 5) (reg 1);
               (* r4 * 1e6 / (r2 * r) *)
               fmul (reg 4) (imm 1_000_000);
               fdiv (reg 4) (reg 5);
               fadd (reg 9) (reg 4);
               add (reg 7) (imm 1);
             ]
           :: []);
        mov (mem ~scale:8 ~index:6 ~disp:acc ()) (reg 9);
        ret;
      ]

  let cpu_worker =
    func "worker"
      [
        force_loop
          ~load_self:
            [
              mov (reg 8) (reg 0);
              shl (reg 8) (imm 5);
              mov (reg 10) (mem ~base:8 ~disp:bodies_aos ());
              mov (reg 11) (mem ~base:8 ~disp:(bodies_aos + 8) ());
              mov (reg 12) (mem ~base:8 ~disp:(bodies_aos + 16) ());
            ]
          ~load_j:
            [
              mov (reg 8) (reg 7);
              shl (reg 8) (imm 5);
              mov (reg 1) (mem ~base:8 ~disp:bodies_aos ());
              mov (reg 2) (mem ~base:8 ~disp:(bodies_aos + 8) ());
              mov (reg 3) (mem ~base:8 ~disp:(bodies_aos + 16) ());
              mov (reg 4) (mem ~base:8 ~disp:(bodies_aos + 24) ());
            ];
      ]

  let cuda_worker =
    func "worker"
      [
        force_loop
          ~load_self:
            [
              mov (reg 10) (mem ~scale:8 ~index:0 ~disp:xs ());
              mov (reg 11) (mem ~scale:8 ~index:0 ~disp:ys ());
              mov (reg 12) (mem ~scale:8 ~index:0 ~disp:zs ());
            ]
          ~load_j:
            [
              mov (reg 1) (mem ~scale:8 ~index:7 ~disp:xs ());
              mov (reg 2) (mem ~scale:8 ~index:7 ~disp:ys ());
              mov (reg 3) (mem ~scale:8 ~index:7 ~disp:zs ());
              mov (reg 4) (mem ~scale:8 ~index:7 ~disp:ms ());
            ];
      ]

  let args = (fun ~tid ~n:_ ~scale:_ -> [ tid ])

  let workload =
    mk ~name:"nbody" ~description:"all-pairs N-body (AoS on CPU, SoA on GPU)"
      ~table_threads:4096 ~default_threads:n_bodies
      ~cuda:{ Workload.program = [ cuda_worker ]; worker = "worker"; setup; args }
      { Workload.program = [ cpu_worker ]; worker = "worker"; setup; args }
end

let all = [ Bfs.workload; Cc.workload; Pagerank.workload; Nbody.workload ]
