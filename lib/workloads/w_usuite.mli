(** μSuite microservices (Table I): McRouter x3, TextSearch x2,
    HDSearch x2 — including the Fig. 7 HDSearch-Midtier case study. *)

val all : Workload.t list

(** The SIMT-aware-fix variant of hdsearch-mid (Fig. 7's 6% -> 90%). *)
val hdsearch_mid_fixed : Workload.t

(** Host-side FNV identical to the runtime library's [__hash] (used to
    build hit tables whose keys the IR code re-hashes). *)
val host_fnv : Threadfuser_machine.Memory.t -> int -> int -> int
