(** The IR runtime library linked into every workload program.

    Provides the services a C++ workload gets from libc/libstdc++, written
    in the mini-ISA itself so their instructions and synchronization show up
    in traces exactly like the real library code does under PIN:

    - [__malloc]: dynamic allocation.  In [Glibc] mode a single global
      mutex guards the heap — the paper's observation that the glibc
      allocator serializes threads inside [new] (§V-B).  In [Concurrent]
      mode each thread bumps a private arena derived from its TLS base,
      modelling a fine-grained, high-throughput data-center allocator.
    - [__free]: records the free (glibc mode takes the same lock).
    - [__rand]: per-thread 48-bit LCG seeded from the TLS address.
    - [__hash]: FNV-1a over a byte range.
    - [__memcpy]: byte copy loop.

    Register discipline: all runtime functions use r0..r5 only (arguments
    and scratch), so callers keep long-lived values in r6..r13. *)

open Threadfuser_isa
open Threadfuser_prog
open Build
module Layout = Threadfuser_machine.Layout

type alloc_mode = Glibc | Concurrent

(* Global runtime state (inside the globals segment). *)
let heap_break = 0x10000 (* glibc-mode bump pointer *)

let alloc_lock = 0x10008 (* glibc-mode allocator mutex *)

let alloc_count = 0x10010 (* allocation counter (bookkeeping traffic) *)

(* TLS offsets used by the runtime (the O0 spill pass uses 0..0x70). *)
let tls_bump = 0x700 (* concurrent-mode per-thread bump pointer *)

let tls_rand = 0x708 (* per-thread PRNG state *)

let arena_bytes = 256 * 1024

(** Host-side initialization of runtime globals; run before any workload. *)
let init mem =
  Threadfuser_machine.Memory.store_i64 mem heap_break Layout.heap_base

(* __malloc, glibc flavour: one global lock around the heap bump.  The
   critical section does real work (header write, counter update) so
   serialized threads burn representative instructions. *)
let malloc_glibc =
  func "__malloc"
    [
      (* round the size up to 16 and add a 16-byte header *)
      add (reg 0) (imm 31);
      and_ (reg 0) (imm (-16));
      lock_acquire (imm alloc_lock);
      mov (reg 1) (mem ~disp:heap_break ());
      mov (reg 2) (reg 1);
      add (reg 2) (reg 0);
      mov (mem ~disp:heap_break ()) (reg 2);
      binop Op.Add (mem ~disp:alloc_count ()) (imm 1);
      (* header: stored size *)
      mov (mem ~base:1 ()) (reg 0);
      lock_release (imm alloc_lock);
      mov (reg 0) (reg 1);
      add (reg 0) (imm 16);
      ret;
    ]

(* __malloc, concurrent flavour: lock-free per-thread arenas.  The arena
   base is derived from the TLS base, which is unique per thread. *)
let malloc_concurrent =
  func "__malloc"
    [
      add (reg 0) (imm 31);
      and_ (reg 0) (imm (-16));
      mov (reg 1) (mem ~base:Reg.tls ~disp:tls_bump ());
      if_ Cond.Eq (reg 1) (imm 0)
        ~then_:
          [ seq
             [
               (* arena = heap_base + thread_index * arena_bytes *)
               mov (reg 1) tls;
               sub (reg 1) (imm Layout.stack_region_base);
               div (reg 1) (imm Layout.stack_size);
               mul (reg 1) (imm arena_bytes);
               add (reg 1) (imm Layout.heap_base);
             ] ]
        ();
      mov (reg 2) (reg 1);
      add (reg 2) (reg 0);
      mov (mem ~base:Reg.tls ~disp:tls_bump ()) (reg 2);
      mov (mem ~base:1 ()) (reg 0);
      mov (reg 0) (reg 1);
      add (reg 0) (imm 16);
      ret;
    ]

let free_glibc =
  func "__free"
    [
      lock_acquire (imm alloc_lock);
      binop Op.Sub (mem ~disp:alloc_count ()) (imm 1);
      lock_release (imm alloc_lock);
      ret;
    ]

let free_concurrent = func "__free" [ ret ]

(* __rand: Java-style 48-bit LCG per thread; state lives in TLS and is
   lazily seeded from the TLS base (unique per thread). *)
let rand_fn =
  func "__rand"
    [
      mov (reg 0) (mem ~base:Reg.tls ~disp:tls_rand ());
      if_ Cond.Eq (reg 0) (imm 0)
        ~then_:
          [ seq [ mov (reg 0) tls; mul (reg 0) (imm 2654435761); add (reg 0) (imm 12345) ] ]
        ();
      mul (reg 0) (imm 0x5deece66d);
      add (reg 0) (imm 0xb);
      and_ (reg 0) (imm 0xffffffffffff);
      mov (mem ~base:Reg.tls ~disp:tls_rand ()) (reg 0);
      shr (reg 0) (imm 16);
      ret;
    ]

(* __hash: FNV-1a over [r0, r0+r1); result in r0. *)
let hash_fn =
  func "__hash"
    [
      mov (reg 2) (reg 0);
      mov (reg 3) (reg 0);
      add (reg 3) (reg 1);
      mov (reg 0) (imm 0x1b873593);
      while_ Cond.Lt (reg 2) (reg 3)
        [
          mov ~w:Width.W1 (reg 4) (mem ~base:2 ());
          xor (reg 0) (reg 4);
          mul (reg 0) (imm 0x1000193);
          and_ (reg 0) (imm 0x3fffffffffff);
          add (reg 2) (imm 1);
        ];
      ret;
    ]

(* __memcpy(dst=r0, src=r1, n=r2): byte loop; returns dst. *)
let memcpy_fn =
  func "__memcpy"
    [
      mov (reg 3) (imm 0);
      while_ Cond.Lt (reg 3) (reg 2)
        [
          mov ~w:Width.W1 (reg 4) (mem ~base:1 ~index:3 ());
          mov ~w:Width.W1 (mem ~base:0 ~index:3 ()) (reg 4);
          add (reg 3) (imm 1);
        ];
      ret;
    ]

(** Runtime functions for the chosen allocator mode; append to every
    workload's function list before assembly. *)
let funcs mode : Surface.t =
  let malloc, free =
    match mode with
    | Glibc -> (malloc_glibc, free_glibc)
    | Concurrent -> (malloc_concurrent, free_concurrent)
  in
  [ malloc; free; rand_fn; hash_fn; memcpy_fn ]
