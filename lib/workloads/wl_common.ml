(** Shared layout constants and host-setup helpers for workload modules.

    Every workload machine instance is fresh, so all workloads share the
    same global-segment map: a parameter block at [param 0..] plus data
    regions 1 MiB apart.  Setup code writes inputs with the deterministic
    {!Threadfuser_util.Lcg} generator so runs are reproducible. *)

module Memory = Threadfuser_machine.Memory
module Lcg = Threadfuser_util.Lcg

(* Parameter block: workloads read scalars from here. *)
let param k = 0x11000 + (8 * k)

(* Data regions: 1 MiB apart, all below the heap base. *)
let region k =
  if k < 0 || k > 200 then invalid_arg "Wl_common.region";
  0x100000 * (k + 1)

(* Lock tables for fine-grained locking live in their own region. *)
let lock_base = 0x18000

let lock_slot i = lock_base + (64 * i) (* cache-line spaced *)

let set_param mem k v = Memory.store_i64 mem (param k) v

(** Fill [n] 64-bit words at [addr] with uniform values in [0, bound). *)
let fill_random mem ~seed ~addr ~n ~bound =
  let g = Lcg.create seed in
  for i = 0 to n - 1 do
    Memory.store_i64 mem (addr + (8 * i)) (Lcg.int g bound)
  done

(** Fill [n] bytes at [addr]; [skew] biases towards repeated runs (higher =
    more compressible, used by the pigz workload). *)
let fill_random_bytes mem ~seed ~addr ~n ~skew =
  let g = Lcg.create seed in
  let prev = ref 0 in
  for i = 0 to n - 1 do
    let b = if Lcg.chance g skew 100 then !prev else Lcg.int g 256 in
    prev := b;
    Memory.store_byte mem (addr + i) b
  done

(* Builder shorthand used across workload modules. *)
let p k = Threadfuser_prog.Build.mem ~disp:(param k) ()
