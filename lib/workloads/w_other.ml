(** The remaining Table I workloads: Pigz (parallel gzip — the paper's
    canonical low-efficiency case), Rotate and MD5 (from the TU-Berlin
    benchmark suite [7] — both near-perfectly uniform). *)

open Threadfuser_prog.Build
open Threadfuser_isa
open Wl_common
module Memory = Threadfuser_machine.Memory

(* ------------------------------------------------------------------ *)
(* pigz: per-thread 1 KiB block, greedy LZ77 with a hash chain.         *)

module Pigz = struct
  let block_bytes = 1024

  let data = region 0

  let out_lens = region 8

  (* per-thread 256-entry hash table of last positions, in TLS *)
  let tls_htab = 0x400

  let setup mem ~scale =
    ignore scale;
    (* blocks of very different compressibility: thread t's block repeats
       with probability ~ (t mod 16) / 16 *)
    for t = 0 to 255 do
      fill_random_bytes mem ~seed:(90 + t)
        ~addr:(data + (block_bytes * t))
        ~n:block_bytes
        ~skew:(97 * (t mod 32) / 32)
    done

  (* Huffman-style literal emission: a balanced branch tree over byte
     classes, each leaf doing distinct bit-packing work.  Deflate's
     length/literal code table has exactly this shape, and it is what makes
     pigz's control flow so SIMT-hostile: every lane takes a different leaf
     almost every iteration. *)
  let rec literal_emit lo hi depth =
    if depth = 0 then
      (* leaf: class-specific emission work *)
      seq
        [
          mov (reg 4) (reg 5);
          shl (reg 4) (imm (1 + (lo / 32 mod 5)));
          xor (reg 4) (imm (lo * 2654435761));
          add (reg 13) (reg 4);
          shr (reg 13) (imm (lo / 64 mod 3));
          and_ (reg 13) (imm 0xffffff);
          add (reg 7) (imm 1);
        ]
    else begin
      let mid = (lo + hi) / 2 in
      if_ Cond.Lt (reg 5) (imm mid)
        ~then_:[ literal_emit lo mid (depth - 1) ]
        ~else_:[ literal_emit mid hi (depth - 1) ]
        ()
    end

  let worker =
    func "worker"
      [
        (* r6 = block base, r7 = pos, r8 = end, r13 = emitted tokens *)
        mov (reg 6) (reg 0);
        mul (reg 6) (imm block_bytes);
        add (reg 6) (imm data);
        mov (reg 7) (imm 0);
        mov (reg 13) (imm 0);
        while_ Cond.Lt (reg 7) (imm (block_bytes - 8))
          [
            (* hash the 3 bytes at pos *)
            mov ~w:Width.W1 (reg 9) (mem ~base:6 ~index:7 ());
            mov ~w:Width.W1 (reg 10) (mem ~base:6 ~index:7 ~disp:1 ());
            shl (reg 10) (imm 4);
            xor (reg 9) (reg 10);
            mov ~w:Width.W1 (reg 10) (mem ~base:6 ~index:7 ~disp:2 ());
            shl (reg 10) (imm 2);
            xor (reg 9) (reg 10);
            and_ (reg 9) (imm 255);
            (* candidate = htab[h]; htab[h] = pos *)
            shl (reg 9) (imm 3);
            add (reg 9) (imm tls_htab);
            add (reg 9) tls;
            mov (reg 10) (mem ~base:9 ());
            mov (mem ~base:9 ()) (reg 7);
            (* match length: extend while bytes equal (data-dependent!) *)
            mov (reg 11) (imm 0);
            if_ Cond.Gt (reg 7) (imm 0)
              ~then_:
                [ seq
                   [
                     label ".extend";
                     cmp (reg 11) (imm 192);
                     jcc Cond.Ge ".extend_done";
                     mov (reg 4) (reg 10);
                     add (reg 4) (reg 11);
                     cmp (reg 4) (reg 7);
                     jcc Cond.Ge ".extend_done";
                     mov ~w:Width.W1 (reg 5) (mem ~base:6 ~index:4 ());
                     mov (reg 3) (reg 7);
                     add (reg 3) (reg 11);
                     cmp ~w:Width.W1 (reg 5) (mem ~base:6 ~index:3 ());
                     jcc Cond.Ne ".extend_done";
                     add (reg 11) (imm 1);
                     jmp ".extend";
                     label ".extend_done";
                   ] ]
              ();
            (* emit a match or a literal; a match also inserts the hash of
               every covered position, like zlib's deflate does — a long,
               data-dependent inner loop only some lanes run *)
            if_ Cond.Ge (reg 11) (imm 3)
              ~then_:
                [ seq
                    [
                      mov (reg 12) (imm 1);
                      while_ Cond.Lt (reg 12) (reg 11)
                        [
                          mov (reg 4) (reg 7);
                          add (reg 4) (reg 12);
                          mov ~w:Width.W1 (reg 9) (mem ~base:6 ~index:4 ());
                          mov ~w:Width.W1 (reg 10) (mem ~base:6 ~index:4 ~disp:1 ());
                          shl (reg 10) (imm 4);
                          xor (reg 9) (reg 10);
                          and_ (reg 9) (imm 255);
                          shl (reg 9) (imm 3);
                          add (reg 9) (imm tls_htab);
                          add (reg 9) tls;
                          mov (mem ~base:9 ()) (reg 4);
                          add (reg 12) (imm 1);
                        ];
                      add (reg 7) (reg 11);
                    ] ]
              ~else_:
                [ mov ~w:Width.W1 (reg 5) (mem ~base:6 ~index:7 ());
                  literal_emit 0 256 3;
                ]
              ();
            add (reg 13) (imm 1);
          ];
        mov (mem ~scale:8 ~index:0 ~disp:out_lens ()) (reg 13);
        ret;
      ]

  let workload =
    Workload.make ~category:Workload.Other ~name:"pigz" ~suite:"Others"
      ~description:"greedy LZ77 deflate: data-dependent match extension"
      ~table_threads:128 ~default_threads:64
      { Workload.program = [ worker ]; worker = "worker"; setup;
        args = (fun ~tid ~n:_ ~scale:_ -> [ tid ]) }
end

(* ------------------------------------------------------------------ *)
(* rotate: 90-degree image rotation, one row per thread.                *)

module Rotate = struct
  let src = region 0

  let dst = region 1

  let img_w = 256

  let setup mem ~scale =
    ignore scale;
    fill_random_bytes mem ~seed:84 ~addr:src ~n:(img_w * img_w) ~skew:0

  let worker =
    func "worker"
      [
        (* dst[x][W-1-y] = src[y][x]; y = tid *)
        mov (reg 6) (reg 0);
        mul (reg 6) (imm img_w);
        mov (reg 7) (imm (img_w - 1));
        sub (reg 7) (reg 0);
        for_up ~i:8 ~from_:(imm 0) ~below:(imm img_w)
          [
            mov (reg 9) (reg 6);
            add (reg 9) (reg 8);
            mov ~w:Width.W1 (reg 10) (mem ~index:9 ~disp:src ());
            mov (reg 11) (reg 8);
            mul (reg 11) (imm img_w);
            add (reg 11) (reg 7);
            mov ~w:Width.W1 (mem ~index:11 ~disp:dst ()) (reg 10);
          ];
        ret;
      ]

  let workload =
    Workload.make ~category:Workload.Other ~name:"rotate" ~suite:"Others"
      ~description:"image rotation: uniform control, transposed stores"
      ~table_threads:1024 ~default_threads:64
      { Workload.program = [ worker ]; worker = "worker"; setup;
        args = (fun ~tid ~n:_ ~scale:_ -> [ tid ]) }
end

(* ------------------------------------------------------------------ *)
(* md5: 64 fixed rounds per 64-byte chunk; the uniformity benchmark.    *)

module Md5 = struct
  let data = region 0 (* one 64-byte chunk per thread *)

  let sines = region 1 (* the 64 round constants *)

  let digests = region 2

  let setup mem ~scale =
    ignore scale;
    fill_random_bytes mem ~seed:85 ~addr:data ~n:(64 * 512) ~skew:0;
    fill_random mem ~seed:86 ~addr:sines ~n:64 ~bound:(1 lsl 32)

  let mask32 = 0xffffffff

  let worker =
    func "worker"
      [
        (* chunk base *)
        mov (reg 6) (reg 0);
        shl (reg 6) (imm 6);
        add (reg 6) (imm data);
        (* a, b, c, d *)
        mov (reg 7) (imm 0x67452301);
        mov (reg 8) (imm 0xefcdab89);
        mov (reg 9) (imm 0x98badcfe);
        mov (reg 10) (imm 0x10325476);
        for_up ~i:11 ~from_:(imm 0) ~below:(imm 64)
          [
            (* f = (b & c) | (~b & d)  — one round family for all 64 *)
            mov (reg 12) (reg 8);
            and_ (reg 12) (reg 9);
            mov (reg 13) (reg 8);
            not_ (reg 13);
            and_ (reg 13) (reg 10);
            or_ (reg 12) (reg 13);
            (* f += a + K[i] + M[i mod 16] *)
            add (reg 12) (reg 7);
            add (reg 12) (mem ~scale:8 ~index:11 ~disp:sines ());
            mov (reg 13) (reg 11);
            and_ (reg 13) (imm 15);
            shl (reg 13) (imm 2);
            add (reg 13) (reg 6);
            mov ~w:Width.W4 (reg 5) (mem ~base:13 ());
            add (reg 12) (reg 5);
            and_ (reg 12) (imm mask32);
            (* rotate left 7 (32-bit) *)
            mov (reg 13) (reg 12);
            shl (reg 13) (imm 7);
            shr (reg 12) (imm 25);
            or_ (reg 12) (reg 13);
            and_ (reg 12) (imm mask32);
            (* a,b,c,d = d, b+rot, b, c *)
            mov (reg 5) (reg 10);
            mov (reg 10) (reg 9);
            mov (reg 9) (reg 8);
            add (reg 12) (reg 8);
            and_ (reg 12) (imm mask32);
            mov (reg 8) (reg 12);
            mov (reg 7) (reg 5);
          ];
        (* digest = a ^ b ^ c ^ d *)
        xor (reg 7) (reg 8);
        xor (reg 7) (reg 9);
        xor (reg 7) (reg 10);
        mov (mem ~scale:8 ~index:0 ~disp:digests ()) (reg 7);
        ret;
      ]

  let workload =
    Workload.make ~category:Workload.Other ~name:"md5" ~suite:"Others"
      ~description:"MD5-style rounds: perfectly uniform control"
      ~table_threads:512 ~default_threads:128
      { Workload.program = [ worker ]; worker = "worker"; setup;
        args = (fun ~tid ~n:_ ~scale:_ -> [ tid ]) }
end

let all = [ Pigz.workload; Rotate.workload; Md5.workload ]
