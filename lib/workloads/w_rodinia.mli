(** Rodinia 3.1 correlation workloads (Table I): BFS, NN, Stream Cluster,
    b+tree, Particle Filter.  CUDA variants are the identical programs, as
    in the paper. *)

val all : Workload.t list
