(** The two microbenchmarks (Table I): coalesced and strided vector
    multiply-add. *)

val vectoradd : Workload.t

val uncoalesced : Workload.t

val all : Workload.t list
