(** Rodinia 3.1 correlation workloads (Table I): BFS, Nearest Neighbors,
    Stream Cluster, b+tree and Particle Filter.

    The paper selected these because their OpenMP implementations are
    *identical* to their CUDA implementations, so the CUDA variant here is
    the same program — the correlation study's differences come entirely
    from the CPU compiler's optimization level, as in the paper's §IV. *)

open Threadfuser_prog.Build
open Threadfuser_isa
open Wl_common
module Memory = Threadfuser_machine.Memory
module Lcg = Threadfuser_util.Lcg

(* The CUDA variant is the same program: Rodinia's OpenMP and CUDA kernels
   are line-for-line identical (paper §IV). *)
let mk ~name ~description ~table_threads ?(default_threads = 128) v =
  Workload.make ~category:Workload.Correlation ~name ~suite:"Rodinia 3.1"
    ~description ~table_threads ~default_threads ~cuda:v v

(* ------------------------------------------------------------------ *)
(* BFS: one thread per node of the current frontier level.             *)

module Bfs = struct
  let row_off = region 0 (* CSR row offsets, n+1 entries *)

  let cols = region 1 (* CSR column indices *)

  let frontier = region 2 (* 1 if node is in the current level *)

  let visited = region 3

  let cost = region 4

  let setup mem ~scale =
    let n = 256 * scale in
    let g = Lcg.create 21 in
    (* random graph with degrees 1..12 *)
    let off = ref 0 in
    for i = 0 to n - 1 do
      Memory.store_i64 mem (row_off + (8 * i)) !off;
      let deg = Lcg.int_range g 1 12 in
      for _ = 1 to deg do
        Memory.store_i64 mem (cols + (8 * !off)) (Lcg.int g n);
        incr off
      done
    done;
    Memory.store_i64 mem (row_off + (8 * n)) !off;
    (* mark ~40% of nodes as the current frontier, the rest unvisited *)
    for i = 0 to n - 1 do
      if Lcg.chance g 40 100 then begin
        Memory.store_i64 mem (frontier + (8 * i)) 1;
        Memory.store_i64 mem (visited + (8 * i)) 1;
        Memory.store_i64 mem (cost + (8 * i)) 1
      end
    done

  (* worker(tid): if frontier[tid] then relax all out-edges *)
  let worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        if_ Cond.Ne (mem ~scale:8 ~index:6 ~disp:frontier ()) (imm 0)
          ~then_:
            [ seq
               [
                 (* r7 = edge cursor, r8 = end *)
                 mov (reg 7) (mem ~scale:8 ~index:6 ~disp:row_off ());
                 lea 8 (mem ~base:6 ~disp:1 ());
                 mov (reg 8) (mem ~scale:8 ~index:8 ~disp:row_off ());
                 mov (reg 9) (mem ~scale:8 ~index:6 ~disp:cost ());
                 add (reg 9) (imm 1);
                 while_ Cond.Lt (reg 7) (reg 8)
                   [
                     mov (reg 10) (mem ~scale:8 ~index:7 ~disp:cols ());
                     if_ Cond.Eq (mem ~scale:8 ~index:10 ~disp:visited ()) (imm 0)
                       ~then_:
                         [ seq
                            [
                              atomic_rmw Op.Or
                                (mem ~scale:8 ~index:10 ~disp:visited ())
                                (imm 1);
                              mov (mem ~scale:8 ~index:10 ~disp:cost ()) (reg 9);
                            ] ]
                       ();
                     add (reg 7) (imm 1);
                   ];
               ] ]
          ();
        ret;
      ]

  let variant =
    { Workload.program = [ worker ]; worker = "worker"; setup; args = (fun ~tid ~n:_ ~scale:_ -> [ tid ]) }

  let workload =
    mk ~name:"bfs" ~description:"breadth-first search, one frontier level"
      ~table_threads:4096 variant
end

(* ------------------------------------------------------------------ *)
(* Nearest Neighbors: distance from every record to a target.          *)

module Nn = struct
  let records = region 0 (* AoS: (lat, lng) 16-byte records *)

  let out = region 1

  let recs_per_thread = 8

  let setup mem ~scale =
    let n = 2048 * scale in
    let g = Lcg.create 22 in
    for i = 0 to n - 1 do
      Memory.store_i64 mem (records + (16 * i)) (Lcg.int g 360_000);
      Memory.store_i64 mem (records + (16 * i) + 8) (Lcg.int g 180_000)
    done;
    set_param mem 0 179_123;
    (* target lat *)
    set_param mem 1 88_456 (* target lng *)

  let worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        mul (reg 6) (imm recs_per_thread);
        mov (reg 7) (reg 6);
        add (reg 7) (imm recs_per_thread);
        mov (reg 10) (p 0);
        mov (reg 11) (p 1);
        while_ Cond.Lt (reg 6) (reg 7)
          [
            mov (reg 8) (reg 6);
            shl (reg 8) (imm 4);
            mov (reg 9) (mem ~base:8 ~disp:records ());
            fsub (reg 9) (reg 10);
            fmul (reg 9) (reg 9);
            mov (reg 12) (mem ~base:8 ~disp:(records + 8) ());
            fsub (reg 12) (reg 11);
            fmul (reg 12) (reg 12);
            fadd (reg 9) (reg 12);
            fsqrt (reg 9);
            mov (mem ~scale:8 ~index:6 ~disp:out ()) (reg 9);
            add (reg 6) (imm 1);
          ];
        ret;
      ]

  let variant =
    { Workload.program = [ worker ]; worker = "worker"; setup; args = (fun ~tid ~n:_ ~scale:_ -> [ tid ]) }

  let workload =
    mk ~name:"nn" ~description:"nearest neighbors: uniform distance kernel"
      ~table_threads:42000 variant
end

(* ------------------------------------------------------------------ *)
(* Stream Cluster: assign points to the nearest of k centers.          *)

module Sc = struct
  let dim = 8

  let k_centers = 8

  let points = region 0 (* AoS, dim * 8 bytes per point *)

  let centers = region 1

  let assign = region 2

  let pts_per_thread = 2

  let setup mem ~scale =
    let n = 512 * scale in
    fill_random mem ~seed:23 ~addr:points ~n:(n * dim) ~bound:1000;
    fill_random mem ~seed:24 ~addr:centers ~n:(k_centers * dim) ~bound:1000

  let worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        mul (reg 6) (imm pts_per_thread);
        mov (reg 13) (imm 0);
        while_ Cond.Lt (reg 13) (imm pts_per_thread)
          [
            (* r7 = point base address *)
            mov (reg 7) (reg 6);
            add (reg 7) (reg 13);
            mul (reg 7) (imm (dim * 8));
            add (reg 7) (imm points);
            mov (reg 8) (imm max_int);
            (* best distance *)
            mov (reg 9) (imm 0);
            (* best center *)
            for_up ~i:10 ~from_:(imm 0) ~below:(imm k_centers)
              [
                (* r11 = center base *)
                mov (reg 11) (reg 10);
                mul (reg 11) (imm (dim * 8));
                add (reg 11) (imm centers);
                mov (reg 12) (imm 0);
                (* accumulate squared distance over dim *)
                for_up ~i:4 ~from_:(imm 0) ~below:(imm dim)
                  [
                    mov (reg 5) (mem ~base:7 ~index:4 ~scale:8 ());
                    fsub (reg 5) (mem ~base:11 ~index:4 ~scale:8 ());
                    fmul (reg 5) (reg 5);
                    fadd (reg 12) (reg 5);
                  ];
                (* if-convertible: keep the running minimum *)
                if_ Cond.Lt (reg 12) (reg 8)
                  ~then_:[ mov (reg 8) (reg 12); mov (reg 9) (reg 10) ]
                  ();
              ];
            mov (reg 11) (reg 6);
            add (reg 11) (reg 13);
            mov (mem ~scale:8 ~index:11 ~disp:assign ()) (reg 9);
            add (reg 13) (imm 1);
          ];
        ret;
      ]

  let variant =
    { Workload.program = [ worker ]; worker = "worker"; setup; args = (fun ~tid ~n:_ ~scale:_ -> [ tid ]) }

  let workload =
    mk ~name:"streamcluster"
      ~description:"k-center assignment with a running-minimum diamond"
      ~table_threads:16384 variant
end

(* ------------------------------------------------------------------ *)
(* b+tree: key lookups over an implicit-array B+tree.                  *)

module Btree = struct
  let fanout = 8

  let depth = 4 (* internal levels; leaves hold values *)

  let nodes = region 0 (* node i: fanout keys of 8 bytes *)

  let values = region 2

  let queries = region 4

  (* Implicit complete tree: node 0 is the root; child s of node i is
     node i*fanout + s + 1.  Keys are chosen so search works over
     [0, fanout^depth * fanout). *)
  let setup mem ~scale =
    ignore scale;
    let key_space = 32768 in
    (* fill internal nodes level by level *)
    let rec fill idx lo hi level =
      if level < depth then begin
        let span = (hi - lo) / fanout in
        for s = 0 to fanout - 1 do
          Memory.store_i64 mem (nodes + (8 * ((idx * fanout) + s))) (lo + ((s + 1) * span))
        done;
        if level < depth - 1 then
          for s = 0 to fanout - 1 do
            fill ((idx * fanout) + s + 1) (lo + (s * span)) (lo + ((s + 1) * span)) (level + 1)
          done
      end
    in
    fill 0 0 key_space 0;
    fill_random mem ~seed:25 ~addr:values ~n:8192 ~bound:1_000_000;
    fill_random mem ~seed:26 ~addr:queries ~n:8192 ~bound:key_space

  let lookups_per_thread = 4

  let worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        mul (reg 6) (imm lookups_per_thread);
        mov (reg 13) (imm 0);
        while_ Cond.Lt (reg 13) (imm lookups_per_thread)
          [
            mov (reg 7) (reg 6);
            add (reg 7) (reg 13);
            mov (reg 7) (mem ~scale:8 ~index:7 ~disp:queries ());
            (* r7 = key, r8 = node index *)
            mov (reg 8) (imm 0);
            for_up ~i:9 ~from_:(imm 0) ~below:(imm depth)
              [
                (* scan the node's keys: data-dependent exit *)
                mov (reg 10) (reg 8);
                mul (reg 10) (imm (fanout * 8));
                add (reg 10) (imm nodes);
                mov (reg 11) (imm 0);
                while_ Cond.Lt (reg 11) (imm (fanout - 1))
                  [
                    cmp (reg 7) (mem ~base:10 ~index:11 ~scale:8 ());
                    jcc Cond.Lt ".btree_found";
                    add (reg 11) (imm 1);
                  ];
                label ".btree_found";
                (* descend: child = node*fanout + slot + 1 *)
                mul (reg 8) (imm fanout);
                add (reg 8) (reg 11);
                add (reg 8) (imm 1);
              ];
            (* leaf: load the value *)
            and_ (reg 8) (imm 8191);
            mov (reg 12) (mem ~scale:8 ~index:8 ~disp:values ());
            add (reg 12) (reg 7);
            add (reg 13) (imm 1);
          ];
        ret;
      ]

  let variant =
    { Workload.program = [ worker ]; worker = "worker"; setup; args = (fun ~tid ~n:_ ~scale:_ -> [ tid ]) }

  let workload =
    mk ~name:"b+tree" ~description:"B+tree lookups: data-dependent node scans"
      ~table_threads:4096 variant
end

(* ------------------------------------------------------------------ *)
(* Particle Filter: weight + resample with a cumulative-weight scan.    *)

module Pf = struct
  let cumulative = region 0 (* ascending cumulative weights *)

  let observations = region 1

  let indices = region 2

  let n_particles = 1024

  let setup mem ~scale =
    ignore scale;
    let g = Lcg.create 27 in
    let acc = ref 0 in
    for i = 0 to n_particles - 1 do
      acc := !acc + Lcg.int_range g 1 100;
      Memory.store_i64 mem (cumulative + (8 * i)) !acc
    done;
    set_param mem 0 !acc;
    (* total weight *)
    fill_random mem ~seed:28 ~addr:observations ~n:n_particles ~bound:1000

  let worker =
    func "worker"
      [
        (* likelihood: a few fp ops on the particle's observation *)
        mov (reg 6) (reg 0);
        mov (reg 7) (mem ~scale:8 ~index:6 ~disp:observations ());
        mov (reg 8) (reg 7);
        fmul (reg 8) (reg 7);
        fadd (reg 8) (imm 77);
        fsqrt (reg 8);
        (* draw u in [0, total) deterministically from tid *)
        mov (reg 9) (reg 0);
        mul (reg 9) (imm 2654435761);
        rem (reg 9) (p 0);
        (* linear scan of the cumulative table: data-dependent length *)
        mov (reg 10) (imm 0);
        while_ Cond.Lt (mem ~scale:8 ~index:10 ~disp:cumulative ()) (reg 9)
          [ add (reg 10) (imm 1) ];
        mov (mem ~scale:8 ~index:6 ~disp:indices ()) (reg 10);
        ret;
      ]

  let variant =
    { Workload.program = [ worker ]; worker = "worker"; setup; args = (fun ~tid ~n:_ ~scale:_ -> [ tid ]) }

  let workload =
    mk ~name:"particlefilter"
      ~description:"particle filter resampling: divergent cumulative scan"
      ~table_threads:4096 variant
end

let all =
  [ Bfs.workload; Nn.workload; Sc.workload; Btree.workload; Pf.workload ]
