(** μSuite microservice workloads (Table I): McRouter (Memcached, Mid,
    Leaf), TextSearch (Mid, Leaf) and HDSearch (Mid, Leaf).

    One SIMT thread = one request, mirroring the paper's request-level
    parallelism.  Requests arrive and depart through [Io] instructions
    (skipped, Fig. 8); shared state uses fine-grained bucket locks; the
    HDSearch mid-tier links the glibc-style allocator to reproduce the
    paper's Fig. 7 `getpoint`/`vector` bottleneck analysis, including the
    "SIMT-aware fix" variant that lifts efficiency from single digits to
    ~90%. *)

open Threadfuser_prog.Build
open Threadfuser_isa
open Wl_common
module Memory = Threadfuser_machine.Memory
module Lcg = Threadfuser_util.Lcg

(* Request keys: 32 bytes per request. *)
let req_base = region 10

let key_bytes = 16

let setup_requests mem ~seed ~threads =
  fill_random_bytes mem ~seed ~addr:req_base ~n:(32 * threads) ~skew:0

(* Host-side FNV identical to Rtlib's __hash, for building hit tables. *)
let host_fnv mem addr n =
  let h = ref 0x1b873593 in
  for i = 0 to n - 1 do
    let b = Memory.load_byte mem (addr + i) in
    h := (!h lxor b) * 0x1000193 land 0x3fffffffffff
  done;
  !h

(* key address of request [tid] into r6 *)
let load_key_addr = seq [ mov (reg 6) (reg 0); shl (reg 6) (imm 5); add (reg 6) (imm req_base) ]

let mk ?(alloc = Rtlib.Concurrent) ~name ~description ?(default_threads = 64) program
    ~setup ~worker =
  Workload.make ~category:Workload.Microservice ~alloc ~name ~suite:"uSuite"
    ~description ~table_threads:2048 ~default_threads
    { Workload.program; worker; setup; args = (fun ~tid ~n:_ ~scale:_ -> [ tid ]) }

(* ------------------------------------------------------------------ *)
(* McRouter-Memcached: hash -> bucket lock -> chain walk.              *)

module Memcached = struct
  let heads = region 0 (* 64 bucket heads (entry addresses) *)

  let entries = region 1 (* 24-byte nodes: hash, next, value *)

  let n_buckets = 64

  let setup mem ~scale =
    ignore scale;
    setup_requests mem ~seed:41 ~threads:512;
    (* 256 entries chained into buckets; ~half of them are request keys so
       lookups hit *)
    let g = Lcg.create 42 in
    for i = 0 to 127 do
      let h =
        if i < 64 then host_fnv mem (req_base + (32 * (i * 3 mod 512))) key_bytes
        else Lcg.int g (1 lsl 40)
      in
      let b = h mod n_buckets in
      let node = entries + (24 * i) in
      let head = Memory.load_i64 mem (heads + (8 * b)) in
      Memory.store_i64 mem node h;
      Memory.store_i64 mem (node + 8) head;
      Memory.store_i64 mem (node + 16) (Lcg.int g 1_000_000);
      Memory.store_i64 mem (heads + (8 * b)) node
    done

  let worker =
    func "worker"
      [
        io_in (imm 25);
        load_key_addr;
        mov (reg 0) (reg 6);
        mov (reg 1) (imm key_bytes);
        call "__hash";
        mov (reg 7) (reg 0);
        (* bucket lock: fine-grained *)
        mov (reg 8) (reg 7);
        rem (reg 8) (imm n_buckets);
        mov (reg 9) (reg 8);
        mul (reg 9) (imm 64);
        add (reg 9) (imm lock_base);
        lock_acquire (reg 9);
        (* chain walk *)
        mov (reg 10) (mem ~scale:8 ~index:8 ~disp:heads ());
        mov (reg 11) (imm 0);
        label ".chase";
        cmp (reg 10) (imm 0);
        jcc Cond.Eq ".done";
        cmp (mem ~base:10 ()) (reg 7);
        jcc Cond.Eq ".hit";
        mov (reg 10) (mem ~base:10 ~disp:8 ());
        jmp ".chase";
        label ".hit";
        mov (reg 11) (mem ~base:10 ~disp:16 ());
        label ".done";
        lock_release (reg 9);
        (* response object is heap-allocated, as the real service does *)
        mov (reg 0) (imm 32);
        call "__malloc";
        mov (mem ~base:0 ()) (reg 11);
        mov (mem ~base:0 ~disp:8 ()) (reg 7);
        io_out (imm 25);
        mov (reg 0) (reg 11);
        ret;
      ]

  let workload =
    mk ~name:"mcrouter-memcached"
      ~description:"memcached leaf: hash, bucket lock, chain walk" [ worker ]
      ~setup ~worker:"worker"
end

(* ------------------------------------------------------------------ *)
(* McRouter-Mid: route requests to backends; I/O heavy.                 *)

module McMid = struct
  let routes = region 0 (* 16 backend weights *)

  let setup mem ~scale =
    ignore scale;
    setup_requests mem ~seed:43 ~threads:512;
    fill_random mem ~seed:44 ~addr:routes ~n:32 ~bound:100

  let worker =
    func "worker"
      [
        io_in (imm 30);
        load_key_addr;
        mov (reg 0) (reg 6);
        mov (reg 1) (imm key_bytes);
        call "__hash";
        mov (reg 7) (reg 0);
        rem (reg 7) (imm 16);
        (* weighted-route scan: fixed 16-entry loop with a running max *)
        mov (reg 8) (imm 0);
        mov (reg 9) (imm 0);
        for_up ~i:10 ~from_:(imm 0) ~below:(imm 32)
          [
            mov (reg 11) (mem ~scale:8 ~index:10 ~disp:routes ());
            xor (reg 11) (reg 7);
            if_ Cond.Gt (reg 11) (reg 8)
              ~then_:[ mov (reg 8) (reg 11); mov (reg 9) (reg 10) ]
              ();
          ];
        (* forward to the backend and relay the answer *)
        io_out (imm 40);
        io_in (imm 40);
        io_out (imm 30);
        mov (reg 0) (reg 9);
        ret;
      ]

  let workload =
    mk ~name:"mcrouter-mid" ~description:"mcrouter mid-tier: route and relay"
      [ worker ] ~setup ~worker:"worker"
end

(* ------------------------------------------------------------------ *)
(* McRouter-Leaf: direct-indexed store with a value checksum.           *)

module McLeaf = struct
  let store = region 0 (* 1024 slots of 32-byte values *)

  let setup mem ~scale =
    ignore scale;
    setup_requests mem ~seed:45 ~threads:512;
    fill_random mem ~seed:46 ~addr:store ~n:8192 ~bound:1_000_000

  let worker =
    func "worker"
      [
        io_in (imm 25);
        load_key_addr;
        mov (reg 0) (reg 6);
        mov (reg 1) (imm key_bytes);
        call "__hash";
        rem (reg 0) (imm 1024);
        shl (reg 0) (imm 6);
        add (reg 0) (imm store);
        (* checksum the 64-byte value *)
        mov (reg 7) (imm 0);
        for_up ~i:8 ~from_:(imm 0) ~below:(imm 8)
          [
            mov (reg 9) (mem ~base:0 ~index:8 ~scale:8 ());
            xor (reg 7) (reg 9);
            mul (reg 7) (imm 31);
          ];
        io_out (imm 25);
        mov (reg 0) (reg 7);
        ret;
      ]

  let workload =
    mk ~name:"mcrouter-leaf" ~description:"kv leaf: direct index + checksum"
      [ worker ] ~setup ~worker:"worker"
end

(* ------------------------------------------------------------------ *)
(* TextSearch-Leaf: term scan over documents; very uniform.             *)

module TsLeaf = struct
  let words = region 0 (* 64-word document *)

  let setup mem ~scale =
    ignore scale;
    setup_requests mem ~seed:47 ~threads:512;
    fill_random mem ~seed:48 ~addr:words ~n:64 ~bound:64

  let worker =
    func "worker"
      [
        io_in (imm 50);
        load_key_addr;
        (* four query terms derived from the key *)
        mov (reg 12) (imm 0);
        (* match count *)
        for_up ~i:7 ~from_:(imm 0) ~below:(imm 4)
          [
            mov (reg 8) (mem ~base:6 ~index:7 ~scale:8 ());
            and_ (reg 8) (imm 63);
            (* scan all 64 document words *)
            for_up ~i:9 ~from_:(imm 0) ~below:(imm 64)
              [
                mov (reg 10) (mem ~scale:8 ~index:9 ~disp:words ());
                if_ Cond.Eq (reg 10) (reg 8) ~then_:[ add (reg 12) (imm 1) ] ();
              ];
          ];
        io_out (imm 50);
        mov (reg 0) (reg 12);
        ret;
      ]

  let workload =
    mk ~name:"textsearch-leaf" ~description:"document term scan; uniform loops"
      [ worker ] ~setup ~worker:"worker"
end

(* ------------------------------------------------------------------ *)
(* TextSearch-Mid: merge leaf responses into a top-k.                   *)

module TsMid = struct
  let responses = region 0 (* per request: 32 scored results *)

  let setup mem ~scale =
    ignore scale;
    setup_requests mem ~seed:49 ~threads:512;
    fill_random mem ~seed:50 ~addr:responses ~n:(32 * 512) ~bound:10_000

  let k = 8

  let worker =
    func "worker"
      [
        io_in (imm 80);
        (* r6 = this request's response array *)
        mov (reg 6) (reg 0);
        shl (reg 6) (imm 8);
        add (reg 6) (imm responses);
        (* top-k insertion sort into the thread's stack frame *)
        sub sp (imm (8 * k));
        for_up ~i:7 ~from_:(imm 0) ~below:(imm k)
          [ mov (mem ~base:Reg.sp ~index:7 ~scale:8 ()) (imm 0) ];
        for_up ~i:7 ~from_:(imm 0) ~below:(imm 32)
          [
            mov (reg 8) (mem ~base:6 ~index:7 ~scale:8 ());
            (* shift down while larger: data-dependent inner loop *)
            mov (reg 9) (imm 0);
            while_ Cond.Lt (reg 9) (imm k)
              [
                if_ Cond.Gt (reg 8) (mem ~base:Reg.sp ~index:9 ~scale:8 ())
                  ~then_:
                    [
                      mov (reg 10) (mem ~base:Reg.sp ~index:9 ~scale:8 ());
                      mov (mem ~base:Reg.sp ~index:9 ~scale:8 ()) (reg 8);
                      mov (reg 8) (reg 10);
                    ]
                  ();
                add (reg 9) (imm 1);
              ];
          ];
        (* the response std::vector lives on the heap *)
        mov (reg 0) (imm (8 * k));
        call "__malloc";
        for_up ~i:7 ~from_:(imm 0) ~below:(imm k)
          [
            mov (reg 8) (mem ~base:Reg.sp ~index:7 ~scale:8 ());
            mov (mem ~base:0 ~index:7 ~scale:8 ()) (reg 8);
          ];
        mov (reg 0) (mem ~base:Reg.sp ());
        add sp (imm (8 * k));
        io_out (imm 80);
        ret;
      ]

  let workload =
    mk ~name:"textsearch-mid" ~description:"top-k merge of leaf responses"
      [ worker ] ~setup ~worker:"worker"
end

(* ------------------------------------------------------------------ *)
(* HDSearch-Leaf: candidate distance ranking; uniform fp loops.         *)

module HdLeaf = struct
  let points = region 0 (* 32 candidates x 8 dims *)

  let setup mem ~scale =
    ignore scale;
    setup_requests mem ~seed:51 ~threads:512;
    fill_random mem ~seed:52 ~addr:points ~n:(32 * 8) ~bound:1000

  let worker =
    func "worker"
      [
        io_in (imm 50);
        load_key_addr;
        mov (reg 12) (imm max_int);
        (* best *)
        mov (reg 13) (imm 0);
        for_up ~i:7 ~from_:(imm 0) ~below:(imm 32)
          [
            mov (reg 8) (reg 7);
            mul (reg 8) (imm 64);
            mov (reg 9) (imm 0);
            for_up ~i:10 ~from_:(imm 0) ~below:(imm 8)
              [
                mov (reg 11) (mem ~base:8 ~index:10 ~scale:8 ~disp:points ());
                fsub (reg 11) (mem ~base:6 ~index:10 ~scale:1 ());
                fmul (reg 11) (reg 11);
                fadd (reg 9) (reg 11);
              ];
            if_ Cond.Lt (reg 9) (reg 12)
              ~then_:[ mov (reg 12) (reg 9); mov (reg 13) (reg 7) ]
              ();
          ];
        io_out (imm 50);
        mov (reg 0) (reg 13);
        ret;
      ]

  let workload =
    mk ~name:"hdsearch-leaf" ~description:"LSH leaf: distance ranking"
      [ worker ] ~setup ~worker:"worker"
end

(* ------------------------------------------------------------------ *)
(* HDSearch-Mid: the Fig. 7 case study.                                 *)

module HdMid = struct
  let counts = region 0 (* per sub-key candidate counts (data-dependent) *)

  let result_vec = region 1 (* not used by the kernel; results go to heap *)

  let n_slots = 256

  let tables = 4

  let masks = 4

  let setup mem ~scale =
    ignore scale;
    setup_requests mem ~seed:53 ~threads:512;
    (* candidate counts per hash slot: 0..24, heavily skewed *)
    let g = Lcg.create 54 in
    for i = 0 to n_slots - 1 do
      let c = if Lcg.chance g 30 100 then Lcg.int_range g 12 24 else Lcg.int g 6 in
      Memory.store_i64 mem (counts + (8 * i)) c
    done;
    ignore result_vec

  (* vector::push_back — allocates (glibc lock!) and stores the element. *)
  let vector_push =
    func "vector"
      [
        (* r0 = element value *)
        mov (reg 3) (reg 0);
        mov (reg 0) (imm 24);
        call "__malloc";
        mov (mem ~base:0 ()) (reg 3);
        ret;
      ]

  (* getpoint — the FLANN kd/LSH traversal of Listing 1.  [fixed] selects
     the SIMT-aware variant that returns exactly the top 10 candidates. *)
  let getpoint ~fixed =
    func "getpoint"
      [
        (* r0 = key hash *)
        mov (reg 6) (reg 0);
        mov (reg 13) (imm 0);
        (* emitted count *)
        for_up ~i:7 ~from_:(imm 0) ~below:(imm tables)
          [
            for_up ~i:8 ~from_:(imm 0) ~below:(imm masks)
              [
                (* sub_key = key ^ (xor_mask) *)
                mov (reg 9) (reg 7);
                mul (reg 9) (imm 17);
                add (reg 9) (reg 8);
                xor (reg 9) (reg 6);
                and_ (reg 9) (imm (n_slots - 1));
                (* num_point: data-dependent in the original, fixed in the
                   SIMT-aware version *)
                (if fixed then mov (reg 10) (imm 10)
                 else mov (reg 10) (mem ~scale:8 ~index:9 ~disp:counts ()));
                mov (reg 11) (imm 0);
                while_ Cond.Lt (reg 11) (reg 10)
                  [
                    mov (reg 0) (reg 9);
                    mul (reg 0) (imm 1023);
                    add (reg 0) (reg 11);
                    call "vector";
                    add (reg 11) (imm 1);
                    add (reg 13) (imm 1);
                  ];
              ];
          ];
        mov (reg 0) (reg 13);
        ret;
      ]

  let process_request ~fixed =
    ignore fixed;
    func "worker"
      [
        io_in (imm 60);
        load_key_addr;
        mov (reg 0) (reg 6);
        mov (reg 1) (imm key_bytes);
        call "__hash";
        call "getpoint";
        io_out (imm 60);
        ret;
      ]

  let variant ~fixed =
    {
      Workload.program = [ process_request ~fixed; getpoint ~fixed; vector_push ];
      worker = "worker";
      setup;
      args = (fun ~tid ~n:_ ~scale:_ -> [ tid ]);
    }

  let workload =
    Workload.make ~category:Workload.Microservice ~alloc:Rtlib.Glibc
      ~name:"hdsearch-mid" ~suite:"uSuite"
      ~description:
        "LSH mid-tier: data-dependent getpoint + allocator-locked vector \
         (Fig. 7 bottleneck)"
      ~table_threads:2048 ~default_threads:64 (variant ~fixed:false)

  (* The paper's fix: uniform top-10 candidate count + a concurrent
     allocator assumption (§V-A / §V-B). *)
  let workload_fixed =
    Workload.make ~category:Workload.Microservice ~alloc:Rtlib.Concurrent
      ~name:"hdsearch-mid-fixed" ~suite:"uSuite"
      ~description:"hdsearch-mid with the SIMT-aware top-10 fix applied"
      ~table_threads:2048 ~default_threads:64 (variant ~fixed:true)
end

let all =
  [
    Memcached.workload;
    McMid.workload;
    McLeaf.workload;
    TsLeaf.workload;
    TsMid.workload;
    HdLeaf.workload;
    HdMid.workload;
  ]

let hdsearch_mid_fixed = HdMid.workload_fixed
