(** Paropoly correlation workloads (Table I): BFS, CC, PageRank, N-body —
    with structurally different CUDA ports, as the paper reimplemented
    them. *)

val all : Workload.t list
