(** The remaining Table I workloads: pigz (the low-efficiency showcase),
    rotate and md5 (the uniformity benchmarks). *)

val all : Workload.t list
