(** DeathStarBench services (Table I): Post, Text, UrlShort, UniqueID,
    UserTag, User. *)

val all : Workload.t list
