(** ParSec 3.0 workloads (Table I): blackscholes, streamcluster, bodytrack,
    facesim, fluidanimate, freqmine, swaptions, vips and x264.  These have
    no CUDA counterparts; they populate the paper's Fig. 1 efficiency
    landscape between the compute kernels (high) and the data-dependent
    miners/encoders (low). *)

open Threadfuser_prog.Build
open Threadfuser_isa
open Wl_common
module Memory = Threadfuser_machine.Memory
module Lcg = Threadfuser_util.Lcg

let mk ~name ~description ~table_threads ?(default_threads = 128)
    ?(alloc = Rtlib.Concurrent) program ~setup ~worker =
  Workload.make ~category:Workload.Parsec ~alloc ~name ~suite:"ParSec 3.0"
    ~description ~table_threads ~default_threads
    { Workload.program; worker; setup; args = (fun ~tid ~n:_ ~scale:_ -> [ tid ]) }

(* ------------------------------------------------------------------ *)
(* blackscholes: one option per thread; branch only on call/put.        *)

module Blackscholes = struct
  let options = region 0 (* AoS: S, K, T, r, v, type — 48 B per option *)

  let prices = region 1

  let setup mem ~scale =
    ignore scale;
    let g = Lcg.create 71 in
    for i = 0 to 1023 do
      let base = options + (48 * i) in
      Memory.store_i64 mem base (Lcg.int_range g 10_000 20_000);
      Memory.store_i64 mem (base + 8) (Lcg.int_range g 10_000 20_000);
      Memory.store_i64 mem (base + 16) (Lcg.int_range g 100 1000);
      Memory.store_i64 mem (base + 24) (Lcg.int_range g 1 10);
      Memory.store_i64 mem (base + 32) (Lcg.int_range g 10 60);
      Memory.store_i64 mem (base + 40) (Lcg.int g 2)
    done

  let worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        mul (reg 6) (imm 48);
        add (reg 6) (imm options);
        mov (reg 7) (mem ~base:6 ());
        (* S *)
        mov (reg 8) (mem ~base:6 ~disp:8 ());
        (* K *)
        mov (reg 9) (mem ~base:6 ~disp:16 ());
        (* T *)
        mov (reg 10) (mem ~base:6 ~disp:32 ());
        (* v *)
        (* d1 = (S/K + (r + v^2/2) T) / (v sqrt T)  -- fixed-point flavour *)
        mov (reg 11) (reg 7);
        fmul (reg 11) (imm 1000);
        fdiv (reg 11) (reg 8);
        mov (reg 12) (reg 10);
        fmul (reg 12) (reg 10);
        fdiv (reg 12) (imm 2);
        fadd (reg 12) (mem ~base:6 ~disp:24 ());
        fmul (reg 12) (reg 9);
        fadd (reg 11) (reg 12);
        mov (reg 13) (reg 9);
        fsqrt (reg 13);
        fmul (reg 13) (reg 10);
        fadd (reg 13) (imm 1);
        fdiv (reg 11) (reg 13);
        (* polynomial CNDF approximation: fixed 5-term loop *)
        mov (reg 12) (imm 0);
        for_up ~i:4 ~from_:(imm 0) ~below:(imm 5)
          [ fmul (reg 12) (reg 11); fadd (reg 12) (imm 2316419); ];
        (* call/put: a two-mov diamond (if-convertible at O3) *)
        if_ Cond.Eq (mem ~base:6 ~disp:40 ()) (imm 0)
          ~then_:[ mov (reg 5) (reg 12) ]
          ~else_:[ mov (reg 5) (imm 1000000); ]
          ();
        mov (mem ~scale:8 ~index:0 ~disp:prices ()) (reg 5);
        ret;
      ]

  let workload =
    mk ~name:"blackscholes" ~description:"per-option pricing; near-uniform"
      ~table_threads:1024 [ worker ] ~setup ~worker:"worker"
end

(* ------------------------------------------------------------------ *)
(* streamcluster (parsec flavour): wider dims + a rare global update.   *)

module Streamcluster = struct
  let dim = 16

  let k_centers = 4

  let points = region 0

  let centers = region 1

  let assign = region 2

  let open_lock = lock_base + (62 * 64)

  let opened = region 3

  let setup mem ~scale =
    let n = 512 * scale in
    fill_random mem ~seed:72 ~addr:points ~n:(n * dim) ~bound:1000;
    fill_random mem ~seed:73 ~addr:centers ~n:(k_centers * dim) ~bound:1000

  let worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        mul (reg 6) (imm (dim * 8));
        add (reg 6) (imm points);
        mov (reg 8) (imm max_int);
        for_up ~i:9 ~from_:(imm 0) ~below:(imm k_centers)
          [
            mov (reg 10) (reg 9);
            mul (reg 10) (imm (dim * 8));
            add (reg 10) (imm centers);
            mov (reg 11) (imm 0);
            for_up ~i:4 ~from_:(imm 0) ~below:(imm dim)
              [
                mov (reg 5) (mem ~base:6 ~index:4 ~scale:8 ());
                fsub (reg 5) (mem ~base:10 ~index:4 ~scale:8 ());
                fmul (reg 5) (reg 5);
                fadd (reg 11) (reg 5);
              ];
            min_ (reg 8) (reg 11);
          ];
        mov (mem ~scale:8 ~index:0 ~disp:assign ()) (reg 8);
        (* open a new center when even the best is far: rare, coarse lock *)
        if_ Cond.Gt (reg 8) (imm 1_600_000)
          ~then_:
            [ seq
               [
                 lock_acquire (imm open_lock);
                 binop Op.Add (mem ~disp:opened ()) (imm 1);
                 lock_release (imm open_lock);
               ] ]
          ();
        ret;
      ]

  let workload =
    mk ~name:"streamcluster-p" ~description:"k-center with rare global opens"
      ~table_threads:8192 [ worker ] ~setup ~worker:"worker"
end

(* ------------------------------------------------------------------ *)
(* bodytrack: per-particle likelihood over cameras and edges.           *)

module Bodytrack = struct
  let particles = region 0 (* pose parameters, 8 per particle *)

  let edges = region 1 (* per camera: 8 edge thresholds *)

  let weights = region 2

  let setup mem ~scale =
    ignore scale;
    fill_random mem ~seed:74 ~addr:particles ~n:(1024 * 8) ~bound:1000;
    fill_random mem ~seed:75 ~addr:edges ~n:(4 * 8) ~bound:1000

  let worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        shl (reg 6) (imm 6);
        add (reg 6) (imm particles);
        mov (reg 13) (imm 0);
        for_up ~i:7 ~from_:(imm 0) ~below:(imm 4)
          (* cameras *)
          [
            mov (reg 8) (reg 7);
            shl (reg 8) (imm 6);
            for_up ~i:9 ~from_:(imm 0) ~below:(imm 8)
              (* edges *)
              [
                mov (reg 10) (mem ~base:6 ~index:9 ~scale:8 ());
                (* project: a couple of fp ops *)
                fmul (reg 10) (imm 3);
                fadd (reg 10) (reg 7);
                mov (reg 11) (mem ~base:8 ~index:9 ~scale:8 ~disp:edges ());
                (* data-dependent: count only edges inside the silhouette *)
                if_ Cond.Gt (reg 10) (reg 11)
                  ~then_:
                    [
                      mov (reg 12) (reg 10);
                      fsub (reg 12) (reg 11);
                      fmul (reg 12) (reg 12);
                      fadd (reg 13) (reg 12);
                    ]
                  ();
              ];
          ];
        mov (mem ~scale:8 ~index:0 ~disp:weights ()) (reg 13);
        ret;
      ]

  let workload =
    mk ~name:"bodytrack" ~description:"particle likelihood with edge tests"
      ~table_threads:1024 [ worker ] ~setup ~worker:"worker"
end

(* ------------------------------------------------------------------ *)
(* facesim: scattered neighbor gather, uniform control.                 *)

module Facesim = struct
  let positions = region 0

  let neighbors = region 1 (* 8 neighbor indices per node *)

  let out = region 2

  let n_nodes = 4096

  let setup mem ~scale =
    ignore scale;
    fill_random mem ~seed:76 ~addr:positions ~n:n_nodes ~bound:100_000;
    fill_random mem ~seed:77 ~addr:neighbors ~n:(n_nodes * 8) ~bound:n_nodes

  let worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        mov (reg 13) (imm 0);
        for_up ~i:7 ~from_:(imm 0) ~below:(imm 8)
          [
            mov (reg 8) (reg 6);
            shl (reg 8) (imm 3);
            add (reg 8) (reg 7);
            mov (reg 9) (mem ~scale:8 ~index:8 ~disp:neighbors ());
            mov (reg 10) (mem ~scale:8 ~index:9 ~disp:positions ());
            fsub (reg 10) (mem ~scale:8 ~index:6 ~disp:positions ());
            fmul (reg 10) (imm 17);
            fdiv (reg 10) (imm 16);
            fadd (reg 13) (reg 10);
          ];
        mov (mem ~scale:8 ~index:6 ~disp:out ()) (reg 13);
        ret;
      ]

  let workload =
    mk ~name:"facesim" ~description:"mesh relaxation: scattered gathers"
      ~table_threads:1024 [ worker ] ~setup ~worker:"worker"
end

(* ------------------------------------------------------------------ *)
(* fluidanimate: variable particles per cell + neighbor-cell locks.     *)

module Fluidanimate = struct
  let cell_count = region 0 (* particles in each cell, 0..8 *)

  let cell_particles = region 1 (* 8 slots per cell *)

  let forces = region 2

  let n_cells = 4096

  let setup mem ~scale =
    ignore scale;
    let g = Lcg.create 78 in
    for c = 0 to n_cells - 1 do
      let k = Lcg.int g 9 in
      Memory.store_i64 mem (cell_count + (8 * c)) k;
      for s = 0 to k - 1 do
        Memory.store_i64 mem (cell_particles + (64 * c) + (8 * s)) (Lcg.int g 1000)
      done
    done

  let worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        (* my cell *)
        mov (reg 7) (mem ~scale:8 ~index:6 ~disp:cell_count ());
        mov (reg 13) (imm 0);
        (* pairwise forces within the cell: O(k^2), k data-dependent *)
        mov (reg 8) (imm 0);
        while_ Cond.Lt (reg 8) (reg 7)
          [
            mov (reg 9) (imm 0);
            while_ Cond.Lt (reg 9) (reg 7)
              [
                mov (reg 10) (reg 6);
                shl (reg 10) (imm 6);
                mov (reg 11) (mem ~base:10 ~index:8 ~scale:8 ~disp:cell_particles ());
                fsub (reg 11) (mem ~base:10 ~index:9 ~scale:8 ~disp:cell_particles ());
                fmul (reg 11) (reg 11);
                fadd (reg 13) (reg 11);
                add (reg 9) (imm 1);
              ];
            add (reg 8) (imm 1);
          ];
        (* scatter half the force into the next cell under its lock *)
        mov (reg 9) (reg 6);
        add (reg 9) (imm 1);
        and_ (reg 9) (imm 63);
        (* 64 cell locks *)
        mov (reg 10) (reg 9);
        mul (reg 10) (imm 64);
        add (reg 10) (imm lock_base);
        lock_acquire (reg 10);
        binop Op.Add (mem ~scale:8 ~index:9 ~disp:forces ()) (reg 13);
        lock_release (reg 10);
        ret;
      ]

  let workload =
    mk ~name:"fluidanimate" ~description:"per-cell particle forces + cell locks"
      ~table_threads:4096 [ worker ] ~setup ~worker:"worker"
end

(* ------------------------------------------------------------------ *)
(* freqmine: prefix-tree walks — heavy data-dependent divergence.       *)

module Freqmine = struct
  let tree = region 0 (* nodes: 8 child indices each; 0 = none *)

  let txns = region 1 (* per thread: 16 item ids *)

  let support = region 2

  let n_nodes = 2048

  let setup mem ~scale =
    ignore scale;
    let g = Lcg.create 79 in
    (* random prefix tree: each node's children point strictly forward *)
    for node = 0 to n_nodes - 1 do
      for c = 0 to 7 do
        let child =
          if node < n_nodes - 64 && Lcg.chance g 55 100 then
            node + 1 + Lcg.int g 63
          else 0
        in
        Memory.store_i64 mem (tree + (64 * node) + (8 * c)) child
      done
    done;
    fill_random mem ~seed:80 ~addr:txns ~n:(512 * 16) ~bound:8

  let worker =
    func "worker"
      [
        mov (reg 6) (reg 0);
        shl (reg 6) (imm 7);
        (* 16 items * 8 B *)
        mov (reg 13) (imm 0);
        (* walk the tree following the transaction's items until a missing
           child stops the descent: depth is data-dependent *)
        mov (reg 7) (imm 0);
        (* node *)
        mov (reg 8) (imm 0);
        (* item index *)
        label ".descend";
        cmp (reg 8) (imm 16);
        jcc Cond.Ge ".mined";
        mov (reg 9) (mem ~base:6 ~index:8 ~scale:8 ~disp:txns ());
        mov (reg 10) (reg 7);
        shl (reg 10) (imm 6);
        add (reg 10) (reg 9);
        mov (reg 11) (mem ~scale:8 ~index:10 ~disp:tree ());
        cmp (reg 11) (imm 0);
        jcc Cond.Eq ".mined";
        mov (reg 7) (reg 11);
        add (reg 13) (imm 1);
        add (reg 8) (imm 1);
        jmp ".descend";
        label ".mined";
        mov (mem ~scale:8 ~index:0 ~disp:support ()) (reg 13);
        ret;
      ]

  let workload =
    mk ~name:"freqmine" ~description:"FP-tree descent; highly divergent"
      ~table_threads:2048 [ worker ] ~setup ~worker:"worker"
end

(* ------------------------------------------------------------------ *)
(* swaptions: Monte-Carlo with the runtime PRNG; fully uniform.         *)

module Swaptions = struct
  let results = region 0

  let setup mem ~scale =
    ignore mem;
    ignore scale

  let worker =
    func "worker"
      [
        mov (reg 13) (imm 0);
        for_up ~i:6 ~from_:(imm 0) ~below:(imm 8)
          (* trials *)
          [
            mov (reg 7) (imm 10_000);
            (* rate path *)
            for_up ~i:8 ~from_:(imm 0) ~below:(imm 16)
              (* steps *)
              [
                call "__rand";
                and_ (reg 0) (imm 255);
                sub (reg 0) (imm 128);
                fadd (reg 7) (reg 0);
                fmul (reg 7) (imm 1001);
                fdiv (reg 7) (imm 1000);
              ];
            mov (reg 9) (reg 7);
            sub (reg 9) (imm 10_000);
            max_ (reg 9) (imm 0);
            (* payoff floor *)
            fadd (reg 13) (reg 9);
          ];
        mov (mem ~scale:8 ~index:0 ~disp:results ()) (reg 13);
        ret;
      ]

  let workload =
    mk ~name:"swaptions" ~description:"HJM Monte-Carlo; uniform fixed loops"
      ~table_threads:512 [ worker ] ~setup ~worker:"worker"
end

(* ------------------------------------------------------------------ *)
(* vips: 3x3 convolution over an 8x8 tile per thread.                   *)

module Vips = struct
  let image = region 0 (* 256 x 256 bytes *)

  let out = region 1

  let img_w = 256

  let setup mem ~scale =
    ignore scale;
    fill_random_bytes mem ~seed:81 ~addr:image ~n:(img_w * img_w) ~skew:20

  let worker =
    func "worker"
      [
        (* tile origin: 32 tiles per row of tiles *)
        mov (reg 6) (reg 0);
        and_ (reg 6) (imm 31);
        shl (reg 6) (imm 3);
        (* x0 *)
        mov (reg 7) (reg 0);
        shr (reg 7) (imm 5);
        shl (reg 7) (imm 3);
        (* y0 *)
        for_up ~i:8 ~from_:(imm 1) ~below:(imm 7)
          (* y in tile *)
          [
            for_up ~i:9 ~from_:(imm 1) ~below:(imm 7)
              (* x in tile *)
              [
                (* accumulate the 3x3 neighbourhood *)
                mov (reg 10) (imm 0);
                for_up ~i:11 ~from_:(imm 0) ~below:(imm 3)
                  [
                    for_up ~i:12 ~from_:(imm 0) ~below:(imm 3)
                      [
                        (* addr = (y0+y+dy-1)*W + x0+x+dx-1 *)
                        mov (reg 13) (reg 7);
                        add (reg 13) (reg 8);
                        add (reg 13) (reg 11);
                        sub (reg 13) (imm 1);
                        mul (reg 13) (imm img_w);
                        add (reg 13) (reg 6);
                        add (reg 13) (reg 9);
                        add (reg 13) (reg 12);
                        sub (reg 13) (imm 1);
                        mov ~w:Width.W1 (reg 5) (mem ~index:13 ~disp:image ());
                        add (reg 10) (reg 5);
                      ];
                  ];
                div (reg 10) (imm 9);
                mov (reg 13) (reg 7);
                add (reg 13) (reg 8);
                mul (reg 13) (imm img_w);
                add (reg 13) (reg 6);
                add (reg 13) (reg 9);
                mov ~w:Width.W1 (mem ~index:13 ~disp:out ()) (reg 10);
              ];
          ];
        ret;
      ]

  let workload =
    mk ~name:"vips" ~description:"tiled 3x3 box filter; uniform loops"
      ~table_threads:512 ~default_threads:64 [ worker ] ~setup ~worker:"worker"
end

(* ------------------------------------------------------------------ *)
(* x264: SAD motion search with early termination.                      *)

module X264 = struct
  let frame = region 0 (* current frame, 256x256 bytes *)

  let ref_frame = region 1

  let best_mv = region 2

  let img_w = 256

  let setup mem ~scale =
    ignore scale;
    fill_random_bytes mem ~seed:82 ~addr:frame ~n:(img_w * img_w) ~skew:60;
    fill_random_bytes mem ~seed:83 ~addr:ref_frame ~n:(img_w * img_w) ~skew:60

  let worker =
    func "worker"
      [
        (* 16x16 macroblock origin from tid (16 blocks per row) *)
        mov (reg 6) (reg 0);
        and_ (reg 6) (imm 15);
        shl (reg 6) (imm 4);
        mov (reg 7) (reg 0);
        shr (reg 7) (imm 4);
        shl (reg 7) (imm 4);
        mov (reg 12) (imm 100_000);
        (* best SAD *)
        mov (reg 13) (imm 0);
        (* best candidate *)
        for_up ~i:8 ~from_:(imm 0) ~below:(imm 16)
          (* candidate vectors *)
          [
            mov (reg 9) (imm 0);
            (* SAD over 16 sample pixels with early exit *)
            mov (reg 10) (imm 0);
            label ".sad";
            cmp (reg 10) (imm 16);
            jcc Cond.Ge ".sad_done";
            cmp (reg 9) (reg 12);
            jcc Cond.Ge ".sad_done";
            (* early termination *)
            (* sample pixel (y0 + px, x0 + px) vs shifted reference *)
            mov (reg 11) (reg 7);
            add (reg 11) (reg 10);
            mul (reg 11) (imm img_w);
            add (reg 11) (reg 6);
            add (reg 11) (reg 10);
            mov ~w:Width.W1 (reg 5) (mem ~index:11 ~disp:frame ());
            add (reg 11) (reg 8);
            (* candidate shift *)
            mov ~w:Width.W1 (reg 4) (mem ~index:11 ~disp:ref_frame ());
            sub (reg 5) (reg 4);
            mov (reg 4) (reg 5);
            neg (reg 4);
            max_ (reg 5) (reg 4);
            (* |diff| *)
            add (reg 9) (reg 5);
            add (reg 10) (imm 1);
            jmp ".sad";
            label ".sad_done";
            if_ Cond.Lt (reg 9) (reg 12)
              ~then_:[ mov (reg 12) (reg 9); mov (reg 13) (reg 8) ]
              ();
          ];
        mov (mem ~scale:8 ~index:0 ~disp:best_mv ()) (reg 13);
        ret;
      ]

  let workload =
    mk ~name:"x264" ~description:"SAD motion search with early exit"
      ~table_threads:4096 [ worker ] ~setup ~worker:"worker"
end

let all =
  [
    Blackscholes.workload;
    Streamcluster.workload;
    Bodytrack.workload;
    Facesim.workload;
    Fluidanimate.workload;
    Freqmine.workload;
    Swaptions.workload;
    Vips.workload;
    X264.workload;
  ]
