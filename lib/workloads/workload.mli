(** Workload definitions and the trace/analyze runners.

    A workload bundles a CPU (MIMD) implementation — and, for the paper's
    11 correlation workloads, a CUDA-style SPMD variant — with its input
    setup and per-thread argument generator.  Thread counts follow the
    paper's Table I ([table_threads]) but default to a scaled-down count
    ([default_threads]) so the full evaluation runs in seconds. *)

open Threadfuser_prog
module Compiler = Threadfuser_compiler.Compiler
module Memory = Threadfuser_machine.Memory
module Analyzer = Threadfuser.Analyzer

type category = Correlation | Microservice | Parsec | Other

type variant = {
  program : Surface.t;  (** workload functions; the runtime lib is linked in *)
  worker : string;
  setup : Memory.t -> scale:int -> unit;
  args : tid:int -> n:int -> scale:int -> int list;
}

type t = {
  name : string;
  suite : string;
  category : category;
  description : string;
  table_threads : int;  (** #SIMT threads from the paper's Table I *)
  default_threads : int;
  alloc : Rtlib.alloc_mode;  (** allocator the workload links against *)
  cpu : variant;
  cuda : variant option;
}

val make :
  ?category:category ->
  ?alloc:Rtlib.alloc_mode ->
  ?cuda:variant ->
  name:string ->
  suite:string ->
  description:string ->
  table_threads:int ->
  default_threads:int ->
  variant ->
  t

type traced = {
  prog : Program.t;
  traces : Threadfuser_trace.Thread_trace.t array;
  n_threads : int;
}

(** Machine configuration used for workload tracing (block quantum 8,
    mild spin accounting). *)
val machine_config : Threadfuser_machine.Machine.config

(** Link a variant against the runtime library and compile it. *)
val link : ?alloc:Rtlib.alloc_mode -> variant -> Compiler.level -> Program.t

(** Trace the CPU (MIMD) implementation at an optimization level.
    [exclude] hides the named functions (and their callees) from the trace
    — the paper §III's selective tracing. *)
val trace_cpu :
  ?level:Compiler.level ->
  ?threads:int ->
  ?scale:int ->
  ?exclude:string list ->
  t ->
  traced

(** Trace the CUDA-style SPMD variant (correlation workloads only); the
    "nvcc" pipeline is fixed at O2. *)
val trace_cuda : ?threads:int -> ?scale:int -> t -> traced option

(** Full pipeline: trace the CPU variant and analyze it. *)
val analyze :
  ?options:Analyzer.options ->
  ?level:Compiler.level ->
  ?threads:int ->
  ?scale:int ->
  ?exclude:string list ->
  t ->
  Analyzer.result

val category_name : category -> string
