(** The full studied-workload catalog — the paper's Table I.

    36 workloads across six suites; 11 of them (Rodinia + Paropoly + the
    two microbenchmarks) carry CUDA-style variants and form the correlation
    set of §IV.  [hdsearch_mid_fixed] is the extra Fig. 7 case-study
    variant and is not part of the 36. *)

let all : Workload.t list =
  W_rodinia.all @ W_paropoly.all @ W_micro.all @ W_usuite.all @ W_dsb.all
  @ W_parsec.all @ W_other.all

let correlation : Workload.t list =
  List.filter (fun (w : Workload.t) -> w.Workload.cuda <> None) all

let microservices : Workload.t list =
  List.filter
    (fun (w : Workload.t) -> w.Workload.category = Workload.Microservice)
    all

let hdsearch_mid_fixed : Workload.t = W_usuite.hdsearch_mid_fixed

let find_opt name : Workload.t option =
  List.find_opt (fun (w : Workload.t) -> w.Workload.name = name)
    (hdsearch_mid_fixed :: all)

(* Standard Levenshtein DP, two rolling rows. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest name =
  let name = String.lowercase_ascii name in
  let best =
    List.fold_left
      (fun acc (w : Workload.t) ->
        let d = edit_distance name w.Workload.name in
        match acc with
        | Some (d', _) when d' <= d -> acc
        | _ -> Some (d, w.Workload.name))
      None
      (hdsearch_mid_fixed :: all)
  in
  match best with
  | Some (d, candidate) when d <= max 2 (String.length name / 3) ->
      Some candidate
  | _ -> None

let find name : Workload.t =
  match find_opt name with
  | Some w -> w
  | None -> (
      match suggest name with
      | Some s -> Fmt.invalid_arg "unknown workload %s (did you mean %s?)" name s
      | None -> Fmt.invalid_arg "unknown workload %s" name)

let names () = List.map (fun (w : Workload.t) -> w.Workload.name) all
