(** The full studied-workload catalog — the paper's Table I.

    36 workloads across six suites; 11 of them (Rodinia + Paropoly + the
    two microbenchmarks) carry CUDA-style variants and form the correlation
    set of §IV.  [hdsearch_mid_fixed] is the extra Fig. 7 case-study
    variant and is not part of the 36. *)

let all : Workload.t list =
  W_rodinia.all @ W_paropoly.all @ W_micro.all @ W_usuite.all @ W_dsb.all
  @ W_parsec.all @ W_other.all

let correlation : Workload.t list =
  List.filter (fun (w : Workload.t) -> w.Workload.cuda <> None) all

let microservices : Workload.t list =
  List.filter
    (fun (w : Workload.t) -> w.Workload.category = Workload.Microservice)
    all

let hdsearch_mid_fixed : Workload.t = W_usuite.hdsearch_mid_fixed

let find name : Workload.t =
  match
    List.find_opt (fun (w : Workload.t) -> w.Workload.name = name)
      (hdsearch_mid_fixed :: all)
  with
  | Some w -> w
  | None -> Fmt.invalid_arg "unknown workload %s" name

let names () = List.map (fun (w : Workload.t) -> w.Workload.name) all
