(** Shared layout constants and host-setup helpers for workload modules:
    a parameter block, 1 MiB-spaced data regions, cache-line-spaced lock
    slots, and deterministic input fills. *)

val param : int -> int

(** Raises outside [0, 200]. *)
val region : int -> int

val lock_base : int

val lock_slot : int -> int

val set_param : Threadfuser_machine.Memory.t -> int -> int -> unit

val fill_random :
  Threadfuser_machine.Memory.t -> seed:int -> addr:int -> n:int -> bound:int -> unit

(** [skew] biases towards repeated runs (compressibility). *)
val fill_random_bytes :
  Threadfuser_machine.Memory.t -> seed:int -> addr:int -> n:int -> skew:int -> unit

(** Builder operand reading parameter [k]. *)
val p : int -> Threadfuser_isa.Operand.t
