(** The IR runtime library linked into every workload program — the
    services a C++ workload gets from libc/libstdc++, written in the
    mini-ISA so their instructions and synchronization appear in traces
    exactly like real library code does under PIN:

    - [__malloc]/[__free]: in [Glibc] mode a single global mutex guards the
      heap (the paper's §V-B allocator-serialization observation); in
      [Concurrent] mode each thread bumps a private arena derived from its
      TLS base.
    - [__rand]: per-thread 48-bit LCG seeded from the TLS address.
    - [__hash]: FNV-1a over a byte range ([r0] = address, [r1] = length).
    - [__memcpy]: byte copy ([r0] = dst, [r1] = src, [r2] = length).

    All runtime functions clobber only r0..r5. *)

type alloc_mode = Glibc | Concurrent

(** Global allocator state addresses (in the globals segment). *)
val heap_break : int

val alloc_lock : int

val alloc_count : int

(** TLS offsets used by the runtime (the O0 spill pass owns 0..0x70). *)
val tls_bump : int

val tls_rand : int

val arena_bytes : int

(** Host-side initialization of the runtime globals; run before tracing. *)
val init : Threadfuser_machine.Memory.t -> unit

(** Runtime functions for an allocator mode; appended to every workload's
    function list before assembly. *)
val funcs : alloc_mode -> Threadfuser_prog.Surface.t
