(** Prometheus text-exposition export of an {!Obs.snapshot} (the format
    accepted by [promtool] and node-exporter text collectors).

    Counters export as [counter] metrics.  Histograms export as a
    log-bucketed (powers of two) [histogram] — cumulative [_bucket{le=..}]
    lines plus [_sum]/[_count] — and, for one-glance reading, companion
    [_p50]/[_p95]/[_p99] gauges computed from the retained samples via
    {!Threadfuser_stats.Stats.percentile}. *)

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*. *)
let sanitize name =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    name

(* HELP text is the rest of the line: a raw newline would start a bogus
   exposition line, and backslash starts an escape, so the format requires
   [\\] and [\n] (literally backslash-n) there. *)
let escape_help help =
  let buf = Buffer.create (String.length help + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    help;
  Buffer.contents buf

(* Label values additionally live inside double quotes. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let add_help buf name help kind =
  if help <> "" then
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

(* Cumulative powers-of-two buckets covering the sample range, at most
   [max_buckets] of them (the log-bucketed exposition of the issue). *)
let log_buckets samples =
  let max_buckets = 32 in
  let maxv = Array.fold_left Float.max 0.0 samples in
  let rec bounds acc le =
    if le >= maxv || List.length acc >= max_buckets then List.rev acc
    else bounds (le :: acc) (le *. 2.0)
  in
  let bounds = List.rev (bounds [] 1.0) @ [ Float.infinity ] in
  List.map
    (fun le ->
      let n = Array.fold_left (fun n x -> if x <= le then n + 1 else n) 0 samples in
      (le, n))
    bounds

let counter buf c =
  let name = sanitize (Obs.counter_name c) in
  add_help buf name (Obs.counter_help c) "counter";
  Buffer.add_string buf
    (Printf.sprintf "%s %d\n" name (Obs.Counter.value c))

let gauge buf g =
  let name = sanitize (Obs.gauge_name g) in
  add_help buf name (Obs.gauge_help g) "gauge";
  Buffer.add_string buf (Printf.sprintf "%s %d\n" name (Obs.Gauge.value g))

let histogram buf h =
  let name = sanitize (Obs.histogram_name h) in
  add_help buf name (Obs.histogram_help h) "histogram";
  let samples = Obs.Histogram.samples h in
  let scale =
    (* buckets come from the retained samples; rescale to total count so
       the exposition stays consistent after decimation *)
    if Array.length samples = 0 then 0.0
    else float_of_int (Obs.Histogram.count h) /. float_of_int (Array.length samples)
  in
  List.iter
    (fun (le, n) ->
      let le_str =
        escape_label_value (if le = Float.infinity then "+Inf" else float_str le)
      in
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"%s\"} %.0f\n" name le_str
           (float_of_int n *. scale)))
    (log_buckets samples);
  Buffer.add_string buf
    (Printf.sprintf "%s_sum %s\n" name (float_str (Obs.Histogram.sum h)));
  Buffer.add_string buf
    (Printf.sprintf "%s_count %d\n" name (Obs.Histogram.count h));
  List.iter
    (fun (suffix, q) ->
      let qname = name ^ suffix in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" qname);
      Buffer.add_string buf
        (Printf.sprintf "%s %s\n" qname
           (float_str (Obs.Histogram.quantile h q))))
    [ ("_p50", 0.5); ("_p95", 0.95); ("_p99", 0.99) ]

(* Build metadata exported as an info-style gauge: labels carry the
   version strings, the value is the constant 1 (the node-exporter
   convention, so PromQL joins can pick the labels up). *)
let version = "1.0.0"
let build_info = [ ("version", version); ("ocaml", Sys.ocaml_version) ]

let to_string (s : Obs.snapshot) =
  let buf = Buffer.create 4096 in
  List.iter (fun c -> counter buf c) s.Obs.counters;
  List.iter (fun g -> gauge buf g) s.Obs.gauges;
  List.iter (fun h -> histogram buf h) s.Obs.histograms;
  (* always emitted, even at 0: scrapers alert on the family appearing
     with a rate, which requires a stable baseline sample *)
  add_help buf "tf_obs_events_dropped_total"
    "trace events dropped past the collector cap" "counter";
  Buffer.add_string buf
    (Printf.sprintf "tf_obs_events_dropped_total %d\n" s.Obs.events_dropped);
  add_help buf "tf_build_info"
    "build metadata carried in labels; value is constant 1" "gauge";
  Buffer.add_string buf
    (Printf.sprintf "tf_build_info{%s} 1\n"
       (String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label_value v))
             build_info)));
  add_help buf "tf_uptime_seconds"
    "seconds since the collector clock was last reset" "gauge";
  Buffer.add_string buf
    (Printf.sprintf "tf_uptime_seconds %s\n" (float_str (s.Obs.taken_us /. 1e6)));
  Buffer.contents buf

let to_file path (s : Obs.snapshot) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string s))
