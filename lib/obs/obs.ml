(** In-process observability for the analysis pipeline: hierarchical timed
    spans, instant events on named tracks, monotonic counters and latency /
    size histograms, all feeding one global thread-safe collector.

    The collector is *off* by default.  Every hook is guarded by a single
    load-and-branch on {!enabled}, so an instrumented pipeline with the
    collector disabled runs at native speed (the Bechamel perf suite tracks
    the ratio); argument construction at call sites must therefore also sit
    behind [if !Obs.enabled then ...].

    Spans and instants land on {e tracks} (Perfetto rows).  Framework
    timing uses {!pipeline} / {!replay_track}; analysis events (divergence
    splits, reconvergence, uncoalesced memory, lock serialization) use
    {!divergence_track} / {!memory_track} / {!sync_track}.  Export with
    {!Trace_export} (Chrome trace-event JSON, opens in ui.perfetto.dev) or
    {!Prom} (Prometheus text exposition).  See docs/observability.md. *)

module Stats = Threadfuser_stats.Stats

let enabled = ref false
let set_enabled b = enabled := b

(* Replay-path instants (divergence splits, reconvergence, serialized
   accesses, lock serializations) fire once per *dynamic occurrence*,
   which dominates the cost of an enabled collector on replay-heavy
   runs.  By default the emulator thins them to the first occurrence per
   (warp, site) — counters still count every occurrence exactly, and the
   thinning state is warp-confined, so event totals stay identical at
   every [Analyzer.options.domains].  [set_full_events true] (the
   [threadfuser profile] default) restores one instant per occurrence
   for timeline debugging. *)
let full_events = ref false
let set_full_events b = full_events := b

(* Memoized decimal rendering of small non-negative ints.  The replay
   emits instants whose arguments are almost always lane counts, block
   ids and function ids well under the cap; rendering them through this
   table makes an enabled-path hook allocation-free for the common case.
   The table is immutable after init, so sharing across domains is safe. *)
let itos_cap = 4096
let itos_table = Array.init itos_cap string_of_int
let itos n = if n >= 0 && n < itos_cap then itos_table.(n) else string_of_int n

(* One global mutex guards the event log, track registry and histogram
   sample buffers.  Counters use [Atomic.t] and skip the lock.

   Domain-safety: the suite runner hammers this collector from several
   [Domain.spawn]ed workers at once, so every mutation of shared state is
   either atomic or under [lock] — including registry creation and
   histogram sample growth/decimation.  The two plain refs ([enabled],
   [t0]) are single-word flags written only from lifecycle entry points
   ([set_enabled]/[reset]); concurrent readers may observe either value,
   which is benign (an event more or less around the toggle), and OCaml's
   memory model makes such races well-defined for immediate values. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* ------------------------------------------------------------------ *)
(* Time base: wall-clock microseconds relative to the last [reset].    *)

let t0 = ref (Unix.gettimeofday ())
let now_us () = (Unix.gettimeofday () -. !t0) *. 1e6

(* ------------------------------------------------------------------ *)
(* Tracks                                                              *)

type track = int

let track_names : (int, string) Hashtbl.t = Hashtbl.create 8
let track_ids : (string, int) Hashtbl.t = Hashtbl.create 8
let next_track = ref 0

let track name =
  locked (fun () ->
      match Hashtbl.find_opt track_ids name with
      | Some id -> id
      | None ->
          let id = !next_track in
          incr next_track;
          Hashtbl.replace track_ids name id;
          Hashtbl.replace track_names id name;
          id)

(* Registration order fixes the Perfetto row order. *)
let pipeline = track "pipeline"
let replay_track = track "warp replay"
let divergence_track = track "divergence"
let memory_track = track "memory"
let sync_track = track "sync"
let blame_track = track "attribution"

(* ------------------------------------------------------------------ *)
(* Events                                                              *)

type event =
  | Complete of {
      name : string;
      track : track;
      ts : float; (* µs since reset *)
      dur : float; (* µs *)
      args : (string * string) list;
    }
  | Instant of {
      name : string;
      track : track;
      ts : float;
      args : (string * string) list;
    }

(* The event log, newest first.  Bounded so a long replay with per-event
   instrumentation cannot exhaust memory: past the cap, events are counted
   in [dropped] instead of stored. *)
let max_events = ref 500_000
let set_max_events n = max_events := n
let events_rev : event list ref = ref []
let n_events = ref 0
let dropped = Atomic.make 0

(* ------------------------------------------------------------------ *)
(* Flight recorder: a bounded ring of recent events, independent of the
   global log.  One instance per serve session / suite job gives a
   post-mortem timeline for exactly the runs that cannot be reproduced:
   the ring holds the *last* [capacity] events, not the first, so the
   dump always covers the moments before the failure.  [record] works
   whether or not the global collector is enabled (supervisors note
   lifecycle events explicitly); additionally, a recorder [attach]ed to
   the current domain taps every event the enabled collector records
   there, so analyzer spans land in the session's ring too. *)
module Flight = struct
  type t = {
    label : string;
    cap : int;
    ring : event array;
    mutable n : int;  (* total recorded; ring slot is [n mod cap] *)
    fm : Mutex.t;  (* own mutex: the select loop and a worker both write *)
  }

  let filler = Instant { name = ""; track = pipeline; ts = 0.0; args = [] }

  let create ?(capacity = 2048) label =
    if capacity < 1 then invalid_arg "Obs.Flight.create: capacity must be >= 1";
    {
      label;
      cap = capacity;
      ring = Array.make capacity filler;
      n = 0;
      fm = Mutex.create ();
    }

  let label fl = fl.label
  let capacity fl = fl.cap

  let record fl ev =
    Mutex.lock fl.fm;
    fl.ring.(fl.n mod fl.cap) <- ev;
    fl.n <- fl.n + 1;
    Mutex.unlock fl.fm

  let note ?(args = []) ?(track = pipeline) fl name =
    record fl (Instant { name; track; ts = now_us (); args })

  let recorded fl =
    Mutex.lock fl.fm;
    let n = fl.n in
    Mutex.unlock fl.fm;
    n

  let dropped fl = max 0 (recorded fl - fl.cap)

  (** Retained events, oldest first (the last [capacity] recorded). *)
  let events fl =
    Mutex.lock fl.fm;
    let kept = min fl.n fl.cap in
    let start = fl.n - kept in
    let l = List.init kept (fun i -> fl.ring.((start + i) mod fl.cap)) in
    Mutex.unlock fl.fm;
    l

  (* Per-domain tap.  [taps] counts attached domains so the global
     [record] fast path stays one atomic load when no recorder is live. *)
  let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
  let taps = Atomic.make 0

  let attach fl =
    (match Domain.DLS.get key with None -> Atomic.incr taps | Some _ -> ());
    Domain.DLS.set key (Some fl)

  let detach () =
    match Domain.DLS.get key with
    | None -> ()
    | Some _ ->
        Atomic.decr taps;
        Domain.DLS.set key None

  let with_attached fl f =
    attach fl;
    Fun.protect ~finally:detach f
end

(* Hot path (one call per replay instant/span): plain lock/unlock, no
   [locked] — the closure plus [Fun.protect] handler would double the
   cost of recording, and nothing between lock and unlock can raise. *)
let record ev =
  Mutex.lock lock;
  if !n_events >= !max_events then Atomic.incr dropped
  else begin
    events_rev := ev :: !events_rev;
    incr n_events
  end;
  Mutex.unlock lock;
  if Atomic.get Flight.taps > 0 then
    match Domain.DLS.get Flight.key with
    | Some fl -> Flight.record fl ev
    | None -> ()

let instant ?(args = []) ~track name =
  if !enabled then record (Instant { name; track; ts = now_us (); args })

(* Raw complete-event entry point for supervisors that time work they do
   not run inside a closure (a forked child's lifetime, observed from the
   parent's reaping loop).  [ts]/[dur] in µs on this collector's clock. *)
let complete ?(track = pipeline) ?(args = []) name ~ts ~dur =
  if !enabled then record (Complete { name; track; ts; dur; args })

(** [span ?track ?args name f] times [f ()] as a complete event.  Nested
    spans on the same track render as a hierarchy (Chrome trace viewers
    nest complete events by time containment).  Disabled cost: one branch. *)
let span ?(track = pipeline) ?(args = []) name f =
  if not !enabled then f ()
  else begin
    let ts = now_us () in
    Fun.protect
      ~finally:(fun () ->
        record (Complete { name; track; ts; dur = now_us () -. ts; args }))
      f
  end

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

module Counter = struct
  type t = { name : string; help : string; value : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32
  let order : string list ref = ref [] (* registration order, reversed *)

  let make ?(help = "") name =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some c -> c
        | None ->
            let c = { name; help; value = Atomic.make 0 } in
            Hashtbl.replace registry name c;
            order := name :: !order;
            c)

  (* The guard lives here so call sites stay one-line; constructing
     per-call arguments (unlike a constant [t]) must be guarded by the
     caller. *)
  let incr c = if !enabled then Atomic.incr c.value
  let add c n = if !enabled then ignore (Atomic.fetch_and_add c.value n)
  let value c = Atomic.get c.value
end

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)

module Gauge = struct
  (* A current-level instrument (sessions active, queue depth): unlike a
     counter it moves both ways, and unlike an instant it is exported by
     the Prometheus endpoint.  Same atomic discipline as [Counter], but
     *not* gated on [enabled]: a gauge tracks live daemon state whose
     level must stay correct whether or not the event collector is on. *)
  type t = { name : string; help : string; value : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16
  let order : string list ref = ref [] (* registration order, reversed *)

  let make ?(help = "") name =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some g -> g
        | None ->
            let g = { name; help; value = Atomic.make 0 } in
            Hashtbl.replace registry name g;
            order := name :: !order;
            g)

  let incr g = Atomic.incr g.value
  let decr g = Atomic.decr g.value
  let add g n = ignore (Atomic.fetch_and_add g.value n)
  let set g n = Atomic.set g.value n
  let value g = Atomic.get g.value
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

module Histogram = struct
  (* Raw samples (decimated 2:1 past [cap], keeping the distribution's
     shape) back the quantile estimates; the Prometheus exporter buckets
     them logarithmically (powers of two) at export time. *)
  type t = {
    name : string;
    help : string;
    mutable samples : float array;
    mutable n : int; (* live prefix of [samples] *)
    mutable count : int; (* total observations *)
    mutable sum : float;
  }

  let cap = 65_536

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16
  let order : string list ref = ref []

  let make ?(help = "") name =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some h -> h
        | None ->
            let h =
              { name; help; samples = Array.make 64 0.0; n = 0; count = 0; sum = 0.0 }
            in
            Hashtbl.replace registry name h;
            order := name :: !order;
            h)

  (* Hot path (one call per memory instruction when enabled): plain
     lock/unlock like [record] — no closure, no [Fun.protect].  The body
     cannot raise (growth is bounded by [cap]). *)
  let observe h x =
    if !enabled then begin
      Mutex.lock lock;
      h.count <- h.count + 1;
      h.sum <- h.sum +. x;
      if h.n = Array.length h.samples then
        if h.n < cap then begin
          let bigger = Array.make (2 * h.n) 0.0 in
          Array.blit h.samples 0 bigger 0 h.n;
          h.samples <- bigger
        end
        else begin
          (* decimate: keep every other sample *)
          let m = h.n / 2 in
          for i = 0 to m - 1 do
            h.samples.(i) <- h.samples.(2 * i)
          done;
          h.n <- m
        end;
      h.samples.(h.n) <- x;
      h.n <- h.n + 1;
      Mutex.unlock lock
    end

  let count h = h.count
  let sum h = h.sum
  let samples h = locked (fun () -> Array.sub h.samples 0 h.n)

  (** Linear-interpolated quantile over the retained samples
      ({!Stats.percentile}); 0 when nothing was observed. *)
  let quantile h q =
    let s = samples h in
    if Array.length s = 0 then 0.0 else Stats.percentile ~q s
end

(** [timed h f] observes [f]'s wall-clock latency (µs) into histogram [h];
    one branch when disabled. *)
let timed h f =
  if not !enabled then f ()
  else begin
    let t = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        Histogram.observe h ((Unix.gettimeofday () -. t) *. 1e6))
      f
  end

(* ------------------------------------------------------------------ *)
(* Snapshot + reset                                                    *)

type snapshot = {
  events : event list; (* chronological *)
  tracks : (track * string) list; (* registration order *)
  counters : Counter.t list; (* registration order *)
  gauges : Gauge.t list; (* registration order *)
  histograms : Histogram.t list;
  events_dropped : int;
  taken_us : float; (* collector clock when the snapshot was taken *)
}

(* A snapshot must be a *point-in-time* copy, not a bag of live handles:
   exporters walk a histogram's samples, count and sum in separate steps,
   and with live handles a concurrent [observe] between those reads skews
   the bucket rescale (the [+Inf] bucket would disagree with [_count]).
   Freezing every instrument under the same lock acquisition as the event
   log makes the whole snapshot internally consistent under load — the
   copies answer through the ordinary accessors, so exporters are
   oblivious. *)
let frozen_counters_locked () =
  List.rev_map
    (fun n ->
      let c = Hashtbl.find Counter.registry n in
      { c with Counter.value = Atomic.make (Atomic.get c.Counter.value) })
    !Counter.order

let frozen_gauges_locked () =
  List.rev_map
    (fun n ->
      let g = Hashtbl.find Gauge.registry n in
      { g with Gauge.value = Atomic.make (Atomic.get g.Gauge.value) })
    !Gauge.order

let frozen_histograms_locked () =
  List.rev_map
    (fun n ->
      let h = Hashtbl.find Histogram.registry n in
      { h with Histogram.samples = Array.sub h.Histogram.samples 0 h.Histogram.n })
    !Histogram.order

let tracks_locked () =
  Hashtbl.fold (fun id name acc -> (id, name) :: acc) track_names []
  |> List.sort compare

let snapshot () =
  locked (fun () ->
      {
        events = List.rev !events_rev;
        tracks = tracks_locked ();
        counters = frozen_counters_locked ();
        gauges = frozen_gauges_locked ();
        histograms = frozen_histograms_locked ();
        events_dropped = Atomic.get dropped;
        taken_us = now_us ();
      })

(** A snapshot whose events are the flight recorder's ring (and whose
    dropped count is the ring's overwrite count) but whose instruments
    are the global collector's current values — the "metrics snapshot"
    part of a flight dump. *)
let flight_snapshot fl =
  let events = Flight.events fl in
  let events_dropped = Flight.dropped fl in
  locked (fun () ->
      {
        events;
        tracks = tracks_locked ();
        counters = frozen_counters_locked ();
        gauges = frozen_gauges_locked ();
        histograms = frozen_histograms_locked ();
        events_dropped;
        taken_us = now_us ();
      })

(** Clear the event log, zero every counter and histogram, and restart the
    clock.  Registered instruments (and tracks) survive so cached handles
    in instrumented modules stay valid. *)
let reset () =
  locked (fun () ->
      events_rev := [];
      n_events := 0;
      Atomic.set dropped 0;
      t0 := Unix.gettimeofday ();
      Hashtbl.iter (fun _ (c : Counter.t) -> Atomic.set c.Counter.value 0)
        Counter.registry;
      Hashtbl.iter (fun _ (g : Gauge.t) -> Atomic.set g.Gauge.value 0)
        Gauge.registry;
      Hashtbl.iter
        (fun _ (h : Histogram.t) ->
          h.Histogram.n <- 0;
          h.Histogram.count <- 0;
          h.Histogram.sum <- 0.0)
        Histogram.registry)

(* Accessors for the exporters (the record internals stay private). *)
let track_id (t : track) = t
let counter_name (c : Counter.t) = c.Counter.name
let counter_help (c : Counter.t) = c.Counter.help
let gauge_name (g : Gauge.t) = g.Gauge.name
let gauge_help (g : Gauge.t) = g.Gauge.help
let histogram_name (h : Histogram.t) = h.Histogram.name
let histogram_help (h : Histogram.t) = h.Histogram.help
