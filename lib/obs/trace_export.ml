(** Chrome trace-event / Perfetto JSON export of an {!Obs.snapshot}.

    Emits the classic JSON-array trace-event format (a ["traceEvents"]
    object), which [ui.perfetto.dev] and [chrome://tracing] both load
    directly: one metadata record names each track (thread), spans are
    ["ph":"X"] complete events and instants ["ph":"i"] thread-scoped
    events.  Timestamps are µs, as the format requires. *)

let pid = 1

(* Minimal JSON string escaping (the emitter is self-contained so the
   obs library stays dependency-free below lib/report). *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_args buf = function
  | [] -> ()
  | args ->
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
        args;
      Buffer.add_char buf '}'

let add_event buf ev =
  (match (ev : Obs.event) with
  | Obs.Complete { name; ts; dur; args; track } ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"framework\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f"
           (escape name) pid (Obs.track_id track) ts dur);
      add_args buf args
  | Obs.Instant { name; ts; args; track } ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"analysis\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f"
           (escape name) pid (Obs.track_id track) ts);
      add_args buf args);
  Buffer.add_char buf '}'

let to_string (s : Obs.snapshot) =
  let buf = Buffer.create 65_536 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  let emit_obj f =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    f ()
  in
  (* process + track (thread) name metadata *)
  emit_obj (fun () ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"threadfuser\"}}"
           pid));
  List.iter
    (fun (track, name) ->
      emit_obj (fun () ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
               pid (Obs.track_id track) (escape name))))
    s.Obs.tracks;
  List.iter (fun ev -> emit_obj (fun () -> add_event buf ev)) s.Obs.events;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"";
  if s.Obs.events_dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf ",\"metadata\":{\"events_dropped\":%d}"
         s.Obs.events_dropped);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file path (s : Obs.snapshot) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string s))
