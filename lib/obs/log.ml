(** Leveled structured logging for the framework (docs/observability.md).

    One line per record on stderr:

    {v threadfuser: [info] replay finished warps=12 issues=48210 v}

    The level comes from the [TF_LOG] environment variable
    ([debug]/[info]/[warn]/[error]/[quiet], read by {!init_from_env}) or a
    CLI [--log-level] flag; default [warn] so library users and tests stay
    quiet.  Suppressed records cost nothing: the format arguments are
    consumed by [Format.ifprintf] without rendering. *)

type level = Debug | Info | Warn | Error

let to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" | "err" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

(* [None] = quiet: nothing is emitted, not even errors. *)
let threshold : level option ref = ref (Some Warn)
let set_level l = threshold := Some l
let set_quiet () = threshold := None
let level () = !threshold

let enabled l =
  match !threshold with Some t -> severity l >= severity t | None -> false

(** Where records go; swap for a buffer formatter in tests. *)
let out = ref Format.err_formatter
let set_formatter ppf = out := ppf

(* Field values are quoted only when they would break key=value parsing. *)
let field_value v =
  let needs_quote =
    v = "" || String.exists (fun c -> c = ' ' || c = '"' || c = '=') v
  in
  if needs_quote then Printf.sprintf "%S" v else v

let emit_fields ppf fields =
  List.iter
    (fun (k, v) -> Format.fprintf ppf " %s=%s" k (field_value v))
    fields

(* Records are rendered into a private buffer and emitted to the shared
   formatter in one locked ["%s@."] — so concurrent domains (the suite
   runner's worker pool) never interleave fragments of two records on one
   line.  The lock is held only for the final write, not while the
   caller's format arguments render. *)
let emit_lock = Mutex.create ()

let log lvl ?(fields = []) fmt =
  if enabled lvl then begin
    let buf = Buffer.create 96 in
    let bppf = Format.formatter_of_buffer buf in
    Format.fprintf bppf "threadfuser: [%s] " (to_string lvl);
    Format.kfprintf
      (fun bppf ->
        emit_fields bppf fields;
        Format.pp_print_flush bppf ();
        Mutex.lock emit_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock emit_lock)
          (fun () -> Format.fprintf !out "%s@." (Buffer.contents buf)))
      bppf fmt
  end
  else Format.ifprintf Format.str_formatter fmt

let debug ?fields fmt = log Debug ?fields fmt
let info ?fields fmt = log Info ?fields fmt
let warn ?fields fmt = log Warn ?fields fmt
let err ?fields fmt = log Error ?fields fmt

(** Apply [TF_LOG] (unset or unrecognized values keep the current level;
    [TF_LOG=quiet] silences everything). *)
let init_from_env () =
  match Sys.getenv_opt "TF_LOG" with
  | None -> ()
  | Some v -> (
      match String.lowercase_ascii v with
      | "quiet" | "off" | "none" -> set_quiet ()
      | v -> ( match of_string v with Some l -> set_level l | None -> ()))
