(** In-process observability: timed spans, instant events on named tracks,
    counters and histograms feeding one global collector that is safe to
    hammer from multiple domains (counters are atomic; the event log,
    registries and histograms are mutex-guarded).

    Disabled (the default) every hook costs one load-and-branch; call
    sites that build arguments must guard them with [if !Obs.enabled].
    Export a run with {!Trace_export} (Chrome trace-event JSON for
    ui.perfetto.dev) or {!Prom} (Prometheus text exposition).
    See docs/observability.md for the span model and track conventions. *)

(** Global collector switch.  Exposed as a [ref] so hot paths can guard
    argument construction with a single load. *)
val enabled : bool ref

val set_enabled : bool -> unit

(** Per-occurrence replay instants.  Off (the default), the emulator
    thins divergence/memory/sync instants to the first occurrence per
    (warp, site) — counter totals stay exact, and because the thinning
    state is warp-confined the event totals are identical at every
    domain count.  On, every dynamic occurrence is recorded
    ([threadfuser profile] turns this on for timeline debugging). *)
val full_events : bool ref

val set_full_events : bool -> unit

(** Memoized [string_of_int] for small non-negative ints (lane counts,
    block/function ids): enabled-path hooks can build their arguments
    without allocating.  Falls back to [string_of_int] past the cap. *)
val itos : int -> string

(** {1 Tracks} — Perfetto rows.  [track name] is idempotent. *)

type track

val track : string -> track

val pipeline : track  (** framework phase spans *)

val replay_track : track  (** per-warp replay spans *)

val divergence_track : track  (** split / reconverge instants *)

val memory_track : track  (** uncoalesced-access instants *)

val sync_track : track  (** lock-serialization instants *)

val blame_track : track  (** per-site bottleneck-attribution instants *)

(** {1 Spans and instants} *)

(** [span ?track ?args name f] times [f ()] as a complete event (exception
    safe).  Nested spans on one track render hierarchically. *)
val span :
  ?track:track -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Zero-duration event on a track. *)
val instant : ?args:(string * string) list -> track:track -> string -> unit

(** [complete name ~ts ~dur] records a complete event whose interval was
    measured externally ([ts]/[dur] in µs on this collector's clock, see
    {!now_us}) — for supervisors timing work that does not run inside a
    closure, e.g. a forked child observed from the parent. *)
val complete :
  ?track:track ->
  ?args:(string * string) list ->
  string ->
  ts:float ->
  dur:float ->
  unit

(** Collector clock: µs since the last {!reset}. *)
val now_us : unit -> float

(** {1 Counters} — monotonic within a run, atomic, reset by {!reset}. *)

module Counter : sig
  type t

  val make : ?help:string -> string -> t
  (** Find-or-create in the global registry; safe at module-init time. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

(** {1 Gauges} — current levels (sessions active, queue depth), atomic and
    bidirectional.  Unlike counters they are {e not} gated on {!enabled}:
    they track live daemon state whose level must stay correct whether or
    not the event collector is on. *)

module Gauge : sig
  type t

  val make : ?help:string -> string -> t
  (** Find-or-create in the global registry; safe at module-init time. *)

  val incr : t -> unit
  val decr : t -> unit
  val add : t -> int -> unit
  val set : t -> int -> unit
  val value : t -> int
end

(** {1 Histograms} — distributions (latencies in µs, sizes in units of the
    caller's choosing).  Quantiles come from retained raw samples via
    {!Threadfuser_stats.Stats.percentile}; the Prometheus exporter buckets
    them logarithmically at export time. *)

module Histogram : sig
  type t

  val make : ?help:string -> string -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val samples : t -> float array
  (** Retained (possibly decimated) samples, oldest first. *)

  val quantile : t -> float -> float
  (** [quantile h q], [0 <= q <= 1]; 0 when empty. *)
end

val timed : Histogram.t -> (unit -> 'a) -> 'a
(** [timed h f] observes [f]'s wall-clock latency in µs into [h]
    (exception safe); one branch when disabled. *)

(** {1 Snapshot / lifecycle} *)

type event =
  | Complete of {
      name : string;
      track : track;
      ts : float;  (** µs since {!reset} *)
      dur : float;  (** µs *)
      args : (string * string) list;
    }
  | Instant of {
      name : string;
      track : track;
      ts : float;
      args : (string * string) list;
    }

type snapshot = {
  events : event list;  (** chronological *)
  tracks : (track * string) list;
  counters : Counter.t list;  (** registration order *)
  gauges : Gauge.t list;  (** registration order *)
  histograms : Histogram.t list;
  events_dropped : int;  (** events past the cap (see {!set_max_events}) *)
  taken_us : float;  (** collector clock ({!now_us}) at snapshot time *)
}

val snapshot : unit -> snapshot
(** A {e point-in-time copy}: every instrument in the returned record is
    frozen under one lock acquisition, so exporters reading a histogram's
    samples, count and sum in separate steps stay mutually consistent even
    while other domains keep observing. *)

(** {1 Flight recorder} — a bounded ring of recent events, independent of
    the global event log.  One instance per serve session or suite job:
    the ring keeps the {e last} [capacity] events, giving a post-mortem
    timeline for exactly the runs you can't reproduce.  {!Flight.record}
    works whether or not the collector is enabled (supervisors note
    lifecycle events explicitly); a recorder {!Flight.attach}ed to the
    current domain additionally taps every event the enabled collector
    records on that domain. *)

module Flight : sig
  type t

  val create : ?capacity:int -> string -> t
  (** [create ?capacity label]; default capacity 2048.  Raises
      [Invalid_argument] on a capacity < 1. *)

  val label : t -> string
  val capacity : t -> int

  val record : t -> event -> unit
  (** Append, overwriting the oldest once full.  Never gated on
      {!enabled}; safe from any domain. *)

  val note :
    ?args:(string * string) list -> ?track:track -> t -> string -> unit
  (** [note fl name] records an instant stamped {!now_us} into the ring. *)

  val recorded : t -> int
  (** Total events ever recorded (≥ what the ring retains). *)

  val dropped : t -> int
  (** Events overwritten: [max 0 (recorded - capacity)]. *)

  val events : t -> event list
  (** Retained events, oldest first. *)

  val attach : t -> unit
  (** Tap the calling domain: every event the enabled collector records
      on this domain is also appended to [fl]. *)

  val detach : unit -> unit

  val with_attached : t -> (unit -> 'a) -> 'a
  (** [attach]/run/[detach], exception safe. *)
end

val flight_snapshot : Flight.t -> snapshot
(** A snapshot whose events (and dropped count) come from the flight
    recorder's ring but whose instruments are the global collector's
    current frozen values — the payload of a flight-recorder dump. *)

val set_max_events : int -> unit
(** Event-log bound (default 500_000); excess events are dropped and
    counted in [events_dropped]. *)

val reset : unit -> unit
(** Clear events, zero instruments, restart the clock.  Registered
    counters/histograms/tracks survive, so cached handles stay valid. *)

(**/**)

val track_id : track -> int
val counter_name : Counter.t -> string
val counter_help : Counter.t -> string
val gauge_name : Gauge.t -> string
val gauge_help : Gauge.t -> string
val histogram_name : Histogram.t -> string
val histogram_help : Histogram.t -> string
