(** Chrome trace-event / Perfetto JSON export of an {!Obs.snapshot}.
    The output loads directly in [ui.perfetto.dev] or [chrome://tracing]:
    framework spans and analysis instants appear on named tracks
    (docs/observability.md). *)

val to_string : Obs.snapshot -> string
val to_file : string -> Obs.snapshot -> unit
