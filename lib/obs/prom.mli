(** Prometheus text-exposition export of an {!Obs.snapshot}: counters,
    log-bucketed histograms with [_sum]/[_count], and [_p50]/[_p95]/[_p99]
    companion gauges.  This is what [--metrics-out] writes. *)

(** Sanitize a metric name to [[a-zA-Z_:][a-zA-Z0-9_:]*] (invalid
    characters become ['_']). *)
val sanitize : string -> string

(** Escape HELP text per the exposition format: [\\] for backslash and
    [\n] for newline. *)
val escape_help : string -> string

(** Escape a label value (lives inside double quotes): backslash, double
    quote and newline. *)
val escape_label_value : string -> string

val version : string
(** The version string exported in [tf_build_info]. *)

val build_info : (string * string) list
(** The [tf_build_info] labels: version and OCaml compiler version. *)

val to_string : Obs.snapshot -> string
(** Besides the snapshot's instruments, every exposition carries
    [tf_obs_events_dropped_total] (even at 0), [tf_build_info] (labels
    from {!build_info}, value 1) and [tf_uptime_seconds] (the snapshot's
    collector-clock age). *)

val to_file : string -> Obs.snapshot -> unit
