(** Prometheus text-exposition export of an {!Obs.snapshot}: counters,
    log-bucketed histograms with [_sum]/[_count], and [_p50]/[_p95]/[_p99]
    companion gauges.  This is what [--metrics-out] writes. *)

val to_string : Obs.snapshot -> string
val to_file : string -> Obs.snapshot -> unit
