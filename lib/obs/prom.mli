(** Prometheus text-exposition export of an {!Obs.snapshot}: counters,
    log-bucketed histograms with [_sum]/[_count], and [_p50]/[_p95]/[_p99]
    companion gauges.  This is what [--metrics-out] writes. *)

(** Sanitize a metric name to [[a-zA-Z_:][a-zA-Z0-9_:]*] (invalid
    characters become ['_']). *)
val sanitize : string -> string

(** Escape HELP text per the exposition format: [\\] for backslash and
    [\n] for newline. *)
val escape_help : string -> string

(** Escape a label value (lives inside double quotes): backslash, double
    quote and newline. *)
val escape_label_value : string -> string

val to_string : Obs.snapshot -> string
val to_file : string -> Obs.snapshot -> unit
