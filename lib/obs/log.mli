(** Leveled structured logger: one [key=value]-suffixed line per record on
    stderr.  Default level [warn]; [TF_LOG] / [--log-level] raise or lower
    it.  Emission is atomic per record, so concurrent domains never
    interleave fragments of two records on one line.  See
    docs/observability.md for conventions. *)

type level = Debug | Info | Warn | Error

val to_string : level -> string
val of_string : string -> level option

val set_level : level -> unit
val set_quiet : unit -> unit
(** Silence everything, including errors ([TF_LOG=quiet]). *)

val level : unit -> level option
(** [None] when quiet. *)

val enabled : level -> bool

val set_formatter : Format.formatter -> unit
(** Redirect output (tests); default [Format.err_formatter]. *)

val debug :
  ?fields:(string * string) list ->
  ('a, Format.formatter, unit) format -> 'a

val info :
  ?fields:(string * string) list ->
  ('a, Format.formatter, unit) format -> 'a

val warn :
  ?fields:(string * string) list ->
  ('a, Format.formatter, unit) format -> 'a

val err :
  ?fields:(string * string) list ->
  ('a, Format.formatter, unit) format -> 'a

val init_from_env : unit -> unit
(** Apply [TF_LOG] if set (debug/info/warn/error/quiet). *)
