(** The serve session protocol (docs/robustness.md §8).

    A session is one connection to the daemon's Unix-domain socket:

    {v
      client                          server
        |  ---- connect ---->           |
        |  <--- status frame  (ready | busy)
        |  ---- raw TFSTREAM1 bytes --> |   (any chunking; self-delimiting)
        |  <--- status frame  (ok | degraded | error | timeout)
        |  <--- report frame  (raw report JSON; iff status.report)
        |  <--- close                   |
    v}

    The request side needs no framing of its own — {!Threadfuser_trace.Stream}
    frames are self-delimiting and end with an explicit end-of-stream frame.
    Replies are length-prefixed frames (4-byte big-endian length + payload)
    so the client can read a status object and a report of known size
    without sniffing for a terminator.  The status payload is a JSON
    object; the report payload is the {e exact} bytes of
    [Report_json.to_string], so a streamed report can be compared
    byte-for-byte against batch [threadfuser analyze --json] output. *)

module Json = Threadfuser_report.Json
module Tf_error = Threadfuser_util.Tf_error

(* -- reply framing ------------------------------------------------------ *)

(** Bound on a single reply frame — far above any real report, far below
    an allocation-of-death. *)
let max_frame_bytes = 1 lsl 28

let add_frame buf payload =
  let n = String.length payload in
  if n > max_frame_bytes then invalid_arg "Protocol.add_frame: frame too large";
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_string buf payload

let frame payload =
  let buf = Buffer.create (String.length payload + 4) in
  add_frame buf payload;
  Buffer.contents buf

(* Blocking reads, for the client side (the daemon never block-reads). *)

let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off < n then begin
      let r = Unix.read fd b off (n - off) in
      if r = 0 then raise End_of_file;
      go (off + r)
    end
  in
  go 0;
  Bytes.unsafe_to_string b

let read_frame fd =
  let hdr = read_exact fd 4 in
  let b i = Char.code hdr.[i] in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  if n > max_frame_bytes then
    Tf_error.fail Tf_error.Corrupt_input
      "reply frame of %d bytes exceeds the %d-byte bound" n max_frame_bytes;
  read_exact fd n

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* -- admin (STATS) requests --------------------------------------------- *)

(* The daemon's admin socket speaks one line-oriented request per
   connection: ["STATS json\n"] or ["STATS prom\n"] (case-insensitive;
   bare ["STATS"] means JSON).  The answer is a single reply frame —
   the JSON status document or the Prometheus text exposition — after
   which the daemon closes.  Line-oriented on purpose: the request is
   scrape-tool friendly (socat/netcat work), and the reply reuses the
   session frame so clients share [read_frame]. *)

(** Bound on an admin request line; longer is answered with an error. *)
let max_admin_request = 256

type stats_format = Stats_json | Stats_prom

let stats_request = function
  | Stats_json -> "STATS json\n"
  | Stats_prom -> "STATS prom\n"

let parse_stats_request line =
  match String.lowercase_ascii (String.trim line) with
  | "stats" | "stats json" -> Some Stats_json
  | "stats prom" -> Some Stats_prom
  | _ -> None

(* -- status objects ----------------------------------------------------- *)

type status =
  | Ready
  | Busy  (** session shed: the daemon is at [--max-sessions] *)
  | Ok_report
  | Degraded  (** partial report: threads quarantined or coverage lost *)
  | Error_reply  (** typed failure; [kind] says which *)
  | Timeout  (** the per-session deadline expired *)

let status_name = function
  | Ready -> "ready"
  | Busy -> "busy"
  | Ok_report -> "ok"
  | Degraded -> "degraded"
  | Error_reply -> "error"
  | Timeout -> "timeout"

let status_of_name = function
  | "ready" -> Some Ready
  | "busy" -> Some Busy
  | "ok" -> Some Ok_report
  | "degraded" -> Some Degraded
  | "error" -> Some Error_reply
  | "timeout" -> Some Timeout
  | _ -> None

type reply = {
  status : status;
  kind : string option;  (** {!Tf_error.kind_name} when error/timeout *)
  message : string option;
  threads : int;  (** threads the session ingested *)
  quarantined : int;
  diagnostics : string list;  (** leading diagnostics, rendered *)
  has_report : bool;  (** a report frame follows the status frame *)
}

let reply ?(kind = None) ?(message = None) ?(threads = 0) ?(quarantined = 0)
    ?(diagnostics = []) ?(has_report = false) status =
  { status; kind; message; threads; quarantined; diagnostics; has_report }

(* Only the head of the diagnostics list rides in the status frame: the
   full list can be huge and the report's coverage fields already account
   for everything dropped. *)
let max_inline_diags = 16

let reply_to_json r =
  let opt k = function None -> [] | Some v -> [ (k, Json.String v) ] in
  Json.to_compact_string
    (Json.Obj
       ([ ("status", Json.String (status_name r.status)) ]
       @ opt "kind" r.kind @ opt "message" r.message
       @ [
           ("threads", Json.Int r.threads);
           ("quarantined", Json.Int r.quarantined);
           ( "diagnostics",
             Json.List
               (List.filteri
                  (fun i _ -> i < max_inline_diags)
                  (List.map (fun d -> Json.String d) r.diagnostics)) );
           ("report", Json.Bool r.has_report);
         ]))

let reply_of_json s =
  match Json.parse s with
  | Error m -> Error (Printf.sprintf "unparseable status frame: %s" m)
  | Ok j -> (
      let str k = Option.bind (Json.member k j) Json.to_string_opt in
      let int k d =
        Option.value ~default:d (Option.bind (Json.member k j) Json.to_int_opt)
      in
      match Option.bind (str "status") status_of_name with
      | None -> Error "status frame lacks a known \"status\" field"
      | Some status ->
          Ok
            {
              status;
              kind = str "kind";
              message = str "message";
              threads = int "threads" 0;
              quarantined = int "quarantined" 0;
              diagnostics =
                (match Json.member "diagnostics" j with
                | Some (Json.List l) -> List.filter_map Json.to_string_opt l
                | _ -> []);
              has_report =
                (match Json.member "report" j with
                | Some (Json.Bool b) -> b
                | _ -> false);
            })
