(** The [threadfuser serve] daemon: a supervised streaming analysis
    service over a Unix-domain socket.

    Clients connect, stream {!Threadfuser_trace.Stream} bytes, and
    receive {!Protocol} reply frames: a status object plus — byte-for-byte
    identical to batch [threadfuser analyze --json] — the report.  The
    daemon runs every session through {!Threadfuser.Analyzer.Session}
    under a per-session memory quota and supervises with [lib/runner]
    semantics: backpressure instead of unbounded buffering, typed [busy]
    shedding at [max_sessions], per-session deadlines, seeded backoff on
    transient accept failures, crash isolation, and a graceful drain on
    SIGTERM.  See docs/robustness.md §8. *)

type config = {
  socket_path : string;  (** Unix-domain socket to bind *)
  prog : Threadfuser_prog.Program.t;  (** program every session analyzes *)
  options : Threadfuser.Analyzer.options;
  fuel : int option;  (** per-replay fuel override *)
  max_sessions : int;  (** concurrent sessions before shedding *)
  session_quota : int;  (** per-session memory budget (bytes) *)
  deadline_s : float option;  (** per-session wall-clock budget *)
  workers : int;  (** analysis worker domains *)
  seed : int;  (** backoff jitter seed *)
  backoff_base_s : float;  (** base accept-retry delay *)
  fault : Threadfuser_fault.Exec_fault.session_plan option;
      (** deterministic chaos injection, keyed by accept ordinal *)
  tmp_dir : string option;  (** session spool directory *)
  admin_path : string option;
      (** STATS admin socket (see {!admin_path_of}); [None] disables the
          admin surface *)
  flight_dir : string option;
      (** where poisoned/timed-out sessions dump their flight recorder
          ([session-<id>.trace.json] + [.metrics.txt]); [None] disables
          per-session recorders entirely *)
  cache : Threadfuser_cache.Cache.t option;
      (** artifact cache for clean report lookups: the report frame of an
          [ok] reply is keyed by the stream's CRC-32 content digest and
          length, served from a verified hit or written through on a
          miss.  Cache failures of any kind (corrupt entries included)
          degrade to a freshly rendered report — they never kill a
          session or the daemon.  [None] disables. *)
}

(** Where the STATS admin socket lives relative to the session socket
    ([<socket>.stats]) — shared with the [threadfuser stat]/[top]
    clients so they can derive it from [--socket] alone. *)
val admin_path_of : string -> string

(** 8 sessions, {!Threadfuser.Analyzer.Session.default_budget} quota, no
    deadline, 1 worker, seed 1, 50ms backoff base, no faults; admin
    socket at [admin_path_of socket_path], flight recorder off, no
    cache. *)
val default_config :
  prog:Threadfuser_prog.Program.t -> socket_path:string -> config

type stats = {
  served : int;  (** sessions answered with ok/degraded *)
  failed : int;  (** sessions answered with error/timeout *)
  shed : int;  (** connections turned away busy *)
  bytes_ingested : int;
}

(** [run ?stop ?on_ready cfg] binds the socket (and the admin socket when
    [cfg.admin_path] is set), calls [on_ready] once accepting, and serves
    until [stop] becomes [true] — then closes the listeners, drains live
    sessions to completion, removes the socket files and returns.  Stale
    socket files left by a dead daemon are replaced.  The observability
    collector is enabled for the daemon's lifetime (and restored after),
    so [STATS prom] scrapes always see live [tf_serve_*] instruments.
    Raises [Invalid_argument] on a non-positive [max_sessions] or
    [workers]; [Unix.Unix_error] if a socket cannot be bound. *)
val run : ?stop:bool Atomic.t -> ?on_ready:(unit -> unit) -> config -> stats
