(** Client side of the serve protocol: one blocking session per call. *)

module Stream = Threadfuser_trace.Stream
module Thread_trace = Threadfuser_trace.Thread_trace
module Tf_error = Threadfuser_util.Tf_error

type outcome = {
  reply : Protocol.reply;
  report : string option;  (** raw report JSON bytes, verbatim *)
}

let connect socket_path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let read_reply fd =
  match Protocol.reply_of_json (Protocol.read_frame fd) with
  | Ok r -> r
  | Error m -> Tf_error.fail Tf_error.Corrupt_input "serve reply: %s" m

(* Stream [bytes] in [chunk_bytes] slices.  A deliberate trickle keeps the
   daemon's chunking-invariance honest in smoke tests. *)
let send_chunked fd ~chunk_bytes bytes =
  let n = String.length bytes in
  let chunk = max 1 chunk_bytes in
  let off = ref 0 in
  while !off < n do
    let len = min chunk (n - !off) in
    Protocol.write_all fd (String.sub bytes !off len);
    off := !off + len
  done

let session ?(chunk_bytes = 65536) ~socket_path bytes =
  let fd = connect socket_path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let greeting = read_reply fd in
      match greeting.Protocol.status with
      | Protocol.Busy -> { reply = greeting; report = None }
      | Protocol.Ready ->
          send_chunked fd ~chunk_bytes bytes;
          (* half-close our side so a daemon waiting on more input sees a
             finished sender even if the stream lacks its end frame *)
          (try Unix.shutdown fd Unix.SHUTDOWN_SEND
           with Unix.Unix_error _ -> ());
          let reply = read_reply fd in
          let report =
            if reply.Protocol.has_report then Some (Protocol.read_frame fd)
            else None
          in
          { reply; report }
      | _ ->
          Tf_error.fail Tf_error.Corrupt_input
            "serve greeting was %S, expected ready or busy"
            (Protocol.status_name greeting.Protocol.status))

let session_traces ?chunk_bytes ~socket_path (traces : Thread_trace.t array) =
  session ?chunk_bytes ~socket_path (Stream.encode traces)

(* One STATS scrape against the daemon's admin socket.  The request is a
   single line; the reply is one frame — the JSON status document or the
   Prometheus text exposition, both already newline-terminated text. *)
let stats ?(format = Protocol.Stats_json) ~socket_path () =
  let fd = connect (Serve.admin_path_of socket_path) in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Protocol.write_all fd (Protocol.stats_request format);
      Protocol.read_frame fd)
