(** Client side of the serve protocol ({!Protocol}): connect, stream a
    trace, collect the typed reply and the raw report bytes. *)

type outcome = {
  reply : Protocol.reply;
  report : string option;
      (** raw report JSON, byte-identical to batch [analyze --json] *)
}

(** [session ?chunk_bytes ~socket_path bytes] runs one blocking session:
    connect, read the greeting, stream [bytes] (a TFSTREAM1 stream) in
    [chunk_bytes] slices (default 64KiB), read the reply.  A [busy]
    greeting returns immediately with no report.  Raises [Unix.Unix_error]
    on connection failure and [Tf_error.Error] on a malformed reply. *)
val session : ?chunk_bytes:int -> socket_path:string -> string -> outcome

(** As {!session}, encoding the traces first. *)
val session_traces :
  ?chunk_bytes:int ->
  socket_path:string ->
  Threadfuser_trace.Thread_trace.t array ->
  outcome

(** [stats ?format ~socket_path ()] scrapes the daemon's admin socket
    (derived via {!Serve.admin_path_of} from the {e session} socket path)
    and returns the reply payload: the JSON status document
    ([tfserve-stats/1], the default) or the Prometheus text exposition
    ({!Protocol.Stats_prom}).  Raises [Unix.Unix_error] on connection
    failure. *)
val stats :
  ?format:Protocol.stats_format -> socket_path:string -> unit -> string
