(** The [threadfuser serve] daemon: a supervised streaming analysis
    service over a Unix-domain socket (docs/robustness.md §8).

    One select loop owns every socket; worker domains own every
    [Analyzer.Session].  The loop reads client chunks into bounded
    per-session queues and hands sessions to workers, who feed the chunks
    (decode + validate + spool) and, once the stream ends, run the
    analysis and post the reply frames back through a self-pipe.

    Supervision semantics mirror [lib/runner]:
    - {e backpressure}: a session whose chunk queue is full leaves the
      read set until a worker drains it — the client's writes block on
      the kernel buffer instead of growing the daemon;
    - {e shed}: a connection over [--max-sessions] gets a typed [busy]
      reply and is closed, never silently queued;
    - {e deadlines}: a session idle past [--deadline] gets a typed
      [timeout] reply over whatever prefix it sent;
    - {e seeded backoff}: transient [accept] failures (fd exhaustion)
      mute the listener for a {!Threadfuser_runner.Backoff} delay instead
      of spinning;
    - {e crash isolation}: a session whose analysis raises is answered
      with a typed error and closed — the daemon keeps serving;
    - {e drain}: SIGTERM/SIGINT (or the [stop] flag) close the listener,
      let live sessions finish, then return cleanly. *)

module Analyzer = Threadfuser.Analyzer
module Session = Threadfuser.Analyzer.Session
module Metrics = Threadfuser.Metrics
module Program = Threadfuser_prog.Program
module Stream = Threadfuser_trace.Stream
module Serial = Threadfuser_trace.Serial
module Tf_error = Threadfuser_util.Tf_error
module Report_json = Threadfuser_report.Report_json
module Exec_fault = Threadfuser_fault.Exec_fault
module Backoff = Threadfuser_runner.Backoff
module Journal = Threadfuser_runner.Journal
module Runner = Threadfuser_runner.Runner
module Cache = Threadfuser_cache.Cache
module Crc32 = Threadfuser_util.Crc32
module Json = Threadfuser_report.Json
module Obs = Threadfuser_obs.Obs
module Prom = Threadfuser_obs.Prom
module Trace_export = Threadfuser_obs.Trace_export
module Log = Threadfuser_obs.Log

(* Service metrics (docs/observability.md).  Gauges track live daemon
   state and are never gated; counters follow the collector switch — and
   [run] turns the collector on for its lifetime, so a scrape of a live
   daemon always sees them move. *)
let g_active =
  Obs.Gauge.make "tf_serve_sessions_active" ~help:"sessions currently open"
let g_queue =
  Obs.Gauge.make "tf_serve_worker_queue_depth"
    ~help:"sessions queued for a worker domain"
let c_sessions =
  Obs.Counter.make "tf_serve_sessions_total" ~help:"sessions accepted"
let c_served =
  Obs.Counter.make "tf_serve_sessions_served_total"
    ~help:"sessions answered with an ok or degraded report"
let c_shed =
  Obs.Counter.make "tf_serve_sessions_shed_total"
    ~help:"connections shed with a busy reply at --max-sessions"
let c_failed =
  Obs.Counter.make "tf_serve_sessions_failed_total"
    ~help:"sessions that ended in an error or timeout reply"
let c_bytes =
  Obs.Counter.make "tf_serve_bytes_ingested_total"
    ~help:"stream bytes read from session sockets"
let c_scrapes =
  Obs.Counter.make "tf_serve_admin_scrapes_total"
    ~help:"admin STATS requests answered"
let h_session =
  Obs.Histogram.make "tf_serve_session_us"
    ~help:"session latency in microseconds, accept to reply posted"

(* Loop- and worker-side flight-recorder instants land on their own row. *)
let serve_track = Obs.track "serve"

type config = {
  socket_path : string;
  prog : Program.t;
  options : Analyzer.options;
  fuel : int option;
  max_sessions : int;
  session_quota : int;  (** per-session memory budget (bytes) *)
  deadline_s : float option;  (** per-session wall-clock budget *)
  workers : int;  (** analysis worker domains *)
  seed : int;  (** backoff jitter seed *)
  backoff_base_s : float;  (** base accept-retry delay *)
  fault : Exec_fault.session_plan option;  (** chaos injection *)
  tmp_dir : string option;  (** session spool directory *)
  admin_path : string option;  (** STATS admin socket; [None] disables *)
  flight_dir : string option;
      (** where poisoned/timed-out sessions dump their flight recorder;
          [None] disables the recorder *)
  cache : Cache.t option;
      (** artifact cache for clean report lookups, keyed by the stream's
          content digest; [None] disables.  Cache failures degrade to
          uncached replies — they never kill a session or the daemon. *)
}

(** Where the STATS admin socket lives relative to the session socket —
    shared with the [threadfuser stat]/[top] clients. *)
let admin_path_of socket_path =
  if Filename.check_suffix socket_path ".stats" then socket_path
  else socket_path ^ ".stats"

let default_config ~prog ~socket_path =
  {
    socket_path;
    prog;
    options = Analyzer.default_options;
    fuel = None;
    max_sessions = 8;
    session_quota = Session.default_budget;
    deadline_s = None;
    workers = 1;
    seed = 1;
    backoff_base_s = 0.05;
    fault = None;
    tmp_dir = None;
    admin_path = Some (admin_path_of socket_path);
    flight_dir = None;
    cache = None;
  }

let flight_capacity = 2048

type stats = {
  served : int;  (** sessions answered with ok/degraded *)
  failed : int;  (** sessions answered with error/timeout *)
  shed : int;  (** connections turned away busy *)
  bytes_ingested : int;
}

(* ------------------------------------------------------------------ *)
(* Per-session state.  The [mutable] fields are shared between the loop
   and one worker at a time, always under the service mutex; the
   [Session.t] itself is touched only by workers. *)

type sess_state =
  | Reading  (** loop reads chunks; worker drains them *)
  | Replying  (** reply framed; loop writes it out *)
  | Closing  (** reply flushed; close at next sweep *)

type sess = {
  id : int;  (** accept ordinal, also the chaos key *)
  fd : Unix.file_descr;
  session : Session.t option;  (** [None] for shed pseudo-sessions *)
  queue : string Queue.t;  (** chunks read but not yet fed *)
  mutable queue_bytes : int;
  mutable eof : bool;  (** peer closed (or a fault simulated it) *)
  mutable timed_out : bool;
  mutable worker_owned : bool;  (** a worker is feeding/finishing it *)
  mutable finished : bool;  (** the reply has been produced (once only) *)
  mutable state : sess_state;
  mutable reply : string;  (** framed bytes still to write *)
  mutable reply_off : int;
  mutable deadline : float;  (** absolute; [infinity] = none *)
  mutable read_cap : int option;  (** injected disconnect: bytes left *)
  mutable stalled_until : float;  (** injected writer stall *)
  mutable counted_active : bool;  (** holds a [g_active] slot *)
  accepted_wall : float;  (** wall clock at accept (stats: session age) *)
  accepted_us : float;  (** collector clock at accept (latency histogram) *)
  mutable bytes_in : int;  (** loop-side per-session ingest count *)
  mutable crc_in : int;  (** running CRC-32 of the ingested stream *)
  flight : Obs.Flight.t option;  (** per-session flight recorder *)
}

(* Flight notes from the select loop (which multiplexes sessions, so the
   per-domain tap cannot be used there): explicit, and never gated on the
   collector switch. *)
let fl_note (s : sess) ?(args = []) name =
  match s.flight with
  | None -> ()
  | Some fl -> Obs.Flight.note fl ~track:serve_track ~args name

(* A full queue takes the session out of the read set; a worker posting
   [Drained] puts it back.  One quota of queued-but-unfed chunks plus the
   session's own budget bounds the memory a client can pin. *)
let queue_high s quota = s.queue_bytes >= quota

type event = Drained of int | Finished of int * string  (* framed reply *)

(* ------------------------------------------------------------------ *)

let set_cloexec fd = try Unix.set_close_on_exec fd with Unix.Unix_error _ -> ()

let rec drain_pipe fd =
  let b = Bytes.create 64 in
  match Unix.read fd b 0 64 with
  | 64 -> drain_pipe fd
  | _ -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

(* Forged bytes for the oversize-frame injection: a thread-frame header
   whose declared payload exceeds any plausible bound. *)
let oversized_header () =
  let buf = Buffer.create 16 in
  Buffer.add_string buf Stream.magic;
  Serial.write_uint buf 0;
  Serial.write_uint buf max_int;
  Buffer.contents buf

let now () = Unix.gettimeofday ()

let monotonic_ids = Atomic.make 0

(* ------------------------------------------------------------------ *)
(* Reply construction (worker side).                                    *)

let diag_strings diags =
  List.map (fun d -> Tf_error.to_string d) diags

(* The report frame of a clean [Ok_report] reply can be served from (and
   written through to) the artifact cache, keyed on the stream's content
   digest.  A verified hit is byte-identical to fresh serialization by
   construction — the daemon is deterministic over the stream bytes — and
   any cache failure, corrupt entry included, silently degrades to the
   freshly rendered report. *)
let report_frame ?cache status rep =
  let fresh () = Report_json.to_string rep in
  match (status, cache) with
  | Protocol.Ok_report, Some (t, key) -> (
      match
        Cache.find t ~key ~kind:Cache.Report ~on_corrupt:(fun d ->
            Log.warn "corrupt cache entry quarantined"
              ~fields:[ ("error", Tf_error.to_string d) ])
      with
      | Some payload -> payload
      | None ->
          let s = fresh () in
          (try Cache.put t ~key ~kind:Cache.Report s
           with exn ->
             Log.warn "cache put failed; reply served uncached"
               ~fields:[ ("exn", Printexc.to_string exn) ]);
          s
      | exception exn ->
          Log.warn "cache lookup failed; reply served uncached"
            ~fields:[ ("exn", Printexc.to_string exn) ];
          fresh ())
  | _ -> fresh ()

let reply_of_checked ?cache ~timed_out ~truncated (c : Analyzer.checked) =
  let rep = c.Analyzer.result.Analyzer.report in
  let threads = rep.Metrics.coverage.Metrics.threads_total in
  let quarantined = List.length c.Analyzer.quarantined in
  let base =
    Protocol.reply ~threads ~quarantined
      ~diagnostics:(diag_strings c.Analyzer.diagnostics)
      ~has_report:true
  in
  let status_reply =
    if timed_out then
      {
        (base Protocol.Timeout) with
        Protocol.kind = Some (Tf_error.kind_name Tf_error.Timeout);
        message = Some "session deadline expired; report covers the prefix";
      }
    else
      match truncated with
      | Some (d : Tf_error.diagnostic) ->
          {
            (base Protocol.Error_reply) with
            Protocol.kind = Some (Tf_error.kind_name d.Tf_error.kind);
            message = Some d.Tf_error.message;
          }
      | None ->
          if quarantined > 0 || Metrics.degraded rep then base Protocol.Degraded
          else base Protocol.Ok_report
  in
  let buf = Buffer.create 4096 in
  Protocol.add_frame buf (Protocol.reply_to_json status_reply);
  Protocol.add_frame buf (report_frame ?cache status_reply.Protocol.status rep);
  (status_reply.Protocol.status, Buffer.contents buf)

let reply_of_crash exn =
  let r =
    {
      (Protocol.reply ~has_report:false Protocol.Error_reply) with
      Protocol.kind = Some (Tf_error.kind_name Tf_error.Replay_error);
      message = Some (Printexc.to_string exn);
    }
  in
  Protocol.frame (Protocol.reply_to_json r)

let busy_reply ~active ~max_sessions =
  let r =
    {
      (Protocol.reply ~has_report:false Protocol.Busy) with
      Protocol.message =
        Some
          (Printf.sprintf "%d/%d sessions active; retry later" active
             max_sessions);
    }
  in
  Buffer.contents
    (let buf = Buffer.create 128 in
     Protocol.add_frame buf (Protocol.reply_to_json r);
     buf)

let ready_reply () = Protocol.frame (Protocol.reply_to_json (Protocol.reply Protocol.Ready))

(* ------------------------------------------------------------------ *)
(* The service.                                                         *)

(* One admin (STATS) connection: read a request line, write one reply
   frame, close.  Owned entirely by the select loop. *)
type admin = {
  afd : Unix.file_descr;
  abuf : Buffer.t;  (** request bytes until the newline *)
  mutable areply : string;  (** framed reply; [""] = still reading *)
  mutable areply_off : int;
  mutable aclosed : bool;
  adeadline : float;  (** a squatting scraper is cut off, not kept *)
}

type service = {
  cfg : config;
  mutex : Mutex.t;
  cond : Condition.t;  (** signals workers: jobs or shutdown *)
  jobs : sess Queue.t;
  events : event Queue.t;
  mutable shutdown_workers : bool;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable sessions : sess list;
  mutable admins : admin list;
  mutable n_active : int;  (** real (non-shed) open sessions *)
  mutable served : int;
  mutable failed : int;
  mutable shed_n : int;
  mutable bytes : int;
  t_start : float;  (** wall clock at [run] entry (stats: uptime) *)
}

let wake svc =
  try ignore (Unix.write svc.wake_w (Bytes.of_string "w") 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) ->
    ()

let post svc ev =
  Mutex.lock svc.mutex;
  Queue.push ev svc.events;
  Mutex.unlock svc.mutex;
  wake svc

let schedule_locked svc s =
  if (not s.worker_owned) && s.state = Reading then begin
    s.worker_owned <- true;
    Queue.push s svc.jobs;
    Obs.Gauge.set g_queue (Queue.length svc.jobs);
    Condition.signal svc.cond
  end

(* -- worker domains ----------------------------------------------------- *)

(* A poisoned or timed-out session dumps its flight recorder: the ring's
   Chrome-trace timeline plus a metrics snapshot, named by accept ordinal
   so the CLI log line and the dump correlate. *)
let dump_flight svc (s : sess) status =
  match (svc.cfg.flight_dir, s.flight) with
  | Some dir, Some fl -> (
      fl_note s
        ~args:[ ("session", Obs.itos s.id) ]
        ("session " ^ Protocol.status_name status);
      let base = Filename.concat dir (Printf.sprintf "session-%d" s.id) in
      try
        let snap = Obs.flight_snapshot fl in
        Trace_export.to_file (base ^ ".trace.json") snap;
        Prom.to_file (base ^ ".metrics.txt") snap;
        Log.warn "flight recorder dumped"
          ~fields:
            [
              ("session", string_of_int s.id);
              ("trace", base ^ ".trace.json");
            ]
      with Sys_error m ->
        Log.err "flight dump failed"
          ~fields:[ ("session", string_of_int s.id); ("error", m) ])
  | _ -> ()

(* Feed every queued chunk, then either release the session (more input
   pending) or run the analysis and post the framed reply. *)
let worker_step svc (s : sess) =
  let session = Option.get s.session in
  let finish ~timed_out =
    let truncated =
      match Session.failure session with
      | Some d -> Some d
      | None ->
          if Session.input_done session then None
          else
            Some
              (Tf_error.diag Tf_error.Corrupt_input
                 "connection closed after %d byte(s), mid-stream"
                 (Session.bytes_ingested session))
    in
    let status, framed =
      match
        Obs.span "serve_session"
          ~args:
            [
              ("session", string_of_int s.id);
              ("threads", string_of_int (Session.threads_ingested session));
            ]
          (fun () -> Session.finish session)
      with
      | checked ->
          let cache =
            match svc.cfg.cache with
            | None -> None
            | Some t ->
                (* input is complete here, so the loop-side digest is
                   final; lock anyway against a late timeout read. *)
                Mutex.lock svc.mutex;
                let crc = s.crc_in and len = s.bytes_in in
                Mutex.unlock svc.mutex;
                let key =
                  {
                    Cache.workload =
                      Printf.sprintf "serve:crc32=%08x:len=%d" crc len;
                    opt_level = 0;
                    warp_size = svc.cfg.options.Analyzer.warp_size;
                    analyzer_version = Runner.analyzer_version;
                  }
                in
                Some (t, key)
          in
          reply_of_checked ?cache ~timed_out ~truncated checked
      | exception exn ->
          (* [Session.finish] already catches non-fatal analysis failures;
             anything landing here is a daemon-side bug or a resource
             error.  The session dies typed; the daemon does not. *)
          Log.err "session analysis crashed"
            ~fields:
              [
                ("session", string_of_int s.id);
                ("exn", Printexc.to_string exn);
              ];
          (Protocol.Error_reply, reply_of_crash exn)
    in
    Session.close session;
    Mutex.lock svc.mutex;
    (match status with
    | Protocol.Ok_report | Protocol.Degraded ->
        svc.served <- svc.served + 1;
        Obs.Counter.incr c_served
    | _ ->
        svc.failed <- svc.failed + 1;
        Obs.Counter.incr c_failed);
    s.worker_owned <- false;
    Mutex.unlock svc.mutex;
    Obs.Histogram.observe h_session (Obs.now_us () -. s.accepted_us);
    (match status with
    | Protocol.Error_reply | Protocol.Timeout -> dump_flight svc s status
    | _ -> ());
    post svc (Finished (s.id, framed))
  in
  let rec feed_all () =
    let chunks, eof, timed_out =
      Mutex.lock svc.mutex;
      let cs = ref [] in
      let was_high = queue_high s svc.cfg.session_quota in
      while not (Queue.is_empty s.queue) do
        cs := Queue.pop s.queue :: !cs
      done;
      s.queue_bytes <- 0;
      let r = (List.rev !cs, s.eof, s.timed_out) in
      Mutex.unlock svc.mutex;
      if was_high && !cs <> [] then post svc (Drained s.id);
      r
    in
    List.iter (fun c -> Session.feed session c) chunks;
    let stream_done =
      Session.input_done session || Session.failure session <> None
    in
    if stream_done || eof || timed_out then begin
      (* once only: the loop may re-schedule this session in the window
         between [Finished] being posted and processed *)
      let already =
        Mutex.lock svc.mutex;
        let a = s.finished in
        if a then s.worker_owned <- false else s.finished <- true;
        Mutex.unlock svc.mutex;
        a
      in
      if not already then finish ~timed_out
    end
    else begin
      (* release or go around: more chunks may have landed while feeding *)
      Mutex.lock svc.mutex;
      let more = not (Queue.is_empty s.queue) in
      let fin = s.eof || s.timed_out in
      if not (more || fin) then s.worker_owned <- false;
      Mutex.unlock svc.mutex;
      if more || fin then feed_all ()
    end
  in
  feed_all ()

(* With a flight recorder live, tap this worker domain while it feeds and
   finishes the session so analyzer spans land in the session's ring. *)
let worker_step svc (s : sess) =
  match s.flight with
  | None -> worker_step svc s
  | Some fl -> Obs.Flight.with_attached fl (fun () -> worker_step svc s)

let worker_loop svc =
  let rec next () =
    Mutex.lock svc.mutex;
    while Queue.is_empty svc.jobs && not svc.shutdown_workers do
      Condition.wait svc.cond svc.mutex
    done;
    if svc.shutdown_workers && Queue.is_empty svc.jobs then Mutex.unlock svc.mutex
    else begin
      let s = Queue.pop svc.jobs in
      Obs.Gauge.set g_queue (Queue.length svc.jobs);
      Mutex.unlock svc.mutex;
      (try worker_step svc s
       with exn ->
         (* belt and braces: a bug in the worker machinery itself still
            answers the session and keeps the pool alive *)
         Mutex.lock svc.mutex;
         s.worker_owned <- false;
         svc.failed <- svc.failed + 1;
         Mutex.unlock svc.mutex;
         post svc (Finished (s.id, reply_of_crash exn)));
      next ()
    end
  in
  next ()

(* -- the select loop ---------------------------------------------------- *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let finalize_sess svc s =
  close_quietly s.fd;
  if s.counted_active then begin
    s.counted_active <- false;
    svc.n_active <- svc.n_active - 1;
    Obs.Gauge.decr g_active
  end;
  svc.sessions <- List.filter (fun o -> o.id <> s.id) svc.sessions

let apply_fault svc (s : sess) =
  match svc.cfg.fault with
  | None -> ()
  | Some plan -> (
      match Exec_fault.decide_session plan ~session:s.id with
      | Exec_fault.Session_ok -> ()
      | Exec_fault.Disconnect n ->
          Log.warn "chaos: session will disconnect"
            ~fields:[ ("session", string_of_int s.id); ("after", string_of_int n) ];
          fl_note s ~args:[ ("after_bytes", Obs.itos n) ] "chaos: disconnect";
          s.read_cap <- Some n
      | Exec_fault.Stall_writer t ->
          Log.warn "chaos: session writer stalled"
            ~fields:[ ("session", string_of_int s.id); ("seconds", string_of_float t) ];
          fl_note s ~args:[ ("seconds", string_of_float t) ] "chaos: stall writer";
          s.stalled_until <- now () +. t
      | Exec_fault.Oversize_frame ->
          Log.warn "chaos: oversized frame injected"
            ~fields:[ ("session", string_of_int s.id) ];
          fl_note s "chaos: oversize frame";
          Option.iter
            (fun session -> Session.feed session (oversized_header ()))
            s.session)

let accept_session svc listen_fd =
  match Unix.accept ~cloexec:true listen_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Again
  | exception Unix.Unix_error (e, _, _) -> `Error e
  | fd, _ ->
      Unix.set_nonblock fd;
      let id = Atomic.fetch_and_add monotonic_ids 1 in
      Obs.Counter.incr c_sessions;
      if svc.n_active >= svc.cfg.max_sessions then begin
        (* shed: typed busy reply, then close.  Never counted active. *)
        Obs.Counter.incr c_shed;
        svc.shed_n <- svc.shed_n + 1;
        let s =
          {
            id;
            fd;
            session = None;
            queue = Queue.create ();
            queue_bytes = 0;
            eof = false;
            timed_out = false;
            worker_owned = false;
            finished = false;
            state = Replying;
            reply = busy_reply ~active:svc.n_active ~max_sessions:svc.cfg.max_sessions;
            reply_off = 0;
            deadline = now () +. 5.0;
            read_cap = None;
            stalled_until = 0.;
            counted_active = false;
            accepted_wall = now ();
            accepted_us = Obs.now_us ();
            bytes_in = 0;
            crc_in = 0;
            flight = None;
          }
        in
        svc.sessions <- s :: svc.sessions;
        `Shed
      end
      else begin
        let session =
          Session.create ~options:svc.cfg.options ?fuel:svc.cfg.fuel
            ~budget_bytes:svc.cfg.session_quota ?tmp_dir:svc.cfg.tmp_dir
            svc.cfg.prog
        in
        let s =
          {
            id;
            fd;
            session = Some session;
            queue = Queue.create ();
            queue_bytes = 0;
            eof = false;
            timed_out = false;
            worker_owned = false;
            finished = false;
            state = Reading;
            reply = ready_reply ();
            reply_off = 0;
            deadline =
              (match svc.cfg.deadline_s with
              | Some d -> now () +. d
              | None -> infinity);
            read_cap = None;
            stalled_until = 0.;
            counted_active = true;
            accepted_wall = now ();
            accepted_us = Obs.now_us ();
            bytes_in = 0;
            crc_in = 0;
            flight =
              (match svc.cfg.flight_dir with
              | Some _ ->
                  Some
                    (Obs.Flight.create ~capacity:flight_capacity
                       (Printf.sprintf "session-%d" id))
              | None -> None);
          }
        in
        svc.n_active <- svc.n_active + 1;
        Obs.Gauge.incr g_active;
        fl_note s "accepted";
        apply_fault svc s;
        svc.sessions <- s :: svc.sessions;
        `Accepted
      end

let read_chunk svc (s : sess) =
  let cap = match s.read_cap with Some c -> max 0 (min c 65536) | None -> 65536 in
  let b = Bytes.create (max 1 cap) in
  match Unix.read s.fd b 0 (max 1 cap) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error (_, _, _) -> s.eof <- true
  | 0 ->
      s.eof <- true;
      fl_note s ~args:[ ("bytes_in", Obs.itos s.bytes_in) ] "peer closed"
  | n ->
      let chunk = Bytes.sub_string b 0 n in
      svc.bytes <- svc.bytes + n;
      s.bytes_in <- s.bytes_in + n;
      s.crc_in <- Crc32.update s.crc_in chunk 0 n;
      Obs.Counter.add c_bytes n;
      fl_note s ~args:[ ("bytes", Obs.itos n) ] "chunk";
      (match s.read_cap with
      | Some c ->
          let left = c - n in
          s.read_cap <- Some left;
          (* the injected cut: from here the peer "vanished" *)
          if left <= 0 then s.eof <- true
      | None -> ());
      Mutex.lock svc.mutex;
      Queue.push chunk s.queue;
      s.queue_bytes <- s.queue_bytes + n;
      Mutex.unlock svc.mutex

let write_reply (s : sess) =
  let len = String.length s.reply - s.reply_off in
  match
    Unix.write_substring s.fd s.reply s.reply_off len
  with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error (_, _, _) ->
      (* peer went away mid-reply; nothing left to deliver *)
      s.reply_off <- String.length s.reply;
      s.state <- Closing
  | n ->
      s.reply_off <- s.reply_off + n;
      if s.reply_off >= String.length s.reply then
        s.state <- (if s.state = Replying then Closing else s.state)

(* The ready frame is written through the same path as replies: on accept
   [reply] holds it with [state = Reading], so the write set includes the
   session until the greeting is flushed. *)

let process_events svc =
  let evs =
    Mutex.lock svc.mutex;
    let l = List.of_seq (Queue.to_seq svc.events) in
    Queue.clear svc.events;
    Mutex.unlock svc.mutex;
    l
  in
  List.iter
    (fun ev ->
      match ev with
      | Drained _ -> () (* presence in the read set is recomputed per tick *)
      | Finished (id, framed) -> (
          match List.find_opt (fun s -> s.id = id) svc.sessions with
          | None -> ()
          | Some s ->
              fl_note s "reply posted";
              (* append after whatever is left of the greeting *)
              s.reply <-
                String.sub s.reply s.reply_off
                  (String.length s.reply - s.reply_off)
                ^ framed;
              s.reply_off <- 0;
              s.state <- Replying;
              (* the ingest deadline no longer applies (it may already
                 have expired — that is how timeouts get here); replace it
                 with a bounded flush window for slow readers *)
              s.deadline <- now () +. 30.))
    evs

(* -- the admin (STATS) surface ------------------------------------------ *)

(* Both documents are assembled on the select loop, which owns the session
   list and every loop-side field, so a scrape never blocks on (or races
   with) worker domains.  The few [Session.t] internals shown are plain
   immediate fields mutated by the owning worker: a cross-domain read may
   be one update stale — fine for stats — and immediates cannot tear. *)

let sess_state_name = function
  | Reading -> "reading"
  | Replying -> "replying"
  | Closing -> "closing"

let session_json svc t (s : sess) =
  let queue_bytes =
    Mutex.lock svc.mutex;
    let qb = s.queue_bytes in
    Mutex.unlock svc.mutex;
    qb
  in
  let threads, spilled =
    match s.session with
    | None -> (0, 0)
    | Some sn -> (Session.threads_ingested sn, Session.spilled_bytes sn)
  in
  Json.Obj
    [
      ("id", Json.Int s.id);
      ("kind", Json.String (if s.session = None then "shed" else "stream"));
      ("state", Json.String (sess_state_name s.state));
      ("age_s", Json.Float (t -. s.accepted_wall));
      ("bytes_ingested", Json.Int s.bytes_in);
      ("threads", Json.Int threads);
      ("spilled_bytes", Json.Int spilled);
      ("budget_bytes", Json.Int svc.cfg.session_quota);
      ("queue_bytes", Json.Int queue_bytes);
      ("backpressure", Json.Bool (queue_bytes >= svc.cfg.session_quota));
      ("stalled", Json.Bool (t < s.stalled_until));
      ("eof", Json.Bool s.eof);
      ("timed_out", Json.Bool s.timed_out);
      ("worker_owned", Json.Bool s.worker_owned);
      ( "deadline_in_s",
        if s.deadline = infinity then Json.Null else Json.Float (s.deadline -. t)
      );
    ]

let stats_json svc =
  let t = now () in
  let queue_depth =
    Mutex.lock svc.mutex;
    let d = Queue.length svc.jobs in
    Mutex.unlock svc.mutex;
    d
  in
  let q p = Obs.Histogram.quantile h_session p in
  Json.Obj
    [
      ("schema", Json.String "tfserve-stats/1");
      ("uptime_s", Json.Float (t -. svc.t_start));
      ( "daemon",
        Json.Obj
          [
            ("max_sessions", Json.Int svc.cfg.max_sessions);
            ("workers", Json.Int svc.cfg.workers);
            ("session_quota", Json.Int svc.cfg.session_quota);
            ("active", Json.Int svc.n_active);
            ("served", Json.Int svc.served);
            ("failed", Json.Int svc.failed);
            ("shed", Json.Int svc.shed_n);
            ("bytes_ingested", Json.Int svc.bytes);
            ("worker_queue_depth", Json.Int queue_depth);
            ("flight_recorder", Json.Bool (svc.cfg.flight_dir <> None));
          ] );
      ( "latency_us",
        Json.Obj
          [
            ("count", Json.Int (Obs.Histogram.count h_session));
            ("p50", Json.Float (q 0.5));
            ("p95", Json.Float (q 0.95));
            ("p99", Json.Float (q 0.99));
          ] );
      ("sessions", Json.List (List.rev_map (session_json svc t) svc.sessions));
    ]

let stats_reply svc fmt =
  Obs.Counter.incr c_scrapes;
  match fmt with
  | Protocol.Stats_prom -> Protocol.frame (Prom.to_string (Obs.snapshot ()))
  | Protocol.Stats_json ->
      Protocol.frame (Json.to_compact_string (stats_json svc) ^ "\n")

let error_stats_reply msg =
  Protocol.frame
    (Json.to_compact_string (Json.Obj [ ("error", Json.String msg) ]) ^ "\n")

let admin_deadline_s = 5.0

let accept_admin svc admin_fd =
  match Unix.accept ~cloexec:true admin_fd with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
      Unix.set_nonblock fd;
      svc.admins <-
        {
          afd = fd;
          abuf = Buffer.create 32;
          areply = "";
          areply_off = 0;
          aclosed = false;
          adeadline = now () +. admin_deadline_s;
        }
        :: svc.admins

let read_admin svc (a : admin) =
  let b = Bytes.create 256 in
  match Unix.read a.afd b 0 256 with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> a.aclosed <- true
  | 0 -> a.aclosed <- true
  | n ->
      Buffer.add_subbytes a.abuf b 0 n;
      let req = Buffer.contents a.abuf in
      if String.contains req '\n' then
        let line = List.hd (String.split_on_char '\n' req) in
        a.areply <-
          (match Protocol.parse_stats_request line with
          | Some fmt -> stats_reply svc fmt
          | None ->
              error_stats_reply
                (Printf.sprintf "unknown admin request %S" (String.trim line)))
      else if Buffer.length a.abuf > Protocol.max_admin_request then
        a.areply <- error_stats_reply "admin request too long"

let write_admin (a : admin) =
  let len = String.length a.areply - a.areply_off in
  match Unix.write_substring a.afd a.areply a.areply_off len with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> a.aclosed <- true
  | n ->
      a.areply_off <- a.areply_off + n;
      (* one request, one reply: flushing it ends the connection *)
      if a.areply_off >= String.length a.areply then a.aclosed <- true

(* -- daemon entry -------------------------------------------------------- *)

let run ?(stop = Atomic.make false) ?(on_ready = fun () -> ()) cfg =
  if cfg.max_sessions < 1 then invalid_arg "Serve.run: max_sessions must be >= 1";
  if cfg.workers < 1 then invalid_arg "Serve.run: workers must be >= 1";
  (* a peer vanishing mid-reply must surface as EPIPE, not kill the
     daemon; restored when the drain completes *)
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  (* the collector backs every scrape; leave it the way we found it *)
  let prev_obs = !Obs.enabled in
  Obs.set_enabled true;
  Option.iter Journal.mkdir_p cfg.flight_dir;
  let bind_unix path =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    set_cloexec fd;
    Unix.set_nonblock fd;
    (try Unix.bind fd (Unix.ADDR_UNIX path)
     with Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
       (* a previous daemon left its socket behind; a live one would have
          the path locked by a connectable listener — keep it simple and
          treat the file as stale *)
       Sys.remove path;
       Unix.bind fd (Unix.ADDR_UNIX path));
    Unix.listen fd 64;
    fd
  in
  let listen_fd = bind_unix cfg.socket_path in
  let admin_fd =
    match cfg.admin_path with
    | None -> None
    | Some path -> Some (path, bind_unix path)
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let svc =
    {
      cfg;
      mutex = Mutex.create ();
      cond = Condition.create ();
      jobs = Queue.create ();
      events = Queue.create ();
      shutdown_workers = false;
      wake_r;
      wake_w;
      sessions = [];
      admins = [];
      n_active = 0;
      served = 0;
      failed = 0;
      shed_n = 0;
      bytes = 0;
      t_start = now ();
    }
  in
  let workers = List.init cfg.workers (fun _ -> Domain.spawn (fun () -> worker_loop svc)) in
  let accept_attempt = ref 0 in
  let accept_muted_until = ref 0. in
  let listening = ref true in
  Log.info "serve: listening"
    ~fields:
      [
        ("socket", cfg.socket_path);
        ("max_sessions", string_of_int cfg.max_sessions);
        ("quota", string_of_int cfg.session_quota);
        ("workers", string_of_int cfg.workers);
      ];
  on_ready ();
  let finished () = (not !listening) && svc.sessions = [] in
  while not (finished ()) do
    if Atomic.get stop && !listening then begin
      listening := false;
      close_quietly listen_fd;
      (match admin_fd with Some (_, fd) -> close_quietly fd | None -> ());
      Log.info "serve: draining"
        ~fields:[ ("sessions", string_of_int (List.length svc.sessions)) ]
    end;
    if not (finished ()) then begin
      let t = now () in
      (* deadlines: time out readers; hard-close flushers *)
      List.iter
        (fun s ->
          if t >= s.deadline then
            match s.state with
            | Reading when not s.timed_out ->
                s.timed_out <- true;
                fl_note s
                  ~args:[ ("bytes_in", Obs.itos s.bytes_in) ]
                  "deadline expired";
                Mutex.lock svc.mutex;
                schedule_locked svc s;
                Mutex.unlock svc.mutex
            | Replying -> s.state <- Closing
            | _ -> ())
        svc.sessions;
      List.iter
        (fun s -> if s.state = Closing && not s.worker_owned then finalize_sess svc s)
        svc.sessions;
      (* admin conns: reap the answered and the squatting *)
      let dead_admin a = a.aclosed || t >= a.adeadline in
      List.iter (fun a -> if dead_admin a then close_quietly a.afd) svc.admins;
      svc.admins <- List.filter (fun a -> not (dead_admin a)) svc.admins;
      if finished () then ()
      else begin
        let readable =
          (if !listening && t >= !accept_muted_until then [ listen_fd ] else [])
          @ (match admin_fd with
            | Some (_, fd) when !listening -> [ fd ]
            | _ -> [])
          @ [ svc.wake_r ]
          @ List.filter_map
              (fun a -> if a.areply = "" then Some a.afd else None)
              svc.admins
          @ List.filter_map
              (fun s ->
                match s.state with
                | Reading
                  when (not s.eof) && (not s.timed_out)
                       && t >= s.stalled_until
                       && not (queue_high s svc.cfg.session_quota) ->
                    Some s.fd
                | Replying when s.session <> None && not s.eof ->
                    (* drain a still-talking peer so its writes cannot
                       deadlock against our reply *)
                    Some s.fd
                | _ -> None)
              svc.sessions
        in
        let writable =
          List.filter_map
            (fun s ->
              if s.reply_off < String.length s.reply && s.state <> Closing then
                Some s.fd
              else None)
            svc.sessions
          @ List.filter_map
              (fun a ->
                if a.areply <> "" && a.areply_off < String.length a.areply then
                  Some a.afd
                else None)
              svc.admins
        in
        let next_deadline =
          List.fold_left
            (fun acc s ->
              let d =
                if s.state = Reading && t < s.stalled_until then
                  min s.deadline s.stalled_until
                else s.deadline
              in
              min acc d)
            (if !listening && t < !accept_muted_until then !accept_muted_until
             else infinity)
            svc.sessions
        in
        let next_deadline =
          List.fold_left (fun acc a -> min acc a.adeadline) next_deadline
            svc.admins
        in
        let timeout =
          if Atomic.get stop then 0.1
          else if next_deadline = infinity then 1.0
          else max 0.01 (min 5.0 (next_deadline -. t))
        in
        match Unix.select readable writable [] timeout with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | rs, ws, _ ->
            if List.mem svc.wake_r rs then drain_pipe svc.wake_r;
            process_events svc;
            if !listening && List.mem listen_fd rs then begin
              match accept_session svc listen_fd with
              | `Accepted | `Shed | `Again -> accept_attempt := 0
              | `Error e ->
                  (* transient fd pressure: mute the listener for a
                     seeded backoff delay rather than spinning *)
                  incr accept_attempt;
                  let delay =
                    Backoff.delay_s ~base:cfg.backoff_base_s ~seed:cfg.seed
                      ~attempt:!accept_attempt
                  in
                  accept_muted_until := now () +. delay;
                  Log.warn "accept failed; backing off"
                    ~fields:
                      [
                        ("error", Unix.error_message e);
                        ("delay_s", Printf.sprintf "%.3f" delay);
                        ("attempt", string_of_int !accept_attempt);
                      ]
            end;
            (match admin_fd with
            | Some (_, fd) when !listening && List.mem fd rs ->
                accept_admin svc fd
            | _ -> ());
            List.iter
              (fun a ->
                if List.mem a.afd rs then read_admin svc a;
                if List.mem a.afd ws then write_admin a)
              svc.admins;
            List.iter
              (fun s ->
                if List.mem s.fd rs then begin
                  if s.state = Reading then begin
                    read_chunk svc s;
                    Mutex.lock svc.mutex;
                    if
                      (not (Queue.is_empty s.queue))
                      || s.eof
                    then schedule_locked svc s;
                    Mutex.unlock svc.mutex
                  end
                  else begin
                    (* replying: discard whatever the peer still sends *)
                    let b = Bytes.create 4096 in
                    match Unix.read s.fd b 0 4096 with
                    | 0 -> s.eof <- true
                    | _ -> ()
                    | exception Unix.Unix_error _ -> s.eof <- true
                  end
                end;
                if List.mem s.fd ws && s.state <> Closing then write_reply s)
              svc.sessions;
            List.iter
              (fun s ->
                if s.state = Closing && not s.worker_owned then
                  finalize_sess svc s)
              svc.sessions
      end
    end
  done;
  if !listening then begin
    close_quietly listen_fd;
    match admin_fd with Some (_, fd) -> close_quietly fd | None -> ()
  end;
  List.iter (fun a -> close_quietly a.afd) svc.admins;
  svc.admins <- [];
  (try Sys.remove cfg.socket_path with Sys_error _ -> ());
  (match admin_fd with
  | Some (path, _) -> ( try Sys.remove path with Sys_error _ -> ())
  | None -> ());
  Mutex.lock svc.mutex;
  svc.shutdown_workers <- true;
  Condition.broadcast svc.cond;
  Mutex.unlock svc.mutex;
  List.iter Domain.join workers;
  close_quietly wake_r;
  close_quietly wake_w;
  Option.iter
    (fun b -> try Sys.set_signal Sys.sigpipe b with Invalid_argument _ -> ())
    prev_sigpipe;
  Obs.set_enabled prev_obs;
  Log.info "serve: drained"
    ~fields:
      [
        ("served", string_of_int svc.served);
        ("failed", string_of_int svc.failed);
        ("shed", string_of_int svc.shed_n);
      ];
  { served = svc.served; failed = svc.failed; shed = svc.shed_n; bytes_ingested = svc.bytes }
