(** The ThreadFuser mini-ISA instruction set.

    CISC-flavoured: ALU instructions may take one memory operand as either
    source or destination, like x86, which is what makes the analyzer's
    CISC-to-RISC cracking meaningful.  The type is polymorphic in the
    representation of jump targets (['lbl]) and callees (['fn]): surface
    programs use strings for both; assembled programs use block indices and
    function indices (see {!Threadfuser_prog.Program}).

    Instructions that interact with the outside world at other than
    register/ALU granularity — [Call], [Ret], [Jmp], [Jcc], [Lock_acquire],
    [Lock_release], [Io], [Halt] — terminate the basic block they appear in,
    matching the PIN tracer's BBL boundaries in the paper. *)

type io_dir = In | Out

type ('lbl, 'fn) t =
  | Mov of Width.t * Operand.t * Operand.t (* dst <- src *)
  | Cmov of Cond.t * Operand.t * Operand.t (* dst <- src if flags satisfy *)
  | Lea of Reg.t * Operand.mem (* dst <- address of mem *)
  | Binop of Op.binop * Width.t * Operand.t * Operand.t (* dst <- dst op src *)
  | Unop of Op.unop * Width.t * Operand.t (* dst <- op dst *)
  | Cmp of Width.t * Operand.t * Operand.t (* set flags from a ? b *)
  | Jcc of Cond.t * 'lbl
  | Jmp of 'lbl
  | Call of 'fn
  | Ret
  | Lock_acquire of Operand.t (* operand evaluates to the mutex address *)
  | Lock_release of Operand.t
  | Atomic_rmw of Op.binop * Width.t * Operand.mem * Operand.t (* mem <- mem op src, atomically *)
  | Io of io_dir * Operand.t (* untraced I/O work costing [operand] instructions *)
  | Barrier of Operand.t (* OpenMP-style team barrier named by the operand *)
  | Halt

(** Whether the instruction ends its basic block. *)
let is_terminator = function
  | Jcc _ | Jmp _ | Call _ | Ret | Lock_acquire _ | Lock_release _ | Io _
  | Barrier _ | Halt ->
      true
  | Mov _ | Cmov _ | Lea _ | Binop _ | Unop _ | Cmp _ | Atomic_rmw _ -> false

(** Whether control can fall through to the next instruction/block. *)
let falls_through = function
  | Jmp _ | Ret | Halt -> false
  | Jcc _ | Call _ | Lock_acquire _ | Lock_release _ | Io _ | Barrier _
  | Mov _ | Cmov _ | Lea _ | Binop _ | Unop _ | Cmp _ | Atomic_rmw _ ->
      true

(* Count of memory operands; the assembler rejects instructions with > 1. *)
let mem_operand_count instr =
  let c o = if Operand.is_mem o then 1 else 0 in
  match instr with
  | Mov (_, dst, src) | Binop (_, _, dst, src) | Cmov (_, dst, src) ->
      c dst + c src
  | Unop (_, _, dst) -> c dst
  | Cmp (_, a, b) -> c a + c b
  | Atomic_rmw (_, _, _, src) -> 1 + c src
  | Lock_acquire o | Lock_release o | Io (_, o) | Barrier o -> c o
  | Lea _ | Jcc _ | Jmp _ | Call _ | Ret | Halt -> 0

let pp ~pp_lbl ~pp_fn ppf (instr : ('lbl, 'fn) t) =
  let o = Operand.pp and w = Width.pp in
  match instr with
  | Mov (width, dst, src) -> Fmt.pf ppf "mov.%a %a, %a" w width o dst o src
  | Cmov (c, dst, src) -> Fmt.pf ppf "cmov.%a %a, %a" Cond.pp c o dst o src
  | Lea (r, m) -> Fmt.pf ppf "lea %a, %a" Reg.pp r Operand.pp_mem m
  | Binop (op, width, dst, src) ->
      Fmt.pf ppf "%a.%a %a, %a" Op.pp_binop op w width o dst o src
  | Unop (op, width, dst) -> Fmt.pf ppf "%a.%a %a" Op.pp_unop op w width o dst
  | Cmp (width, a, b) -> Fmt.pf ppf "cmp.%a %a, %a" w width o a o b
  | Jcc (c, l) -> Fmt.pf ppf "j%a %a" Cond.pp c pp_lbl l
  | Jmp l -> Fmt.pf ppf "jmp %a" pp_lbl l
  | Call f -> Fmt.pf ppf "call %a" pp_fn f
  | Ret -> Fmt.string ppf "ret"
  | Lock_acquire a -> Fmt.pf ppf "lock_acquire %a" o a
  | Lock_release a -> Fmt.pf ppf "lock_release %a" o a
  | Atomic_rmw (op, width, m, src) ->
      Fmt.pf ppf "atomic_%a.%a %a, %a" Op.pp_binop op w width Operand.pp_mem m
        o src
  | Io (In, cost) -> Fmt.pf ppf "io.in %a" o cost
  | Io (Out, cost) -> Fmt.pf ppf "io.out %a" o cost
  | Barrier b -> Fmt.pf ppf "barrier %a" o b
  | Halt -> Fmt.string ppf "halt"

let pp_surface ppf (instr : (string, string) t) =
  pp ~pp_lbl:Fmt.string ~pp_fn:Fmt.string ppf instr

let pp_resolved ppf (instr : (int, int) t) =
  pp
    ~pp_lbl:(fun ppf b -> Fmt.pf ppf ".b%d" b)
    ~pp_fn:(fun ppf f -> Fmt.pf ppf "@%d" f)
    ppf instr
