(** Branch conditions, evaluated against the flags set by the most recent
    [Cmp] (or flag-setting ALU) instruction.  Comparisons are signed over
    the values as truncated/extended by the comparison's width. *)

type t = Eq | Ne | Lt | Le | Gt | Ge

let negate = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(** [eval c a b] decides [a c b]. *)
let eval c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let equal (a : t) (b : t) = a = b

let to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let pp ppf c = Fmt.string ppf (to_string c)
