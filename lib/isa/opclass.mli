(** Functional-unit classes the timing models use to pick execution
    latencies for cracked micro-ops. *)

type t =
  | Ialu
  | Imul
  | Idiv
  | Falu
  | Fmul
  | Fdiv
  | Load
  | Store
  | Branch
  | Callret
  | Sync

val of_binop : Op.binop -> t

val of_unop : Op.unop -> t

val to_string : t -> string

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
