(** Branch conditions, evaluated against the flags latched by the most
    recent [Cmp].  Comparisons are signed over the width-adjusted values. *)

type t = Eq | Ne | Lt | Le | Gt | Ge

val negate : t -> t

(** [eval c a b] decides [a c b]. *)
val eval : t -> int -> int -> bool

val equal : t -> t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit
