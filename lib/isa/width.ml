(** Memory-access widths.

    Loads of [W1], [W2] and [W4] zero-extend into the 64-bit register;
    [W8] moves the full word.  Stores truncate. *)

type t = W1 | W2 | W4 | W8

let bytes = function W1 -> 1 | W2 -> 2 | W4 -> 4 | W8 -> 8

let equal (a : t) (b : t) = a = b

let pp ppf w = Fmt.pf ppf "w%d" (bytes w)
