(** Architectural registers of the mini-ISA: sixteen 64-bit general-purpose
    registers, x86-64-like.  Two have fixed roles: {!sp} (r15) is the stack
    pointer; {!tls} (r14) points at the thread's thread-local storage.  The
    calling convention passes up to six arguments in r0..r5 and returns in
    r0; there are no callee-saved registers. *)

type t = int
(** Kept transparent: register numbers index register files directly in the
    machine and the simulators' scoreboards. *)

val count : int

val sp : t

val tls : t

(** [r i] — general register [i]; raises outside [0, count). *)
val r : int -> t

(** [arg i] — the register carrying the [i]-th function argument (i <= 5). *)
val arg : int -> t

val ret : t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
