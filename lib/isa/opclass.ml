(** Functional-unit classes used by the timing models to pick execution
    latencies for cracked micro-ops. *)

type t =
  | Ialu (* integer add/logic/shift/compare/lea/move *)
  | Imul
  | Idiv
  | Falu (* fp add/sub/min/max *)
  | Fmul
  | Fdiv (* also fsqrt *)
  | Load
  | Store
  | Branch
  | Callret
  | Sync (* lock acquire / release *)

let of_binop : Op.binop -> t = function
  | Op.Mul -> Imul
  | Op.Div | Op.Rem -> Idiv
  | Op.Fadd | Op.Fsub -> Falu
  | Op.Fmul -> Fmul
  | Op.Fdiv -> Fdiv
  | Op.Add | Op.Sub | Op.And | Op.Or | Op.Xor | Op.Shl | Op.Shr | Op.Sar
  | Op.Min | Op.Max ->
      Ialu

let of_unop : Op.unop -> t = function
  | Op.Neg | Op.Not -> Ialu
  | Op.Fsqrt -> Fdiv

let to_string = function
  | Ialu -> "ialu"
  | Imul -> "imul"
  | Idiv -> "idiv"
  | Falu -> "falu"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Load -> "load"
  | Store -> "store"
  | Branch -> "branch"
  | Callret -> "callret"
  | Sync -> "sync"

let equal (a : t) (b : t) = a = b

let pp ppf c = Fmt.string ppf (to_string c)
