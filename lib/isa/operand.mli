(** Instruction operands.  Memory operands use the x86 addressing form
    [base + index*scale + disp]; the assembler enforces at most one memory
    operand per instruction. *)

type mem = {
  base : Reg.t option;
  index : (Reg.t * int) option;  (** scale in {1,2,4,8} *)
  disp : int;
}

(** Raises on an invalid scale. *)
val mem : ?base:Reg.t -> ?index:Reg.t * int -> ?disp:int -> unit -> mem

type t = Reg of Reg.t | Imm of int | Mem of mem

val is_mem : t -> bool

(** Registers read when computing a memory operand's address. *)
val mem_regs : mem -> Reg.t list

(** Registers read to evaluate the operand as a source. *)
val src_regs : t -> Reg.t list

val pp_mem : Format.formatter -> mem -> unit

val pp : Format.formatter -> t -> unit
