(** ALU operations.  Floating point is modelled in fixed point: the [F*]
    operators compute on integers but are classified as FP work by the
    timing models.  Division/remainder by zero yield 0, so every program is
    total. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Sar
  | Min
  | Max
  | Fadd
  | Fsub
  | Fmul
  | Fdiv

type unop = Neg | Not | Fsqrt

val eval_binop : binop -> int -> int -> int

val eval_unop : unop -> int -> int

(** Integer square root (floor); total and terminating. *)
val isqrt : int -> int

val binop_is_float : binop -> bool

val binop_to_string : binop -> string

val unop_to_string : unop -> string

val pp_binop : Format.formatter -> binop -> unit

val pp_unop : Format.formatter -> unop -> unit
