(** Instruction operands.

    A memory operand follows the x86 addressing form
    [base + index * scale + disp].  The assembler enforces the CISC
    restriction that an instruction carries at most one memory operand, so
    every traced x86-style instruction cracks into at most one load and one
    store micro-op (see {!Threadfuser_isa.Micro}). *)

type mem = {
  base : Reg.t option;
  index : (Reg.t * int) option; (* scale in {1,2,4,8} *)
  disp : int;
}

type t = Reg of Reg.t | Imm of int | Mem of mem

let mem ?base ?index ?(disp = 0) () =
  (match index with
  | Some (_, s) when s <> 1 && s <> 2 && s <> 4 && s <> 8 ->
      invalid_arg "Operand.mem: scale must be 1, 2, 4 or 8"
  | Some _ | None -> ());
  { base; index; disp }

let is_mem = function Mem _ -> true | Reg _ | Imm _ -> false

(** Registers read when computing a memory operand's address. *)
let mem_regs m =
  let base = match m.base with Some r -> [ r ] | None -> [] in
  match m.index with Some (r, _) -> r :: base | None -> base

(** Registers read to evaluate the operand as a source. *)
let src_regs = function
  | Reg r -> [ r ]
  | Imm _ -> []
  | Mem m -> mem_regs m

let pp_mem ppf m =
  let pp_base ppf = function
    | Some r -> Reg.pp ppf r
    | None -> Fmt.string ppf ""
  in
  let pp_index ppf = function
    | Some (r, s) -> Fmt.pf ppf "+%a*%d" Reg.pp r s
    | None -> ()
  in
  Fmt.pf ppf "[%a%a%s%d]" pp_base m.base pp_index m.index
    (if m.disp >= 0 then "+" else "")
    m.disp

let pp ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm n -> Fmt.pf ppf "$%d" n
  | Mem m -> pp_mem ppf m
