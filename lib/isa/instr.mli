(** The mini-ISA instruction set.

    CISC-flavoured: ALU instructions may take one memory operand as source
    or destination, like x86 — which is what makes the analyzer's
    CISC-to-RISC cracking meaningful.  Polymorphic in the representation of
    jump targets (['lbl]) and callees (['fn]): surface programs use
    strings; assembled programs use block and function indices.

    Control-transfer and interaction instructions ([Call], [Ret], [Jmp],
    [Jcc], [Lock_acquire], [Lock_release], [Io], [Halt]) terminate their
    basic block, matching the PIN tracer's BBL boundaries. *)

type io_dir = In | Out

type ('lbl, 'fn) t =
  | Mov of Width.t * Operand.t * Operand.t  (** dst <- src *)
  | Cmov of Cond.t * Operand.t * Operand.t
      (** dst <- src if the latched flags satisfy the condition *)
  | Lea of Reg.t * Operand.mem  (** dst <- address of mem *)
  | Binop of Op.binop * Width.t * Operand.t * Operand.t  (** dst <- dst op src *)
  | Unop of Op.unop * Width.t * Operand.t
  | Cmp of Width.t * Operand.t * Operand.t  (** latch flags from a ? b *)
  | Jcc of Cond.t * 'lbl
  | Jmp of 'lbl
  | Call of 'fn
  | Ret
  | Lock_acquire of Operand.t
      (** the operand names the mutex: memory operands denote their address
          (like [lea]); registers and immediates their value *)
  | Lock_release of Operand.t
  | Atomic_rmw of Op.binop * Width.t * Operand.mem * Operand.t
      (** mem <- mem op src, atomically *)
  | Io of io_dir * Operand.t
      (** untraced I/O work costing [operand] instructions (paper Fig. 8) *)
  | Barrier of Operand.t
      (** OpenMP-style team barrier: every live thread must arrive before
          any proceeds.  The operand names the barrier like a lock. *)
  | Halt

(** Whether the instruction ends its basic block. *)
val is_terminator : ('lbl, 'fn) t -> bool

(** Whether control can fall through to the next instruction/block. *)
val falls_through : ('lbl, 'fn) t -> bool

(** Memory-operand count; the assembler rejects instructions with more
    than one. *)
val mem_operand_count : ('lbl, 'fn) t -> int

val pp :
  pp_lbl:(Format.formatter -> 'lbl -> unit) ->
  pp_fn:(Format.formatter -> 'fn -> unit) ->
  Format.formatter ->
  ('lbl, 'fn) t ->
  unit

val pp_surface : Format.formatter -> (string, string) t -> unit

val pp_resolved : Format.formatter -> (int, int) t -> unit
