(** ALU operations.

    Floating-point is modelled in fixed point: the [F*] operators compute on
    the same 63-bit integers as their integer counterparts but are classified
    as floating-point work by the timing models ({!Opclass}).  Division and
    remainder by zero are defined to yield 0 so that every program is total. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Sar
  | Min
  | Max
  | Fadd
  | Fsub
  | Fmul
  | Fdiv

type unop = Neg | Not | Fsqrt

let eval_binop op a b =
  match op with
  | Add | Fadd -> a + b
  | Sub | Fsub -> a - b
  | Mul | Fmul -> a * b
  | Div | Fdiv -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a lsr (b land 63)
  | Sar -> a asr (b land 63)
  | Min -> min a b
  | Max -> max a b

(* Integer square root by Newton iteration; used for [Fsqrt].  Starting
   from n the iterates decrease monotonically until they reach
   floor(sqrt n); stopping as soon as an iterate fails to decrease avoids
   the classic 2-cycle of the "iterate until equal" formulation. *)
let isqrt n =
  if n <= 0 then 0
  else begin
    let x = ref n in
    let next = ref ((!x + (n / !x)) / 2) in
    while !next < !x do
      x := !next;
      next := (!x + (n / !x)) / 2
    done;
    !x
  end

let eval_unop op a =
  match op with Neg -> -a | Not -> lnot a | Fsqrt -> isqrt a

let binop_is_float = function
  | Fadd | Fsub | Fmul | Fdiv -> true
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar | Min | Max
    ->
      false

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sar -> "sar"
  | Min -> "min"
  | Max -> "max"
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let unop_to_string = function Neg -> "neg" | Not -> "not" | Fsqrt -> "fsqrt"

let pp_binop ppf op = Fmt.string ppf (binop_to_string op)

let pp_unop ppf op = Fmt.string ppf (unop_to_string op)
