(** Architectural registers of the ThreadFuser mini-ISA.

    Sixteen 64-bit general-purpose registers, x86-64-like.  Two have a fixed
    role enforced by convention:

    - [sp] (r15) is the stack pointer; the machine initialises it to the top
      of each thread's private stack segment.
    - [tls] (r14) points at the thread's thread-local-storage area (used by
      the O0 "spill everything" compiler pass and by the runtime library for
      per-thread allocator arenas).

    The calling convention passes up to six arguments in [arg 0..5]
    (r0..r5) and returns results in r0.  There are no callee-saved
    registers; callers keep live values out of the callee's clobber set. *)

type t = int

let count = 16

let sp = 15

let tls = 14

(** [r i] is general register [i]; raises on out-of-range indices. *)
let r i : t =
  if i < 0 || i >= count then invalid_arg "Reg.r";
  i

(** [arg i] is the register carrying the [i]-th function argument. *)
let arg i : t =
  if i < 0 || i > 5 then invalid_arg "Reg.arg";
  i

let ret : t = 0

let equal (a : t) (b : t) = a = b

let pp ppf (reg : t) =
  if reg = sp then Fmt.string ppf "sp"
  else if reg = tls then Fmt.string ppf "tls"
  else Fmt.pf ppf "r%d" reg
