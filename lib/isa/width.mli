(** Memory-access widths.  Loads of [W1]/[W2]/[W4] zero-extend into the
    64-bit register; [W8] moves the full word.  Stores truncate. *)

type t = W1 | W2 | W4 | W8

val bytes : t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
