(** Content-addressed, crash-safe artifact store (see cache.mli).

    On disk, a cache root holds

    {v
      objects/<id>.<kind>   committed blobs (TFBLOB1 envelopes)
      tmp/                  commit staging — same filesystem as objects/
      quarantine/           blobs that failed verification, set aside
      index.jsonl           fsync'd append-only journal of the live set
      index.quarantine      index lines that failed to parse
    v}

    Commit protocol (the journal semantics of lib/runner/journal.ml):
    write the envelope to a temp file {e inside the root} — never /tmp,
    so the rename cannot cross a filesystem boundary — fsync, rename into
    [objects/], fsync the directory, then append one index line and fsync
    it.  A crash at any byte of that sequence leaves either no entry
    (temp garbage, swept by scrub), an orphaned-but-valid blob (re-adopted
    by scrub), or a fully committed entry; never a served torn read.

    Every read re-verifies the envelope: magic, CRC-32 over the whole
    body, bounded length headers via {!Serial}'s readers, and that the
    embedded key matches the requested one.  Reports are additionally
    parsed and {!Report_json.validate}d.  Anything that fails is moved to
    [quarantine/] — never served, never fatal — with a typed
    {!Tf_error} diagnostic and a [tf_cache_corrupt_total] tick. *)

module Serial = Threadfuser_trace.Serial
module Json = Threadfuser_report.Json
module Report_json = Threadfuser_report.Report_json
module Tf_error = Threadfuser_util.Tf_error
module Crc32 = Threadfuser_util.Crc32
module Lcg = Threadfuser_util.Lcg
module Store_fault = Threadfuser_fault.Store_fault
module Obs = Threadfuser_obs.Obs

let c_hits =
  Obs.Counter.make "tf_cache_hits_total"
    ~help:"cache lookups served from a verified blob"
let c_misses =
  Obs.Counter.make "tf_cache_misses_total"
    ~help:"cache lookups that found no servable entry"
let c_corrupt =
  Obs.Counter.make "tf_cache_corrupt_total"
    ~help:"blobs that failed verification and were quarantined"
let c_commits =
  Obs.Counter.make "tf_cache_commits_total"
    ~help:"entries committed through the atomic temp+fsync+rename path"
let c_evictions =
  Obs.Counter.make "tf_cache_evictions_total"
    ~help:"entries evicted by the gc size budget (LRU order)"

let schema = "tfcache/1"

(* ------------------------------------------------------------------ *)
(* Keys and content addressing.                                        *)

type key = {
  workload : string;  (** workload identity: name plus content hash *)
  opt_level : int;
  warp_size : int;
  analyzer_version : string;
}

type kind = Report | Pack

let kind_name = function Report -> "report" | Pack -> "pack"

let kind_of_name = function
  | "report" -> Some Report
  | "pack" -> Some Pack
  | _ -> None

let kind_tag = function Report -> 0 | Pack -> 1

let kind_of_tag = function
  | 0 -> Report
  | 1 -> Pack
  | n -> raise (Serial.Corrupt (Printf.sprintf "bad blob kind %d" n))

(* 0x1f cannot appear in the numeric fields and is vanishingly unlikely in
   names, so the canonical string is injective in practice; the embedded
   key in every blob makes even a hash collision harmless (the read-side
   key check refuses the mismatched blob). *)
let canonical k =
  Printf.sprintf "%s\x1f%d\x1f%d\x1f%s" k.workload k.opt_level k.warp_size
    k.analyzer_version

(* Two independent FNV-1a streams give a 120-bit id: [Lcg.hash_string] is
   stable across OCaml versions, so ids are portable cache-wide. *)
let key_id k =
  let c = canonical k in
  Printf.sprintf "%015x%015x" (Lcg.hash_string c)
    (Lcg.hash_string (c ^ "\x1f#2"))

let object_name k kind = key_id k ^ "." ^ kind_name kind

let pp_key ppf k =
  Fmt.pf ppf "%s opt=%d warp=%d analyzer=%s" k.workload k.opt_level
    k.warp_size k.analyzer_version

(* ------------------------------------------------------------------ *)
(* Blob envelope: TFBLOB1, self-describing so a scrub can rebuild the
   whole index from surviving blobs alone. *)

let blob_magic = "TFBLOB1"

let encode_blob ~key:k ~kind payload =
  let body = Buffer.create (String.length payload + 64) in
  Serial.write_uint body (kind_tag kind);
  Serial.write_uint body (String.length k.workload);
  Buffer.add_string body k.workload;
  Serial.write_uint body k.opt_level;
  Serial.write_uint body k.warp_size;
  Serial.write_uint body (String.length k.analyzer_version);
  Buffer.add_string body k.analyzer_version;
  Serial.write_uint body (String.length payload);
  Buffer.add_string body payload;
  let b = Buffer.contents body in
  let out = Buffer.create (String.length b + 16) in
  Buffer.add_string out blob_magic;
  Buffer.add_string out b;
  Crc32.add_le out (Crc32.string b);
  Buffer.contents out

let read_bytes (r : Serial.reader) n =
  (* [n] has already passed a [read_count] bound *)
  let s = String.sub r.Serial.data r.Serial.pos n in
  r.Serial.pos <- r.Serial.pos + n;
  s

(* Raises [Serial.Corrupt] on any damage: the CRC runs first, so a torn or
   bit-flipped body never reaches the structural parse. *)
let decode_blob s =
  let n_magic = String.length blob_magic in
  if String.length s < n_magic + 4 || String.sub s 0 n_magic <> blob_magic
  then raise (Serial.Corrupt "bad blob magic");
  let body_len = String.length s - n_magic - 4 in
  let body = String.sub s n_magic body_len in
  let stored = Crc32.read_le s (n_magic + body_len) in
  let computed = Crc32.string body in
  if stored <> computed then
    raise
      (Serial.Corrupt
         (Printf.sprintf "blob crc mismatch (stored %08x, computed %08x)"
            stored computed));
  let r = { Serial.data = body; pos = 0 } in
  let kind = kind_of_tag (Serial.read_uint r) in
  let wlen = Serial.read_count r ~min_bytes:1 "workload" in
  let workload = read_bytes r wlen in
  let opt_level = Serial.read_uint r in
  let warp_size = Serial.read_uint r in
  let alen = Serial.read_count r ~min_bytes:1 "analyzer version" in
  let analyzer_version = read_bytes r alen in
  let plen = Serial.read_count r ~min_bytes:1 "payload" in
  let payload = read_bytes r plen in
  if r.Serial.pos <> body_len then
    raise
      (Serial.Corrupt
         (Printf.sprintf "blob has %d trailing byte(s)"
            (body_len - r.Serial.pos)));
  ({ workload; opt_level; warp_size; analyzer_version }, kind, payload)

(* Reports get one more gate before they are trusted: the payload must be
   parseable JSON that passes the report validator. *)
let validate_payload kind payload =
  match kind with
  | Pack -> Ok ()
  | Report -> (
      match Json.parse payload with
      | Error m -> Error ("cached report does not parse: " ^ m)
      | Ok j -> (
          match Report_json.validate j with
          | Ok () -> Ok ()
          | Error m -> Error ("cached report fails validation: " ^ m)))

(* ------------------------------------------------------------------ *)
(* Store state.                                                        *)

type entry = { e_bytes : int; mutable e_seq : int }

type t = {
  root : string;
  objects_dir : string;
  tmp_dir : string;
  quarantine_dir : string;
  index_path : string;
  entries : (string, entry) Hashtbl.t;  (* object name -> live entry *)
  mutable seq : int;  (* recency clock: index line order, no wall time *)
  mutable index_fd : Unix.file_descr;
  mu : Mutex.t;
  fault : Store_fault.plan option;
}

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let root t = t.root
let tmp_dir t = t.tmp_dir

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let fsync_dir path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One journal line, written whole and fsync'd — the append discipline of
   lib/runner/journal.ml. *)
let append_index_line t line =
  let line = line ^ "\n" in
  let n = String.length line in
  let rec write off =
    if off < n then
      write (off + Unix.write_substring t.index_fd line off (n - off))
  in
  write 0;
  Unix.fsync t.index_fd

let put_line ~id ~kind ~bytes =
  Printf.sprintf
    {|{"schema":"%s","op":"put","id":"%s","kind":"%s","bytes":%d}|} schema id
    (kind_name kind) bytes

let op_line op ~id =
  Printf.sprintf {|{"schema":"%s","op":"%s","id":"%s"}|} schema op id

(* ------------------------------------------------------------------ *)
(* Index loading: same quarantine-not-fatal semantics as the runner
   journal — a bad line is set aside, never a crash. *)

let parse_index_line line =
  match Json.parse line with
  | Error m -> Error m
  | Ok j -> (
      let str k = Option.bind (Json.member k j) Json.to_string_opt in
      let int k = Option.bind (Json.member k j) Json.to_int_opt in
      match (str "schema", str "op", str "id") with
      | Some s, _, _ when s <> schema -> Error ("unknown schema " ^ s)
      | Some _, Some "put", Some id -> (
          match (Option.bind (str "kind") kind_of_name, int "bytes") with
          | Some _, Some bytes when bytes >= 0 -> Ok (`Put (id, bytes))
          | _ -> Error "bad put record")
      | Some _, Some "touch", Some id -> Ok (`Touch id)
      | Some _, Some "evict", Some id -> Ok (`Evict id)
      | Some _, Some "quarantine", Some id -> Ok (`Quarantine id)
      | _ -> Error "missing schema/op/id")

let load_index t =
  if Sys.file_exists t.index_path then begin
    let ic = open_in t.index_path in
    let bad = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then begin
              t.seq <- t.seq + 1;
              match parse_index_line line with
              | Ok (`Put (id, bytes)) ->
                  Hashtbl.replace t.entries id
                    { e_bytes = bytes; e_seq = t.seq }
              | Ok (`Touch id) -> (
                  match Hashtbl.find_opt t.entries id with
                  | Some e -> e.e_seq <- t.seq
                  | None -> ())
              | Ok (`Evict id) | Ok (`Quarantine id) ->
                  Hashtbl.remove t.entries id
              | Error m -> bad := (line, m) :: !bad
            end
          done
        with End_of_file -> ());
    (match !bad with
    | [] -> ()
    | bad_lines ->
        let oc =
          open_out_gen
            [ Open_append; Open_creat ]
            0o644
            (Filename.concat t.root "index.quarantine")
        in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            List.iter
              (fun (line, m) -> Printf.fprintf oc "# %s\n%s\n" m line)
              (List.rev bad_lines)));
    (* entries whose blob vanished (a crash between rename and append
       cannot cause this; external deletion can) are dropped: a find must
       never dangle *)
    let stale =
      Hashtbl.fold
        (fun id _ acc ->
          if Sys.file_exists (Filename.concat t.objects_dir id) then acc
          else id :: acc)
        t.entries []
    in
    List.iter (Hashtbl.remove t.entries) stale
  end

let open_ ?fault root =
  let root =
    if Filename.is_relative root then Filename.concat (Sys.getcwd ()) root
    else root
  in
  let t =
    {
      root;
      objects_dir = Filename.concat root "objects";
      tmp_dir = Filename.concat root "tmp";
      quarantine_dir = Filename.concat root "quarantine";
      index_path = Filename.concat root "index.jsonl";
      entries = Hashtbl.create 64;
      seq = 0;
      index_fd = Unix.stdin (* replaced below *);
      mu = Mutex.create ();
      fault;
    }
  in
  mkdir_p t.objects_dir;
  mkdir_p t.tmp_dir;
  mkdir_p t.quarantine_dir;
  load_index t;
  t.index_fd <-
    Unix.openfile t.index_path
      [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
      0o644;
  t

let close t =
  with_lock t (fun () -> try Unix.close t.index_fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Commit path.                                                        *)

(* Temp files live under the cache root — [Filename.temp_file] would put
   them in /tmp, where the final rename can cross a filesystem boundary
   and stop being atomic. *)
let write_atomic t ~name bytes =
  let tmp =
    Filename.concat t.tmp_dir
      (Printf.sprintf "%s.%d.tmp" name (Unix.getpid ()))
  in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = String.length bytes in
      let rec write off =
        if off < n then
          write (off + Unix.write_substring fd bytes off (n - off))
      in
      write 0;
      Unix.fsync fd);
  let dest = Filename.concat t.objects_dir name in
  Unix.rename tmp dest;
  fsync_dir t.objects_dir

let put t ~key ~kind payload =
  with_lock t @@ fun () ->
  let id = object_name key kind in
  let blob = encode_blob ~key ~kind payload in
  let action =
    match t.fault with
    | None -> Store_fault.No_fault
    | Some p -> Store_fault.decide p ~id
  in
  let image = Store_fault.mangle action ~id blob in
  write_atomic t ~name:id image;
  (match action with
  | Store_fault.Partial_rename ->
      (* simulated crash between rename and journal append: the object is
         on disk but the index never learns of it — scrub re-adopts it *)
      ()
  | _ ->
      append_index_line t (put_line ~id ~kind ~bytes:(String.length image));
      t.seq <- t.seq + 1;
      Hashtbl.replace t.entries id
        { e_bytes = String.length image; e_seq = t.seq });
  Obs.Counter.incr c_commits

(* ------------------------------------------------------------------ *)
(* Quarantine: move the damaged blob aside (never delete evidence),
   journal the removal, count it. *)

let quarantine_blob t ~id =
  let src = Filename.concat t.objects_dir id in
  let rec dest n =
    let d =
      Filename.concat t.quarantine_dir
        (if n = 0 then id else Printf.sprintf "%s.%d" id n)
    in
    if Sys.file_exists d then dest (n + 1) else d
  in
  (try Unix.rename src (dest 0) with Unix.Unix_error _ -> ());
  (try append_index_line t (op_line "quarantine" ~id)
   with Unix.Unix_error _ -> ());
  Hashtbl.remove t.entries id;
  Obs.Counter.incr c_corrupt

(* ------------------------------------------------------------------ *)
(* Lookup.                                                             *)

let find ?(on_corrupt = fun _ -> ()) t ~key ~kind =
  with_lock t @@ fun () ->
  let id = object_name key kind in
  let corrupt fmt =
    Format.kasprintf
      (fun m ->
        quarantine_blob t ~id;
        on_corrupt
          (Tf_error.diag Tf_error.Corrupt_input "cache entry %s: %s" id m);
        Obs.Counter.incr c_misses;
        None)
      fmt
  in
  match Hashtbl.find_opt t.entries id with
  | None ->
      Obs.Counter.incr c_misses;
      None
  | Some e -> (
      match read_file (Filename.concat t.objects_dir id) with
      | exception Sys_error _ -> corrupt "blob file unreadable"
      | s -> (
          match decode_blob s with
          | exception Serial.Corrupt m -> corrupt "%s" m
          | k, kd, payload ->
              if k <> key || kd <> kind then
                corrupt "blob key mismatch (%a)" pp_key k
              else begin
                match validate_payload kind payload with
                | Error m -> corrupt "%s" m
                | Ok () ->
                    t.seq <- t.seq + 1;
                    e.e_seq <- t.seq;
                    (try append_index_line t (op_line "touch" ~id)
                     with Unix.Unix_error _ -> ());
                    Obs.Counter.incr c_hits;
                    Some payload
              end))

(* ------------------------------------------------------------------ *)
(* Maintenance: stat / verify / scrub / gc.                            *)

type stats = {
  entries_live : int;
  bytes_live : int;
  quarantined : int;  (** files set aside in quarantine/ *)
  tmp_files : int;  (** commit-crash leftovers awaiting scrub *)
}

let dir_files d =
  match Sys.readdir d with
  | files ->
      Array.sort compare files;
      Array.to_list files
  | exception Sys_error _ -> []

let stat t =
  with_lock t @@ fun () ->
  {
    entries_live = Hashtbl.length t.entries;
    bytes_live = Hashtbl.fold (fun _ e n -> n + e.e_bytes) t.entries 0;
    quarantined = List.length (dir_files t.quarantine_dir);
    tmp_files = List.length (dir_files t.tmp_dir);
  }

type check = {
  checked : int;
  ok : int;
  corrupt : int;  (** blobs failing magic/CRC/structure/validator *)
  missing : int;  (** indexed entries whose blob is gone *)
  orphaned : int;  (** valid blobs on disk the index does not know *)
}

(* Full verification of one on-disk blob: envelope, embedded-key-vs-name
   agreement, and payload validity. *)
let blob_ok t id =
  match read_file (Filename.concat t.objects_dir id) with
  | exception Sys_error _ -> None
  | s -> (
      match decode_blob s with
      | exception Serial.Corrupt _ -> None
      | k, kind, payload -> (
          if object_name k kind <> id then None
          else
            match validate_payload kind payload with
            | Ok () -> Some (kind, String.length s)
            | Error _ -> None))

let verify t =
  with_lock t @@ fun () ->
  let files = dir_files t.objects_dir in
  let seen = Hashtbl.create 64 in
  let ok = ref 0 and corrupt = ref 0 and orphaned = ref 0 in
  List.iter
    (fun id ->
      Hashtbl.replace seen id ();
      match blob_ok t id with
      | None -> incr corrupt
      | Some _ ->
          if Hashtbl.mem t.entries id then incr ok else incr orphaned)
    files;
  let missing = ref 0 in
  Hashtbl.iter
    (fun id _ -> if not (Hashtbl.mem seen id) then incr missing)
    t.entries;
  {
    checked = List.length files + !missing;
    ok = !ok;
    corrupt = !corrupt;
    missing = !missing;
    orphaned = !orphaned;
  }

(* Scrub: re-verify every blob, quarantine the damaged, adopt valid
   orphans, drop dangling index entries, sweep commit leftovers, and
   atomically replace the index with one rebuilt from the survivors.
   After a scrub, [verify] reports a fully consistent store. *)
let scrub t =
  with_lock t @@ fun () ->
  let files = dir_files t.objects_dir in
  let survivors = ref [] in
  let corrupt = ref 0 and adopted = ref 0 in
  List.iter
    (fun id ->
      match blob_ok t id with
      | Some (kind, bytes) ->
          if not (Hashtbl.mem t.entries id) then incr adopted;
          survivors := (id, kind, bytes) :: !survivors
      | None -> (
          incr corrupt;
          Obs.Counter.incr c_corrupt;
          let rec dest n =
            let d =
              Filename.concat t.quarantine_dir
                (if n = 0 then id else Printf.sprintf "%s.%d" id n)
            in
            if Sys.file_exists d then dest (n + 1) else d
          in
          try Unix.rename (Filename.concat t.objects_dir id) (dest 0)
          with Unix.Unix_error _ -> ()))
    files;
  let survivors = List.rev !survivors in
  let missing = ref 0 in
  Hashtbl.iter
    (fun id _ ->
      if not (List.exists (fun (i, _, _) -> i = id) survivors) then
        incr missing)
    t.entries;
  (* commit-crash leftovers in tmp/ are unreachable garbage *)
  List.iter
    (fun f -> try Sys.remove (Filename.concat t.tmp_dir f) with Sys_error _ -> ())
    (dir_files t.tmp_dir);
  (* rebuild the index from the survivors, atomically: temp in the cache
     root, fsync, rename over index.jsonl *)
  (try Unix.close t.index_fd with Unix.Unix_error _ -> ());
  let tmp = Filename.concat t.tmp_dir "index.rebuild.tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      List.iter
        (fun (id, kind, bytes) ->
          let line = put_line ~id ~kind ~bytes ^ "\n" in
          let n = String.length line in
          let rec write off =
            if off < n then
              write (off + Unix.write_substring fd line off (n - off))
          in
          write 0)
        survivors;
      Unix.fsync fd);
  Unix.rename tmp t.index_path;
  fsync_dir t.root;
  t.index_fd <-
    Unix.openfile t.index_path
      [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
      0o644;
  Hashtbl.reset t.entries;
  t.seq <- 0;
  List.iter
    (fun (id, _, bytes) ->
      t.seq <- t.seq + 1;
      Hashtbl.replace t.entries id { e_bytes = bytes; e_seq = t.seq })
    survivors;
  {
    checked = List.length files;
    ok = List.length survivors;
    corrupt = !corrupt;
    missing = !missing;
    orphaned = !adopted;
  }

(* LRU gc under a byte budget.  Recency is index-line order — the
   journal's append sequence, no wall clocks — so eviction order is
   deterministic and replayable. *)
let gc t ~budget_bytes =
  if budget_bytes < 0 then invalid_arg "Cache.gc: negative budget";
  with_lock t @@ fun () ->
  let by_age =
    List.sort
      (fun (_, a) (_, b) -> compare a.e_seq b.e_seq)
      (Hashtbl.fold (fun id e acc -> (id, e) :: acc) t.entries [])
  in
  let total = List.fold_left (fun n (_, e) -> n + e.e_bytes) 0 by_age in
  let evicted = ref 0 in
  let rec go total = function
    | (id, e) :: rest when total > budget_bytes ->
        (try Sys.remove (Filename.concat t.objects_dir id)
         with Sys_error _ -> ());
        append_index_line t (op_line "evict" ~id);
        Hashtbl.remove t.entries id;
        Obs.Counter.incr c_evictions;
        incr evicted;
        go (total - e.e_bytes) rest
    | _ -> ()
  in
  go total by_age;
  !evicted
