(** Content-addressed, crash-safe artifact store for analysis reports and
    TFPACK1 compact traces.

    Entries are keyed on [(workload hash, opt level, warp size, analyzer
    version)] — the full input identity of an analysis, sound because
    ThreadFuser's replay is byte-deterministic.  Every blob is wrapped in
    a self-describing TFBLOB1 envelope (embedded key + CRC-32), committed
    via temp-in-root + fsync + rename + fsync'd journal append, and
    re-verified on every read.  Torn, truncated, bit-flipped or mis-filed
    entries are quarantined — never served, never fatal — and
    [threadfuser cache scrub] restores the store to a fully verified
    state, rebuilding the index from surviving blobs after any crash.

    All operations are serialized on an internal mutex: one [t] may be
    shared across domains (the suite runner's finish callbacks, the serve
    daemon's workers). *)

type key = {
  workload : string;  (** workload identity: name plus content hash *)
  opt_level : int;
  warp_size : int;
  analyzer_version : string;
}

type kind = Report | Pack

val kind_name : kind -> string

val key_id : key -> string
(** Stable hex content address (two independent 63-bit hash streams).
    The embedded key in each blob makes collisions harmless: a mismatched
    blob is refused and quarantined at read time. *)

type t

val open_ : ?fault:Threadfuser_fault.Store_fault.plan -> string -> t
(** [open_ root] opens (creating if needed) a cache rooted at [root].
    The index is loaded with journal semantics: corrupt lines are set
    aside in [index.quarantine], never fatal.  [?fault] arms the seeded
    durability-failure injectors on the commit path (tests and chaos
    runs). *)

val close : t -> unit

val root : t -> string

val tmp_dir : t -> string
(** The commit staging directory — always inside the cache root, so the
    final rename never crosses a filesystem boundary. *)

val put : t -> key:key -> kind:kind -> string -> unit
(** Commit one payload atomically.  An existing entry for the same key is
    replaced. *)

val find :
  ?on_corrupt:(Threadfuser_util.Tf_error.diagnostic -> unit) ->
  t ->
  key:key ->
  kind:kind ->
  string option
(** Verified lookup: envelope magic, CRC, bounded lengths and the
    embedded key are checked, and [Report] payloads must additionally
    pass {!Threadfuser_report.Report_json.validate}.  A damaged entry is
    quarantined, reported through [on_corrupt] and counted in
    [tf_cache_corrupt_total]; the call returns [None] (a miss), never
    raises, never serves bad bytes. *)

type stats = {
  entries_live : int;
  bytes_live : int;
  quarantined : int;  (** files set aside in quarantine/ *)
  tmp_files : int;  (** commit-crash leftovers awaiting scrub *)
}

val stat : t -> stats

type check = {
  checked : int;
  ok : int;
  corrupt : int;  (** blobs failing magic/CRC/structure/validator *)
  missing : int;  (** indexed entries whose blob is gone *)
  orphaned : int;  (** valid blobs the index does not know *)
}

val verify : t -> check
(** Read-only full verification of every blob and index entry. *)

val scrub : t -> check
(** Repair: quarantine damaged blobs, adopt valid orphans (e.g. after a
    crash between rename and journal append), drop dangling index
    entries, sweep tmp/ leftovers, and atomically rebuild the index from
    the survivors.  [orphaned] reports adoptions.  After [scrub],
    {!verify} reports a fully consistent store. *)

val gc : t -> budget_bytes:int -> int
(** Evict least-recently-used entries (recency = journal append order,
    deterministic) until the live set fits the budget.  Returns the
    number of evictions. *)

val schema : string
(** The index journal's schema tag (["tfcache/1"]). *)
