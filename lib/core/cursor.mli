(** A reading position in one thread's dynamic trace.

    The warp emulator drives one cursor per lane.  [Skip] events carry no
    control flow; they are absorbed transparently whenever the cursor is
    inspected and accumulated into the skip counters (paper Fig. 8). *)

type control =
  | C_block of {
      func : int;
      block : int;
      n_instr : int;
      accesses : Threadfuser_trace.Event.access array;
    }
  | C_call of int
  | C_ret
  | C_lock of int
  | C_unlock of int
  | C_barrier of int
  | C_end

type t = {
  tid : int;
  events : Threadfuser_trace.Event.t array;
  mutable pos : int;
  mutable skipped_io : int;
  mutable skipped_spin : int;
  mutable skipped_excluded : int;
}

val of_trace : Threadfuser_trace.Thread_trace.t -> t

(** Next control item without consuming it (skips are absorbed). *)
val peek : t -> control

(** Consume the item [peek] would return. *)
val advance : t -> unit

(** [peek] then [advance]. *)
val next : t -> control

val at_end : t -> bool
