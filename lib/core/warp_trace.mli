(** Warp-level RISC instruction traces — ThreadFuser's simulator-integration
    format (paper §III, "Generating warp-based instruction traces").

    Each entry is one micro-op executed by a warp under an active mask;
    CISC instructions have been cracked by {!Crack}; memory micro-ops carry
    one address per lane with stack accesses routed to [Local] space and
    heap/global to [Global]. *)

type space = Local | Global

(** Register ids for dependence tracking: 0..15 architectural, {!flags_reg},
    {!temp_reg}; -1 = none. *)
val flags_reg : int

val temp_reg : int

(** Size of the scoreboard register file (architectural + virtual). *)
val reg_file_size : int

type mem_op = {
  is_store : bool;
  size : int;
  space : space;
  addrs : int array;  (** one per lane; -1 for inactive lanes *)
}

type mop = {
  cls : Threadfuser_isa.Opclass.t;
  dst : int;  (** destination register, -1 if none *)
  srcs : int array;
  mem : mem_op option;
}

type entry = { mask : Mask.t; op : mop }

type warp = { warp_id : int; ops : entry array }

type t = { warp_size : int; warps : warp array }

module Builder : sig
  type warp_trace := t

  type t

  val create : warp_size:int -> n_warps:int -> t

  val emit : t -> warp:int -> Mask.t -> mop -> unit

  val finish : t -> warp_trace
end

(** Total micro-ops across all warps. *)
val total_ops : t -> int
