(** Divergence timelines: a warp's active-lane count over its lock-step
    issue slots (recorded when {!Analyzer.options.record_timeline} is on).
    Rendered as a sparkline, this shows *where* divergence lives: ramp-down
    tails are loop-trip divergence, low plateaus are serialized regions. *)

type sample = { n_instr : int; active : int }

type t = { warp_id : int; warp_size : int; samples : sample array }

(** Total lock-step issue slots covered (equals the warp's issue count). *)
val total_issues : t -> int

(** Issue-weighted mean active-lane count. *)
val mean_active : t -> float

(** Occupancy over time bucketed into [width] cells of eighth-block
    glyphs. *)
val sparkline : ?width:int -> t -> string

val pp : Format.formatter -> t -> unit
