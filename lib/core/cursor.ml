(** A reading position in one thread's dynamic trace.

    The warp emulator drives one cursor per lane.  [Skip] events (I/O, lock
    spinning) carry no control flow; they are absorbed transparently whenever
    the cursor is inspected and accumulated into the skip counters (paper
    Fig. 8 reports their share). *)

module Event = Threadfuser_trace.Event
module Thread_trace = Threadfuser_trace.Thread_trace

type control =
  | C_block of { func : int; block : int; n_instr : int; accesses : Event.access array }
  | C_call of int
  | C_ret
  | C_lock of int
  | C_unlock of int
  | C_barrier of int
  | C_end

type t = {
  tid : int;
  events : Event.t array;
  mutable pos : int;
  mutable skipped_io : int;
  mutable skipped_spin : int;
  mutable skipped_excluded : int;
}

let of_trace (trace : Thread_trace.t) =
  {
    tid = trace.tid;
    events = trace.events;
    pos = 0;
    skipped_io = 0;
    skipped_spin = 0;
    skipped_excluded = 0;
  }

let rec absorb_skips c =
  if c.pos < Array.length c.events then
    match c.events.(c.pos) with
    | Event.Skip { reason = Event.Io; n_instr } ->
        c.skipped_io <- c.skipped_io + n_instr;
        c.pos <- c.pos + 1;
        absorb_skips c
    | Event.Skip { reason = Event.Spin; n_instr } ->
        c.skipped_spin <- c.skipped_spin + n_instr;
        c.pos <- c.pos + 1;
        absorb_skips c
    | Event.Skip { reason = Event.Excluded; n_instr } ->
        c.skipped_excluded <- c.skipped_excluded + n_instr;
        c.pos <- c.pos + 1;
        absorb_skips c
    | Event.Block _ | Event.Call _ | Event.Return | Event.Lock_acq _
    | Event.Lock_rel _ | Event.Barrier _ ->
        ()

(** Next control item without consuming it (skips are absorbed). *)
let peek c : control =
  absorb_skips c;
  if c.pos >= Array.length c.events then C_end
  else
    match c.events.(c.pos) with
    | Event.Block { func; block; n_instr; accesses } ->
        C_block { func; block; n_instr; accesses }
    | Event.Call f -> C_call f
    | Event.Return -> C_ret
    | Event.Lock_acq a -> C_lock a
    | Event.Lock_rel a -> C_unlock a
    | Event.Barrier a -> C_barrier a
    | Event.Skip _ -> assert false

(** Consume the control item [peek] would return. *)
let advance c =
  absorb_skips c;
  if c.pos < Array.length c.events then c.pos <- c.pos + 1

let next c =
  let item = peek c in
  advance c;
  item

let at_end c =
  absorb_skips c;
  c.pos >= Array.length c.events
