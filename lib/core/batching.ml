(** Warp-formation (thread-batching) policies.

    The paper groups CPU threads into warps with a "configurable batching
    algorithm"; its evaluation uses in-order (sequential) batching, and
    §III notes that other policies can be explored.  Three are provided:

    - [Sequential]: threads [0..W-1] form warp 0, etc. (the default);
    - [Strided]: threads are dealt round-robin across warps, so warp [w]
      holds threads [w, w+n_warps, …];
    - [Signature_greedy]: threads are sorted by a hash of the prefix of
      their dynamic block trace, so threads that start on similar control
      paths share a warp — a software take on dynamic warp formation. *)

module Event = Threadfuser_trace.Event
module Thread_trace = Threadfuser_trace.Thread_trace

type t = Sequential | Strided | Signature_greedy

let to_string = function
  | Sequential -> "sequential"
  | Strided -> "strided"
  | Signature_greedy -> "signature-greedy"

let all = [ Sequential; Strided; Signature_greedy ]

(* FNV-1a over the first [prefix] (func, block) pairs of the trace. *)
let signature ?(prefix = 64) (trace : Thread_trace.t) =
  let h = ref 0x2545f4914f6cdd1d in
  let mix v = h := (!h lxor v) * 0x100000001b3 in
  let remaining = ref prefix in
  (try
     Array.iter
       (fun (e : Event.t) ->
         match e with
         | Event.Block { func; block; _ } ->
             mix ((func * 8191) + block);
             decr remaining;
             if !remaining = 0 then raise Exit
         | Event.Call _ | Event.Return | Event.Lock_acq _ | Event.Lock_rel _
         | Event.Barrier _ | Event.Skip _ ->
             ())
       trace.events
   with Exit -> ());
  !h land max_int

(** [form policy ~warp_size traces] partitions thread ids into warps.  The
    last warp may be partial. *)
let form policy ~warp_size (traces : Thread_trace.t array) : int array array =
  let n = Array.length traces in
  if n = 0 then [||]
  else begin
    let n_warps = (n + warp_size - 1) / warp_size in
    let order =
      match policy with
      | Sequential -> Array.init n (fun i -> i)
      | Strided ->
          (* tid for (warp w, lane l) is l*n_warps + w *)
          let order = Array.make n 0 in
          let pos = ref 0 in
          for w = 0 to n_warps - 1 do
            let lane = ref 0 in
            let tid = ref w in
            while !tid < n && !lane < warp_size do
              order.(!pos) <- !tid;
              incr pos;
              incr lane;
              tid := !tid + n_warps
            done
          done;
          Array.sub order 0 !pos
      | Signature_greedy ->
          let keyed = Array.init n (fun i -> (signature traces.(i), i)) in
          Array.sort compare keyed;
          Array.map snd keyed
    in
    let n_eff = Array.length order in
    let n_warps = (n_eff + warp_size - 1) / warp_size in
    Array.init n_warps (fun w ->
        let lo = w * warp_size in
        let hi = min n_eff (lo + warp_size) in
        Array.sub order lo (hi - lo))
  end
