(** CISC → RISC cracking.

    The paper converts each traced x86 CISC instruction into one or more
    RISC micro-ops before feeding the SIMT simulator — e.g. an [add] with a
    memory operand becomes a load followed by an add (§III).  This module
    performs the same expansion for the mini-ISA.  Lane addresses for the
    load/store micro-ops are supplied by the emulator from the trace's
    per-instruction access records. *)

open Threadfuser_isa
module Layout = Threadfuser_machine.Layout

type lane_mem = { load : int array option; store : int array option; size : int }
(** Per-lane addresses for the (at most) one load and one store a cracked
    instruction performs; arrays are warp-sized with -1 for inactive lanes. *)

let no_mem = { load = None; store = None; size = 0 }

let space_of_addrs addrs =
  (* A memory micro-op's space is decided by its first active lane; the
     machine's segments never mix stack and heap within one instruction in
     practice, and the simulator only cares about local vs global. *)
  let space = ref Warp_trace.Global in
  (try
     Array.iter
       (fun a ->
         if a >= 0 then begin
           (match Layout.segment_of a with
           | Layout.Stack -> space := Warp_trace.Local
           | Layout.Heap | Layout.Global -> space := Warp_trace.Global);
           raise Exit
         end)
       addrs
   with Exit -> ());
  !space

let mop cls ?(dst = -1) ?(srcs = [||]) ?mem () : Warp_trace.mop =
  { Warp_trace.cls; dst; srcs; mem }

let load_mop ~addrs ~size ~dst ~addr_srcs =
  let space = space_of_addrs addrs in
  mop Opclass.Load ~dst ~srcs:addr_srcs
    ~mem:{ Warp_trace.is_store = false; size; space; addrs }
    ()

let store_mop ~addrs ~size ~data_srcs =
  let space = space_of_addrs addrs in
  mop Opclass.Store ~srcs:data_srcs
    ~mem:{ Warp_trace.is_store = true; size; space; addrs }
    ()

let reg_of = function Operand.Reg r -> r | Operand.Imm _ | Operand.Mem _ -> -1

let srcs_of_operand (op : Operand.t) =
  match op with
  | Operand.Reg r -> [| r |]
  | Operand.Imm _ -> [||]
  | Operand.Mem m -> Array.of_list (Operand.mem_regs m)

let addr_srcs (op : Operand.t) =
  match op with
  | Operand.Mem m -> Array.of_list (Operand.mem_regs m)
  | Operand.Reg _ | Operand.Imm _ -> [||]

(** Crack one instruction into micro-ops.  [mem] carries the lanes'
    addresses gathered from the trace (empty when the instruction has no
    memory operand). *)
let crack (instr : (int, int) Instr.t) (mem : lane_mem) : Warp_trace.mop list =
  let temp = Warp_trace.temp_reg and flags = Warp_trace.flags_reg in
  let w_size w = Width.bytes w in
  match instr with
  | Instr.Mov (w, dst, src) -> (
      match (dst, src) with
      | Operand.Mem _, _ ->
          let addrs = Option.get mem.store in
          [ store_mop ~addrs ~size:(w_size w)
              ~data_srcs:(Array.append (srcs_of_operand src) (addr_srcs dst)) ]
      | _, Operand.Mem _ ->
          let addrs = Option.get mem.load in
          [ load_mop ~addrs ~size:(w_size w) ~dst:(reg_of dst) ~addr_srcs:(addr_srcs src) ]
      | _, (Operand.Reg _ | Operand.Imm _) ->
          [ mop Opclass.Ialu ~dst:(reg_of dst) ~srcs:(srcs_of_operand src) () ])
  | Instr.Cmov (_, dst, src) -> (
      match src with
      | Operand.Mem _ ->
          let addrs = Option.get mem.load in
          [
            load_mop ~addrs ~size:8 ~dst:temp ~addr_srcs:(addr_srcs src);
            mop Opclass.Ialu ~dst:(reg_of dst) ~srcs:[| temp; flags |] ();
          ]
      | Operand.Reg _ | Operand.Imm _ ->
          [
            mop Opclass.Ialu ~dst:(reg_of dst)
              ~srcs:(Array.append (srcs_of_operand src) [| flags |])
              ();
          ])
  | Instr.Lea (r, m) ->
      [ mop Opclass.Ialu ~dst:r ~srcs:(Array.of_list (Operand.mem_regs m)) () ]
  | Instr.Binop (op, w, dst, src) -> (
      let cls = Opclass.of_binop op in
      match (dst, src) with
      | Operand.Mem _, _ ->
          (* read-modify-write: load, op, store *)
          let la = Option.get mem.load and sa = Option.get mem.store in
          [
            load_mop ~addrs:la ~size:(w_size w) ~dst:temp ~addr_srcs:(addr_srcs dst);
            mop cls ~dst:temp ~srcs:(Array.append [| temp |] (srcs_of_operand src)) ();
            store_mop ~addrs:sa ~size:(w_size w)
              ~data_srcs:(Array.append [| temp |] (addr_srcs dst));
          ]
      | _, Operand.Mem _ ->
          let la = Option.get mem.load in
          [
            load_mop ~addrs:la ~size:(w_size w) ~dst:temp ~addr_srcs:(addr_srcs src);
            mop cls ~dst:(reg_of dst) ~srcs:[| reg_of dst; temp |] ();
          ]
      | _, (Operand.Reg _ | Operand.Imm _) ->
          [
            mop cls ~dst:(reg_of dst)
              ~srcs:(Array.append [| reg_of dst |] (srcs_of_operand src))
              ();
          ])
  | Instr.Unop (op, w, dst) -> (
      let cls = Opclass.of_unop op in
      match dst with
      | Operand.Mem _ ->
          let la = Option.get mem.load and sa = Option.get mem.store in
          [
            load_mop ~addrs:la ~size:(w_size w) ~dst:temp ~addr_srcs:(addr_srcs dst);
            mop cls ~dst:temp ~srcs:[| temp |] ();
            store_mop ~addrs:sa ~size:(w_size w)
              ~data_srcs:(Array.append [| temp |] (addr_srcs dst));
          ]
      | Operand.Reg _ | Operand.Imm _ ->
          [ mop cls ~dst:(reg_of dst) ~srcs:[| reg_of dst |] () ])
  | Instr.Cmp (w, a, b) -> (
      let mem_part op =
        match op with
        | Operand.Mem _ ->
            let la = Option.get mem.load in
            ( [ load_mop ~addrs:la ~size:(w_size w) ~dst:temp ~addr_srcs:(addr_srcs op) ],
              [| temp |] )
        | Operand.Reg _ | Operand.Imm _ -> ([], srcs_of_operand op)
      in
      (* at most one of a, b is a memory operand *)
      let loads_a, srcs_a = mem_part a in
      let loads_b, srcs_b = mem_part b in
      loads_a @ loads_b
      @ [ mop Opclass.Ialu ~dst:Warp_trace.flags_reg ~srcs:(Array.append srcs_a srcs_b) () ])
  | Instr.Jcc (_, _) -> [ mop Opclass.Branch ~srcs:[| flags |] () ]
  | Instr.Jmp _ -> [ mop Opclass.Branch () ]
  | Instr.Call _ | Instr.Ret -> [ mop Opclass.Callret () ]
  | Instr.Lock_acquire _ | Instr.Lock_release _ | Instr.Barrier _ ->
      [ mop Opclass.Sync () ]
  | Instr.Atomic_rmw (op, w, m, src) ->
      let la = Option.get mem.load and sa = Option.get mem.store in
      let cls = Opclass.of_binop op in
      let m_regs = Array.of_list (Operand.mem_regs m) in
      [
        load_mop ~addrs:la ~size:(w_size w) ~dst:temp ~addr_srcs:m_regs;
        mop cls ~dst:temp ~srcs:(Array.append [| temp |] (srcs_of_operand src)) ();
        store_mop ~addrs:sa ~size:(w_size w) ~data_srcs:(Array.append [| temp |] m_regs);
      ]
  | Instr.Io (_, _) | Instr.Halt -> []
