(** CISC → RISC cracking (paper §III): each traced CISC instruction expands
    into one or more RISC micro-ops before feeding the SIMT simulator —
    e.g. an [add] with a memory operand becomes a load then an add; a
    read-modify-write destination becomes load, op, store. *)

type lane_mem = {
  load : int array option;  (** per-lane load addresses (warp-sized, -1 inactive) *)
  store : int array option;
  size : int;
}

val no_mem : lane_mem

(** [crack instr mem] — [mem] supplies the lanes' addresses recorded in the
    trace for this instruction (empty for non-memory instructions).
    [Io]/[Halt] crack to nothing. *)
val crack : (int, int) Threadfuser_isa.Instr.t -> lane_mem -> Warp_trace.mop list
