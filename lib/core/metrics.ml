(** Analyzer outputs: whole-program and per-function SIMT statistics.

    SIMT efficiency follows the paper's Equation 1:

    {v efficiency = thread_instrs / (issues * warp_size) v}

    where [issues] counts instructions fetched once per warp (lock-step
    slots) and [thread_instrs] counts instructions summed over the active
    threads that executed them. *)

type func_stat = {
  fid : int;
  func_name : string;
  issues : int; (* warp-level lock-step issues attributed to the function *)
  thread_instrs : int; (* per-thread instructions (exclusive of callees) *)
  efficiency : float;
  instr_share : float; (* fraction of all thread instructions *)
}

type block_stat = {
  block_fid : int;
  block_func : string;
  block_id : int;
  src_label : string option; (* surface label, when the block started at one *)
  block_issues : int;
  block_instrs : int;
  block_efficiency : float;
}

type warp_stat = {
  warp_id : int;
  warp_issues : int;
  warp_instrs : int;
  warp_efficiency : float;
  lanes : int; (* threads actually in the warp (the tail may be partial) *)
}

type segment_stat = {
  txns : int; (* 32 B transactions *)
  mem_issues : int; (* warp-level load/store instructions *)
  txns_per_instr : float;
}

(* Site-level bottleneck attribution (the paper's Fig. 7 workflow made
   automatic): which branch site caused each divergence split and what it
   cost, and which access site burned transactions beyond the
   perfectly-coalesced minimum. *)

type div_site = {
  ds_fid : int;
  ds_func : string;
  ds_block : int;
  ds_label : string option; (* surface label of the diverging block *)
  ds_kind : [ `Branch | `Sync ]; (* branch divergence or lock serialization *)
  ds_splits : int; (* warp splits originating at the site *)
  ds_lost_lanes : int; (* inactive-lane issue slots charged to the site *)
  ds_recoverable : float; (* efficiency points recoverable: lost / (issues * warp) *)
}

type mem_site = {
  ms_fid : int;
  ms_func : string;
  ms_block : int;
  ms_ioff : int; (* instruction offset within the block *)
  ms_label : string option;
  ms_issues : int; (* warp-level load/store instructions at the site *)
  ms_txns : int; (* 32 B transactions generated *)
  ms_min_txns : int; (* perfectly-coalesced minimum *)
  ms_excess : int; (* transactions beyond the minimum *)
  ms_stack_excess : int; (* excess split by address segment *)
  ms_heap_excess : int;
  ms_global_excess : int;
}

(* How much of the input the report actually covers.  The checked pipeline
   quarantines threads that fail validation or replay and keeps going, so a
   partial report is explicit rather than silently wrong. *)
type coverage = {
  threads_total : int; (* threads handed to the analyzer *)
  threads_analyzed : int; (* threads whose replay completed *)
  threads_quarantined : int; (* failed validation or replay *)
  events_dropped : int; (* trace events of the quarantined threads *)
  warps_failed : int; (* warps whose replay aborted (watchdog / desync) *)
}

type report = {
  warp_size : int;
  n_threads : int;
  n_warps : int;
  issues : int;
  thread_instrs : int;
  simt_efficiency : float;
  per_function : func_stat list; (* sorted by descending instr share *)
  per_warp : warp_stat list; (* in warp order *)
  hot_blocks : block_stat list; (* top divergent blocks by wasted issues *)
  divergence_sites : div_site list; (* ranked by descending lost-lane cost *)
  mem_sites : mem_site list; (* ranked by descending excess transactions *)
  stack_mem : segment_stat;
  heap_mem : segment_stat;
  global_mem : segment_stat;
  total_mem_txns : int;
  total_mem_issues : int;
  skipped_io : int;
  skipped_spin : int;
  skipped_excluded : int; (* instructions inside excluded functions *)
  lock_acquires : int;
  barrier_syncs : int; (* warp-level team-barrier crossings *)
  serializations : int; (* same-lock warp conflicts serialized *)
  serialized_instrs : int; (* instructions executed under serialization *)
  coverage : coverage;
}

let full_coverage ~n_threads =
  {
    threads_total = n_threads;
    threads_analyzed = n_threads;
    threads_quarantined = 0;
    events_dropped = 0;
    warps_failed = 0;
  }

(** A report is degraded when any thread was quarantined or any warp's
    replay aborted. *)
let degraded r =
  r.coverage.threads_quarantined > 0 || r.coverage.warps_failed > 0

let efficiency ~issues ~thread_instrs ~warp_size =
  if issues = 0 then 1.0
  else float_of_int thread_instrs /. float_of_int (issues * warp_size)

let segment_stat (c : Coalesce.seg_counters) =
  {
    txns = c.ld_txns + c.st_txns;
    mem_issues = c.ld_issues + c.st_issues;
    txns_per_instr = Coalesce.txns_per_instr c;
  }

(** Fraction of dynamic instructions that were traced (vs skipped as I/O or
    lock spinning) — the quantity of paper Fig. 8. *)
let traced_fraction r =
  let total =
    r.thread_instrs + r.skipped_io + r.skipped_spin + r.skipped_excluded
  in
  if total = 0 then 1.0 else float_of_int r.thread_instrs /. float_of_int total

(** Mean 32 B transactions per warp-level load/store over all segments. *)
let txns_per_mem_instr r =
  if r.total_mem_issues = 0 then 0.0
  else float_of_int r.total_mem_txns /. float_of_int r.total_mem_issues

let pp_summary ppf r =
  Fmt.pf ppf
    "warp=%d threads=%d warps=%d | SIMT efficiency %.1f%% | mem %d txns / %d \
     ld-st (%.2f per instr) | traced %.1f%%"
    r.warp_size r.n_threads r.n_warps (100. *. r.simt_efficiency)
    r.total_mem_txns r.total_mem_issues (txns_per_mem_instr r)
    (100. *. traced_fraction r);
  if degraded r then
    Fmt.pf ppf
      "@.PARTIAL: %d/%d threads analyzed (%d quarantined, %d events \
       dropped, %d warps failed)"
      r.coverage.threads_analyzed r.coverage.threads_total
      r.coverage.threads_quarantined r.coverage.events_dropped
      r.coverage.warps_failed

let pp_blocks ppf r =
  Fmt.pf ppf "%-22s %-14s %10s %10s %7s@." "function.block" "label" "issues"
    "instrs" "eff";
  List.iter
    (fun b ->
      Fmt.pf ppf "%-22s %-14s %10d %10d %6.1f%%@."
        (Printf.sprintf "%s.b%d" b.block_func b.block_id)
        (Option.value ~default:"-" b.src_label)
        b.block_issues b.block_instrs
        (100. *. b.block_efficiency))
    r.hot_blocks

let pp_warps ppf r =
  Fmt.pf ppf "%-6s %6s %10s %10s %7s@." "warp" "lanes" "issues" "instrs" "eff";
  List.iter
    (fun w ->
      Fmt.pf ppf "%-6d %6d %10d %10d %6.1f%%@." w.warp_id w.lanes w.warp_issues
        w.warp_instrs
        (100. *. w.warp_efficiency))
    r.per_warp

let site_kind_name = function `Branch -> "branch" | `Sync -> "sync"

(** The blame report: top divergence sites by lost-lane issue slots, then
    top access sites by excess 32 B transactions. *)
let pp_blame ppf r =
  if r.divergence_sites = [] then
    Fmt.pf ppf "no divergence splits recorded@."
  else begin
    Fmt.pf ppf "top divergence sites (by lost-lane issue slots):@.";
    Fmt.pf ppf "%-4s %-24s %-14s %-7s %8s %12s %12s@." "rank" "site" "label"
      "kind" "splits" "lost slots" "recoverable";
    List.iteri
      (fun i s ->
        Fmt.pf ppf "%-4d %-24s %-14s %-7s %8d %12d %11.1f%%@." (i + 1)
          (Printf.sprintf "%s.b%d" s.ds_func s.ds_block)
          (Option.value ~default:"-" s.ds_label)
          (site_kind_name s.ds_kind) s.ds_splits s.ds_lost_lanes
          (100. *. s.ds_recoverable))
      r.divergence_sites
  end;
  let divergent = List.filter (fun m -> m.ms_excess > 0) r.mem_sites in
  if divergent <> [] then begin
    Fmt.pf ppf "@.top memory sites (by excess 32 B transactions):@.";
    Fmt.pf ppf "%-4s %-24s %-14s %8s %8s %8s %8s %22s@." "rank" "site" "label"
      "ld/st" "txns" "min" "excess" "stack/heap/global";
    List.iteri
      (fun i m ->
        Fmt.pf ppf "%-4d %-24s %-14s %8d %8d %8d %8d %12s@." (i + 1)
          (Printf.sprintf "%s.b%d+%d" m.ms_func m.ms_block m.ms_ioff)
          (Option.value ~default:"-" m.ms_label)
          m.ms_issues m.ms_txns m.ms_min_txns m.ms_excess
          (Printf.sprintf "%d/%d/%d" m.ms_stack_excess m.ms_heap_excess
             m.ms_global_excess))
      divergent
  end

let pp_functions ppf r =
  Fmt.pf ppf "%-28s %10s %10s %8s %7s@." "function" "issues" "instrs" "share"
    "eff";
  List.iter
    (fun f ->
      Fmt.pf ppf "%-28s %10d %10d %7.1f%% %6.1f%%@." f.func_name f.issues
        f.thread_instrs (100. *. f.instr_share) (100. *. f.efficiency))
    r.per_function
