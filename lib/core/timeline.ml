(** Divergence timelines: the active-lane count of a warp over its
    lock-step issue slots, as recorded by the emulator when
    [record_timeline] is on.  Rendered as a unicode sparkline, this is the
    quickest way to *see* where a workload's divergence lives (ramp-down
    tails = loop-trip divergence; low plateaus = serialized regions). *)

type sample = { n_instr : int; active : int }

type t = { warp_id : int; warp_size : int; samples : sample array }

let total_issues t =
  Array.fold_left (fun acc s -> acc + s.n_instr) 0 t.samples

(** Issue-weighted mean active-lane count. *)
let mean_active t =
  let issues = total_issues t in
  if issues = 0 then 0.0
  else
    Array.fold_left (fun acc s -> acc +. float_of_int (s.n_instr * s.active)) 0.0 t.samples
    /. float_of_int issues

let glyphs = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                "\xe2\x96\x87"; "\xe2\x96\x88" |]
(* U+2581..U+2588, one eighth-block per occupancy step *)

(** [sparkline ?width t] — the warp's occupancy over time, bucketed into
    [width] cells; each cell's height is the issue-weighted mean active
    fraction within its slice. *)
let sparkline ?(width = 60) t =
  let issues = total_issues t in
  if issues = 0 then String.make width ' '
  else begin
    let per_bucket = float_of_int issues /. float_of_int width in
    let cells = Array.make width 0.0 in
    let weights = Array.make width 0.0 in
    let pos = ref 0.0 in
    Array.iter
      (fun s ->
        (* distribute the sample's issues over the buckets it spans *)
        let remaining = ref (float_of_int s.n_instr) in
        while !remaining > 0.0 do
          let bucket = min (width - 1) (int_of_float (!pos /. per_bucket)) in
          let room = ((float_of_int (bucket + 1)) *. per_bucket) -. !pos in
          let take = Float.min !remaining (Float.max room 1e-9) in
          cells.(bucket) <- cells.(bucket) +. (take *. float_of_int s.active);
          weights.(bucket) <- weights.(bucket) +. take;
          pos := !pos +. take;
          remaining := !remaining -. take
        done)
      t.samples;
    let buf = Buffer.create (width * 3) in
    Array.iteri
      (fun i w ->
        let frac = if w = 0.0 then 0.0 else cells.(i) /. w /. float_of_int t.warp_size in
        let level = int_of_float (ceil (frac *. 8.0)) in
        Buffer.add_string buf glyphs.(max 0 (min 8 level)))
      weights;
    Buffer.contents buf
  end

let pp ppf t =
  Fmt.pf ppf "warp %2d |%s| mean %.1f/%d lanes" t.warp_id (sparkline t)
    (mean_active t) t.warp_size
