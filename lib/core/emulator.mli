(** The SIMT-stack warp emulator — ThreadFuser's analysis core (paper §III).

    Replays the per-thread traces of one warp's lanes in lock-step under
    the stack-based IPDOM reconvergence discipline of real SIMT hardware:
    divergent branches push one stack entry per distinct destination with
    the nearest-common-post-dominator as the reconvergence point; calls
    push function frames that reconverge at the callee's virtual exit; and
    lanes contending on the same lock serialize through their critical
    sections one at a time ([Serialize] mode), reconverging afterwards
    through the ordinary divergence mechanism.

    Most users want {!Analyzer.analyze}, which drives this module. *)

exception Emulation_error of string
(** Trace/program mismatch (an emulator invariant violation, not a user
    error under normal use).  Watchdog verdicts — replay fuel exhausted,
    a lock never released, a barrier never satisfied — are raised as the
    typed [Threadfuser_util.Tf_error.Error] with kind [Timeout] or
    [Deadlock] instead, so the checked pipeline can quarantine and keep
    going (docs/robustness.md). *)

type sync_mode =
  | Serialize
      (** serialize only lanes contending on the same lock (paper §III) *)
  | Serialize_all
      (** pessimistic: any lock acquire serializes every lane's critical
          section — one of the alternative designs the paper's §III defers
          to future work *)
  | Ignore_sync  (** lock-oblivious estimate (paper Fig. 9's comparison) *)

type reconv_mode =
  | Ipdom_reconv  (** per-block IPDOM reconvergence (real hardware) *)
  | Function_exit_reconv  (** ablation: reconverge only at function end *)

type config = {
  warp_size : int;
  sync : sync_mode;
  reconv : reconv_mode;
  record_timeline : bool;  (** record per-warp occupancy samples *)
}

(** {1 Site-level divergence attribution}

    Every warp split is tagged with its originating [(fid, block)] site,
    and every block executed inside the divergent region charges the site
    its marginal lost-lane cost — (parent active lanes - child active
    lanes) inactive issue slots per lock-step issue — until the child pops
    at its reconvergence point.  Lock serialization charges the
    lock-acquire site (contenders - 1) slots per serialized issue. *)

type site_kind =
  | Branch_site  (** lanes branched to different blocks *)
  | Sync_site  (** lock serialization scattered the lanes *)

type div_site_cell = {
  mutable sc_splits : int;  (** warp splits originating at the site *)
  mutable sc_lost : int;  (** inactive-lane issue slots charged to it *)
  mutable sc_kind : site_kind;
}

(** A blame chain: (site, lanes lost per lock-step issue) per enclosing
    divergence. *)
type blame = ((int * int) * int) list

(** Folded-stack accumulation for the replay flamegraph, keyed by the
    warp's call stack (leaf first). *)
type flame_cell = { mutable fc_issues : int; mutable fc_lost : int }

type scratch
(** Reusable hot-path buffers (per-block lane staging, per-instruction
    load/store gather, regroup target grouping); internal. *)

type t = {
  prog : Threadfuser_prog.Program.t;
  ipdoms : Threadfuser_cfg.Ipdom.t array;
  config : config;
  coalesce : Coalesce.t;
  func_issues : int array;  (** per-function warp-level issues *)
  func_instrs : int array;  (** per-function thread instructions *)
  block_issues : int array array;  (** per function, per block *)
  block_instrs : int array array;
  mutable issues : int;
  mutable thread_instrs : int;
  mutable lock_acquires : int;
  mutable serializations : int;
  mutable serialized_instrs : int;
  mutable barrier_syncs : int;  (** warp-level barrier crossings *)
  mutable wt : Warp_trace.Builder.t option;
  mutable wt_warp : int;
  mutable tl_current : Timeline.sample Threadfuser_util.Vec.t option;
  mutable timelines : Timeline.t list;  (** finished warps, reversed *)
  div_sites : (int * int, div_site_cell) Hashtbl.t;
      (** per-[(fid, block)] divergence attribution, across all warps *)
  flame : (int list, flame_cell) Hashtbl.t;
      (** folded call stacks (leaf first), across all warps *)
  mutable call_stack : int list;  (** replaying warp's frames, leaf first *)
  mutable flame_cur : flame_cell option;
      (** cached flamegraph cell for [call_stack] *)
  mutable obs_on : bool;  (** [!Obs.enabled], cached per replay *)
  scratch : scratch;
}

val create :
  ?warp_trace:Warp_trace.Builder.t ->
  Threadfuser_prog.Program.t ->
  Threadfuser_cfg.Ipdom.t array ->
  config ->
  t

(** Replay one warp; [cursors.(lane)] is the lane's trace cursor.  Counters
    accumulate across calls, so one [t] serves a whole grid of warps.
    [fuel] (when given) bounds the total stack steps + serialized events,
    raising [Tf_error.Error] with kind [Timeout] when exhausted — the
    replay watchdog of {!Analyzer.analyze_checked}. *)
val run_warp : ?fuel:int -> t -> warp_id:int -> Cursor.t array -> unit

(** [merge_into ~dst src] folds [src]'s accumulated metrics into [dst] —
    the shard-reduction step of the domain-parallel replay
    ({!Analyzer.options.domains}): each domain replays a disjoint warp
    slice into a private emulator, and merging the shards in worker order
    reproduces exactly the totals of a sequential replay.  [src] is left
    intact; transient per-warp state is untouched. *)
val merge_into : dst:t -> t -> unit
