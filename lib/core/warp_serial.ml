(** Warp-trace files — the on-disk form of ThreadFuser's simulator
    integration (paper §III generates trace files that feed Accel-Sim).

    A line-oriented text format, one micro-op per line:

    {v
      TFWARP1 <warp_size> <n_warps>
      W <warp_id> <n_ops>
      <mask-hex> <cls> <dst> <n-srcs> <srcs...> -
      <mask-hex> <cls> <dst> <n-srcs> <srcs...> M <L|S> <size> <G|P> <addrs...>
    v}

    Memory micro-ops list one address per lane ([-] for inactive lanes);
    [G]/[P] select the global/local (private) space.  The format
    round-trips exactly ([of_string (to_string t) = t]). *)

open Threadfuser_isa

exception Corrupt of string

let magic = "TFWARP1"

let cls_to_string = Opclass.to_string

let cls_of_string = function
  | "ialu" -> Opclass.Ialu
  | "imul" -> Opclass.Imul
  | "idiv" -> Opclass.Idiv
  | "falu" -> Opclass.Falu
  | "fmul" -> Opclass.Fmul
  | "fdiv" -> Opclass.Fdiv
  | "load" -> Opclass.Load
  | "store" -> Opclass.Store
  | "branch" -> Opclass.Branch
  | "callret" -> Opclass.Callret
  | "sync" -> Opclass.Sync
  | s -> raise (Corrupt ("unknown op class " ^ s))

(* Direct decimal/hex emitters: serialization is a hot stage for large
   warp traces, and one [Printf.sprintf] per field used to dominate its
   profile (a fresh format interpretation + string per number).  These
   write digits straight into the buffer. *)
let rec add_udec buf n =
  if n >= 10 then add_udec buf (n / 10);
  Buffer.add_char buf (Char.chr (Char.code '0' + (n mod 10)))

let add_dec buf n =
  if n < 0 then begin
    Buffer.add_char buf '-';
    add_udec buf (-n)
  end
  else add_udec buf n

let hex_digits = "0123456789abcdef"

let rec add_hex buf n =
  if n >= 16 then add_hex buf (n lsr 4);
  Buffer.add_char buf hex_digits.[n land 15]

let emit_entry buf warp_size (e : Warp_trace.entry) =
  let op = e.Warp_trace.op in
  (* a mask is already the bit pattern the format wants *)
  add_hex buf (e.Warp_trace.mask :> int);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (cls_to_string op.Warp_trace.cls);
  Buffer.add_char buf ' ';
  add_dec buf op.Warp_trace.dst;
  Buffer.add_char buf ' ';
  add_udec buf (Array.length op.Warp_trace.srcs);
  Array.iter
    (fun s ->
      Buffer.add_char buf ' ';
      add_dec buf s)
    op.Warp_trace.srcs;
  (match op.Warp_trace.mem with
  | None -> Buffer.add_string buf " -"
  | Some m ->
      Buffer.add_string buf (if m.Warp_trace.is_store then " M S " else " M L ");
      add_udec buf m.Warp_trace.size;
      Buffer.add_string buf
        (match m.Warp_trace.space with
        | Warp_trace.Global -> " G"
        | Warp_trace.Local -> " P");
      for lane = 0 to warp_size - 1 do
        let a = m.Warp_trace.addrs.(lane) in
        if a < 0 then Buffer.add_string buf " -"
        else begin
          Buffer.add_char buf ' ';
          add_hex buf a
        end
      done);
  Buffer.add_char buf '\n'

let to_buffer (t : Warp_trace.t) =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n" magic t.Warp_trace.warp_size
       (Array.length t.Warp_trace.warps));
  Array.iter
    (fun (w : Warp_trace.warp) ->
      Buffer.add_string buf
        (Printf.sprintf "W %d %d\n" w.Warp_trace.warp_id
           (Array.length w.Warp_trace.ops));
      Array.iter (emit_entry buf t.Warp_trace.warp_size) w.Warp_trace.ops)
    t.Warp_trace.warps;
  buf

let to_string t = Buffer.contents (to_buffer t)

(* ---- parsing ----------------------------------------------------------- *)

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* Every numeric token is untrusted: a flipped byte must fail as [Corrupt],
   not as the [Failure] of [int_of_string]. *)
let int_tok what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "bad %s %S" what s

let hex_tok what s =
  match int_of_string_opt ("0x" ^ s) with
  | Some v -> v
  | None -> fail "bad %s %S" what s

let parse_entry warp_size line : Warp_trace.entry =
  let toks = String.split_on_char ' ' line in
  match toks with
  | mask_s :: cls_s :: dst_s :: nsrc_s :: rest -> (
      let mask_bits = hex_tok "mask" mask_s in
      let mask =
        Mask.of_list
          (List.filter (fun l -> mask_bits land (1 lsl l) <> 0)
             (List.init Mask.max_lanes (fun i -> i)))
      in
      let n_srcs = int_tok "src count" nsrc_s in
      if n_srcs < 0 || n_srcs > List.length rest then
        fail "src count %d exceeds the line's tokens" n_srcs;
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> fail "truncated srcs"
        | x :: tl -> take (n - 1) (x :: acc) tl
      in
      let srcs, rest = take n_srcs [] rest in
      let srcs = Array.of_list (List.map (int_tok "src") srcs) in
      let dst = int_tok "dst" dst_s in
      let cls = cls_of_string cls_s in
      match rest with
      | [ "-" ] -> { Warp_trace.mask; op = { Warp_trace.cls; dst; srcs; mem = None } }
      | "M" :: ls :: size_s :: space_s :: addr_toks ->
          if List.length addr_toks <> warp_size then
            fail "expected %d lane addresses, got %d" warp_size
              (List.length addr_toks);
          let addrs =
            Array.of_list
              (List.map
                 (fun t -> if t = "-" then -1 else hex_tok "lane address" t)
                 addr_toks)
          in
          let mem =
            {
              Warp_trace.is_store =
                (match ls with
                | "S" -> true
                | "L" -> false
                | _ -> fail "bad L/S flag %s" ls);
              size = int_tok "size" size_s;
              space =
                (match space_s with
                | "G" -> Warp_trace.Global
                | "P" -> Warp_trace.Local
                | _ -> fail "bad space %s" space_s);
              addrs;
            }
          in
          { Warp_trace.mask; op = { Warp_trace.cls; dst; srcs; mem = Some mem } }
      | _ -> fail "malformed op line: %s" line)
  | _ -> fail "malformed op line: %s" line

let of_string s : Warp_trace.t =
  let lines = String.split_on_char '\n' s in
  match lines with
  | header :: rest -> (
      match String.split_on_char ' ' header with
      | [ m; ws; nw ] when m = magic ->
          let warp_size = int_tok "warp size" ws
          and n_warps = int_tok "warp count" nw in
          if warp_size < 1 || warp_size > Mask.max_lanes then
            fail "warp size %d outside [1, %d]" warp_size Mask.max_lanes;
          (* counts are untrusted: bound them by the lines actually present
             before allocating (a corrupt header must not trigger a
             multi-GB [Array.init]) *)
          let remaining = ref (List.length rest) in
          if n_warps < 0 || n_warps > !remaining then
            fail "warp count %d exceeds the file's %d lines" n_warps !remaining;
          let cursor = ref rest in
          let next_line () =
            match !cursor with
            | [] -> fail "unexpected end of file"
            | l :: tl ->
                cursor := tl;
                decr remaining;
                l
          in
          let warps =
            Array.init n_warps (fun _ ->
                match String.split_on_char ' ' (next_line ()) with
                | [ "W"; id_s; n_s ] ->
                    let warp_id = int_tok "warp id" id_s in
                    let n_ops = int_tok "op count" n_s in
                    if n_ops < 0 || n_ops > !remaining then
                      fail "op count %d exceeds the file's remaining %d lines"
                        n_ops !remaining;
                    let ops =
                      Array.init n_ops (fun _ -> parse_entry warp_size (next_line ()))
                    in
                    { Warp_trace.warp_id; ops }
                | _ -> fail "expected warp header")
          in
          { Warp_trace.warp_size; warps }
      | _ -> fail "bad magic")
  | [] -> fail "empty file"

module Log = Threadfuser_obs.Log

let to_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc (to_buffer t));
  Log.debug "warp trace written"
    ~fields:
      [
        ("path", path);
        ("warps", string_of_int (Array.length t.Warp_trace.warps));
        ("ops", string_of_int (Warp_trace.total_ops t));
      ]

let of_file path =
  let ic = open_in path in
  let t =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (really_input_string ic (in_channel_length ic)))
  in
  Log.debug "warp trace loaded"
    ~fields:
      [ ("path", path); ("warps", string_of_int (Array.length t.Warp_trace.warps)) ];
  t
