(** Warp active masks: up to {!max_lanes} lanes packed in an [int]. *)

type t = private int

val max_lanes : int

val empty : t

(** [full w] — all of the first [w] lanes active; raises outside
    [1, max_lanes]. *)
val full : int -> t

val singleton : int -> t

val mem : t -> int -> bool

val add : t -> int -> t

val remove : t -> int -> t

val union : t -> t -> t

val inter : t -> t -> t

val is_empty : t -> bool

(** Population count (number of active lanes). *)
val count : t -> int

(** Active lane indices, ascending. *)
val to_list : t -> int list

val of_list : int list -> t

val iter : (int -> unit) -> t -> unit

(** [fold f acc m] — left fold over the active lanes, ascending;
    allocation-free (the hot-path replacement for [to_list]). *)
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val pp : warp_size:int -> Format.formatter -> t -> unit
