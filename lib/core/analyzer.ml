(** The ThreadFuser analyzer: the public entry point tying the pipeline
    together (paper Fig. 3b).

    {[ traces --> DCFG --> IPDOM --> warp formation --> SIMT-stack
       emulation --> efficiency / divergence report (+ warp traces) ]}

    Typical use:

    {[
      let machine = Machine.create prog in
      setup (Machine.memory machine);
      let run = Machine.run_workers machine ~worker ~args in
      let result = Analyzer.analyze prog run.traces in
      Fmt.pr "%a@." Metrics.pp_summary result.report
    ]} *)

module Program = Threadfuser_prog.Program
module Thread_trace = Threadfuser_trace.Thread_trace
module Dcfg = Threadfuser_cfg.Dcfg
module Ipdom = Threadfuser_cfg.Ipdom

type options = {
  warp_size : int;
  batching : Batching.t;
  sync : Emulator.sync_mode; (* serialize same-lock lanes or ignore locks *)
  reconv : Emulator.reconv_mode; (* IPDOM or function-exit-only (ablation) *)
  gen_warp_trace : bool; (* also produce the simulator trace *)
  record_timeline : bool; (* record per-warp occupancy timelines *)
}

let default_options =
  {
    warp_size = 32;
    batching = Batching.Sequential;
    sync = Emulator.Serialize;
    reconv = Emulator.Ipdom_reconv;
    gen_warp_trace = false;
    record_timeline = false;
  }

type result = {
  report : Metrics.report;
  warp_trace : Warp_trace.t option;
  timelines : Timeline.t list; (* in warp order; empty unless recorded *)
  dcfgs : Dcfg.t array;
  ipdoms : Ipdom.t array;
  options : options;
}

let build_report (options : options) prog (emu : Emulator.t) ~n_threads ~n_warps
    ~per_warp ~skipped_io ~skipped_spin ~skipped_excluded =
  let total_instrs = emu.Emulator.thread_instrs in
  let per_function =
    let stats = ref [] in
    Array.iteri
      (fun fid issues ->
        if issues > 0 then
          stats :=
            {
              Metrics.fid;
              func_name = Program.func_name prog fid;
              issues;
              thread_instrs = emu.Emulator.func_instrs.(fid);
              efficiency =
                Metrics.efficiency ~issues
                  ~thread_instrs:emu.Emulator.func_instrs.(fid)
                  ~warp_size:options.warp_size;
              instr_share =
                (if total_instrs = 0 then 0.0
                 else
                   float_of_int emu.Emulator.func_instrs.(fid)
                   /. float_of_int total_instrs);
            }
            :: !stats)
      emu.Emulator.func_issues;
    List.sort
      (fun (a : Metrics.func_stat) (b : Metrics.func_stat) ->
        compare b.thread_instrs a.thread_instrs)
      !stats
  in
  (* hottest divergent blocks: ranked by wasted issue slots
     (issues * warp_size - instrs), keeping clearly-divergent ones *)
  let hot_blocks =
    let acc = ref [] in
    Array.iteri
      (fun fid per_block ->
        Array.iteri
          (fun bid issues ->
            if issues > 0 then begin
              let instrs = emu.Emulator.block_instrs.(fid).(bid) in
              let eff =
                Metrics.efficiency ~issues ~thread_instrs:instrs
                  ~warp_size:options.warp_size
              in
              if eff < 0.9 then
                acc :=
                  {
                    Metrics.block_fid = fid;
                    block_func = Program.func_name prog fid;
                    block_id = bid;
                    src_label =
                      (Program.func prog fid).Program.blocks.(bid).Program.src_label;
                    block_issues = issues;
                    block_instrs = instrs;
                    block_efficiency = eff;
                  }
                  :: !acc
            end)
          per_block)
      emu.Emulator.block_issues;
    List.sort
      (fun (a : Metrics.block_stat) (b : Metrics.block_stat) ->
        compare
          ((b.block_issues * options.warp_size) - b.block_instrs)
          ((a.block_issues * options.warp_size) - a.block_instrs))
      !acc
    |> List.filteri (fun i _ -> i < 10)
  in
  let c = emu.Emulator.coalesce in
  let total_mem_txns, total_mem_issues = Coalesce.totals c in
  {
    Metrics.warp_size = options.warp_size;
    n_threads;
    n_warps;
    per_warp;
    hot_blocks;
    issues = emu.Emulator.issues;
    thread_instrs = total_instrs;
    simt_efficiency =
      Metrics.efficiency ~issues:emu.Emulator.issues ~thread_instrs:total_instrs
        ~warp_size:options.warp_size;
    per_function;
    stack_mem = Metrics.segment_stat c.Coalesce.stack;
    heap_mem = Metrics.segment_stat c.Coalesce.heap;
    global_mem = Metrics.segment_stat c.Coalesce.global;
    total_mem_txns;
    total_mem_issues;
    skipped_io;
    skipped_spin;
    skipped_excluded;
    lock_acquires = emu.Emulator.lock_acquires;
    barrier_syncs = emu.Emulator.barrier_syncs;
    serializations = emu.Emulator.serializations;
    serialized_instrs = emu.Emulator.serialized_instrs;
  }

(** Run the full analysis pipeline over a trace set. *)
let analyze ?(options = default_options) prog (traces : Thread_trace.t array) :
    result =
  let dcfgs = Dcfg.of_traces prog traces in
  let ipdoms = Ipdom.of_dcfgs dcfgs in
  let warps = Batching.form options.batching ~warp_size:options.warp_size traces in
  let wt_builder =
    if options.gen_warp_trace then
      Some
        (Warp_trace.Builder.create ~warp_size:options.warp_size
           ~n_warps:(Array.length warps))
    else None
  in
  let emu =
    Emulator.create ?warp_trace:wt_builder prog ipdoms
      {
        Emulator.warp_size = options.warp_size;
        sync = options.sync;
        reconv = options.reconv;
        record_timeline = options.record_timeline;
      }
  in
  let skipped_io = ref 0 and skipped_spin = ref 0 in
  let skipped_excluded = ref 0 in
  let per_warp = ref [] in
  Array.iteri
    (fun warp_id tids ->
      let cursors = Array.map (fun tid -> Cursor.of_trace traces.(tid)) tids in
      let issues0 = emu.Emulator.issues
      and instrs0 = emu.Emulator.thread_instrs in
      Emulator.run_warp emu ~warp_id cursors;
      let warp_issues = emu.Emulator.issues - issues0
      and warp_instrs = emu.Emulator.thread_instrs - instrs0 in
      per_warp :=
        {
          Metrics.warp_id;
          warp_issues;
          warp_instrs;
          warp_efficiency =
            Metrics.efficiency ~issues:warp_issues ~thread_instrs:warp_instrs
              ~warp_size:options.warp_size;
          lanes = Array.length tids;
        }
        :: !per_warp;
      Array.iter
        (fun (c : Cursor.t) ->
          skipped_io := !skipped_io + c.Cursor.skipped_io;
          skipped_spin := !skipped_spin + c.Cursor.skipped_spin;
          skipped_excluded := !skipped_excluded + c.Cursor.skipped_excluded)
        cursors)
    warps;
  let report =
    build_report options prog emu ~n_threads:(Array.length traces)
      ~n_warps:(Array.length warps) ~per_warp:(List.rev !per_warp)
      ~skipped_io:!skipped_io ~skipped_spin:!skipped_spin
      ~skipped_excluded:!skipped_excluded
  in
  {
    report;
    warp_trace = Option.map Warp_trace.Builder.finish wt_builder;
    timelines = List.rev emu.Emulator.timelines;
    dcfgs;
    ipdoms;
    options;
  }
