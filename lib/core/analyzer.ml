(** The ThreadFuser analyzer: the public entry point tying the pipeline
    together (paper Fig. 3b).

    {[ traces --> DCFG --> IPDOM --> warp formation --> SIMT-stack
       emulation --> efficiency / divergence report (+ warp traces) ]}

    Typical use:

    {[
      let machine = Machine.create prog in
      setup (Machine.memory machine);
      let run = Machine.run_workers machine ~worker ~args in
      let result = Analyzer.analyze prog run.traces in
      Fmt.pr "%a@." Metrics.pp_summary result.report
    ]} *)

module Program = Threadfuser_prog.Program
module Thread_trace = Threadfuser_trace.Thread_trace
module Validate = Threadfuser_trace.Validate
module Serial = Threadfuser_trace.Serial
module Stream = Threadfuser_trace.Stream
module Tf_error = Threadfuser_util.Tf_error
module Dcfg = Threadfuser_cfg.Dcfg
module Ipdom = Threadfuser_cfg.Ipdom
module Obs = Threadfuser_obs.Obs
module Log = Threadfuser_obs.Log

(* Observability instruments (docs/observability.md); all no-ops until the
   collector is enabled. *)
let c_warps = Obs.Counter.make "tf_warps_replayed_total" ~help:"warps replayed"
let c_warp_failures =
  Obs.Counter.make "tf_warp_failures_total"
    ~help:"warps whose checked replay aborted"
let h_warp_replay =
  Obs.Histogram.make "tf_warp_replay_us"
    ~help:"per-warp SIMT-stack replay latency (us)"
let c_par_merge_ns =
  Obs.Counter.make "tf_par_merge_ns"
    ~help:"cumulative wall time spent merging replay shards (ns)"

type options = {
  warp_size : int;
  batching : Batching.t;
  sync : Emulator.sync_mode; (* serialize same-lock lanes or ignore locks *)
  reconv : Emulator.reconv_mode; (* IPDOM or function-exit-only (ablation) *)
  gen_warp_trace : bool; (* also produce the simulator trace *)
  record_timeline : bool; (* record per-warp occupancy timelines *)
  domains : int; (* replay domains; 1 = sequential (docs/performance.md) *)
  schedule : Par_replay.schedule; (* warp-to-domain scheduling policy *)
  auto_domains : bool;
      (* cap [domains] by trace volume ([Par_replay.auto_domains]) so tiny
         workloads don't pay hand-off costs; identical output either way *)
}

let default_options =
  {
    warp_size = 32;
    batching = Batching.Sequential;
    sync = Emulator.Serialize;
    reconv = Emulator.Ipdom_reconv;
    gen_warp_trace = false;
    record_timeline = false;
    domains = 1;
    schedule = Par_replay.Static;
    auto_domains = true;
  }

(* One folded call stack of the replay flamegraph: frames root-first,
   weighted by lock-step issues and by lost-lane issue slots. *)
type flame_stack = {
  frames : string list; (* function names, root first *)
  fl_issues : int;
  fl_lost : int;
}

type result = {
  report : Metrics.report;
  warp_trace : Warp_trace.t option;
  timelines : Timeline.t list; (* in warp order; empty unless recorded *)
  flame : flame_stack list; (* folded replay stacks, by descending issues *)
  dcfgs : Dcfg.t array;
  ipdoms : Ipdom.t array;
  options : options;
}

let build_report (options : options) prog (emu : Emulator.t) ~n_threads ~n_warps
    ~per_warp ~skipped_io ~skipped_spin ~skipped_excluded ~coverage =
  let total_instrs = emu.Emulator.thread_instrs in
  let per_function =
    let stats = ref [] in
    Array.iteri
      (fun fid issues ->
        if issues > 0 then
          stats :=
            {
              Metrics.fid;
              func_name = Program.func_name prog fid;
              issues;
              thread_instrs = emu.Emulator.func_instrs.(fid);
              efficiency =
                Metrics.efficiency ~issues
                  ~thread_instrs:emu.Emulator.func_instrs.(fid)
                  ~warp_size:options.warp_size;
              instr_share =
                (if total_instrs = 0 then 0.0
                 else
                   float_of_int emu.Emulator.func_instrs.(fid)
                   /. float_of_int total_instrs);
            }
            :: !stats)
      emu.Emulator.func_issues;
    List.sort
      (fun (a : Metrics.func_stat) (b : Metrics.func_stat) ->
        compare b.thread_instrs a.thread_instrs)
      !stats
  in
  (* hottest divergent blocks: ranked by wasted issue slots
     (issues * warp_size - instrs), keeping clearly-divergent ones *)
  let hot_blocks =
    let acc = ref [] in
    Array.iteri
      (fun fid per_block ->
        Array.iteri
          (fun bid issues ->
            if issues > 0 then begin
              let instrs = emu.Emulator.block_instrs.(fid).(bid) in
              let eff =
                Metrics.efficiency ~issues ~thread_instrs:instrs
                  ~warp_size:options.warp_size
              in
              if eff < 0.9 then
                acc :=
                  {
                    Metrics.block_fid = fid;
                    block_func = Program.func_name prog fid;
                    block_id = bid;
                    src_label =
                      (Program.func prog fid).Program.blocks.(bid).Program.src_label;
                    block_issues = issues;
                    block_instrs = instrs;
                    block_efficiency = eff;
                  }
                  :: !acc
            end)
          per_block)
      emu.Emulator.block_issues;
    List.sort
      (fun (a : Metrics.block_stat) (b : Metrics.block_stat) ->
        compare
          ((b.block_issues * options.warp_size) - b.block_instrs)
          ((a.block_issues * options.warp_size) - a.block_instrs))
      !acc
    |> List.filteri (fun i _ -> i < 10)
  in
  (* blame attribution: divergence sites by lost-lane cost, access sites
     by excess transactions (top 20 each — the Fig. 7 workflow wants the
     head of the ranking, and reports stay diffable) *)
  let src_label fid bid =
    (Program.func prog fid).Program.blocks.(bid).Program.src_label
  in
  let total_slots = emu.Emulator.issues * options.warp_size in
  let divergence_sites =
    Hashtbl.fold
      (fun (fid, bid) (c : Emulator.div_site_cell) acc ->
        if c.Emulator.sc_splits = 0 && c.Emulator.sc_lost = 0 then acc
        else
          {
            Metrics.ds_fid = fid;
            ds_func = Program.func_name prog fid;
            ds_block = bid;
            ds_label = src_label fid bid;
            ds_kind =
              (match c.Emulator.sc_kind with
              | Emulator.Branch_site -> `Branch
              | Emulator.Sync_site -> `Sync);
            ds_splits = c.Emulator.sc_splits;
            ds_lost_lanes = c.Emulator.sc_lost;
            ds_recoverable =
              (if total_slots = 0 then 0.0
               else float_of_int c.Emulator.sc_lost /. float_of_int total_slots);
          }
          :: acc)
      emu.Emulator.div_sites []
    |> List.sort (fun (a : Metrics.div_site) b ->
           (* full tiebreak to (fid, block): sites are keyed by that pair,
              so the order is total and Hashtbl iteration order (which
              differs between sequential and shard-merged tables) can
              never leak into the ranking *)
           compare
             ( b.Metrics.ds_lost_lanes,
               b.Metrics.ds_splits,
               a.Metrics.ds_fid,
               a.Metrics.ds_block )
             ( a.Metrics.ds_lost_lanes,
               a.Metrics.ds_splits,
               b.Metrics.ds_fid,
               b.Metrics.ds_block ))
    |> List.filteri (fun i _ -> i < 20)
  in
  let mem_sites =
    Hashtbl.fold
      (fun (fid, bid, ioff) (c : Coalesce.site_counters) acc ->
        let excess =
          c.Coalesce.a_stack_excess + c.Coalesce.a_heap_excess
          + c.Coalesce.a_global_excess
        in
        if excess = 0 then acc
        else
          {
            Metrics.ms_fid = fid;
            ms_func = Program.func_name prog fid;
            ms_block = bid;
            ms_ioff = ioff;
            ms_label = src_label fid bid;
            ms_issues = c.Coalesce.a_issues;
            ms_txns = c.Coalesce.a_txns;
            ms_min_txns = c.Coalesce.a_min_txns;
            ms_excess = excess;
            ms_stack_excess = c.Coalesce.a_stack_excess;
            ms_heap_excess = c.Coalesce.a_heap_excess;
            ms_global_excess = c.Coalesce.a_global_excess;
          }
          :: acc)
      emu.Emulator.coalesce.Coalesce.sites []
    |> List.sort (fun (a : Metrics.mem_site) b ->
           (* tiebreak down to ioff — the full site key — for the same
              total-order reason as divergence_sites above *)
           compare
             ( b.Metrics.ms_excess,
               a.Metrics.ms_fid,
               a.Metrics.ms_block,
               a.Metrics.ms_ioff )
             ( a.Metrics.ms_excess,
               b.Metrics.ms_fid,
               b.Metrics.ms_block,
               b.Metrics.ms_ioff ))
    |> List.filteri (fun i _ -> i < 20)
  in
  let c = emu.Emulator.coalesce in
  (* the coalescing aggregation phase: per-transaction counting happened
     inline during replay (memory track); this span covers the roll-up *)
  let total_mem_txns, total_mem_issues, stack_mem, heap_mem, global_mem =
    Obs.span "coalesce" (fun () ->
        let txns, issues = Coalesce.totals c in
        ( txns,
          issues,
          Metrics.segment_stat c.Coalesce.stack,
          Metrics.segment_stat c.Coalesce.heap,
          Metrics.segment_stat c.Coalesce.global ))
  in
  {
    Metrics.warp_size = options.warp_size;
    n_threads;
    n_warps;
    per_warp;
    hot_blocks;
    issues = emu.Emulator.issues;
    thread_instrs = total_instrs;
    simt_efficiency =
      Metrics.efficiency ~issues:emu.Emulator.issues ~thread_instrs:total_instrs
        ~warp_size:options.warp_size;
    per_function;
    divergence_sites;
    mem_sites;
    stack_mem;
    heap_mem;
    global_mem;
    total_mem_txns;
    total_mem_issues;
    skipped_io;
    skipped_spin;
    skipped_excluded;
    lock_acquires = emu.Emulator.lock_acquires;
    barrier_syncs = emu.Emulator.barrier_syncs;
    serializations = emu.Emulator.serializations;
    serialized_instrs = emu.Emulator.serialized_instrs;
    coverage;
  }

(* A warp whose replay aborted (checked pipeline only): the lanes it
   carried (as indices into the analyzed trace array) and the verdict. *)
type warp_failure = {
  fw_warp : int;
  fw_tids : int array;
  fw_diag : Tf_error.diagnostic;
}

(* Exceptions the checked pipeline must not swallow. *)
let fatal = function
  | Out_of_memory | Sys.Break -> true
  | _ -> false

let diag_of_exn ?thread = function
  | Tf_error.Error d -> d
  | Emulator.Emulation_error m ->
      Tf_error.diag ?thread Tf_error.Replay_error "%s" m
  | Serial.Corrupt m -> Tf_error.diag ?thread Tf_error.Corrupt_input "%s" m
  | e ->
      Tf_error.diag ?thread Tf_error.Replay_error "unexpected exception: %s"
        (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Shared replay machinery (batch pipeline and streaming session).

   Replay shard: one per worker domain.  The emulator (and the per-warp
   stat / failure accumulators) are private to the shard, so nothing
   shared is mutated during replay — the warp-trace builder is shared,
   but its per-warp streams are preallocated and each domain only
   touches the streams of its own warps.  Shards merge in worker order,
   and [Emulator.merge_into] is additive in every field, so any grouping
   of warps into batches reduces to byte-identical output at any domain
   count (docs/performance.md). *)

type shard = {
  sh_emu : Emulator.t;
  mutable sh_failures : warp_failure list; (* reversed *)
  mutable sh_io : int;
  mutable sh_spin : int;
  mutable sh_excluded : int;
}

let econfig_of (options : options) =
  {
    Emulator.warp_size = options.warp_size;
    sync = options.sync;
    reconv = options.reconv;
    record_timeline = options.record_timeline;
  }

let new_shard ?wt_builder prog ipdoms econfig () =
  {
    sh_emu = Emulator.create ?warp_trace:wt_builder prog ipdoms econfig;
    sh_failures = [];
    sh_io = 0;
    sh_spin = 0;
    sh_excluded = 0;
  }

(* Replay warp [warp_id] carrying lanes [tids] into [sh].  [lane_trace]
   resolves a tid (an index into the analyzed set) to its trace: direct
   array indexing in batch mode, a batch-relative lookup in streaming
   mode.  Per-warp stats land in the preallocated [stats] slot for
   [warp_id]: each warp is owned by exactly one worker, so the writes are
   domain-confined and no post-merge sort/concat is needed. *)
let shard_replay_warp ~(options : options) ?fuel ~catch sh
    ~(stats : Metrics.warp_stat option array) ~warp_id ~tids ~lane_trace =
  let emu = sh.sh_emu in
  let cursors = Array.map (fun tid -> Cursor.of_trace (lane_trace tid)) tids in
  let issues0 = emu.Emulator.issues
  and instrs0 = emu.Emulator.thread_instrs in
  let replay () =
    if not !Obs.enabled then Emulator.run_warp ?fuel emu ~warp_id cursors
    else
      Obs.span ~track:Obs.replay_track
        ~args:[ ("lanes", Obs.itos (Array.length tids)) ]
        ("warp " ^ Obs.itos warp_id)
        (fun () ->
          Obs.timed h_warp_replay (fun () ->
              let r = Emulator.run_warp ?fuel emu ~warp_id cursors in
              Obs.Counter.incr c_warps;
              r))
  in
  (match replay () with
  | () ->
      let warp_issues = emu.Emulator.issues - issues0
      and warp_instrs = emu.Emulator.thread_instrs - instrs0 in
      stats.(warp_id) <-
        Some
          {
            Metrics.warp_id;
            warp_issues;
            warp_instrs;
            warp_efficiency =
              Metrics.efficiency ~issues:warp_issues ~thread_instrs:warp_instrs
                ~warp_size:options.warp_size;
            lanes = Array.length tids;
          }
  | exception e when catch && not (fatal e) ->
      Obs.Counter.incr c_warp_failures;
      let diag = diag_of_exn e in
      Log.warn "warp replay aborted"
        ~fields:
          [
            ("warp", string_of_int warp_id);
            ("lanes", string_of_int (Array.length tids));
            ("diag", Tf_error.to_string diag);
          ];
      sh.sh_failures <-
        { fw_warp = warp_id; fw_tids = tids; fw_diag = diag }
        :: sh.sh_failures);
  Array.iter
    (fun (c : Cursor.t) ->
      sh.sh_io <- sh.sh_io + c.Cursor.skipped_io;
      sh.sh_spin <- sh.sh_spin + c.Cursor.skipped_spin;
      sh.sh_excluded <- sh.sh_excluded + c.Cursor.skipped_excluded)
    cursors

(* Deterministic shard reduction, timed: fold every later shard into the
   first, in worker order (merge-in-place over the first shard's
   preallocated accumulators), summing the scalar skip counters as we
   go.  [tf_par_merge_ns] (and the "par_merge" span) make the fan-in
   overhead visible in `threadfuser profile`. *)
let merge_shards (shards : shard list) : shard =
  Obs.span "par_merge" @@ fun () ->
  let t0 = Obs.now_us () in
  let first, rest =
    match shards with
    | s :: rest -> (s, rest)
    | [] -> assert false (* map_shards always returns >= 1 shard *)
  in
  List.iter
    (fun (r : shard) ->
      Emulator.merge_into ~dst:first.sh_emu r.sh_emu;
      first.sh_failures <- List.rev_append r.sh_failures first.sh_failures;
      first.sh_io <- first.sh_io + r.sh_io;
      first.sh_spin <- first.sh_spin + r.sh_spin;
      first.sh_excluded <- first.sh_excluded + r.sh_excluded)
    rest;
  Obs.Counter.add c_par_merge_ns
    (int_of_float ((Obs.now_us () -. t0) *. 1e3));
  first

(* Total trace events — the cheap up-front work estimate feeding the
   auto -j cap. *)
let work_of (traces : Thread_trace.t array) =
  Array.fold_left
    (fun acc (t : Thread_trace.t) -> acc + Array.length t.Thread_trace.events)
    0 traces

let effective_domains (options : options) ~items ~work =
  let requested = max 1 options.domains in
  if options.auto_domains then
    Par_replay.auto_domains ~requested ~items ~work
  else requested

(* Fold the per-call-stack accumulation into root-first named stacks. *)
let fold_flame prog (emu : Emulator.t) =
  Hashtbl.fold
    (fun stack (c : Emulator.flame_cell) acc ->
      {
        frames = List.rev_map (Program.func_name prog) stack;
        fl_issues = c.Emulator.fc_issues;
        fl_lost = c.Emulator.fc_lost;
      }
      :: acc)
    emu.Emulator.flame []
  |> List.sort (fun a b ->
         compare (b.fl_issues, b.fl_lost, a.frames)
           (a.fl_issues, a.fl_lost, b.frames))

(* The shared pipeline body.  [catch = false] re-raises warp replay
   failures (the historical [analyze] contract); [catch = true] records
   them as {!warp_failure}s and keeps replaying the remaining warps.
   [threads_total] / [pre_quarantined] / [pre_dropped] describe threads
   already quarantined by validation so the coverage fields account for
   them. *)
let run_pipeline ~(options : options) ?fuel ~catch ~threads_total
    ~pre_quarantined ~pre_dropped prog (traces : Thread_trace.t array) :
    result * warp_failure list =
  let dcfgs = Obs.span "dcfg" (fun () -> Dcfg.of_traces prog traces) in
  let ipdoms = Obs.span "ipdom" (fun () -> Ipdom.of_dcfgs dcfgs) in
  let warps =
    Obs.span "warp_formation" (fun () ->
        Batching.form options.batching ~warp_size:options.warp_size traces)
  in
  Log.debug "pipeline: warps formed"
    ~fields:
      [
        ("threads", string_of_int (Array.length traces));
        ("warps", string_of_int (Array.length warps));
        ("warp_size", string_of_int options.warp_size);
      ];
  let wt_builder =
    if options.gen_warp_trace then
      Some
        (Warp_trace.Builder.create ~warp_size:options.warp_size
           ~n_warps:(Array.length warps))
    else None
  in
  let econfig = econfig_of options in
  let domains =
    effective_domains options ~items:(Array.length warps)
      ~work:(work_of traces)
  in
  (* per-warp stats land in preallocated warp-id slots (warp-confined
     writes), so the fan-in needs no sort/concat *)
  let warp_stats : Metrics.warp_stat option array =
    Array.make (Array.length warps) None
  in
  let replay_warp sh warp_id =
    shard_replay_warp ~options ?fuel ~catch sh ~stats:warp_stats ~warp_id
      ~tids:warps.(warp_id)
      ~lane_trace:(fun tid -> traces.(tid))
  in
  let shards =
    Obs.span "replay"
      ~args:
        [
          ("warps", string_of_int (Array.length warps));
          ("domains", string_of_int domains);
          ("requested_domains", string_of_int (max 1 options.domains));
          ("schedule", Par_replay.schedule_name options.schedule);
        ]
      (fun () ->
        Par_replay.map_shards ~domains ~schedule:options.schedule
          ~n:(Array.length warps)
          ~init:(new_shard ?wt_builder prog ipdoms econfig)
          ~item:replay_warp)
  in
  (* Deterministic reduction: fold every shard into the first; per-warp
     stats are already in global warp order, and failure warp ids are
     unique, so the failure sort is total at any schedule. *)
  let merged = merge_shards shards in
  let emu = merged.sh_emu in
  let per_warp =
    Array.to_list warp_stats |> List.filter_map (fun s -> s)
  in
  let failures =
    List.sort (fun a b -> compare a.fw_warp b.fw_warp) merged.sh_failures
  in
  let skipped_io = ref merged.sh_io
  and skipped_spin = ref merged.sh_spin
  and skipped_excluded = ref merged.sh_excluded in
  let replay_quarantined =
    List.fold_left (fun acc f -> acc + Array.length f.fw_tids) 0 failures
  in
  let replay_dropped =
    List.fold_left
      (fun acc f ->
        Array.fold_left
          (fun acc tid ->
            acc + Array.length traces.(tid).Thread_trace.events)
          acc f.fw_tids)
      0 failures
  in
  let coverage =
    {
      Metrics.threads_total;
      threads_analyzed = Array.length traces - replay_quarantined;
      threads_quarantined = pre_quarantined + replay_quarantined;
      events_dropped = pre_dropped + replay_dropped;
      warps_failed = List.length failures;
    }
  in
  let report =
    build_report options prog emu ~n_threads:(Array.length traces)
      ~n_warps:(Array.length warps) ~per_warp ~skipped_io:!skipped_io
      ~skipped_spin:!skipped_spin ~skipped_excluded:!skipped_excluded ~coverage
  in
  let flame = fold_flame prog emu in
  if !Obs.enabled then begin
    List.iter
      (fun (s : Metrics.div_site) ->
        Obs.instant ~track:Obs.blame_track "divergence site"
          ~args:
            [
              ("func", s.Metrics.ds_func);
              ("block", string_of_int s.Metrics.ds_block);
              ("label", Option.value ~default:"-" s.Metrics.ds_label);
              ("kind", Metrics.site_kind_name s.Metrics.ds_kind);
              ("splits", string_of_int s.Metrics.ds_splits);
              ("lost_lane_slots", string_of_int s.Metrics.ds_lost_lanes);
            ])
      report.Metrics.divergence_sites;
    List.iter
      (fun (m : Metrics.mem_site) ->
        Obs.instant ~track:Obs.blame_track "memory site"
          ~args:
            [
              ("func", m.Metrics.ms_func);
              ("block", string_of_int m.Metrics.ms_block);
              ("instr", string_of_int m.Metrics.ms_ioff);
              ("label", Option.value ~default:"-" m.Metrics.ms_label);
              ("txns", string_of_int m.Metrics.ms_txns);
              ("min_txns", string_of_int m.Metrics.ms_min_txns);
              ("excess", string_of_int m.Metrics.ms_excess);
            ])
      report.Metrics.mem_sites
  end;
  Log.info "analysis complete"
    ~fields:
      [
        ("warps", string_of_int (Array.length warps));
        ("issues", string_of_int report.Metrics.issues);
        ("thread_instrs", string_of_int report.Metrics.thread_instrs);
        ( "simt_efficiency",
          Printf.sprintf "%.4f" report.Metrics.simt_efficiency );
        ("warp_failures", string_of_int (List.length failures));
      ];
  ( {
      report;
      warp_trace = Option.map Warp_trace.Builder.finish wt_builder;
      timelines =
        (* warp order, under any shard count (each shard accumulates its
           timelines reversed; the merged list interleaves shards) *)
        List.sort
          (fun (a : Timeline.t) b -> compare a.Timeline.warp_id b.Timeline.warp_id)
          emu.Emulator.timelines;
      flame;
      dcfgs;
      ipdoms;
      options;
    },
    failures )

(** Run the full analysis pipeline over a trace set. *)
let analyze ?(options = default_options) prog (traces : Thread_trace.t array) :
    result =
  fst
    (run_pipeline ~options ~catch:false ~threads_total:(Array.length traces)
       ~pre_quarantined:0 ~pre_dropped:0 prog traces)

(* ------------------------------------------------------------------ *)
(* The checked pipeline: validate -> quarantine -> bounded replay.      *)

type checked = {
  result : result;
  diagnostics : Tf_error.diagnostic list;
  quarantined : (int * Tf_error.diagnostic) list;
}

let bounds_of_program prog =
  {
    Validate.func_count = Program.func_count prog;
    block_count = (fun f -> Program.block_count (Program.func prog f));
    block_instrs =
      Some
        (fun f b ->
          Array.length (Program.func prog f).Program.blocks.(b).Program.instrs);
  }

(* Every replay step consumes at least one event across the warp in any
   non-pathological schedule; the factor leaves room for stack churn
   (pushes, pops, reconvergence retargets) on damaged traces. *)
let default_fuel (traces : Thread_trace.t array) =
  let events =
    Array.fold_left
      (fun acc (t : Thread_trace.t) -> acc + Array.length t.Thread_trace.events)
      0 traces
  in
  (64 * events) + 4096

(** Like {!analyze}, but fail typed, bounded and partial-result-capable:
    threads that fail validation are quarantined up front, every warp
    replays under a fuel watchdog, and a warp whose replay aborts
    quarantines its lanes instead of aborting the analysis.  The report's
    coverage fields account for everything dropped. *)
let analyze_checked ?(options = default_options) ?fuel prog
    (traces : Thread_trace.t array) : checked =
  let threads_total = Array.length traces in
  let diagnostics, bad = Validate.quarantine ~bounds:(bounds_of_program prog) traces in
  let bad_tids = List.map fst bad in
  let survivors =
    Array.of_list
      (List.filter
         (fun (t : Thread_trace.t) ->
           not (List.mem t.Thread_trace.tid bad_tids))
         (Array.to_list traces))
  in
  let pre_quarantined = threads_total - Array.length survivors in
  let pre_dropped =
    Array.fold_left
      (fun acc (t : Thread_trace.t) ->
        if List.mem t.Thread_trace.tid bad_tids then
          acc + Array.length t.Thread_trace.events
        else acc)
      0 traces
  in
  let fuel = match fuel with Some f -> f | None -> default_fuel survivors in
  let run survivors ~pre_quarantined ~pre_dropped =
    run_pipeline ~options ~fuel ~catch:true ~threads_total ~pre_quarantined
      ~pre_dropped prog survivors
  in
  match run survivors ~pre_quarantined ~pre_dropped with
  | result, failures ->
      let replay_quar =
        List.concat_map
          (fun f ->
            Array.to_list f.fw_tids
            |> List.map (fun idx ->
                   (survivors.(idx).Thread_trace.tid, f.fw_diag)))
          failures
      in
      {
        result;
        diagnostics =
          diagnostics @ List.map (fun f -> f.fw_diag) failures;
        quarantined = bad @ replay_quar;
      }
  | exception e when not (fatal e) ->
      (* DCFG / IPDOM / warp formation blew up despite validation: the
         whole trace set is quarantined and the report is empty-but-typed. *)
      let d = diag_of_exn e in
      let all_events =
        Array.fold_left
          (fun acc (t : Thread_trace.t) ->
            acc + Array.length t.Thread_trace.events)
          0 traces
      in
      let result, _ =
        run_pipeline ~options ~fuel ~catch:true ~threads_total
          ~pre_quarantined:threads_total ~pre_dropped:all_events prog [||]
      in
      {
        result;
        diagnostics = diagnostics @ [ d ];
        quarantined =
          bad
          @ (Array.to_list survivors
            |> List.map (fun (t : Thread_trace.t) -> (t.Thread_trace.tid, d)));
      }

(* ------------------------------------------------------------------ *)
(* Streaming sessions: bounded-memory incremental analysis.            *)

module Session = struct
  let default_budget = 64 * 1024 * 1024

  type phase = Ingest | Finished of checked | Closed

  type t = {
    s_options : options;
    s_fuel : int option;
    s_budget : int;
    s_max_frame : int;
    s_prog : Program.t;
    s_bounds : Validate.bounds;
    s_dec : Stream.t;
    s_tmp_dir : string option;
    (* The spool: every ingested thread re-framed in [Stream]'s format
       (no magic), newest frames in [s_buf], older ones spilled to a temp
       file once the in-memory tail passes half the budget.  Threads with
       validation errors are spooled too: quarantine is by tid and a
       clean thread sharing a tid with a later bad one must still be
       excluded, exactly as [Validate.quarantine] does. *)
    s_buf : Buffer.t;
    mutable s_file : (string * out_channel) option;
    mutable s_spilled : int;
    (* Per-thread metadata, newest first (O(threads), not O(bytes)). *)
    mutable s_n : int;
    mutable s_tids : int list;
    mutable s_seqs : int list list; (* barrier sequences, for the vote *)
    mutable s_events : int list; (* event count per thread *)
    mutable s_sizes : int list; (* spooled frame bytes per thread *)
    mutable s_diags : (int * Tf_error.diagnostic list) list;
        (* (ingest index, per-thread diagnostics newest-first); only
           threads that produced any *)
    mutable s_failure : Tf_error.diagnostic option;
    mutable s_done : bool;
    mutable s_phase : phase;
  }

  let create ?(options = default_options) ?fuel
      ?(budget_bytes = default_budget) ?tmp_dir prog =
    if budget_bytes <= 0 then
      invalid_arg "Analyzer.Session.create: budget_bytes must be positive";
    if options.batching <> Batching.Sequential then
      invalid_arg
        "Analyzer.Session.create: streaming analysis requires Sequential \
         batching (other policies need every trace at once)";
    let max_frame = max budget_bytes 65536 in
    {
      s_options = options;
      s_fuel = fuel;
      s_budget = budget_bytes;
      s_max_frame = max_frame;
      s_prog = prog;
      s_bounds = bounds_of_program prog;
      s_dec = Stream.create ~max_frame_bytes:max_frame ();
      s_tmp_dir = tmp_dir;
      s_buf = Buffer.create 4096;
      s_file = None;
      s_spilled = 0;
      s_n = 0;
      s_tids = [];
      s_seqs = [];
      s_events = [];
      s_sizes = [];
      s_diags = [];
      s_failure = None;
      s_done = false;
      s_phase = Ingest;
    }

  let buffered_bytes t = Stream.buffered t.s_dec + Buffer.length t.s_buf
  let spilled_bytes t = t.s_spilled
  let bytes_ingested t = Stream.bytes_fed t.s_dec
  let threads_ingested t = t.s_n
  let input_done t = t.s_done
  let failure t = t.s_failure

  (* The in-memory spool tail stays under half the budget; the other half
     covers the decoder's reassembly buffer and the replay batch. *)
  let spill_at t = max 65536 (t.s_budget / 2)

  let spill t =
    let oc =
      match t.s_file with
      | Some (_, oc) -> oc
      | None ->
          let path =
            Filename.temp_file ?temp_dir:t.s_tmp_dir "tfsession" ".spool"
          in
          let oc = open_out_bin path in
          t.s_file <- Some (path, oc);
          oc
    in
    Buffer.output_buffer oc t.s_buf;
    t.s_spilled <- t.s_spilled + Buffer.length t.s_buf;
    Buffer.clear t.s_buf

  let require_ingest t what =
    match t.s_phase with
    | Ingest -> ()
    | Finished _ | Closed ->
        invalid_arg
          (Printf.sprintf "Analyzer.Session.%s: session already %s" what
             (match t.s_phase with Closed -> "closed" | _ -> "finished"))

  let add_thread t (trace : Thread_trace.t) =
    require_ingest t "add_thread";
    t.s_tids <- trace.Thread_trace.tid :: t.s_tids;
    t.s_seqs <- Validate.barrier_seq trace :: t.s_seqs;
    t.s_events <- Array.length trace.Thread_trace.events :: t.s_events;
    (let diags = Validate.thread ~bounds:t.s_bounds trace in
     if diags <> [] then t.s_diags <- (t.s_n, diags) :: t.s_diags);
    let before = Buffer.length t.s_buf in
    Stream.add_thread t.s_buf trace;
    t.s_sizes <- (Buffer.length t.s_buf - before) :: t.s_sizes;
    t.s_n <- t.s_n + 1;
    if Buffer.length t.s_buf > spill_at t then spill t

  let feed t ?off ?len chunk =
    require_ingest t "feed";
    if t.s_failure = None then begin
      Stream.feed t.s_dec ?off ?len chunk;
      let continue_ = ref true in
      while !continue_ do
        match Stream.next t.s_dec with
        | Stream.Need_more -> continue_ := false
        | Stream.Frame tr -> add_thread t tr
        | Stream.End_of_stream ->
            t.s_done <- true;
            (* loop once more only if trailing bytes remain: the decoder
               reports them as a (sticky) protocol error *)
            if Stream.buffered t.s_dec = 0 then continue_ := false
        | Stream.Corrupt d ->
            t.s_failure <- Some d;
            continue_ := false
      done
    end

  (* Iterate the spooled frames in ingest order — the spill file (oldest)
     then the in-memory tail — re-decoded through a bounded decoder, so
     the pass holds one frame plus one chunk, never the spool. *)
  let iter_spool t f =
    let dec =
      Stream.create ~max_frame_bytes:t.s_max_frame ~expect_magic:false ()
    in
    let drain () =
      let continue_ = ref true in
      while !continue_ do
        match Stream.next dec with
        | Stream.Need_more -> continue_ := false
        | Stream.Frame tr -> f tr
        | Stream.End_of_stream | Stream.Corrupt _ ->
            (* the spool is written only by [add_thread]: well-formed
               thread frames, no end frame *)
            assert false
      done
    in
    (match t.s_file with
    | Some (path, oc) ->
        flush oc;
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let chunk = Bytes.create 65536 in
            let rec go () =
              let n = input ic chunk 0 (Bytes.length chunk) in
              if n > 0 then begin
                Stream.feed dec ~len:n (Bytes.unsafe_to_string chunk);
                drain ();
                go ()
              end
            in
            go ())
    | None -> ());
    Stream.feed dec (Buffer.contents t.s_buf);
    drain ()

  (* The streaming equivalent of [analyze_checked]'s body.  Barrier vote
     over the retained sequences -> quarantine by tid (exactly
     [Validate.quarantine]'s rule) -> pass A re-feeds surviving spool
     frames to a DCFG builder in ingest order (identical insertion order
     to [Dcfg.of_traces], hence identical graphs and IPDOMs) -> pass B
     replays Sequential warps in warp-aligned bounded batches, merging
     every batch's shards into a running accumulator.
     [Emulator.merge_into] is additive in every field and every ranking
     [build_report] emits is totally ordered, so the result is
     byte-identical to the batch pipeline at any chunking, batch size and
     domain count. *)
  let analyze_ingested t ~(options : options) : checked =
    let prog = t.s_prog in
    let n_total = t.s_n in
    let tids = Array.of_list (List.rev t.s_tids) in
    let seqs = Array.of_list (List.rev t.s_seqs) in
    let evs = Array.of_list (List.rev t.s_events) in
    let sizes = Array.of_list (List.rev t.s_sizes) in
    (* diagnostics in [Validate.all]'s order: per thread in ingest order
       (newest-first within a thread), then the barrier vote *)
    let barrier_diags = Validate.barrier_check ~tids seqs in
    let diagnostics =
      List.concat_map (fun (_, ds) -> ds) (List.rev t.s_diags) @ barrier_diags
    in
    (* quarantine by tid with the first matching Error in list order *)
    let first_err : (int, Tf_error.diagnostic) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (d : Tf_error.diagnostic) ->
        match d.Tf_error.thread with
        | Some tid when d.Tf_error.severity = Tf_error.Error ->
            if not (Hashtbl.mem first_err tid) then Hashtbl.add first_err tid d
        | _ -> ())
      diagnostics;
    let bad =
      Array.to_list tids
      |> List.filter_map (fun tid ->
             Hashtbl.find_opt first_err tid |> Option.map (fun d -> (tid, d)))
    in
    let keep = Array.map (fun tid -> not (Hashtbl.mem first_err tid)) tids in
    let surv_tids = ref [] and surv_events = ref [] in
    Array.iteri
      (fun i k ->
        if k then begin
          surv_tids := tids.(i) :: !surv_tids;
          surv_events := evs.(i) :: !surv_events
        end)
      keep;
    let surv_tids = Array.of_list (List.rev !surv_tids) in
    let surv_events = Array.of_list (List.rev !surv_events) in
    let n_surv = Array.length surv_tids in
    let pre_quarantined = n_total - n_surv in
    let pre_dropped =
      let acc = ref 0 in
      Array.iteri (fun i k -> if not k then acc := !acc + evs.(i)) keep;
      !acc
    in
    let fuel =
      match t.s_fuel with
      | Some f -> f
      | None -> (64 * Array.fold_left ( + ) 0 surv_events) + 4096
    in
    let run () =
      (* pass A: DCFG over survivors in ingest order *)
      let builder = Dcfg.Builder.create prog in
      Obs.span "dcfg" (fun () ->
          let idx = ref 0 in
          iter_spool t (fun tr ->
              if keep.(!idx) then Dcfg.Builder.feed builder tr;
              incr idx));
      let dcfgs = Dcfg.Builder.finish builder in
      let ipdoms = Obs.span "ipdom" (fun () -> Ipdom.of_dcfgs dcfgs) in
      let ws = options.warp_size in
      let n_warps = (n_surv + ws - 1) / ws in
      let wt_builder =
        if options.gen_warp_trace then
          Some (Warp_trace.Builder.create ~warp_size:ws ~n_warps)
        else None
      in
      let econfig = econfig_of options in
      let requested_domains = max 1 options.domains in
      let acc = Emulator.create prog ipdoms econfig in
      let warp_stats : Metrics.warp_stat option array =
        Array.make n_warps None
      in
      let failures = ref [] in
      let io = ref 0 and spin = ref 0 and excluded = ref 0 in
      (* pass B: warp-aligned batches of roughly a budget's worth of
         decoded trace, replayed over the domain pool *)
      let batch_target = max 65536 (t.s_budget / 2) in
      let batch = ref [] and batch_n = ref 0 and batch_bytes = ref 0 in
      let base = ref 0 in
      (* survivor index of the batch's first lane *)
      let flush_batch () =
        if !batch_n > 0 then begin
          let traces_b = Array.of_list (List.rev !batch) in
          let nb = !batch_n in
          batch := [];
          batch_n := 0;
          batch_bytes := 0;
          let warps_b = (nb + ws - 1) / ws in
          let base_warp = !base / ws in
          let replay sh i =
            let lo = i * ws in
            let hi = min nb (lo + ws) in
            let tids_w = Array.init (hi - lo) (fun k -> !base + lo + k) in
            shard_replay_warp ~options ~fuel ~catch:true sh
              ~stats:warp_stats ~warp_id:(base_warp + i) ~tids:tids_w
              ~lane_trace:(fun g -> traces_b.(g - !base))
          in
          let domains =
            effective_domains options ~items:warps_b ~work:(work_of traces_b)
          in
          let shards =
            Par_replay.map_shards ~domains ~schedule:options.schedule
              ~n:warps_b
              ~init:(new_shard ?wt_builder prog ipdoms econfig)
              ~item:replay
          in
          let merged = merge_shards shards in
          Emulator.merge_into ~dst:acc merged.sh_emu;
          failures := List.rev_append merged.sh_failures !failures;
          io := !io + merged.sh_io;
          spin := !spin + merged.sh_spin;
          excluded := !excluded + merged.sh_excluded;
          base := !base + nb
        end
      in
      Obs.span "replay"
        ~args:
          [
            ("warps", string_of_int n_warps);
            ("domains", string_of_int requested_domains);
            ("schedule", Par_replay.schedule_name options.schedule);
          ]
        (fun () ->
          let idx = ref 0 in
          iter_spool t (fun tr ->
              let i = !idx in
              incr idx;
              if keep.(i) then begin
                batch := tr :: !batch;
                incr batch_n;
                batch_bytes := !batch_bytes + sizes.(i);
                if !batch_n mod ws = 0 && !batch_bytes >= batch_target then
                  flush_batch ()
              end);
          flush_batch ());
      let per_warp =
        Array.to_list warp_stats |> List.filter_map (fun s -> s)
      in
      let failures =
        List.sort (fun a b -> compare a.fw_warp b.fw_warp) !failures
      in
      let replay_quarantined =
        List.fold_left (fun a f -> a + Array.length f.fw_tids) 0 failures
      in
      let replay_dropped =
        List.fold_left
          (fun a f ->
            Array.fold_left (fun a idx -> a + surv_events.(idx)) a f.fw_tids)
          0 failures
      in
      let coverage =
        {
          Metrics.threads_total = n_total;
          threads_analyzed = n_surv - replay_quarantined;
          threads_quarantined = pre_quarantined + replay_quarantined;
          events_dropped = pre_dropped + replay_dropped;
          warps_failed = List.length failures;
        }
      in
      let report =
        build_report options prog acc ~n_threads:n_surv ~n_warps ~per_warp
          ~skipped_io:!io ~skipped_spin:!spin ~skipped_excluded:!excluded
          ~coverage
      in
      ( {
          report;
          warp_trace = Option.map Warp_trace.Builder.finish wt_builder;
          timelines =
            List.sort
              (fun (a : Timeline.t) b ->
                compare a.Timeline.warp_id b.Timeline.warp_id)
              acc.Emulator.timelines;
          flame = fold_flame prog acc;
          dcfgs;
          ipdoms;
          options;
        },
        failures )
    in
    match run () with
    | result, failures ->
        let replay_quar =
          List.concat_map
            (fun f ->
              Array.to_list f.fw_tids
              |> List.map (fun idx -> (surv_tids.(idx), f.fw_diag)))
            failures
        in
        {
          result;
          diagnostics = diagnostics @ List.map (fun f -> f.fw_diag) failures;
          quarantined = bad @ replay_quar;
        }
    | exception e when not (fatal e) ->
        (* mirror [analyze_checked]'s whole-set quarantine fallback *)
        let d = diag_of_exn e in
        let all_events = Array.fold_left ( + ) 0 evs in
        let result, _ =
          run_pipeline ~options ~fuel ~catch:true ~threads_total:n_total
            ~pre_quarantined:n_total ~pre_dropped:all_events prog [||]
        in
        {
          result;
          diagnostics = diagnostics @ [ d ];
          quarantined =
            bad @ (Array.to_list surv_tids |> List.map (fun tid -> (tid, d)));
        }

  let snapshot t : Metrics.report =
    match t.s_phase with
    | Closed -> invalid_arg "Analyzer.Session.snapshot: session closed"
    | Finished c -> c.result.report
    | Ingest ->
        (* advisory rolling report over the ingested prefix: skip the
           warp-trace / timeline side products *)
        let options =
          { t.s_options with gen_warp_trace = false; record_timeline = false }
        in
        (analyze_ingested t ~options).result.report

  let remove_spool t =
    (match t.s_file with
    | Some (path, oc) ->
        (try close_out oc with Sys_error _ -> ());
        (try Sys.remove path with Sys_error _ -> ())
    | None -> ());
    t.s_file <- None

  let finish t : checked =
    match t.s_phase with
    | Closed -> invalid_arg "Analyzer.Session.finish: session closed"
    | Finished c -> c
    | Ingest ->
        let c = analyze_ingested t ~options:t.s_options in
        let c =
          match t.s_failure with
          | None -> c
          | Some d -> { c with diagnostics = d :: c.diagnostics }
        in
        t.s_phase <- Finished c;
        remove_spool t;
        Buffer.reset t.s_buf;
        c

  let close t =
    remove_spool t;
    Buffer.reset t.s_buf;
    t.s_phase <- (match t.s_phase with Finished c -> Finished c | _ -> Closed)
end
