(** The ThreadFuser analyzer: the public entry point tying the pipeline
    together (paper Fig. 3b).

    {[ traces --> DCFG --> IPDOM --> warp formation --> SIMT-stack
       emulation --> efficiency / divergence report (+ warp traces) ]}

    Typical use:

    {[
      let machine = Machine.create prog in
      setup (Machine.memory machine);
      let run = Machine.run_workers machine ~worker ~args in
      let result = Analyzer.analyze prog run.traces in
      Fmt.pr "%a@." Metrics.pp_summary result.report
    ]} *)

module Program = Threadfuser_prog.Program
module Thread_trace = Threadfuser_trace.Thread_trace
module Validate = Threadfuser_trace.Validate
module Serial = Threadfuser_trace.Serial
module Tf_error = Threadfuser_util.Tf_error
module Dcfg = Threadfuser_cfg.Dcfg
module Ipdom = Threadfuser_cfg.Ipdom
module Obs = Threadfuser_obs.Obs
module Log = Threadfuser_obs.Log

(* Observability instruments (docs/observability.md); all no-ops until the
   collector is enabled. *)
let c_warps = Obs.Counter.make "tf_warps_replayed_total" ~help:"warps replayed"
let c_warp_failures =
  Obs.Counter.make "tf_warp_failures_total"
    ~help:"warps whose checked replay aborted"
let h_warp_replay =
  Obs.Histogram.make "tf_warp_replay_us"
    ~help:"per-warp SIMT-stack replay latency (us)"

type options = {
  warp_size : int;
  batching : Batching.t;
  sync : Emulator.sync_mode; (* serialize same-lock lanes or ignore locks *)
  reconv : Emulator.reconv_mode; (* IPDOM or function-exit-only (ablation) *)
  gen_warp_trace : bool; (* also produce the simulator trace *)
  record_timeline : bool; (* record per-warp occupancy timelines *)
  domains : int; (* replay domains; 1 = sequential (docs/performance.md) *)
  schedule : Par_replay.schedule; (* warp-to-domain scheduling policy *)
}

let default_options =
  {
    warp_size = 32;
    batching = Batching.Sequential;
    sync = Emulator.Serialize;
    reconv = Emulator.Ipdom_reconv;
    gen_warp_trace = false;
    record_timeline = false;
    domains = 1;
    schedule = Par_replay.Static;
  }

(* One folded call stack of the replay flamegraph: frames root-first,
   weighted by lock-step issues and by lost-lane issue slots. *)
type flame_stack = {
  frames : string list; (* function names, root first *)
  fl_issues : int;
  fl_lost : int;
}

type result = {
  report : Metrics.report;
  warp_trace : Warp_trace.t option;
  timelines : Timeline.t list; (* in warp order; empty unless recorded *)
  flame : flame_stack list; (* folded replay stacks, by descending issues *)
  dcfgs : Dcfg.t array;
  ipdoms : Ipdom.t array;
  options : options;
}

let build_report (options : options) prog (emu : Emulator.t) ~n_threads ~n_warps
    ~per_warp ~skipped_io ~skipped_spin ~skipped_excluded ~coverage =
  let total_instrs = emu.Emulator.thread_instrs in
  let per_function =
    let stats = ref [] in
    Array.iteri
      (fun fid issues ->
        if issues > 0 then
          stats :=
            {
              Metrics.fid;
              func_name = Program.func_name prog fid;
              issues;
              thread_instrs = emu.Emulator.func_instrs.(fid);
              efficiency =
                Metrics.efficiency ~issues
                  ~thread_instrs:emu.Emulator.func_instrs.(fid)
                  ~warp_size:options.warp_size;
              instr_share =
                (if total_instrs = 0 then 0.0
                 else
                   float_of_int emu.Emulator.func_instrs.(fid)
                   /. float_of_int total_instrs);
            }
            :: !stats)
      emu.Emulator.func_issues;
    List.sort
      (fun (a : Metrics.func_stat) (b : Metrics.func_stat) ->
        compare b.thread_instrs a.thread_instrs)
      !stats
  in
  (* hottest divergent blocks: ranked by wasted issue slots
     (issues * warp_size - instrs), keeping clearly-divergent ones *)
  let hot_blocks =
    let acc = ref [] in
    Array.iteri
      (fun fid per_block ->
        Array.iteri
          (fun bid issues ->
            if issues > 0 then begin
              let instrs = emu.Emulator.block_instrs.(fid).(bid) in
              let eff =
                Metrics.efficiency ~issues ~thread_instrs:instrs
                  ~warp_size:options.warp_size
              in
              if eff < 0.9 then
                acc :=
                  {
                    Metrics.block_fid = fid;
                    block_func = Program.func_name prog fid;
                    block_id = bid;
                    src_label =
                      (Program.func prog fid).Program.blocks.(bid).Program.src_label;
                    block_issues = issues;
                    block_instrs = instrs;
                    block_efficiency = eff;
                  }
                  :: !acc
            end)
          per_block)
      emu.Emulator.block_issues;
    List.sort
      (fun (a : Metrics.block_stat) (b : Metrics.block_stat) ->
        compare
          ((b.block_issues * options.warp_size) - b.block_instrs)
          ((a.block_issues * options.warp_size) - a.block_instrs))
      !acc
    |> List.filteri (fun i _ -> i < 10)
  in
  (* blame attribution: divergence sites by lost-lane cost, access sites
     by excess transactions (top 20 each — the Fig. 7 workflow wants the
     head of the ranking, and reports stay diffable) *)
  let src_label fid bid =
    (Program.func prog fid).Program.blocks.(bid).Program.src_label
  in
  let total_slots = emu.Emulator.issues * options.warp_size in
  let divergence_sites =
    Hashtbl.fold
      (fun (fid, bid) (c : Emulator.div_site_cell) acc ->
        if c.Emulator.sc_splits = 0 && c.Emulator.sc_lost = 0 then acc
        else
          {
            Metrics.ds_fid = fid;
            ds_func = Program.func_name prog fid;
            ds_block = bid;
            ds_label = src_label fid bid;
            ds_kind =
              (match c.Emulator.sc_kind with
              | Emulator.Branch_site -> `Branch
              | Emulator.Sync_site -> `Sync);
            ds_splits = c.Emulator.sc_splits;
            ds_lost_lanes = c.Emulator.sc_lost;
            ds_recoverable =
              (if total_slots = 0 then 0.0
               else float_of_int c.Emulator.sc_lost /. float_of_int total_slots);
          }
          :: acc)
      emu.Emulator.div_sites []
    |> List.sort (fun (a : Metrics.div_site) b ->
           (* full tiebreak to (fid, block): sites are keyed by that pair,
              so the order is total and Hashtbl iteration order (which
              differs between sequential and shard-merged tables) can
              never leak into the ranking *)
           compare
             ( b.Metrics.ds_lost_lanes,
               b.Metrics.ds_splits,
               a.Metrics.ds_fid,
               a.Metrics.ds_block )
             ( a.Metrics.ds_lost_lanes,
               a.Metrics.ds_splits,
               b.Metrics.ds_fid,
               b.Metrics.ds_block ))
    |> List.filteri (fun i _ -> i < 20)
  in
  let mem_sites =
    Hashtbl.fold
      (fun (fid, bid, ioff) (c : Coalesce.site_counters) acc ->
        let excess =
          c.Coalesce.a_stack_excess + c.Coalesce.a_heap_excess
          + c.Coalesce.a_global_excess
        in
        if excess = 0 then acc
        else
          {
            Metrics.ms_fid = fid;
            ms_func = Program.func_name prog fid;
            ms_block = bid;
            ms_ioff = ioff;
            ms_label = src_label fid bid;
            ms_issues = c.Coalesce.a_issues;
            ms_txns = c.Coalesce.a_txns;
            ms_min_txns = c.Coalesce.a_min_txns;
            ms_excess = excess;
            ms_stack_excess = c.Coalesce.a_stack_excess;
            ms_heap_excess = c.Coalesce.a_heap_excess;
            ms_global_excess = c.Coalesce.a_global_excess;
          }
          :: acc)
      emu.Emulator.coalesce.Coalesce.sites []
    |> List.sort (fun (a : Metrics.mem_site) b ->
           (* tiebreak down to ioff — the full site key — for the same
              total-order reason as divergence_sites above *)
           compare
             ( b.Metrics.ms_excess,
               a.Metrics.ms_fid,
               a.Metrics.ms_block,
               a.Metrics.ms_ioff )
             ( a.Metrics.ms_excess,
               b.Metrics.ms_fid,
               b.Metrics.ms_block,
               b.Metrics.ms_ioff ))
    |> List.filteri (fun i _ -> i < 20)
  in
  let c = emu.Emulator.coalesce in
  (* the coalescing aggregation phase: per-transaction counting happened
     inline during replay (memory track); this span covers the roll-up *)
  let total_mem_txns, total_mem_issues, stack_mem, heap_mem, global_mem =
    Obs.span "coalesce" (fun () ->
        let txns, issues = Coalesce.totals c in
        ( txns,
          issues,
          Metrics.segment_stat c.Coalesce.stack,
          Metrics.segment_stat c.Coalesce.heap,
          Metrics.segment_stat c.Coalesce.global ))
  in
  {
    Metrics.warp_size = options.warp_size;
    n_threads;
    n_warps;
    per_warp;
    hot_blocks;
    issues = emu.Emulator.issues;
    thread_instrs = total_instrs;
    simt_efficiency =
      Metrics.efficiency ~issues:emu.Emulator.issues ~thread_instrs:total_instrs
        ~warp_size:options.warp_size;
    per_function;
    divergence_sites;
    mem_sites;
    stack_mem;
    heap_mem;
    global_mem;
    total_mem_txns;
    total_mem_issues;
    skipped_io;
    skipped_spin;
    skipped_excluded;
    lock_acquires = emu.Emulator.lock_acquires;
    barrier_syncs = emu.Emulator.barrier_syncs;
    serializations = emu.Emulator.serializations;
    serialized_instrs = emu.Emulator.serialized_instrs;
    coverage;
  }

(* A warp whose replay aborted (checked pipeline only): the lanes it
   carried (as indices into the analyzed trace array) and the verdict. *)
type warp_failure = {
  fw_warp : int;
  fw_tids : int array;
  fw_diag : Tf_error.diagnostic;
}

(* Exceptions the checked pipeline must not swallow. *)
let fatal = function
  | Out_of_memory | Sys.Break -> true
  | _ -> false

let diag_of_exn ?thread = function
  | Tf_error.Error d -> d
  | Emulator.Emulation_error m ->
      Tf_error.diag ?thread Tf_error.Replay_error "%s" m
  | Serial.Corrupt m -> Tf_error.diag ?thread Tf_error.Corrupt_input "%s" m
  | e ->
      Tf_error.diag ?thread Tf_error.Replay_error "unexpected exception: %s"
        (Printexc.to_string e)

(* The shared pipeline body.  [catch = false] re-raises warp replay
   failures (the historical [analyze] contract); [catch = true] records
   them as {!warp_failure}s and keeps replaying the remaining warps.
   [threads_total] / [pre_quarantined] / [pre_dropped] describe threads
   already quarantined by validation so the coverage fields account for
   them. *)
let run_pipeline ~(options : options) ?fuel ~catch ~threads_total
    ~pre_quarantined ~pre_dropped prog (traces : Thread_trace.t array) :
    result * warp_failure list =
  let dcfgs = Obs.span "dcfg" (fun () -> Dcfg.of_traces prog traces) in
  let ipdoms = Obs.span "ipdom" (fun () -> Ipdom.of_dcfgs dcfgs) in
  let warps =
    Obs.span "warp_formation" (fun () ->
        Batching.form options.batching ~warp_size:options.warp_size traces)
  in
  Log.debug "pipeline: warps formed"
    ~fields:
      [
        ("threads", string_of_int (Array.length traces));
        ("warps", string_of_int (Array.length warps));
        ("warp_size", string_of_int options.warp_size);
      ];
  let wt_builder =
    if options.gen_warp_trace then
      Some
        (Warp_trace.Builder.create ~warp_size:options.warp_size
           ~n_warps:(Array.length warps))
    else None
  in
  let econfig =
    {
      Emulator.warp_size = options.warp_size;
      sync = options.sync;
      reconv = options.reconv;
      record_timeline = options.record_timeline;
    }
  in
  (* Replay shard: one per worker domain.  The emulator (and the per-warp
     stat / failure accumulators) are private to the shard, so nothing
     shared is mutated during replay — the warp-trace builder is shared,
     but its per-warp streams are preallocated and each domain only
     touches the streams of its own warps.  Shards merge below in worker
     order, which makes the output byte-identical at every domain count
     (docs/performance.md). *)
  let domains = max 1 options.domains in
  let module Shard = struct
    type t = {
      sh_emu : Emulator.t;
      mutable sh_per_warp : Metrics.warp_stat list; (* reversed *)
      mutable sh_failures : warp_failure list; (* reversed *)
      mutable sh_io : int;
      mutable sh_spin : int;
      mutable sh_excluded : int;
    }
  end in
  let new_shard () =
    {
      Shard.sh_emu = Emulator.create ?warp_trace:wt_builder prog ipdoms econfig;
      sh_per_warp = [];
      sh_failures = [];
      sh_io = 0;
      sh_spin = 0;
      sh_excluded = 0;
    }
  in
  let replay_warp (sh : Shard.t) warp_id =
    let tids = warps.(warp_id) in
    let emu = sh.Shard.sh_emu in
    let cursors = Array.map (fun tid -> Cursor.of_trace traces.(tid)) tids in
    let issues0 = emu.Emulator.issues
    and instrs0 = emu.Emulator.thread_instrs in
    let replay () =
      if not !Obs.enabled then Emulator.run_warp ?fuel emu ~warp_id cursors
      else
        Obs.span ~track:Obs.replay_track
          ~args:[ ("lanes", Obs.itos (Array.length tids)) ]
          ("warp " ^ Obs.itos warp_id)
          (fun () ->
            Obs.timed h_warp_replay (fun () ->
                let r = Emulator.run_warp ?fuel emu ~warp_id cursors in
                Obs.Counter.incr c_warps;
                r))
    in
    (match replay () with
    | () ->
        let warp_issues = emu.Emulator.issues - issues0
        and warp_instrs = emu.Emulator.thread_instrs - instrs0 in
        sh.Shard.sh_per_warp <-
          {
            Metrics.warp_id;
            warp_issues;
            warp_instrs;
            warp_efficiency =
              Metrics.efficiency ~issues:warp_issues ~thread_instrs:warp_instrs
                ~warp_size:options.warp_size;
            lanes = Array.length tids;
          }
          :: sh.Shard.sh_per_warp
    | exception e when catch && not (fatal e) ->
        Obs.Counter.incr c_warp_failures;
        let diag = diag_of_exn e in
        Log.warn "warp replay aborted"
          ~fields:
            [
              ("warp", string_of_int warp_id);
              ("lanes", string_of_int (Array.length tids));
              ("diag", Tf_error.to_string diag);
            ];
        sh.Shard.sh_failures <-
          { fw_warp = warp_id; fw_tids = tids; fw_diag = diag }
          :: sh.Shard.sh_failures);
    Array.iter
      (fun (c : Cursor.t) ->
        sh.Shard.sh_io <- sh.Shard.sh_io + c.Cursor.skipped_io;
        sh.Shard.sh_spin <- sh.Shard.sh_spin + c.Cursor.skipped_spin;
        sh.Shard.sh_excluded <- sh.Shard.sh_excluded + c.Cursor.skipped_excluded)
      cursors
  in
  let shards =
    Obs.span "replay"
      ~args:
        [
          ("warps", string_of_int (Array.length warps));
          ("domains", string_of_int domains);
          ("schedule", Par_replay.schedule_name options.schedule);
        ]
      (fun () ->
        Par_replay.map_shards ~domains ~schedule:options.schedule
          ~n:(Array.length warps) ~init:new_shard ~item:replay_warp)
  in
  (* Deterministic reduction: fold every shard into the first, then
     restore global warp order (static chunks concatenate in order
     already; dynamic scheduling interleaves, and warp ids are unique, so
     the sort is total either way). *)
  let emu =
    match shards with
    | s :: rest ->
        List.iter
          (fun (r : Shard.t) ->
            Emulator.merge_into ~dst:s.Shard.sh_emu r.Shard.sh_emu)
          rest;
        s.Shard.sh_emu
    | [] -> assert false (* map_shards always returns >= 1 shard *)
  in
  let per_warp =
    List.concat_map (fun (s : Shard.t) -> List.rev s.Shard.sh_per_warp) shards
    |> List.sort (fun (a : Metrics.warp_stat) b ->
           compare a.Metrics.warp_id b.Metrics.warp_id)
  in
  let failures =
    List.concat_map (fun (s : Shard.t) -> List.rev s.Shard.sh_failures) shards
    |> List.sort (fun a b -> compare a.fw_warp b.fw_warp)
  in
  let skipped_io =
    ref (List.fold_left (fun acc (s : Shard.t) -> acc + s.Shard.sh_io) 0 shards)
  and skipped_spin =
    ref
      (List.fold_left (fun acc (s : Shard.t) -> acc + s.Shard.sh_spin) 0 shards)
  and skipped_excluded =
    ref
      (List.fold_left
         (fun acc (s : Shard.t) -> acc + s.Shard.sh_excluded)
         0 shards)
  in
  let replay_quarantined =
    List.fold_left (fun acc f -> acc + Array.length f.fw_tids) 0 failures
  in
  let replay_dropped =
    List.fold_left
      (fun acc f ->
        Array.fold_left
          (fun acc tid ->
            acc + Array.length traces.(tid).Thread_trace.events)
          acc f.fw_tids)
      0 failures
  in
  let coverage =
    {
      Metrics.threads_total;
      threads_analyzed = Array.length traces - replay_quarantined;
      threads_quarantined = pre_quarantined + replay_quarantined;
      events_dropped = pre_dropped + replay_dropped;
      warps_failed = List.length failures;
    }
  in
  let report =
    build_report options prog emu ~n_threads:(Array.length traces)
      ~n_warps:(Array.length warps) ~per_warp ~skipped_io:!skipped_io
      ~skipped_spin:!skipped_spin ~skipped_excluded:!skipped_excluded ~coverage
  in
  (* fold the per-call-stack accumulation into root-first named stacks *)
  let flame =
    Hashtbl.fold
      (fun stack (c : Emulator.flame_cell) acc ->
        {
          frames = List.rev_map (Program.func_name prog) stack;
          fl_issues = c.Emulator.fc_issues;
          fl_lost = c.Emulator.fc_lost;
        }
        :: acc)
      emu.Emulator.flame []
    |> List.sort (fun a b ->
           compare (b.fl_issues, b.fl_lost, a.frames)
             (a.fl_issues, a.fl_lost, b.frames))
  in
  if !Obs.enabled then begin
    List.iter
      (fun (s : Metrics.div_site) ->
        Obs.instant ~track:Obs.blame_track "divergence site"
          ~args:
            [
              ("func", s.Metrics.ds_func);
              ("block", string_of_int s.Metrics.ds_block);
              ("label", Option.value ~default:"-" s.Metrics.ds_label);
              ("kind", Metrics.site_kind_name s.Metrics.ds_kind);
              ("splits", string_of_int s.Metrics.ds_splits);
              ("lost_lane_slots", string_of_int s.Metrics.ds_lost_lanes);
            ])
      report.Metrics.divergence_sites;
    List.iter
      (fun (m : Metrics.mem_site) ->
        Obs.instant ~track:Obs.blame_track "memory site"
          ~args:
            [
              ("func", m.Metrics.ms_func);
              ("block", string_of_int m.Metrics.ms_block);
              ("instr", string_of_int m.Metrics.ms_ioff);
              ("label", Option.value ~default:"-" m.Metrics.ms_label);
              ("txns", string_of_int m.Metrics.ms_txns);
              ("min_txns", string_of_int m.Metrics.ms_min_txns);
              ("excess", string_of_int m.Metrics.ms_excess);
            ])
      report.Metrics.mem_sites
  end;
  Log.info "analysis complete"
    ~fields:
      [
        ("warps", string_of_int (Array.length warps));
        ("issues", string_of_int report.Metrics.issues);
        ("thread_instrs", string_of_int report.Metrics.thread_instrs);
        ( "simt_efficiency",
          Printf.sprintf "%.4f" report.Metrics.simt_efficiency );
        ("warp_failures", string_of_int (List.length failures));
      ];
  ( {
      report;
      warp_trace = Option.map Warp_trace.Builder.finish wt_builder;
      timelines =
        (* warp order, under any shard count (each shard accumulates its
           timelines reversed; the merged list interleaves shards) *)
        List.sort
          (fun (a : Timeline.t) b -> compare a.Timeline.warp_id b.Timeline.warp_id)
          emu.Emulator.timelines;
      flame;
      dcfgs;
      ipdoms;
      options;
    },
    failures )

(** Run the full analysis pipeline over a trace set. *)
let analyze ?(options = default_options) prog (traces : Thread_trace.t array) :
    result =
  fst
    (run_pipeline ~options ~catch:false ~threads_total:(Array.length traces)
       ~pre_quarantined:0 ~pre_dropped:0 prog traces)

(* ------------------------------------------------------------------ *)
(* The checked pipeline: validate -> quarantine -> bounded replay.      *)

type checked = {
  result : result;
  diagnostics : Tf_error.diagnostic list;
  quarantined : (int * Tf_error.diagnostic) list;
}

let bounds_of_program prog =
  {
    Validate.func_count = Program.func_count prog;
    block_count = (fun f -> Program.block_count (Program.func prog f));
    block_instrs =
      Some
        (fun f b ->
          Array.length (Program.func prog f).Program.blocks.(b).Program.instrs);
  }

(* Every replay step consumes at least one event across the warp in any
   non-pathological schedule; the factor leaves room for stack churn
   (pushes, pops, reconvergence retargets) on damaged traces. *)
let default_fuel (traces : Thread_trace.t array) =
  let events =
    Array.fold_left
      (fun acc (t : Thread_trace.t) -> acc + Array.length t.Thread_trace.events)
      0 traces
  in
  (64 * events) + 4096

(** Like {!analyze}, but fail typed, bounded and partial-result-capable:
    threads that fail validation are quarantined up front, every warp
    replays under a fuel watchdog, and a warp whose replay aborts
    quarantines its lanes instead of aborting the analysis.  The report's
    coverage fields account for everything dropped. *)
let analyze_checked ?(options = default_options) ?fuel prog
    (traces : Thread_trace.t array) : checked =
  let threads_total = Array.length traces in
  let diagnostics, bad = Validate.quarantine ~bounds:(bounds_of_program prog) traces in
  let bad_tids = List.map fst bad in
  let survivors =
    Array.of_list
      (List.filter
         (fun (t : Thread_trace.t) ->
           not (List.mem t.Thread_trace.tid bad_tids))
         (Array.to_list traces))
  in
  let pre_quarantined = threads_total - Array.length survivors in
  let pre_dropped =
    Array.fold_left
      (fun acc (t : Thread_trace.t) ->
        if List.mem t.Thread_trace.tid bad_tids then
          acc + Array.length t.Thread_trace.events
        else acc)
      0 traces
  in
  let fuel = match fuel with Some f -> f | None -> default_fuel survivors in
  let run survivors ~pre_quarantined ~pre_dropped =
    run_pipeline ~options ~fuel ~catch:true ~threads_total ~pre_quarantined
      ~pre_dropped prog survivors
  in
  match run survivors ~pre_quarantined ~pre_dropped with
  | result, failures ->
      let replay_quar =
        List.concat_map
          (fun f ->
            Array.to_list f.fw_tids
            |> List.map (fun idx ->
                   (survivors.(idx).Thread_trace.tid, f.fw_diag)))
          failures
      in
      {
        result;
        diagnostics =
          diagnostics @ List.map (fun f -> f.fw_diag) failures;
        quarantined = bad @ replay_quar;
      }
  | exception e when not (fatal e) ->
      (* DCFG / IPDOM / warp formation blew up despite validation: the
         whole trace set is quarantined and the report is empty-but-typed. *)
      let d = diag_of_exn e in
      let all_events =
        Array.fold_left
          (fun acc (t : Thread_trace.t) ->
            acc + Array.length t.Thread_trace.events)
          0 traces
      in
      let result, _ =
        run_pipeline ~options ~fuel ~catch:true ~threads_total
          ~pre_quarantined:threads_total ~pre_dropped:all_events prog [||]
      in
      {
        result;
        diagnostics = diagnostics @ [ d ];
        quarantined =
          bad
          @ (Array.to_list survivors
            |> List.map (fun (t : Thread_trace.t) -> (t.Thread_trace.tid, d)));
      }
