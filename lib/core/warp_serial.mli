(** Warp-trace files — the on-disk form of ThreadFuser's simulator
    integration (paper §III): a line-oriented text format carrying one
    cracked micro-op per line with its active mask and per-lane addresses.
    Round-trips exactly.

    The reader treats every token as untrusted: malformed numbers fail as
    {!Corrupt} (never [Failure]), and warp/op/src counts are bounded by
    the input actually present before any allocation, so a corrupt header
    cannot trigger a multi-GB [Array.init]. *)

exception Corrupt of string

val to_buffer : Warp_trace.t -> Buffer.t

val to_string : Warp_trace.t -> string

val of_string : string -> Warp_trace.t

val to_file : string -> Warp_trace.t -> unit

val of_file : string -> Warp_trace.t
