(** Domain-parallel fan-out/fan-in: the engine behind
    [Analyzer.options.domains] and the cycle-level simulators' [-j]
    (docs/performance.md).

    Warps are independent after formation — each replays against its own
    lanes' cursors and accumulates into per-warp or summable state — so the
    replay loop is embarrassingly parallel.  This module owns only the
    scheduling: it shards item indices [0..n-1] over a {e persistent} OCaml 5
    domain pool, gives every worker a private shard state (built {e inside}
    the worker, so all mutable replay state is domain-confined by
    construction), and hands the shards back in a deterministic order for
    the caller to reduce.

    Two schedules:

    - {!Static} (default): worker [k] owns the contiguous chunk of
      indices [k*ceil(n/d) ..]; zero coordination, perfect for uniform
      warps.
    - {!Dynamic}: workers pull the next index from a shared atomic
      counter; better when warp costs are skewed (one giant warp plus
      many small ones), at the price of one fetch-and-add per item.

    Under both schedules every worker processes its indices in ascending
    order, which keeps failure semantics deterministic: if items raise,
    the exception re-raised after the join is the one from the {e lowest}
    failing index — exactly the exception a sequential left-to-right loop
    would have surfaced (later items may additionally have run, but their
    shards are discarded by the raise). *)

module Obs = Threadfuser_obs.Obs

type schedule = Static | Dynamic

let schedule_name = function Static -> "static" | Dynamic -> "dynamic"

let schedule_of_string = function
  | "static" -> Some Static
  | "dynamic" -> Some Dynamic
  | _ -> None

(** Domain count for [None]-means-default call sites: [TF_DOMAINS] when
    set to a positive int, else 1 (serial).  Clamped to
    [Domain.recommended_domain_count] so an over-wide request cannot
    oversubscribe the machine. *)
let default_domains () =
  match Sys.getenv_opt "TF_DOMAINS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> min d (Domain.recommended_domain_count ())
      | Some _ | None -> 1)

(* ------------------------------------------------------------------ *)
(* Auto -j: workloads too small to amortize a domain hand-off should not
   pay for domains they cannot feed.  The unit of "work" is whatever the
   caller can count cheaply up front (the analyzer uses total trace
   events); one extra domain is granted per [min_work_per_domain] units,
   so a tiny workload collapses to fewer domains — the reduction is
   grouping-invariant, so the output is byte-identical either way. *)

let default_min_work_per_domain = 20_000

let min_work_per_domain () =
  match Sys.getenv_opt "TF_DOMAINS_MIN_WORK" with
  | None -> default_min_work_per_domain
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some t -> t (* <= 0 disables the heuristic *)
      | None -> default_min_work_per_domain)

let auto_domains ~requested ~items ~work =
  let requested = max 1 requested in
  if requested = 1 then 1
  else
    let items_cap = max 1 items in
    let t = min_work_per_domain () in
    if t <= 0 then min requested items_cap
    else min requested (min items_cap (max 1 (work / t)))

(* ------------------------------------------------------------------ *)
(* The persistent helper-domain pool.

   Spawning a domain costs tens of microseconds plus a minor-heap's worth
   of allocation — per analysis that fixed cost swamped small workloads
   (see BENCH_analyzer_par.json history).  Instead the process keeps ONE
   pool of helper domains that park on a condition variable between
   fork-join sections; a dispatch is a generation bump + broadcast, and
   the calling domain always doubles as worker 0.

   Safety properties:
   - {e exit}: an OCaml 5 process must join every domain it spawned before
     terminating, so the pool registers an [at_exit] hook that stops and
     joins the helpers (idempotent, pid-checked).
   - {e fork}: helper domains do not survive [fork]; a child that inherits
     the parent's pool record would block forever dispatching to ghosts.
     [get] therefore tags the pool with its owner pid and silently
     rebuilds in a forked child.  [quiesce] lets a forking supervisor
     (lib/runner) join the helpers {e before} forking so children start
     single-threaded.
   - {e concurrent callers}: only one domain can coordinate a fork-join at
     a time (serve worker domains may analyze concurrently).  Losers of
     the [try_lock] race — and nested calls from inside a worker — simply
     run every worker index inline in their own domain: the index →
     worker mapping is unchanged, so results are identical, just not
     accelerated. *)

let g_pool_domains =
  Obs.Gauge.make "tf_par_pool_domains"
    ~help:"helper domains parked in the persistent replay pool"

module Pool = struct
  type t = {
    m : Mutex.t; (* protects gen/job/remaining/stop *)
    work : Condition.t; (* helpers park here between jobs *)
    finished : Condition.t; (* coordinator waits for remaining = 0 *)
    coord : Mutex.t; (* held by the domain coordinating a fork-join *)
    mutable helpers : unit Domain.t list;
    mutable n_helpers : int; (* helper slots are 1..n_helpers *)
    mutable gen : int;
    mutable job : (int -> unit) option;
    mutable remaining : int;
    mutable stop : bool;
  }

  let create () =
    {
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      coord = Mutex.create ();
      helpers = [];
      n_helpers = 0;
      gen = 0;
      job = None;
      remaining = 0;
      stop = false;
    }

  let helper_loop t slot =
    let last = ref 0 and running = ref true in
    while !running do
      Mutex.lock t.m;
      while t.gen = !last && not t.stop do
        Condition.wait t.work t.m
      done;
      if t.stop then begin
        running := false;
        Mutex.unlock t.m
      end
      else begin
        last := t.gen;
        let j = t.job in
        Mutex.unlock t.m;
        (* the job closure is exception-proofed by the dispatcher; the
           backstop only guards pool invariants *)
        (match j with Some f -> ( try f slot with _ -> ()) | None -> ());
        Mutex.lock t.m;
        t.remaining <- t.remaining - 1;
        if t.remaining = 0 then Condition.signal t.finished;
        Mutex.unlock t.m
      end
    done

  let max_helpers () = max 0 (Domain.recommended_domain_count () - 1)

  (* called with [coord] held *)
  let ensure_helpers t wanted =
    let cap = min wanted (max_helpers ()) in
    while t.n_helpers < cap do
      let slot = t.n_helpers + 1 in
      t.helpers <- Domain.spawn (fun () -> helper_loop t slot) :: t.helpers;
      t.n_helpers <- slot;
      Obs.Gauge.set g_pool_domains t.n_helpers
    done

  (* Run [body k] for k in 0..workers-1, caller as worker 0.  Helpers
     cover slots 1..n_helpers; the caller also covers any slot the
     capped pool cannot.  Every slot runs exactly once whatever the pool
     state, so callers may rely on slot coverage for correctness and on
     the pool only for speed. *)
  let run t ~workers (body : int -> unit) =
    if workers <= 1 then body 0
    else if not (Mutex.try_lock t.coord) then
      (* pool busy (another session/domain is coordinating): inline *)
      for k = 0 to workers - 1 do
        body k
      done
    else
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.coord)
        (fun () ->
          ensure_helpers t (workers - 1);
          if t.n_helpers = 0 then
            for k = 0 to workers - 1 do
              body k
            done
          else begin
            Mutex.lock t.m;
            t.job <- Some (fun slot -> if slot < workers then body slot);
            t.gen <- t.gen + 1;
            t.remaining <- t.n_helpers;
            Condition.broadcast t.work;
            Mutex.unlock t.m;
            body 0;
            (* slots beyond the helper cap fall back to the caller *)
            for k = t.n_helpers + 1 to workers - 1 do
              body k
            done;
            Mutex.lock t.m;
            while t.remaining > 0 do
              Condition.wait t.finished t.m
            done;
            t.job <- None;
            Mutex.unlock t.m
          end)

  let shutdown t =
    Mutex.lock t.coord;
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    List.iter Domain.join t.helpers;
    t.helpers <- [];
    t.n_helpers <- 0;
    Obs.Gauge.set g_pool_domains 0;
    Mutex.unlock t.coord
end

(* the process-global pool, keyed by owner pid (see the fork note above) *)
let global : (int * Pool.t) option ref = ref None

let global_mu = Mutex.create ()

let at_exit_registered = ref false

let quiesce () =
  Mutex.lock global_mu;
  let doomed =
    match !global with
    | Some (pid, t) when pid = Unix.getpid () ->
        global := None;
        Some t
    | Some _ ->
        (* forked child: the helpers only ever existed in the parent *)
        global := None;
        None
    | None -> None
  in
  Mutex.unlock global_mu;
  Option.iter Pool.shutdown doomed

let get_pool () =
  Mutex.lock global_mu;
  let t =
    match !global with
    | Some (pid, t) when pid = Unix.getpid () -> t
    | _ ->
        let t = Pool.create () in
        global := Some (Unix.getpid (), t);
        if not !at_exit_registered then begin
          at_exit_registered := true;
          Stdlib.at_exit quiesce
        end;
        t
  in
  Mutex.unlock global_mu;
  t

let pool_domains () =
  Mutex.lock global_mu;
  let n =
    match !global with
    | Some (pid, t) when pid = Unix.getpid () -> t.Pool.n_helpers
    | _ -> 0
  in
  Mutex.unlock global_mu;
  n

(* ------------------------------------------------------------------ *)

(* The first exception each worker hit, tagged with its item index; the
   join re-raises the lowest-index one with its original backtrace.
   [f_index = -1] marks a failure of [init] itself (it precedes every
   item the worker would have run). *)
type failure = {
  f_index : int;
  f_exn : exn;
  f_bt : Printexc.raw_backtrace;
}

let reraise_lowest (failures : failure option array) =
  match
    Array.fold_left
      (fun acc f ->
        match (acc, f) with
        | None, f -> f
        | Some _, None -> acc
        | Some a, Some b -> if b.f_index < a.f_index then f else acc)
      None failures
  with
  | None -> ()
  | Some f -> Printexc.raise_with_backtrace f.f_exn f.f_bt

(** [map_shards ~domains ~schedule ~n ~init ~item] processes indices
    [0..n-1] with up to [domains] workers.  Each worker runs
    [init ()] {e in its own domain} to build a private shard, then
    [item shard i] for every index it owns (ascending), and the shards
    come back ordered by worker id — merge them in that order and any
    order-sensitive reduction stays deterministic at every [domains].

    A worker stops at its first exception; after all workers join, the
    exception of the lowest failing index is re-raised.  [domains <= 1]
    (or [n <= 1]) runs inline in the calling domain with no spawns —
    byte-for-byte today's sequential behaviour. *)
let map_shards ~domains ~schedule ~n ~(init : unit -> 'shard)
    ~(item : 'shard -> int -> unit) : 'shard list =
  let workers = max 1 (min domains n) in
  if workers = 1 then begin
    let shard = init () in
    (try
       for i = 0 to n - 1 do
         item shard i
       done
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       Printexc.raise_with_backtrace e bt);
    [ shard ]
  end
  else begin
    let next = Atomic.make 0 in
    (* static chunking: worker k owns [k*chunk, min ((k+1)*chunk, n)) *)
    let chunk = (n + workers - 1) / workers in
    let failures : failure option array = Array.make workers None in
    let shards : 'shard option array = Array.make workers None in
    let run_worker k =
      let fail i e =
        failures.(k) <-
          Some { f_index = i; f_exn = e; f_bt = Printexc.get_raw_backtrace () }
      in
      match init () with
      | exception e -> fail (-1) e
      | shard -> (
          shards.(k) <- Some shard;
          match schedule with
          | Static ->
              let lo = k * chunk and hi = min n ((k + 1) * chunk) in
              let i = ref lo in
              while !i < hi && failures.(k) = None do
                (try item shard !i with e -> fail !i e);
                incr i
              done
          | Dynamic ->
              let continue = ref true in
              while !continue do
                let i = Atomic.fetch_and_add next 1 in
                if i >= n then continue := false
                else
                  try item shard i
                  with e ->
                    fail i e;
                    continue := false
              done)
    in
    Pool.run (get_pool ()) ~workers run_worker;
    reraise_lowest failures;
    (* no failure → every worker stored its shard *)
    Array.to_list shards |> List.map Option.get
  end

(** [parallel_for ~domains ~n body] runs [body i] for every index in
    [0..n-1], statically chunked over the pool; [body] instances must
    touch disjoint state (the simulators index disjoint SMs/cores).
    Exceptions re-raise as in {!map_shards}.  [domains <= 1] runs
    inline. *)
let parallel_for ~domains ~n (body : int -> unit) =
  let workers = max 1 (min domains n) in
  if workers = 1 then
    for i = 0 to n - 1 do
      body i
    done
  else begin
    let chunk = (n + workers - 1) / workers in
    let failures : failure option array = Array.make workers None in
    Pool.run (get_pool ()) ~workers (fun k ->
        let lo = k * chunk and hi = min n ((k + 1) * chunk) in
        let i = ref lo in
        while !i < hi && failures.(k) = None do
          (try body !i
           with e ->
             failures.(k) <-
               Some
                 {
                   f_index = !i;
                   f_exn = e;
                   f_bt = Printexc.get_raw_backtrace ();
                 });
          incr i
        done);
    reraise_lowest failures
  end
