(** Domain-parallel warp replay: the fan-out/fan-in engine behind
    [Analyzer.options.domains] (docs/performance.md).

    Warps are independent after formation — each replays against its own
    lanes' cursors and accumulates into per-warp or summable state — so the
    replay loop is embarrassingly parallel.  This module owns only the
    scheduling: it shards item indices [0..n-1] over an OCaml 5 domain
    pool, gives every worker a private shard state (built {e inside} the
    worker, so all mutable replay state is domain-confined by
    construction), and hands the shards back in a deterministic order for
    the caller to reduce.

    Two schedules:

    - {!Static} (default): worker [k] owns the contiguous chunk of
      indices [k*ceil(n/d) ..]; zero coordination, perfect for uniform
      warps.
    - {!Dynamic}: workers pull the next index from a shared atomic
      counter; better when warp costs are skewed (one giant warp plus
      many small ones), at the price of one fetch-and-add per item.

    Under both schedules every worker processes its indices in ascending
    order, which keeps failure semantics deterministic: if items raise,
    the exception re-raised after the join is the one from the {e lowest}
    failing index — exactly the exception a sequential left-to-right loop
    would have surfaced (later items may additionally have run, but their
    shards are discarded by the raise). *)

type schedule = Static | Dynamic

let schedule_name = function Static -> "static" | Dynamic -> "dynamic"

let schedule_of_string = function
  | "static" -> Some Static
  | "dynamic" -> Some Dynamic
  | _ -> None

(** Domain count for [None]-means-default call sites: [TF_DOMAINS] when
    set to a positive int, else 1 (serial).  Clamped to
    [Domain.recommended_domain_count] so an over-wide request cannot
    oversubscribe the machine. *)
let default_domains () =
  match Sys.getenv_opt "TF_DOMAINS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> min d (Domain.recommended_domain_count ())
      | Some _ | None -> 1)

(* The first exception each worker hit, tagged with its item index; the
   join re-raises the lowest-index one with its original backtrace. *)
type failure = {
  f_index : int;
  f_exn : exn;
  f_bt : Printexc.raw_backtrace;
}

(** [map_shards ~domains ~schedule ~n ~init ~item] processes indices
    [0..n-1] with up to [domains] workers.  Each worker runs
    [init ()] {e in its own domain} to build a private shard, then
    [item shard i] for every index it owns (ascending), and the shards
    come back ordered by worker id — merge them in that order and any
    order-sensitive reduction stays deterministic at every [domains].

    A worker stops at its first exception; after all workers join, the
    exception of the lowest failing index is re-raised.  [domains <= 1]
    (or [n <= 1]) runs inline in the calling domain with no spawns —
    byte-for-byte today's sequential behaviour. *)
let map_shards ~domains ~schedule ~n ~(init : unit -> 'shard)
    ~(item : 'shard -> int -> unit) : 'shard list =
  let workers = max 1 (min domains n) in
  if workers = 1 then begin
    let shard = init () in
    (try
       for i = 0 to n - 1 do
         item shard i
       done
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       Printexc.raise_with_backtrace e bt);
    [ shard ]
  end
  else begin
    let next = Atomic.make 0 in
    (* static chunking: worker k owns [k*chunk, min ((k+1)*chunk, n)) *)
    let chunk = (n + workers - 1) / workers in
    let failures : failure option array = Array.make workers None in
    let run_worker k =
      let shard = init () in
      let fail i e =
        failures.(k) <-
          Some { f_index = i; f_exn = e; f_bt = Printexc.get_raw_backtrace () }
      in
      (match schedule with
      | Static ->
          let lo = k * chunk and hi = min n ((k + 1) * chunk) in
          let i = ref lo in
          while !i < hi && failures.(k) = None do
            (try item shard !i with e -> fail !i e);
            incr i
          done
      | Dynamic ->
          let continue = ref true in
          while !continue do
            let i = Atomic.fetch_and_add next 1 in
            if i >= n then continue := false
            else
              try item shard i
              with e ->
                fail i e;
                continue := false
          done);
      shard
    in
    (* the calling domain doubles as worker 0 *)
    let spawned =
      List.init (workers - 1) (fun j ->
          Domain.spawn (fun () -> run_worker (j + 1)))
    in
    let shard0 = run_worker 0 in
    let shards = shard0 :: List.map Domain.join spawned in
    (match
       Array.fold_left
         (fun acc f ->
           match (acc, f) with
           | None, f -> f
           | Some _, None -> acc
           | Some a, Some b -> if b.f_index < a.f_index then f else acc)
         None failures
     with
    | None -> ()
    | Some f -> Printexc.raise_with_backtrace f.f_exn f.f_bt);
    shards
  end
