(** Warp-formation (thread-batching) policies (paper §III: "different
    batching algorithms can be explored").

    - [Sequential]: threads [0..W-1] form warp 0, etc. (the paper's
      default);
    - [Strided]: threads dealt round-robin across warps;
    - [Signature_greedy]: threads sorted by a hash of their dynamic
      control-flow prefix so similar threads share a warp — a software
      take on dynamic warp formation. *)

type t = Sequential | Strided | Signature_greedy

val to_string : t -> string

val all : t list

(** Control-flow-prefix hash used by [Signature_greedy]. *)
val signature : ?prefix:int -> Threadfuser_trace.Thread_trace.t -> int

(** [form policy ~warp_size traces] partitions thread ids into warps (the
    last may be partial). *)
val form :
  t -> warp_size:int -> Threadfuser_trace.Thread_trace.t array -> int array array
