(** The ThreadFuser analyzer — the framework's public entry point
    (paper Fig. 3b):

    {v traces -> DCFG -> IPDOM -> warp formation -> SIMT-stack replay
       -> efficiency / divergence report (+ warp traces) v}

    Typical use:

    {[
      let machine = Machine.create prog in
      (* ... write inputs into (Machine.memory machine) ... *)
      let run = Machine.run_workers machine ~worker ~args in
      let result = Analyzer.analyze prog run.Machine.traces in
      Fmt.pr "%a@." Metrics.pp_summary result.Analyzer.report
    ]} *)

type options = {
  warp_size : int;
  batching : Batching.t;
  sync : Emulator.sync_mode;
  reconv : Emulator.reconv_mode;
  gen_warp_trace : bool;  (** also produce the simulator trace *)
  record_timeline : bool;  (** record per-warp occupancy timelines *)
}

(** warp 32, sequential batching, lock serialization on, IPDOM
    reconvergence, no warp-trace generation. *)
val default_options : options

type result = {
  report : Metrics.report;
  warp_trace : Warp_trace.t option;
  timelines : Timeline.t list;  (** in warp order; empty unless recorded *)
  dcfgs : Threadfuser_cfg.Dcfg.t array;
  ipdoms : Threadfuser_cfg.Ipdom.t array;
  options : options;
}

(** Run the full analysis pipeline over a trace set. *)
val analyze :
  ?options:options ->
  Threadfuser_prog.Program.t ->
  Threadfuser_trace.Thread_trace.t array ->
  result
