(** The ThreadFuser analyzer — the framework's public entry point
    (paper Fig. 3b):

    {v traces -> DCFG -> IPDOM -> warp formation -> SIMT-stack replay
       -> efficiency / divergence report (+ warp traces) v}

    Typical use:

    {[
      let machine = Machine.create prog in
      (* ... write inputs into (Machine.memory machine) ... *)
      let run = Machine.run_workers machine ~worker ~args in
      let result = Analyzer.analyze prog run.Machine.traces in
      Fmt.pr "%a@." Metrics.pp_summary result.Analyzer.report
    ]} *)

type options = {
  warp_size : int;
  batching : Batching.t;
  sync : Emulator.sync_mode;
  reconv : Emulator.reconv_mode;
  gen_warp_trace : bool;  (** also produce the simulator trace *)
  record_timeline : bool;  (** record per-warp occupancy timelines *)
  domains : int;
      (** replay worker domains; warps are sharded across an OCaml 5
          domain pool and reduced deterministically, so any value >= 1
          yields byte-identical output (docs/performance.md).  1 =
          sequential replay in the calling domain. *)
  schedule : Par_replay.schedule;
      (** warp-to-domain scheduling policy; {!Par_replay.Static} unless
          warp costs are heavily skewed *)
  auto_domains : bool;
      (** cap [domains] by trace volume ({!Par_replay.auto_domains}) so a
          workload too small to amortize domain hand-offs replays on
          fewer domains than requested.  The reduction is
          grouping-invariant, so output is byte-identical either way;
          only the wall-clock changes.  On by default. *)
}

(** warp 32, sequential batching, lock serialization on, IPDOM
    reconvergence, no warp-trace generation, 1 replay domain (static
    schedule, auto -j cap on). *)
val default_options : options

(** One folded call stack of the replay flamegraph ({!result.flame}):
    frames root-first, weighted both by warp lock-step issues and by
    lost-lane issue slots (inactive lanes x issues under that stack). *)
type flame_stack = {
  frames : string list;  (** function names, root first *)
  fl_issues : int;
  fl_lost : int;
}

type result = {
  report : Metrics.report;
  warp_trace : Warp_trace.t option;
  timelines : Timeline.t list;  (** in warp order; empty unless recorded *)
  flame : flame_stack list;
      (** folded replay stacks, by descending issue weight *)
  dcfgs : Threadfuser_cfg.Dcfg.t array;
  ipdoms : Threadfuser_cfg.Ipdom.t array;
  options : options;
}

(** Run the full analysis pipeline over a trace set.  Trusts its input:
    malformed traces raise ({!Emulator.Emulation_error} or the typed
    [Tf_error.Error]).  Use {!analyze_checked} for untrusted traces. *)
val analyze :
  ?options:options ->
  Threadfuser_prog.Program.t ->
  Threadfuser_trace.Thread_trace.t array ->
  result

(** Result of the checked pipeline: a (possibly partial) analysis plus
    everything it refused to analyze.  [result.report.coverage] accounts
    for the quarantined threads, so partial reports are explicit. *)
type checked = {
  result : result;
  diagnostics : Threadfuser_util.Tf_error.diagnostic list;
      (** validation diagnostics (including warnings) + replay verdicts *)
  quarantined : (int * Threadfuser_util.Tf_error.diagnostic) list;
      (** (tid, why) per thread excluded from the report *)
}

(** Fuel the checked pipeline gives each replay when none is supplied
    (proportional to the trace set's event count). *)
val default_fuel : Threadfuser_trace.Thread_trace.t array -> int

(** Graceful-degradation variant of {!analyze} for untrusted traces
    (docs/robustness.md): validates every thread against the program
    ({!Threadfuser_trace.Validate}), quarantines threads that fail,
    replays the surviving warp lanes under a fuel watchdog, and
    quarantines the lanes of any warp whose replay ends in a typed
    [Timeout] / [Deadlock] / desync verdict instead of aborting.  Never
    raises on malformed trace data. *)
val analyze_checked :
  ?options:options ->
  ?fuel:int ->
  Threadfuser_prog.Program.t ->
  Threadfuser_trace.Thread_trace.t array ->
  checked

(** {1 Streaming sessions}

    Bounded-memory incremental analysis: feed {!Threadfuser_trace.Stream}
    chunks as they arrive, then {!Session.finish} for a report that is
    byte-identical to {!analyze_checked} over the same traces — at any
    chunking, any session budget and any [options.domains].  Memory is
    bounded by the per-session budget, not the trace length: ingested
    threads are re-framed into a spool that spills to a temp file, and
    the finishing replay streams warp-aligned batches of roughly half a
    budget back out of it.  Used by [threadfuser serve]
    (docs/robustness.md §8). *)
module Session : sig
  type t

  (** Default per-session budget (64 MiB). *)
  val default_budget : int

  (** [create prog] starts a session.  [budget_bytes] bounds both the
      in-memory spool tail and a single stream frame (at least 64 KiB);
      [tmp_dir] hosts the spill file (default: [Filename.temp_dir_name]).
      @raise Invalid_argument if [budget_bytes <= 0] or
        [options.batching] is not [Sequential] (other policies need every
        trace at once, which streaming cannot provide). *)
  val create :
    ?options:options ->
    ?fuel:int ->
    ?budget_bytes:int ->
    ?tmp_dir:string ->
    Threadfuser_prog.Program.t ->
    t

  (** Feed a chunk of a {!Threadfuser_trace.Stream}-encoded trace set
      (magic + thread frames + end frame), any chunk boundaries.  Decoded
      threads are validated and spooled immediately.  Corruption is
      recorded ({!failure}) rather than raised; chunks fed after it are
      discarded, so a hostile stream cannot grow the session. *)
  val feed : t -> ?off:int -> ?len:int -> string -> unit

  (** Ingest an already-decoded thread directly (in-process use). *)
  val add_thread : t -> Threadfuser_trace.Thread_trace.t -> unit

  (** The stream's end frame has been consumed. *)
  val input_done : t -> bool

  (** The sticky stream-corruption diagnostic, if any. *)
  val failure : t -> Threadfuser_util.Tf_error.diagnostic option

  val threads_ingested : t -> int
  val bytes_ingested : t -> int

  (** Bytes currently held in memory (decoder reassembly + spool tail) —
      the quantity the budget bounds. *)
  val buffered_bytes : t -> int

  (** Bytes moved to the spill file so far. *)
  val spilled_bytes : t -> int

  (** Rolling report over the threads ingested so far (the warp-trace and
      timeline side products are skipped).  After {!finish}, returns the
      final report. *)
  val snapshot : t -> Metrics.report

  (** Run the analysis over everything ingested.  Quarantine, coverage,
      fuel defaulting and crash fallback match {!analyze_checked} exactly;
      a stream {!failure} is prepended to [diagnostics].  Idempotent; the
      spool is released. *)
  val finish : t -> checked

  (** Release the spool and temp file.  Safe to call at any point (e.g.
      on a dropped connection); a finished session keeps its result. *)
  val close : t -> unit
end
