(** Memory-coalescing model (paper §III, Fig. 4).

    Accesses from the active lanes of one warp-level memory instruction are
    merged into the minimal set of 32-byte transactions, exactly as GPU
    load/store units do.  Transactions are counted separately per address
    segment (stack / heap / global) so the analyzer can reproduce the
    paper's heap-vs-stack divergence breakdown (Fig. 10). *)

module Layout = Threadfuser_machine.Layout
module Obs = Threadfuser_obs.Obs

let transaction_bytes = 32

(* Coalescing instruments: fully-coalesced vs serialized warp-level memory
   instructions, total 32 B transactions, and the per-instruction
   transaction-count distribution.  One branch each when disabled. *)
let c_mem_instrs =
  Obs.Counter.make "tf_mem_instrs_total"
    ~help:"warp-level memory instructions coalesced"
let c_mem_txns =
  Obs.Counter.make "tf_mem_transactions_total"
    ~help:"32B memory transactions after coalescing"
let c_mem_coalesced =
  Obs.Counter.make "tf_mem_coalesced_total"
    ~help:"warp-level memory instructions that coalesced to one transaction"
let c_mem_serialized =
  Obs.Counter.make "tf_mem_serialized_total"
    ~help:"warp-level memory instructions needing one transaction per lane"
let h_txns_per_instr =
  Obs.Histogram.make "tf_txns_per_mem_instr"
    ~help:"32B transactions per warp-level memory instruction"

(** Distinct 32 B lines covered by [(addr, size)] accesses. *)
let count_transactions (accesses : (int * int) list) =
  let lines = Hashtbl.create 8 in
  List.iter
    (fun (addr, size) ->
      let first = addr / transaction_bytes
      and last = (addr + max 1 size - 1) / transaction_bytes in
      for line = first to last do
        Hashtbl.replace lines line ()
      done)
    accesses;
  Hashtbl.length lines

type seg_counters = {
  mutable ld_txns : int;
  mutable st_txns : int;
  mutable ld_issues : int; (* warp-level load instructions touching the segment *)
  mutable st_issues : int;
  mutable ld_lanes : int; (* per-lane accesses *)
  mutable st_lanes : int;
}

let seg_counters () =
  { ld_txns = 0; st_txns = 0; ld_issues = 0; st_issues = 0; ld_lanes = 0; st_lanes = 0 }

(* Per-access-site attribution (docs/observability.md): every warp-level
   memory instruction is keyed by its originating instruction site
   [(fid, block, ioff)] and charged the transactions it generated beyond
   the perfectly-coalesced minimum, split by address segment.  The blame
   report ranks sites by that excess. *)
type site_counters = {
  mutable a_issues : int; (* warp-level load/store instructions at the site *)
  mutable a_txns : int; (* 32 B transactions generated *)
  mutable a_min_txns : int; (* perfectly-coalesced minimum *)
  mutable a_stack_excess : int; (* excess transactions per segment *)
  mutable a_heap_excess : int;
  mutable a_global_excess : int;
}

type t = {
  stack : seg_counters;
  heap : seg_counters;
  global : seg_counters;
  sites : (int * int * int, site_counters) Hashtbl.t;
}

let create () =
  {
    stack = seg_counters ();
    heap = seg_counters ();
    global = seg_counters ();
    sites = Hashtbl.create 64;
  }

let site_counters t key =
  match Hashtbl.find_opt t.sites key with
  | Some c -> c
  | None ->
      let c =
        {
          a_issues = 0;
          a_txns = 0;
          a_min_txns = 0;
          a_stack_excess = 0;
          a_heap_excess = 0;
          a_global_excess = 0;
        }
      in
      Hashtbl.add t.sites key c;
      c

(** Perfectly-coalesced floor for an access set: the 32 B lines needed if
    the same bytes were laid out contiguously. *)
let min_transactions (accesses : (int * int) list) =
  let bytes = List.fold_left (fun acc (_, size) -> acc + max 1 size) 0 accesses in
  max 1 ((bytes + transaction_bytes - 1) / transaction_bytes)

let seg t (segment : Layout.segment) =
  match segment with
  | Layout.Stack -> t.stack
  | Layout.Heap -> t.heap
  | Layout.Global -> t.global

(** Record one warp-level memory instruction: [lanes] is the (addr, size)
    list over active lanes.  Accesses are split by segment and coalesced
    within each; returns the total transaction count.  [site] attributes
    the instruction (and any transactions beyond the perfectly-coalesced
    minimum) to its originating [(fid, block, ioff)] instruction site. *)
let record t ~is_store ?site (lanes : (int * int) list) =
  let by_seg = [ (Layout.Stack, ref []); (Layout.Heap, ref []); (Layout.Global, ref []) ] in
  List.iter
    (fun (addr, size) ->
      let cell = List.assoc (Layout.segment_of addr) by_seg in
      cell := (addr, size) :: !cell)
    lanes;
  let site_cell =
    match site with
    | None -> None
    | Some key ->
        let c = site_counters t key in
        c.a_issues <- c.a_issues + 1;
        Some c
  in
  List.fold_left
    (fun total (segment, cell) ->
      match !cell with
      | [] -> total
      | accesses ->
          let txns = count_transactions accesses in
          (match site_cell with
          | None -> ()
          | Some c ->
              let min_txns = min_transactions accesses in
              let excess = max 0 (txns - min_txns) in
              c.a_txns <- c.a_txns + txns;
              c.a_min_txns <- c.a_min_txns + min_txns;
              (match segment with
              | Layout.Stack -> c.a_stack_excess <- c.a_stack_excess + excess
              | Layout.Heap -> c.a_heap_excess <- c.a_heap_excess + excess
              | Layout.Global -> c.a_global_excess <- c.a_global_excess + excess));
          if !Obs.enabled then begin
            let lanes = List.length accesses in
            Obs.Counter.incr c_mem_instrs;
            Obs.Counter.add c_mem_txns txns;
            Obs.Histogram.observe h_txns_per_instr (float_of_int txns);
            if txns = 1 then Obs.Counter.incr c_mem_coalesced
            else if txns >= lanes && lanes > 1 then begin
              (* worst case: the instruction degenerated to one transaction
                 per lane — surface it on the memory track *)
              Obs.Counter.incr c_mem_serialized;
              Obs.instant ~track:Obs.memory_track "serialized access"
                ~args:
                  [
                    ("segment", Layout.segment_name segment);
                    ("txns", string_of_int txns);
                    ("lanes", string_of_int lanes);
                    ("store", string_of_bool is_store);
                  ]
            end
          end;
          let c = seg t segment in
          if is_store then begin
            c.st_txns <- c.st_txns + txns;
            c.st_issues <- c.st_issues + 1;
            c.st_lanes <- c.st_lanes + List.length accesses
          end
          else begin
            c.ld_txns <- c.ld_txns + txns;
            c.ld_issues <- c.ld_issues + 1;
            c.ld_lanes <- c.ld_lanes + List.length accesses
          end;
          total + txns)
    0 by_seg

let totals t =
  let f c = (c.ld_txns + c.st_txns, c.ld_issues + c.st_issues) in
  let a, b = f t.stack and c, d = f t.heap and e, g = f t.global in
  (a + c + e, b + d + g)

(** Mean 32 B transactions per warp-level load/store in a segment. *)
let txns_per_instr c =
  let issues = c.ld_issues + c.st_issues in
  if issues = 0 then 0.0
  else float_of_int (c.ld_txns + c.st_txns) /. float_of_int issues
