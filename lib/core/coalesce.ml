(** Memory-coalescing model (paper §III, Fig. 4).

    Accesses from the active lanes of one warp-level memory instruction are
    merged into the minimal set of 32-byte transactions, exactly as GPU
    load/store units do.  Transactions are counted separately per address
    segment (stack / heap / global) so the analyzer can reproduce the
    paper's heap-vs-stack divergence breakdown (Fig. 10). *)

module Layout = Threadfuser_machine.Layout
module Obs = Threadfuser_obs.Obs

let transaction_bytes = 32

(* Coalescing instruments: fully-coalesced vs serialized warp-level memory
   instructions, total 32 B transactions, and the per-instruction
   transaction-count distribution.  One branch each when disabled. *)
let c_mem_instrs =
  Obs.Counter.make "tf_mem_instrs_total"
    ~help:"warp-level memory instructions coalesced"
let c_mem_txns =
  Obs.Counter.make "tf_mem_transactions_total"
    ~help:"32B memory transactions after coalescing"
let c_mem_coalesced =
  Obs.Counter.make "tf_mem_coalesced_total"
    ~help:"warp-level memory instructions that coalesced to one transaction"
let c_mem_serialized =
  Obs.Counter.make "tf_mem_serialized_total"
    ~help:"warp-level memory instructions needing one transaction per lane"
let h_txns_per_instr =
  Obs.Histogram.make "tf_txns_per_mem_instr"
    ~help:"32B transactions per warp-level memory instruction"

(** Distinct 32 B lines covered by [(addr, size)] accesses. *)
let count_transactions (accesses : (int * int) list) =
  let lines = Hashtbl.create 8 in
  List.iter
    (fun (addr, size) ->
      let first = addr / transaction_bytes
      and last = (addr + max 1 size - 1) / transaction_bytes in
      for line = first to last do
        Hashtbl.replace lines line ()
      done)
    accesses;
  Hashtbl.length lines

type seg_counters = {
  mutable ld_txns : int;
  mutable st_txns : int;
  mutable ld_issues : int; (* warp-level load instructions touching the segment *)
  mutable st_issues : int;
  mutable ld_lanes : int; (* per-lane accesses *)
  mutable st_lanes : int;
}

let seg_counters () =
  { ld_txns = 0; st_txns = 0; ld_issues = 0; st_issues = 0; ld_lanes = 0; st_lanes = 0 }

(* Per-access-site attribution (docs/observability.md): every warp-level
   memory instruction is keyed by its originating instruction site
   [(fid, block, ioff)] and charged the transactions it generated beyond
   the perfectly-coalesced minimum, split by address segment.  The blame
   report ranks sites by that excess. *)
type site_counters = {
  mutable a_issues : int; (* warp-level load/store instructions at the site *)
  mutable a_txns : int; (* 32 B transactions generated *)
  mutable a_min_txns : int; (* perfectly-coalesced minimum *)
  mutable a_stack_excess : int; (* excess transactions per segment *)
  mutable a_heap_excess : int;
  mutable a_global_excess : int;
}

(* Per-segment staging for the allocation-free {!record_lanes} entry
   point: the current instruction's accesses split by address segment.
   Growable — a warp-level instruction usually has at most one access per
   lane, but cracked instructions may carry more. *)
type seg_scratch = {
  mutable x_addr : int array;
  mutable x_size : int array;
  mutable x_n : int;
}

type t = {
  stack : seg_counters;
  heap : seg_counters;
  global : seg_counters;
  sites : (int * int * int, site_counters) Hashtbl.t;
  xs : seg_scratch array; (* staging per segment: stack, heap, global *)
  mutable lines_buf : int array; (* 32 B line ids of one access set *)
  evt_seen : (int, unit) Hashtbl.t;
      (* sites whose "serialized access" instant already fired this warp
         (see [new_warp]); unused under [Obs.full_events] *)
}

let seg_scratch () = { x_addr = Array.make 64 0; x_size = Array.make 64 0; x_n = 0 }

let create () =
  {
    stack = seg_counters ();
    heap = seg_counters ();
    global = seg_counters ();
    sites = Hashtbl.create 64;
    xs = [| seg_scratch (); seg_scratch (); seg_scratch () |];
    lines_buf = Array.make 128 0;
    evt_seen = Hashtbl.create 32;
  }

(* Called when a warp's replay starts: per-occurrence instants are
   thinned to the first occurrence per (warp, site) unless
   [Obs.full_events] — warp-confined thinning state keeps the surviving
   event set identical at every domain count (counters stay exact). *)
let new_warp t = Hashtbl.reset t.evt_seen

let site_counters t key =
  match Hashtbl.find_opt t.sites key with
  | Some c -> c
  | None ->
      let c =
        {
          a_issues = 0;
          a_txns = 0;
          a_min_txns = 0;
          a_stack_excess = 0;
          a_heap_excess = 0;
          a_global_excess = 0;
        }
      in
      Hashtbl.add t.sites key c;
      c

(** Perfectly-coalesced floor for an access set: the 32 B lines needed if
    the same bytes were laid out contiguously. *)
let min_transactions (accesses : (int * int) list) =
  let bytes = List.fold_left (fun acc (_, size) -> acc + max 1 size) 0 accesses in
  max 1 ((bytes + transaction_bytes - 1) / transaction_bytes)

let seg t (segment : Layout.segment) =
  match segment with
  | Layout.Stack -> t.stack
  | Layout.Heap -> t.heap
  | Layout.Global -> t.global

let segment_of_index = function
  | 0 -> Layout.Stack
  | 1 -> Layout.Heap
  | _ -> Layout.Global

let seg_index = function Layout.Stack -> 0 | Layout.Heap -> 1 | Layout.Global -> 2

let push_scratch (x : seg_scratch) addr size =
  let n = x.x_n in
  if n = Array.length x.x_addr then begin
    let grow a =
      let b = Array.make (2 * n) 0 in
      Array.blit a 0 b 0 n;
      b
    in
    x.x_addr <- grow x.x_addr;
    x.x_size <- grow x.x_size
  end;
  x.x_addr.(n) <- addr;
  x.x_size.(n) <- size;
  x.x_n <- n + 1

(* Distinct 32 B lines of the staged accesses, allocation-free: gather the
   covered line ids into [t.lines_buf], insertion-sort the prefix (a warp
   touches a handful of lines), count distinct.  Same result as the
   Hashtbl-based {!count_transactions}. *)
let count_transactions_scratch t (x : seg_scratch) =
  let nl = ref 0 in
  for i = 0 to x.x_n - 1 do
    let first = x.x_addr.(i) / transaction_bytes
    and last = (x.x_addr.(i) + max 1 x.x_size.(i) - 1) / transaction_bytes in
    for line = first to last do
      if !nl = Array.length t.lines_buf then begin
        let b = Array.make (2 * !nl) 0 in
        Array.blit t.lines_buf 0 b 0 !nl;
        t.lines_buf <- b
      end;
      t.lines_buf.(!nl) <- line;
      incr nl
    done
  done;
  let buf = t.lines_buf in
  for i = 1 to !nl - 1 do
    let v = buf.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && buf.(!j) > v do
      buf.(!j + 1) <- buf.(!j);
      decr j
    done;
    buf.(!j + 1) <- v
  done;
  let distinct = ref 0 in
  for i = 0 to !nl - 1 do
    if i = 0 || buf.(i) <> buf.(i - 1) then incr distinct
  done;
  !distinct

(** Record one warp-level memory instruction from parallel arrays:
    [addrs]/[sizes][0..n-1] are the active lanes' accesses.  The
    allocation-free hot-path twin of {!record}: identical accounting
    (segment split, site attribution, Obs instruments), returns the total
    transaction count. *)
let record_lanes t ~is_store ?site ~n (addrs : int array) (sizes : int array) =
  t.xs.(0).x_n <- 0;
  t.xs.(1).x_n <- 0;
  t.xs.(2).x_n <- 0;
  for i = 0 to n - 1 do
    push_scratch t.xs.(seg_index (Layout.segment_of addrs.(i))) addrs.(i) sizes.(i)
  done;
  let site_cell =
    match site with
    | None -> None
    | Some key ->
        let c = site_counters t key in
        c.a_issues <- c.a_issues + 1;
        Some c
  in
  let total = ref 0 in
  for si = 0 to 2 do
    let x = t.xs.(si) in
    if x.x_n > 0 then begin
      let segment = segment_of_index si in
      let txns = count_transactions_scratch t x in
      (match site_cell with
      | None -> ()
      | Some c ->
          let bytes = ref 0 in
          for i = 0 to x.x_n - 1 do
            bytes := !bytes + max 1 x.x_size.(i)
          done;
          let min_txns = max 1 ((!bytes + transaction_bytes - 1) / transaction_bytes) in
          let excess = max 0 (txns - min_txns) in
          c.a_txns <- c.a_txns + txns;
          c.a_min_txns <- c.a_min_txns + min_txns;
          (match segment with
          | Layout.Stack -> c.a_stack_excess <- c.a_stack_excess + excess
          | Layout.Heap -> c.a_heap_excess <- c.a_heap_excess + excess
          | Layout.Global -> c.a_global_excess <- c.a_global_excess + excess));
      if !Obs.enabled then begin
        let lanes = x.x_n in
        Obs.Counter.incr c_mem_instrs;
        Obs.Counter.add c_mem_txns txns;
        Obs.Histogram.observe h_txns_per_instr (float_of_int txns);
        if txns = 1 then Obs.Counter.incr c_mem_coalesced
        else if txns >= lanes && lanes > 1 then begin
          (* worst case: the instruction degenerated to one transaction
             per lane — surface it on the memory track *)
          Obs.Counter.incr c_mem_serialized;
          let key =
            match site with
            | Some (fid, block, ioff) ->
                (fid lsl 40) lor (block lsl 20) lor ioff
            | None -> -1
          in
          if
            !Obs.full_events
            || (not (Hashtbl.mem t.evt_seen key))
               && begin
                    Hashtbl.add t.evt_seen key ();
                    true
                  end
          then
            Obs.instant ~track:Obs.memory_track "serialized access"
            ~args:
              [
                ("segment", Layout.segment_name segment);
                ("txns", Obs.itos txns);
                ("lanes", Obs.itos lanes);
                ("store", string_of_bool is_store);
              ]
        end
      end;
      let c = seg t segment in
      if is_store then begin
        c.st_txns <- c.st_txns + txns;
        c.st_issues <- c.st_issues + 1;
        c.st_lanes <- c.st_lanes + x.x_n
      end
      else begin
        c.ld_txns <- c.ld_txns + txns;
        c.ld_issues <- c.ld_issues + 1;
        c.ld_lanes <- c.ld_lanes + x.x_n
      end;
      total := !total + txns
    end
  done;
  !total

(** Record one warp-level memory instruction: [lanes] is the (addr, size)
    list over active lanes.  Convenience wrapper over {!record_lanes} for
    tests and cold call sites. *)
let record t ~is_store ?site (lanes : (int * int) list) =
  let n = List.length lanes in
  let addrs = Array.make (max n 1) 0 and sizes = Array.make (max n 1) 0 in
  List.iteri
    (fun i (a, s) ->
      addrs.(i) <- a;
      sizes.(i) <- s)
    lanes;
  record_lanes t ~is_store ?site ~n addrs sizes

(** Fold [src]'s counters into [dst] — the shard reduction of the
    domain-parallel replay (see Par_replay): every field is a sum, so the
    merged totals equal a sequential run's. *)
let merge_into ~dst src =
  let merge_seg (d : seg_counters) (s : seg_counters) =
    d.ld_txns <- d.ld_txns + s.ld_txns;
    d.st_txns <- d.st_txns + s.st_txns;
    d.ld_issues <- d.ld_issues + s.ld_issues;
    d.st_issues <- d.st_issues + s.st_issues;
    d.ld_lanes <- d.ld_lanes + s.ld_lanes;
    d.st_lanes <- d.st_lanes + s.st_lanes
  in
  merge_seg dst.stack src.stack;
  merge_seg dst.heap src.heap;
  merge_seg dst.global src.global;
  Hashtbl.iter
    (fun key (c : site_counters) ->
      let d = site_counters dst key in
      d.a_issues <- d.a_issues + c.a_issues;
      d.a_txns <- d.a_txns + c.a_txns;
      d.a_min_txns <- d.a_min_txns + c.a_min_txns;
      d.a_stack_excess <- d.a_stack_excess + c.a_stack_excess;
      d.a_heap_excess <- d.a_heap_excess + c.a_heap_excess;
      d.a_global_excess <- d.a_global_excess + c.a_global_excess)
    src.sites

let totals t =
  let f c = (c.ld_txns + c.st_txns, c.ld_issues + c.st_issues) in
  let a, b = f t.stack and c, d = f t.heap and e, g = f t.global in
  (a + c + e, b + d + g)

(** Mean 32 B transactions per warp-level load/store in a segment. *)
let txns_per_instr c =
  let issues = c.ld_issues + c.st_issues in
  if issues = 0 then 0.0
  else float_of_int (c.ld_txns + c.st_txns) /. float_of_int issues
