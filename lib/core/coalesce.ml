(** Memory-coalescing model (paper §III, Fig. 4).

    Accesses from the active lanes of one warp-level memory instruction are
    merged into the minimal set of 32-byte transactions, exactly as GPU
    load/store units do.  Transactions are counted separately per address
    segment (stack / heap / global) so the analyzer can reproduce the
    paper's heap-vs-stack divergence breakdown (Fig. 10). *)

module Layout = Threadfuser_machine.Layout

let transaction_bytes = 32

(** Distinct 32 B lines covered by [(addr, size)] accesses. *)
let count_transactions (accesses : (int * int) list) =
  let lines = Hashtbl.create 8 in
  List.iter
    (fun (addr, size) ->
      let first = addr / transaction_bytes
      and last = (addr + max 1 size - 1) / transaction_bytes in
      for line = first to last do
        Hashtbl.replace lines line ()
      done)
    accesses;
  Hashtbl.length lines

type seg_counters = {
  mutable ld_txns : int;
  mutable st_txns : int;
  mutable ld_issues : int; (* warp-level load instructions touching the segment *)
  mutable st_issues : int;
  mutable ld_lanes : int; (* per-lane accesses *)
  mutable st_lanes : int;
}

let seg_counters () =
  { ld_txns = 0; st_txns = 0; ld_issues = 0; st_issues = 0; ld_lanes = 0; st_lanes = 0 }

type t = {
  stack : seg_counters;
  heap : seg_counters;
  global : seg_counters;
}

let create () = { stack = seg_counters (); heap = seg_counters (); global = seg_counters () }

let seg t (segment : Layout.segment) =
  match segment with
  | Layout.Stack -> t.stack
  | Layout.Heap -> t.heap
  | Layout.Global -> t.global

(** Record one warp-level memory instruction: [lanes] is the (addr, size)
    list over active lanes.  Accesses are split by segment and coalesced
    within each; returns the total transaction count. *)
let record t ~is_store (lanes : (int * int) list) =
  let by_seg = [ (Layout.Stack, ref []); (Layout.Heap, ref []); (Layout.Global, ref []) ] in
  List.iter
    (fun (addr, size) ->
      let cell = List.assoc (Layout.segment_of addr) by_seg in
      cell := (addr, size) :: !cell)
    lanes;
  List.fold_left
    (fun total (segment, cell) ->
      match !cell with
      | [] -> total
      | accesses ->
          let txns = count_transactions accesses in
          let c = seg t segment in
          if is_store then begin
            c.st_txns <- c.st_txns + txns;
            c.st_issues <- c.st_issues + 1;
            c.st_lanes <- c.st_lanes + List.length accesses
          end
          else begin
            c.ld_txns <- c.ld_txns + txns;
            c.ld_issues <- c.ld_issues + 1;
            c.ld_lanes <- c.ld_lanes + List.length accesses
          end;
          total + txns)
    0 by_seg

let totals t =
  let f c = (c.ld_txns + c.st_txns, c.ld_issues + c.st_issues) in
  let a, b = f t.stack and c, d = f t.heap and e, g = f t.global in
  (a + c + e, b + d + g)

(** Mean 32 B transactions per warp-level load/store in a segment. *)
let txns_per_instr c =
  let issues = c.ld_issues + c.st_issues in
  if issues = 0 then 0.0
  else float_of_int (c.ld_txns + c.st_txns) /. float_of_int issues
