(** Warp-level RISC instruction traces — ThreadFuser's Accel-Sim
    integration format (paper §III, "Generating warp-based instruction
    traces").

    Each element is one micro-op executed by a warp under an active mask.
    CISC instructions have already been cracked ({!Crack}); memory micro-ops
    carry one address per lane (or [-1] for inactive lanes) with stack
    accesses routed to the [Local] space and heap/global accesses to
    [Global], as the paper does when mapping x86 onto the simulator's
    virtual ISA. *)

module Vec = Threadfuser_util.Vec

type space = Local | Global

(* Register ids for dependence tracking: 0..15 architectural, 16 = flags,
   17 = the cracking temporary, -1 = none. *)
let flags_reg = 16

let temp_reg = 17

let reg_file_size = 18

type mem_op = {
  is_store : bool;
  size : int;
  space : space;
  addrs : int array; (* length = warp size; -1 for inactive lanes *)
}

type mop = {
  cls : Threadfuser_isa.Opclass.t;
  dst : int; (* destination register, -1 if none *)
  srcs : int array;
  mem : mem_op option;
}

type entry = { mask : Mask.t; op : mop }

type warp = { warp_id : int; ops : entry array }

type t = { warp_size : int; warps : warp array }

let dummy_entry =
  {
    mask = Mask.empty;
    op = { cls = Threadfuser_isa.Opclass.Ialu; dst = -1; srcs = [||]; mem = None };
  }

(** Builder for one warp's stream. *)
module Builder = struct
  type warp_trace = t

  type t = { warp_size : int; streams : entry Vec.t array }

  let create ~warp_size ~n_warps =
    { warp_size; streams = Array.init n_warps (fun _ -> Vec.create ~capacity:1024 dummy_entry) }

  let emit t ~warp mask op = Vec.push t.streams.(warp) { mask; op }

  let finish t : warp_trace =
    {
      warp_size = t.warp_size;
      warps =
        Array.mapi (fun warp_id v -> { warp_id; ops = Vec.to_array v }) t.streams;
    }
end

let total_ops t =
  Array.fold_left (fun acc w -> acc + Array.length w.ops) 0 t.warps
