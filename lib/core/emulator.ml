(** The SIMT-stack warp emulator — ThreadFuser's analysis core (paper §III).

    Given the per-thread traces of the lanes fused into one warp, the
    emulator replays them in lock-step under the stack-based IPDOM
    reconvergence discipline of real SIMT hardware:

    - a stack entry holds a function context, the next node to execute, the
      node at which the entry pops (its reconvergence point) and an active
      mask;
    - executing a block consumes one [Block] event from every active lane
      and charges one lock-step issue per instruction;
    - when lanes branch to different blocks, the entry retargets to the
      divergent block's immediate post-dominator and one child entry per
      distinct destination is pushed;
    - calls push a function frame whose reconvergence point is the callee's
      virtual exit (the per-function DCFG discipline);
    - lock acquires by lanes contending on the same lock serialize those
      lanes through their critical sections ([Serialize] mode; [Serialize_all]
      serializes every lane, [Ignore_sync] none), exactly one lane active at
      a time, reconverging afterwards through the ordinary divergence
      mechanism (their nearest common post-dominator, i.e. the post-unlock
      continuation).

    The emulator simultaneously drives the coalescing model and (optionally)
    emits the cracked warp-level RISC trace for the cycle simulator. *)

module Program = Threadfuser_prog.Program
module Event = Threadfuser_trace.Event
module Ipdom = Threadfuser_cfg.Ipdom
module Tf_error = Threadfuser_util.Tf_error
module Vec = Threadfuser_util.Vec
module Obs = Threadfuser_obs.Obs
open Threadfuser_isa

(* Analysis-event instruments: divergence and sync behaviour lands on the
   Perfetto "divergence" / "sync" tracks when the collector is on.  Every
   hook below is a single branch when it is off. *)
let c_div_splits =
  Obs.Counter.make "tf_divergence_splits_total"
    ~help:"branch divergences that split a warp"
let c_reconv =
  Obs.Counter.make "tf_reconvergences_total"
    ~help:"SIMT-stack entries popped at their reconvergence point"
let c_lock_serializations =
  Obs.Counter.make "tf_lock_serializations_total"
    ~help:"same-lock contention episodes serialized within a warp"
let c_serialized_instrs =
  Obs.Counter.make "tf_serialized_instrs_total"
    ~help:"thread instructions replayed one-lane-at-a-time under a lock"
let c_barrier_syncs =
  Obs.Counter.make "tf_barrier_syncs_total"
    ~help:"warp-level team-barrier crossings"
let c_blocks =
  Obs.Counter.make "tf_blocks_executed_total"
    ~help:"warp-level basic-block executions"

exception Emulation_error of string

let errf fmt = Fmt.kstr (fun s -> raise (Emulation_error s)) fmt

(* Replay fuel: a watchdog charge consumed on every stack step and every
   serialized event, so a corrupt trace can bound-fail with a typed
   [Tf_error.Timeout] instead of spinning.  [None] (the default) replays
   unbounded, preserving the unchecked [analyze] path exactly. *)
type fuel = int ref option

let burn (fuel : fuel) ~warp_id =
  match fuel with
  | None -> ()
  | Some f ->
      if !f <= 0 then
        Tf_error.fail Tf_error.Timeout
          "warp %d: replay exceeded its fuel bound (livelock watchdog)"
          warp_id;
      decr f

type sync_mode = Serialize | Serialize_all | Ignore_sync

type reconv_mode = Ipdom_reconv | Function_exit_reconv

type config = {
  warp_size : int;
  sync : sync_mode;
  reconv : reconv_mode;
  record_timeline : bool;
}

(* ------------------------------------------------------------------ *)
(* Site-level divergence attribution.  Every split is tagged with the
   branch (or lock) site that caused it, and every block executed inside
   the divergent region charges the site its marginal lost-lane cost:
   (parent active lanes - child active lanes) inactive issue slots per
   lock-step issue, accumulated until the child pops at its reconvergence
   point.  Nested splits chain, so each site is charged exactly the
   divergence it introduced. *)

type site_kind =
  | Branch_site (* lanes branched to different blocks *)
  | Sync_site (* lock serialization scattered the lanes *)

type div_site_cell = {
  mutable sc_splits : int; (* warp splits originating at the site *)
  mutable sc_lost : int; (* inactive-lane issue slots charged to it *)
  mutable sc_kind : site_kind;
}

(* A blame chain entry: (site, lanes lost per lock-step issue). *)
type blame = ((int * int) * int) list

(* Folded-stack accumulation for the replay flamegraph: the warp's call
   stack (leaf first) -> lock-step issues and lost-lane issue slots. *)
type flame_cell = { mutable fc_issues : int; mutable fc_lost : int }

(* Reusable hot-path buffers (the replay allocation diet): one warp
   replays at a time per emulator, so [count_block] and [regroup] borrow
   these instead of allocating per block / per instruction.  The [ld_*] /
   [st_*] triples gather the current instruction's memory accesses
   (growable: a lane may access several addresses per instruction); the
   [grp_*] pair collects the distinct branch targets of a regroup. *)
type scratch = {
  lane_ids : int array; (* active lanes of the current block, ascending *)
  lane_accs : Event.access array array;
  lane_ptr : int array; (* per-active-lane read pointer *)
  mutable n_lanes : int;
  mutable ld_lane : int array;
  mutable ld_addr : int array;
  mutable ld_size : int array;
  mutable n_ld : int;
  mutable st_lane : int array;
  mutable st_addr : int array;
  mutable st_size : int array;
  mutable n_st : int;
  grp_target : int array; (* distinct regroup targets, first-seen order *)
  mutable grp_mask : Mask.t array;
  mutable n_groups : int;
  evt_seen : (int, unit) Hashtbl.t;
      (* replay instants already emitted this warp (cleared per warp);
         keys encode kind|func|block.  Unused under [Obs.full_events]. *)
}

type t = {
  prog : Program.t;
  ipdoms : Ipdom.t array; (* per function *)
  config : config;
  coalesce : Coalesce.t;
  func_issues : int array;
  func_instrs : int array;
  block_issues : int array array; (* per function, per block *)
  block_instrs : int array array;
  mutable issues : int;
  mutable thread_instrs : int;
  mutable lock_acquires : int;
  mutable serializations : int;
  mutable serialized_instrs : int;
  mutable barrier_syncs : int; (* warp-level barrier crossings *)
  mutable wt : Warp_trace.Builder.t option;
  mutable wt_warp : int; (* warp currently being emitted *)
  mutable tl_current : Timeline.sample Vec.t option; (* active warp's samples *)
  mutable timelines : Timeline.t list; (* finished warps, reversed *)
  div_sites : (int * int, div_site_cell) Hashtbl.t; (* (fid, block) sites *)
  flame : (int list, flame_cell) Hashtbl.t; (* call stack (leaf first) *)
  mutable call_stack : int list; (* replaying warp's frames, leaf first *)
  mutable flame_cur : flame_cell option; (* cached cell for [call_stack] *)
  mutable obs_on : bool; (* [!Obs.enabled] cached per replay *)
  scratch : scratch;
}

let create ?(warp_trace : Warp_trace.Builder.t option) prog ipdoms config =
  let ws = config.warp_size in
  {
    prog;
    ipdoms;
    config;
    coalesce = Coalesce.create ();
    func_issues = Array.make (Program.func_count prog) 0;
    func_instrs = Array.make (Program.func_count prog) 0;
    block_issues =
      Array.init (Program.func_count prog) (fun fid ->
          Array.make (Program.block_count (Program.func prog fid)) 0);
    block_instrs =
      Array.init (Program.func_count prog) (fun fid ->
          Array.make (Program.block_count (Program.func prog fid)) 0);
    issues = 0;
    thread_instrs = 0;
    lock_acquires = 0;
    serializations = 0;
    serialized_instrs = 0;
    barrier_syncs = 0;
    wt = warp_trace;
    wt_warp = 0;
    tl_current = None;
    timelines = [];
    div_sites = Hashtbl.create 64;
    flame = Hashtbl.create 64;
    call_stack = [];
    flame_cur = None;
    obs_on = false;
    scratch =
      {
        lane_ids = Array.make ws 0;
        lane_accs = Array.make ws [||];
        lane_ptr = Array.make ws 0;
        n_lanes = 0;
        ld_lane = Array.make ws 0;
        ld_addr = Array.make ws 0;
        ld_size = Array.make ws 0;
        n_ld = 0;
        st_lane = Array.make ws 0;
        st_addr = Array.make ws 0;
        st_size = Array.make ws 0;
        n_st = 0;
        grp_target = Array.make ws 0;
        grp_mask = Array.make ws Mask.empty;
        n_groups = 0;
        evt_seen = Hashtbl.create 32;
      };
  }

(* Every [call_stack] change goes through here so the flamegraph cell for
   the current stack can be cached instead of hashed per block. *)
let set_call_stack t cs =
  t.call_stack <- cs;
  t.flame_cur <- None

(* Should this replay instant be emitted?  Per-occurrence instants
   dominate the cost of an enabled collector, so unless
   [Obs.full_events] is on they are thinned to the first occurrence per
   (warp, site): [evt_seen] is cleared when a warp starts, and because a
   warp never spans domains the surviving event set is a pure function
   of the warp list — identical at every [domains].  Counters are not
   thinned.  [key] packs kind|func|site into an int to keep the lookup
   allocation-free. *)
let emit_instant t key =
  !Obs.full_events
  ||
  (not (Hashtbl.mem t.scratch.evt_seen key))
  && begin
       Hashtbl.add t.scratch.evt_seen key ();
       true
     end

let evt_key tag func v = (tag lsl 58) lor (func lsl 29) lor v

let div_site_cell t key kind =
  match Hashtbl.find_opt t.div_sites key with
  | Some c -> c
  | None ->
      let c = { sc_splits = 0; sc_lost = 0; sc_kind = kind } in
      Hashtbl.add t.div_sites key c;
      c

let flame_cell t key =
  match Hashtbl.find_opt t.flame key with
  | Some c -> c
  | None ->
      let c = { fc_issues = 0; fc_lost = 0 } in
      Hashtbl.add t.flame key c;
      c

let exit_node t fid = (Program.func t.prog fid).Program.blocks |> Array.length

(* ------------------------------------------------------------------ *)
(* Block execution: accounting, coalescing, warp-trace emission.       *)

(* Growable push into the load/store gather buffers. *)
let push_mem s ~is_store lane addr size =
  let grow n a =
    let b = Array.make (2 * n) 0 in
    Array.blit a 0 b 0 n;
    b
  in
  if is_store then begin
    let n = s.n_st in
    if n = Array.length s.st_lane then begin
      s.st_lane <- grow n s.st_lane;
      s.st_addr <- grow n s.st_addr;
      s.st_size <- grow n s.st_size
    end;
    s.st_lane.(n) <- lane;
    s.st_addr.(n) <- addr;
    s.st_size.(n) <- size;
    s.n_st <- n + 1
  end
  else begin
    let n = s.n_ld in
    if n = Array.length s.ld_lane then begin
      s.ld_lane <- grow n s.ld_lane;
      s.ld_addr <- grow n s.ld_addr;
      s.ld_size <- grow n s.ld_size
    end;
    s.ld_lane.(n) <- lane;
    s.ld_addr.(n) <- addr;
    s.ld_size.(n) <- size;
    s.n_ld <- n + 1
  end

(* Execute block [block] of [func] for the active lanes staged in
   [t.scratch] ([lane_ids]/[lane_accs][0..n_lanes), ascending lane order).
   All bookkeeping lives here so the lock-step path and the scalar
   serialized path stay consistent.  [blame] is the chain of divergence
   sites enclosing this execution; each is charged its marginal lost-lane
   cost per issue.  Allocation-free apart from warp-trace cracking. *)
let count_block t ~func ~block ~mask ~(blame : blame) =
  let s = t.scratch in
  let f = Program.func t.prog func in
  let instrs = f.Program.blocks.(block).Program.instrs in
  let n = Array.length instrs in
  let active = s.n_lanes in
  Obs.Counter.incr c_blocks;
  t.issues <- t.issues + n;
  t.thread_instrs <- t.thread_instrs + (n * active);
  List.iter
    (fun (site, lost) ->
      if lost > 0 then begin
        let c = div_site_cell t site Branch_site in
        c.sc_lost <- c.sc_lost + (n * lost)
      end)
    blame;
  (let fc =
     match t.flame_cur with
     | Some fc -> fc
     | None ->
         let fc = flame_cell t t.call_stack in
         t.flame_cur <- Some fc;
         fc
   in
   fc.fc_issues <- fc.fc_issues + n;
   fc.fc_lost <- fc.fc_lost + (n * (t.config.warp_size - active)));
  (match t.tl_current with
  | Some v -> Vec.push v { Timeline.n_instr = n; active }
  | None -> ());
  t.func_issues.(func) <- t.func_issues.(func) + n;
  t.func_instrs.(func) <- t.func_instrs.(func) + (n * active);
  t.block_issues.(func).(block) <- t.block_issues.(func).(block) + n;
  t.block_instrs.(func).(block) <- t.block_instrs.(func).(block) + (n * active);
  (* Per-lane read pointers into the (ioff-sorted) access arrays. *)
  for i = 0 to active - 1 do
    s.lane_ptr.(i) <- 0
  done;
  let emit_wt = t.wt in
  for ioff = 0 to n - 1 do
    s.n_ld <- 0;
    s.n_st <- 0;
    for i = 0 to active - 1 do
      let accs = s.lane_accs.(i) in
      let len = Array.length accs in
      let p = ref s.lane_ptr.(i) in
      while !p < len && accs.(!p).Event.ioff = ioff do
        let a = accs.(!p) in
        push_mem s ~is_store:a.Event.is_store s.lane_ids.(i) a.Event.addr
          a.Event.size;
        incr p
      done;
      s.lane_ptr.(i) <- !p
    done;
    if s.n_ld > 0 then
      ignore
        (Coalesce.record_lanes t.coalesce ~is_store:false
           ~site:(func, block, ioff) ~n:s.n_ld s.ld_addr s.ld_size);
    if s.n_st > 0 then
      ignore
        (Coalesce.record_lanes t.coalesce ~is_store:true
           ~site:(func, block, ioff) ~n:s.n_st s.st_addr s.st_size);
    match emit_wt with
    | None -> ()
    | Some wt ->
        (* A lane's first access at this [ioff] wins, matching the
           newest-first list gather this replaced (later entries of that
           list were older and overwrote). *)
        let lane_addrs count lanes addrs =
          if count = 0 then None
          else begin
            let a = Array.make t.config.warp_size (-1) in
            for i = 0 to count - 1 do
              if a.(lanes.(i)) < 0 then a.(lanes.(i)) <- addrs.(i)
            done;
            Some a
          end
        in
        let size =
          if s.n_ld > 0 then s.ld_size.(s.n_ld - 1)
          else if s.n_st > 0 then s.st_size.(s.n_st - 1)
          else 0
        in
        let mem =
          {
            Crack.load = lane_addrs s.n_ld s.ld_lane s.ld_addr;
            store = lane_addrs s.n_st s.st_lane s.st_addr;
            size;
          }
        in
        List.iter
          (fun op -> Warp_trace.Builder.emit wt ~warp:t.wt_warp mask op)
          (Crack.crack instrs.(ioff) mem)
  done;
  instrs.(n - 1)

(* ------------------------------------------------------------------ *)
(* The SIMT stack                                                       *)

type entry = {
  e_func : int;
  mutable pc : int; (* node: block id or the function's exit node *)
  e_reconv : int;
  mutable e_mask : Mask.t;
  e_blame : blame; (* divergence sites enclosing this entry's region *)
  e_frame : bool; (* a function frame (its pop leaves the function) *)
}

(* Check the lane is positioned at the expected block and return its
   recorded memory accesses. *)
let block_accesses_of_lane cursors func node lane =
  match Cursor.peek cursors.(lane) with
  | Cursor.C_block { func = f; block = b; accesses; _ }
    when f = func && b = node ->
      accesses
  | c ->
      errf "lane %d: expected block f%d.b%d, trace has %s" lane func node
        (match c with
        | Cursor.C_block b -> Printf.sprintf "block f%d.b%d" b.func b.block
        | Cursor.C_call f -> Printf.sprintf "call f%d" f
        | Cursor.C_ret -> "return"
        | Cursor.C_lock _ -> "lock"
        | Cursor.C_unlock _ -> "unlock"
        | Cursor.C_barrier _ -> "barrier"
        | Cursor.C_end -> "end of trace")

(* Reconvergence point for a divergence whose lanes stand at [targets]
   inside [e]: the nearest common post-dominator of the targets (for plain
   branch divergence this is the diverging block's IPDOM; after lock
   serialization some lanes are already deep in the region, and the NCP
   places reconvergence after the critical section, per the paper's
   "unlock of one of the threads" rule).  The result is clamped to the
   entry's own reconvergence point when it would escape past it (possible
   because the DCFG merges paths from all calling contexts), and forced to
   the function exit in the ablation mode. *)
let reconv_for t (e : entry) targets =
  match t.config.reconv with
  | Function_exit_reconv -> exit_node t e.e_func
  | Ipdom_reconv -> (
      let tbl = t.ipdoms.(e.e_func) in
      match targets with
      | [] -> e.e_reconv
      | first :: rest ->
          let r =
            List.fold_left (Ipdom.nearest_common_post_dominator tbl) first rest
          in
          if r = e.e_reconv then r
          else if Ipdom.post_dominates tbl r e.e_reconv then e.e_reconv
          else r)

(* Scalar replay of one lane's critical section: consume events until the
   matching unlock of [lock_addr], charging every block as a one-lane
   issue.  [blame] carries the serialization site (and any enclosing
   divergence) so the lost-lane slots land on the lock-acquire block; the
   call stack follows the lane's call/return events so flamegraph frames
   stay accurate inside the critical section.  A trace that ends while
   still holding the lock is a deadlock verdict (the lock is never
   released, so the other contenders would wait forever); the fuel
   watchdog bounds the walk on corrupt input. *)
let scalar_critical_section ?(fuel : fuel = None) ~warp_id ~(blame : blame) t
    cursors lane lock_addr =
  let c = cursors.(lane) in
  let before = t.thread_instrs in
  let saved_stack = t.call_stack in
  let s = t.scratch in
  let rec go () =
    burn fuel ~warp_id;
    match Cursor.next c with
    | Cursor.C_block { func; block; accesses; _ } ->
        s.n_lanes <- 1;
        s.lane_ids.(0) <- lane;
        s.lane_accs.(0) <- accesses;
        ignore (count_block t ~func ~block ~mask:(Mask.singleton lane) ~blame);
        go ()
    | Cursor.C_call f ->
        set_call_stack t (f :: t.call_stack);
        go ()
    | Cursor.C_ret ->
        (match t.call_stack with
        | _ :: (_ :: _ as rest) -> set_call_stack t rest
        | _ -> ());
        go ()
    | Cursor.C_lock _ ->
        t.lock_acquires <- t.lock_acquires + 1;
        go ()
    | Cursor.C_barrier _ -> go ()
    | Cursor.C_unlock a -> if a = lock_addr then () else go ()
    | Cursor.C_end ->
        Tf_error.fail ~thread:c.Cursor.tid Tf_error.Deadlock
          "lane %d: trace ended inside critical section of lock 0x%x (lock \
           never released)"
          lane lock_addr
  in
  Fun.protect ~finally:(fun () -> set_call_stack t saved_stack) go;
  Obs.Counter.add c_serialized_instrs (t.thread_instrs - before);
  t.serialized_instrs <- t.serialized_instrs + (t.thread_instrs - before)

(* After executing [block], group the active lanes by the next block they
   enter and update the stack accordingly.  [kind] records what caused any
   split: a plain divergent branch, or lock serialization scattering the
   lanes ([Sync_site], from {!handle_locks}). *)
let regroup ?(kind = Branch_site) t stack (e : entry) block cursors =
  let s = t.scratch in
  s.n_groups <- 0;
  (* Group the active lanes by their next block: linear scan over the
     (few) distinct targets, no Hashtbl, no lane list. *)
  let parent_lanes =
    Mask.fold
      (fun n lane ->
        let target =
          match Cursor.peek cursors.(lane) with
          | Cursor.C_block b when b.func = e.e_func -> b.block
          | c ->
              errf "lane %d: expected a block of f%d after f%d.b%d, got %s" lane
                e.e_func e.e_func block
                (match c with
                | Cursor.C_block b ->
                    Printf.sprintf "block f%d.b%d" b.func b.block
                | Cursor.C_call _ -> "call"
                | Cursor.C_ret -> "return"
                | Cursor.C_lock _ -> "lock"
                | Cursor.C_unlock _ -> "unlock"
                | Cursor.C_barrier _ -> "barrier"
                | Cursor.C_end -> "end of trace")
        in
        let g = ref (-1) in
        for j = 0 to s.n_groups - 1 do
          if s.grp_target.(j) = target then g := j
        done;
        if !g >= 0 then s.grp_mask.(!g) <- Mask.add s.grp_mask.(!g) lane
        else begin
          s.grp_target.(s.n_groups) <- target;
          s.grp_mask.(s.n_groups) <- Mask.singleton lane;
          s.n_groups <- s.n_groups + 1
        end;
        n + 1)
      0 e.e_mask
  in
  if s.n_groups = 1 then e.pc <- s.grp_target.(0)
  else begin
    Obs.Counter.incr c_div_splits;
    let site = (e.e_func, block) in
    let cell = div_site_cell t site kind in
    cell.sc_splits <- cell.sc_splits + 1;
    if kind = Sync_site then cell.sc_kind <- Sync_site;
    if t.obs_on && emit_instant t (evt_key 0 e.e_func block) then
      Obs.instant ~track:Obs.divergence_track "divergence split"
        ~args:
          [
            ("func", Obs.itos e.e_func);
            ("block", Obs.itos block);
            ("paths", Obs.itos s.n_groups);
            ("lanes", Obs.itos parent_lanes);
            ("kind", (match kind with Branch_site -> "branch" | Sync_site -> "sync"));
          ];
    (* Sort the groups by target (insertion sort over a handful of
       entries): the NCP fold is order-insensitive, and the children push
       below gets the same ascending-target order the old
       [List.sort compare] produced. *)
    for i = 1 to s.n_groups - 1 do
      let tg = s.grp_target.(i) and mk = s.grp_mask.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && s.grp_target.(!j) > tg do
        s.grp_target.(!j + 1) <- s.grp_target.(!j);
        s.grp_mask.(!j + 1) <- s.grp_mask.(!j);
        decr j
      done;
      s.grp_target.(!j + 1) <- tg;
      s.grp_mask.(!j + 1) <- mk
    done;
    let distinct = ref [] in
    for j = s.n_groups - 1 downto 0 do
      distinct := s.grp_target.(j) :: !distinct
    done;
    let r = reconv_for t e !distinct in
    e.pc <- r;
    (* Push one child per distinct destination (other than the
       reconvergence point itself), deterministically ordered.  Each child
       extends the blame chain with this site: while it executes, the
       lanes parked on the sibling paths are this split's fault. *)
    for j = 0 to s.n_groups - 1 do
      let target = s.grp_target.(j) and mask = s.grp_mask.(j) in
      if target <> r then
        Vec.push stack
          {
            e_func = e.e_func;
            pc = target;
            e_reconv = r;
            e_mask = mask;
            e_blame = (site, parent_lanes - Mask.count mask) :: e.e_blame;
            e_frame = false;
          }
    done
  end

(* Handle the lock-acquire terminator: consume the lock events, serialize
   same-lock contenders, then regroup. *)
let handle_locks ?(fuel : fuel = None) ~warp_id t stack (e : entry) block
    cursors =
  let lanes = Mask.to_list e.e_mask in
  let addrs =
    List.map
      (fun lane ->
        match Cursor.next cursors.(lane) with
        | Cursor.C_lock a ->
            t.lock_acquires <- t.lock_acquires + 1;
            (lane, a)
        | _ -> errf "lane %d: expected lock acquire after f%d.b%d" lane e.e_func block)
      lanes
  in
  (* Serialized critical sections run one lane at a time: the idle
     contenders are the lock site's fault, so the scalar replay extends
     the blame chain with ((func, block), contenders - 1). *)
  let site = (e.e_func, block) in
  let serial_blame ~contenders : blame =
    ignore (div_site_cell t site Sync_site);
    (site, contenders - 1) :: e.e_blame
  in
  (match t.config.sync with
  | Ignore_sync -> ()
  | Serialize_all ->
      (* pessimistic policy: any lock acquire serializes the whole warp's
         critical sections, regardless of the addresses (one of the
         alternative designs the paper defers to future work) *)
      if List.length addrs > 1 then begin
        t.serializations <- t.serializations + 1;
        Obs.Counter.incr c_lock_serializations;
        if t.obs_on && emit_instant t (evt_key 1 e.e_func block) then
          Obs.instant ~track:Obs.sync_track "lock serialization"
            ~args:
              [
                ("contenders", Obs.itos (List.length addrs));
                ("func", Obs.itos e.e_func);
                ("block", Obs.itos block);
              ];
        let blame = serial_blame ~contenders:(List.length addrs) in
        List.iter
          (fun (lane, a) ->
            scalar_critical_section ~fuel ~warp_id ~blame t cursors lane a)
          addrs
      end
  | Serialize ->
      let by_addr = Hashtbl.create 4 in
      List.iter
        (fun (lane, a) ->
          let l = try Hashtbl.find by_addr a with Not_found -> [] in
          Hashtbl.replace by_addr a (lane :: l))
        addrs;
      let conflicting =
        Hashtbl.fold
          (fun a lanes acc ->
            if List.length lanes > 1 then (a, List.rev lanes) :: acc else acc)
          by_addr []
        |> List.sort compare
      in
      List.iter
        (fun (a, lanes) ->
          t.serializations <- t.serializations + 1;
          Obs.Counter.incr c_lock_serializations;
          if t.obs_on && emit_instant t (evt_key 1 e.e_func block) then
            Obs.instant ~track:Obs.sync_track "lock serialization"
              ~args:
                [
                  ("lock", Printf.sprintf "0x%x" a);
                  ("contenders", Obs.itos (List.length lanes));
                  ("func", Obs.itos e.e_func);
                  ("block", Obs.itos block);
                ];
          let blame = serial_blame ~contenders:(List.length lanes) in
          List.iter
            (fun lane ->
              scalar_critical_section ~fuel ~warp_id ~blame t cursors lane a)
            lanes)
        conflicting);
  regroup ~kind:Sync_site t stack e block cursors

(* ------------------------------------------------------------------ *)
(* Warp main loop                                                       *)

(** Replay one warp.  [cursors.(lane)] is the lane's trace cursor; all
    lanes must start at the same worker function.  [fuel] (when given)
    bounds the total number of stack steps + serialized events, raising a
    typed [Tf_error.Timeout] when exhausted — the replay watchdog of the
    checked pipeline. *)
let run_warp ?fuel t ~warp_id (cursors : Cursor.t array) =
  let fuel : fuel = Option.map ref fuel in
  t.wt_warp <- warp_id;
  t.obs_on <- !Obs.enabled;
  Hashtbl.reset t.scratch.evt_seen;
  Coalesce.new_warp t.coalesce;
  if t.config.record_timeline then
    t.tl_current <- Some (Vec.create ~capacity:256 { Timeline.n_instr = 0; active = 0 });
  let n_lanes = Array.length cursors in
  if n_lanes = 0 then ()
  else begin
    let worker =
      match Cursor.peek cursors.(0) with
      | Cursor.C_block b ->
          if b.block <> 0 then errf "warp %d: trace does not start at entry" warp_id;
          b.func
      | _ -> errf "warp %d: empty trace" warp_id
    in
    let stack =
      Vec.create
        {
          e_func = 0;
          pc = 0;
          e_reconv = 0;
          e_mask = Mask.empty;
          e_blame = [];
          e_frame = false;
        }
    in
    Vec.push stack
      {
        e_func = worker;
        pc = 0;
        e_reconv = exit_node t worker;
        e_mask = Mask.of_list (List.init n_lanes (fun i -> i));
        e_blame = [];
        e_frame = true;
      };
    set_call_stack t [ worker ];
    let s = t.scratch in
    while not (Vec.is_empty stack) do
      burn fuel ~warp_id;
      let e = Vec.top stack in
      if e.pc = e.e_reconv then begin
        Obs.Counter.incr c_reconv;
        if t.obs_on && emit_instant t (evt_key 2 e.e_func e.pc) then
          Obs.instant ~track:Obs.divergence_track "reconverge"
            ~args:
              [
                ("func", Obs.itos e.e_func);
                ("node", Obs.itos e.pc);
                ("lanes", Obs.itos (Mask.count e.e_mask));
              ];
        if e.e_frame then
          set_call_stack t
            (match t.call_stack with _ :: rest -> rest | [] -> []);
        ignore (Vec.pop stack)
      end
      else if e.pc = exit_node t e.e_func then
        errf "warp %d: entry reached f%d's exit without popping" warp_id e.e_func
      else begin
        let block = e.pc in
        (* Consume this block from every active lane, staging the lanes and
           their access arrays in the scratch buffers (ascending). *)
        s.n_lanes <- 0;
        Mask.iter
          (fun lane ->
            let accesses = block_accesses_of_lane cursors e.e_func block lane in
            Cursor.advance cursors.(lane);
            s.lane_ids.(s.n_lanes) <- lane;
            s.lane_accs.(s.n_lanes) <- accesses;
            s.n_lanes <- s.n_lanes + 1)
          e.e_mask;
        let term =
          count_block t ~func:e.e_func ~block ~mask:e.e_mask ~blame:e.e_blame
        in
        match term with
        | Instr.Call callee -> (
            (* an excluded callee leaves no Call event: the lanes jump
               straight to the continuation block (paper §III's selective
               tracing) *)
            match Cursor.peek cursors.(s.lane_ids.(0)) with
            | Cursor.C_call _ ->
                Mask.iter (fun lane -> Cursor.advance cursors.(lane)) e.e_mask;
                e.pc <- block + 1;
                set_call_stack t (callee :: t.call_stack);
                Vec.push stack
                  {
                    e_func = callee;
                    pc = 0;
                    e_reconv = exit_node t callee;
                    e_mask = e.e_mask;
                    e_blame = e.e_blame;
                    e_frame = true;
                  }
            | _ -> regroup t stack e block cursors)
        | Instr.Ret ->
            Mask.iter
              (fun lane ->
                match Cursor.next cursors.(lane) with
                | Cursor.C_ret -> ()
                | _ -> errf "lane %d: expected return after f%d.b%d" lane e.e_func block)
              e.e_mask;
            e.pc <- exit_node t e.e_func
        | Instr.Halt -> e.pc <- exit_node t e.e_func
        | Instr.Lock_acquire _ -> handle_locks ~fuel ~warp_id t stack e block cursors
        | Instr.Barrier _ ->
            (* all lanes arrive together (same block): within the warp a
               team barrier is free; count it and continue in lockstep.  A
               lane without the arrival would block the whole team forever
               on real hardware — a typed deadlock verdict. *)
            Mask.iter
              (fun lane ->
                match Cursor.next cursors.(lane) with
                | Cursor.C_barrier _ -> ()
                | _ ->
                    Tf_error.fail ~thread:cursors.(lane).Cursor.tid
                      Tf_error.Deadlock
                      "lane %d: no barrier arrival after f%d.b%d (barrier \
                       never satisfied)"
                      lane e.e_func block)
              e.e_mask;
            t.barrier_syncs <- t.barrier_syncs + 1;
            Obs.Counter.incr c_barrier_syncs;
            regroup t stack e block cursors
        | Instr.Lock_release _ ->
            Mask.iter
              (fun lane ->
                match Cursor.next cursors.(lane) with
                | Cursor.C_unlock _ -> ()
                | _ -> errf "lane %d: expected unlock after f%d.b%d" lane e.e_func block)
              e.e_mask;
            regroup t stack e block cursors
        | Instr.Jcc _ | Instr.Jmp _ | Instr.Io _ | Instr.Mov _ | Instr.Cmov _
        | Instr.Lea _ | Instr.Binop _ | Instr.Unop _ | Instr.Cmp _
        | Instr.Atomic_rmw _ ->
            regroup t stack e block cursors
      end
    done;
    Array.iteri
      (fun lane c ->
        if not (Cursor.at_end c) then
          errf "warp %d lane %d: %d unconsumed trace events" warp_id lane
            (Array.length c.events - c.pos))
      cursors;
    match t.tl_current with
    | Some v ->
        t.timelines <-
          { Timeline.warp_id; warp_size = t.config.warp_size; samples = Vec.to_array v }
          :: t.timelines;
        t.tl_current <- None
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Shard reduction                                                      *)

(** Fold [src]'s accumulated metrics into [dst] — the reduction step of
    the domain-parallel replay (see Par_replay): each domain replays a
    disjoint warp slice into a private emulator, then the shards merge in
    worker order.  Every aggregate is a sum (or, for [sc_kind], a
    site-determined constant), so the merged emulator carries exactly the
    totals a sequential replay of all the warps would have produced.
    Transient per-warp state (call stack, scratch buffers, warp-trace
    handle) is left untouched. *)
let merge_into ~dst src =
  dst.issues <- dst.issues + src.issues;
  dst.thread_instrs <- dst.thread_instrs + src.thread_instrs;
  dst.lock_acquires <- dst.lock_acquires + src.lock_acquires;
  dst.serializations <- dst.serializations + src.serializations;
  dst.serialized_instrs <- dst.serialized_instrs + src.serialized_instrs;
  dst.barrier_syncs <- dst.barrier_syncs + src.barrier_syncs;
  let add_into d s = Array.iteri (fun i v -> d.(i) <- d.(i) + v) s in
  add_into dst.func_issues src.func_issues;
  add_into dst.func_instrs src.func_instrs;
  Array.iteri (fun fid s -> add_into dst.block_issues.(fid) s) src.block_issues;
  Array.iteri (fun fid s -> add_into dst.block_instrs.(fid) s) src.block_instrs;
  Coalesce.merge_into ~dst:dst.coalesce src.coalesce;
  Hashtbl.iter
    (fun key (c : div_site_cell) ->
      let d = div_site_cell dst key c.sc_kind in
      d.sc_splits <- d.sc_splits + c.sc_splits;
      d.sc_lost <- d.sc_lost + c.sc_lost;
      (* a site's kind is determined by its terminator (lock blocks are
         always [Sync_site], branch blocks always [Branch_site]), so
         either side wins consistently *)
      if c.sc_kind = Sync_site then d.sc_kind <- Sync_site)
    src.div_sites;
  Hashtbl.iter
    (fun key (c : flame_cell) ->
      let d = flame_cell dst key in
      d.fc_issues <- d.fc_issues + c.fc_issues;
      d.fc_lost <- d.fc_lost + c.fc_lost)
    src.flame;
  (* order is irrelevant here — consumers sort by warp id (unique), so
     the constant-space prepend keeps the reduction allocation-light *)
  dst.timelines <- List.rev_append src.timelines dst.timelines
