(** Analyzer outputs: whole-program and per-function SIMT statistics.

    SIMT efficiency follows the paper's Equation 1:
    [thread_instrs / (issues * warp_size)], where [issues] counts
    instructions fetched once per warp (lock-step slots) and
    [thread_instrs] counts instructions summed over the active lanes. *)

type func_stat = {
  fid : int;
  func_name : string;
  issues : int;  (** warp-level lock-step issues attributed to the function *)
  thread_instrs : int;  (** per-thread instructions, exclusive of callees *)
  efficiency : float;
  instr_share : float;  (** fraction of all thread instructions *)
}

type block_stat = {
  block_fid : int;
  block_func : string;
  block_id : int;
  src_label : string option;  (** surface label, when the block had one *)
  block_issues : int;
  block_instrs : int;
  block_efficiency : float;
}

type warp_stat = {
  warp_id : int;
  warp_issues : int;
  warp_instrs : int;
  warp_efficiency : float;
  lanes : int;  (** threads actually in the warp (the tail may be partial) *)
}

type segment_stat = {
  txns : int;  (** 32 B transactions *)
  mem_issues : int;  (** warp-level load/store instructions *)
  txns_per_instr : float;
}

(** A divergence-blame site: a branch (or lock) whose splits cost the warp
    inactive-lane issue slots (the paper's Fig. 7 workflow, automated). *)
type div_site = {
  ds_fid : int;
  ds_func : string;
  ds_block : int;
  ds_label : string option;  (** surface label of the diverging block *)
  ds_kind : [ `Branch | `Sync ];
      (** branch divergence or lock-serialization scatter *)
  ds_splits : int;  (** warp splits originating at the site *)
  ds_lost_lanes : int;  (** inactive-lane issue slots charged to the site *)
  ds_recoverable : float;
      (** whole-program efficiency points recoverable at the site:
          [lost / (issues * warp_size)] *)
}

(** A memory-blame site: a load/store instruction charged the 32 B
    transactions it generated beyond the perfectly-coalesced minimum. *)
type mem_site = {
  ms_fid : int;
  ms_func : string;
  ms_block : int;
  ms_ioff : int;  (** instruction offset within the block *)
  ms_label : string option;
  ms_issues : int;  (** warp-level load/store instructions at the site *)
  ms_txns : int;  (** 32 B transactions generated *)
  ms_min_txns : int;  (** perfectly-coalesced minimum *)
  ms_excess : int;  (** transactions beyond the minimum *)
  ms_stack_excess : int;  (** excess split by address segment *)
  ms_heap_excess : int;
  ms_global_excess : int;
}

(** How much of the input the report actually covers: the checked pipeline
    ({!Analyzer.analyze_checked}) quarantines threads that fail validation
    or replay and keeps going, so a partial report is explicit rather than
    silently wrong. *)
type coverage = {
  threads_total : int;  (** threads handed to the analyzer *)
  threads_analyzed : int;  (** threads whose replay completed *)
  threads_quarantined : int;  (** failed validation or replay *)
  events_dropped : int;  (** trace events of the quarantined threads *)
  warps_failed : int;  (** warps whose replay aborted *)
}

type report = {
  warp_size : int;
  n_threads : int;
  n_warps : int;
  issues : int;
  thread_instrs : int;
  simt_efficiency : float;
  per_function : func_stat list;  (** sorted by descending instruction share *)
  per_warp : warp_stat list;  (** per-warp breakdown, in warp order *)
  hot_blocks : block_stat list;
      (** the most issue-expensive divergent basic blocks — the paper's
          "pinpoint code regions" at finer-than-function granularity *)
  divergence_sites : div_site list;
      (** blame ranking: sites by descending lost-lane cost *)
  mem_sites : mem_site list;
      (** blame ranking: access sites by descending excess transactions *)
  stack_mem : segment_stat;
  heap_mem : segment_stat;
  global_mem : segment_stat;
  total_mem_txns : int;
  total_mem_issues : int;
  skipped_io : int;
  skipped_spin : int;
  skipped_excluded : int;  (** instructions inside excluded functions *)
  lock_acquires : int;
  barrier_syncs : int;  (** warp-level team-barrier crossings *)
  serializations : int;  (** same-lock warp conflict groups serialized *)
  serialized_instrs : int;  (** instructions executed one-lane-at-a-time *)
  coverage : coverage;
}

(** Full coverage: every thread analyzed, nothing dropped. *)
val full_coverage : n_threads:int -> coverage

(** True when any thread was quarantined or any warp's replay aborted. *)
val degraded : report -> bool

(** Equation 1; defined as 1.0 when nothing was issued. *)
val efficiency : issues:int -> thread_instrs:int -> warp_size:int -> float

val segment_stat : Coalesce.seg_counters -> segment_stat

(** Fraction of dynamic instructions traced (vs skipped I/O + lock spin) —
    the quantity of paper Fig. 8. *)
val traced_fraction : report -> float

(** Mean 32 B transactions per warp-level load/store over all segments. *)
val txns_per_mem_instr : report -> float

val site_kind_name : [ `Branch | `Sync ] -> string

val pp_summary : Format.formatter -> report -> unit

(** The blame report: divergence sites ranked by lost-lane issue slots,
    then access sites ranked by excess 32 B transactions. *)
val pp_blame : Format.formatter -> report -> unit

val pp_warps : Format.formatter -> report -> unit

val pp_blocks : Format.formatter -> report -> unit

val pp_functions : Format.formatter -> report -> unit
