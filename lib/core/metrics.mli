(** Analyzer outputs: whole-program and per-function SIMT statistics.

    SIMT efficiency follows the paper's Equation 1:
    [thread_instrs / (issues * warp_size)], where [issues] counts
    instructions fetched once per warp (lock-step slots) and
    [thread_instrs] counts instructions summed over the active lanes. *)

type func_stat = {
  fid : int;
  func_name : string;
  issues : int;  (** warp-level lock-step issues attributed to the function *)
  thread_instrs : int;  (** per-thread instructions, exclusive of callees *)
  efficiency : float;
  instr_share : float;  (** fraction of all thread instructions *)
}

type block_stat = {
  block_fid : int;
  block_func : string;
  block_id : int;
  src_label : string option;  (** surface label, when the block had one *)
  block_issues : int;
  block_instrs : int;
  block_efficiency : float;
}

type warp_stat = {
  warp_id : int;
  warp_issues : int;
  warp_instrs : int;
  warp_efficiency : float;
  lanes : int;  (** threads actually in the warp (the tail may be partial) *)
}

type segment_stat = {
  txns : int;  (** 32 B transactions *)
  mem_issues : int;  (** warp-level load/store instructions *)
  txns_per_instr : float;
}

(** How much of the input the report actually covers: the checked pipeline
    ({!Analyzer.analyze_checked}) quarantines threads that fail validation
    or replay and keeps going, so a partial report is explicit rather than
    silently wrong. *)
type coverage = {
  threads_total : int;  (** threads handed to the analyzer *)
  threads_analyzed : int;  (** threads whose replay completed *)
  threads_quarantined : int;  (** failed validation or replay *)
  events_dropped : int;  (** trace events of the quarantined threads *)
  warps_failed : int;  (** warps whose replay aborted *)
}

type report = {
  warp_size : int;
  n_threads : int;
  n_warps : int;
  issues : int;
  thread_instrs : int;
  simt_efficiency : float;
  per_function : func_stat list;  (** sorted by descending instruction share *)
  per_warp : warp_stat list;  (** per-warp breakdown, in warp order *)
  hot_blocks : block_stat list;
      (** the most issue-expensive divergent basic blocks — the paper's
          "pinpoint code regions" at finer-than-function granularity *)
  stack_mem : segment_stat;
  heap_mem : segment_stat;
  global_mem : segment_stat;
  total_mem_txns : int;
  total_mem_issues : int;
  skipped_io : int;
  skipped_spin : int;
  skipped_excluded : int;  (** instructions inside excluded functions *)
  lock_acquires : int;
  barrier_syncs : int;  (** warp-level team-barrier crossings *)
  serializations : int;  (** same-lock warp conflict groups serialized *)
  serialized_instrs : int;  (** instructions executed one-lane-at-a-time *)
  coverage : coverage;
}

(** Full coverage: every thread analyzed, nothing dropped. *)
val full_coverage : n_threads:int -> coverage

(** True when any thread was quarantined or any warp's replay aborted. *)
val degraded : report -> bool

(** Equation 1; defined as 1.0 when nothing was issued. *)
val efficiency : issues:int -> thread_instrs:int -> warp_size:int -> float

val segment_stat : Coalesce.seg_counters -> segment_stat

(** Fraction of dynamic instructions traced (vs skipped I/O + lock spin) —
    the quantity of paper Fig. 8. *)
val traced_fraction : report -> float

(** Mean 32 B transactions per warp-level load/store over all segments. *)
val txns_per_mem_instr : report -> float

val pp_summary : Format.formatter -> report -> unit

val pp_warps : Format.formatter -> report -> unit

val pp_blocks : Format.formatter -> report -> unit

val pp_functions : Format.formatter -> report -> unit
