(** Memory-coalescing model (paper §III, Fig. 4): the active lanes' accesses
    of one warp-level memory instruction merge into the minimal set of
    32-byte transactions, counted separately per address segment
    (stack/heap/global) for the paper's Fig. 10 breakdown. *)

val transaction_bytes : int

(** Distinct 32 B lines covered by [(addr, size)] accesses. *)
val count_transactions : (int * int) list -> int

type seg_counters = {
  mutable ld_txns : int;
  mutable st_txns : int;
  mutable ld_issues : int;  (** warp-level load instructions in the segment *)
  mutable st_issues : int;
  mutable ld_lanes : int;  (** per-lane accesses *)
  mutable st_lanes : int;
}

(** Per-access-site attribution: transactions a site generated beyond the
    perfectly-coalesced minimum, split by address segment.  Sites are keyed
    by the originating instruction [(fid, block, ioff)]. *)
type site_counters = {
  mutable a_issues : int;  (** warp-level load/store instructions at the site *)
  mutable a_txns : int;  (** 32 B transactions generated *)
  mutable a_min_txns : int;  (** perfectly-coalesced minimum *)
  mutable a_stack_excess : int;  (** excess transactions per segment *)
  mutable a_heap_excess : int;
  mutable a_global_excess : int;
}

type seg_scratch
(** Internal staging for the allocation-free record path. *)

type t = {
  stack : seg_counters;
  heap : seg_counters;
  global : seg_counters;
  sites : (int * int * int, site_counters) Hashtbl.t;
  xs : seg_scratch array;
  mutable lines_buf : int array;
  evt_seen : (int, unit) Hashtbl.t;
}

val create : unit -> t

(** Reset the per-warp instant-thinning state; {!Emulator.run_warp}
    calls this when a warp's replay starts.  Unless [Obs.full_events] is
    on, the "serialized access" instant fires once per (warp, site) —
    counters still count every occurrence. *)
val new_warp : t -> unit

(** Perfectly-coalesced floor for an access set: the 32 B lines needed if
    the same bytes were laid out contiguously (at least 1). *)
val min_transactions : (int * int) list -> int

(** Record one warp-level memory instruction ([lanes] = active lanes'
    [(addr, size)] pairs); returns the total transactions generated.
    [site] attributes the instruction and its excess transactions to an
    [(fid, block, ioff)] instruction site. *)
val record : t -> is_store:bool -> ?site:int * int * int -> (int * int) list -> int

(** Allocation-free twin of {!record} over parallel arrays
    [addrs]/[sizes][0..n-1] — the replay hot path ({!Emulator.count_block}
    stages each instruction's accesses into reusable buffers).  Identical
    accounting and return value. *)
val record_lanes :
  t ->
  is_store:bool ->
  ?site:int * int * int ->
  n:int ->
  int array ->
  int array ->
  int

(** Fold [src]'s counters into [dst] (shard reduction of the
    domain-parallel replay); every field is a sum. *)
val merge_into : dst:t -> t -> unit

(** Total (transactions, warp-level memory instructions) over all segments. *)
val totals : t -> int * int

(** Mean 32 B transactions per warp-level load/store in a segment. *)
val txns_per_instr : seg_counters -> float
