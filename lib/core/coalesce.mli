(** Memory-coalescing model (paper §III, Fig. 4): the active lanes' accesses
    of one warp-level memory instruction merge into the minimal set of
    32-byte transactions, counted separately per address segment
    (stack/heap/global) for the paper's Fig. 10 breakdown. *)

val transaction_bytes : int

(** Distinct 32 B lines covered by [(addr, size)] accesses. *)
val count_transactions : (int * int) list -> int

type seg_counters = {
  mutable ld_txns : int;
  mutable st_txns : int;
  mutable ld_issues : int;  (** warp-level load instructions in the segment *)
  mutable st_issues : int;
  mutable ld_lanes : int;  (** per-lane accesses *)
  mutable st_lanes : int;
}

type t = {
  stack : seg_counters;
  heap : seg_counters;
  global : seg_counters;
}

val create : unit -> t

(** Record one warp-level memory instruction ([lanes] = active lanes'
    [(addr, size)] pairs); returns the total transactions generated. *)
val record : t -> is_store:bool -> (int * int) list -> int

(** Total (transactions, warp-level memory instructions) over all segments. *)
val totals : t -> int * int

(** Mean 32 B transactions per warp-level load/store in a segment. *)
val txns_per_instr : seg_counters -> float
