(** Domain-parallel warp replay: shards item indices over an OCaml 5
    domain pool with per-worker private state and a deterministic fan-in
    order, so [Analyzer.analyze] can replay disjoint warp slices in
    parallel yet reduce to byte-identical output at any domain count.
    See docs/performance.md. *)

type schedule =
  | Static  (** contiguous index chunks per worker; zero coordination *)
  | Dynamic
      (** workers pull the next index from an atomic counter; for skewed
          warp costs *)

val schedule_name : schedule -> string

val schedule_of_string : string -> schedule option

(** Default worker count when the caller passed nothing: [TF_DOMAINS]
    when set to a positive int (clamped to
    [Domain.recommended_domain_count]), else 1. *)
val default_domains : unit -> int

(** [map_shards ~domains ~schedule ~n ~init ~item] processes indices
    [0..n-1] with up to [domains] workers.  [init ()] runs {e inside}
    each worker domain (its shard is domain-confined by construction);
    [item shard i] runs for every index the worker owns, in ascending
    order.  Returns the shards ordered by worker id — merging in that
    order keeps order-sensitive reductions deterministic at every
    [domains].

    If items raise, every worker stops at its first exception and, after
    the join, the exception of the {e lowest} failing index is re-raised
    (the one a sequential loop would have surfaced).  [domains <= 1] or
    [n <= 1] runs inline with no spawns. *)
val map_shards :
  domains:int ->
  schedule:schedule ->
  n:int ->
  init:(unit -> 'shard) ->
  item:('shard -> int -> unit) ->
  'shard list
