(** Domain-parallel fan-out/fan-in: shards item indices over a persistent
    OCaml 5 helper-domain pool with per-worker private state and a
    deterministic fan-in order, so [Analyzer.analyze] can replay disjoint
    warp slices — and the cycle-level simulators disjoint SM/core
    partitions — in parallel yet reduce to byte-identical output at any
    domain count.  See docs/performance.md. *)

type schedule =
  | Static  (** contiguous index chunks per worker; zero coordination *)
  | Dynamic
      (** workers pull the next index from an atomic counter; for skewed
          warp costs *)

val schedule_name : schedule -> string

val schedule_of_string : string -> schedule option

(** Default worker count when the caller passed nothing: [TF_DOMAINS]
    when set to a positive int (clamped to
    [Domain.recommended_domain_count]), else 1. *)
val default_domains : unit -> int

(** [auto_domains ~requested ~items ~work] caps a requested domain count
    for a workload of [items] shardable units carrying [work] total work
    units: one domain is granted per [TF_DOMAINS_MIN_WORK] work units
    (default 20000; [<= 0] disables the cap), never more than [items] or
    [requested].  Tiny workloads thus collapse toward serial instead of
    paying hand-off costs they cannot amortize; the reduction is
    grouping-invariant, so output is byte-identical either way. *)
val auto_domains : requested:int -> items:int -> work:int -> int

(** [map_shards ~domains ~schedule ~n ~init ~item] processes indices
    [0..n-1] with up to [domains] workers drawn from the persistent
    pool.  [init ()] runs {e inside} each worker domain (its shard is
    domain-confined by construction); [item shard i] runs for every
    index the worker owns, in ascending order.  Returns the shards
    ordered by worker id — merging in that order keeps order-sensitive
    reductions deterministic at every [domains].

    If items raise, every worker stops at its first exception and, after
    the join, the exception of the {e lowest} failing index is re-raised
    (the one a sequential loop would have surfaced).  [domains <= 1] or
    [n <= 1] runs inline with no spawns.  When another domain is already
    coordinating a fork-join (concurrent serve sessions), the call runs
    all workers inline — same results, just not accelerated. *)
val map_shards :
  domains:int ->
  schedule:schedule ->
  n:int ->
  init:(unit -> 'shard) ->
  item:('shard -> int -> unit) ->
  'shard list

(** [parallel_for ~domains ~n body] runs [body i] for [i] in [0..n-1]
    over the pool in static contiguous chunks.  The [body] instances
    must touch disjoint state (the simulators index disjoint SMs or
    cores).  On exceptions the lowest failing index re-raises after the
    join; [domains <= 1] runs inline. *)
val parallel_for : domains:int -> n:int -> (int -> unit) -> unit

(** Helper domains currently parked in the process pool (0 before first
    parallel use, after {!quiesce}, and always in forked children). *)
val pool_domains : unit -> int

(** Stop and join the pool's helper domains.  Idempotent; also installed
    as an [at_exit] hook.  A supervisor that is about to [fork] should
    call this first so children start single-threaded. *)
val quiesce : unit -> unit
