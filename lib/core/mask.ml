(** Warp active masks: up to 62 lanes packed in an [int]. *)

type t = int

let max_lanes = 62

let empty : t = 0

let full warp_size : t =
  if warp_size <= 0 || warp_size > max_lanes then invalid_arg "Mask.full";
  (1 lsl warp_size) - 1

let singleton lane : t = 1 lsl lane

let mem mask lane = mask land (1 lsl lane) <> 0

let add mask lane = mask lor (1 lsl lane)

let remove mask lane = mask land lnot (1 lsl lane)

let union (a : t) (b : t) : t = a lor b

let inter (a : t) (b : t) : t = a land b

let is_empty (mask : t) = mask = 0

(* popcount by clearing the lowest set bit; masks have at most 62 bits *)
let count (mask : t) =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go mask 0

let to_list (mask : t) =
  let rec go lane m acc =
    if m = 0 then List.rev acc
    else if m land 1 <> 0 then go (lane + 1) (m lsr 1) (lane :: acc)
    else go (lane + 1) (m lsr 1) acc
  in
  go 0 mask []

let of_list lanes = List.fold_left add empty lanes

let iter f (mask : t) =
  let m = ref mask and lane = ref 0 in
  while !m <> 0 do
    if !m land 1 <> 0 then f !lane;
    m := !m lsr 1;
    incr lane
  done

(* allocation-free left fold over active lanes, ascending — the hot-path
   replacement for [to_list] + [List.fold_left] *)
let fold f (acc : 'a) (mask : t) =
  let m = ref mask and lane = ref 0 and acc = ref acc in
  while !m <> 0 do
    if !m land 1 <> 0 then acc := f !acc !lane;
    m := !m lsr 1;
    incr lane
  done;
  !acc

let pp ~warp_size ppf mask =
  for lane = warp_size - 1 downto 0 do
    Fmt.char ppf (if mem mask lane then '1' else '0')
  done
