(** Report diffing: compare two analyzer JSON reports and flag
    regressions beyond a relative tolerance (the `threadfuser diff`
    engine, and `make bench-regress`'s gate).

    Three levels are compared:

    - whole-program scalars (SIMT efficiency, issues, transactions, ...),
    - per-function efficiency, matched by function name,
    - blame sites: divergence sites matched by [(function, block)] and
      memory sites by [(function, block, instruction)].  A site missing
      from one side counts as zero — a site that appears in the new
      report is a new bottleneck, one that disappears is an improvement.

    Each metric has a direction; a change is a regression when it moves
    the wrong way by more than [tolerance * baseline] (any worsening from
    a zero baseline is a regression — with deterministic replay there is
    no noise to absorb). *)

type direction = Higher_better | Lower_better

type delta = {
  metric : string;
  direction : direction;
  before : float;
  after : float;
  regression : bool;
}

type t = {
  tolerance : float;
  deltas : delta list;  (** every compared metric, report order *)
  only_before : string list;  (** functions present only in the baseline *)
  only_after : string list;  (** functions present only in the new report *)
}

let is_regression ~tolerance ~direction ~before ~after =
  let slack = tolerance *. Float.abs before in
  match direction with
  | Higher_better -> after < before -. slack
  | Lower_better -> after > before +. slack

let delta ~tolerance metric direction before after =
  {
    metric;
    direction;
    before;
    after;
    regression = is_regression ~tolerance ~direction ~before ~after;
  }

let regressions t = List.filter (fun d -> d.regression) t.deltas
let has_regression t = List.exists (fun d -> d.regression) t.deltas

(* -- JSON access -------------------------------------------------------- *)

exception Shape of string

let member key = function
  | Json.Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> v
      | None -> raise (Shape (Printf.sprintf "missing field %S" key)))
  | _ -> raise (Shape (Printf.sprintf "expected object around %S" key))

let number key j =
  match member key j with
  | Json.Int n -> float_of_int n
  | Json.Float f -> f
  | _ -> raise (Shape (Printf.sprintf "field %S is not a number" key))

let string_field key j =
  match member key j with
  | Json.String s -> s
  | _ -> raise (Shape (Printf.sprintf "field %S is not a string" key))

let int_field key j =
  match member key j with
  | Json.Int n -> n
  | _ -> raise (Shape (Printf.sprintf "field %S is not an integer" key))

(* Lists of keyed entries ([per_function], blame sites) are optional so the
   diff still works against reports from before these sections existed. *)
let entries key j =
  match j with
  | Json.Obj fields -> (
      match List.assoc_opt key fields with
      | Some (Json.List items) -> items
      | Some _ -> raise (Shape (Printf.sprintf "field %S is not a list" key))
      | None -> [])
  | _ -> raise (Shape (Printf.sprintf "expected object around %S" key))

(* -- the comparison ----------------------------------------------------- *)

(* Whole-program scalars: (display name, path, direction). *)
let scalar_metrics =
  [
    ("simt_efficiency", [ "simt_efficiency" ], Higher_better);
    ("traced_fraction", [ "traced_fraction" ], Higher_better);
    ("issues", [ "issues" ], Lower_better);
    ("memory.total_transactions", [ "memory"; "total_transactions" ], Lower_better);
    ( "memory.transactions_per_instruction",
      [ "memory"; "transactions_per_instruction" ],
      Lower_better );
    ( "synchronization.serialized_instructions",
      [ "synchronization"; "serialized_instructions" ],
      Lower_better );
  ]

let path_number path j =
  match path with
  | [ k ] -> number k j
  | [ k1; k2 ] -> number k2 (member k1 j)
  | _ -> invalid_arg "path_number"

(* Fold two keyed entry lists into per-key deltas.  [value] extracts the
   compared number; entries missing from one side read as [zero] (when
   [zero] is [None] the key is instead reported as only_before/only_after). *)
let keyed_deltas ~tolerance ~direction ~prefix ~key ~value ?zero before after =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  let add side j =
    let k = key j in
    let v = value j in
    (match Hashtbl.find_opt tbl k with
    | None ->
        Hashtbl.add tbl k (ref (None, None));
        order := k :: !order
    | Some _ -> ());
    let cell = Hashtbl.find tbl k in
    match side with
    | `Before -> cell := (Some v, snd !cell)
    | `After -> cell := (fst !cell, Some v)
  in
  List.iter (add `Before) before;
  List.iter (add `After) after;
  List.fold_left
    (fun (deltas, only_b, only_a) k ->
      let b, a = !(Hashtbl.find tbl k) in
      let name = prefix ^ "[" ^ k ^ "]" in
      match (b, a, zero) with
      | Some b, Some a, _ ->
          (delta ~tolerance name direction b a :: deltas, only_b, only_a)
      | Some b, None, Some z ->
          (delta ~tolerance name direction b z :: deltas, only_b, only_a)
      | None, Some a, Some z ->
          (delta ~tolerance name direction z a :: deltas, only_b, only_a)
      | Some _, None, None -> (deltas, name :: only_b, only_a)
      | None, Some _, None -> (deltas, only_b, name :: only_a)
      | None, None, _ -> (deltas, only_b, only_a))
    ([], [], []) (List.rev !order)
  |> fun (d, b, a) -> (List.rev d, List.rev b, List.rev a)

let compare_reports ?(tolerance = 0.0) (before : Json.t) (after : Json.t) :
    (t, string) result =
  match
    let scalars =
      List.map
        (fun (name, path, direction) ->
          delta ~tolerance name direction (path_number path before)
            (path_number path after))
        scalar_metrics
    in
    let funcs, fb, fa =
      keyed_deltas ~tolerance ~direction:Higher_better
        ~prefix:"per_function.efficiency"
        ~key:(string_field "name")
        ~value:(number "efficiency")
        (entries "per_function" before)
        (entries "per_function" after)
    in
    let div_key j =
      Printf.sprintf "%s.b%d" (string_field "function" j) (int_field "block" j)
    in
    let divs, _, _ =
      keyed_deltas ~tolerance ~direction:Lower_better
        ~prefix:"divergence_sites.lost_lane_slots" ~key:div_key
        ~value:(number "lost_lane_slots") ~zero:0.0
        (entries "divergence_sites" before)
        (entries "divergence_sites" after)
    in
    let mem_key j =
      Printf.sprintf "%s.b%d+%d" (string_field "function" j)
        (int_field "block" j) (int_field "instruction" j)
    in
    let mems, _, _ =
      keyed_deltas ~tolerance ~direction:Lower_better
        ~prefix:"memory_sites.excess" ~key:mem_key ~value:(number "excess")
        ~zero:0.0
        (entries "memory_sites" before)
        (entries "memory_sites" after)
    in
    {
      tolerance;
      deltas = scalars @ funcs @ divs @ mems;
      only_before = fb;
      only_after = fa;
    }
  with
  | t -> Ok t
  | exception Shape msg -> Error msg

(* -- rendering ---------------------------------------------------------- *)

let pct_change d =
  if d.before = 0.0 then if d.after = 0.0 then 0.0 else Float.infinity
  else (d.after -. d.before) /. Float.abs d.before *. 100.0

let pp_delta ppf d =
  let arrow = if d.regression then "REGRESSED" else "" in
  let pct = pct_change d in
  let pct_s =
    if Float.is_integer pct && Float.abs pct < 1e6 then
      Printf.sprintf "%+.0f%%" pct
    else if Float.is_finite pct then Printf.sprintf "%+.2f%%" pct
    else "new"
  in
  Fmt.pf ppf "%-44s %12.6g -> %12.6g  %8s  %s" d.metric d.before d.after pct_s
    arrow

(** Print changed metrics (and all regressions); silent metrics stayed
    identical. *)
let pp ppf t =
  let changed = List.filter (fun d -> d.before <> d.after) t.deltas in
  if changed = [] && t.only_before = [] && t.only_after = [] then
    Fmt.pf ppf "reports are identical@."
  else begin
    List.iter (fun d -> Fmt.pf ppf "%a@." pp_delta d) changed;
    List.iter (fun m -> Fmt.pf ppf "%-44s only in baseline@." m) t.only_before;
    List.iter (fun m -> Fmt.pf ppf "%-44s only in new report@." m) t.only_after;
    let r = List.length (regressions t) in
    if r > 0 then
      Fmt.pf ppf "%d regression%s beyond tolerance %.2f%%@." r
        (if r = 1 then "" else "s")
        (100.0 *. t.tolerance)
    else
      Fmt.pf ppf "no regressions beyond tolerance %.2f%%@."
        (100.0 *. t.tolerance)
  end
