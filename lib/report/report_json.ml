(** JSON rendering of analyzer reports (for CI and notebooks). *)

module Metrics = Threadfuser.Metrics

let of_segment (s : Metrics.segment_stat) =
  Json.Obj
    [
      ("transactions", Json.Int s.Metrics.txns);
      ("mem_instructions", Json.Int s.Metrics.mem_issues);
      ("transactions_per_instruction", Json.Float s.Metrics.txns_per_instr);
    ]

let of_func (f : Metrics.func_stat) =
  Json.Obj
    [
      ("name", Json.String f.Metrics.func_name);
      ("issues", Json.Int f.Metrics.issues);
      ("thread_instructions", Json.Int f.Metrics.thread_instrs);
      ("efficiency", Json.Float f.Metrics.efficiency);
      ("instruction_share", Json.Float f.Metrics.instr_share);
    ]

let of_warp (w : Metrics.warp_stat) =
  Json.Obj
    [
      ("warp_id", Json.Int w.Metrics.warp_id);
      ("lanes", Json.Int w.Metrics.lanes);
      ("issues", Json.Int w.Metrics.warp_issues);
      ("thread_instructions", Json.Int w.Metrics.warp_instrs);
      ("efficiency", Json.Float w.Metrics.warp_efficiency);
    ]

let of_label = function Some l -> Json.String l | None -> Json.Null

let of_div_site (s : Metrics.div_site) =
  Json.Obj
    [
      ("function", Json.String s.Metrics.ds_func);
      ("block", Json.Int s.Metrics.ds_block);
      ("label", of_label s.Metrics.ds_label);
      ("kind", Json.String (Metrics.site_kind_name s.Metrics.ds_kind));
      ("splits", Json.Int s.Metrics.ds_splits);
      ("lost_lane_slots", Json.Int s.Metrics.ds_lost_lanes);
      ("recoverable_efficiency", Json.Float s.Metrics.ds_recoverable);
    ]

let of_mem_site (m : Metrics.mem_site) =
  Json.Obj
    [
      ("function", Json.String m.Metrics.ms_func);
      ("block", Json.Int m.Metrics.ms_block);
      ("instruction", Json.Int m.Metrics.ms_ioff);
      ("label", of_label m.Metrics.ms_label);
      ("mem_instructions", Json.Int m.Metrics.ms_issues);
      ("transactions", Json.Int m.Metrics.ms_txns);
      ("min_transactions", Json.Int m.Metrics.ms_min_txns);
      ("excess", Json.Int m.Metrics.ms_excess);
      ("excess_stack", Json.Int m.Metrics.ms_stack_excess);
      ("excess_heap", Json.Int m.Metrics.ms_heap_excess);
      ("excess_global", Json.Int m.Metrics.ms_global_excess);
    ]

let of_report (r : Metrics.report) =
  Json.Obj
    [
      ("warp_size", Json.Int r.Metrics.warp_size);
      ("threads", Json.Int r.Metrics.n_threads);
      ("warps", Json.Int r.Metrics.n_warps);
      ("issues", Json.Int r.Metrics.issues);
      ("thread_instructions", Json.Int r.Metrics.thread_instrs);
      ("simt_efficiency", Json.Float r.Metrics.simt_efficiency);
      ("traced_fraction", Json.Float (Metrics.traced_fraction r));
      ( "memory",
        Json.Obj
          [
            ("stack", of_segment r.Metrics.stack_mem);
            ("heap", of_segment r.Metrics.heap_mem);
            ("global", of_segment r.Metrics.global_mem);
            ("total_transactions", Json.Int r.Metrics.total_mem_txns);
            ("total_mem_instructions", Json.Int r.Metrics.total_mem_issues);
            ( "transactions_per_instruction",
              Json.Float (Metrics.txns_per_mem_instr r) );
          ] );
      ( "synchronization",
        Json.Obj
          [
            ("lock_acquires", Json.Int r.Metrics.lock_acquires);
            ("barrier_syncs", Json.Int r.Metrics.barrier_syncs);
            ("warp_lock_conflicts", Json.Int r.Metrics.serializations);
            ("serialized_instructions", Json.Int r.Metrics.serialized_instrs);
          ] );
      ( "skipped",
        Json.Obj
          [
            ("io_instructions", Json.Int r.Metrics.skipped_io);
            ("spin_instructions", Json.Int r.Metrics.skipped_spin);
            ("excluded_instructions", Json.Int r.Metrics.skipped_excluded);
          ] );
      ( "coverage",
        Json.Obj
          [
            ("threads_total", Json.Int r.Metrics.coverage.Metrics.threads_total);
            ( "threads_analyzed",
              Json.Int r.Metrics.coverage.Metrics.threads_analyzed );
            ( "threads_quarantined",
              Json.Int r.Metrics.coverage.Metrics.threads_quarantined );
            ("events_dropped", Json.Int r.Metrics.coverage.Metrics.events_dropped);
            ("warps_failed", Json.Int r.Metrics.coverage.Metrics.warps_failed);
            ("degraded", Json.Bool (Metrics.degraded r));
          ] );
      ("per_function", Json.List (List.map of_func r.Metrics.per_function));
      ("per_warp", Json.List (List.map of_warp r.Metrics.per_warp));
      ( "divergence_sites",
        Json.List (List.map of_div_site r.Metrics.divergence_sites) );
      ("memory_sites", Json.List (List.map of_mem_site r.Metrics.mem_sites));
    ]

let to_string r = Json.to_string (of_report r)

(* ------------------------------------------------------------------ *)
(* Shape validation of a parsed report.

   Consumers that load previously-written report JSON (the suite runner's
   checkpoint journal, CI scripts) use this to tell a genuine analyzer
   report from a truncated or foreign JSON document before trusting it. *)

let required_fields =
  [
    "warp_size"; "threads"; "warps"; "issues"; "thread_instructions";
    "simt_efficiency"; "memory"; "synchronization"; "coverage";
    "per_function";
  ]

(** [validate j] is [Ok ()] iff [j] has the shape of an {!of_report}
    document: a JSON object carrying every required top-level field, with
    numeric core metrics. *)
let validate (j : Json.t) : (unit, string) result =
  match j with
  | Json.Obj _ -> (
      match
        List.find_opt (fun k -> Json.member k j = None) required_fields
      with
      | Some k -> Error (Printf.sprintf "report is missing field %S" k)
      | None -> (
          match
            ( Option.bind (Json.member "warp_size" j) Json.to_int_opt,
              Option.bind (Json.member "simt_efficiency" j) Json.to_float_opt )
          with
          | Some _, Some _ -> Ok ()
          | None, _ -> Error "report field \"warp_size\" is not an integer"
          | _, None -> Error "report field \"simt_efficiency\" is not a number"))
  | _ -> Error "report is not a JSON object"
