(** Aligned text tables and CSV emission for the experiment harness. *)

type align = L | R

type t = {
  columns : (string * align) list;
  mutable rows : string list list; (* reversed *)
}

let create columns = { columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- cells :: t.rows

let addf t fmts = add_row t fmts

(* Formatting helpers for common cell types. *)
let cell_float ?(digits = 2) v = Printf.sprintf "%.*f" digits v

let cell_pct ?(digits = 1) v = Printf.sprintf "%.*f%%" digits (100.0 *. v)

let cell_int v = string_of_int v

let render ppf t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.columns in
  let widths =
    List.mapi
      (fun i (h, _) ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      t.columns
  in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | L -> s ^ String.make n ' '
      | R -> String.make n ' ' ^ s
  in
  let print_row cells =
    let padded =
      List.map2
        (fun (w, (_, a)) c -> pad a w c)
        (List.combine widths t.columns)
        cells
    in
    Fmt.pf ppf "  %s@." (String.concat "  " padded)
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

(* Optional CSV artifact directory: when set, [print ~name] also writes
   <dir>/<name>.csv so every figure's data is machine-readable. *)
let csv_dir : string option ref = ref None

let set_csv_dir d = csv_dir := d

let to_csv t =
  let buf = Buffer.create 256 in
  let quote s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let row cells = Buffer.add_string buf (String.concat "," (List.map quote cells) ^ "\n") in
  row (List.map fst t.columns);
  List.iter row (List.rev t.rows);
  Buffer.contents buf

let print ?name t =
  render Fmt.stdout t;
  match (!csv_dir, name) with
  | Some dir, Some name ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (name ^ ".csv") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (to_csv t));
      Fmt.pr "  [csv: %s]@." path
  | _ -> ()
