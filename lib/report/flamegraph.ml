(** Folded-stack flamegraph export of the replay (docs/observability.md).

    The emulator accumulates warp issues per call stack; this module turns
    that accumulation into the folded-stack text format consumed by
    flamegraph.pl and speedscope: one line per distinct stack,

    {v root;caller;...;leaf weight v}

    Two weightings are supported: [Issues] (warp lock-step issues — where
    replay time goes) and [Lost] (inactive-lane issue slots — where SIMT
    efficiency goes; the flamegraph of the blame report). *)

module Analyzer = Threadfuser.Analyzer

type weight = Issues | Lost

let weight_of_string = function
  | "issues" -> Some Issues
  | "lost" -> Some Lost
  | _ -> None

let weight_name = function Issues -> "issues" | Lost -> "lost"

(* The folded format reserves ';' (frame separator) and the last ' '
   (weight separator); surface function names could in principle contain
   either, so sanitize them. *)
let sanitize_frame name =
  String.map (function ';' -> ':' | ' ' -> '_' | '\n' -> '_' | c -> c) name

let stack_weight weight (s : Analyzer.flame_stack) =
  match weight with
  | Issues -> s.Analyzer.fl_issues
  | Lost -> s.Analyzer.fl_lost

(** Render the folded stacks; zero-weight stacks are omitted (a lost-lane
    flamegraph only shows stacks that actually diverged). *)
let folded ?(weight = Issues) (flame : Analyzer.flame_stack list) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (s : Analyzer.flame_stack) ->
      let w = stack_weight weight s in
      if w > 0 && s.Analyzer.frames <> [] then begin
        Buffer.add_string buf
          (String.concat ";" (List.map sanitize_frame s.Analyzer.frames));
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int w);
        Buffer.add_char buf '\n'
      end)
    flame;
  Buffer.contents buf

(** Parse a folded-stack document back into [(frames, weight)] rows —
    the validator the export tests round-trip through.  Rejects empty
    frames, missing weights, and non-numeric or negative weights. *)
let parse_folded (s : string) : ((string list * int) list, string) result =
  let parse_line lineno line =
    match String.rindex_opt line ' ' with
    | None -> Error (Printf.sprintf "line %d: no weight separator" lineno)
    | Some i ->
        let stack = String.sub line 0 i in
        let weight = String.sub line (i + 1) (String.length line - i - 1) in
        let frames = String.split_on_char ';' stack in
        if List.exists (fun f -> f = "") frames then
          Error (Printf.sprintf "line %d: empty frame" lineno)
        else
          (match int_of_string_opt weight with
          | Some w when w >= 0 -> Ok (frames, w)
          | Some _ -> Error (Printf.sprintf "line %d: negative weight" lineno)
          | None ->
              Error (Printf.sprintf "line %d: bad weight %S" lineno weight))
  in
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go (lineno + 1) acc rest
    | line :: rest -> (
        match parse_line lineno line with
        | Ok row -> go (lineno + 1) (row :: acc) rest
        | Error _ as e -> e)
  in
  go 1 [] lines
