(** Aligned text tables and CSV emission for the experiment harness. *)

type align = L | R

type t

val create : (string * align) list -> t

(** Raises [Invalid_argument] if the cell count does not match the
    column count. *)
val add_row : t -> string list -> unit

val addf : t -> string list -> unit

val cell_float : ?digits:int -> float -> string

(** [cell_pct 0.5] is ["50.0%"]. *)
val cell_pct : ?digits:int -> float -> string

val cell_int : int -> string

val render : Format.formatter -> t -> unit

(** [render] to stdout; when a CSV directory is set and [name] is given,
    also writes [<dir>/<name>.csv]. *)
val print : ?name:string -> t -> unit

(** Set the CSV artifact directory used by [print ~name]. *)
val set_csv_dir : string option -> unit

val to_csv : t -> string
