(** A minimal JSON emitter and validating parser: enough to make analyzer
    reports machine-readable for CI pipelines and notebooks — and to check
    that emitted artifacts (Perfetto traces, reports) are well-formed —
    without external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          emit buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf 0 v;
  Buffer.contents buf

(* Single-line rendering for line-oriented formats (the suite runner's
   append-only checkpoint journal is JSONL: one record per line). *)
let rec emit_compact buf v =
  match v with
  | Null | Bool _ | Int _ | Float _ | String _ -> emit buf 0 v
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit_compact buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit_compact buf v)
        fields;
      Buffer.add_char buf '}'

let to_compact_string v =
  let buf = Buffer.create 256 in
  emit_compact buf v;
  Buffer.contents buf

(* Field accessors for consumers that pick records apart (journal loading,
   report validation); [None] on missing keys or shape mismatches. *)
let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_int_opt = function Int n -> Some n | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

(* -- parser ------------------------------------------------------------- *)

exception Parse_error of string

(* Recursive-descent parser over the full JSON grammar.  Numbers parse as
   [Int] when they round-trip exactly, [Float] otherwise. *)
let parse (s : string) : (t, string) result =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < len && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= len then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 >= len then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* decode to UTF-8 (surrogates kept as-is bytes) *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
      | c when Char.code c < 0x20 -> fail "unescaped control character"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < len && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some n -> Int n
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(** [Ok ()] iff [s] is a single well-formed JSON document. *)
let validate s = Result.map (fun _ -> ()) (parse s)
