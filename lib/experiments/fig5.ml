(** Paper Fig. 5: correlation of ThreadFuser's predictions against SIMT
    hardware across CPU compiler optimization levels.

    The role of the NVIDIA H100 + Nsight Compute is played by the golden
    SPMD run: the CUDA-style variant of each correlation workload replayed
    by the warp emulator, whose efficiency and 32 B-transaction counts are
    exactly what SIMT hardware performance counters report for that kernel.
    ThreadFuser's *prediction* analyzes the CPU binary compiled at
    -O0/-O1/-O2/-O3 (paper §IV).

    (a) SIMT-efficiency correlation: MAE and Pearson per level; the paper
        sees near-perfect correlation at O0/O1 and optimistic estimates at
        O3 (gcc if-converts divergence the GPU binary keeps).
    (b) Memory-transaction correlation: O0 inflates transactions (every
        variable in memory), higher levels converge. *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Compiler = Threadfuser_compiler.Compiler
module Table = Threadfuser_report.Table
module Stats = Threadfuser_stats.Stats
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics

type sample = {
  workload : string;
  level : Compiler.level;
  predicted_eff : float;
  hardware_eff : float;
  predicted_txns : float; (* per kilo-instruction, to normalize sizes *)
  hardware_txns : float;
  predicted_total : int; (* absolute 32 B transaction counts (log-log plot) *)
  hardware_total : int;
}

let txn_rate (r : Analyzer.result) =
  let rep = r.Analyzer.report in
  1000.0
  *. float_of_int rep.Metrics.total_mem_txns
  /. float_of_int (max 1 rep.Metrics.thread_instrs)

let samples ctx : sample list =
  List.concat_map
    (fun (w : W.t) ->
      match Ctx.analysis_cuda ctx w with
      | None -> []
      | Some oracle ->
          let hardware_eff = oracle.Analyzer.report.Metrics.simt_efficiency in
          let hardware_txns = txn_rate oracle in
          let hardware_total = oracle.Analyzer.report.Metrics.total_mem_txns in
          List.map
            (fun level ->
              let r = Ctx.analysis ~level ctx w in
              {
                workload = w.W.name;
                level;
                predicted_eff = r.Analyzer.report.Metrics.simt_efficiency;
                hardware_eff;
                predicted_txns = txn_rate r;
                hardware_txns;
                predicted_total = r.Analyzer.report.Metrics.total_mem_txns;
                hardware_total;
              })
            Compiler.all_levels)
    Registry.correlation

type level_stats = {
  level : Compiler.level;
  eff_mae : float;
  eff_corr : float;
  eff_bias : float; (* mean signed error: positive = overestimate *)
  txn_mape : float;
  txn_corr : float;
}

let per_level (samples : sample list) : level_stats list =
  List.map
    (fun level ->
      let s = List.filter (fun (s : sample) -> s.level = level) samples in
      let pe = Array.of_list (List.map (fun s -> s.predicted_eff) s) in
      let he = Array.of_list (List.map (fun s -> s.hardware_eff) s) in
      (* the paper plots absolute transaction counts on a log-log scale;
         correlate the logs of the totals *)
      let pt =
        Array.of_list
          (List.map (fun s -> log10 (1. +. float_of_int s.predicted_total)) s)
      in
      let ht =
        Array.of_list
          (List.map (fun s -> log10 (1. +. float_of_int s.hardware_total)) s)
      in
      {
        level;
        eff_mae = Stats.mae ~predicted:pe ~reference:he;
        eff_corr = Stats.pearson pe he;
        eff_bias =
          Stats.mean
            (Array.of_list (List.map (fun s -> s.predicted_eff -. s.hardware_eff) s));
        txn_mape =
          Stats.mape
            ~predicted:(Array.of_list (List.map (fun s -> s.predicted_txns) s))
            ~reference:(Array.of_list (List.map (fun s -> s.hardware_txns) s));
        txn_corr = Stats.pearson pt ht;
      })
    Compiler.all_levels

let build_detail samples =
  let t =
    Table.create
      [
        ("workload", Table.L);
        ("level", Table.L);
        ("pred eff", Table.R);
        ("hw eff", Table.R);
        ("pred txn/ki", Table.R);
        ("hw txn/ki", Table.R);
      ]
  in
  List.iter
    (fun s ->
      Table.add_row t
        [
          s.workload;
          Compiler.to_string s.level;
          Table.cell_pct s.predicted_eff;
          Table.cell_pct s.hardware_eff;
          Table.cell_float s.predicted_txns;
          Table.cell_float s.hardware_txns;
        ])
    samples;
  t

let build_summary stats =
  let t =
    Table.create
      [
        ("level", Table.L);
        ("eff MAE", Table.R);
        ("eff Correl", Table.R);
        ("eff bias", Table.R);
        ("txn MAE%", Table.R);
        ("txn Correl", Table.R);
      ]
  in
  List.iter
    (fun s ->
      Table.add_row t
        [
          Compiler.to_string s.level;
          Table.cell_pct s.eff_mae;
          Table.cell_float ~digits:3 s.eff_corr;
          Printf.sprintf "%+.1f%%" (100. *. s.eff_bias);
          Table.cell_pct s.txn_mape;
          Table.cell_float ~digits:3 s.txn_corr;
        ])
    stats;
  t

(* Error-dispersion statistics the paper quotes (std of errors, share of
   samples within one standard deviation). *)
let dispersion samples =
  let errors =
    Array.of_list
      (List.map (fun s -> s.predicted_eff -. s.hardware_eff) samples)
  in
  (Stats.stddev errors, Stats.within_stddev errors)

let run ctx =
  Fmt.pr "@.== Fig. 5: correlation vs SIMT hardware across gcc -O levels ==@.";
  let s = samples ctx in
  Fmt.pr "@.-- per-sample detail (11 correlation workloads x 4 levels) --@.";
  Table.print ~name:"fig5_detail" (build_detail s);
  Fmt.pr "@.-- (a) SIMT efficiency and (b) memory transactions, per level --@.";
  let stats = per_level s in
  Table.print ~name:"fig5_summary" (build_summary stats);
  let std, within = dispersion s in
  Fmt.pr
    "@.efficiency error dispersion: std %.1f%%, %.0f%% of samples within one \
     std of the mean@.@."
    (100. *. std) (100. *. within);
  stats
