(** Thread-count scaling validation of the paper's bounded-tracing claim
    (§V-A): efficiency should be stable as more threads are traced. *)

val thread_counts : int list

type row = { workload : string; eff : (int * float) list; spread : float }

val series : Ctx.t -> row list

val build : row list -> Threadfuser_report.Table.t

val run : Ctx.t -> row list
