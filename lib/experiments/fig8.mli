(** Paper Fig. 8: share of dynamic instructions traced vs skipped (I/O and
    lock spinning) per microservice. *)

type row = { workload : string; traced : float; io : float; spin : float }

val series : Ctx.t -> row list

val geomean_traced : row list -> float

val run : Ctx.t -> row list * float
