(** Paper Table II: XAPP vs ThreadFuser, with this reproduction's measured
    accuracy numbers. *)

val build :
  ?xapp:Xapp_exp.summary ->
  fig5:Fig5.level_stats list ->
  speedup_corr:float ->
  time_error:float ->
  unit ->
  Threadfuser_report.Table.t

val run :
  ?xapp:Xapp_exp.summary ->
  fig5:Fig5.level_stats list ->
  speedup_corr:float ->
  time_error:float ->
  unit ->
  unit
