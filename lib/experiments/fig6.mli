(** Paper Fig. 6: projected GPU speedup vs the multicore CPU baseline,
    with the CUDA-trace series as validation. *)

val gpu_config : Threadfuser_gpusim.Config.t

val cpu_config : Threadfuser_cpusim.Cpusim.config

type row = {
  workload : string;
  has_cuda : bool;
  speedup_tf : float;
  speedup_cuda : float option;
  gpu : Threadfuser_gpusim.Gpusim.stats;
}

(** (GPU seconds, simulator stats) for a traced run's warp trace.
    [domains] parallelizes both the analyzer replay and the SM partition;
    results are byte-identical at any value. *)
val gpu_seconds :
  ?domains:int ->
  Threadfuser_workloads.Workload.traced ->
  float * Threadfuser_gpusim.Gpusim.stats

val cpu_seconds : ?domains:int -> Threadfuser_workloads.Workload.traced -> float

val series : Ctx.t -> row list

(** Pearson correlation between the two speedup series (the paper's 0.97). *)
val speedup_correlation : row list -> float

(** Mean relative execution-time error between the series. *)
val time_error : row list -> float

val run : Ctx.t -> row list * float
