(** The XAPP baseline comparison behind Table II: leave-one-out regression
    over profile features vs ThreadFuser's replay-based projection, both
    against the CUDA-trace ground truth. *)

type row = {
  workload : string;
  actual : float;
  xapp_pred : float;
  xapp_err : float;
  tf_pred : float;
  tf_err : float;
}

type summary = { rows : row list; xapp_mean_err : float; tf_mean_err : float }

val collect : Ctx.t -> summary

val build : summary -> Threadfuser_report.Table.t

val run : Ctx.t -> summary
