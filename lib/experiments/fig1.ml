(** Paper Fig. 1: estimated SIMT efficiency of all 36 MIMD workloads at warp
    sizes 8, 16 and 32.  The paper's headline landscape: efficiency falls
    with warp width; uniform kernels (N-body, MD5) barely move while
    divergent ones (Pigz, BFS) are strongly width-sensitive. *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Table = Threadfuser_report.Table
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics

let warp_sizes = [ 8; 16; 32 ]

type row = { workload : string; eff : (int * float) list }

let series ctx : row list =
  List.map
    (fun (w : W.t) ->
      let eff =
        List.map
          (fun warp_size ->
            let options = { Analyzer.default_options with warp_size } in
            let r = Ctx.analysis ~options ctx w in
            (warp_size, r.Analyzer.report.Metrics.simt_efficiency))
          warp_sizes
      in
      { workload = w.W.name; eff })
    Registry.all

let build rows =
  let t =
    Table.create
      ([ ("workload", Table.L) ]
      @ List.map (fun w -> (Printf.sprintf "warp %d" w, Table.R)) warp_sizes)
  in
  List.iter
    (fun r ->
      Table.add_row t
        (r.workload :: List.map (fun (_, e) -> Table.cell_pct e) r.eff))
    rows;
  t

let run ctx =
  Fmt.pr "@.== Fig. 1: SIMT efficiency vs warp size (8/16/32) ==@.";
  let rows = series ctx in
  Table.print ~name:"fig1" (build rows);
  (* the paper's two headline observations *)
  let eff name w =
    let r = List.find (fun r -> r.workload = name) rows in
    List.assoc w r.eff
  in
  Fmt.pr
    "@.observations: pigz %.0f%% @8 vs %.0f%% @32 (width-sensitive); nbody \
     varies %.1f points; md5 varies %.1f points (width-insensitive)@.@."
    (100. *. eff "pigz" 8)
    (100. *. eff "pigz" 32)
    (100. *. (eff "nbody" 8 -. eff "nbody" 32))
    (100. *. (eff "md5" 8 -. eff "md5" 32))
