(** Paper Fig. 7: the HDSearch-Midtier per-function case study and its
    SIMT-aware fix. *)

val run : Ctx.t -> Threadfuser.Analyzer.result * Threadfuser.Analyzer.result
