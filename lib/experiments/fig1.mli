(** Paper Fig. 1: SIMT efficiency of all 36 workloads at warp sizes
    8/16/32. *)

val warp_sizes : int list

type row = { workload : string; eff : (int * float) list }

val series : Ctx.t -> row list

val build : row list -> Threadfuser_report.Table.t

val run : Ctx.t -> unit
