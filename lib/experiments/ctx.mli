(** Shared experiment context: memoizes traced workloads and analyzer
    results so the figure generators do not re-trace the same binaries.
    [threads] overrides every workload's default SIMT thread count;
    [scale] grows the synthetic inputs. *)

type t

val create : ?threads:int -> ?scale:int -> unit -> t

val threads_for : t -> Threadfuser_workloads.Workload.t -> int

(** Traced CPU run at an optimization level (default O1), memoized. *)
val traced :
  ?level:Threadfuser_compiler.Compiler.level ->
  t ->
  Threadfuser_workloads.Workload.t ->
  Threadfuser_workloads.Workload.traced

(** Traced CUDA-variant run (correlation workloads only), memoized. *)
val traced_cuda :
  t -> Threadfuser_workloads.Workload.t -> Threadfuser_workloads.Workload.traced option

(** Analyzer result over the CPU traces, memoized per (level, options). *)
val analysis :
  ?level:Threadfuser_compiler.Compiler.level ->
  ?options:Threadfuser.Analyzer.options ->
  t ->
  Threadfuser_workloads.Workload.t ->
  Threadfuser.Analyzer.result

(** Analyzer result over the CUDA-variant traces — the "hardware oracle"
    of the correlation study. *)
val analysis_cuda :
  ?options:Threadfuser.Analyzer.options ->
  t ->
  Threadfuser_workloads.Workload.t ->
  Threadfuser.Analyzer.result option
