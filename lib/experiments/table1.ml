(** Paper Table I: the studied-workload catalog with per-suite grouping and
    SIMT thread counts.  [#SIMT threads (paper)] is Table I's value; the
    [threads (here)] column is the scaled-down count this repository runs. *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Table = Threadfuser_report.Table

let build ctx =
  let t =
    Table.create
      [
        ("suite", Table.L);
        ("workload", Table.L);
        ("category", Table.L);
        ("#SIMT threads (paper)", Table.R);
        ("threads (here)", Table.R);
        ("GPU impl", Table.L);
        ("description", Table.L);
      ]
  in
  List.iter
    (fun (w : W.t) ->
      Table.add_row t
        [
          w.W.suite;
          w.W.name;
          W.category_name w.W.category;
          Table.cell_int w.W.table_threads;
          Table.cell_int (Ctx.threads_for ctx w);
          (if w.W.cuda <> None then "yes" else "no");
          w.W.description;
        ])
    Registry.all;
  t

let run ctx =
  Fmt.pr "@.== Table I: studied workloads (36; 11 with CUDA counterparts) ==@.";
  Table.print ~name:"table1" (build ctx);
  Fmt.pr "@."
