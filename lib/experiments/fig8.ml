(** Paper Fig. 8: percentage of dynamic instructions traced vs skipped
    (I/O operations and lock spinning) for the microservice workloads.
    The paper's GEOMEAN is ~90% traced, justifying the analyzer's focus on
    the traced portion. *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Table = Threadfuser_report.Table
module Stats = Threadfuser_stats.Stats
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics

type row = { workload : string; traced : float; io : float; spin : float }

let series ctx : row list =
  List.map
    (fun (w : W.t) ->
      let rep = (Ctx.analysis ctx w).Analyzer.report in
      let total =
        float_of_int
          (rep.Metrics.thread_instrs + rep.Metrics.skipped_io
         + rep.Metrics.skipped_spin)
      in
      {
        workload = w.W.name;
        traced = float_of_int rep.Metrics.thread_instrs /. total;
        io = float_of_int rep.Metrics.skipped_io /. total;
        spin = float_of_int rep.Metrics.skipped_spin /. total;
      })
    Registry.microservices

let build rows =
  let t =
    Table.create
      [
        ("workload", Table.L);
        ("traced", Table.R);
        ("skipped: I/O", Table.R);
        ("skipped: lock spin", Table.R);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.workload;
          Table.cell_pct r.traced;
          Table.cell_pct r.io;
          Table.cell_pct r.spin;
        ])
    rows;
  t

let geomean_traced rows =
  Stats.geomean (Array.of_list (List.map (fun r -> r.traced) rows))

let run ctx =
  Fmt.pr "@.== Fig. 8: traced vs skipped (I/O + lock spin) instructions ==@.";
  let rows = series ctx in
  Table.print ~name:"fig8" (build rows);
  let g = geomean_traced rows in
  Fmt.pr "@.GEOMEAN traced: %.1f%% (paper: ~90%%)@.@." (100. *. g);
  (rows, g)
