(** Ablation studies for the design choices DESIGN.md calls out (not paper
    figures, but the knobs §III says architects can explore):

    1. warp-batching policy (sequential vs strided vs signature-greedy);
    2. reconvergence discipline (per-block IPDOM vs function-exit only);
    3. the GPU warp scheduler (greedy-then-oldest vs loose round-robin). *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Table = Threadfuser_report.Table
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics
module Batching = Threadfuser.Batching
module Emulator = Threadfuser.Emulator
module Gpusim = Threadfuser_gpusim.Gpusim
module Gpu_config = Threadfuser_gpusim.Config

let divergent_picks = [ "pigz"; "bfs"; "b+tree"; "freqmine"; "particlefilter" ]

let batching ctx =
  Fmt.pr "@.== Ablation: warp-batching policy (warp 32) ==@.";
  let t =
    Table.create
      ([ ("workload", Table.L) ]
      @ List.map (fun p -> (Batching.to_string p, Table.R)) Batching.all)
  in
  List.iter
    (fun name ->
      let w = Registry.find name in
      let effs =
        List.map
          (fun batching ->
            let r = Ctx.analysis ~options:{ Analyzer.default_options with batching } ctx w in
            r.Analyzer.report.Metrics.simt_efficiency)
          Batching.all
      in
      Table.add_row t (name :: List.map Table.cell_pct effs))
    divergent_picks;
  Table.print ~name:"ablation_batching" t;
  Fmt.pr "@."

let reconvergence ctx =
  Fmt.pr
    "@.== Ablation: IPDOM reconvergence vs function-exit-only (warp 32) ==@.";
  let t =
    Table.create
      [ ("workload", Table.L); ("IPDOM", Table.R); ("function exit", Table.R) ]
  in
  List.iter
    (fun name ->
      let w = Registry.find name in
      let eff reconv =
        (Ctx.analysis ~options:{ Analyzer.default_options with reconv } ctx w)
          .Analyzer.report
          .Metrics.simt_efficiency
      in
      Table.add_row t
        [
          name;
          Table.cell_pct (eff Emulator.Ipdom_reconv);
          Table.cell_pct (eff Emulator.Function_exit_reconv);
        ])
    divergent_picks;
  Table.print ~name:"ablation_reconvergence" t;
  Fmt.pr "@."

let scheduler ctx =
  Fmt.pr "@.== Ablation: GPU warp scheduler (GTO vs LRR) ==@.";
  let t =
    Table.create
      [ ("workload", Table.L); ("GTO cycles", Table.R); ("LRR cycles", Table.R) ]
  in
  List.iter
    (fun name ->
      let w = Registry.find name in
      let tr = Ctx.traced ctx w in
      let r =
        Analyzer.analyze
          ~options:{ Analyzer.default_options with gen_warp_trace = true }
          tr.W.prog tr.W.traces
      in
      let wt = Option.get r.Analyzer.warp_trace in
      let cycles scheduler =
        (* one loaded SM so warp scheduling actually matters *)
        let config =
          { Fig6.gpu_config with Gpu_config.scheduler; n_sms = 1; max_warps_per_sm = 8 }
        in
        (Gpusim.run ~config wt).Gpusim.cycles
      in
      Table.add_row t
        [
          name;
          Table.cell_int (cycles Gpu_config.Gto);
          Table.cell_int (cycles Gpu_config.Lrr);
        ])
    [ "vectoradd"; "uncoalesced"; "nbody"; "bfs" ];
  Table.print ~name:"ablation_scheduler" t;
  Fmt.pr "@."

let lock_policy ctx =
  Fmt.pr
    "@.== Ablation: lock serialization policy (conflicting lanes vs whole      warp vs ignored) ==@.";
  let t =
    Table.create
      [
        ("workload", Table.L);
        ("conflicting-only", Table.R);
        ("whole-warp", Table.R);
        ("ignored", Table.R);
      ]
  in
  List.iter
    (fun name ->
      let w = Registry.find name in
      let eff sync =
        (Ctx.analysis ~options:{ Analyzer.default_options with sync } ctx w)
          .Analyzer.report
          .Metrics.simt_efficiency
      in
      Table.add_row t
        [
          name;
          Table.cell_pct (eff Emulator.Serialize);
          Table.cell_pct (eff Emulator.Serialize_all);
          Table.cell_pct (eff Emulator.Ignore_sync);
        ])
    [ "mcrouter-memcached"; "urlshort"; "uniqueid"; "post"; "fluidanimate" ];
  Table.print ~name:"ablation_lock_policy" t;
  Fmt.pr
    "@.the paper serializes only same-lock threads and defers other      reconvergence/serialization choices to future work (§III); whole-warp      serialization is the pessimistic end of that space.@."

let run ctx =
  batching ctx;
  reconvergence ctx;
  lock_policy ctx;
  scheduler ctx
