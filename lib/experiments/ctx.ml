(** Shared experiment context: memoizes traced workloads and analyzer runs
    so the figure generators do not re-trace the same binaries.

    [scale] grows the synthetic inputs; [threads] overrides each workload's
    default SIMT thread count (the paper's Table I counts, scaled down so
    the whole evaluation runs in seconds — see EXPERIMENTS.md). *)

module W = Threadfuser_workloads.Workload
module Compiler = Threadfuser_compiler.Compiler
module Analyzer = Threadfuser.Analyzer

type t = {
  threads : int option;
  scale : int;
  traces : (string * Compiler.level * bool, W.traced) Hashtbl.t;
  analyses : (string * Compiler.level * bool * int, Analyzer.result) Hashtbl.t;
}

let create ?threads ?(scale = 1) () =
  { threads; scale; traces = Hashtbl.create 64; analyses = Hashtbl.create 64 }

let threads_for t (w : W.t) = Option.value ~default:w.W.default_threads t.threads

(** Traced CPU run of [w] compiled at [level]. *)
let traced ?(level = Compiler.O1) t (w : W.t) : W.traced =
  let key = (w.W.name, level, false) in
  match Hashtbl.find_opt t.traces key with
  | Some tr -> tr
  | None ->
      let tr =
        W.trace_cpu ~level ~threads:(threads_for t w) ~scale:t.scale w
      in
      Hashtbl.add t.traces key tr;
      tr

(** Traced CUDA-variant run (correlation workloads only). *)
let traced_cuda t (w : W.t) : W.traced option =
  let key = (w.W.name, Compiler.O2, true) in
  match Hashtbl.find_opt t.traces key with
  | Some tr -> Some tr
  | None ->
      Option.map
        (fun tr ->
          Hashtbl.add t.traces key tr;
          tr)
        (W.trace_cuda ~threads:(threads_for t w) ~scale:t.scale w)

(** Analyzer result over the CPU traces. *)
let analysis ?(level = Compiler.O1) ?(options = Analyzer.default_options) t
    (w : W.t) : Analyzer.result =
  let key = (w.W.name, level, false, Hashtbl.hash options) in
  match Hashtbl.find_opt t.analyses key with
  | Some r -> r
  | None ->
      let tr = traced ~level t w in
      let r = Analyzer.analyze ~options tr.W.prog tr.W.traces in
      Hashtbl.add t.analyses key r;
      r

(** Analyzer result over the CUDA-variant traces — the "hardware oracle"
    for the §IV correlation study (an SPMD program's warp replay *is* what
    the GPU's SIMT front-end executes). *)
let analysis_cuda ?(options = Analyzer.default_options) t (w : W.t) :
    Analyzer.result option =
  let key = (w.W.name, Compiler.O2, true, Hashtbl.hash options) in
  match Hashtbl.find_opt t.analyses key with
  | Some r -> Some r
  | None ->
      Option.map
        (fun (tr : W.traced) ->
          let r = Analyzer.analyze ~options tr.W.prog tr.W.traces in
          Hashtbl.add t.analyses key r;
          r)
        (traced_cuda t w)
