(** Paper Fig. 9: warp efficiency of the microservice workloads at warp
    size 32 when intra-warp lock serialization is emulated, compared with
    the lock-oblivious estimate.  The paper finds the decline modest for
    fine-grain-locked services (requests share little data) — and our
    coarse-locked UniqueID shows what happens when that assumption
    breaks. *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Table = Threadfuser_report.Table
module Stats = Threadfuser_stats.Stats
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics
module Emulator = Threadfuser.Emulator

type row = {
  workload : string;
  eff_locks : float; (* intra-warp locking emulated *)
  eff_nolocks : float; (* synchronization ignored *)
  serializations : int;
}

let series ctx : row list =
  List.map
    (fun (w : W.t) ->
      let with_locks = (Ctx.analysis ctx w).Analyzer.report in
      let without =
        (Ctx.analysis
           ~options:{ Analyzer.default_options with sync = Emulator.Ignore_sync }
           ctx w)
          .Analyzer.report
      in
      {
        workload = w.W.name;
        eff_locks = with_locks.Metrics.simt_efficiency;
        eff_nolocks = without.Metrics.simt_efficiency;
        serializations = with_locks.Metrics.serializations;
      })
    Registry.microservices

let build rows =
  let t =
    Table.create
      [
        ("workload", Table.L);
        ("eff (locks emulated)", Table.R);
        ("eff (locks ignored)", Table.R);
        ("drop", Table.R);
        ("warp lock conflicts", Table.R);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.workload;
          Table.cell_pct r.eff_locks;
          Table.cell_pct r.eff_nolocks;
          Table.cell_pct (r.eff_nolocks -. r.eff_locks);
          Table.cell_int r.serializations;
        ])
    rows;
  t

let run ctx =
  Fmt.pr "@.== Fig. 9: impact of intra-warp lock serialization (warp 32) ==@.";
  let rows = series ctx in
  Table.print ~name:"fig9" (build rows);
  let avg =
    Stats.mean (Array.of_list (List.map (fun r -> r.eff_locks) rows))
  in
  Fmt.pr
    "@.mean microservice efficiency with locking emulated: %.1f%% (paper \
     reports ~78%% average control efficiency for microservices)@.@."
    (100. *. avg);
  rows
