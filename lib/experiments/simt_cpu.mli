(** The "SIMT-CPU" design-point sweep (paper §I/§V-B): general-purpose SIMT
    hardware between a multicore CPU and a GPU, evaluated on the
    microservice suite. *)

val design_points : (string * int * int * float) list
(** (label, cores, warp width, clock GHz). *)

type cell = { speedup : float }

type row = { workload : string; cells : (string * cell) list }

val series : Ctx.t -> row list

val build : row list -> Threadfuser_report.Table.t

val run : Ctx.t -> row list
