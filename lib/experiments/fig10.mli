(** Paper Fig. 10: memory divergence — 32 B transactions per load/store,
    split into heap/stack/global segments. *)

type row = {
  workload : string;
  heap : Threadfuser.Metrics.segment_stat;
  stack : Threadfuser.Metrics.segment_stat;
  global : Threadfuser.Metrics.segment_stat;
}

val series : Ctx.t -> row list

val run : Ctx.t -> row list
