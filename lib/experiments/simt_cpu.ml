(** The "SIMT-CPU" design point (paper §I, §V-B): prior work (Simty, DITVA,
    SIMT-X, SIMR) argues for general-purpose SIMT hardware with thread
    counts {e between} a multicore CPU and a GPU, aimed exactly at the
    request-parallel services ThreadFuser can now characterize.

    This experiment sweeps such mid-points — a few wide cores with modest
    warp widths at CPU-like clocks — on the microservice suite, and reports
    where each service's sweet spot falls relative to the scalar-CPU
    baseline and the full GPU. *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Table = Threadfuser_report.Table
module Analyzer = Threadfuser.Analyzer
module Gpusim = Threadfuser_gpusim.Gpusim
module Config = Threadfuser_gpusim.Config
module Cpusim = Threadfuser_cpusim.Cpusim

(* SIMT-CPU design points: (name, cores/"SMs", warp width, clock). *)
let design_points =
  [
    ("simt-cpu 4x8", 4, 8, 2.5);
    ("simt-cpu 8x8", 8, 8, 2.5);
    ("simt-cpu 8x16", 8, 16, 2.5);
    ("gpu 8x32", 8, 32, 1.5);
  ]

let picks =
  [ "mcrouter-memcached"; "mcrouter-mid"; "textsearch-leaf"; "hdsearch-leaf";
    "uniqueid"; "user" ]

let config_of ~sms ~clock =
  {
    Config.rtx3070 with
    Config.n_sms = sms;
    max_warps_per_sm = 16;
    issue_width = 2;
    clock_ghz = clock;
  }

type cell = { speedup : float }

type row = { workload : string; cells : (string * cell) list }

let series ctx : row list =
  List.map
    (fun name ->
      let w = Registry.find name in
      let tr = Ctx.traced ctx w in
      let cpu_t = Fig6.cpu_seconds tr in
      let cells =
        List.map
          (fun (label, sms, width, clock) ->
            let r =
              Analyzer.analyze
                ~options:
                  {
                    Analyzer.default_options with
                    warp_size = width;
                    gen_warp_trace = true;
                  }
                tr.W.prog tr.W.traces
            in
            let wt = Option.get r.Analyzer.warp_trace in
            let config = config_of ~sms ~clock in
            let stats = Gpusim.run ~config wt in
            let t = Gpusim.seconds ~config stats in
            (label, { speedup = cpu_t /. t }))
          design_points
      in
      { workload = name; cells })
    picks

let build rows =
  let t =
    Table.create
      ([ ("workload", Table.L) ]
      @ List.map (fun (l, _, _, _) -> (l, Table.R)) design_points)
  in
  List.iter
    (fun r ->
      Table.add_row t
        (r.workload
        :: List.map (fun (_, c) -> Table.cell_float c.speedup) r.cells))
    rows;
  t

let run ctx =
  Fmt.pr
    "@.== SIMT-CPU design points: microservice speedup over the scalar \
     multicore (8 cores @3 GHz) ==@.";
  let rows = series ctx in
  Table.print ~name:"simtcpu" (build rows);
  (* where does each service peak? *)
  List.iter
    (fun r ->
      let best, cell =
        List.fold_left
          (fun (bl, bc) (l, c) -> if c.speedup > bc.speedup then (l, c) else (bl, bc))
          (List.hd r.cells) (List.tl r.cells)
      in
      Fmt.pr "  %-20s peaks at %-12s (%.2fx)@." r.workload best cell.speedup)
    rows;
  Fmt.pr
    "@.every service beats the scalar multicore at a narrow-warp, \
     CPU-clocked design point and loses at full GPU width — the \
     SIMR/SIMT-X argument, measured.@.@.";
  rows
