(** Paper Fig. 7: the HDSearch-Midtier case study.

    (a) distribution of executed instructions per function — `getpoint`
    (the FLANN LSH traversal of Listing 1) plus the allocator-bound
    `vector`/`__malloc` path dominate;
    (b) per-function SIMT efficiency — `getpoint` is the divergence
    bottleneck.  Applying the SIMT-aware fix (uniform top-10 candidate
    count + concurrent allocator) lifts whole-service efficiency from
    single digits to ~90%+ while the paper reports 6% -> 90%. *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Table = Threadfuser_report.Table
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics

let build_functions (r : Analyzer.result) =
  let t =
    Table.create
      [
        ("function", Table.L);
        ("instr share", Table.R);
        ("SIMT efficiency", Table.R);
        ("warp issues", Table.R);
      ]
  in
  List.iter
    (fun (f : Metrics.func_stat) ->
      Table.add_row t
        [
          f.Metrics.func_name;
          Table.cell_pct f.Metrics.instr_share;
          Table.cell_pct f.Metrics.efficiency;
          Table.cell_int f.Metrics.issues;
        ])
    r.Analyzer.report.Metrics.per_function;
  t

let run ctx =
  Fmt.pr "@.== Fig. 7: HDSearch-Midtier per-function analysis ==@.";
  let broken = Ctx.analysis ctx (Registry.find "hdsearch-mid") in
  let fixed = Ctx.analysis ctx (Registry.find "hdsearch-mid-fixed") in
  Fmt.pr "@.-- as written (overall efficiency %.1f%%) --@."
    (100. *. broken.Analyzer.report.Metrics.simt_efficiency);
  Table.print ~name:"fig7_as_written" (build_functions broken);
  Fmt.pr "@.-- after the SIMT-aware fix (overall efficiency %.1f%%) --@."
    (100. *. fixed.Analyzer.report.Metrics.simt_efficiency);
  Table.print ~name:"fig7_fixed" (build_functions fixed);
  Fmt.pr
    "@.fix: return the top-10 candidates uniformly (paper §V-A) and assume \
     a fine-grained concurrent allocator (paper §V-B): %.0f%% -> %.0f%%@.@."
    (100. *. broken.Analyzer.report.Metrics.simt_efficiency)
    (100. *. fixed.Analyzer.report.Metrics.simt_efficiency);
  (broken, fixed)
