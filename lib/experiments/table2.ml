(** Paper Table II: XAPP vs ThreadFuser.  Qualitative rows follow the
    paper; the accuracy rows carry this reproduction's measurements — the
    ThreadFuser column from the Fig. 5/Fig. 6 runs and (when the [xapp]
    experiment ran) the {!Xapp_exp} reimplementation's leave-one-out error
    next to XAPP's published number. *)

module Table = Threadfuser_report.Table
module Compiler = Threadfuser_compiler.Compiler

let build ?(xapp : Xapp_exp.summary option) ~(fig5 : Fig5.level_stats list)
    ~speedup_corr ~time_error () =
  let o1 = List.find (fun s -> s.Fig5.level = Compiler.O1) fig5 in
  let t =
    Table.create [ ("metric", Table.L); ("XAPP", Table.L); ("ThreadFuser (this repo)", Table.L) ]
  in
  List.iter (Table.add_row t)
    [
      [ "input"; "CPU code"; "CPU MIMD traces" ];
      [
        "output";
        "GPU speedup projection";
        "SIMT efficiency, memory divergence, cycle-level estimate, source \
         bottlenecks";
      ];
      [ "analysis"; "profiling + ML model"; "dynamic CFG + SIMT-stack replay" ];
      [
        "accuracy: SIMT efficiency";
        "n/a";
        Printf.sprintf "%.1f%% MAE at -O1 (correl %.2f)" (100. *. o1.Fig5.eff_mae)
          o1.Fig5.eff_corr;
      ];
      [
        "accuracy: memory";
        "n/a";
        Printf.sprintf "%.0f%% MAE at -O1 (correl %.2f)"
          (100. *. o1.Fig5.txn_mape) o1.Fig5.txn_corr;
      ];
      [
        "accuracy: execution time";
        (match xapp with
        | Some s ->
            Printf.sprintf "26.9%% (published); %.0f%% for our reimplementation"
              (100. *. s.Xapp_exp.xapp_mean_err)
        | None -> "26.9% error (published)");
        Printf.sprintf "%.2f speedup correlation, %.0f%% time error"
          speedup_corr (100. *. time_error);
      ];
      [ "hardware support"; "only GPUs"; "any SIMT hardware (via warp traces)" ];
    ];
  t

let run ?xapp ~fig5 ~speedup_corr ~time_error () =
  Fmt.pr "@.== Table II: XAPP vs ThreadFuser ==@.";
  Table.print ~name:"table2" (build ?xapp ~fig5 ~speedup_corr ~time_error ());
  Fmt.pr "@."
