(** Ablation studies for DESIGN.md's design choices: batching policy,
    reconvergence discipline, lock-serialization policy, GPU scheduler. *)

val batching : Ctx.t -> unit

val reconvergence : Ctx.t -> unit

val lock_policy : Ctx.t -> unit

val scheduler : Ctx.t -> unit

(** All of the above. *)
val run : Ctx.t -> unit
