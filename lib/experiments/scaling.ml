(** Thread-count scaling validation.

    The paper's §V-A justifies tracing a bounded number of SIMT threads:
    "Additional threads would repeat the same patterns without adding
    significant insights."  This experiment measures exactly that claim on
    this substrate: SIMT efficiency across growing thread counts should be
    stable once a few warps exist (divergence patterns are per-warp, and
    warps sample the same input distribution). *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Table = Threadfuser_report.Table
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics

let thread_counts = [ 32; 64; 128; 256 ]

let picks =
  [ "vectoradd"; "bfs"; "b+tree"; "pigz"; "textsearch-leaf"; "blackscholes" ]

type row = { workload : string; eff : (int * float) list; spread : float }

let series (_ctx : Ctx.t) : row list =
  List.map
    (fun name ->
      let w = Registry.find name in
      let eff =
        List.map
          (fun threads ->
            let r = W.analyze ~threads w in
            (threads, r.Analyzer.report.Metrics.simt_efficiency))
          thread_counts
      in
      let values = List.map snd eff in
      let spread =
        List.fold_left Float.max neg_infinity values
        -. List.fold_left Float.min infinity values
      in
      { workload = name; eff; spread })
    picks

let build rows =
  let t =
    Table.create
      ([ ("workload", Table.L) ]
      @ List.map (fun n -> (Printf.sprintf "%d thr" n, Table.R)) thread_counts
      @ [ ("spread", Table.R) ])
  in
  List.iter
    (fun r ->
      Table.add_row t
        (r.workload
        :: List.map (fun (_, e) -> Table.cell_pct e) r.eff
        @ [ Table.cell_pct r.spread ]))
    rows;
  t

let run ctx =
  Fmt.pr
    "@.== Scaling validation: SIMT efficiency vs traced thread count \
     (paper §V-A's bounded-tracing claim) ==@.";
  let rows = series ctx in
  Table.print ~name:"scaling" (build rows);
  let worst =
    List.fold_left (fun acc r -> Float.max acc r.spread) 0.0 rows
  in
  Fmt.pr
    "@.largest efficiency spread across 32..256 threads: %.1f points — \
     patterns repeat, so bounded tracing is sound.@.@."
    (100. *. worst);
  rows
