(** Paper Fig. 10: memory divergence — 32 B transactions per warp-level
    load/store, split into heap and stack segments (warp size 32).  Private
    per-thread stacks and allocator-scattered heap chunks keep both far
    from the 4-transactions-per-instruction ideal of coalesced 8-byte
    accesses, motivating SoA restructuring and SIMT-aware allocators. *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Table = Threadfuser_report.Table
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics

type row = {
  workload : string;
  heap : Metrics.segment_stat;
  stack : Metrics.segment_stat;
  global : Metrics.segment_stat;
}

let series ctx : row list =
  List.map
    (fun (w : W.t) ->
      let rep = (Ctx.analysis ctx w).Analyzer.report in
      {
        workload = w.W.name;
        heap = rep.Metrics.heap_mem;
        stack = rep.Metrics.stack_mem;
        global = rep.Metrics.global_mem;
      })
    Registry.microservices

let build rows =
  let t =
    Table.create
      [
        ("workload", Table.L);
        ("heap txn/instr", Table.R);
        ("stack txn/instr", Table.R);
        ("global txn/instr", Table.R);
        ("heap ld/st", Table.R);
        ("stack ld/st", Table.R);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.workload;
          Table.cell_float r.heap.Metrics.txns_per_instr;
          Table.cell_float r.stack.Metrics.txns_per_instr;
          Table.cell_float r.global.Metrics.txns_per_instr;
          Table.cell_int r.heap.Metrics.mem_issues;
          Table.cell_int r.stack.Metrics.mem_issues;
        ])
    rows;
  t

let run ctx =
  Fmt.pr
    "@.== Fig. 10: memory transactions per load/store, heap vs stack (warp \
     32; coalesced 8-byte ideal = 4) ==@.";
  let rows = series ctx in
  Table.print ~name:"fig10" (build rows);
  Fmt.pr "@.";
  rows
