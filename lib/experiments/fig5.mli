(** Paper Fig. 5: correlation of predictions against the SIMT-hardware
    oracle across gcc-style optimization levels — (a) SIMT efficiency,
    (b) 32 B memory transactions. *)

type sample = {
  workload : string;
  level : Threadfuser_compiler.Compiler.level;
  predicted_eff : float;
  hardware_eff : float;
  predicted_txns : float;  (** per kilo-instruction *)
  hardware_txns : float;
  predicted_total : int;  (** absolute transaction counts (log-log plot) *)
  hardware_total : int;
}

val samples : Ctx.t -> sample list

type level_stats = {
  level : Threadfuser_compiler.Compiler.level;
  eff_mae : float;
  eff_corr : float;
  eff_bias : float;  (** mean signed error; positive = overestimate *)
  txn_mape : float;
  txn_corr : float;
}

val per_level : sample list -> level_stats list

val dispersion : sample list -> float * float
(** (std of efficiency errors, share within one std). *)

val run : Ctx.t -> level_stats list
