(** The XAPP baseline comparison behind the paper's Table II.

    XAPP predicts GPU speedup from profile features of a single-threaded
    CPU run (no SIMT modelling); ThreadFuser replays the MIMD traces on a
    SIMT stack and simulates cycles.  Both predict the same ground truth
    here: the CUDA-variant trace's simulated speedup over the multicore
    CPU model (the same proxy Fig. 6 validates against).  XAPP is
    evaluated leave-one-out over the 11 correlation workloads, exactly its
    own protocol. *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Table = Threadfuser_report.Table
module Xapp = Threadfuser_xapp.Xapp
module Features = Threadfuser_xapp.Features

type row = {
  workload : string;
  actual : float; (* CUDA-trace simulated speedup (ground truth proxy) *)
  xapp_pred : float;
  xapp_err : float;
  tf_pred : float; (* ThreadFuser's own projection *)
  tf_err : float;
}

type summary = { rows : row list; xapp_mean_err : float; tf_mean_err : float }

let collect ctx : summary =
  (* ground truth + ThreadFuser predictions from the Fig. 6 machinery *)
  let samples, tf =
    List.fold_left
      (fun (samples, tf) (w : W.t) ->
        match Ctx.traced_cuda ctx w with
        | None -> (samples, tf)
        | Some cuda_tr ->
            let cpu_tr = Ctx.traced ctx w in
            let cpu_t = Fig6.cpu_seconds cpu_tr in
            let actual_t, _ = Fig6.gpu_seconds cuda_tr in
            let tf_t, _ = Fig6.gpu_seconds cpu_tr in
            (* XAPP profiles a single-threaded run of the same binary *)
            let single = W.trace_cpu ~threads:1 w in
            let features = Features.extract single.W.prog single.W.traces.(0) in
            ( { Xapp.name = w.W.name; features; speedup = cpu_t /. actual_t }
              :: samples,
              (w.W.name, cpu_t /. tf_t) :: tf ))
      ([], []) Registry.correlation
  in
  let preds = Xapp.loo_errors samples in
  let rows =
    List.map
      (fun (p : Xapp.prediction) ->
        let tf_pred = List.assoc p.Xapp.p_name tf in
        {
          workload = p.Xapp.p_name;
          actual = p.Xapp.actual;
          xapp_pred = p.Xapp.predicted;
          xapp_err = p.Xapp.rel_error;
          tf_pred;
          tf_err = abs_float (tf_pred -. p.Xapp.actual) /. p.Xapp.actual;
        })
      preds
  in
  {
    rows;
    xapp_mean_err = Xapp.mean_rel_error preds;
    tf_mean_err =
      List.fold_left (fun acc r -> acc +. r.tf_err) 0.0 rows
      /. float_of_int (max 1 (List.length rows));
  }

let build (s : summary) =
  let t =
    Table.create
      [
        ("workload", Table.L);
        ("actual speedup", Table.R);
        ("XAPP (LOO)", Table.R);
        ("XAPP err", Table.R);
        ("ThreadFuser", Table.R);
        ("TF err", Table.R);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.workload;
          Table.cell_float r.actual;
          Table.cell_float r.xapp_pred;
          Table.cell_pct r.xapp_err;
          Table.cell_float r.tf_pred;
          Table.cell_pct r.tf_err;
        ])
    s.rows;
  t

let run ctx =
  Fmt.pr
    "@.== XAPP baseline vs ThreadFuser (leave-one-out over the correlation \
     set) ==@.";
  let s = collect ctx in
  Table.print ~name:"xapp" (build s);
  Fmt.pr
    "@.mean relative execution-time error: XAPP %.0f%% (paper quotes 26.9%% \
     on real hardware) vs ThreadFuser %.0f%% (paper: 33%%)@.@."
    (100. *. s.xapp_mean_err)
    (100. *. s.tf_mean_err);
  s
