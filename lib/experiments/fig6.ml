(** Paper Fig. 6: projected speedup of each MIMD workload on SIMT hardware,
    normalized to multi-threaded CPU execution.

    Pipeline per workload: the analyzer replays the CPU traces into a
    warp-level RISC trace (CISC cracked, stack->local routing), the
    cycle-level SIMT simulator produces GPU cycles, and the multicore CPU
    timing model provides the baseline.  For the 11 correlation workloads
    the CUDA-style variant's trace gives the second series ("CUDA"), whose
    agreement with the ThreadFuser series is the paper's speedup-projection
    validation (Table II quotes a 0.97 correlation).

    The machines are scaled versions of the paper's testbed (the thread
    counts here are tens, not thousands): an 8-SM GPU at 1.5 GHz against an
    8-core CPU at 3 GHz.  Shapes, not absolute numbers, are the target. *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Table = Threadfuser_report.Table
module Stats = Threadfuser_stats.Stats
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics
module Gpusim = Threadfuser_gpusim.Gpusim
module Gpu_config = Threadfuser_gpusim.Config
module Cpusim = Threadfuser_cpusim.Cpusim

let gpu_config =
  { Gpu_config.rtx3070 with Gpu_config.n_sms = 8; max_warps_per_sm = 16 }

let cpu_config = { Cpusim.default_config with Cpusim.n_cores = 8 }

type row = {
  workload : string;
  has_cuda : bool;
  speedup_tf : float; (* ThreadFuser trace on the simulator *)
  speedup_cuda : float option; (* CUDA trace on the simulator *)
  gpu : Gpusim.stats;
}

let warp_options =
  { Analyzer.default_options with Analyzer.gen_warp_trace = true }

let gpu_seconds ?(domains = 1) (tr : W.traced) =
  let r =
    Analyzer.analyze
      ~options:{ warp_options with Analyzer.domains }
      tr.W.prog tr.W.traces
  in
  let wt = Option.get r.Analyzer.warp_trace in
  let stats = Gpusim.run ~config:gpu_config ~domains wt in
  (Gpusim.seconds ~config:gpu_config stats, stats)

let cpu_seconds ?(domains = 1) (tr : W.traced) =
  Cpusim.seconds ~config:cpu_config
    (Cpusim.run ~config:cpu_config ~domains tr.W.traces)

let series ctx : row list =
  List.map
    (fun (w : W.t) ->
      let tr = Ctx.traced ctx w in
      let cpu_t = cpu_seconds tr in
      let tf_t, gpu = gpu_seconds tr in
      let speedup_cuda =
        Option.map
          (fun cuda_tr ->
            (* the CUDA baseline still normalizes to the CPU execution *)
            let cuda_t, _ = gpu_seconds cuda_tr in
            cpu_t /. cuda_t)
          (Ctx.traced_cuda ctx w)
      in
      {
        workload = w.W.name;
        has_cuda = w.W.cuda <> None;
        speedup_tf = cpu_t /. tf_t;
        speedup_cuda;
        gpu;
      })
    Registry.all

let build rows =
  let t =
    Table.create
      [
        ("workload", Table.L);
        ("speedup (ThreadFuser)", Table.R);
        ("speedup (CUDA)", Table.R);
        ("GPU cycles", Table.R);
        ("GPU IPC", Table.R);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.workload;
          Table.cell_float r.speedup_tf;
          (match r.speedup_cuda with
          | Some s -> Table.cell_float s
          | None -> "-");
          Table.cell_int r.gpu.Gpusim.cycles;
          Table.cell_float (Gpusim.ipc r.gpu);
        ])
    rows;
  t

(** Correlation between the ThreadFuser and CUDA speedup series over the
    correlation workloads (the paper's 0.97). *)
let speedup_correlation rows =
  let pairs =
    List.filter_map
      (fun r -> Option.map (fun c -> (r.speedup_tf, c)) r.speedup_cuda)
      rows
  in
  let tf = Array.of_list (List.map fst pairs) in
  let cu = Array.of_list (List.map snd pairs) in
  Stats.pearson tf cu

(* Mean relative execution-time error between the two projected series
   (Table II quotes 33%). *)
let time_error rows =
  let pairs =
    List.filter_map
      (fun r -> Option.map (fun c -> (r.speedup_tf, c)) r.speedup_cuda)
      rows
  in
  Stats.mape
    ~predicted:(Array.of_list (List.map fst pairs))
    ~reference:(Array.of_list (List.map snd pairs))

let run ctx =
  Fmt.pr
    "@.== Fig. 6: projected GPU speedup vs multithreaded CPU (8 SMs vs 8 \
     cores, scaled) ==@.";
  let rows =
    List.sort (fun a b -> compare b.speedup_tf a.speedup_tf) (series ctx)
  in
  Table.print ~name:"fig6" (build rows);
  let corr = speedup_correlation rows in
  Fmt.pr
    "@.speedup-projection correlation (ThreadFuser vs CUDA series): %.3f; \
     mean relative time error %.0f%%@.@."
    corr
    (100. *. time_error rows);
  (rows, corr)
