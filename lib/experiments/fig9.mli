(** Paper Fig. 9: warp efficiency of the microservices with intra-warp
    lock serialization emulated vs ignored. *)

type row = {
  workload : string;
  eff_locks : float;
  eff_nolocks : float;
  serializations : int;
}

val series : Ctx.t -> row list

val run : Ctx.t -> row list
