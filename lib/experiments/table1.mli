(** Paper Table I: the studied-workload catalog. *)

val build : Ctx.t -> Threadfuser_report.Table.t

val run : Ctx.t -> unit
