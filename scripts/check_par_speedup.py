#!/usr/bin/env python3
"""Gate on the domain-scaling bench artifacts.

Works on both BENCH_analyzer_par.json (analyzer replay sharding) and
BENCH_sim_par.json (gpusim/cpusim domain partition) — the speedup leg
shape is shared.

A leg whose requested domain count exceeds the host's cores is marked
"advisory": true by the bench (it measures time-slicing, not scaling);
those legs are reported but never gated, so a 1-core CI box cannot
baseline a sub-1x "speedup" as a regression bar.  When the host has
fewer cores than the widest domain level the bench records
gate_mode == "advisory" and the WHOLE gate downgrades to warnings
(exit 0): every leg on such a host is either advisory already or
measured under contention.  Non-advisory legs on an "enforced" host
must not fall below MIN_SPEEDUP of parity with -j 1.
"""
import json
import sys

MIN_SPEEDUP = 0.9  # parallel legs must never be >10% slower than -j 1


def main(path: str) -> int:
    with open(path) as f:
        doc = json.load(f)
    cores = doc.get("available_cores", 0)
    levels = [int(d) for d in doc.get("domain_levels", [])] or [4]
    gate_mode = doc.get("gate_mode")
    if gate_mode is None:
        # pre-gate_mode artifact: derive it the way the bench does now
        gate_mode = "enforced" if cores >= max(levels) else "advisory"
    bad = []
    for name, case in doc.get("workloads", {}).items():
        for dom, leg in case.get("speedup_vs_j1", {}).items():
            if not isinstance(leg, dict):
                # pre-advisory schema: derive the flag from the artifact's
                # own available_cores honesty field, same rule the bench
                # applies now — a leg over the core count measures
                # time-slicing, not scaling
                leg = {"x": leg, "advisory": cores > 0 and int(dom) > cores}
            tag = f"{name} -j {dom}"
            if leg.get("advisory"):
                print(f"  {tag}: {leg['x']:.2f}x  skipped (advisory)")
            else:
                ok = leg["x"] >= MIN_SPEEDUP
                print(f"  {tag}: {leg['x']:.2f}x  {'ok' if ok else 'REGRESSED'}")
                if not ok:
                    bad.append(tag)
        # determinism flags ride along in the same artifacts; a False is a
        # hard failure whatever the gate mode, since identity is
        # core-count-independent
        for flag in ("byte_identical_j1_j4", "epoch_invariant"):
            if case.get(flag) is False:
                print(f"  {name}: {flag} FAILED", file=sys.stderr)
                bad.append(f"{name} {flag}")
                gate_mode = "enforced"  # never advisory-out of an identity break
    if bad:
        if gate_mode == "advisory":
            print(
                f"WARNING: speedup below bar in: {', '.join(bad)} "
                f"(not gating: host has {cores} core(s) < max level "
                f"{max(levels)}; gate_mode=advisory)",
                file=sys.stderr,
            )
            return 0
        print(f"speedup regression in: {', '.join(bad)}", file=sys.stderr)
        return 5
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_analyzer_par.json"))
