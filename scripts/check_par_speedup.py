#!/usr/bin/env python3
"""Gate on BENCH_analyzer_par.json speedup legs.

A leg whose requested domain count exceeds the host's cores is marked
"advisory": true by the bench (it measures time-slicing, not scaling);
those legs are reported but never gated, so a 1-core CI box cannot
baseline a sub-1x "speedup" as a regression bar.  Non-advisory legs must
not fall below MIN_SPEEDUP of ideal-agnostic parity with -j 1.
"""
import json
import sys

MIN_SPEEDUP = 0.9  # parallel replay must never be >10% slower than -j 1


def main(path: str) -> int:
    with open(path) as f:
        doc = json.load(f)
    cores = doc.get("available_cores", 0)
    bad = []
    for name, case in doc.get("workloads", {}).items():
        for dom, leg in case.get("speedup_vs_j1", {}).items():
            if not isinstance(leg, dict):
                # pre-advisory schema: derive the flag from the artifact's
                # own available_cores honesty field, same rule the bench
                # applies now — a leg over the core count measures
                # time-slicing, not scaling
                leg = {"x": leg, "advisory": cores > 0 and int(dom) > cores}
            tag = f"{name} -j {dom}"
            if leg.get("advisory"):
                print(f"  {tag}: {leg['x']:.2f}x  skipped (advisory)")
            else:
                ok = leg["x"] >= MIN_SPEEDUP
                print(f"  {tag}: {leg['x']:.2f}x  {'ok' if ok else 'REGRESSED'}")
                if not ok:
                    bad.append(tag)
    if bad:
        print(f"speedup regression in: {', '.join(bad)}", file=sys.stderr)
        return 5
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_analyzer_par.json"))
