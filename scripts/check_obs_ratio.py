#!/usr/bin/env python3
"""Gate the observability overhead ratios in BENCH_pipeline.json.

The bench measures the analyzer three ways, interleaved batch-by-batch so
machine drift cancels: collector off, collector on, and collector on with
a flight-recorder ring attached.  The paired ratios land in
BENCH_pipeline.json; an enabled collector may cost a little, but if the
flight recorder pushes the analyzer past MAX_FLIGHT_RATIO of the
collector-off baseline it stopped being an always-on black box and became
a profiler — gate it.

Exit 0 ok, 1 on regression, 0 with a note when the field is absent
(older bench artifact).
"""
import json
import sys

MAX_FLIGHT_RATIO = 1.20


def main(path: str) -> int:
    with open(path) as f:
        doc = json.load(f)
    rc = 0
    for field, cap in (
        ("obs_on_vs_off_analyzer_ratio", MAX_FLIGHT_RATIO),
        ("obs_flight_vs_off_analyzer_ratio", MAX_FLIGHT_RATIO),
    ):
        ratio = doc.get(field)
        if ratio is None:
            print(f"  {field}: absent (older bench artifact), skipped")
            continue
        ok = ratio <= cap
        print(f"  {field}: {ratio:.3f}x (cap {cap:.2f}x)  "
              f"{'ok' if ok else 'REGRESSED'}")
        if not ok:
            rc = 1
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_pipeline.json"))
