#!/usr/bin/env python3
"""Lint a Prometheus text exposition (a `threadfuser stat --prom` scrape
or a flight-recorder `.metrics.txt` snapshot).

Checks, per family:
  - every sample is preceded by its family's # TYPE line (# HELP is
    optional: instruments registered without help text omit it)
  - no family declares # TYPE twice
  - every sample line parses as  name[{labels}] value
  - histogram internal consistency: the +Inf bucket equals _count
    (they are frozen under one snapshot, so any drift means tearing)
  - the always-emitted families are present (tf_obs_events_dropped_total,
    tf_build_info, tf_uptime_seconds)
  - any family named via --require fam1,fam2 is present (CI uses this to
    pin the tf_cache_* surface)

Exit 0 clean, 1 on any violation.  Reads the file argument, or stdin.
"""
import re
import sys

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+-]+|NaN|[+-]Inf)$"
)
ALWAYS = ("tf_obs_events_dropped_total", "tf_build_info", "tf_uptime_seconds")


def family_of(name: str) -> str:
    for suffix in ("_bucket", "_count", "_sum"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name  # _p50/_p95/_p99 companions are their own gauge families


def main(text: str, require=()) -> int:
    typed, sampled = set(), set()
    buckets_inf, counts = {}, {}
    errors = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            fam = line.split()[2]
            if fam in typed:
                errors.append(f"line {lineno}: duplicate # TYPE for {fam}")
            typed.add(fam)
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparsable sample: {line!r}")
            continue
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        fam = family_of(name)
        sampled.add(fam)
        if fam not in typed:
            errors.append(f"line {lineno}: sample {name} before # TYPE of {fam}")
        if name.endswith("_bucket") and 'le="+Inf"' in labels:
            buckets_inf[fam] = float(value)
        elif name.endswith("_count"):
            counts[fam] = float(value)
    for fam, inf in buckets_inf.items():
        if fam in counts and inf != counts[fam]:
            errors.append(
                f"{fam}: +Inf bucket {inf} != _count {counts[fam]} (torn export)"
            )
    for fam in ALWAYS:
        if fam not in sampled:
            errors.append(f"always-emitted family missing: {fam}")
    for fam in require:
        if fam not in sampled:
            errors.append(f"required family missing: {fam}")
    declared_unused = typed - sampled
    for fam in sorted(declared_unused):
        errors.append(f"# TYPE declared but no samples: {fam}")
    if errors:
        for e in errors:
            print(f"check_prom: {e}", file=sys.stderr)
        return 1
    print(
        f"check_prom: ok ({len(sampled)} families, "
        f"{len(buckets_inf)} histograms consistent)"
    )
    return 0


if __name__ == "__main__":
    args = sys.argv[1:]
    required = []
    if "--require" in args:
        i = args.index("--require")
        try:
            required = [f for f in args[i + 1].split(",") if f]
        except IndexError:
            print("check_prom: --require needs fam1,fam2,...", file=sys.stderr)
            sys.exit(1)
        del args[i : i + 2]
    if args:
        with open(args[0]) as f:
            body = f.read()
    else:
        body = sys.stdin.read()
    sys.exit(main(body, require=required))
