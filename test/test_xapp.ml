(* Tests for the XAPP baseline: the OLS solver recovers known linear
   relationships, feature extraction is sane and deterministic, and the
   leave-one-out protocol nails synthetic linear data while ThreadFuser
   beats it on the real correlation set. *)

module Ols = Threadfuser_xapp.Ols
module Features = Threadfuser_xapp.Features
module Xapp = Threadfuser_xapp.Xapp
module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry

let feq msg a b = Alcotest.(check (float 1e-6)) msg a b

(* -- OLS ------------------------------------------------------------------- *)

let test_ols_exact_line () =
  (* y = 3x + 2 *)
  let xs = List.map (fun x -> [| float_of_int x |]) [ 0; 1; 2; 3; 4 ] in
  let ys = List.map (fun x -> (3.0 *. float_of_int x) +. 2.0) [ 0; 1; 2; 3; 4 ] in
  let m = Ols.fit ~lambda:0.0 xs ys in
  feq "slope" 3.0 m.Ols.beta.(0);
  feq "intercept" 2.0 m.Ols.beta.(1);
  feq "prediction" 17.0 (Ols.predict m [| 5.0 |])

let test_ols_two_features () =
  (* y = 2a - b + 1 over a small grid *)
  let grid = [ (0, 0); (0, 1); (1, 0); (1, 1); (2, 1); (1, 2); (3, 2) ] in
  let xs = List.map (fun (a, b) -> [| float_of_int a; float_of_int b |]) grid in
  let ys = List.map (fun (a, b) -> (2.0 *. float_of_int a) -. float_of_int b +. 1.0) grid in
  let m = Ols.fit ~lambda:0.0 xs ys in
  feq "beta a" 2.0 m.Ols.beta.(0);
  feq "beta b" (-1.0) m.Ols.beta.(1);
  feq "intercept" 1.0 m.Ols.beta.(2)

let test_ols_ridge_tames_collinearity () =
  (* two identical features: plain normal equations are singular, ridge
     splits the weight between them *)
  let xs = List.map (fun x -> [| float_of_int x; float_of_int x |]) [ 1; 2; 3; 4 ] in
  let ys = List.map (fun x -> 2.0 *. float_of_int x) [ 1; 2; 3; 4 ] in
  let m = Ols.fit ~lambda:1e-6 xs ys in
  feq "prediction still right" 10.0 (Ols.predict m [| 5.0; 5.0 |])

let test_ols_errors () =
  Alcotest.check_raises "no samples" (Invalid_argument "Ols.fit: no samples")
    (fun () -> ignore (Ols.fit [] []));
  Alcotest.check_raises "ragged" (Invalid_argument "Ols.fit: ragged features")
    (fun () -> ignore (Ols.fit [ [| 1.0 |]; [| 1.0; 2.0 |] ] [ 1.0; 2.0 ]))

let prop_ols_recovers_random_linear =
  QCheck.Test.make ~name:"OLS recovers random linear models" ~count:100
    QCheck.(triple (float_range (-5.) 5.) (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (w0, w1, b) ->
      let pts = [ (0., 0.); (1., 0.); (0., 1.); (2., 1.); (1., 3.); (4., 2.) ] in
      let xs = List.map (fun (a, c) -> [| a; c |]) pts in
      let ys = List.map (fun (a, c) -> (w0 *. a) +. (w1 *. c) +. b) pts in
      let m = Ols.fit ~lambda:0.0 xs ys in
      let p = Ols.predict m [| 3.0; -2.0 |] in
      abs_float (p -. ((w0 *. 3.0) -. (w1 *. 2.0) +. b)) < 1e-6)

(* -- features --------------------------------------------------------------- *)

let features_of name =
  let tr = W.trace_cpu ~threads:1 (Registry.find name) in
  Features.extract tr.W.prog tr.W.traces.(0)

let test_features_sane () =
  List.iter
    (fun name ->
      let f = features_of name in
      Alcotest.(check int) (name ^ " length") Features.n_features (Array.length f);
      Array.iteri
        (fun i v ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s finite and non-negative" name Features.names.(i))
            true
            (Float.is_finite v && v >= 0.0))
        f;
      (* instruction-mix fractions can't exceed 1 *)
      for i = 0 to 5 do
        Alcotest.(check bool) "fraction <= 1" true (f.(i) <= 1.0 +. 1e-9)
      done)
    [ "vectoradd"; "md5"; "bfs"; "pigz" ]

let test_features_discriminate () =
  let md5 = features_of "md5" and pagerank = features_of "pagerank" in
  (* pagerank is FP-divide heavy, md5 is integer-ALU heavy *)
  Alcotest.(check bool) "fp fraction differs" true (pagerank.(2) > md5.(2));
  Alcotest.(check bool) "alu heavy md5" true (md5.(0) > 0.3)

let test_features_deterministic () =
  Alcotest.(check bool) "same run, same features" true
    (features_of "bfs" = features_of "bfs")

(* -- leave-one-out protocol -------------------------------------------------- *)

let test_loo_perfect_on_linear_world () =
  (* if speedup really is exp(linear(features)), LOO nails it *)
  let samples =
    List.init 8 (fun i ->
        let f = [| float_of_int i; float_of_int ((i * 3) mod 5) |] in
        {
          Xapp.name = Printf.sprintf "w%d" i;
          features = f;
          speedup = exp ((0.3 *. f.(0)) -. (0.2 *. f.(1)) +. 0.1);
        })
  in
  let preds = Xapp.loo_errors ~lambda:1e-9 samples in
  Alcotest.(check bool) "near-zero error" true (Xapp.mean_rel_error preds < 0.01)

let test_xapp_worse_than_threadfuser () =
  let ctx = Threadfuser_experiments.Ctx.create () in
  let s = Threadfuser_experiments.Xapp_exp.collect ctx in
  Alcotest.(check int) "11 workloads" 11 (List.length s.Threadfuser_experiments.Xapp_exp.rows);
  Alcotest.(check bool) "threadfuser beats the profile-based baseline" true
    (s.Threadfuser_experiments.Xapp_exp.tf_mean_err
    < s.Threadfuser_experiments.Xapp_exp.xapp_mean_err);
  Alcotest.(check bool) "xapp predictions positive" true
    (List.for_all
       (fun (r : Threadfuser_experiments.Xapp_exp.row) -> r.Threadfuser_experiments.Xapp_exp.xapp_pred > 0.0)
       s.Threadfuser_experiments.Xapp_exp.rows)

let () =
  Alcotest.run "xapp"
    [
      ( "ols",
        [
          Alcotest.test_case "exact line" `Quick test_ols_exact_line;
          Alcotest.test_case "two features" `Quick test_ols_two_features;
          Alcotest.test_case "ridge" `Quick test_ols_ridge_tames_collinearity;
          Alcotest.test_case "errors" `Quick test_ols_errors;
          QCheck_alcotest.to_alcotest prop_ols_recovers_random_linear;
        ] );
      ( "features",
        [
          Alcotest.test_case "sane" `Quick test_features_sane;
          Alcotest.test_case "discriminate" `Quick test_features_discriminate;
          Alcotest.test_case "deterministic" `Quick test_features_deterministic;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "linear world" `Quick test_loo_perfect_on_linear_world;
          Alcotest.test_case "vs threadfuser" `Slow test_xapp_worse_than_threadfuser;
        ] );
    ]
