(* Generative pipeline testing: random structured programs (nested
   data-dependent branches and loops, memory traffic, atomics) run through
   machine -> trace -> analyzer under many configurations, checking the
   invariants that must hold for *every* program:

   - instruction conservation: the analyzer accounts exactly the
     instructions the machine executed;
   - efficiency bounds: 0 < efficiency <= 1, and exactly 1 at warp size 1;
   - batching invariance: warp formation may change efficiency but never
     the total instruction count;
   - determinism: identical runs produce identical reports. *)

open Threadfuser_isa
open Threadfuser_prog
open Threadfuser
module Machine = Threadfuser_machine.Machine
module Memory = Threadfuser_machine.Memory
module Thread_trace = Threadfuser_trace.Thread_trace
module Lcg = Threadfuser_util.Lcg

let data_region = 0x20000

let scratch_region = 0x80000

(* ---- random structured program generator ------------------------------ *)
(* Value registers r1..r5 hold arbitrary data; r6..r9 are loop counters
   (one per nesting depth); r0 is the thread id.  Memory indices are
   masked to the data region so every program is safe. *)

let value_reg g = 1 + Lcg.int g 5

let gen_operand g =
  if Lcg.chance g 1 2 then Build.reg (value_reg g)
  else Build.imm (Lcg.int g 100 - 50)

let gen_cond g =
  match Lcg.int g 6 with
  | 0 -> Cond.Eq
  | 1 -> Cond.Ne
  | 2 -> Cond.Lt
  | 3 -> Cond.Le
  | 4 -> Cond.Gt
  | _ -> Cond.Ge

let gen_binop g =
  match Lcg.int g 8 with
  | 0 -> Op.Add
  | 1 -> Op.Sub
  | 2 -> Op.Mul
  | 3 -> Op.Xor
  | 4 -> Op.And
  | 5 -> Op.Or
  | 6 -> Op.Min
  | _ -> Op.Max

(* index = (reg masked) * 8 + region, materialized into r13 *)
let gen_address g region =
  Build.(
    seq
      [
        mov (reg 13) (reg (value_reg g));
        and_ (reg 13) (imm 1023);
        shl (reg 13) (imm 3);
        add (reg 13) (imm region);
      ])

let rec gen_stmt g depth : Build.code =
  let open Build in
  match Lcg.int g (if depth >= 3 then 6 else 10) with
  | 0 | 1 -> binop (gen_binop g) (reg (value_reg g)) (gen_operand g)
  | 2 ->
      (* load from the data region *)
      seq [ gen_address g data_region; mov (reg (value_reg g)) (mem ~base:13 ()) ]
  | 3 ->
      (* store to the scratch region *)
      seq [ gen_address g scratch_region; mov (mem ~base:13 ()) (reg (value_reg g)) ]
  | 4 ->
      seq
        [
          gen_address g scratch_region;
          atomic_rmw Op.Add (mem ~base:13 ()) (imm (Lcg.int g 10));
        ]
  | 5 -> mov (reg (value_reg g)) (gen_operand g)
  | 6 | 7 ->
      (* data-dependent branch *)
      let then_ = gen_body g (depth + 1) in
      if Lcg.chance g 1 2 then
        if_ (gen_cond g) (reg (value_reg g)) (gen_operand g) ~then_ ()
      else
        if_ (gen_cond g) (reg (value_reg g)) (gen_operand g) ~then_
          ~else_:(gen_body g (depth + 1))
          ()
  | _ ->
      (* bounded counted loop whose trip count is data-dependent *)
      let counter = 6 + depth in
      let body = gen_body g (depth + 1) in
      seq
        [
          mov (reg 12) (reg (value_reg g));
          and_ (reg 12) (imm 7);
          for_up ~i:counter ~from_:(imm 0) ~below:(reg 12) body;
        ]

and gen_body g depth : Build.code list =
  List.init (1 + Lcg.int g 3) (fun _ -> gen_stmt g depth)

let gen_program seed =
  let g = Lcg.create seed in
  let body =
    Build.(
      [
        (* seed the value registers from the thread id and the data region *)
        mov (reg 1) (reg 0);
        mov (reg 2) (mem ~scale:8 ~index:0 ~disp:data_region ());
        mov (reg 3) (reg 0);
        mul (reg 3) (imm 2654435761);
        mov (reg 4) (imm 7);
        mov (reg 5) (reg 2);
      ]
      @ gen_body g 0
      @ [ ret ])
  in
  Program.assemble [ Build.func "worker" body ]

let trace_one seed ~threads =
  let prog = gen_program seed in
  let m = Machine.create prog in
  let g = Lcg.create (seed * 31) in
  for i = 0 to 1023 do
    Memory.store_i64 (Machine.memory m) (data_region + (8 * i)) (Lcg.int g 1000)
  done;
  let r =
    Machine.run_workers m ~worker:"worker" ~args:(Array.init threads (fun i -> [ i ]))
  in
  (prog, r.Machine.traces)

let traced_total traces =
  Array.fold_left
    (fun acc t -> acc + (Thread_trace.stats t).Thread_trace.traced_instrs)
    0 traces

let prop_conservation =
  QCheck.Test.make ~name:"random programs: analyzer conserves instructions"
    ~count:60
    QCheck.(pair small_int (int_range 1 24))
    (fun (seed, threads) ->
      let prog, traces = trace_one seed ~threads in
      let r = Analyzer.analyze prog traces in
      r.Analyzer.report.Metrics.thread_instrs = traced_total traces)

let prop_efficiency_bounds =
  QCheck.Test.make ~name:"random programs: efficiency bounds" ~count:60
    QCheck.(triple small_int (int_range 1 24) (int_range 0 4))
    (fun (seed, threads, wexp) ->
      let warp_size = 1 lsl wexp in
      let prog, traces = trace_one seed ~threads in
      let r =
        Analyzer.analyze ~options:{ Analyzer.default_options with warp_size }
          prog traces
      in
      let e = r.Analyzer.report.Metrics.simt_efficiency in
      e > 0.0 && e <= 1.0 +. 1e-9)

let prop_warp1_perfect =
  QCheck.Test.make ~name:"random programs: warp size 1 is always perfect"
    ~count:40
    QCheck.(pair small_int (int_range 1 12))
    (fun (seed, threads) ->
      let prog, traces = trace_one seed ~threads in
      let r =
        Analyzer.analyze ~options:{ Analyzer.default_options with warp_size = 1 }
          prog traces
      in
      abs_float (r.Analyzer.report.Metrics.simt_efficiency -. 1.0) < 1e-9)

let prop_batching_invariance =
  QCheck.Test.make
    ~name:"random programs: batching never changes instruction totals"
    ~count:40
    QCheck.(pair small_int (int_range 2 24))
    (fun (seed, threads) ->
      let prog, traces = trace_one seed ~threads in
      let totals =
        List.map
          (fun batching ->
            (Analyzer.analyze
               ~options:{ Analyzer.default_options with batching; warp_size = 8 }
               prog traces)
              .Analyzer.report
              .Metrics.thread_instrs)
          Batching.all
      in
      match totals with
      | t :: rest -> List.for_all (fun x -> x = t) rest
      | [] -> false)

let prop_lane_permutation_invariance =
  (* relabeling the lanes inside a warp must not change warp-level totals:
     the SIMT stack's accounting is order-free over the same thread set *)
  QCheck.Test.make ~name:"random programs: lane order within a warp is irrelevant"
    ~count:40
    QCheck.(triple small_int (int_range 2 8) small_int)
    (fun (seed, threads, perm_seed) ->
      let prog, traces = trace_one seed ~threads in
      let options = { Analyzer.default_options with warp_size = 8 } in
      let base = (Analyzer.analyze ~options prog traces).Analyzer.report in
      (* permute the traces (all threads fit in one 8-wide warp) *)
      let permuted = Array.copy traces in
      Lcg.shuffle (Lcg.create perm_seed) permuted;
      let permuted =
        Array.map
          (fun (t : Threadfuser_trace.Thread_trace.t) -> t)
          permuted
      in
      let shuffled = (Analyzer.analyze ~options prog permuted).Analyzer.report in
      base.Metrics.issues = shuffled.Metrics.issues
      && base.Metrics.thread_instrs = shuffled.Metrics.thread_instrs
      && base.Metrics.total_mem_txns = shuffled.Metrics.total_mem_txns)

let test_mismatched_traces_rejected () =
  (* feeding one program's traces into another program's analysis must be
     a clean, diagnosable error *)
  let prog_a, traces_a = trace_one 1 ~threads:4 in
  let prog_b, _ = trace_one 999 ~threads:4 in
  ignore prog_a;
  match Analyzer.analyze prog_b traces_a with
  | exception Emulator.Emulation_error _ -> ()
  | exception _ -> () (* any structured failure is acceptable, not a crash *)
  | r ->
      (* the two random programs could coincidentally share block structure;
         accept a successful run only if it conserves instructions *)
      Alcotest.(check int) "coincidental match conserves"
        (traced_total traces_a) r.Analyzer.report.Metrics.thread_instrs

let prop_determinism =
  QCheck.Test.make ~name:"random programs: replay is deterministic" ~count:30
    QCheck.(pair small_int (int_range 1 16))
    (fun (seed, threads) ->
      let run () =
        let prog, traces = trace_one seed ~threads in
        let r = Analyzer.analyze prog traces in
        ( r.Analyzer.report.Metrics.issues,
          r.Analyzer.report.Metrics.thread_instrs,
          r.Analyzer.report.Metrics.total_mem_txns )
      in
      run () = run ())

let () =
  Alcotest.run "generated"
    [
      ( "pipeline invariants",
        [
          QCheck_alcotest.to_alcotest prop_conservation;
          QCheck_alcotest.to_alcotest prop_efficiency_bounds;
          QCheck_alcotest.to_alcotest prop_warp1_perfect;
          QCheck_alcotest.to_alcotest prop_batching_invariance;
          QCheck_alcotest.to_alcotest prop_determinism;
          QCheck_alcotest.to_alcotest prop_lane_permutation_invariance;
          Alcotest.test_case "mismatched traces" `Quick test_mismatched_traces_rejected;
        ] );
    ]
