(* Differential testing of the warp emulator against an independently
   written reference implementation of the same SIMT-stack semantics.

   The production emulator (lib/core/emulator.ml) uses an explicit mutable
   stack with in-place mask updates, scalar critical-section replay and
   fused bookkeeping.  The reference below is a direct structural
   recursion: "run these lanes from their current positions until each
   reaches [reconv]", recomputing groups functionally at every step and
   ignoring everything but issue/instruction counts.  Agreement on both
   counts across randomly generated divergent programs — including
   bucketed-lock critical sections and calls — and across real Table I
   workloads gives high confidence in the production bookkeeping. *)

open Threadfuser_isa
open Threadfuser_prog
open Threadfuser
module Machine = Threadfuser_machine.Machine
module Memory = Threadfuser_machine.Memory
module Dcfg = Threadfuser_cfg.Dcfg
module Ipdom = Threadfuser_cfg.Ipdom
module Lcg = Threadfuser_util.Lcg

(* ---- the reference: recursive region execution ------------------------- *)

exception Reference_stuck of string

let reference_counts prog ipdoms (traces : Threadfuser_trace.Thread_trace.t array)
    tids =
  let cursors = Array.map (fun tid -> Cursor.of_trace traces.(tid)) tids in
  let issues = ref 0 and instrs = ref 0 in
  let exit_node fid =
    Array.length (Program.func prog fid).Program.blocks
  in
  let block_len fid bid =
    Array.length (Program.func prog fid).Program.blocks.(bid).Program.instrs
  in
  (* current node of a lane within [func]: its next block, or the exit *)
  let node_of func lane =
    match Cursor.peek cursors.(lane) with
    | Cursor.C_block { func = f; block; _ } when f = func -> block
    | Cursor.C_ret | Cursor.C_end -> exit_node func
    | Cursor.C_call _ -> -2 (* handled by the caller *)
    | _ -> raise (Reference_stuck "unexpected control at node_of")
  in
  (* scalar replay of one lane's critical section, counting one-lane
     issues, until the matching unlock *)
  let rec scalar_cs lane addr =
    match Cursor.next cursors.(lane) with
    | Cursor.C_block { func; block; _ } ->
        let n = block_len func block in
        issues := !issues + n;
        instrs := !instrs + n;
        scalar_cs lane addr
    | Cursor.C_call _ | Cursor.C_ret | Cursor.C_lock _ | Cursor.C_barrier _ ->
        scalar_cs lane addr
    | Cursor.C_unlock a -> if a = addr then () else scalar_cs lane addr
    | Cursor.C_end -> raise (Reference_stuck "trace ended inside CS")
  in
  (* run [lanes] (all at the same node of [func]) until they reach
     [reconv]; lanes move strictly forward through their traces *)
  let rec run_region func lanes reconv =
    match lanes with
    | [] -> ()
    | lane0 :: _ -> (
        let here = node_of func lane0 in
        if here = reconv then ()
        else begin
          (* every lane must agree (they are in lockstep at this node) *)
          List.iter
            (fun l ->
              if node_of func l <> here then
                raise (Reference_stuck "lanes disagree at region head"))
            lanes;
          if here = exit_node func then
            raise (Reference_stuck "reached exit before reconv")
          else begin
            let n = block_len func here in
            issues := !issues + n;
            instrs := !instrs + (n * List.length lanes);
            List.iter (fun l -> Cursor.advance cursors.(l)) lanes;
            (* follow-up control, uniform by construction *)
            match Cursor.peek cursors.(List.hd lanes) with
            | Cursor.C_lock _ ->
                (* consume the acquires; serialize same-lock groups *)
                let addrs =
                  List.map
                    (fun l ->
                      match Cursor.next cursors.(l) with
                      | Cursor.C_lock a -> (l, a)
                      | _ -> raise (Reference_stuck "expected lock"))
                    lanes
                in
                let by_addr =
                  List.sort_uniq compare (List.map snd addrs)
                  |> List.map (fun a ->
                         (a, List.filter_map (fun (l, a') -> if a' = a then Some l else None) addrs))
                in
                List.iter
                  (fun (a, group) ->
                    if List.length group > 1 then
                      List.iter (fun l -> scalar_cs l a) group)
                  by_addr;
                continue_after func lanes reconv
            | Cursor.C_unlock _ ->
                List.iter
                  (fun l ->
                    match Cursor.next cursors.(l) with
                    | Cursor.C_unlock _ -> ()
                    | _ -> raise (Reference_stuck "expected unlock"))
                  lanes;
                continue_after func lanes reconv
            | Cursor.C_barrier _ ->
                List.iter
                  (fun l ->
                    match Cursor.next cursors.(l) with
                    | Cursor.C_barrier _ -> ()
                    | _ -> raise (Reference_stuck "expected barrier"))
                  lanes;
                continue_after func lanes reconv
            | Cursor.C_call callee ->
                List.iter (fun l -> Cursor.advance cursors.(l)) lanes;
                run_region callee lanes (exit_node callee);
                (* consume the returns *)
                List.iter
                  (fun l ->
                    match Cursor.next cursors.(l) with
                    | Cursor.C_ret -> ()
                    | _ -> raise (Reference_stuck "expected return"))
                  lanes;
                continue_after func lanes reconv
            | _ -> continue_after func lanes reconv
          end
        end)
  and continue_after func lanes reconv =
    (* group lanes by their next node and recurse per group *)
    let targets = List.map (fun l -> (l, node_of func l)) lanes in
    let distinct = List.sort_uniq compare (List.map snd targets) in
    match distinct with
    | [ _ ] -> run_region func lanes reconv
    | many ->
        let tbl = ipdoms.(func) in
        let r =
          List.fold_left (Ipdom.nearest_common_post_dominator tbl)
            (List.hd many) (List.tl many)
        in
        let r =
          if r = reconv then r
          else if Ipdom.post_dominates tbl r reconv then reconv
          else r
        in
        List.iter
          (fun target ->
            if target <> r then
              run_region func
                (List.filter_map
                   (fun (l, t) -> if t = target then Some l else None)
                   targets)
                r)
          (List.sort compare many);
        run_region func lanes reconv
  in
  (match Cursor.peek cursors.(0) with
  | Cursor.C_block { func; _ } ->
      run_region func (Array.to_list (Array.init (Array.length tids) Fun.id))
        (exit_node func)
  | _ -> raise (Reference_stuck "empty trace"));
  (!issues, !instrs)

(* ---- generator: divergent programs with calls and bucketed locks ------- *)

let data_region = 0x20000

let rec gen_stmt g depth : Build.code =
  let open Build in
  let vr () = 1 + Lcg.int g 5 in
  match Lcg.int g (if depth >= 3 then 4 else 8) with
  | 0 | 1 -> add (reg (vr ())) (imm (Lcg.int g 50))
  | 2 ->
      seq
        [
          mov (reg 13) (reg (vr ()));
          and_ (reg 13) (imm 511);
          mov (reg (vr ())) (mem ~scale:8 ~index:13 ~disp:data_region ());
        ]
  | 3 ->
      if Lcg.chance g 1 3 then
        (* fine-grained bucketed lock around a small critical section *)
        seq
          [
            mov (reg 11) (reg (vr ()));
            and_ (reg 11) (imm 3);
            shl (reg 11) (imm 6);
            add (reg 11) (imm 0xd00);
            lock_acquire (reg 11);
            add (reg (vr ())) (imm 1);
            lock_release (reg 11);
          ]
      else xor (reg (vr ())) (reg (vr ()))
  | 4 | 5 ->
      let c =
        match Lcg.int g 4 with
        | 0 -> Cond.Lt
        | 1 -> Cond.Ge
        | 2 -> Cond.Eq
        | _ -> Cond.Ne
      in
      if_ c (reg (vr ())) (imm (Lcg.int g 40))
        ~then_:(gen_body g (depth + 1))
        ?else_:(if Lcg.chance g 1 2 then Some (gen_body g (depth + 1)) else None)
        ()
  | _ ->
      seq
        [
          mov (reg 12) (reg (vr ()));
          and_ (reg 12) (imm 5);
          for_up ~i:(6 + depth) ~from_:(imm 0) ~below:(reg 12)
            (gen_body g (depth + 1));
        ]

and gen_body g depth : Build.code list =
  List.init (1 + Lcg.int g 2) (fun _ -> gen_stmt g depth)

let make_callee g =
  Build.func "callee" (gen_body g 1 @ [ Build.ret ])

let gen_program seed =
  let g = Lcg.create seed in
  let body =
    Build.(
      [
        mov (reg 1) (reg 0);
        mov (reg 2) (mem ~scale:8 ~index:0 ~disp:data_region ());
        mov (reg 3) (reg 0);
        mul (reg 3) (imm 40503);
        mov (reg 4) (imm 3);
        mov (reg 5) (reg 2);
      ]
      @ gen_body g 0
      @ [ (if Lcg.chance g 1 2 then call "callee" else seq []) ]
      @ gen_body g 0
      @ [ ret ])
  in
  Program.assemble [ Build.func "worker" body; make_callee g ]

let trace_one seed ~threads =
  let prog = gen_program seed in
  let m =
    Machine.create ~config:{ Machine.default_config with quantum = 1 } prog
  in
  let g = Lcg.create (seed * 7 + 1) in
  for i = 0 to 511 do
    Memory.store_i64 (Machine.memory m) (data_region + (8 * i)) (Lcg.int g 80)
  done;
  let r =
    Machine.run_workers m ~worker:"worker" ~args:(Array.init threads (fun i -> [ i ]))
  in
  (prog, r.Machine.traces)

(* ---- the differential property ----------------------------------------- *)

let compare_once seed threads warp_size =
  let prog, traces = trace_one seed ~threads in
  let dcfgs = Dcfg.of_traces prog traces in
  let ipdoms = Ipdom.of_dcfgs dcfgs in
  let production =
    (Analyzer.analyze ~options:{ Analyzer.default_options with warp_size } prog
       traces)
      .Analyzer.report
  in
  (* reference, warp by warp (sequential batching) *)
  let warps = Batching.form Batching.Sequential ~warp_size traces in
  let ref_issues = ref 0 and ref_instrs = ref 0 in
  Array.iter
    (fun tids ->
      let i, n = reference_counts prog ipdoms traces tids in
      ref_issues := !ref_issues + i;
      ref_instrs := !ref_instrs + n)
    warps;
  (production.Metrics.issues, production.Metrics.thread_instrs, !ref_issues, !ref_instrs)

let prop_reference_agreement =
  QCheck.Test.make ~name:"production emulator = recursive reference" ~count:120
    QCheck.(triple small_int (int_range 1 16) (int_range 1 3))
    (fun (seed, threads, wexp) ->
      let warp_size = 1 lsl wexp in
      let pi, pn, ri, rn = compare_once seed threads warp_size in
      pi = ri && pn = rn)

let test_reference_on_workloads () =
  (* lock-free Table I workloads must agree too *)
  List.iter
    (fun name ->
      let w = Threadfuser_workloads.Registry.find name in
      let tr = Threadfuser_workloads.Workload.trace_cpu ~threads:32 w in
      let dcfgs = Dcfg.of_traces tr.Threadfuser_workloads.Workload.prog
          tr.Threadfuser_workloads.Workload.traces in
      let ipdoms = Ipdom.of_dcfgs dcfgs in
      let production =
        (Analyzer.analyze
           ~options:{ Analyzer.default_options with warp_size = 8 }
           tr.Threadfuser_workloads.Workload.prog
           tr.Threadfuser_workloads.Workload.traces)
          .Analyzer.report
      in
      let warps =
        Batching.form Batching.Sequential ~warp_size:8
          tr.Threadfuser_workloads.Workload.traces
      in
      let ri = ref 0 and rn = ref 0 in
      Array.iter
        (fun tids ->
          let i, n =
            reference_counts tr.Threadfuser_workloads.Workload.prog ipdoms
              tr.Threadfuser_workloads.Workload.traces tids
          in
          ri := !ri + i;
          rn := !rn + n)
        warps;
      Alcotest.(check int) (name ^ " issues") production.Metrics.issues !ri;
      Alcotest.(check int) (name ^ " instrs") production.Metrics.thread_instrs !rn)
    [ "bfs"; "b+tree"; "particlefilter"; "blackscholes"; "freqmine"; "x264";
      "urlshort"; "fluidanimate" ]

let () =
  Alcotest.run "reference_emulator"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_reference_agreement;
          Alcotest.test_case "workload agreement" `Slow test_reference_on_workloads;
        ] );
    ]
