(* Unit and property tests for the utility library (Vec, Lcg). *)

open Threadfuser_util

let test_vec_push_pop () =
  let v = Vec.create 0 in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 1 to 100 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 41);
  Alcotest.(check int) "top" 100 (Vec.top v);
  Alcotest.(check int) "pop" 100 (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v)

let test_vec_to_array () =
  let v = Vec.create ~capacity:2 0 in
  List.iter (Vec.push v) [ 5; 6; 7 ];
  Alcotest.(check (array int)) "to_array" [| 5; 6; 7 |] (Vec.to_array v)

let test_vec_clear () =
  let v = Vec.create 0 in
  List.iter (Vec.push v) [ 1; 2; 3 ];
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v);
  Vec.push v 9;
  Alcotest.(check int) "reusable" 9 (Vec.get v 0)

let test_vec_fold_iter () =
  let v = Vec.of_array 0 [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "fold" 10 (Vec.fold_left ( + ) 0 v);
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  Alcotest.(check int) "iteri count" 4 (List.length !seen);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v)

let test_vec_errors () =
  let v = Vec.create 0 in
  Alcotest.check_raises "get out of range" (Invalid_argument "Vec.get")
    (fun () -> ignore (Vec.get v 0));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop") (fun () ->
      ignore (Vec.pop v))

let test_lcg_deterministic () =
  let a = Lcg.create 42 and b = Lcg.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Lcg.int a 1000) (Lcg.int b 1000)
  done

let test_lcg_seed_sensitivity () =
  let a = Lcg.create 1 and b = Lcg.create 2 in
  let sa = List.init 20 (fun _ -> Lcg.int a 1_000_000) in
  let sb = List.init 20 (fun _ -> Lcg.int b 1_000_000) in
  Alcotest.(check bool) "different streams" true (sa <> sb)

let prop_vec_roundtrip =
  QCheck.Test.make ~name:"vec of_array/to_array roundtrip" ~count:200
    QCheck.(array small_int)
    (fun a -> Vec.to_array (Vec.of_array 0 a) = a)

let prop_lcg_bounds =
  QCheck.Test.make ~name:"lcg int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let g = Lcg.create seed in
      let v = Lcg.int g bound in
      v >= 0 && v < bound)

let prop_lcg_range =
  QCheck.Test.make ~name:"lcg int_range inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-100) 100) (int_range 0 100))
    (fun (seed, lo, span) ->
      let g = Lcg.create seed in
      let v = Lcg.int_range g lo (lo + span) in
      v >= lo && v <= lo + span)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (array small_int))
    (fun (seed, a) ->
      let b = Array.copy a in
      Lcg.shuffle (Lcg.create seed) b;
      List.sort compare (Array.to_list a) = List.sort compare (Array.to_list b))

(* --- stream splitting: derived per-task seeds ----------------------- *)

let draws g n = List.init n (fun _ -> Lcg.bits g)

let prop_derive_distinct =
  QCheck.Test.make ~name:"derive gives distinct seeds per index" ~count:200
    QCheck.(pair int (int_range 0 500))
    (fun (seed, base_index) ->
      let seeds =
        List.init 64 (fun i -> Lcg.derive ~seed ~index:(base_index + i))
      in
      List.length (List.sort_uniq compare seeds) = 64)

let prop_derive_streams_disjoint =
  (* sibling streams must not overlap within a realistic draw count: 256
     draws from each of two adjacent children share no values *)
  QCheck.Test.make ~name:"derived sibling streams do not overlap" ~count:100
    QCheck.(pair int (int_range 0 1000))
    (fun (seed, index) ->
      let a = draws (Lcg.create (Lcg.derive ~seed ~index)) 256 in
      let b = draws (Lcg.create (Lcg.derive ~seed ~index:(index + 1))) 256 in
      let seen = Hashtbl.create 512 in
      List.iter (fun v -> Hashtbl.replace seen v ()) a;
      not (List.exists (Hashtbl.mem seen) b))

let prop_derive_deterministic =
  QCheck.Test.make ~name:"derive is a pure function" ~count:500
    QCheck.(pair int (int_range 0 10_000))
    (fun (seed, index) ->
      Lcg.derive ~seed ~index = Lcg.derive ~seed ~index
      && Lcg.derive ~seed ~index >= 0)

let test_derive_negative_index () =
  Alcotest.check_raises "index must be non-negative"
    (Invalid_argument "Lcg.derive") (fun () ->
      ignore (Lcg.derive ~seed:1 ~index:(-1)))

let prop_split_decorrelated =
  QCheck.Test.make ~name:"split child shares no draws with parent" ~count:100
    QCheck.int
    (fun seed ->
      let parent = Lcg.create seed in
      let child = Lcg.split parent in
      let a = draws parent 128 in
      let b = draws child 128 in
      let seen = Hashtbl.create 256 in
      List.iter (fun v -> Hashtbl.replace seen v ()) a;
      not (List.exists (Hashtbl.mem seen) b))

let test_hash_string () =
  Alcotest.(check int)
    "deterministic" (Lcg.hash_string "bfs.w32.O1.s1")
    (Lcg.hash_string "bfs.w32.O1.s1");
  Alcotest.(check bool) "non-negative" true (Lcg.hash_string "" >= 0);
  let names = [ ""; "a"; "b"; "ab"; "ba"; "bfs"; "pigz"; "hdsearch-mid" ] in
  let hashes = List.map Lcg.hash_string names in
  Alcotest.(check int)
    "no collisions on registry-like names"
    (List.length names)
    (List.length (List.sort_uniq compare hashes))

let () =
  Alcotest.run "util"
    [
      ( "vec",
        [
          Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
          Alcotest.test_case "to_array" `Quick test_vec_to_array;
          Alcotest.test_case "clear" `Quick test_vec_clear;
          Alcotest.test_case "fold/iter" `Quick test_vec_fold_iter;
          Alcotest.test_case "errors" `Quick test_vec_errors;
          QCheck_alcotest.to_alcotest prop_vec_roundtrip;
        ] );
      ( "lcg",
        [
          Alcotest.test_case "deterministic" `Quick test_lcg_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_lcg_seed_sensitivity;
          QCheck_alcotest.to_alcotest prop_lcg_bounds;
          QCheck_alcotest.to_alcotest prop_lcg_range;
          QCheck_alcotest.to_alcotest prop_shuffle_permutation;
        ] );
      ( "lcg-streams",
        [
          QCheck_alcotest.to_alcotest prop_derive_distinct;
          QCheck_alcotest.to_alcotest prop_derive_streams_disjoint;
          QCheck_alcotest.to_alcotest prop_derive_deterministic;
          Alcotest.test_case "derive rejects negative index" `Quick
            test_derive_negative_index;
          QCheck_alcotest.to_alcotest prop_split_decorrelated;
          Alcotest.test_case "hash_string" `Quick test_hash_string;
        ] );
    ]
