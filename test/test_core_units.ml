(* Direct unit and property tests for the analyzer's building blocks:
   masks, the coalescer, CISC->RISC cracking, trace cursors, and the
   nearest-common-post-dominator reconvergence logic. *)

open Threadfuser
open Threadfuser_isa
module Event = Threadfuser_trace.Event
module Thread_trace = Threadfuser_trace.Thread_trace
module Layout = Threadfuser_machine.Layout
module Dcfg = Threadfuser_cfg.Dcfg
module Ipdom = Threadfuser_cfg.Ipdom

(* -- masks ---------------------------------------------------------------- *)

let test_mask_basics () =
  let m = Mask.full 8 in
  Alcotest.(check int) "count full" 8 (Mask.count m);
  Alcotest.(check bool) "mem" true (Mask.mem m 7);
  Alcotest.(check bool) "not mem" false (Mask.mem m 8);
  let m = Mask.remove m 3 in
  Alcotest.(check int) "after remove" 7 (Mask.count m);
  Alcotest.(check (list int)) "to_list" [ 0; 1; 2; 4; 5; 6; 7 ] (Mask.to_list m)

let test_mask_bounds () =
  Alcotest.check_raises "zero" (Invalid_argument "Mask.full") (fun () ->
      ignore (Mask.full 0));
  Alcotest.check_raises "too wide" (Invalid_argument "Mask.full") (fun () ->
      ignore (Mask.full 63));
  ignore (Mask.full Mask.max_lanes)

let prop_mask_roundtrip =
  QCheck.Test.make ~name:"mask of_list/to_list" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_bound 20) (int_bound 61))
    (fun lanes ->
      let expect = List.sort_uniq compare lanes in
      Mask.to_list (Mask.of_list lanes) = expect)

let prop_mask_set_ops =
  QCheck.Test.make ~name:"mask union/inter consistent with sets" ~count:300
    QCheck.(pair (list_of_size (QCheck.Gen.int_bound 15) (int_bound 61))
              (list_of_size (QCheck.Gen.int_bound 15) (int_bound 61)))
    (fun (a, b) ->
      let ma = Mask.of_list a and mb = Mask.of_list b in
      let sa = List.sort_uniq compare a and sb = List.sort_uniq compare b in
      Mask.to_list (Mask.union ma mb) = List.sort_uniq compare (sa @ sb)
      && Mask.to_list (Mask.inter ma mb)
         = List.filter (fun x -> List.mem x sb) sa)

(* -- coalescer ------------------------------------------------------------ *)

let test_coalesce_contiguous () =
  Alcotest.(check int) "4x8B in one line" 1
    (Coalesce.count_transactions [ (0, 8); (8, 8); (16, 8); (24, 8) ]);
  Alcotest.(check int) "crosses a boundary" 2
    (Coalesce.count_transactions [ (24, 8); (32, 8) ]);
  Alcotest.(check int) "straddling access" 2
    (Coalesce.count_transactions [ (28, 8) ])

let test_coalesce_duplicates () =
  (* broadcast: all lanes at the same address -> one transaction *)
  Alcotest.(check int) "broadcast" 1
    (Coalesce.count_transactions (List.init 32 (fun _ -> (100, 8))))

let test_coalesce_segments () =
  let c = Coalesce.create () in
  let stack_addr = Layout.stack_top 0 - 64 in
  let heap_addr = Layout.heap_base + 128 in
  let n = Coalesce.record c ~is_store:false [ (stack_addr, 8); (heap_addr, 8); (0x20000, 8) ] in
  Alcotest.(check int) "three segments, three txns" 3 n;
  Alcotest.(check int) "stack counted" 1 c.Coalesce.stack.Coalesce.ld_txns;
  Alcotest.(check int) "heap counted" 1 c.Coalesce.heap.Coalesce.ld_txns;
  Alcotest.(check int) "global counted" 1 c.Coalesce.global.Coalesce.ld_txns;
  Alcotest.(check int) "issues per segment" 1 c.Coalesce.heap.Coalesce.ld_issues

let prop_coalesce_bounds =
  QCheck.Test.make ~name:"1 <= txns <= lanes (aligned 8B)" ~count:500
    QCheck.(list_of_size (QCheck.Gen.int_range 1 32) (int_bound 10_000))
    (fun word_addrs ->
      let accesses = List.map (fun a -> (a * 8, 8)) word_addrs in
      let t = Coalesce.count_transactions accesses in
      t >= 1 && t <= List.length accesses)

let prop_coalesce_lower_bound =
  QCheck.Test.make ~name:"txns >= ceil(unique bytes / 32)" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 32) (int_bound 1000))
    (fun word_addrs ->
      let accesses = List.map (fun a -> (a * 8, 8)) word_addrs in
      let bytes =
        List.sort_uniq compare word_addrs |> List.length |> fun n -> n * 8
      in
      Coalesce.count_transactions accesses >= (bytes + 31) / 32)

(* -- cracking ------------------------------------------------------------- *)

let no_mem = Crack.no_mem

let lane_addrs l =
  let a = Array.make 32 (-1) in
  List.iteri (fun i addr -> a.(i) <- addr) l;
  a

let classes ops = List.map (fun (m : Warp_trace.mop) -> m.Warp_trace.cls) ops

let test_crack_reg_alu () =
  let i = Instr.Binop (Op.Add, Width.W8, Operand.Reg 1, Operand.Reg 2) in
  Alcotest.(check int) "one mop" 1 (List.length (Crack.crack i no_mem));
  Alcotest.(check bool) "alu" true
    (classes (Crack.crack i no_mem) = [ Opclass.Ialu ])

let test_crack_load_op () =
  (* add r1, [r2] -> load + add *)
  let m = Operand.Mem (Operand.mem ~base:(Reg.r 2) ()) in
  let i = Instr.Binop (Op.Add, Width.W8, Operand.Reg 1, m) in
  let mem = { Crack.load = Some (lane_addrs [ 0x100 ]); store = None; size = 8 } in
  let ops = Crack.crack i mem in
  Alcotest.(check (list string)) "load;add" [ "load"; "ialu" ]
    (List.map Opclass.to_string (classes ops));
  (* the ALU op must read the cracking temporary the load wrote *)
  match ops with
  | [ load; alu ] ->
      Alcotest.(check int) "load dst is temp" Warp_trace.temp_reg load.Warp_trace.dst;
      Alcotest.(check bool) "alu reads temp" true
        (Array.mem Warp_trace.temp_reg alu.Warp_trace.srcs)
  | _ -> Alcotest.fail "expected two mops"

let test_crack_rmw () =
  (* add [r2], r1 -> load + add + store *)
  let m = Operand.Mem (Operand.mem ~base:(Reg.r 2) ()) in
  let i = Instr.Binop (Op.Add, Width.W8, m, Operand.Reg 1) in
  let mem =
    { Crack.load = Some (lane_addrs [ 0x40 ]); store = Some (lane_addrs [ 0x40 ]); size = 8 }
  in
  Alcotest.(check (list string)) "load;add;store" [ "load"; "ialu"; "store" ]
    (List.map Opclass.to_string (classes (Crack.crack i mem)))

let test_crack_spaces () =
  let m = Operand.Mem (Operand.mem ~base:(Reg.r 2) ()) in
  let i = Instr.Mov (Width.W8, Operand.Reg 1, m) in
  let stack = lane_addrs [ Layout.stack_top 0 - 8 ] in
  let heap = lane_addrs [ Layout.heap_base + 8 ] in
  let space addrs =
    match Crack.crack i { Crack.load = Some addrs; store = None; size = 8 } with
    | [ { Warp_trace.mem = Some m; _ } ] -> m.Warp_trace.space
    | _ -> Alcotest.fail "expected one load"
  in
  Alcotest.(check bool) "stack -> local" true (space stack = Warp_trace.Local);
  Alcotest.(check bool) "heap -> global" true (space heap = Warp_trace.Global)

let test_crack_control () =
  Alcotest.(check bool) "jcc reads flags" true
    (match Crack.crack (Instr.Jcc (Cond.Lt, 3)) no_mem with
    | [ b ] -> Array.mem Warp_trace.flags_reg b.Warp_trace.srcs
    | _ -> false);
  Alcotest.(check int) "io cracks to nothing" 0
    (List.length (Crack.crack (Instr.Io (Instr.In, Operand.Imm 5)) no_mem));
  Alcotest.(check bool) "lock is sync" true
    (classes (Crack.crack (Instr.Lock_acquire (Operand.Imm 1)) no_mem)
    = [ Opclass.Sync ])

(* -- cursor ---------------------------------------------------------------- *)

let cursor_of events = Cursor.of_trace { Thread_trace.tid = 0; events }

let test_cursor_absorbs_skips () =
  let c =
    cursor_of
      [|
        Event.Skip { reason = Event.Io; n_instr = 10 };
        Event.Skip { reason = Event.Spin; n_instr = 5 };
        Event.Call 2;
        Event.Return;
      |]
  in
  (match Cursor.peek c with
  | Cursor.C_call 2 -> ()
  | _ -> Alcotest.fail "expected call after skips");
  Alcotest.(check int) "io counted" 10 c.Cursor.skipped_io;
  Alcotest.(check int) "spin counted" 5 c.Cursor.skipped_spin;
  Cursor.advance c;
  (match Cursor.next c with
  | Cursor.C_ret -> ()
  | _ -> Alcotest.fail "expected return");
  Alcotest.(check bool) "at end" true (Cursor.at_end c);
  (match Cursor.peek c with
  | Cursor.C_end -> ()
  | _ -> Alcotest.fail "expected end")

(* -- NCP reconvergence ----------------------------------------------------- *)

(* Build a DCFG by hand: a lock-shaped region
     0 -> 1 -> 2 -> 3 -> 4(exit edge)    (1=CS entry, 3=post-unlock)
   plus a diamond 0 -> {1} only; we check ncp semantics directly. *)
let hand_dcfg edges n_blocks =
  let succs = Array.make (n_blocks + 1) [] and preds = Array.make (n_blocks + 1) [] in
  List.iter
    (fun (a, b) ->
      succs.(a) <- b :: succs.(a);
      preds.(b) <- a :: preds.(b))
    edges;
  {
    Dcfg.func = 0;
    n_blocks;
    exit_node = n_blocks;
    succs;
    preds;
    observed = Array.make (n_blocks + 1) true;
  }

let test_ncp_chain () =
  (* straight line 0->1->2->3->exit *)
  let g = hand_dcfg [ (0, 1); (1, 2); (2, 3); (3, 4) ] 4 in
  let ip = Ipdom.compute g in
  (* a lane at 1 and a lane at 3: they meet at 3 (the lane at 3 waits) *)
  Alcotest.(check int) "ncp(1,3)" 3 (Ipdom.nearest_common_post_dominator ip 1 3);
  Alcotest.(check int) "ncp(3,1) symmetric" 3
    (Ipdom.nearest_common_post_dominator ip 3 1);
  Alcotest.(check int) "ncp with self" 2 (Ipdom.nearest_common_post_dominator ip 2 2)

let test_ncp_diamond () =
  (* 0 -> {1,2} -> 3 -> exit *)
  let g = hand_dcfg [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ] 4 in
  let ip = Ipdom.compute g in
  Alcotest.(check int) "branch targets meet at join" 3
    (Ipdom.nearest_common_post_dominator ip 1 2);
  Alcotest.(check int) "ipdom of branch block" 3 (Ipdom.reconvergence_point ip 0)

let test_ncp_nested () =
  (* nested diamonds: 0->{1,4}; 1->{2,3}->5; 4->5; 5->exit *)
  let g =
    hand_dcfg
      [ (0, 1); (0, 4); (1, 2); (1, 3); (2, 5); (3, 5); (4, 5); (5, 6) ]
      6
  in
  let ip = Ipdom.compute g in
  Alcotest.(check int) "inner join" 5 (Ipdom.nearest_common_post_dominator ip 2 3);
  Alcotest.(check int) "across nesting" 5 (Ipdom.nearest_common_post_dominator ip 2 4);
  Alcotest.(check int) "outer reconv" 5 (Ipdom.reconvergence_point ip 0)

(* ncp must agree with a brute-force "first common element of both
   post-dominator chains" on random graphs *)
let prop_ncp_on_chains =
  let gen =
    let open QCheck.Gen in
    let* n = int_range 3 10 in
    let* extra =
      list_size (int_bound (2 * n))
        (let* a = int_bound (n - 1) in
         let* b = int_bound n in
         return (a, b))
    in
    let edges = List.init n (fun i -> (i, i + 1)) @ extra in
    return (n, List.sort_uniq compare (List.filter (fun (a, b) -> a <> b) edges))
  in
  QCheck.Test.make ~name:"ncp = first common chain element" ~count:300
    (QCheck.make gen)
    (fun (n, edges) ->
      let g = hand_dcfg edges n in
      let ip = Ipdom.compute g in
      let chain v =
        let rec go v acc = if v = g.Dcfg.exit_node then List.rev (v :: acc) else go ip.Ipdom.ipdom.(v) (v :: acc) in
        go v []
      in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          let ca = chain a in
          let expected = List.find (fun x -> List.mem x (chain b)) ca in
          if Ipdom.nearest_common_post_dominator ip a b <> expected then ok := false
        done
      done;
      !ok)

(* -- timelines --------------------------------------------------------------- *)

let test_timeline_math () =
  let t =
    {
      Timeline.warp_id = 0;
      warp_size = 4;
      samples =
        [|
          { Timeline.n_instr = 10; active = 4 };
          { Timeline.n_instr = 10; active = 2 };
        |];
    }
  in
  Alcotest.(check (float 1e-9)) "mean active" 3.0 (Timeline.mean_active t);
  let s = Timeline.sparkline ~width:2 t in
  Alcotest.(check bool) "two cells" true (String.length s > 0);
  (* full occupancy first, half occupancy second: strictly descending *)
  Alcotest.(check bool) "descending" true (s <> String.make (String.length s) s.[0])

let test_sparkline_zero_issues () =
  let t = { Timeline.warp_id = 0; warp_size = 4; samples = [||] } in
  Alcotest.(check string) "empty warp is blank" "     "
    (Timeline.sparkline ~width:5 t);
  let t0 =
    { Timeline.warp_id = 0; warp_size = 4;
      samples = [| { Timeline.n_instr = 0; active = 4 } |] }
  in
  Alcotest.(check string) "zero-issue samples are blank too" "   "
    (Timeline.sparkline ~width:3 t0)

let test_sparkline_width_one () =
  (* one cell carries the issue-weighted mean: (10*4 + 10*2)/20 = 3 of 4
     lanes -> frac 0.75 -> ceil(6.0) = glyph 6 *)
  let t =
    { Timeline.warp_id = 0; warp_size = 4;
      samples =
        [| { Timeline.n_instr = 10; active = 4 };
           { Timeline.n_instr = 10; active = 2 } |] }
  in
  Alcotest.(check string) "width-1 mean" "\xe2\x96\x86"
    (Timeline.sparkline ~width:1 t)

let test_sparkline_bucket_weighting () =
  (* a sample straddling a bucket boundary contributes issue-weighted:
     {3 instrs, 4 active} fills bucket 0 (2 issues) and half of bucket 1;
     {1 instr, 0 active} fills the rest of bucket 1.  Bucket 1's mean is
     (1*4 + 1*0)/2 = 2 of 4 lanes -> glyph 4; bucket 0 is full -> glyph 8. *)
  let t =
    { Timeline.warp_id = 0; warp_size = 4;
      samples =
        [| { Timeline.n_instr = 3; active = 4 };
           { Timeline.n_instr = 1; active = 0 } |] }
  in
  Alcotest.(check string) "issue-weighted split" "\xe2\x96\x88\xe2\x96\x84"
    (Timeline.sparkline ~width:2 t);
  (* one sample spread evenly over both cells renders identically in each *)
  let flat =
    { Timeline.warp_id = 0; warp_size = 4;
      samples = [| { Timeline.n_instr = 2; active = 2 } |] }
  in
  Alcotest.(check string) "even spread" "\xe2\x96\x84\xe2\x96\x84"
    (Timeline.sparkline ~width:2 flat)

let test_timeline_recorded_by_analyzer () =
  let r =
    Threadfuser_workloads.Workload.analyze
      ~options:{ Analyzer.default_options with record_timeline = true; warp_size = 8 }
      ~threads:16
      (Threadfuser_workloads.Registry.find "bfs")
  in
  Alcotest.(check int) "one timeline per warp" 2 (List.length r.Analyzer.timelines);
  List.iter
    (fun tl ->
      (* the timeline's issue weight must equal the warp's issue count *)
      let issues =
        List.find
          (fun (w : Metrics.warp_stat) -> w.Metrics.warp_id = tl.Timeline.warp_id)
          r.Analyzer.report.Metrics.per_warp
      in
      Alcotest.(check int) "issues match" issues.Metrics.warp_issues
        (Timeline.total_issues tl);
      let m = Timeline.mean_active tl in
      Alcotest.(check bool) "mean in range" true (m > 0.0 && m <= 8.0))
    r.Analyzer.timelines

(* Exact invariant: the timeline IS the efficiency ledger — the
   issue-weighted mean active count over warp size equals the warp's
   Eq. 1 efficiency, including through lock serialization. *)
let test_timeline_equals_efficiency () =
  List.iter
    (fun name ->
      let r =
        Threadfuser_workloads.Workload.analyze
          ~options:{ Analyzer.default_options with record_timeline = true }
          (Threadfuser_workloads.Registry.find name)
      in
      List.iter
        (fun tl ->
          let w =
            List.find
              (fun (w : Metrics.warp_stat) ->
                w.Metrics.warp_id = tl.Timeline.warp_id)
              r.Analyzer.report.Metrics.per_warp
          in
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "%s warp %d" name tl.Timeline.warp_id)
            w.Metrics.warp_efficiency
            (Timeline.mean_active tl /. float_of_int tl.Timeline.warp_size))
        r.Analyzer.timelines)
    [ "pigz"; "hdsearch-mid"; "bfs"; "md5" ]

let test_timeline_off_by_default () =
  let r =
    Threadfuser_workloads.Workload.analyze
      (Threadfuser_workloads.Registry.find "vectoradd")
  in
  Alcotest.(check int) "no timelines" 0 (List.length r.Analyzer.timelines)

(* -- warp-trace serialization ---------------------------------------------- *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry

let real_warp_trace () =
  let r =
    W.analyze
      ~options:{ Analyzer.default_options with gen_warp_trace = true; warp_size = 8 }
      ~threads:16 (Registry.find "bfs")
  in
  Option.get r.Analyzer.warp_trace

let test_warp_serial_roundtrip () =
  let wt = real_warp_trace () in
  let back = Warp_serial.of_string (Warp_serial.to_string wt) in
  Alcotest.(check int) "warp size" wt.Warp_trace.warp_size back.Warp_trace.warp_size;
  Alcotest.(check int) "warp count" (Array.length wt.Warp_trace.warps)
    (Array.length back.Warp_trace.warps);
  Alcotest.(check bool) "entries identical" true (wt = back)

let test_warp_serial_file () =
  let wt = real_warp_trace () in
  let path = Filename.temp_file "tfwarp" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Warp_serial.to_file path wt;
      Alcotest.(check bool) "file roundtrip" true (Warp_serial.of_file path = wt))

let test_warp_serial_corrupt () =
  (match Warp_serial.of_string "NOPE 32 1\n" with
  | exception Warp_serial.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt on bad magic");
  let wt = real_warp_trace () in
  let s = Warp_serial.to_string wt in
  let cut = String.sub s 0 (String.length s / 2) in
  match Warp_serial.of_string cut with
  | exception Warp_serial.Corrupt _ -> ()
  | exception Failure _ -> () (* int_of_string on a torn token *)
  | _ -> Alcotest.fail "expected failure on truncation"

let () =
  Alcotest.run "core_units"
    [
      ( "mask",
        [
          Alcotest.test_case "basics" `Quick test_mask_basics;
          Alcotest.test_case "bounds" `Quick test_mask_bounds;
          QCheck_alcotest.to_alcotest prop_mask_roundtrip;
          QCheck_alcotest.to_alcotest prop_mask_set_ops;
        ] );
      ( "coalesce",
        [
          Alcotest.test_case "contiguous" `Quick test_coalesce_contiguous;
          Alcotest.test_case "broadcast" `Quick test_coalesce_duplicates;
          Alcotest.test_case "segments" `Quick test_coalesce_segments;
          QCheck_alcotest.to_alcotest prop_coalesce_bounds;
          QCheck_alcotest.to_alcotest prop_coalesce_lower_bound;
        ] );
      ( "crack",
        [
          Alcotest.test_case "reg alu" `Quick test_crack_reg_alu;
          Alcotest.test_case "load+op" `Quick test_crack_load_op;
          Alcotest.test_case "rmw" `Quick test_crack_rmw;
          Alcotest.test_case "spaces" `Quick test_crack_spaces;
          Alcotest.test_case "control" `Quick test_crack_control;
        ] );
      ( "cursor",
        [ Alcotest.test_case "absorbs skips" `Quick test_cursor_absorbs_skips ] );
      ( "timeline",
        [
          Alcotest.test_case "math" `Quick test_timeline_math;
          Alcotest.test_case "sparkline zero issues" `Quick
            test_sparkline_zero_issues;
          Alcotest.test_case "sparkline width one" `Quick
            test_sparkline_width_one;
          Alcotest.test_case "sparkline bucket weighting" `Quick
            test_sparkline_bucket_weighting;
          Alcotest.test_case "recorded" `Quick test_timeline_recorded_by_analyzer;
          Alcotest.test_case "off by default" `Quick test_timeline_off_by_default;
          Alcotest.test_case "equals efficiency" `Quick test_timeline_equals_efficiency;
        ] );
      ( "warp_serial",
        [
          Alcotest.test_case "roundtrip" `Quick test_warp_serial_roundtrip;
          Alcotest.test_case "file" `Quick test_warp_serial_file;
          Alcotest.test_case "corrupt" `Quick test_warp_serial_corrupt;
        ] );
      ( "ncp",
        [
          Alcotest.test_case "chain" `Quick test_ncp_chain;
          Alcotest.test_case "diamond" `Quick test_ncp_diamond;
          Alcotest.test_case "nested" `Quick test_ncp_nested;
          QCheck_alcotest.to_alcotest prop_ncp_on_chains;
        ] );
    ]
